// Benchmarks for lock-free index planning (PR 10): indexed-read throughput
// while a bulk writer continuously rewrites the same collection.
//
//	BenchmarkIndexedFindUnderWrites          — 8 reader goroutines issuing
//	    index-backed group queries (IXSCAN over g_1) against one
//	    storage.Collection while a writer streams unordered bulk multi-update
//	    batches that rewrite every document — and therefore every index
//	    position list — per batch. Reported reader_docs/s is the headline
//	    number for the persistent versioned index trees: before them, every
//	    plan and every index scan took the writer's collection mutex and
//	    reader throughput collapsed under update load.
//	BenchmarkIndexedFindUnderWritesCovered   — the same shape with an
//	    index-narrowed projection query (only v projected), the closest shape
//	    this executor has to a covered query: the index prunes the candidate
//	    set, the projection prunes the payload.
//	BenchmarkIndexedFindUnderWritesSharded   — the same shape through a
//	    4-shard query router with parallel scatter, the writer broadcasting
//	    bulk updates, readers draining merged router cursors for one group.
//
// The collection size is constant (the writer only updates), so per-query
// reader work does not drift as the writer makes progress and docs/s is
// comparable across runs.
package docstore_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"docstore/internal/bson"
	"docstore/internal/cluster"
	"docstore/internal/query"
	"docstore/internal/storage"
)

// queries per reader per benchmark iteration: enough wall time that the
// writer interleaves with every reader even at -benchtime=1x.
const idxBenchQueries = 64

func indexedFindBench(b *testing.B, projection *query.Projection) {
	c := storage.NewCollection("idxfind")
	if _, err := c.EnsureIndexDoc(bson.D("g", 1), false); err != nil {
		b.Fatal(err)
	}
	if res := c.BulkWrite(scanBenchSeedOps(scanBenchDocs), storage.BulkOptions{}); res.FirstError() != nil {
		b.Fatal(res.FirstError())
	}
	perGroup := scanBenchDocs / scanBenchGroups
	// The plan must be an index scan or the benchmark measures the wrong
	// engine path.
	if _, plan, err := c.FindWithPlan(bson.D("g", 0), storage.FindOptions{Projection: projection}); err != nil || plan.IndexUsed != "g_1" {
		b.Fatalf("plan = %s, %v; want IXSCAN g_1", plan, err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	var readerDocs, writerBatches int64
	for n := 0; n < b.N; n++ {
		stop := make(chan struct{})
		var writerWG sync.WaitGroup
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Every batch rewrites every document, so every batch also
				// rewrites every index position list: the persistent trees
				// path-copy continuously while the readers plan against
				// their pinned versions.
				res := c.BulkWrite(scanBenchUpdateBatch(), storage.BulkOptions{})
				if err := res.FirstError(); err != nil {
					b.Error(err)
					return
				}
				atomic.AddInt64(&writerBatches, 1)
			}
		}()

		var readerWG sync.WaitGroup
		for r := 0; r < scanBenchReaders; r++ {
			readerWG.Add(1)
			go func(r int) {
				defer readerWG.Done()
				for q := 0; q < idxBenchQueries; q++ {
					g := (r + q) % scanBenchGroups
					docs, err := c.Find(bson.D("g", g), storage.FindOptions{Projection: projection})
					if err != nil {
						b.Error(err)
						return
					}
					if len(docs) != perGroup {
						b.Errorf("indexed read returned %d docs for group %d, want %d", len(docs), g, perGroup)
						return
					}
					atomic.AddInt64(&readerDocs, int64(len(docs)))
				}
			}(r)
		}
		readerWG.Wait()
		close(stop)
		writerWG.Wait()
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(atomic.LoadInt64(&readerDocs))/s, "reader_docs/s")
		b.ReportMetric(float64(atomic.LoadInt64(&writerBatches))/s, "writer_batches/s")
	}
}

func BenchmarkIndexedFindUnderWrites(b *testing.B) {
	indexedFindBench(b, nil)
}

func BenchmarkIndexedFindUnderWritesCovered(b *testing.B) {
	indexedFindBench(b, query.MustParseProjection(bson.D("v", 1)))
}

func BenchmarkIndexedFindUnderWritesSharded(b *testing.B) {
	cl := cluster.MustBuild(cluster.Config{
		Shards:          4,
		NetworkLatency:  benchRouterLatency,
		ParallelScatter: true,
		ChunkSizeBytes:  1 << 20,
	})
	r := cl.Router()
	if _, err := r.EnableSharding("bench", "idxfind", bson.D("g", "hashed"), 1<<20); err != nil {
		b.Fatal(err)
	}
	for _, name := range r.ShardNames() {
		shard := r.Shard(name).Database("bench").Collection("idxfind")
		if _, err := shard.EnsureIndexDoc(bson.D("g", 1), false); err != nil {
			b.Fatal(err)
		}
	}
	if res := r.BulkWrite("bench", "idxfind", scanBenchSeedOps(scanBenchDocs), storage.BulkOptions{}); res.FirstError() != nil {
		b.Fatal(res.FirstError())
	}
	perGroup := scanBenchDocs / scanBenchGroups

	b.ReportAllocs()
	b.ResetTimer()
	var readerDocs, writerBatches int64
	for n := 0; n < b.N; n++ {
		stop := make(chan struct{})
		var writerWG sync.WaitGroup
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res := r.BulkWrite("bench", "idxfind", scanBenchUpdateBatch(), storage.BulkOptions{})
				if err := res.FirstError(); err != nil {
					b.Error(err)
					return
				}
				atomic.AddInt64(&writerBatches, 1)
			}
		}()

		var readerWG sync.WaitGroup
		for rd := 0; rd < scanBenchReaders; rd++ {
			readerWG.Add(1)
			go func(rd int) {
				defer readerWG.Done()
				for q := 0; q < idxBenchQueries; q++ {
					g := (rd + q) % scanBenchGroups
					docs, err := r.Find("bench", "idxfind", bson.D("g", g), storage.FindOptions{})
					if err != nil {
						b.Error(err)
						return
					}
					if len(docs) != perGroup {
						b.Errorf("routed indexed read returned %d docs for group %d, want %d", len(docs), g, perGroup)
						return
					}
					atomic.AddInt64(&readerDocs, int64(len(docs)))
				}
			}(rd)
		}
		readerWG.Wait()
		close(stop)
		writerWG.Wait()
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(atomic.LoadInt64(&readerDocs))/s, "reader_docs/s")
		b.ReportMetric(float64(atomic.LoadInt64(&writerBatches))/s, "writer_batches/s")
	}
}
