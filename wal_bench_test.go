// Benchmarks for the durability subsystem (PR 3): acknowledged-write
// throughput under each WAL sync policy, and the recovery paths.
//
//	BenchmarkWALGroupCommit/PerWriteFsync  — SyncAlways: one fsync per
//	    acknowledged write, the naive durable policy.
//	BenchmarkWALGroupCommit/GroupCommit    — SyncGroupCommit: concurrent
//	    writers share fsyncs; the whole point of the subsystem. Must clear
//	    2x PerWriteFsync writes/s at 8+ concurrent writers.
//	BenchmarkWALGroupCommit/NoSync         — SyncNone: the upper bound with
//	    durability deferred to rotation/close.
//	BenchmarkWALAppendEncode               — single-threaded append+encode
//	    cost without any fsync in the path.
//	BenchmarkWALRecovery                   — replaying a 10k-record log into
//	    a fresh server (the startup path).
//
// Each BenchmarkWALGroupCommit iteration runs a fixed workload of 8
// concurrent writer goroutines x 250 acknowledged writes, so the policies
// compare meaningfully even at CI's -benchtime=1x; writes/s is the reported
// acknowledged-write throughput.
package docstore_test

import (
	"fmt"
	"sync"
	"testing"

	"docstore/internal/bson"
	"docstore/internal/mongod"
	"docstore/internal/storage"
	"docstore/internal/wal"
)

// walBenchWriters is the concurrent writer count for the group commit
// comparison; walBenchWritesPerWriter acknowledged writes per writer make
// one benchmark iteration, so even CI's -benchtime=1x measures a real
// concurrent workload rather than a single fsync.
const (
	walBenchWriters         = 8
	walBenchWritesPerWriter = 250
)

func walBenchRecord(i int) *wal.Record {
	return &wal.Record{
		Kind: wal.KindBatch, DB: "db", Coll: "c", Ordered: true,
		Ops: []storage.WriteOp{storage.InsertWriteOp(bson.D(
			bson.IDKey, i, "qty", i%100, "price", float64(i%997)+0.99,
		))},
	}
}

func reportWritesPerSec(b *testing.B, writesPerIter int) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(writesPerIter*b.N)/s, "writes/s")
	}
}

func BenchmarkWALGroupCommit(b *testing.B) {
	for _, tc := range []struct {
		name   string
		policy wal.SyncPolicy
	}{
		{"PerWriteFsync", wal.SyncAlways},
		{"GroupCommit", wal.SyncGroupCommit},
		{"NoSync", wal.SyncNone},
	} {
		b.Run(tc.name, func(b *testing.B) {
			w, err := wal.Open(wal.Options{Dir: b.TempDir(), Sync: tc.policy})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			b.ResetTimer()
			for iter := 0; iter < b.N; iter++ {
				var wg sync.WaitGroup
				errs := make(chan error, walBenchWriters)
				for g := 0; g < walBenchWriters; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						for i := 0; i < walBenchWritesPerWriter; i++ {
							commit, err := w.Append(walBenchRecord(g*walBenchWritesPerWriter + i))
							if err == nil {
								// Acknowledged write: wait for durability
								// under the policy (a no-op under NoSync —
								// that is its contract).
								err = commit.Wait(false)
							}
							if err != nil {
								errs <- err
								return
							}
						}
					}(g)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportWritesPerSec(b, walBenchWriters*walBenchWritesPerWriter)
		})
	}
}

func BenchmarkWALAppendEncode(b *testing.B) {
	w, err := wal.Open(wal.Options{Dir: b.TempDir(), Sync: wal.SyncNone})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Append(walBenchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportWritesPerSec(b, 1)
}

func BenchmarkWALRecovery(b *testing.B) {
	const records = 10000
	dir := b.TempDir()
	seed := mongod.NewServer(mongod.Options{Name: "seed"})
	if _, err := seed.EnableDurability(mongod.Durability{Dir: dir, Sync: wal.SyncNone}); err != nil {
		b.Fatal(err)
	}
	db := seed.Database("db")
	for i := 0; i < records; i++ {
		if _, err := db.Insert("c", bson.D(bson.IDKey, i, "v", fmt.Sprintf("value-%d", i))); err != nil {
			b.Fatal(err)
		}
	}
	if err := seed.CloseDurability(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := mongod.NewServer(mongod.Options{Name: "recovered"})
		stats, err := s.EnableDurability(mongod.Durability{Dir: dir, Sync: wal.SyncNone})
		if err != nil {
			b.Fatal(err)
		}
		if stats.RecordsReplayed != records {
			b.Fatalf("replayed %d records, want %d", stats.RecordsReplayed, records)
		}
		if err := s.CloseDurability(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(records*b.N)/s, "records/s")
	}
}
