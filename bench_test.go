// Benchmarks regenerating every table and figure of the thesis' evaluation.
//
// Mapping to the paper:
//
//	BenchmarkTable35QueryFeatures      — Table 3.5 (query feature catalog)
//	BenchmarkTable36RowCounts          — Table 3.6 (row counts per table and scale)
//	BenchmarkTable43DataLoad/*         — Table 4.3 and Figure 4.9 (per-dataset load times)
//	BenchmarkTable44Selectivity/*      — Table 4.4 (result-set sizes per query)
//	BenchmarkExperiment*/Query*        — Table 4.5, Figures 4.10 and 4.11 (runtimes for
//	                                     Experiments 1–6 × Queries 7/21/46/50)
//	BenchmarkAblation*                 — the ablation studies DESIGN.md calls out
//
// Run with:  go test -bench=. -benchmem
//
// The dataset divisor below keeps a full -bench=. run in the minutes range;
// cmd/bench exposes the same measurements with a configurable divisor for
// longer, closer-to-paper runs.
package docstore_test

import (
	"fmt"
	"sync"
	"testing"

	"docstore/internal/bson"
	"docstore/internal/core"
	"docstore/internal/queries"
	"docstore/internal/storage"
	"docstore/internal/tpcds"
)

// benchDivisor scales the paper's Table 3.6 row counts down for benchmark
// runs (1 would reproduce the paper's absolute cardinalities).
const benchDivisor = 1000

func benchScales() (tpcds.Scale, tpcds.Scale) {
	return tpcds.ScaleSmall.WithDivisor(benchDivisor), tpcds.ScaleLarge.WithDivisor(benchDivisor)
}

func benchConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Runs = 1
	cfg.ChunkSizeBytes = 1 << 20
	return cfg
}

// deploymentCache builds each experiment's deployment once per benchmark
// process so repeated bench iterations measure query time, not setup time.
var deploymentCache sync.Map

func benchDeployment(b *testing.B, spec core.ExperimentSpec) *core.Deployment {
	b.Helper()
	key := fmt.Sprintf("%d-%s-%s-%s", spec.Number, spec.Scale.Name, spec.Model, spec.Env)
	if d, ok := deploymentCache.Load(key); ok {
		return d.(*core.Deployment)
	}
	d, err := core.Setup(spec, benchConfig())
	if err != nil {
		b.Fatalf("setting up %s: %v", spec.Label(), err)
	}
	deploymentCache.Store(key, d)
	return d
}

// BenchmarkTable35QueryFeatures renders the static query-feature catalog.
func BenchmarkTable35QueryFeatures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if core.Table35() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable36RowCounts evaluates the row-count model for every table at
// both scales.
func BenchmarkTable36RowCounts(b *testing.B) {
	small, large := benchScales()
	schema := tpcds.NewSchema()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range schema.TableNames() {
			_ = small.RowCount(t)
			_ = large.RowCount(t)
		}
	}
	b.ReportMetric(float64(small.RowCount("store_sales")), "rows_1GB_store_sales")
	b.ReportMetric(float64(large.RowCount("store_sales")), "rows_5GB_store_sales")
}

// BenchmarkTable43DataLoad measures migrating each dataset into a fresh
// stand-alone server — the content of Table 4.3 and Figure 4.9.
func BenchmarkTable43DataLoad(b *testing.B) {
	small, large := benchScales()
	for _, scale := range []tpcds.Scale{small, large} {
		b.Run(scale.Name, func(b *testing.B) {
			cfg := benchConfig()
			totalDocs := 0
			for i := 0; i < b.N; i++ {
				d, err := core.Setup(core.ExperimentSpec{Number: 0, Scale: scale, Model: core.Normalized, Env: core.StandAlone}, cfg)
				if err != nil {
					b.Fatal(err)
				}
				totalDocs = d.Load.TotalDocuments()
			}
			b.ReportMetric(float64(totalDocs), "docs")
		})
	}
}

// BenchmarkTable44Selectivity measures the result-set size of each query (the
// selectivity of Table 4.4) while timing its execution on the denormalized
// stand-alone deployment.
func BenchmarkTable44Selectivity(b *testing.B) {
	small, _ := benchScales()
	d := benchDeployment(b, core.ExperimentSpec{Number: 3, Scale: small, Model: core.Denormalized, Env: core.StandAlone})
	for _, q := range queries.All() {
		b.Run(fmt.Sprintf("Query%d", q.ID), func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				docs, _, err := queries.RunDenormalized(d.Store, q, benchConfig().Params)
				if err != nil {
					b.Fatal(err)
				}
				bytes = 0
				for _, doc := range docs {
					bytes += int64(bson.EncodedSize(doc))
				}
			}
			b.ReportMetric(float64(bytes), "result_bytes")
		})
	}
}

// benchmarkExperimentQueries measures one experiment's four queries — one
// cell of Table 4.5 (and one bar of Figure 4.10/4.11) per sub-benchmark.
func benchmarkExperimentQueries(b *testing.B, spec core.ExperimentSpec) {
	d := benchDeployment(b, spec)
	params := benchConfig().Params
	for _, q := range queries.All() {
		b.Run(fmt.Sprintf("Query%d", q.ID), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				if spec.Model == core.Denormalized {
					_, _, err = queries.RunDenormalized(d.Store, q, params)
				} else {
					_, _, err = queries.RunNormalized(d.Store, q, params)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Experiments 1–6 (Table 4.1): the Table 4.5 grid.

func BenchmarkExperiment1NormalizedSharded1GB(b *testing.B) {
	small, _ := benchScales()
	benchmarkExperimentQueries(b, core.ExperimentSpec{Number: 1, Scale: small, Model: core.Normalized, Env: core.Sharded})
}

func BenchmarkExperiment2NormalizedStandalone1GB(b *testing.B) {
	small, _ := benchScales()
	benchmarkExperimentQueries(b, core.ExperimentSpec{Number: 2, Scale: small, Model: core.Normalized, Env: core.StandAlone})
}

func BenchmarkExperiment3DenormalizedStandalone1GB(b *testing.B) {
	small, _ := benchScales()
	benchmarkExperimentQueries(b, core.ExperimentSpec{Number: 3, Scale: small, Model: core.Denormalized, Env: core.StandAlone})
}

func BenchmarkExperiment4NormalizedSharded5GB(b *testing.B) {
	_, large := benchScales()
	benchmarkExperimentQueries(b, core.ExperimentSpec{Number: 4, Scale: large, Model: core.Normalized, Env: core.Sharded})
}

func BenchmarkExperiment5NormalizedStandalone5GB(b *testing.B) {
	_, large := benchScales()
	benchmarkExperimentQueries(b, core.ExperimentSpec{Number: 5, Scale: large, Model: core.Normalized, Env: core.StandAlone})
}

func BenchmarkExperiment6DenormalizedStandalone5GB(b *testing.B) {
	_, large := benchScales()
	benchmarkExperimentQueries(b, core.ExperimentSpec{Number: 6, Scale: large, Model: core.Denormalized, Env: core.StandAlone})
}

// BenchmarkFullScanSliceVsCursor contrasts the two execution strategies for
// a full collection scan of the denormalized store_sales fact collection at
// the bench divisor: the materializing slice path (Find) allocates the whole
// result set per operation, while the streaming cursor path (FindCursor)
// holds only one batch at a time, so its reported B/op — the peak transient
// allocation — drops from O(result) to O(batch). Both paths are verified to
// produce byte-identical results before timing starts.
func BenchmarkFullScanSliceVsCursor(b *testing.B) {
	small, _ := benchScales()
	d := benchDeployment(b, core.ExperimentSpec{Number: 3, Scale: small, Model: core.Denormalized, Env: core.StandAlone})
	coll := d.Standalone.Database(core.DatabaseName(small)).Collection("store_sales")
	if coll.Count() == 0 {
		b.Fatal("store_sales is empty")
	}

	checksum := func(docs []*bson.Doc) (int, int64) {
		var bytes int64
		for _, doc := range docs {
			bytes += int64(bson.EncodedSize(doc))
		}
		return len(docs), bytes
	}
	sliceDocs, err := coll.Find(nil, storage.FindOptions{})
	if err != nil {
		b.Fatal(err)
	}
	cur, err := coll.FindCursor(nil, storage.FindOptions{})
	if err != nil {
		b.Fatal(err)
	}
	cursorDocs, err := cur.All()
	if err != nil {
		b.Fatal(err)
	}
	if len(sliceDocs) != len(cursorDocs) {
		b.Fatalf("slice path returned %d docs, cursor path %d", len(sliceDocs), len(cursorDocs))
	}
	for i := range sliceDocs {
		sb, cb := bson.Marshal(sliceDocs[i]), bson.Marshal(cursorDocs[i])
		if string(sb) != string(cb) {
			b.Fatalf("doc %d not byte-identical between slice and cursor paths", i)
		}
	}
	wantN, wantBytes := checksum(sliceDocs)

	b.Run("Slice", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			docs, err := coll.Find(nil, storage.FindOptions{})
			if err != nil {
				b.Fatal(err)
			}
			n, bytes := checksum(docs)
			if n != wantN || bytes != wantBytes {
				b.Fatalf("slice scan drifted: %d docs / %d bytes", n, bytes)
			}
		}
	})
	b.Run("Cursor", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cur, err := coll.FindCursor(nil, storage.FindOptions{})
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			var bytes int64
			for {
				batch := cur.NextBatch()
				if len(batch) == 0 {
					break
				}
				n += len(batch)
				for _, doc := range batch {
					bytes += int64(bson.EncodedSize(doc))
				}
			}
			if n != wantN || bytes != wantBytes {
				b.Fatalf("cursor scan drifted: %d docs / %d bytes", n, bytes)
			}
		}
	})
}

// BenchmarkAblationShardKeyRouting contrasts Query 50 under the paper's
// ticket-number shard key (targeted) and an alternate key (broadcast).
func BenchmarkAblationShardKeyRouting(b *testing.B) {
	small, _ := benchScales()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := core.RunShardKeyAblation(small, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TicketKeyStats.ShardCalls), "shard_calls_ticket_key")
		b.ReportMetric(float64(res.AlternateStats.ShardCalls), "shard_calls_alt_key")
	}
}

// BenchmarkAblationSecondaryIndexes contrasts Query 7 on the normalized model
// with and without secondary indexes.
func BenchmarkAblationSecondaryIndexes(b *testing.B) {
	small, _ := benchScales()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := core.RunIndexAblation(small, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.WithIndexes.Seconds(), "with_indexes_s")
		b.ReportMetric(res.WithoutIndexes.Seconds(), "without_indexes_s")
	}
}

// BenchmarkAblationParallelScatter contrasts sequential and parallel
// scatter-gather for a broadcast query on the sharded cluster.
func BenchmarkAblationParallelScatter(b *testing.B) {
	small, _ := benchScales()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := core.RunScatterAblation(small, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Sequential.Seconds(), "sequential_s")
		b.ReportMetric(res.Parallel.Seconds(), "parallel_s")
	}
}
