// Benchmarks for the paged copy-on-write engine (PR 7): the cost of a
// single-document update stream against a large collection.
//
//	BenchmarkSingleDocUpdateStream         — 100k-doc storage.Collection,
//	    each iteration updates one document through the bulk write path. The
//	    flat-array COW engine copied the whole 100k-slot record array per
//	    batch; the paged engine copies one 256-record page, so B/op is the
//	    headline: it must sit >= 5x below the flat-array cost.
//	BenchmarkSingleDocUpdateStreamReplSet  — the same stream acknowledged by
//	    a 3-member replica set with majority write concern, so the per-op
//	    cost includes the oplog append and the quorum wait while the apply
//	    loops replay every version to the secondaries.
package docstore_test

import (
	"fmt"
	"testing"

	"docstore/internal/bson"
	"docstore/internal/mongod"
	"docstore/internal/query"
	"docstore/internal/replset"
	"docstore/internal/storage"
)

const updateStreamDocs = 100_000

func updateStreamSeedOps(n int) []storage.WriteOp {
	ops := make([]storage.WriteOp, n)
	for i := 0; i < n; i++ {
		ops[i] = storage.InsertWriteOp(bson.D(
			bson.IDKey, fmt.Sprintf("doc-%d", i),
			"v", 0,
			"pad", fmt.Sprintf("item-%06d", i),
		))
	}
	return ops
}

func updateStreamOp(i int) []storage.WriteOp {
	return []storage.WriteOp{storage.UpdateWriteOp(query.UpdateSpec{
		Query:  bson.D(bson.IDKey, fmt.Sprintf("doc-%d", i%updateStreamDocs)),
		Update: bson.D("$set", bson.D("v", i+1)),
	})}
}

func BenchmarkSingleDocUpdateStream(b *testing.B) {
	c := storage.NewCollection("stream")
	if res := c.BulkWrite(updateStreamSeedOps(updateStreamDocs), storage.BulkOptions{}); res.FirstError() != nil {
		b.Fatal(res.FirstError())
	}

	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		res := c.BulkWrite(updateStreamOp(n), storage.BulkOptions{})
		if err := res.FirstError(); err != nil {
			b.Fatal(err)
		}
		if res.Matched != 1 {
			b.Fatalf("update %d matched %d docs, want 1", n, res.Matched)
		}
	}
	b.StopTimer()

	st := c.EngineStats()
	if st.COWBytesCopied > 0 && b.Elapsed().Seconds() > 0 {
		b.ReportMetric(float64(st.COWBytesCopied)/float64(b.N), "cow_copied_B/op")
	}
}

func BenchmarkSingleDocUpdateStreamReplSet(b *testing.B) {
	members := make([]*mongod.Server, 3)
	for i := range members {
		members[i] = mongod.NewServer(mongod.Options{Name: fmt.Sprintf("m%d", i)})
	}
	rs, err := replset.New("bench-rs", members...)
	if err != nil {
		b.Fatal(err)
	}
	rs.StartReplication()
	defer rs.Close()

	wc := storage.WriteConcern{Majority: true}
	if res := rs.BulkWrite("bench", "stream", updateStreamSeedOps(updateStreamDocs),
		storage.BulkOptions{WriteConcern: wc}); res.FirstError() != nil {
		b.Fatal(res.FirstError())
	}

	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		res := rs.BulkWrite("bench", "stream", updateStreamOp(n), storage.BulkOptions{WriteConcern: wc})
		if err := res.FirstError(); err != nil {
			b.Fatal(err)
		}
	}
}
