// Retail analytics: generate a small TPC-DS dataset, load it with the
// thesis' migration algorithm, denormalize the store_sales fact collection
// (Figures 4.6/4.7), and run Query 7 both ways — the end-to-end flow of
// Experiments 2 and 3.
package main

import (
	"fmt"
	"log"
	"time"

	"docstore/internal/denorm"
	"docstore/internal/driver"
	"docstore/internal/metrics"
	"docstore/internal/migrate"
	"docstore/internal/mongod"
	"docstore/internal/queries"
	"docstore/internal/tpcds"
)

func main() {
	// A 1/2000th-scale mirror of the thesis' 1 GB dataset keeps this example
	// under a second or two; lower the divisor to approach paper scale.
	scale := tpcds.ScaleSmall.WithDivisor(2000)
	gen := tpcds.NewGenerator(scale, 1)
	fmt.Printf("dataset: %s — store_sales %d rows, inventory %d rows\n",
		scale, scale.RowCount("store_sales"), scale.RowCount("inventory"))

	server := mongod.NewServer(mongod.Options{Name: "retail", RAMBytes: 64 << 30})
	store := driver.NewStandalone(server.Database(core(scale)))

	// Step 1: migrate every .dat table into collections (Figure 4.3).
	load, err := migrate.LoadDataset(store, gen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d documents (%s) in %s\n",
		load.TotalDocuments(), metrics.FormatBytes(load.TotalBytes()), metrics.FormatDuration(load.Total))
	if err := migrate.EnsureQueryIndexes(store, gen.Schema()); err != nil {
		log.Fatal(err)
	}

	params := queries.DefaultParams()
	q7 := queries.MustByID(7)

	// Step 2: run Query 7 against the normalized model (Figure 4.8): filter
	// dimensions, semi-join the fact collection, embed, aggregate.
	normDocs, normTime, err := queries.RunNormalized(store, q7, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQuery 7, normalized model:   %4d groups in %s\n", len(normDocs), metrics.FormatDuration(normTime))

	// Step 3: denormalize the fact collections (Figures 4.6/4.7) and index
	// the embedded paths.
	start := time.Now()
	if _, err := denorm.DenormalizeDataset(store, gen.Schema()); err != nil {
		log.Fatal(err)
	}
	if err := denorm.EnsureDenormalizedIndexes(store); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndenormalized the fact collections in %s\n", metrics.FormatDuration(time.Since(start)))

	// Step 4: the same query against the denormalized model is a single
	// aggregation over one collection.
	denormDocs, denormTime, err := queries.RunDenormalized(store, q7, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Query 7, denormalized model: %4d groups in %s\n", len(denormDocs), metrics.FormatDuration(denormTime))
	if len(denormDocs) > 0 {
		fmt.Printf("first group: %s\n", denormDocs[0])
	}
	if normTime > 0 {
		fmt.Printf("\nspeedup from denormalization: %.1fx (the thesis' Experiment 3 vs Experiment 2 effect)\n",
			float64(normTime)/float64(denormTime))
	}
}

// core returns the thesis-style database name for a scale.
func core(scale tpcds.Scale) string { return "Dataset_" + scale.Name }
