// Quickstart: create a stand-alone document store, insert documents, query
// them with filters and indexes, and run an aggregation pipeline — the
// document-model tour of Chapter 2 of the thesis (publishers and books).
package main

import (
	"fmt"
	"log"

	"docstore/internal/bson"
	"docstore/internal/mongod"
	"docstore/internal/query"
	"docstore/internal/storage"
)

func main() {
	server := mongod.NewServer(mongod.Options{Name: "quickstart"})
	db := server.Database("library")

	// Embedded data model (Figure 2.3): a publisher document containing its
	// books as an array of sub-documents.
	publisher := bson.D(
		"publisher", "O'Reilly Media",
		"founded", 1978,
		"location", "California",
		"books", bson.A(
			bson.D("title", "MongoDB", "author", "Dirolf Chodorow", "pages", 216),
			bson.D("title", "Java in a Nutshell", "author", bson.A("Benjamin J Evans", "David Flanagan"), "pages", 418),
		),
	)
	if _, err := db.Insert("publishers", publisher); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Insert("publishers", bson.D(
		"publisher", "Pragmatic Bookshelf", "founded", 1999, "location", "North Carolina",
		"books", bson.A(bson.D("title", "Programming Go", "pages", 312)),
	)); err != nil {
		log.Fatal(err)
	}

	// Queries: dotted paths traverse embedded documents and arrays.
	thick, err := db.Find("publishers", bson.D("books.pages", bson.D("$gt", 400)), storage.FindOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("publishers with a book over 400 pages: %d\n", len(thick))

	// Indexes: create a single-field index and watch the planner use it.
	if _, err := db.EnsureIndex("publishers", bson.D("founded", 1), false); err != nil {
		log.Fatal(err)
	}
	_, plan, err := db.FindWithPlan("publishers", bson.D("founded", bson.D("$gte", 1990)), storage.FindOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query plan: %s\n", plan)

	// Updates: add a book to the embedded array.
	res, err := db.Update("publishers", query.UpdateSpec{
		Query:  bson.D("publisher", "O'Reilly Media"),
		Update: bson.D("$push", bson.D("books", bson.D("title", "Designing Data-Intensive Applications", "pages", 616))),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("updated %d publisher document(s)\n", res.Modified)

	// Aggregation: unwind the embedded books and compute pages per publisher.
	out, err := db.Aggregate("publishers", []*bson.Doc{
		bson.D("$unwind", "$books"),
		bson.D("$group", bson.D(
			bson.IDKey, "$publisher",
			"titles", bson.D("$sum", 1),
			"totalPages", bson.D("$sum", "$books.pages"),
			"avgPages", bson.D("$avg", "$books.pages"),
		)),
		bson.D("$sort", bson.D("totalPages", -1)),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pages per publisher:")
	for _, d := range out {
		fmt.Printf("  %s\n", d)
	}

	status := server.Status()
	fmt.Printf("server holds %d documents across %d collections (%d bytes of data)\n",
		status.Documents, status.Collections, status.DataSizeBytes)
}
