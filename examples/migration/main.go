// Migration: run the thesis' data-migration algorithm (Figure 4.3) from
// pipe-delimited .dat files into the document store, compare the stand-alone
// and sharded environments, and show the translated (normalized) execution of
// Query 46 on both — the Experiment 1 vs Experiment 2 comparison in miniature.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"docstore/internal/cluster"
	"docstore/internal/core"
	"docstore/internal/driver"
	"docstore/internal/metrics"
	"docstore/internal/migrate"
	"docstore/internal/mongod"
	"docstore/internal/queries"
	"docstore/internal/tpcds"
)

func main() {
	scale := tpcds.ScaleSmall.WithDivisor(2000)
	gen := tpcds.NewGenerator(scale, 1)

	// Write the .dat files the way dsdgen would (Appendix A), then load them
	// back through the migration algorithm.
	dir, err := os.MkdirTemp("", "tpcds-dat-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	files, err := gen.GenerateDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d .dat files under %s\n", len(files), dir)

	// Stand-alone environment.
	standalone := driver.NewStandalone(mongod.NewServer(mongod.Options{Name: "standalone"}).Database("Dataset_1GB"))
	// Sharded environment: 3 shards, fact collections sharded as in the
	// thesis' experiments.
	cl := cluster.MustBuild(cluster.Config{Shards: 3, ChunkSizeBytes: 1 << 20, ParallelScatter: true})
	for fact, key := range core.ShardKeys() {
		if _, err := cl.ShardCollection("Dataset_1GB", fact, key); err != nil {
			log.Fatal(err)
		}
	}
	sharded := driver.NewSharded(cl.Router(), "Dataset_1GB")

	schema := gen.Schema()
	for _, env := range []struct {
		name  string
		store driver.Store
	}{{"stand-alone", standalone}, {"sharded", sharded}} {
		start := time.Now()
		totalDocs := 0
		for _, table := range schema.TableNames() {
			f, err := os.Open(filepath.Join(dir, tpcds.DatFileName(table)))
			if err != nil {
				log.Fatal(err)
			}
			res, err := migrate.LoadTable(env.store, schema.MustTable(table), f)
			f.Close()
			if err != nil {
				log.Fatalf("loading %s into %s: %v", table, env.name, err)
			}
			totalDocs += res.Documents
		}
		if err := migrate.EnsureQueryIndexes(env.store, schema); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s loaded %d documents from .dat files in %s\n",
			env.name, totalDocs, metrics.FormatDuration(time.Since(start)))
	}

	// The fact data really is distributed across the shards.
	fmt.Println("\nstore_sales distribution across shards:")
	for _, s := range cl.Shards() {
		fmt.Printf("  %-8s %d documents\n", s.Name(), s.Database("Dataset_1GB").Collection("store_sales").Count())
	}

	// Query 46 through the Figure 4.8 translation on both environments.
	q46 := queries.MustByID(46)
	params := queries.DefaultParams()
	for _, env := range []struct {
		name  string
		store driver.Store
	}{{"stand-alone", standalone}, {"sharded", sharded}} {
		docs, elapsed, err := queries.RunNormalized(env.store, q46, params)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nQuery 46 on the %s environment: %d result rows in %s\n",
			env.name, len(docs), metrics.FormatDuration(elapsed))
		if len(docs) > 0 {
			fmt.Printf("  first row: %s\n", docs[0])
		}
	}
	stats := cl.Router().Stats()
	fmt.Printf("\nrouter statistics: %d targeted, %d broadcast queries, %d shard calls\n",
		stats.TargetedQueries, stats.BroadcastQueries, stats.ShardCalls)
}
