// Sharding: build a three-shard cluster (the thesis' Figure 3.1 topology),
// shard a collection, watch chunks split and balance, and observe the
// difference between targeted and broadcast queries — the mechanism behind
// the paper's Query 50 vs Queries 7/21/46 result.
package main

import (
	"fmt"
	"log"

	"docstore/internal/bson"
	"docstore/internal/cluster"
	"docstore/internal/storage"
)

func main() {
	// 3 shards, 1 config server, 1 query router, as in Figure 3.1.
	c := cluster.MustBuild(cluster.Config{
		Shards:         3,
		ShardRAMBytes:  8 << 30,
		ChunkSizeBytes: 64 << 10, // small chunks so splitting is visible at example scale
	})

	// Shard the orders collection on a hashed customer id: hashed sharding
	// pre-splits the key space evenly across the shards (§2.1.3.3).
	if _, err := c.ShardCollection("shop", "orders", bson.D("customer_id", "hashed")); err != nil {
		log.Fatal(err)
	}
	router := c.Router()
	for i := 0; i < 3000; i++ {
		if _, err := router.Insert("shop", "orders", bson.D(
			bson.IDKey, i,
			"customer_id", i%500,
			"amount", float64(i%97)+0.99,
			"region", []string{"east", "west", "north"}[i%3],
		)); err != nil {
			log.Fatal(err)
		}
	}

	meta := c.ConfigServer().Metadata("shop.orders")
	fmt.Println("chunk distribution after loading 3000 orders:")
	for shard, n := range meta.ChunkCountByShard() {
		fmt.Printf("  %-8s %d chunks\n", shard, n)
	}
	for _, s := range c.Shards() {
		fmt.Printf("  %-8s %d documents\n", s.Name(), s.Database("shop").Collection("orders").Count())
	}

	// Targeted query: the filter pins the shard key, so the router contacts a
	// single shard.
	router.ResetStats()
	docs, err := router.Find("shop", "orders", bson.D("customer_id", 42), storage.FindOptions{})
	if err != nil {
		log.Fatal(err)
	}
	stats := router.Stats()
	fmt.Printf("\ntargeted query (customer_id=42): %d docs, %d shard call(s), targeted=%d broadcast=%d\n",
		len(docs), stats.ShardCalls, stats.TargetedQueries, stats.BroadcastQueries)

	// Broadcast query: no shard key in the filter, every shard is consulted
	// and the router merges the partial results.
	router.ResetStats()
	docs, err = router.Find("shop", "orders", bson.D("region", "west", "amount", bson.D("$gt", 50)), storage.FindOptions{})
	if err != nil {
		log.Fatal(err)
	}
	stats = router.Stats()
	fmt.Printf("broadcast query (region/amount): %d docs, %d shard call(s), targeted=%d broadcast=%d\n",
		len(docs), stats.ShardCalls, stats.TargetedQueries, stats.BroadcastQueries)

	// Sharded aggregation: the $match/$project prefix runs on each shard, the
	// $group merge runs on the router.
	out, err := router.Aggregate("shop", "orders", []*bson.Doc{
		bson.D("$match", bson.D("amount", bson.D("$gte", 10.0))),
		bson.D("$group", bson.D(bson.IDKey, "$region", "revenue", bson.D("$sum", "$amount"), "orders", bson.D("$sum", 1))),
		bson.D("$sort", bson.D("revenue", -1)),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrevenue by region (sharded aggregation):")
	for _, d := range out {
		fmt.Printf("  %s\n", d)
	}

	// The shard-count calculator of §2.1.3.2.
	rec, err := cluster.RecommendShards(cluster.SizingInputs{
		StorageBytes:    1536 << 30,
		ShardDiskBytes:  256 << 30,
		WorkingSetBytes: 200 << 30,
		ShardRAMBytes:   64 << 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nshard sizing for 1.5TB data / 200GB working set: disk=%d RAM=%d -> recommend %d shards\n",
		rec.ByDisk, rec.ByRAM, rec.Recommended)
}
