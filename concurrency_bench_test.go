// Benchmarks for the MVCC read path (PR 5): reader throughput while a bulk
// writer continuously mutates the same collection.
//
//	BenchmarkConcurrentScanUnderWrites          — 8 reader goroutines draining
//	    full-collection cursors against one storage.Collection while a writer
//	    streams unordered bulk multi-update batches that rewrite every
//	    document per batch. Reported reader_docs/s is the headline number for
//	    the copy-on-write snapshot engine: before it, every cursor batch
//	    queued behind the writer's collection lock.
//	BenchmarkConcurrentScanUnderWritesSharded   — the same shape through a
//	    4-shard query router with parallel prefetch pumps, writer routing
//	    broadcast bulk updates, readers draining merged router cursors.
//
// The collection size is constant (the writer only updates), so per-drain
// reader work does not drift as the writer makes progress and docs/s is
// comparable across runs.
package docstore_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"docstore/internal/bson"
	"docstore/internal/cluster"
	"docstore/internal/query"
	"docstore/internal/storage"
)

const (
	scanBenchReaders = 8
	scanBenchDocs    = 4000
	scanBenchGroups  = 16
	// drains per reader per benchmark iteration: enough wall time that the
	// writer interleaves with every reader even at -benchtime=1x.
	scanBenchDrains = 4
)

// scanBenchUpdateBatch rewrites every document: one multi-update per group,
// batched unordered, so a single BulkWrite touches the whole collection the
// way the re-balancing loads of Experiments 1-6 do.
func scanBenchUpdateBatch() []storage.WriteOp {
	ops := make([]storage.WriteOp, scanBenchGroups)
	for g := 0; g < scanBenchGroups; g++ {
		ops[g] = storage.UpdateWriteOp(query.UpdateSpec{
			Query:  bson.D("g", g),
			Update: bson.D("$inc", bson.D("v", 1)),
			Multi:  true,
		})
	}
	return ops
}

func scanBenchSeedOps(n int) []storage.WriteOp {
	ops := make([]storage.WriteOp, n)
	for i := 0; i < n; i++ {
		ops[i] = storage.InsertWriteOp(bson.D(
			bson.IDKey, fmt.Sprintf("seed-%d", i),
			"g", i%scanBenchGroups,
			"v", 0,
			"pad", fmt.Sprintf("item-%06d", i),
		))
	}
	return ops
}

func BenchmarkConcurrentScanUnderWrites(b *testing.B) {
	c := storage.NewCollection("scans")
	if _, err := c.EnsureIndexDoc(bson.D("g", 1), false); err != nil {
		b.Fatal(err)
	}
	if res := c.BulkWrite(scanBenchSeedOps(scanBenchDocs), storage.BulkOptions{}); res.FirstError() != nil {
		b.Fatal(res.FirstError())
	}

	b.ReportAllocs()
	b.ResetTimer()
	var readerDocs, writerBatches int64
	for n := 0; n < b.N; n++ {
		stop := make(chan struct{})
		var writerWG sync.WaitGroup
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res := c.BulkWrite(scanBenchUpdateBatch(), storage.BulkOptions{})
				if err := res.FirstError(); err != nil {
					b.Error(err)
					return
				}
				atomic.AddInt64(&writerBatches, 1)
			}
		}()

		var readerWG sync.WaitGroup
		for r := 0; r < scanBenchReaders; r++ {
			readerWG.Add(1)
			go func() {
				defer readerWG.Done()
				for d := 0; d < scanBenchDrains; d++ {
					cur, err := c.FindCursor(nil, storage.FindOptions{})
					if err != nil {
						b.Error(err)
						return
					}
					read := 0
					for {
						batch := cur.NextBatch()
						if len(batch) == 0 {
							break
						}
						read += len(batch)
					}
					atomic.AddInt64(&readerDocs, int64(read))
					if read != scanBenchDocs {
						b.Errorf("reader drained %d docs, want %d", read, scanBenchDocs)
						return
					}
				}
			}()
		}
		readerWG.Wait()
		close(stop)
		writerWG.Wait()
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(atomic.LoadInt64(&readerDocs))/s, "reader_docs/s")
		b.ReportMetric(float64(atomic.LoadInt64(&writerBatches))/s, "writer_batches/s")
	}
}

func BenchmarkConcurrentScanUnderWritesSharded(b *testing.B) {
	cl := cluster.MustBuild(cluster.Config{
		Shards:          4,
		NetworkLatency:  benchRouterLatency,
		ParallelScatter: true,
		ChunkSizeBytes:  1 << 20,
	})
	r := cl.Router()
	if _, err := r.EnableSharding("bench", "scans", bson.D("g", "hashed"), 1<<20); err != nil {
		b.Fatal(err)
	}
	if res := r.BulkWrite("bench", "scans", scanBenchSeedOps(scanBenchDocs), storage.BulkOptions{}); res.FirstError() != nil {
		b.Fatal(res.FirstError())
	}

	b.ReportAllocs()
	b.ResetTimer()
	var readerDocs, writerBatches int64
	for n := 0; n < b.N; n++ {
		stop := make(chan struct{})
		var writerWG sync.WaitGroup
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Updates filter on a non-shard-key predicate pattern per
				// group value; the hashed shard key on g routes each
				// multi-update to one shard, so the writer keeps all four
				// shards busy.
				res := r.BulkWrite("bench", "scans", scanBenchUpdateBatch(), storage.BulkOptions{})
				if err := res.FirstError(); err != nil {
					b.Error(err)
					return
				}
				atomic.AddInt64(&writerBatches, 1)
			}
		}()

		var readerWG sync.WaitGroup
		for rd := 0; rd < scanBenchReaders; rd++ {
			readerWG.Add(1)
			go func() {
				defer readerWG.Done()
				for d := 0; d < scanBenchDrains; d++ {
					cur, err := r.FindCursor("bench", "scans", nil, storage.FindOptions{})
					if err != nil {
						b.Error(err)
						return
					}
					read := 0
					for {
						doc, ok := cur.Next()
						if !ok {
							break
						}
						_ = doc
						read++
					}
					cur.Close()
					atomic.AddInt64(&readerDocs, int64(read))
					if read != scanBenchDocs {
						b.Errorf("reader drained %d docs, want %d", read, scanBenchDocs)
						return
					}
				}
			}()
		}
		readerWG.Wait()
		close(stop)
		writerWG.Wait()
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(atomic.LoadInt64(&readerDocs))/s, "reader_docs/s")
		b.ReportMetric(float64(atomic.LoadInt64(&writerBatches))/s, "writer_batches/s")
	}
}
