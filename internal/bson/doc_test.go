package bson

import (
	"testing"
	"time"
)

func TestDocSetGet(t *testing.T) {
	d := NewDoc(2)
	d.Set("a", 1)
	d.Set("b", "hello")
	if v, ok := d.Get("a"); !ok || v != int64(1) {
		t.Fatalf("Get(a) = %v, %v; want 1, true", v, ok)
	}
	if v, ok := d.Get("b"); !ok || v != "hello" {
		t.Fatalf("Get(b) = %v, %v; want hello, true", v, ok)
	}
	if _, ok := d.Get("c"); ok {
		t.Fatalf("Get(c) should not exist")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
}

func TestDocSetOverwritePreservesOrder(t *testing.T) {
	d := D("x", 1, "y", 2, "z", 3)
	d.Set("y", 20)
	keys := d.Keys()
	want := []string{"x", "y", "z"}
	for i, k := range want {
		if keys[i] != k {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
	if v, _ := d.Get("y"); v != int64(20) {
		t.Fatalf("y = %v, want 20", v)
	}
}

func TestDConstructorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for odd arguments")
		}
	}()
	D("a", 1, "b")
}

func TestDocDelete(t *testing.T) {
	d := D("a", 1, "b", 2, "c", 3)
	if !d.Delete("b") {
		t.Fatalf("Delete(b) = false, want true")
	}
	if d.Delete("b") {
		t.Fatalf("second Delete(b) = true, want false")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if d.Has("b") {
		t.Fatalf("b should be gone")
	}
}

func TestDocGetOr(t *testing.T) {
	d := D("a", 1)
	if v := d.GetOr("a", 99); v != int64(1) {
		t.Fatalf("GetOr(a) = %v", v)
	}
	if v := d.GetOr("missing", 99); v != 99 {
		t.Fatalf("GetOr(missing) = %v", v)
	}
}

func TestDocGetPath(t *testing.T) {
	d := D("customer", D("address", D("city", "Cincinnati", "zip", "45221")))
	v, ok := d.GetPath("customer.address.city")
	if !ok || v != "Cincinnati" {
		t.Fatalf("GetPath = %v, %v", v, ok)
	}
	if _, ok := d.GetPath("customer.address.street"); ok {
		t.Fatalf("missing path should not resolve")
	}
	if _, ok := d.GetPath("customer.name.first"); ok {
		t.Fatalf("path through missing field should not resolve")
	}
	// Single-segment path.
	if v, ok := d.GetPath("customer"); !ok || v == nil {
		t.Fatalf("single segment path failed")
	}
}

func TestDocLookupPathAllThroughArrays(t *testing.T) {
	d := D("books", A(
		D("title", "MongoDB", "pages", 216),
		D("title", "Java in a Nutshell", "pages", 418),
	))
	vals := d.LookupPathAll("books.pages")
	if len(vals) != 2 {
		t.Fatalf("got %d values, want 2", len(vals))
	}
	if vals[0] != int64(216) || vals[1] != int64(418) {
		t.Fatalf("vals = %v", vals)
	}
	if got := d.LookupPathAll("books.missing"); len(got) != 0 {
		t.Fatalf("missing leaf should yield nothing, got %v", got)
	}
}

func TestDocSetPath(t *testing.T) {
	d := NewDoc(1)
	if err := d.SetPath("a.b.c", 7); err != nil {
		t.Fatalf("SetPath: %v", err)
	}
	v, ok := d.GetPath("a.b.c")
	if !ok || v != int64(7) {
		t.Fatalf("GetPath after SetPath = %v, %v", v, ok)
	}
	// Setting through a scalar should error.
	d2 := D("a", 5)
	if err := d2.SetPath("a.b", 1); err == nil {
		t.Fatalf("SetPath through scalar should fail")
	}
}

func TestDocDeletePath(t *testing.T) {
	d := D("a", D("b", D("c", 1, "d", 2)))
	if !d.DeletePath("a.b.c") {
		t.Fatalf("DeletePath failed")
	}
	if _, ok := d.GetPath("a.b.c"); ok {
		t.Fatalf("a.b.c still present")
	}
	if _, ok := d.GetPath("a.b.d"); !ok {
		t.Fatalf("a.b.d should survive")
	}
	if d.DeletePath("a.x.y") {
		t.Fatalf("DeletePath on missing intermediate should be false")
	}
}

func TestDocClone(t *testing.T) {
	d := D("n", 1, "sub", D("x", A(1, 2, 3)))
	c := d.Clone()
	if !d.Equal(c) {
		t.Fatalf("clone not equal to original")
	}
	// Mutating the clone must not affect the original.
	sub, _ := c.Get("sub")
	sub.(*Doc).Set("x", "changed")
	orig, _ := d.GetPath("sub.x")
	if _, isArr := orig.([]any); !isArr {
		t.Fatalf("original mutated by clone edit: %v", orig)
	}
}

func TestDocEqualAndUnordered(t *testing.T) {
	a := D("x", 1, "y", D("p", 1, "q", 2))
	b := D("x", 1, "y", D("p", 1, "q", 2))
	c := D("y", D("q", 2, "p", 1), "x", 1)
	if !a.Equal(b) {
		t.Fatalf("a should equal b")
	}
	if a.Equal(c) {
		t.Fatalf("a should not be order-equal to c")
	}
	if !a.EqualUnordered(c) {
		t.Fatalf("a should be unordered-equal to c")
	}
	d := D("x", 1, "y", D("p", 1, "q", 3))
	if a.EqualUnordered(d) {
		t.Fatalf("different values should not be unordered-equal")
	}
}

func TestDocIDAndString(t *testing.T) {
	id := NewObjectID()
	d := D(IDKey, id, "name", "store_sales")
	if got := d.ID(); got != id {
		t.Fatalf("ID() = %v, want %v", got, id)
	}
	s := d.String()
	if s == "" || s[0] != '{' {
		t.Fatalf("String() = %q", s)
	}
}

func TestNilDocAccessors(t *testing.T) {
	var d *Doc
	if d.Len() != 0 {
		t.Fatalf("nil Len != 0")
	}
	if d.Keys() != nil {
		t.Fatalf("nil Keys != nil")
	}
	if _, ok := d.Get("a"); ok {
		t.Fatalf("nil Get should miss")
	}
	if _, ok := d.GetPath("a.b"); ok {
		t.Fatalf("nil GetPath should miss")
	}
	if d.Clone() != nil {
		t.Fatalf("nil Clone should be nil")
	}
}

func TestNormalizeScalars(t *testing.T) {
	cases := []struct {
		in   any
		want any
	}{
		{int(5), int64(5)},
		{int8(5), int64(5)},
		{int16(5), int64(5)},
		{int32(5), int64(5)},
		{uint(5), int64(5)},
		{uint8(5), int64(5)},
		{uint16(5), int64(5)},
		{uint32(5), int64(5)},
		{uint64(5), int64(5)},
		{float32(2.5), float64(2.5)},
		{"s", "s"},
		{true, true},
		{nil, nil},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%v %T) = %v %T, want %v", c.in, c.in, got, got, c.want)
		}
	}
}

func TestNormalizeSlicesAndMaps(t *testing.T) {
	v := Normalize([]int{1, 2, 3})
	arr, ok := v.([]any)
	if !ok || len(arr) != 3 || arr[0] != int64(1) {
		t.Fatalf("Normalize([]int) = %v", v)
	}
	v = Normalize([]string{"a", "b"})
	arr = v.([]any)
	if arr[1] != "b" {
		t.Fatalf("Normalize([]string) = %v", v)
	}
	v = Normalize(map[string]any{"b": 2, "a": 1})
	d, ok := v.(*Doc)
	if !ok {
		t.Fatalf("Normalize(map) = %T", v)
	}
	keys := d.Keys()
	if keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("map keys not sorted: %v", keys)
	}
	v = Normalize([]float64{1.5})
	if v.([]any)[0] != 1.5 {
		t.Fatalf("Normalize([]float64) = %v", v)
	}
	v = Normalize([]*Doc{D("a", 1)})
	if _, ok := v.([]any)[0].(*Doc); !ok {
		t.Fatalf("Normalize([]*Doc) = %v", v)
	}
	v = Normalize([]int64{9})
	if v.([]any)[0] != int64(9) {
		t.Fatalf("Normalize([]int64) = %v", v)
	}
	// Unknown types degrade to strings rather than failing.
	type odd struct{ X int }
	if _, ok := Normalize(odd{1}).(string); !ok {
		t.Fatalf("unknown type should normalize to string")
	}
}

func TestTruthy(t *testing.T) {
	falsy := []any{nil, false, int64(0), float64(0)}
	for _, v := range falsy {
		if Truthy(v) {
			t.Errorf("Truthy(%v) = true, want false", v)
		}
	}
	truthy := []any{true, int64(1), float64(0.1), "", "x", D("a", 1), A(), time.Now()}
	for _, v := range truthy {
		if !Truthy(Normalize(v)) {
			t.Errorf("Truthy(%v) = false, want true", v)
		}
	}
}
