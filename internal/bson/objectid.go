package bson

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"
)

// ObjectID is the default primary key type: a 12-byte identifier generated
// from a timestamp, a machine identifier, a process identifier, and a
// process-local counter, mirroring the layout described in §2.1 of the
// thesis.
type ObjectID [12]byte

var (
	objectIDCounter uint32
	machineID       = [3]byte{0x1f, 0x3d, 0x5b}
	processID       = uint16(0x2a17)
)

// NewObjectID returns a new unique ObjectID.
func NewObjectID() ObjectID {
	return NewObjectIDFromTime(time.Now())
}

// NewObjectIDFromTime returns an ObjectID whose leading 4 bytes encode t.
// The remaining bytes are the machine id, process id and an incrementing
// counter, so ids generated within one process are unique and ordered.
func NewObjectIDFromTime(t time.Time) ObjectID {
	var id ObjectID
	binary.BigEndian.PutUint32(id[0:4], uint32(t.Unix()))
	copy(id[4:7], machineID[:])
	binary.BigEndian.PutUint16(id[7:9], processID)
	c := atomic.AddUint32(&objectIDCounter, 1)
	id[9] = byte(c >> 16)
	id[10] = byte(c >> 8)
	id[11] = byte(c)
	return id
}

// ObjectIDFromHex parses a 24-character hexadecimal ObjectID representation.
func ObjectIDFromHex(s string) (ObjectID, error) {
	var id ObjectID
	if len(s) != 24 {
		return id, fmt.Errorf("bson: invalid ObjectID hex length %d", len(s))
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return id, fmt.Errorf("bson: invalid ObjectID hex: %w", err)
	}
	copy(id[:], b)
	return id, nil
}

// Hex returns the 24-character hexadecimal representation of the id.
func (id ObjectID) Hex() string { return hex.EncodeToString(id[:]) }

// Timestamp returns the creation time encoded in the id.
func (id ObjectID) Timestamp() time.Time {
	return time.Unix(int64(binary.BigEndian.Uint32(id[0:4])), 0)
}

// String implements fmt.Stringer.
func (id ObjectID) String() string { return "ObjectId(\"" + id.Hex() + "\")" }

// IsZero reports whether the id is the zero value.
func (id ObjectID) IsZero() bool { return id == ObjectID{} }
