package bson

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"
)

// JSON interchange for documents. Field order is preserved in both
// directions: encoding walks the ordered fields, decoding uses a streaming
// token decoder rather than an intermediate map.

// MarshalJSON implements json.Marshaler for Doc.
func (d *Doc) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	if err := writeJSONDoc(&buf, d); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ToJSON renders the document as a JSON string.
func (d *Doc) ToJSON() string {
	b, err := d.MarshalJSON()
	if err != nil {
		return "{}"
	}
	return string(b)
}

func writeJSONDoc(buf *bytes.Buffer, d *Doc) error {
	buf.WriteByte('{')
	for i, f := range d.Fields() {
		if i > 0 {
			buf.WriteByte(',')
		}
		key, err := json.Marshal(f.Key)
		if err != nil {
			return err
		}
		buf.Write(key)
		buf.WriteByte(':')
		if err := writeJSONValue(buf, f.Value); err != nil {
			return err
		}
	}
	buf.WriteByte('}')
	return nil
}

func writeJSONValue(buf *bytes.Buffer, v any) error {
	switch t := v.(type) {
	case nil:
		buf.WriteString("null")
	case bool:
		if t {
			buf.WriteString("true")
		} else {
			buf.WriteString("false")
		}
	case int64:
		buf.WriteString(strconv.FormatInt(t, 10))
	case float64:
		if t == math.Trunc(t) && math.Abs(t) < 1e21 {
			// Integral doubles would otherwise render without a decimal
			// point or exponent and re-decode as int64, silently changing
			// the value's BSON type across a round trip.
			buf.WriteString(strconv.FormatFloat(t, 'f', 1, 64))
			break
		}
		b, err := json.Marshal(t)
		if err != nil {
			return err
		}
		buf.Write(b)
	case string:
		b, err := json.Marshal(t)
		if err != nil {
			return err
		}
		buf.Write(b)
	case ObjectID:
		fmt.Fprintf(buf, `{"$oid":%q}`, t.Hex())
	case time.Time:
		fmt.Fprintf(buf, `{"$date":%q}`, t.UTC().Format(time.RFC3339Nano))
	case *Doc:
		return writeJSONDoc(buf, t)
	case []any:
		buf.WriteByte('[')
		for i, e := range t {
			if i > 0 {
				buf.WriteByte(',')
			}
			if err := writeJSONValue(buf, e); err != nil {
				return err
			}
		}
		buf.WriteByte(']')
	default:
		b, err := json.Marshal(fmt.Sprintf("%v", t))
		if err != nil {
			return err
		}
		buf.Write(b)
	}
	return nil
}

// FromJSON parses a single JSON object into a document, preserving field
// order and mapping the extended forms {"$oid": ...} and {"$date": ...} back
// to ObjectID and time.Time values.
func FromJSON(data []byte) (*Doc, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	v, err := decodeJSONValue(dec)
	if err != nil {
		return nil, err
	}
	d, ok := v.(*Doc)
	if !ok {
		return nil, fmt.Errorf("bson: top-level JSON value is %T, not an object", v)
	}
	return d, nil
}

// FromJSONString is FromJSON for string input.
func FromJSONString(s string) (*Doc, error) { return FromJSON([]byte(s)) }

// DecodeJSONStream reads newline- or whitespace-separated JSON objects from r
// and invokes fn for each decoded document, stopping at EOF or the first
// error returned by fn.
func DecodeJSONStream(r io.Reader, fn func(*Doc) error) error {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	for {
		v, err := decodeJSONValue(dec)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		d, ok := v.(*Doc)
		if !ok {
			return fmt.Errorf("bson: stream element is %T, not an object", v)
		}
		if err := fn(d); err != nil {
			return err
		}
	}
}

func decodeJSONValue(dec *json.Decoder) (any, error) {
	tok, err := dec.Token()
	if err != nil {
		return nil, err
	}
	return decodeFromToken(dec, tok)
}

func decodeFromToken(dec *json.Decoder, tok json.Token) (any, error) {
	switch t := tok.(type) {
	case json.Delim:
		switch t {
		case '{':
			return decodeJSONObject(dec)
		case '[':
			return decodeJSONArray(dec)
		default:
			return nil, fmt.Errorf("bson: unexpected delimiter %q", t)
		}
	case string:
		return t, nil
	case json.Number:
		return decodeNumber(t), nil
	case bool:
		return t, nil
	case nil:
		return nil, nil
	default:
		return nil, fmt.Errorf("bson: unexpected JSON token %v (%T)", tok, tok)
	}
}

func decodeNumber(n json.Number) any {
	s := n.String()
	if !strings.ContainsAny(s, ".eE") {
		if i, err := n.Int64(); err == nil {
			return i
		}
	}
	f, err := n.Float64()
	if err != nil {
		return s
	}
	return f
}

func decodeJSONObject(dec *json.Decoder) (any, error) {
	d := NewDoc(4)
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		key, ok := keyTok.(string)
		if !ok {
			return nil, fmt.Errorf("bson: object key is %T, not a string", keyTok)
		}
		v, err := decodeJSONValue(dec)
		if err != nil {
			return nil, err
		}
		d.Set(key, v)
	}
	if _, err := dec.Token(); err != nil { // consume '}'
		return nil, err
	}
	return promoteExtended(d), nil
}

func decodeJSONArray(dec *json.Decoder) (any, error) {
	var arr []any
	for dec.More() {
		v, err := decodeJSONValue(dec)
		if err != nil {
			return nil, err
		}
		arr = append(arr, v)
	}
	if _, err := dec.Token(); err != nil { // consume ']'
		return nil, err
	}
	if arr == nil {
		arr = []any{}
	}
	return arr, nil
}

// promoteExtended converts {"$oid": "..."} and {"$date": "..."} documents
// into their native value types.
func promoteExtended(d *Doc) any {
	if d.Len() != 1 {
		return d
	}
	f := d.Fields()[0]
	switch f.Key {
	case "$oid":
		if s, ok := f.Value.(string); ok {
			if id, err := ObjectIDFromHex(s); err == nil {
				return id
			}
		}
	case "$date":
		if s, ok := f.Value.(string); ok {
			if ts, err := time.Parse(time.RFC3339Nano, s); err == nil {
				return ts.UTC()
			}
		}
	}
	return d
}
