package bson

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestTypeOfAndString(t *testing.T) {
	cases := []struct {
		v    any
		want Type
	}{
		{nil, TypeNull},
		{int64(3), TypeNumber},
		{3.5, TypeNumber},
		{"s", TypeString},
		{D("a", 1), TypeDocument},
		{A(1, 2), TypeArray},
		{NewObjectID(), TypeObjectID},
		{true, TypeBool},
		{time.Now(), TypeDate},
	}
	for _, c := range cases {
		if got := TypeOf(c.v); got != c.want {
			t.Errorf("TypeOf(%v) = %v, want %v", c.v, got, c.want)
		}
	}
	names := map[Type]string{
		TypeNull: "null", TypeNumber: "number", TypeString: "string",
		TypeDocument: "document", TypeArray: "array", TypeObjectID: "objectId",
		TypeBool: "bool", TypeDate: "date",
	}
	for ty, want := range names {
		if ty.String() != want {
			t.Errorf("%d.String() = %q, want %q", ty, ty.String(), want)
		}
	}
	if Type(99).String() == "" {
		t.Errorf("unknown type should still produce a name")
	}
}

func TestCompareSameType(t *testing.T) {
	cases := []struct {
		a, b any
		want int
	}{
		{int64(1), int64(2), -1},
		{int64(2), int64(2), 0},
		{int64(3), int64(2), 1},
		{int64(2), 2.5, -1},
		{2.5, int64(2), 1},
		{2.0, int64(2), 0},
		{"a", "b", -1},
		{"b", "b", 0},
		{"c", "b", 1},
		{true, false, 1},
		{false, true, -1},
		{true, true, 0},
		{nil, nil, 0},
	}
	for _, c := range cases {
		if got := Compare(Normalize(c.a), Normalize(c.b)); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareCrossTypeOrder(t *testing.T) {
	// null < number < string < document < array < objectid < bool < date
	ordered := []any{nil, int64(5), "s", D("a", 1), A(1), NewObjectID(), true, time.Now()}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			got := Compare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestCompareDocsAndArrays(t *testing.T) {
	if Compare(D("a", 1), D("a", 1)) != 0 {
		t.Errorf("equal docs should compare 0")
	}
	if Compare(D("a", 1), D("a", 2)) != -1 {
		t.Errorf("doc value ordering wrong")
	}
	if Compare(D("a", 1), D("b", 1)) != -1 {
		t.Errorf("doc key ordering wrong")
	}
	if Compare(D("a", 1), D("a", 1, "b", 2)) != -1 {
		t.Errorf("shorter doc should sort first")
	}
	if Compare(A(1, 2), A(1, 3)) != -1 {
		t.Errorf("array element ordering wrong")
	}
	if Compare(A(1, 2), A(1, 2, 3)) != -1 {
		t.Errorf("shorter array should sort first")
	}
	if Compare(A(1, 2, 3), A(1, 2)) != 1 {
		t.Errorf("longer array should sort last")
	}
}

func TestCompareDates(t *testing.T) {
	t1 := time.Date(2001, 1, 1, 0, 0, 0, 0, time.UTC)
	t2 := time.Date(2002, 5, 29, 0, 0, 0, 0, time.UTC)
	if Compare(t1, t2) != -1 || Compare(t2, t1) != 1 || Compare(t1, t1) != 0 {
		t.Errorf("date comparison broken")
	}
}

func TestCompareObjectIDs(t *testing.T) {
	a := ObjectID{1}
	b := ObjectID{2}
	if Compare(a, b) != -1 || Compare(b, a) != 1 || Compare(a, a) != 0 {
		t.Errorf("objectid comparison broken")
	}
}

func TestCompareNaN(t *testing.T) {
	nan := math.NaN()
	if Compare(nan, 1.0) != -1 {
		t.Errorf("NaN should sort before numbers")
	}
	if Compare(1.0, nan) != 1 {
		t.Errorf("numbers should sort after NaN")
	}
	if Compare(nan, nan) != 0 {
		t.Errorf("NaN should equal NaN in the total order")
	}
}

func TestAsFloatAsInt(t *testing.T) {
	if f, ok := AsFloat(int64(3)); !ok || f != 3.0 {
		t.Errorf("AsFloat(int64) = %v, %v", f, ok)
	}
	if f, ok := AsFloat(3.5); !ok || f != 3.5 {
		t.Errorf("AsFloat(float64) = %v, %v", f, ok)
	}
	if _, ok := AsFloat("x"); ok {
		t.Errorf("AsFloat(string) should fail")
	}
	if i, ok := AsInt(3.9); !ok || i != 3 {
		t.Errorf("AsInt(3.9) = %v, %v", i, ok)
	}
	if i, ok := AsInt(int64(7)); !ok || i != 7 {
		t.Errorf("AsInt(int64) = %v, %v", i, ok)
	}
	if _, ok := AsInt(nil); ok {
		t.Errorf("AsInt(nil) should fail")
	}
	if !IsNumeric(int64(1)) || !IsNumeric(1.0) || IsNumeric("1") {
		t.Errorf("IsNumeric misbehaves")
	}
}

// randomValue builds a random canonical value for property tests.
func randomValue(r *rand.Rand, depth int) any {
	kind := r.Intn(8)
	if depth <= 0 && (kind == 3 || kind == 4) {
		kind = r.Intn(3)
	}
	switch kind {
	case 0:
		return nil
	case 1:
		return int64(r.Intn(2001) - 1000)
	case 2:
		return r.Float64()*2000 - 1000
	case 3:
		d := NewDoc(2)
		n := r.Intn(3)
		for i := 0; i < n; i++ {
			d.Set(randomKey(r), randomValue(r, depth-1))
		}
		return d
	case 4:
		n := r.Intn(3)
		arr := make([]any, n)
		for i := range arr {
			arr[i] = randomValue(r, depth-1)
		}
		return arr
	case 5:
		return randomKey(r)
	case 6:
		return r.Intn(2) == 0
	default:
		return time.UnixMilli(int64(r.Intn(1 << 30))).UTC()
	}
}

func randomKey(r *rand.Rand) string {
	letters := "abcdefgh"
	n := 1 + r.Intn(6)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return string(b)
}

func TestCompareTotalOrderProperties(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	const n = 300
	vals := make([]any, n)
	for i := range vals {
		vals[i] = randomValue(r, 2)
	}
	// Antisymmetry and reflexivity.
	for i := 0; i < n; i++ {
		if Compare(vals[i], vals[i]) != 0 {
			t.Fatalf("value %v not equal to itself", vals[i])
		}
		for j := 0; j < n; j++ {
			if Compare(vals[i], vals[j]) != -Compare(vals[j], vals[i]) {
				t.Fatalf("antisymmetry violated for %v vs %v", vals[i], vals[j])
			}
		}
	}
	// Transitivity over random triples.
	for k := 0; k < 2000; k++ {
		a, b, c := vals[r.Intn(n)], vals[r.Intn(n)], vals[r.Intn(n)]
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			t.Fatalf("transitivity violated: %v <= %v <= %v but a > c", a, b, c)
		}
	}
}

func TestCompareIntFloatEquivalenceQuick(t *testing.T) {
	// For any int32-range integer, comparing as int64 or float64 must agree.
	f := func(a, b int32) bool {
		ci := Compare(int64(a), int64(b))
		cf := Compare(float64(a), float64(b))
		cm := Compare(int64(a), float64(b))
		return ci == cf && cf == cm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
