package bson

import (
	"bytes"
	"testing"
)

// FuzzExtJSONRoundTrip feeds arbitrary byte strings through the extended
// JSON decoder; every successfully decoded document must survive a
// ToJSON → FromJSON round trip with identical canonical BSON bytes, and the
// binary codec must agree with itself on the same document. Seeds come from
// the JSON shapes exercised by the unit tests and the wire protocol.
func FuzzExtJSONRoundTrip(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"a": 1}`,
		`{"a": -1.5, "b": "x", "c": true, "d": null}`,
		`{"_id": 7, "nested": {"k": [1, 2, {"deep": "v"}]}}`,
		`{"s": "with \"quotes\" and \\ backslash é"}`,
		`{"n": 9007199254740993}`,
		`{"f": 1e300, "tiny": 1e-300}`,
		`{"arr": [], "doc": {}, "mix": [null, false, 0, ""]}`,
		`{"op": "find", "db": "Dataset_1GB", "coll": "store_sales", "filter": {"ss_ticket_number": 1}, "limit": 10}`,
		`{"ok": true, "docs": [{"name": "a"}], "n": 3}`,
		`{"$oid": "0102030405060708090a0b0c"}`,
		`{"dup": 1, "dup": 2}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := FromJSON(data)
		if err != nil {
			return // malformed input is allowed to fail
		}
		js := doc.ToJSON()
		doc2, err := FromJSON([]byte(js))
		if err != nil {
			t.Fatalf("re-decoding our own JSON %q failed: %v", js, err)
		}
		b1, b2 := Marshal(doc), Marshal(doc2)
		if !bytes.Equal(b1, b2) {
			t.Fatalf("extended-JSON round trip changed the document:\n in:  %v\n out: %v", doc, doc2)
		}
		// The binary codec must also round-trip the decoded document.
		back, err := Unmarshal(b1)
		if err != nil {
			t.Fatalf("Unmarshal(Marshal(doc)) failed: %v", err)
		}
		if !bytes.Equal(Marshal(back), b1) {
			t.Fatalf("binary round trip changed the document:\n in:  %v\n out: %v", doc, back)
		}
	})
}
