package bson

import (
	"testing"
	"time"
)

func TestNewObjectIDUniqueness(t *testing.T) {
	seen := make(map[ObjectID]bool)
	for i := 0; i < 10000; i++ {
		id := NewObjectID()
		if seen[id] {
			t.Fatalf("duplicate ObjectID generated: %v", id)
		}
		seen[id] = true
	}
}

func TestObjectIDHexRoundTrip(t *testing.T) {
	id := NewObjectID()
	hexStr := id.Hex()
	if len(hexStr) != 24 {
		t.Fatalf("hex length = %d, want 24", len(hexStr))
	}
	back, err := ObjectIDFromHex(hexStr)
	if err != nil {
		t.Fatalf("ObjectIDFromHex: %v", err)
	}
	if back != id {
		t.Fatalf("round trip mismatch: %v vs %v", back, id)
	}
}

func TestObjectIDFromHexErrors(t *testing.T) {
	if _, err := ObjectIDFromHex("short"); err == nil {
		t.Fatalf("short hex should error")
	}
	if _, err := ObjectIDFromHex("zzzzzzzzzzzzzzzzzzzzzzzz"); err == nil {
		t.Fatalf("non-hex should error")
	}
}

func TestObjectIDTimestamp(t *testing.T) {
	ts := time.Date(2015, 11, 9, 10, 30, 0, 0, time.UTC)
	id := NewObjectIDFromTime(ts)
	if got := id.Timestamp().UTC(); !got.Equal(ts) {
		t.Fatalf("Timestamp = %v, want %v", got, ts)
	}
}

func TestObjectIDStringAndZero(t *testing.T) {
	var zero ObjectID
	if !zero.IsZero() {
		t.Fatalf("zero value should be zero")
	}
	id := NewObjectID()
	if id.IsZero() {
		t.Fatalf("generated id should not be zero")
	}
	s := id.String()
	if len(s) == 0 || s[:9] != "ObjectId(" {
		t.Fatalf("String() = %q", s)
	}
}

func TestObjectIDsMonotonicWithinSameTime(t *testing.T) {
	ts := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	prev := NewObjectIDFromTime(ts)
	for i := 0; i < 100; i++ {
		next := NewObjectIDFromTime(ts)
		if Compare(prev, next) >= 0 {
			t.Fatalf("ids not increasing: %v then %v", prev, next)
		}
		prev = next
	}
}
