package bson

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Binary encoding of documents. The format is a compact length-prefixed
// layout reminiscent of BSON: it is used for persistence snapshots, for the
// wire protocol, and as the canonical definition of a document's on-disk size
// (which in turn drives the 16 MB document limit, chunk sizes, and the
// selectivity measurements of Table 4.4).

// Element type tags in the binary encoding.
const (
	tagNull     = 0x0A
	tagFloat    = 0x01
	tagInt64    = 0x12
	tagString   = 0x02
	tagDocument = 0x03
	tagArray    = 0x04
	tagObjectID = 0x07
	tagBool     = 0x08
	tagDate     = 0x09
)

// Marshal encodes a document into its binary representation.
func Marshal(d *Doc) []byte {
	buf := make([]byte, 0, 128)
	return appendDoc(buf, d)
}

// EncodedSize returns the size in bytes of the binary encoding of d without
// materializing it. This is the document "size" everywhere the engine needs
// one (16 MB limit, chunk accounting, result-set selectivity).
func EncodedSize(d *Doc) int {
	size := 4 + 1 // length prefix + terminator
	for _, f := range d.Fields() {
		size += 1 + len(f.Key) + 1 + valueSize(f.Value)
	}
	return size
}

func valueSize(v any) int {
	switch t := v.(type) {
	case nil:
		return 0
	case float64, int64, time.Time:
		return 8
	case string:
		return 4 + len(t) + 1
	case bool:
		return 1
	case ObjectID:
		return 12
	case *Doc:
		return EncodedSize(t)
	case []any:
		size := 4 + 1
		for i, e := range t {
			size += 1 + len(indexKey(i)) + 1 + valueSize(e)
		}
		return size
	default:
		return 0
	}
}

func indexKey(i int) string { return fmt.Sprintf("%d", i) }

func appendDoc(buf []byte, d *Doc) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length placeholder
	for _, f := range d.Fields() {
		buf = appendElement(buf, f.Key, f.Value)
	}
	buf = append(buf, 0x00)
	binary.LittleEndian.PutUint32(buf[start:start+4], uint32(len(buf)-start))
	return buf
}

func appendElement(buf []byte, key string, v any) []byte {
	switch t := v.(type) {
	case nil:
		buf = append(buf, tagNull)
		buf = appendCString(buf, key)
	case float64:
		buf = append(buf, tagFloat)
		buf = appendCString(buf, key)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t))
	case int64:
		buf = append(buf, tagInt64)
		buf = appendCString(buf, key)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t))
	case string:
		buf = append(buf, tagString)
		buf = appendCString(buf, key)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t)+1))
		buf = append(buf, t...)
		buf = append(buf, 0x00)
	case bool:
		buf = append(buf, tagBool)
		buf = appendCString(buf, key)
		if t {
			buf = append(buf, 0x01)
		} else {
			buf = append(buf, 0x00)
		}
	case ObjectID:
		buf = append(buf, tagObjectID)
		buf = appendCString(buf, key)
		buf = append(buf, t[:]...)
	case time.Time:
		buf = append(buf, tagDate)
		buf = appendCString(buf, key)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.UnixMilli()))
	case *Doc:
		buf = append(buf, tagDocument)
		buf = appendCString(buf, key)
		buf = appendDoc(buf, t)
	case []any:
		buf = append(buf, tagArray)
		buf = appendCString(buf, key)
		arr := NewDoc(len(t))
		for i, e := range t {
			arr.Set(indexKey(i), e)
		}
		buf = appendDoc(buf, arr)
	default:
		// Normalize should have eliminated unknown types; encode as string to
		// stay total.
		return appendElement(buf, key, fmt.Sprintf("%v", t))
	}
	return buf
}

func appendCString(buf []byte, s string) []byte {
	buf = append(buf, s...)
	return append(buf, 0x00)
}

// Unmarshal decodes a binary document produced by Marshal.
func Unmarshal(data []byte) (*Doc, error) {
	d, rest, err := readDoc(data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("bson: %d trailing bytes after document", len(rest))
	}
	return d, nil
}

// UnmarshalPrefix decodes one document from the front of data and returns the
// remaining bytes, allowing documents to be streamed back to back.
func UnmarshalPrefix(data []byte) (*Doc, []byte, error) {
	return readDoc(data)
}

func readDoc(data []byte) (*Doc, []byte, error) {
	if len(data) < 5 {
		return nil, nil, fmt.Errorf("bson: document truncated (%d bytes)", len(data))
	}
	length := int(binary.LittleEndian.Uint32(data[:4]))
	if length < 5 || length > len(data) {
		return nil, nil, fmt.Errorf("bson: invalid document length %d (have %d bytes)", length, len(data))
	}
	body := data[4 : length-1]
	if data[length-1] != 0x00 {
		return nil, nil, fmt.Errorf("bson: missing document terminator")
	}
	d := NewDoc(4)
	for len(body) > 0 {
		tag := body[0]
		body = body[1:]
		key, rest, err := readCString(body)
		if err != nil {
			return nil, nil, err
		}
		body = rest
		var v any
		v, body, err = readValue(tag, body)
		if err != nil {
			return nil, nil, fmt.Errorf("bson: field %q: %w", key, err)
		}
		d.Set(key, v)
	}
	return d, data[length:], nil
}

func readCString(data []byte) (string, []byte, error) {
	for i, b := range data {
		if b == 0x00 {
			return string(data[:i]), data[i+1:], nil
		}
	}
	return "", nil, fmt.Errorf("bson: unterminated cstring")
}

func readValue(tag byte, data []byte) (any, []byte, error) {
	switch tag {
	case tagNull:
		return nil, data, nil
	case tagFloat:
		if len(data) < 8 {
			return nil, nil, fmt.Errorf("truncated float")
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(data[:8])), data[8:], nil
	case tagInt64:
		if len(data) < 8 {
			return nil, nil, fmt.Errorf("truncated int64")
		}
		return int64(binary.LittleEndian.Uint64(data[:8])), data[8:], nil
	case tagString:
		if len(data) < 4 {
			return nil, nil, fmt.Errorf("truncated string length")
		}
		n := int(binary.LittleEndian.Uint32(data[:4]))
		if n < 1 || 4+n > len(data) {
			return nil, nil, fmt.Errorf("invalid string length %d", n)
		}
		return string(data[4 : 4+n-1]), data[4+n:], nil
	case tagBool:
		if len(data) < 1 {
			return nil, nil, fmt.Errorf("truncated bool")
		}
		return data[0] != 0x00, data[1:], nil
	case tagObjectID:
		if len(data) < 12 {
			return nil, nil, fmt.Errorf("truncated ObjectID")
		}
		var id ObjectID
		copy(id[:], data[:12])
		return id, data[12:], nil
	case tagDate:
		if len(data) < 8 {
			return nil, nil, fmt.Errorf("truncated date")
		}
		ms := int64(binary.LittleEndian.Uint64(data[:8]))
		return time.UnixMilli(ms).UTC(), data[8:], nil
	case tagDocument:
		return readDocValue(data)
	case tagArray:
		d, rest, err := readDoc(data)
		if err != nil {
			return nil, nil, err
		}
		arr := make([]any, 0, d.Len())
		for _, f := range d.Fields() {
			arr = append(arr, f.Value)
		}
		return arr, rest, nil
	default:
		return nil, nil, fmt.Errorf("unknown element tag 0x%02x", tag)
	}
}

func readDocValue(data []byte) (any, []byte, error) {
	d, rest, err := readDoc(data)
	if err != nil {
		return nil, nil, err
	}
	return d, rest, nil
}
