// Package bson implements the document value model used throughout the
// document store: ordered documents, arrays, a BSON-like type system with a
// total ordering across types, dotted-path access, ObjectIds, and binary and
// JSON encodings.
//
// The model mirrors the subset of BSON behaviour that the reproduced thesis
// relies on: documents are ordered key/value maps, values may be nested
// documents or arrays, every document carries an _id primary key, and a
// single document may not exceed MaxDocumentSize (16 MB).
package bson

import (
	"fmt"
	"sort"
	"strings"
)

// MaxDocumentSize is the maximum encoded size of a single document (16 MB),
// matching the limit discussed in §2.1.1 of the thesis.
const MaxDocumentSize = 16 * 1024 * 1024

// IDKey is the name of the primary-key field present on every stored document.
const IDKey = "_id"

// Field is a single key/value pair inside a Doc.
type Field struct {
	Key   string
	Value any
}

// Doc is an ordered document: a sequence of fields with unique keys.
// The zero value is an empty document ready for use.
type Doc struct {
	fields []Field
}

// NewDoc returns an empty document with capacity for n fields.
func NewDoc(n int) *Doc {
	return &Doc{fields: make([]Field, 0, n)}
}

// D builds a document from alternating key/value arguments:
//
//	bson.D("a", 1, "b", "x")
//
// It panics if given an odd number of arguments or a non-string key, which is
// always a programming error at a call site.
func D(pairs ...any) *Doc {
	if len(pairs)%2 != 0 {
		panic("bson.D: odd number of arguments")
	}
	d := NewDoc(len(pairs) / 2)
	for i := 0; i < len(pairs); i += 2 {
		k, ok := pairs[i].(string)
		if !ok {
			panic(fmt.Sprintf("bson.D: key %v is not a string", pairs[i]))
		}
		d.Set(k, pairs[i+1])
	}
	return d
}

// A is a convenience constructor for arrays. Items are normalized to the
// canonical value set.
func A(items ...any) []any {
	out := make([]any, len(items))
	for i, v := range items {
		out[i] = Normalize(v)
	}
	return out
}

// Len returns the number of fields in the document.
func (d *Doc) Len() int {
	if d == nil {
		return 0
	}
	return len(d.fields)
}

// Keys returns the field names in document order.
func (d *Doc) Keys() []string {
	if d == nil {
		return nil
	}
	keys := make([]string, len(d.fields))
	for i, f := range d.fields {
		keys[i] = f.Key
	}
	return keys
}

// Fields returns the ordered fields of the document. The returned slice must
// not be modified.
func (d *Doc) Fields() []Field {
	if d == nil {
		return nil
	}
	return d.fields
}

// index returns the position of key, or -1.
func (d *Doc) index(key string) int {
	if d == nil {
		return -1
	}
	for i := range d.fields {
		if d.fields[i].Key == key {
			return i
		}
	}
	return -1
}

// Get returns the value stored at key and whether the key exists.
func (d *Doc) Get(key string) (any, bool) {
	i := d.index(key)
	if i < 0 {
		return nil, false
	}
	return d.fields[i].Value, true
}

// GetOr returns the value at key or def when the key is absent.
func (d *Doc) GetOr(key string, def any) any {
	if v, ok := d.Get(key); ok {
		return v
	}
	return def
}

// Has reports whether key exists in the document.
func (d *Doc) Has(key string) bool { return d.index(key) >= 0 }

// Set stores value at key, replacing any existing value and preserving the
// original field position; new keys are appended. It returns the document to
// allow chaining.
func (d *Doc) Set(key string, value any) *Doc {
	value = Normalize(value)
	if i := d.index(key); i >= 0 {
		d.fields[i].Value = value
		return d
	}
	d.fields = append(d.fields, Field{Key: key, Value: value})
	return d
}

// Delete removes key from the document and reports whether it was present.
func (d *Doc) Delete(key string) bool {
	i := d.index(key)
	if i < 0 {
		return false
	}
	d.fields = append(d.fields[:i], d.fields[i+1:]...)
	return true
}

// ID returns the document's _id value, or nil when unset.
func (d *Doc) ID() any { return d.GetOr(IDKey, nil) }

// Clone returns a deep copy of the document.
func (d *Doc) Clone() *Doc {
	if d == nil {
		return nil
	}
	out := NewDoc(len(d.fields))
	for _, f := range d.fields {
		out.fields = append(out.fields, Field{Key: f.Key, Value: CloneValue(f.Value)})
	}
	return out
}

// CloneValue deep-copies a document value.
func CloneValue(v any) any {
	switch t := v.(type) {
	case *Doc:
		return t.Clone()
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = CloneValue(e)
		}
		return out
	default:
		return v
	}
}

// GetPath resolves a dotted path ("a.b.c") against the document. Intermediate
// documents are traversed; if an intermediate value is an array, the first
// element that resolves wins (array-of-document traversal is handled by the
// query matcher, which needs all candidates — see LookupPathAll).
func (d *Doc) GetPath(path string) (any, bool) {
	if d == nil {
		return nil, false
	}
	if !strings.Contains(path, ".") {
		return d.Get(path)
	}
	parts := strings.Split(path, ".")
	var cur any = d
	for _, p := range parts {
		doc, ok := cur.(*Doc)
		if !ok {
			return nil, false
		}
		cur, ok = doc.Get(p)
		if !ok {
			return nil, false
		}
	}
	return cur, true
}

// LookupPathAll resolves a dotted path and returns every value reachable
// through arrays along the way. This matches query semantics where a filter
// on "books.pages" must consider every element of the "books" array.
func (d *Doc) LookupPathAll(path string) []any {
	parts := strings.Split(path, ".")
	return lookupParts(d, parts)
}

func lookupParts(v any, parts []string) []any {
	if len(parts) == 0 {
		return []any{v}
	}
	switch t := v.(type) {
	case *Doc:
		val, ok := t.Get(parts[0])
		if !ok {
			return nil
		}
		return lookupParts(val, parts[1:])
	case []any:
		var out []any
		for _, e := range t {
			out = append(out, lookupParts(e, parts)...)
		}
		return out
	default:
		return nil
	}
}

// SetPath stores value at a dotted path, creating intermediate documents as
// needed. It returns an error when an intermediate value exists but is not a
// document.
func (d *Doc) SetPath(path string, value any) error {
	parts := strings.Split(path, ".")
	cur := d
	for i := 0; i < len(parts)-1; i++ {
		next, ok := cur.Get(parts[i])
		if !ok {
			nd := NewDoc(1)
			cur.Set(parts[i], nd)
			cur = nd
			continue
		}
		nd, ok := next.(*Doc)
		if !ok {
			return fmt.Errorf("bson: cannot create field %q in element of type %T", parts[i+1], next)
		}
		cur = nd
	}
	cur.Set(parts[len(parts)-1], value)
	return nil
}

// DeletePath removes the value at a dotted path and reports whether anything
// was removed.
func (d *Doc) DeletePath(path string) bool {
	parts := strings.Split(path, ".")
	cur := d
	for i := 0; i < len(parts)-1; i++ {
		next, ok := cur.Get(parts[i])
		if !ok {
			return false
		}
		nd, ok := next.(*Doc)
		if !ok {
			return false
		}
		cur = nd
	}
	return cur.Delete(parts[len(parts)-1])
}

// Equal reports whether two documents have the same fields, in the same
// order, with equal values.
func (d *Doc) Equal(other *Doc) bool {
	if d.Len() != other.Len() {
		return false
	}
	for i := range d.fields {
		if d.fields[i].Key != other.fields[i].Key {
			return false
		}
		if Compare(d.fields[i].Value, other.fields[i].Value) != 0 {
			return false
		}
	}
	return true
}

// EqualUnordered reports whether two documents contain the same keys with
// equal values, ignoring field order. Nested documents are also compared
// unordered. This is the equality used when checking that two query plans
// return the same logical result.
func (d *Doc) EqualUnordered(other *Doc) bool {
	if d.Len() != other.Len() {
		return false
	}
	for _, f := range d.fields {
		ov, ok := other.Get(f.Key)
		if !ok {
			return false
		}
		if !valueEqualUnordered(f.Value, ov) {
			return false
		}
	}
	return true
}

func valueEqualUnordered(a, b any) bool {
	ad, aok := a.(*Doc)
	bd, bok := b.(*Doc)
	if aok && bok {
		return ad.EqualUnordered(bd)
	}
	aa, aok := a.([]any)
	ba, bok := b.([]any)
	if aok && bok {
		if len(aa) != len(ba) {
			return false
		}
		for i := range aa {
			if !valueEqualUnordered(aa[i], ba[i]) {
				return false
			}
		}
		return true
	}
	return Compare(a, b) == 0
}

// SortedKeys returns the document keys in lexicographic order. Used for
// deterministic output rendering.
func (d *Doc) SortedKeys() []string {
	keys := d.Keys()
	sort.Strings(keys)
	return keys
}

// String renders the document in a compact extended-JSON-like form, intended
// for logs and error messages.
func (d *Doc) String() string {
	var b strings.Builder
	d.writeString(&b)
	return b.String()
}

func (d *Doc) writeString(b *strings.Builder) {
	b.WriteByte('{')
	for i, f := range d.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s: ", f.Key)
		writeValueString(b, f.Value)
	}
	b.WriteByte('}')
}

func writeValueString(b *strings.Builder, v any) {
	switch t := v.(type) {
	case *Doc:
		t.writeString(b)
	case []any:
		b.WriteByte('[')
		for i, e := range t {
			if i > 0 {
				b.WriteString(", ")
			}
			writeValueString(b, e)
		}
		b.WriteByte(']')
	case string:
		fmt.Fprintf(b, "%q", t)
	default:
		fmt.Fprintf(b, "%v", t)
	}
}
