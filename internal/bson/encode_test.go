package bson

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func sampleDoc() *Doc {
	return D(
		IDKey, NewObjectID(),
		"ca_address_sk", 1,
		"ca_address_id", "AAAAAAAABAAAAAAA",
		"ca_street_number", 18,
		"ca_street_name", "Jackson",
		"price", 12.75,
		"active", true,
		"missing", nil,
		"created", time.Date(2015, 11, 9, 12, 0, 0, 0, time.UTC),
		"tags", A("retail", "tpcds", 42),
		"address", D("city", "Cincinnati", "state", "OH"),
	)
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	d := sampleDoc()
	data := Marshal(d)
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !d.Equal(got) {
		t.Fatalf("round trip mismatch:\n in: %s\nout: %s", d, got)
	}
}

func TestEncodedSizeMatchesMarshal(t *testing.T) {
	d := sampleDoc()
	if got, want := EncodedSize(d), len(Marshal(d)); got != want {
		t.Fatalf("EncodedSize = %d, len(Marshal) = %d", got, want)
	}
	empty := NewDoc(0)
	if got, want := EncodedSize(empty), len(Marshal(empty)); got != want {
		t.Fatalf("empty: EncodedSize = %d, len(Marshal) = %d", got, want)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Fatalf("nil input should error")
	}
	if _, err := Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Fatalf("short input should error")
	}
	data := Marshal(D("a", 1))
	data[0] = 0xff // corrupt the length prefix
	if _, err := Unmarshal(data); err == nil {
		t.Fatalf("corrupt length should error")
	}
	data = Marshal(D("a", 1))
	if _, err := Unmarshal(append(data, 0x00)); err == nil {
		t.Fatalf("trailing bytes should error")
	}
}

func TestUnmarshalPrefixStreams(t *testing.T) {
	a := D("n", 1)
	b := D("n", 2)
	data := append(Marshal(a), Marshal(b)...)
	first, rest, err := UnmarshalPrefix(data)
	if err != nil {
		t.Fatalf("first: %v", err)
	}
	if !first.Equal(a) {
		t.Fatalf("first = %s", first)
	}
	second, rest, err := UnmarshalPrefix(rest)
	if err != nil {
		t.Fatalf("second: %v", err)
	}
	if !second.Equal(b) || len(rest) != 0 {
		t.Fatalf("second = %s, rest = %d bytes", second, len(rest))
	}
}

// randomEncodableDoc builds documents restricted to values that survive the
// encoding exactly (times truncated to milliseconds, UTC).
func randomEncodableDoc(r *rand.Rand, depth int) *Doc {
	d := NewDoc(3)
	n := 1 + r.Intn(5)
	for i := 0; i < n; i++ {
		d.Set(randomKey(r)+string(rune('0'+i)), randomEncodableValue(r, depth))
	}
	return d
}

func randomEncodableValue(r *rand.Rand, depth int) any {
	kind := r.Intn(9)
	if depth <= 0 && (kind == 6 || kind == 7) {
		kind = r.Intn(6)
	}
	switch kind {
	case 0:
		return nil
	case 1:
		return int64(r.Int63n(1 << 40))
	case 2:
		return r.NormFloat64() * 1e6
	case 3:
		return randomKey(r)
	case 4:
		return r.Intn(2) == 0
	case 5:
		return time.UnixMilli(int64(r.Intn(1 << 30))).UTC()
	case 6:
		return randomEncodableDoc(r, depth-1)
	case 7:
		n := r.Intn(4)
		arr := make([]any, n)
		for i := range arr {
			arr[i] = randomEncodableValue(r, depth-1)
		}
		return arr
	default:
		return NewObjectIDFromTime(time.UnixMilli(int64(r.Intn(1 << 30))))
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 250; i++ {
		d := randomEncodableDoc(r, 3)
		data := Marshal(d)
		if len(data) != EncodedSize(d) {
			t.Fatalf("size mismatch for %s: %d vs %d", d, len(data), EncodedSize(d))
		}
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("Unmarshal(%s): %v", d, err)
		}
		if !d.Equal(got) {
			t.Fatalf("round trip mismatch:\n in: %s\nout: %s", d, got)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := sampleDoc()
	js := d.ToJSON()
	got, err := FromJSONString(js)
	if err != nil {
		t.Fatalf("FromJSON: %v", err)
	}
	if !d.Equal(got) {
		t.Fatalf("JSON round trip mismatch:\n in: %s\nout: %s", d, got)
	}
}

func TestJSONRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		d := randomEncodableDoc(r, 2)
		got, err := FromJSON([]byte(d.ToJSON()))
		if err != nil {
			t.Fatalf("FromJSON(%s): %v", d.ToJSON(), err)
		}
		if !d.Equal(got) {
			t.Fatalf("JSON round trip mismatch:\n in: %s\nout: %s", d, got)
		}
	}
}

func TestFromJSONErrors(t *testing.T) {
	if _, err := FromJSONString("[1,2]"); err == nil {
		t.Fatalf("top-level array should be rejected")
	}
	if _, err := FromJSONString("{"); err == nil {
		t.Fatalf("truncated object should be rejected")
	}
	if _, err := FromJSONString(`{"a": }`); err == nil {
		t.Fatalf("bad value should be rejected")
	}
}

func TestFromJSONNumbersAndNesting(t *testing.T) {
	d, err := FromJSONString(`{"i": 42, "f": 4.5, "neg": -3, "arr": [1, {"x": true}], "s": "hi", "n": null}`)
	if err != nil {
		t.Fatalf("FromJSON: %v", err)
	}
	if v, _ := d.Get("i"); v != int64(42) {
		t.Errorf("i = %v (%T), want int64 42", v, v)
	}
	if v, _ := d.Get("f"); v != 4.5 {
		t.Errorf("f = %v, want 4.5", v)
	}
	if v, _ := d.Get("neg"); v != int64(-3) {
		t.Errorf("neg = %v, want -3", v)
	}
	arr, _ := d.Get("arr")
	if inner, ok := arr.([]any)[1].(*Doc); !ok {
		t.Errorf("nested doc in array missing")
	} else if v, _ := inner.Get("x"); v != true {
		t.Errorf("nested bool = %v", v)
	}
	if v, _ := d.Get("n"); v != nil {
		t.Errorf("null = %v", v)
	}
}

func TestDecodeJSONStream(t *testing.T) {
	input := `{"a":1}
{"a":2}
{"a":3}`
	var got []int64
	err := DecodeJSONStream(strings.NewReader(input), func(d *Doc) error {
		v, _ := d.Get("a")
		got = append(got, v.(int64))
		return nil
	})
	if err != nil {
		t.Fatalf("DecodeJSONStream: %v", err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
	// A callback error stops the stream and is returned.
	wantErr := DecodeJSONStream(strings.NewReader(input), func(*Doc) error {
		return errStop
	})
	if wantErr != errStop {
		t.Fatalf("callback error not propagated: %v", wantErr)
	}
}

var errStop = errors.New("stop")
