package bson

import (
	"fmt"
	"math"
	"time"
)

// Type identifies the canonical type of a document value. The numeric order
// of the constants is the cross-type sort order used by Compare, which mirrors
// the BSON comparison order (null < numbers < string < document < array <
// objectid < bool < date).
type Type int

// Canonical value types, in comparison order.
const (
	TypeNull Type = iota
	TypeNumber
	TypeString
	TypeDocument
	TypeArray
	TypeObjectID
	TypeBool
	TypeDate
)

// String returns the lower-case name of the type.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "null"
	case TypeNumber:
		return "number"
	case TypeString:
		return "string"
	case TypeDocument:
		return "document"
	case TypeArray:
		return "array"
	case TypeObjectID:
		return "objectId"
	case TypeBool:
		return "bool"
	case TypeDate:
		return "date"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// TypeOf returns the canonical type of a normalized value.
func TypeOf(v any) Type {
	switch v.(type) {
	case nil:
		return TypeNull
	case int64, float64:
		return TypeNumber
	case string:
		return TypeString
	case *Doc:
		return TypeDocument
	case []any:
		return TypeArray
	case ObjectID:
		return TypeObjectID
	case bool:
		return TypeBool
	case time.Time:
		return TypeDate
	default:
		return TypeNull
	}
}

// Normalize converts arbitrary Go values into the canonical value set used by
// the store: nil, bool, int64, float64, string, *Doc, []any, ObjectID,
// time.Time. Integer types collapse to int64 and float32 to float64; unknown
// types are stringified so a document can always be stored.
func Normalize(v any) any {
	switch t := v.(type) {
	case nil, bool, int64, float64, string, *Doc, ObjectID, time.Time:
		return t
	case int:
		return int64(t)
	case int8:
		return int64(t)
	case int16:
		return int64(t)
	case int32:
		return int64(t)
	case uint:
		return int64(t)
	case uint8:
		return int64(t)
	case uint16:
		return int64(t)
	case uint32:
		return int64(t)
	case uint64:
		return int64(t)
	case float32:
		return float64(t)
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = Normalize(e)
		}
		return out
	case []string:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = e
		}
		return out
	case []int:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = int64(e)
		}
		return out
	case []int64:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = e
		}
		return out
	case []float64:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = e
		}
		return out
	case []*Doc:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = e
		}
		return out
	case map[string]any:
		d := NewDoc(len(t))
		// Deterministic ordering for maps: sorted keys.
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sortStrings(keys)
		for _, k := range keys {
			d.Set(k, t[k])
		}
		return d
	default:
		return fmt.Sprintf("%v", t)
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// AsFloat converts a numeric value (int64 or float64) to float64.
func AsFloat(v any) (float64, bool) {
	switch t := v.(type) {
	case int64:
		return float64(t), true
	case float64:
		return t, true
	default:
		return 0, false
	}
}

// AsInt converts a numeric value to int64, truncating floats.
func AsInt(v any) (int64, bool) {
	switch t := v.(type) {
	case int64:
		return t, true
	case float64:
		return int64(t), true
	default:
		return 0, false
	}
}

// IsNumeric reports whether v is an int64 or float64.
func IsNumeric(v any) bool {
	switch v.(type) {
	case int64, float64:
		return true
	default:
		return false
	}
}

// Compare imposes a total order over all canonical values. Values of
// different types order by type (see Type); values of the same type compare
// naturally. The order is reflexive, antisymmetric and transitive, which the
// index B-tree and the sort stages rely on.
func Compare(a, b any) int {
	ta, tb := TypeOf(a), TypeOf(b)
	if ta != tb {
		if ta < tb {
			return -1
		}
		return 1
	}
	switch ta {
	case TypeNull:
		return 0
	case TypeNumber:
		fa, _ := AsFloat(a)
		fb, _ := AsFloat(b)
		return compareFloat(fa, fb)
	case TypeString:
		sa, sb := a.(string), b.(string)
		switch {
		case sa < sb:
			return -1
		case sa > sb:
			return 1
		default:
			return 0
		}
	case TypeDocument:
		return compareDocs(a.(*Doc), b.(*Doc))
	case TypeArray:
		return compareArrays(a.([]any), b.([]any))
	case TypeObjectID:
		oa, ob := a.(ObjectID), b.(ObjectID)
		return compareBytes(oa[:], ob[:])
	case TypeBool:
		ba, bb := a.(bool), b.(bool)
		switch {
		case ba == bb:
			return 0
		case !ba:
			return -1
		default:
			return 1
		}
	case TypeDate:
		da, db := a.(time.Time), b.(time.Time)
		switch {
		case da.Before(db):
			return -1
		case da.After(db):
			return 1
		default:
			return 0
		}
	}
	return 0
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case math.IsNaN(a) && !math.IsNaN(b):
		return -1
	case !math.IsNaN(a) && math.IsNaN(b):
		return 1
	default:
		return 0
	}
}

func compareDocs(a, b *Doc) int {
	af, bf := a.Fields(), b.Fields()
	n := len(af)
	if len(bf) < n {
		n = len(bf)
	}
	for i := 0; i < n; i++ {
		if af[i].Key != bf[i].Key {
			if af[i].Key < bf[i].Key {
				return -1
			}
			return 1
		}
		if c := Compare(af[i].Value, bf[i].Value); c != 0 {
			return c
		}
	}
	switch {
	case len(af) < len(bf):
		return -1
	case len(af) > len(bf):
		return 1
	default:
		return 0
	}
}

func compareArrays(a, b []any) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// Truthy reports whether a value is considered true in a boolean expression
// context ($cond, $and, $or): false, 0, and null are falsy, everything else
// is truthy.
func Truthy(v any) bool {
	switch t := v.(type) {
	case nil:
		return false
	case bool:
		return t
	case int64:
		return t != 0
	case float64:
		return t != 0
	default:
		return true
	}
}
