package storage

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"docstore/internal/bson"
	"docstore/internal/query"
)

// fakeJournal records what the collection logs, tagging each record with a
// sequence number, and tracks how Wait is called.
type fakeJournal struct {
	mu         sync.Mutex
	nextLSN    int64
	batches    []loggedBatch
	clears     int
	indexes    []loggedIndex
	indexDrops []string
	failLog    bool
}

type loggedBatch struct {
	lsn     int64
	ops     []WriteOp
	ordered bool
}

type loggedIndex struct {
	spec   *bson.Doc
	unique bool
}

type fakeCommit struct {
	j         *fakeJournal
	lsn       int64
	waited    bool
	journaled bool
}

func (j *fakeJournal) LogBatch(ops []WriteOp, ordered bool) (CommitWaiter, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failLog {
		return nil, fmt.Errorf("journal unavailable")
	}
	j.nextLSN++
	// Snapshot the op slice shallowly: the engine hands the caller's batch.
	j.batches = append(j.batches, loggedBatch{lsn: j.nextLSN, ops: append([]WriteOp(nil), ops...), ordered: ordered})
	return &fakeCommit{j: j, lsn: j.nextLSN}, nil
}

func (j *fakeJournal) LogClear() (CommitWaiter, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.nextLSN++
	j.clears++
	return &fakeCommit{j: j, lsn: j.nextLSN}, nil
}

func (j *fakeJournal) LogEnsureIndex(spec *bson.Doc, unique bool) (CommitWaiter, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.nextLSN++
	j.indexes = append(j.indexes, loggedIndex{spec: spec.Clone(), unique: unique})
	return &fakeCommit{j: j, lsn: j.nextLSN}, nil
}

func (j *fakeJournal) LogDropIndex(name string) (CommitWaiter, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.nextLSN++
	j.indexDrops = append(j.indexDrops, name)
	return &fakeCommit{j: j, lsn: j.nextLSN}, nil
}

func (c *fakeCommit) LSN() int64 { return c.lsn }
func (c *fakeCommit) Wait(journaled bool) error {
	c.j.mu.Lock()
	defer c.j.mu.Unlock()
	c.waited = true
	c.journaled = journaled
	return nil
}

func TestJournalReceivesEveryWriteShape(t *testing.T) {
	j := &fakeJournal{}
	c := NewCollection("c")
	c.SetJournal(j)

	if _, err := c.Insert(bson.D(bson.IDKey, 1, "v", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Update(query.UpdateSpec{Query: bson.D(bson.IDKey, 1), Update: bson.D("$inc", bson.D("v", 1))}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete(bson.D(bson.IDKey, 1), false); err != nil {
		t.Fatal(err)
	}
	res := c.BulkWrite([]WriteOp{
		InsertWriteOp(bson.D(bson.IDKey, 2)),
		InsertWriteOp(bson.D(bson.IDKey, 3)),
	}, BulkOptions{Ordered: true})
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	c.Drop()

	if len(j.batches) != 4 {
		t.Fatalf("logged %d batches, want 4", len(j.batches))
	}
	if j.clears != 1 {
		t.Fatalf("logged %d clears, want 1", j.clears)
	}
	kinds := []WriteOpKind{j.batches[0].ops[0].Kind, j.batches[1].ops[0].Kind, j.batches[2].ops[0].Kind}
	if kinds[0] != InsertOp || kinds[1] != UpdateOp || kinds[2] != DeleteOp {
		t.Fatalf("logged kinds = %v", kinds)
	}
	if len(j.batches[3].ops) != 2 || !j.batches[3].ordered {
		t.Fatalf("bulk batch logged as %+v", j.batches[3])
	}
	if c.LastLSN() != 5 {
		t.Fatalf("LastLSN = %d, want 5", c.LastLSN())
	}
}

func TestJournalAssignsInsertIDsBeforeLogging(t *testing.T) {
	j := &fakeJournal{}
	c := NewCollection("c")
	c.SetJournal(j)
	id, err := c.Insert(bson.D("v", 1))
	if err != nil {
		t.Fatal(err)
	}
	logged := j.batches[0].ops[0].Doc
	loggedID, ok := logged.Get(bson.IDKey)
	if !ok {
		t.Fatalf("logged insert has no _id: a replay would generate a different one")
	}
	if bson.Compare(loggedID, id) != 0 {
		t.Fatalf("logged _id %v differs from returned id %v", loggedID, id)
	}
}

func TestJournalFailureRejectsTheWrite(t *testing.T) {
	j := &fakeJournal{failLog: true}
	c := NewCollection("c")
	c.SetJournal(j)
	if _, err := c.Insert(bson.D(bson.IDKey, 1)); err == nil {
		t.Fatalf("insert with failing journal should error")
	}
	if c.Count() != 0 {
		t.Fatalf("write applied despite journal failure")
	}
	res := c.BulkWrite([]WriteOp{InsertWriteOp(bson.D(bson.IDKey, 2))}, BulkOptions{})
	if res.DurabilityErr == nil || res.Attempted != 0 {
		t.Fatalf("bulk with failing journal: %+v", res)
	}
	if res.FirstError() == nil {
		t.Fatalf("FirstError must surface the durability failure")
	}
}

func TestJournaledOptionForcesSync(t *testing.T) {
	j := &fakeJournal{}
	c := NewCollection("c")
	c.SetJournal(j)
	res := c.BulkWrite([]WriteOp{InsertWriteOp(bson.D(bson.IDKey, 1))}, BulkOptions{Journaled: true})
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.batches) != 1 {
		t.Fatalf("logged %d batches", len(j.batches))
	}
}

// TestSnapshotConsistentUnderConcurrentWrites hammers a collection with
// writers while snapshots stream out; every snapshot must load cleanly,
// which fails if the header count and the document stream come from
// different moments (the pre-fix race).
func TestSnapshotConsistentUnderConcurrentWrites(t *testing.T) {
	c := NewCollection("c")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Insert(bson.D(bson.IDKey, fmt.Sprintf("%d-%d", g, i))); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(g)
	}
	for round := 0; round < 50; round++ {
		var buf bytes.Buffer
		snap := c.Snapshot()
		if err := snap.WriteData(&buf); err != nil {
			t.Fatalf("snapshot: %v", err)
		}
		info := snap.Info()
		restored := NewCollection("r")
		if err := restored.ReadSnapshot(&buf); err != nil {
			t.Fatalf("round %d: snapshot does not load: %v", round, err)
		}
		if restored.Count() != info.Count {
			t.Fatalf("round %d: snapshot says %d docs, loaded %d", round, info.Count, restored.Count())
		}
	}
	close(stop)
	wg.Wait()
}

func TestReadSnapshotRejectsCountMismatch(t *testing.T) {
	c := NewCollection("c")
	for i := 0; i < 3; i++ {
		if _, err := c.Insert(bson.D(bson.IDKey, i)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Trailing documents beyond the header count must be rejected, not
	// silently ignored.
	extra := bson.Marshal(bson.D(bson.IDKey, 99))
	tampered := append(append([]byte(nil), buf.Bytes()...), extra...)
	bad := NewCollection("bad")
	if err := bad.ReadSnapshot(bytes.NewReader(tampered)); err == nil {
		t.Fatalf("trailing data beyond the header count must fail")
	}
	// The untampered stream still loads.
	good := NewCollection("good")
	if err := good.ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("clean snapshot failed: %v", err)
	}
	if good.Count() != 3 {
		t.Fatalf("loaded %d docs", good.Count())
	}
}
