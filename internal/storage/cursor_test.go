package storage

import (
	"fmt"
	"testing"

	"docstore/internal/bson"
	"docstore/internal/query"
)

// cursorTestCollection builds a collection with a secondary index and enough
// documents to span several default batches.
func cursorTestCollection(t *testing.T, n int) *Collection {
	t.Helper()
	c := NewCollection("items")
	for i := 0; i < n; i++ {
		doc := bson.D(
			bson.IDKey, i,
			"cat", fmt.Sprintf("c%d", i%7),
			"v", i%13,
			"name", fmt.Sprintf("item-%04d", i),
		)
		if _, err := c.Insert(doc); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.EnsureIndexDoc(bson.D("cat", 1), false); err != nil {
		t.Fatal(err)
	}
	return c
}

func docsEqual(t *testing.T, got, want []*bson.Doc, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d docs, want %d", label, len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("%s: doc %d differs:\n got  %v\n want %v", label, i, got[i], want[i])
		}
	}
}

// TestFindCursorMatchesFind asserts slice/cursor equivalence across the
// option matrix: filters, index scans, sorts, skip/limit and projections.
func TestFindCursorMatchesFind(t *testing.T) {
	c := cursorTestCollection(t, 1000)
	proj, err := query.ParseProjection(bson.D("name", 1, "v", 1))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		filter *bson.Doc
		opts   FindOptions
	}{
		{"full scan", nil, FindOptions{}},
		{"filter collscan", bson.D("v", bson.D("$gte", 7)), FindOptions{}},
		{"filter ixscan", bson.D("cat", "c3"), FindOptions{}},
		{"limit", bson.D("v", bson.D("$lt", 9)), FindOptions{Limit: 57}},
		{"skip", bson.D("v", bson.D("$lt", 9)), FindOptions{Skip: 13}},
		{"skip+limit", bson.D("v", bson.D("$lt", 9)), FindOptions{Skip: 13, Limit: 57}},
		{"skip past end", bson.D("cat", "c1"), FindOptions{Skip: 100000}},
		{"sort", bson.D("v", bson.D("$lt", 9)), FindOptions{Sort: query.MustParseSort(bson.D("name", -1))}},
		{"sort+skip+limit", nil, FindOptions{Sort: query.MustParseSort(bson.D("v", 1, "name", -1)), Skip: 10, Limit: 25}},
		{"projection", bson.D("cat", "c2"), FindOptions{Projection: proj}},
		{"projection+sort", bson.D("cat", "c2"), FindOptions{Projection: proj, Sort: query.MustParseSort(bson.D("name", 1))}},
	}
	for _, bs := range []int{0, 1, 3, 1000000, -1} {
		for _, tc := range cases {
			t.Run(fmt.Sprintf("%s/batch=%d", tc.name, bs), func(t *testing.T) {
				want, wantPlan, err := c.FindWithPlan(tc.filter, tc.opts)
				if err != nil {
					t.Fatal(err)
				}
				opts := tc.opts
				opts.BatchSize = bs
				cur, err := c.FindCursor(tc.filter, opts)
				if err != nil {
					t.Fatal(err)
				}
				got, err := cur.All()
				if err != nil {
					t.Fatal(err)
				}
				docsEqual(t, got, want, tc.name)
				gotPlan := cur.Plan()
				if gotPlan.IndexUsed != wantPlan.IndexUsed ||
					gotPlan.DocsExamined != wantPlan.DocsExamined ||
					gotPlan.DocsReturned != wantPlan.DocsReturned ||
					gotPlan.SortInMemory != wantPlan.SortInMemory {
					t.Fatalf("plan mismatch: cursor %+v, find %+v", gotPlan, wantPlan)
				}
			})
		}
	}
}

// TestCursorBatching checks that NextBatch respects the requested batch size
// and that the batch buffer is reused rather than reallocated.
func TestCursorBatching(t *testing.T) {
	c := cursorTestCollection(t, 100)
	cur, err := c.FindCursor(nil, FindOptions{BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{}
	total := 0
	for {
		b := cur.NextBatch()
		if len(b) == 0 {
			break
		}
		sizes = append(sizes, len(b))
		total += len(b)
	}
	if total != 100 {
		t.Fatalf("cursor yielded %d docs, want 100", total)
	}
	for i, s := range sizes {
		if s > 32 {
			t.Fatalf("batch %d has %d docs, exceeds batch size 32", i, s)
		}
	}
	if len(sizes) != 4 { // 32+32+32+4
		t.Fatalf("expected 4 batches, got %d (%v)", len(sizes), sizes)
	}
}

// TestCursorSeesSnapshot documents the cursor's snapshot semantics: the
// drained result is exactly the document set committed when the cursor
// opened. Inserts, updates AND deletes after the open are invisible — the
// pre-MVCC engine leaked deletes into open cursors until the record array
// happened to be rewritten; that anomaly is gone.
func TestCursorSeesSnapshot(t *testing.T) {
	c := NewCollection("t")
	for i := 0; i < 10; i++ {
		_, _ = c.Insert(bson.D(bson.IDKey, i))
	}
	cur, err := c.FindCursor(nil, FindOptions{BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Consume the first batch, then mutate the collection.
	first := append([]*bson.Doc(nil), cur.NextBatch()...)
	if len(first) != 2 {
		t.Fatalf("first batch has %d docs", len(first))
	}
	// Neither the delete nor the inserts can leak into the open cursor's
	// pinned snapshot.
	if _, err := c.Delete(bson.D(bson.IDKey, 5), false); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 20; i++ {
		_, _ = c.Insert(bson.D(bson.IDKey, i)) // invisible: after snapshot
	}
	rest, err := cur.All()
	if err != nil {
		t.Fatal(err)
	}
	got := len(first) + len(rest)
	if got != 10 { // all 10 at-open docs, deleted one included
		t.Fatalf("cursor saw %d docs, want 10", got)
	}
	// The collection itself reflects the writes.
	if c.Count() != 19 {
		t.Fatalf("Count = %d, want 19", c.Count())
	}
}

// TestCursorCloseStopsIteration checks Close is terminal and idempotent.
func TestCursorCloseStopsIteration(t *testing.T) {
	c := cursorTestCollection(t, 50)
	cur, err := c.FindCursor(nil, FindOptions{BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cur.TryNext(); !ok {
		t.Fatal("expected a first document")
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := cur.TryNext(); ok {
		t.Fatal("TryNext succeeded after Close")
	}
	if cur.HasNext() {
		t.Fatal("HasNext true after Close")
	}
	if b := cur.NextBatch(); len(b) != 0 {
		t.Fatalf("NextBatch returned %d docs after Close", len(b))
	}
}

// TestCursorLimitStopsScan checks that a limited, unsorted cursor stops
// examining documents once the limit is reached.
func TestCursorLimitStopsScan(t *testing.T) {
	c := cursorTestCollection(t, 1000)
	cur, err := c.FindCursor(nil, FindOptions{Limit: 5, BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	docs, err := cur.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 5 {
		t.Fatalf("got %d docs, want 5", len(docs))
	}
	if p := cur.Plan(); p.DocsExamined != 5 {
		t.Fatalf("limited scan examined %d docs, want 5", p.DocsExamined)
	}
}
