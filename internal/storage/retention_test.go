package storage

import (
	"fmt"
	"sync"
	"testing"

	"docstore/internal/bson"
	"docstore/internal/query"
)

// TestStuckCursorRetentionGauges is the stuck-cursor scenario the engine
// gauges exist for: a client opens a cursor and stops draining it, a write
// stream keeps publishing new versions, and the pinned snapshot silently
// retains the superseded state. The gauges must make that retention visible
// while the cursor lives, and the engine must reclaim the memory once the
// cursor dies.
func TestStuckCursorRetentionGauges(t *testing.T) {
	c := NewCollection("events")
	const docs = 2000
	for i := 0; i < docs; i++ {
		if _, err := c.Insert(bson.D(bson.IDKey, fmt.Sprintf("doc-%d", i), "v", 0)); err != nil {
			t.Fatal(err)
		}
	}

	// The stuck cursor: opened, partially drained, never closed.
	cur, err := c.FindCursor(nil, FindOptions{BatchSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !cur.HasNext() {
		t.Fatal("cursor empty")
	}
	if doc := cur.Next(); doc == nil {
		t.Fatal("cursor returned no first document")
	}

	// A single-doc update stream: every batch publishes a fresh version the
	// cursor's pin cannot observe but does keep alive.
	const updates = 10000
	for i := 1; i <= updates; i++ {
		spec := query.UpdateSpec{
			Query:  bson.D(bson.IDKey, "doc-0"),
			Update: bson.D("$set", bson.D("v", i)),
		}
		res, err := c.Update(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Modified != 1 {
			t.Fatalf("update %d modified %d docs, want 1", i, res.Modified)
		}
	}

	st := c.EngineStats()
	if st.LiveVersions < 2 {
		t.Fatalf("LiveVersions = %d with a stuck cursor, want >= 2", st.LiveVersions)
	}
	if st.PinnedSnapshots < 1 {
		t.Fatalf("PinnedSnapshots = %d with a stuck cursor, want >= 1", st.PinnedSnapshots)
	}
	if st.OldestPinAge <= 0 {
		t.Fatalf("OldestPinAge = %v, want > 0: the pin predates %d published versions", st.OldestPinAge, updates)
	}
	if st.RetainedBytes <= 0 {
		t.Fatalf("RetainedBytes = %d, want > 0: the pinned version holds %d docs", st.RetainedBytes, docs)
	}
	if st.COWBytesCopied <= 0 || st.PagesCopied <= 0 {
		t.Fatalf("COWBytesCopied = %d, PagesCopied = %d after %d COW updates, want both > 0",
			st.COWBytesCopied, st.PagesCopied, updates)
	}
	// The paging win: each update copied one page, not the collection. With
	// docs spanning several pages, shared must dominate copied per batch.
	if st.COWBytesShared <= st.COWBytesCopied {
		t.Fatalf("COWBytesShared = %d <= COWBytesCopied = %d: page COW should share the untouched pages",
			st.COWBytesShared, st.COWBytesCopied)
	}

	// The cursor dies; a full GC pass must reclaim the retained versions.
	cur.Close()
	c.GC()

	st = c.EngineStats()
	if st.LiveVersions != 1 {
		t.Fatalf("LiveVersions = %d after cursor close + GC, want 1", st.LiveVersions)
	}
	if st.PinnedSnapshots != 0 {
		t.Fatalf("PinnedSnapshots = %d after cursor close, want 0", st.PinnedSnapshots)
	}
	if st.OldestPinAge != 0 || st.RetainedBytes != 0 {
		t.Fatalf("OldestPinAge = %v, RetainedBytes = %d after cursor close, want both zero",
			st.OldestPinAge, st.RetainedBytes)
	}
	if st.ReclaimedBytes <= 0 || st.PagesRecycled <= 0 {
		t.Fatalf("ReclaimedBytes = %d, PagesRecycled = %d after GC, want both > 0",
			st.ReclaimedBytes, st.PagesRecycled)
	}
	c.mu.Lock()
	retired := len(c.retired)
	c.mu.Unlock()
	if retired != 0 {
		t.Fatalf("%d retired pages left after unpinned GC, want 0", retired)
	}

	// The collection itself is unharmed: the update stream's final value is
	// what a fresh read sees.
	doc := c.FindID("doc-0")
	if doc == nil {
		t.Fatal("doc-0 missing after update stream")
	}
	if v, _ := doc.Get("v"); v != int64(updates) && v != updates {
		t.Fatalf("doc-0 v = %v after %d updates, want %d", v, updates, updates)
	}
}

// TestStressPageBoundaryCOW hammers the records straddling page boundaries
// with concurrent single-doc updates while readers scan and point-read the
// collection. Each update sets two fields to the same value in one batch, so
// any torn read — a scan observing a half-applied update across a page copy —
// shows up as a mismatch. Run under -race in CI.
func TestStressPageBoundaryCOW(t *testing.T) {
	c := NewCollection("boundary")
	const docs = 4*pageSize + 6 // a bit over four pages
	for i := 0; i < docs; i++ {
		if _, err := c.Insert(bson.D(bson.IDKey, fmt.Sprintf("doc-%d", i), "v", 0, "check", 0)); err != nil {
			t.Fatal(err)
		}
	}
	// The positions on either side of every page edge, plus the first and
	// last record.
	var targets []string
	for pi := 1; pi <= 4; pi++ {
		edge := pi * pageSize
		targets = append(targets, fmt.Sprintf("doc-%d", edge-1), fmt.Sprintf("doc-%d", edge))
	}
	targets = append(targets, "doc-0", fmt.Sprintf("doc-%d", docs-1))

	const (
		writers        = 4
		readers        = 4
		opsPerWriter   = 200
		scansPerReader = 60
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= opsPerWriter; i++ {
				id := targets[(w+i)%len(targets)]
				n := w*opsPerWriter + i
				spec := query.UpdateSpec{
					Query:  bson.D(bson.IDKey, id),
					Update: bson.D("$set", bson.D("v", n, "check", n)),
				}
				if _, err := c.Update(spec); err != nil {
					t.Errorf("update %s: %v", id, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < scansPerReader; i++ {
				if i%2 == 0 {
					s := c.Snapshot()
					seen := 0
					s.Scan(func(doc *bson.Doc) bool {
						seen++
						v, _ := doc.Get("v")
						chk, _ := doc.Get("check")
						if v != chk {
							t.Errorf("torn read: v = %v, check = %v", v, chk)
						}
						return true
					})
					s.Release()
					if seen != docs {
						t.Errorf("scan saw %d docs, want %d", seen, docs)
					}
					continue
				}
				id := targets[(r+i)%len(targets)]
				doc := c.FindID(id)
				if doc == nil {
					t.Errorf("findID %s: missing", id)
					continue
				}
				v, _ := doc.Get("v")
				chk, _ := doc.Get("check")
				if v != chk {
					t.Errorf("torn point read %s: v = %v, check = %v", id, v, chk)
				}
			}
		}(r)
	}
	wg.Wait()
}

// TestGCPruneHonorsPinGate reproduces the reader-vs-GC race the pin gate
// exists for, deterministically: a reader stalls between loading the current
// version and registering its pin (the two steps of Snapshot) while writers
// publish past it. The GC must neither drop the stalled reader's version
// from tracking nor recycle pages while the gate is open — pruning it would
// let a later GC compute the pin floor without the late-registered pin and
// hand pages the snapshot still reads to the free list.
func TestGCPruneHonorsPinGate(t *testing.T) {
	c := NewCollection("gate")
	const docs = 3 * pageSize
	for i := 0; i < docs; i++ {
		if _, err := c.Insert(bson.D(bson.IDKey, fmt.Sprintf("doc-%d", i), "v", 0)); err != nil {
			t.Fatal(err)
		}
	}

	// The stalled reader: inside the gate, current loaded, pin not yet
	// registered.
	c.pinGate.Add(1)
	old := c.current.Load()

	// Writers publish past it; every publish runs gcLocked, and the stalled
	// reader's version shows zero pins throughout.
	for i := 1; i <= 50; i++ {
		spec := query.UpdateSpec{
			Query:  bson.D(bson.IDKey, "doc-0"),
			Update: bson.D("$set", bson.D("v", i)),
		}
		if _, err := c.Update(spec); err != nil {
			t.Fatal(err)
		}
	}

	c.mu.Lock()
	tracked := false
	for _, v := range c.live {
		if v == old {
			tracked = true
			break
		}
	}
	c.mu.Unlock()
	if !tracked {
		t.Fatal("zero-pin version was pruned from tracking while a reader was inside the pin gate")
	}

	// The reader resumes: pin registered, gate left.
	old.pins.Add(1)
	c.pinGate.Add(-1)
	snap := &Snapshot{coll: c, v: old}

	// With the gate closed, rewrite every page and run a full GC with the
	// late-registered pin now the oldest: the pages it reads must survive
	// recycling.
	for i := 0; i < docs; i++ {
		spec := query.UpdateSpec{
			Query:  bson.D(bson.IDKey, fmt.Sprintf("doc-%d", i)),
			Update: bson.D("$set", bson.D("v", -1)),
		}
		if _, err := c.Update(spec); err != nil {
			t.Fatal(err)
		}
	}
	c.GC()

	for i := 0; i < docs; i++ {
		doc := snap.FindID(fmt.Sprintf("doc-%d", i))
		if doc == nil {
			t.Fatalf("doc-%d vanished from the pinned snapshot", i)
		}
		if v, _ := doc.Get("v"); v != int64(0) && v != 0 {
			t.Fatalf("doc-%d v = %v through the pinned snapshot, want the pre-update 0", i, v)
		}
	}

	snap.Release()
	c.GC()
	st := c.EngineStats()
	if st.LiveVersions != 1 || st.PinnedSnapshots != 0 {
		t.Fatalf("LiveVersions = %d, PinnedSnapshots = %d after release + GC, want 1 and 0",
			st.LiveVersions, st.PinnedSnapshots)
	}
}
