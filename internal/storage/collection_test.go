package storage

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"docstore/internal/bson"
	"docstore/internal/query"
)

func TestInsertAssignsObjectID(t *testing.T) {
	c := NewCollection("store_sales")
	d := bson.D("ss_item_sk", 1)
	id, err := c.Insert(d)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if _, ok := id.(bson.ObjectID); !ok {
		t.Fatalf("assigned id is %T, want ObjectID", id)
	}
	// _id leads the stored document.
	if d.Keys()[0] != bson.IDKey {
		t.Fatalf("_id should be the first field, got %v", d.Keys())
	}
	if c.Count() != 1 {
		t.Fatalf("Count = %d", c.Count())
	}
	if c.Name() != "store_sales" {
		t.Fatalf("Name = %q", c.Name())
	}
}

func TestInsertExplicitIDAndDuplicate(t *testing.T) {
	c := NewCollection("t")
	if _, err := c.Insert(bson.D(bson.IDKey, 5, "v", "a")); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	_, err := c.Insert(bson.D(bson.IDKey, 5, "v", "b"))
	var dup *ErrDuplicateID
	if !errors.As(err, &dup) {
		t.Fatalf("duplicate insert error = %v", err)
	}
	if got := c.FindID(5); got == nil {
		t.Fatalf("FindID(5) = nil")
	} else if v, _ := got.Get("v"); v != "a" {
		t.Fatalf("stored doc = %s", got)
	}
	if c.FindID(99) != nil {
		t.Fatalf("FindID(99) should be nil")
	}
}

func TestInsertRejectsOversizedDocument(t *testing.T) {
	c := NewCollection("t")
	big := bson.D("payload", strings.Repeat("x", bson.MaxDocumentSize))
	_, err := c.Insert(big)
	var tooBig *ErrDocumentTooLarge
	if !errors.As(err, &tooBig) {
		t.Fatalf("error = %v, want ErrDocumentTooLarge", err)
	}
	if tooBig.Error() == "" {
		t.Fatalf("empty error message")
	}
}

func TestInsertManyAndScanOrder(t *testing.T) {
	c := NewCollection("t")
	var docs []*bson.Doc
	for i := 0; i < 10; i++ {
		docs = append(docs, bson.D(bson.IDKey, i, "n", i*10))
	}
	ids, err := c.InsertMany(docs)
	if err != nil || len(ids) != 10 {
		t.Fatalf("InsertMany: ids=%d err=%v", len(ids), err)
	}
	var seen []int64
	c.Scan(func(d *bson.Doc) bool {
		v, _ := d.Get(bson.IDKey)
		seen = append(seen, v.(int64))
		return true
	})
	for i, v := range seen {
		if v != int64(i) {
			t.Fatalf("scan order = %v", seen)
		}
	}
	// Early stop.
	n := 0
	c.Scan(func(*bson.Doc) bool { n++; return false })
	if n != 1 {
		t.Fatalf("scan early stop visited %d", n)
	}
	// InsertMany stops at the first error and reports prior ids.
	ids, err = c.InsertMany([]*bson.Doc{bson.D(bson.IDKey, 100), bson.D(bson.IDKey, 0)})
	if err == nil || len(ids) != 1 {
		t.Fatalf("partial InsertMany: ids=%v err=%v", ids, err)
	}
}

func TestFindWithFilterCollectionScan(t *testing.T) {
	c := NewCollection("customer")
	for i := 0; i < 100; i++ {
		gender := "M"
		if i%2 == 1 {
			gender = "F"
		}
		if _, err := c.Insert(bson.D(bson.IDKey, i, "cd_gender", gender, "n", i)); err != nil {
			t.Fatal(err)
		}
	}
	docs, plan, err := c.FindWithPlan(bson.D("cd_gender", "M"), FindOptions{})
	if err != nil {
		t.Fatalf("Find: %v", err)
	}
	if len(docs) != 50 {
		t.Fatalf("got %d docs", len(docs))
	}
	if plan.IndexUsed != "" {
		t.Fatalf("expected COLLSCAN, got %s", plan.IndexUsed)
	}
	if plan.DocsExamined != 100 {
		t.Fatalf("DocsExamined = %d", plan.DocsExamined)
	}
	if !strings.Contains(plan.String(), "COLLSCAN") {
		t.Fatalf("plan string = %q", plan.String())
	}
}

func TestFindUsesIndex(t *testing.T) {
	c := NewCollection("item")
	for i := 0; i < 1000; i++ {
		if _, err := c.Insert(bson.D(bson.IDKey, i, "i_category", fmt.Sprintf("cat%d", i%10), "i_price", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.EnsureIndexDoc(bson.D("i_category", 1), false); err != nil {
		t.Fatal(err)
	}
	docs, plan, err := c.FindWithPlan(bson.D("i_category", "cat3"), FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 100 {
		t.Fatalf("got %d docs", len(docs))
	}
	if plan.IndexUsed != "i_category_1" {
		t.Fatalf("IndexUsed = %q", plan.IndexUsed)
	}
	if plan.DocsExamined != 100 {
		t.Fatalf("DocsExamined = %d, want 100 (index narrowed)", plan.DocsExamined)
	}
	if !strings.Contains(plan.String(), "IXSCAN") {
		t.Fatalf("plan string = %q", plan.String())
	}
	// Range over an indexed numeric field.
	if _, err := c.EnsureIndexDoc(bson.D("i_price", 1), false); err != nil {
		t.Fatal(err)
	}
	docs, plan, err = c.FindWithPlan(bson.D("i_price", bson.D("$gte", 10, "$lt", 20)), FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 10 || plan.IndexUsed != "i_price_1" {
		t.Fatalf("range via index: %d docs, index %q", len(docs), plan.IndexUsed)
	}
	// Residual predicates still apply after the index narrows candidates.
	docs, _, err = c.FindWithPlan(bson.D("i_category", "cat3", "i_price", bson.D("$lt", 100)), FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 10 {
		t.Fatalf("residual filter: got %d docs", len(docs))
	}
	// Stats track scan types.
	st := c.Stats()
	if st.IndexScans == 0 || st.IndexCount != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFindHint(t *testing.T) {
	c := NewCollection("t")
	for i := 0; i < 50; i++ {
		_, _ = c.Insert(bson.D(bson.IDKey, i, "a", i%5, "b", i%10))
	}
	_, _ = c.EnsureIndexDoc(bson.D("a", 1), false)
	_, _ = c.EnsureIndexDoc(bson.D("b", 1), false)
	_, plan, err := c.FindWithPlan(bson.D("a", 1, "b", 1), FindOptions{Hint: "b_1"})
	if err != nil {
		t.Fatal(err)
	}
	if plan.IndexUsed != "b_1" {
		t.Fatalf("hint ignored, used %q", plan.IndexUsed)
	}
}

func TestFindSortSkipLimitProjection(t *testing.T) {
	c := NewCollection("t")
	for i := 0; i < 20; i++ {
		_, _ = c.Insert(bson.D(bson.IDKey, i, "v", 19-i, "junk", "x"))
	}
	docs, err := c.Find(nil, FindOptions{
		Sort:       query.MustParseSort(bson.D("v", 1)),
		Skip:       5,
		Limit:      3,
		Projection: query.MustParseProjection(bson.D("v", 1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 {
		t.Fatalf("got %d docs", len(docs))
	}
	for i, d := range docs {
		v, _ := d.Get("v")
		if v != int64(5+i) {
			t.Fatalf("doc %d v = %v", i, v)
		}
		if d.Has("junk") {
			t.Fatalf("projection not applied: %s", d)
		}
	}
	// Skip beyond the result set.
	docs, err = c.Find(nil, FindOptions{Skip: 100})
	if err != nil || len(docs) != 0 {
		t.Fatalf("skip beyond end: %d docs, err %v", len(docs), err)
	}
	// Limit without sort short-circuits the scan.
	_, plan, _ := c.FindWithPlan(nil, FindOptions{Limit: 4})
	if plan.DocsExamined != 4 {
		t.Fatalf("limit short-circuit examined %d", plan.DocsExamined)
	}
}

func TestFindOneAndCountDocs(t *testing.T) {
	c := NewCollection("t")
	for i := 0; i < 10; i++ {
		_, _ = c.Insert(bson.D(bson.IDKey, i, "even", i%2 == 0))
	}
	d, err := c.FindOne(bson.D("even", true))
	if err != nil || d == nil {
		t.Fatalf("FindOne: %v %v", d, err)
	}
	d, err = c.FindOne(bson.D("even", "nope"))
	if err != nil || d != nil {
		t.Fatalf("FindOne no match: %v %v", d, err)
	}
	n, err := c.CountDocs(bson.D("even", true))
	if err != nil || n != 5 {
		t.Fatalf("CountDocs = %d, %v", n, err)
	}
	n, err = c.CountDocs(nil)
	if err != nil || n != 10 {
		t.Fatalf("CountDocs(nil) = %d, %v", n, err)
	}
	if _, err := c.FindAll(bson.D("$bogus", 1)); err == nil {
		t.Fatalf("invalid filter should error")
	}
}

func TestDistinct(t *testing.T) {
	c := NewCollection("store")
	cities := []string{"Midway", "Fairview", "Midway", "Oak Grove"}
	for i, city := range cities {
		_, _ = c.Insert(bson.D(bson.IDKey, i, "s_city", city))
	}
	vals, err := c.Distinct("s_city", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || vals[0] != "Fairview" || vals[1] != "Midway" || vals[2] != "Oak Grove" {
		t.Fatalf("Distinct = %v", vals)
	}
	vals, err = c.Distinct("s_city", bson.D("s_city", bson.D("$ne", "Midway")))
	if err != nil || len(vals) != 2 {
		t.Fatalf("filtered Distinct = %v, %v", vals, err)
	}
}

func TestUpdateOneAndMany(t *testing.T) {
	c := NewCollection("t")
	for i := 0; i < 10; i++ {
		_, _ = c.Insert(bson.D(bson.IDKey, i, "group", i%2, "v", 0))
	}
	res, err := c.UpdateOne(bson.D("group", 0), bson.D("$set", bson.D("v", 1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched != 1 || res.Modified != 1 {
		t.Fatalf("UpdateOne result = %+v", res)
	}
	res, err = c.UpdateMany(bson.D("group", 1), bson.D("$set", bson.D("v", 9)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched != 5 || res.Modified != 5 {
		t.Fatalf("UpdateMany result = %+v", res)
	}
	n, _ := c.CountDocs(bson.D("v", 9))
	if n != 5 {
		t.Fatalf("post-update count = %d", n)
	}
	// No-op update reports matched but not modified.
	res, _ = c.UpdateMany(bson.D("group", 1), bson.D("$set", bson.D("v", 9)))
	if res.Matched != 5 || res.Modified != 0 {
		t.Fatalf("no-op update result = %+v", res)
	}
	// Invalid filter and invalid update surface errors.
	if _, err := c.UpdateOne(bson.D("$bad", 1), bson.D("$set", bson.D("a", 1))); err == nil {
		t.Fatalf("invalid filter should error")
	}
	if _, err := c.UpdateOne(bson.D("group", 0), bson.D("$bogus", bson.D("a", 1))); err == nil {
		t.Fatalf("invalid update should error")
	}
}

func TestUpdateMaintainsIndexes(t *testing.T) {
	c := NewCollection("t")
	_, _ = c.EnsureIndexDoc(bson.D("k", 1), false)
	for i := 0; i < 20; i++ {
		_, _ = c.Insert(bson.D(bson.IDKey, i, "k", "old"))
	}
	if _, err := c.UpdateMany(bson.D("k", "old"), bson.D("$set", bson.D("k", "new"))); err != nil {
		t.Fatal(err)
	}
	docs, plan, err := c.FindWithPlan(bson.D("k", "new"), FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 20 || plan.IndexUsed != "k_1" {
		t.Fatalf("index after update: %d docs via %q", len(docs), plan.IndexUsed)
	}
	docs, _, _ = c.FindWithPlan(bson.D("k", "old"), FindOptions{})
	if len(docs) != 0 {
		t.Fatalf("stale index entries: %d docs", len(docs))
	}
}

func TestUpdateUpsert(t *testing.T) {
	c := NewCollection("t")
	res, err := c.Update(query.UpdateSpec{
		Query:  bson.D("sku", "A-17"),
		Update: bson.D("$set", bson.D("qty", 5)),
		Upsert: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched != 0 || res.UpsertedID == nil {
		t.Fatalf("upsert result = %+v", res)
	}
	d, _ := c.FindOne(bson.D("sku", "A-17"))
	if d == nil {
		t.Fatalf("upserted document not found")
	}
	if v, _ := d.Get("qty"); v != int64(5) {
		t.Fatalf("upserted doc = %s", d)
	}
	// Second time matches and does not insert.
	res, err = c.Update(query.UpdateSpec{
		Query:  bson.D("sku", "A-17"),
		Update: bson.D("$inc", bson.D("qty", 1)),
		Upsert: true,
		Multi:  true,
	})
	if err != nil || res.Matched != 1 || res.UpsertedID != nil {
		t.Fatalf("second upsert = %+v err=%v", res, err)
	}
	if c.Count() != 1 {
		t.Fatalf("Count = %d", c.Count())
	}
	// Replacement-style upsert.
	res, err = c.Update(query.UpdateSpec{
		Query:  bson.D(bson.IDKey, 99),
		Update: bson.D("name", "fresh"),
		Upsert: true,
	})
	if err != nil || res.UpsertedID == nil {
		t.Fatalf("replacement upsert = %+v err=%v", res, err)
	}
	if d := c.FindID(99); d == nil {
		t.Fatalf("replacement upsert did not honour _id from the query")
	}
}

func TestUpdateRejectsOversizedGrowth(t *testing.T) {
	c := NewCollection("t")
	_, _ = c.Insert(bson.D(bson.IDKey, 1, "v", "small"))
	_, err := c.UpdateOne(bson.D(bson.IDKey, 1),
		bson.D("$set", bson.D("v", strings.Repeat("x", bson.MaxDocumentSize))))
	var tooBig *ErrDocumentTooLarge
	if !errors.As(err, &tooBig) {
		t.Fatalf("error = %v", err)
	}
	// Document content is unchanged after the failed update.
	d := c.FindID(1)
	if v, _ := d.Get("v"); v != "small" {
		t.Fatalf("document mutated by failed update")
	}
}

func TestDelete(t *testing.T) {
	c := NewCollection("t")
	for i := 0; i < 10; i++ {
		_, _ = c.Insert(bson.D(bson.IDKey, i, "even", i%2 == 0))
	}
	n, err := c.Delete(bson.D("even", true), false)
	if err != nil || n != 1 {
		t.Fatalf("single delete: %d, %v", n, err)
	}
	n, err = c.Delete(bson.D("even", true), true)
	if err != nil || n != 4 {
		t.Fatalf("multi delete: %d, %v", n, err)
	}
	if c.Count() != 5 {
		t.Fatalf("Count = %d", c.Count())
	}
	ok, err := c.DeleteID(1)
	if err != nil || !ok {
		t.Fatalf("DeleteID: %v %v", ok, err)
	}
	ok, _ = c.DeleteID(1)
	if ok {
		t.Fatalf("second DeleteID should be false")
	}
	if _, err := c.Delete(bson.D("$bad", 1), true); err == nil {
		t.Fatalf("invalid filter should error")
	}
	// DataSize shrinks as documents are removed.
	if c.DataSize() <= 0 {
		t.Fatalf("DataSize = %d", c.DataSize())
	}
}

func TestDeleteTriggersCompaction(t *testing.T) {
	c := NewCollection("t")
	for i := 0; i < 300; i++ {
		_, _ = c.Insert(bson.D(bson.IDKey, i, "v", i))
	}
	if _, err := c.Delete(bson.D("v", bson.D("$lt", 200)), true); err != nil {
		t.Fatal(err)
	}
	if c.Count() != 100 {
		t.Fatalf("Count = %d", c.Count())
	}
	// Every remaining document is still reachable by id and by scan.
	found := 0
	c.Scan(func(*bson.Doc) bool { found++; return true })
	if found != 100 {
		t.Fatalf("scan found %d", found)
	}
	for i := 200; i < 300; i++ {
		if c.FindID(i) == nil {
			t.Fatalf("FindID(%d) lost after compaction", i)
		}
	}
}

func TestReplaceContents(t *testing.T) {
	c := NewCollection("out")
	_, _ = c.Insert(bson.D(bson.IDKey, 1, "old", true))
	err := c.ReplaceContents([]*bson.Doc{
		bson.D(bson.IDKey, 10, "new", true),
		bson.D(bson.IDKey, 11, "new", true),
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Count() != 2 || c.FindID(1) != nil || c.FindID(10) == nil {
		t.Fatalf("ReplaceContents state wrong: count=%d", c.Count())
	}
}

func TestEnsureIndexBackfillsAndIsIdempotent(t *testing.T) {
	c := NewCollection("t")
	for i := 0; i < 10; i++ {
		_, _ = c.Insert(bson.D(bson.IDKey, i, "f", i))
	}
	ix1, err := c.EnsureIndexDoc(bson.D("f", 1), false)
	if err != nil {
		t.Fatal(err)
	}
	if ix1.Len() != 10 {
		t.Fatalf("backfilled index has %d entries", ix1.Len())
	}
	ix2, _ := c.EnsureIndexDoc(bson.D("f", 1), false)
	if ix1 != ix2 {
		t.Fatalf("EnsureIndex should be idempotent")
	}
	if len(c.Indexes()) != 1 || c.IndexNames()[0] != "f_1" {
		t.Fatalf("Indexes = %v", c.IndexNames())
	}
	if c.Index("f_1") == nil || c.Index("nope") != nil {
		t.Fatalf("Index lookup broken")
	}
	if !c.DropIndex("f_1") || c.DropIndex("f_1") {
		t.Fatalf("DropIndex misbehaves")
	}
	// Unique index build fails when duplicates already exist.
	_, _ = c.Insert(bson.D(bson.IDKey, 100, "f", 1))
	if _, err := c.EnsureIndexDoc(bson.D("f", 1), true); err == nil {
		t.Fatalf("unique index over duplicates should fail")
	}
	if _, err := c.EnsureIndexDoc(bson.D("f", 7), false); err == nil {
		t.Fatalf("bad spec should fail")
	}
}

func TestUniqueIndexBlocksInsert(t *testing.T) {
	c := NewCollection("t")
	if _, err := c.EnsureIndexDoc(bson.D("email", 1), true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(bson.D(bson.IDKey, 1, "email", "x@y.z")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(bson.D(bson.IDKey, 2, "email", "x@y.z")); err == nil {
		t.Fatalf("duplicate key insert should fail")
	}
	// The failed insert must not leave the document behind.
	if c.Count() != 1 {
		t.Fatalf("Count = %d", c.Count())
	}
	if c.FindID(2) != nil {
		t.Fatalf("failed insert left document behind")
	}
}

func TestStatsAndWorkingSet(t *testing.T) {
	c := NewCollection("t")
	for i := 0; i < 10; i++ {
		_, _ = c.Insert(bson.D(bson.IDKey, i, "v", strings.Repeat("a", 100)))
	}
	_, _ = c.EnsureIndexDoc(bson.D("v", 1), false)
	st := c.Stats()
	if st.Count != 10 || st.DataSizeBytes <= 0 || st.AvgObjSizeBytes <= 0 || st.IndexCount != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.IndexSizeBytes <= 0 {
		t.Fatalf("IndexSizeBytes = %d", st.IndexSizeBytes)
	}
	if c.WorkingSetBytes() != st.DataSizeBytes+st.IndexSizeBytes {
		t.Fatalf("WorkingSetBytes mismatch")
	}
	c.Drop()
	if c.Count() != 0 || c.DataSize() != 0 || len(c.Indexes()) != 0 {
		t.Fatalf("Drop left state behind")
	}
}

func TestCursor(t *testing.T) {
	c := NewCollection("t")
	for i := 0; i < 3; i++ {
		_, _ = c.Insert(bson.D(bson.IDKey, i))
	}
	cur, err := c.FindCursor(nil, FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for cur.HasNext() {
		if cur.Next() == nil {
			t.Fatalf("nil doc from cursor")
		}
		seen++
	}
	if seen != 3 || cur.HasNext() {
		t.Fatalf("cursor visited %d, HasNext=%v after drain", seen, cur.HasNext())
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("Next on exhausted cursor should panic")
		}
	}()
	cur.Next()
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	c := NewCollection("t")
	for i := 0; i < 100; i++ {
		_, _ = c.Insert(bson.D(bson.IDKey, i, "v", i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(off int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, _ = c.Insert(bson.D(bson.IDKey, 1000+off*100+i, "v", i))
			}
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := c.FindAll(bson.D("v", bson.D("$lt", 50))); err != nil {
					t.Errorf("FindAll: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Count() != 300 {
		t.Fatalf("Count = %d", c.Count())
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	c := NewCollection("src")
	for i := 0; i < 500; i++ {
		_, _ = c.Insert(bson.D(bson.IDKey, i, "payload", strings.Repeat("p", i%40), "n", i))
	}
	path := t.TempDir() + "/snap.bin"
	if err := c.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	restored := NewCollection("dst")
	if err := restored.LoadFile(path); err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if restored.Count() != c.Count() {
		t.Fatalf("restored %d docs, want %d", restored.Count(), c.Count())
	}
	for i := 0; i < 500; i++ {
		a, b := c.FindID(i), restored.FindID(i)
		if a == nil || b == nil || !a.Equal(b) {
			t.Fatalf("doc %d mismatch: %s vs %s", i, a, b)
		}
	}
	// Corrupt header errors.
	bad := NewCollection("bad")
	if err := bad.ReadSnapshot(strings.NewReader("XXXX")); err == nil {
		t.Fatalf("bad magic should error")
	}
	if err := bad.ReadSnapshot(strings.NewReader("")); err == nil {
		t.Fatalf("empty snapshot should error")
	}
	if err := bad.LoadFile(t.TempDir() + "/missing.bin"); err == nil {
		t.Fatalf("missing file should error")
	}
}

func TestIndexChoicePrefersPointOverRange(t *testing.T) {
	c := NewCollection("t")
	for i := 0; i < 200; i++ {
		_, _ = c.Insert(bson.D(bson.IDKey, i, "a", i%10, "b", i))
	}
	_, _ = c.EnsureIndexDoc(bson.D("a", 1), false)
	_, _ = c.EnsureIndexDoc(bson.D("b", 1), false)
	// A point constraint on "a" and a range on "b": the planner prefers the
	// point constraint when prefixes tie.
	_, plan, err := c.FindWithPlan(bson.D("a", 3, "b", bson.D("$gte", 0)), FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.IndexUsed != "a_1" {
		t.Fatalf("planner chose %q, want a_1", plan.IndexUsed)
	}
	// Compound index with a longer matched prefix wins over single field.
	_, _ = c.EnsureIndexDoc(bson.D("a", 1, "b", 1), false)
	_, plan, _ = c.FindWithPlan(bson.D("a", 3, "b", 17), FindOptions{})
	if plan.IndexUsed != "a_1_b_1" {
		t.Fatalf("planner chose %q, want a_1_b_1", plan.IndexUsed)
	}
}

// TestBareIDFindFastPathWithoutSecondaryIndexes pins the cursor-layer _id
// fast path: a bare {_id: x} find must be a point lookup through the pinned
// snapshot's id map even when the collection has no secondary indexes (the
// shape where openScan used to short-circuit into a full collection scan).
func TestBareIDFindFastPathWithoutSecondaryIndexes(t *testing.T) {
	c := NewCollection("t")
	for i := 0; i < 100; i++ {
		if _, err := c.Insert(bson.D(bson.IDKey, i, "a", i)); err != nil {
			t.Fatal(err)
		}
	}

	docs, plan, err := c.FindWithPlan(bson.D(bson.IDKey, 42), FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 {
		t.Fatalf("got %d docs, want 1", len(docs))
	}
	if a, _ := docs[0].Get("a"); a != int64(42) && a != 42 {
		t.Fatalf("doc a = %v, want 42", a)
	}
	if plan.IndexUsed != idIndexName {
		t.Fatalf("IndexUsed = %q, want %q", plan.IndexUsed, idIndexName)
	}
	if plan.DocsExamined != 1 {
		t.Fatalf("DocsExamined = %d, want 1", plan.DocsExamined)
	}

	// A missing _id examines nothing.
	docs, plan, err = c.FindWithPlan(bson.D(bson.IDKey, 4242), FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 0 || plan.IndexUsed != idIndexName || plan.DocsExamined != 0 {
		t.Fatalf("miss: %d docs via %q, examined %d; want 0 via %q examining 0",
			len(docs), plan.IndexUsed, plan.DocsExamined, idIndexName)
	}

	// An operator document on _id is not a point lookup; it scans.
	docs, plan, err = c.FindWithPlan(bson.D(bson.IDKey, bson.D("$gte", 98)), FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 || plan.IndexUsed != "" {
		t.Fatalf("range: %d docs via %q, want 2 via COLLSCAN", len(docs), plan.IndexUsed)
	}

	// The fast path survives the stale-id-map shape: a delete + reinsert
	// leaves the map pointing at the tombstone while the live document sits
	// in the uncovered tail.
	if ok, err := c.DeleteID(42); err != nil || !ok {
		t.Fatalf("DeleteID(42) = %v, %v", ok, err)
	}
	if _, err := c.Insert(bson.D(bson.IDKey, 42, "a", 999)); err != nil {
		t.Fatal(err)
	}
	docs, plan, err = c.FindWithPlan(bson.D(bson.IDKey, 42), FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || plan.IndexUsed != idIndexName {
		t.Fatalf("reinsert: %d docs via %q, want 1 via %q", len(docs), plan.IndexUsed, idIndexName)
	}
	if a, _ := docs[0].Get("a"); a != int64(999) && a != 999 {
		t.Fatalf("reinserted doc a = %v, want 999", a)
	}
}

func TestIndexPlannerFallsBackToCollScanWithoutConstraints(t *testing.T) {
	c := NewCollection("t")
	for i := 0; i < 10; i++ {
		_, _ = c.Insert(bson.D(bson.IDKey, i, "a", i))
	}
	_, _ = c.EnsureIndexDoc(bson.D("a", 1), false)
	// $or-only filters provide no conjunctive constraint for the planner.
	_, plan, err := c.FindWithPlan(bson.D("$or", bson.A(bson.D("a", 1), bson.D("a", 2))), FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.IndexUsed != "" {
		t.Fatalf("expected COLLSCAN, got %q", plan.IndexUsed)
	}
	// A filter on an unindexed field also falls back.
	_, plan, _ = c.FindWithPlan(bson.D("zz", 1), FindOptions{})
	if plan.IndexUsed != "" {
		t.Fatalf("expected COLLSCAN, got %q", plan.IndexUsed)
	}
}

// TestFindIndexVsCollscanEquivalenceProperty cross-checks that index-assisted
// execution returns exactly the same documents as a forced collection scan.
func TestFindIndexVsCollscanEquivalenceProperty(t *testing.T) {
	c := NewCollection("t")
	n := 500
	for i := 0; i < n; i++ {
		_, _ = c.Insert(bson.D(bson.IDKey, i, "cat", i%7, "price", float64(i%50)/2))
	}
	indexed := NewCollection("t2")
	for i := 0; i < n; i++ {
		_, _ = indexed.Insert(bson.D(bson.IDKey, i, "cat", i%7, "price", float64(i%50)/2))
	}
	_, _ = indexed.EnsureIndexDoc(bson.D("cat", 1), false)
	_, _ = indexed.EnsureIndexDoc(bson.D("price", 1), false)

	filters := []*bson.Doc{
		bson.D("cat", 3),
		bson.D("cat", bson.D("$in", bson.A(1, 5))),
		bson.D("price", bson.D("$gte", 5.0, "$lt", 10.0)),
		bson.D("cat", 2, "price", bson.D("$lt", 8.0)),
		bson.D("cat", bson.D("$gte", 5)),
	}
	sortByID := query.MustParseSort(bson.D(bson.IDKey, 1))
	for _, f := range filters {
		plain, err := c.Find(f, FindOptions{Sort: sortByID})
		if err != nil {
			t.Fatal(err)
		}
		viaIndex, plan, err := indexed.FindWithPlan(f, FindOptions{Sort: sortByID})
		if err != nil {
			t.Fatal(err)
		}
		if plan.IndexUsed == "" {
			t.Fatalf("filter %s did not use an index", f)
		}
		if len(plain) != len(viaIndex) {
			t.Fatalf("filter %s: collscan %d docs, index %d docs", f, len(plain), len(viaIndex))
		}
		for i := range plain {
			if bson.Compare(plain[i].ID(), viaIndex[i].ID()) != 0 {
				t.Fatalf("filter %s: result %d differs", f, i)
			}
		}
	}
}
