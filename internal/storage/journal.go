package storage

import "docstore/internal/bson"

// Journal is the write-ahead hook a durability layer attaches to a
// collection. The collection logs every mutation through it BEFORE applying
// it, under the collection's write lock, so log order equals apply order and
// recovery can replay the log deterministically. The package deliberately
// does not depend on the log implementation; internal/wal provides one and
// internal/mongod wires it up per collection.
type Journal interface {
	// LogBatch records a batch of operations about to be applied. It is
	// called under the collection write lock and must only buffer — the
	// returned CommitWaiter is waited on after the lock is released, which
	// is what lets a group commit coalesce concurrent writers into one
	// fsync. Insert ops have their _id already assigned, so a replay
	// regenerates identical documents.
	LogBatch(ops []WriteOp, ordered bool) (CommitWaiter, error)
	// LogClear records the collection being wiped in place (Drop, which
	// ReplaceContents and the aggregation $out stage use).
	LogClear() (CommitWaiter, error)
	// LogEnsureIndex records a secondary index creation, so recovery
	// rebuilds the index and replayed writes see the same unique-key
	// enforcement the original run did.
	LogEnsureIndex(spec *bson.Doc, unique bool) (CommitWaiter, error)
	// LogDropIndex records an index removal by name.
	LogDropIndex(name string) (CommitWaiter, error)
}

// CommitWaiter is the acknowledgement handle of one logged record.
type CommitWaiter interface {
	// LSN returns the log sequence number the record was assigned.
	LSN() int64
	// Wait blocks until the record is durable under the journal's sync
	// policy. journaled (writeConcern {j: true}) forces an fsync even under
	// policies that would otherwise acknowledge before syncing.
	Wait(journaled bool) error
}

// CommitNotifier is the optional post-commit hook of a commit handle: when a
// journal's CommitWaiter also implements it, the collection calls Notify
// exactly once per logged record, after the mutation has been applied, the
// collection lock released and the durability wait resolved. Change streams
// hang off this hook: firing outside the lock keeps watchers off the write
// path's critical section, and firing after the wait means a watcher never
// sees an event for a write that is not yet acknowledged. EVERY logged
// record must be notified — even one whose apply failed — because the
// change-stream delivery frontier advances only through contiguous LSNs.
type CommitNotifier interface {
	Notify()
}

// SetJournal attaches a write-ahead journal to the collection. It must be
// called before the collection starts serving writes (the durability layer
// attaches journals at collection creation or at the end of recovery).
func (c *Collection) SetJournal(j Journal) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.journal = j
}

// LastLSN returns the log sequence number of the last journaled mutation
// reflected in the published version, 0 when the collection was never
// journaled. A pinned Snapshot pairs its record data with the same number
// (Snapshot.LastLSN), captured in one version, which is what makes
// checkpoints consistent per collection.
func (c *Collection) LastLSN() int64 {
	return c.current.Load().lastLSN
}

// SetReplayLSN records that the collection's state reflects the log up to
// lsn. Recovery calls it after loading a checkpoint snapshot and after
// replaying each record; it never moves the watermark backwards.
func (c *Collection) SetReplayLSN(lsn int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if lsn > c.lastLSN {
		c.lastLSN = lsn
		c.publishLocked()
	}
}

// logLocked journals a batch about to be applied under the held write lock.
// It returns (nil, nil) when no journal is attached. Insert ops get their
// _id assigned here — before the record is encoded — so the logged document
// is byte-identical to the one a replay will insert.
func (c *Collection) logLocked(ops []WriteOp, ordered bool) (CommitWaiter, error) {
	if c.journal == nil {
		return nil, nil
	}
	for i := range ops {
		if ops[i].Kind == InsertOp && ops[i].Doc != nil {
			ensureID(ops[i].Doc)
		}
	}
	commit, err := c.journal.LogBatch(ops, ordered)
	if err != nil {
		return nil, err
	}
	c.lastLSN = commit.LSN()
	return commit, nil
}

// logClearLocked journals a collection wipe under the held write lock.
func (c *Collection) logClearLocked() (CommitWaiter, error) {
	if c.journal == nil {
		return nil, nil
	}
	commit, err := c.journal.LogClear()
	if err != nil {
		return nil, err
	}
	c.lastLSN = commit.LSN()
	return commit, nil
}

// logEnsureIndexLocked journals an index creation under the held write lock.
func (c *Collection) logEnsureIndexLocked(spec *bson.Doc, unique bool) (CommitWaiter, error) {
	if c.journal == nil {
		return nil, nil
	}
	commit, err := c.journal.LogEnsureIndex(spec, unique)
	if err != nil {
		return nil, err
	}
	c.lastLSN = commit.LSN()
	return commit, nil
}

// logDropIndexLocked journals an index removal under the held write lock.
func (c *Collection) logDropIndexLocked(name string) (CommitWaiter, error) {
	if c.journal == nil {
		return nil, nil
	}
	commit, err := c.journal.LogDropIndex(name)
	if err != nil {
		return nil, err
	}
	c.lastLSN = commit.LSN()
	return commit, nil
}

// waitCommit resolves a commit handle after the collection lock has been
// released, translating the journal's policy into the caller's
// acknowledgement, then fires the post-commit notification hook. A nil
// commit (no journal) is a no-op. Every code path that obtains a commit must
// reach waitCommit — including apply-error paths — or the change-stream
// frontier would stall on the unnotified LSN.
func waitCommit(commit CommitWaiter, journaled bool) error {
	if commit == nil {
		return nil
	}
	err := commit.Wait(journaled)
	if n, ok := commit.(CommitNotifier); ok {
		n.Notify()
	}
	return err
}
