package storage

import (
	"sync"

	"docstore/internal/bson"
	"docstore/internal/query"
)

// DefaultBatchSize is the number of documents a streaming cursor pulls from
// its snapshot per fill when FindOptions.BatchSize is zero. It mirrors the
// role of the wire protocol's default batch size: large enough to amortize
// per-batch bookkeeping, small enough to bound per-batch memory.
const DefaultBatchSize = 256

// Cursor streams the results of a query in batches instead of materializing
// the full result set, so peak memory for a scan is O(batch) rather than
// O(result). It retains the iterator interface the thesis' algorithms are
// written against (cursor.hasNext() / cursor.next() in Figure 4.7) alongside
// Go-style TryNext/NextBatch accessors.
//
// A cursor opened against a collection pins one immutable Snapshot for its
// whole lifetime and provides true point-in-time isolation: the drained
// result is exactly the set — and the contents — of the documents committed
// when the cursor opened. Inserts, updates and deletes committed after the
// open are invisible, compaction and record-array growth never perturb an
// open scan, and no batch ever takes a collection lock, so scans proceed at
// full speed under sustained bulk-write load. (Before the MVCC engine,
// cursors froze at whatever state the record array happened to be rewritten
// into — deletes were visible until a growth or compaction rewrote the
// array; that anomaly is gone.)
//
// Cursors are not safe for concurrent use by multiple goroutines.
type Cursor struct {
	// Streaming state (snap == nil for slice-backed cursors).
	snap    *Snapshot
	order   []int // index-scan positions into the snapshot; nil = sequential scan
	next    int
	matcher *query.Matcher
	proj    *query.Projection

	skipLeft  int
	limitLeft int // -1 = unlimited
	batchSize int // <= 0 = unbounded (whole result in one batch)

	// Slice mode: pre-materialized results (sorted queries, NewCursor).
	rest []*bson.Doc

	buf    []*bson.Doc
	pos    int
	done   bool
	closed bool
	plan   Plan

	onFinish func()
}

// OnFinish registers a hook invoked exactly once when the cursor is
// exhausted or closed, whichever happens first. The profiler uses it to
// time a streamed query over its whole drain rather than its construction.
func (cur *Cursor) OnFinish(fn func()) { cur.onFinish = fn }

func (cur *Cursor) finishOnce() {
	if cur.onFinish != nil {
		fn := cur.onFinish
		cur.onFinish = nil
		fn()
	}
}

// NewCursor wraps an already materialized result slice in a cursor.
func NewCursor(docs []*bson.Doc) *Cursor {
	return &Cursor{rest: docs, limitLeft: -1, batchSize: -1}
}

// BatchSize returns the cursor's batch size; <= 0 means unbounded.
func (cur *Cursor) BatchSize() int { return cur.batchSize }

// Snapshot returns the snapshot the cursor is pinned to, or nil for a
// slice-backed cursor over pre-materialized results.
func (cur *Cursor) Snapshot() *Snapshot { return cur.snap }

// Plan returns the execution plan observed so far. After the cursor is
// exhausted it matches the plan FindWithPlan would have returned.
func (cur *Cursor) Plan() Plan { return cur.plan }

// Err returns the first error encountered while iterating. Storage cursors
// validate their query at creation, so Err is always nil today; it exists so
// higher layers can treat every cursor uniformly.
func (cur *Cursor) Err() error { return nil }

// Close releases the cursor's snapshot and buffers. It is safe to call more
// than once and after exhaustion. Releasing the snapshot unpins its version,
// letting the engine recycle the pages the cursor was retaining (see
// EngineStats) — a cursor held open is exactly the "stuck cursor" the
// oldest-pin-age gauge measures.
func (cur *Cursor) Close() error {
	cur.closed = true
	cur.done = true
	if cur.snap != nil {
		cur.snap.Release()
	}
	cur.snap = nil
	cur.order = nil
	cur.rest = nil
	cur.buf = nil
	cur.pos = 0
	cur.finishOnce()
	return nil
}

// HasNext reports whether another document is available, fetching the next
// batch when the current one is consumed.
func (cur *Cursor) HasNext() bool {
	for cur.pos >= len(cur.buf) {
		if cur.done || cur.closed {
			// Exhausted: unpin the snapshot eagerly instead of waiting for
			// Close, so a drained-but-unclosed cursor retains nothing.
			if cur.snap != nil {
				cur.snap.Release()
			}
			cur.finishOnce()
			return false
		}
		cur.fill()
	}
	return true
}

// Next returns the next document; it panics when exhausted, matching
// iterator misuse being a programming error (the thesis-style next()).
func (cur *Cursor) Next() *bson.Doc {
	if !cur.HasNext() {
		panic("storage: Next called on exhausted cursor")
	}
	d := cur.buf[cur.pos]
	cur.pos++
	return d
}

// TryNext returns the next document, or (nil, false) when the cursor is
// exhausted or closed.
func (cur *Cursor) TryNext() (*bson.Doc, bool) {
	if !cur.HasNext() {
		return nil, false
	}
	d := cur.buf[cur.pos]
	cur.pos++
	return d, true
}

// NextBatch returns the next batch of documents, or an empty slice when the
// cursor is exhausted. The returned slice is the cursor's internal buffer and
// is only valid until the following NextBatch/Next call.
func (cur *Cursor) NextBatch() []*bson.Doc {
	if !cur.HasNext() {
		return nil
	}
	batch := cur.buf[cur.pos:]
	cur.pos = len(cur.buf)
	return batch
}

// All drains the remaining documents and closes the cursor.
func (cur *Cursor) All() ([]*bson.Doc, error) {
	var out []*bson.Doc
	for {
		batch := cur.NextBatch()
		if len(batch) == 0 {
			break
		}
		out = append(out, batch...)
	}
	err := cur.Err()
	cur.Close()
	return out, err
}

// fill pulls the next batch into cur.buf. Snapshot-backed cursors scan their
// pinned immutable version, so the fill takes no locks at all and a batch
// can never observe a concurrent writer's partial state.
func (cur *Cursor) fill() {
	cur.buf = cur.buf[:0]
	cur.pos = 0
	if cur.done || cur.closed {
		return
	}
	if cur.snap == nil {
		n := len(cur.rest)
		if cur.batchSize > 0 && n > cur.batchSize {
			n = cur.batchSize
		}
		cur.buf = append(cur.buf, cur.rest[:n]...)
		cur.rest = cur.rest[n:]
		cur.plan.DocsReturned += n
		if len(cur.rest) == 0 {
			cur.done = true
		}
		return
	}

	v := cur.snap.v
	examinedBefore := cur.plan.DocsExamined
	for !cur.done && (cur.batchSize <= 0 || len(cur.buf) < cur.batchSize) {
		var r *record
		if cur.order != nil {
			if cur.next >= len(cur.order) {
				cur.done = true
				break
			}
			pos := cur.order[cur.next]
			cur.next++
			if pos < 0 || pos >= v.length {
				continue
			}
			r = v.record(pos)
		} else {
			if cur.next >= v.length {
				cur.done = true
				break
			}
			r = v.record(cur.next)
			cur.next++
		}
		if r == nil || r.deleted {
			continue
		}
		cur.plan.DocsExamined++
		if !cur.matcher.Matches(r.doc) {
			continue
		}
		if cur.skipLeft > 0 {
			cur.skipLeft--
			continue
		}
		d := r.doc
		if cur.proj != nil {
			d = cur.proj.Apply(d)
		}
		cur.buf = append(cur.buf, d)
		cur.plan.DocsReturned++
		if cur.limitLeft > 0 {
			cur.limitLeft--
			if cur.limitLeft == 0 {
				cur.done = true
			}
		}
	}
	cur.snap.coll.docsExamined.Add(int64(cur.plan.DocsExamined - examinedBefore))
	if len(cur.buf) == 0 {
		cur.done = true
	}
}

// openScan pins the snapshot a cursor will read and plans its access path,
// with zero mutex acquisitions: the pin is an atomic load through the pin
// gate, a bare _id equality is served from the pinned version's own id map,
// and index planning and index scans run against the version-owned frozen
// index trees — immutable path-copied structures published together with
// the records, so the position list agrees with the pinned records by
// construction. (Before the persistent trees, index planning re-pinned
// under the writer mutex so the shared mutable trees agreed with the
// version; that was the last lock on the read path.) A non-zero
// opts.AtVersion pins the named committed version instead of the current
// one; see SnapshotAt.
func (c *Collection) openScan(filter *bson.Doc, opts FindOptions) (*Snapshot, []int, string, error) {
	snap, err := c.SnapshotAt(opts.AtVersion)
	if err != nil {
		return nil, nil, "", err
	}
	order, indexUsed, err := snap.v.planEnv(c.name).plan(filter, opts)
	if err != nil {
		snap.Release()
		return nil, nil, "", err
	}
	return snap, order, indexUsed, nil
}

// HoldWrites blocks every mutation on the collection until the returned
// release function is called (it is idempotent). Reads are unaffected —
// they pin published versions. Checkpoints hold every collection at once to
// establish a single capture point: with writers held, the set of published
// versions across collections is one mutually consistent cut.
func (c *Collection) HoldWrites() (release func()) {
	c.mu.Lock()
	var once sync.Once
	return func() { once.Do(c.mu.Unlock) }
}

// FindCursor opens a streaming cursor over the documents matching filter.
// The cursor pins one snapshot for its whole lifetime (see Cursor). Queries
// without a sort stream directly from the snapshot (or index) scan in
// batches of opts.BatchSize documents; queries with a sort are blocking and
// materialize their result before the first batch, exactly as an in-memory
// sort must.
func (c *Collection) FindCursor(filter *bson.Doc, opts FindOptions) (*Cursor, error) {
	matcher, err := query.Compile(filter)
	if err != nil {
		return nil, err
	}
	batchSize := opts.BatchSize
	if batchSize == 0 {
		batchSize = DefaultBatchSize
	}

	// The plan span covers the snapshot pin and access-path choice — the
	// part of a query that may contend on the writer mutex; the batch fills
	// that follow are lock-free and belong to the caller's drain time.
	planSpan := opts.Trace.Child("storage.plan")
	snap, order, indexUsed, err := c.openScan(filter, opts)
	if err != nil {
		planSpan.Finish()
		return nil, err
	}
	if planSpan != nil {
		planSpan.SetAttr("collection", c.name)
		planSpan.SetAttr("index", indexUsed)
		planSpan.SetAttr("snapshotVersion", snap.Version())
		planSpan.Finish()
	}
	if order == nil {
		c.scans.Add(1)
	} else {
		c.indexScans.Add(1)
	}

	cur := &Cursor{
		snap:      snap,
		order:     order,
		matcher:   matcher,
		batchSize: batchSize,
		limitLeft: -1,
		plan: Plan{
			Collection:      c.name,
			IndexUsed:       indexUsed,
			SnapshotVersion: snap.Version(),
			Isolation:       IsolationSnapshot,
		},
	}

	if len(opts.Sort) > 0 {
		// Blocking sort: drain the raw scan, order it, then serve the result
		// from a slice-backed cursor that retains the scan's plan counters
		// (snapshot version included: the sorted result is exactly the
		// pinned version's matching set).
		cur.batchSize = -1
		cur.fill()
		docs := append([]*bson.Doc(nil), cur.buf...)
		plan := cur.plan
		cur.Close() // the drain is done; unpin the scan's snapshot
		plan.SortInMemory = true
		plan.DocsReturned = 0
		opts.Sort.Apply(docs)
		if opts.Skip > 0 {
			if opts.Skip >= len(docs) {
				docs = nil
			} else {
				docs = docs[opts.Skip:]
			}
		}
		if opts.Limit > 0 && len(docs) > opts.Limit {
			docs = docs[:opts.Limit]
		}
		if opts.Projection != nil {
			projected := make([]*bson.Doc, len(docs))
			for i, d := range docs {
				projected[i] = opts.Projection.Apply(d)
			}
			docs = projected
		}
		return &Cursor{rest: docs, limitLeft: -1, batchSize: batchSize, plan: plan}, nil
	}

	cur.proj = opts.Projection
	cur.skipLeft = opts.Skip
	if opts.Limit > 0 {
		cur.limitLeft = opts.Limit
	}
	return cur, nil
}
