package storage

import (
	"fmt"
	"sort"

	"docstore/internal/bson"
	"docstore/internal/index"
)

// EnsureIndex creates a secondary index over the collection if one with the
// same specification does not already exist, and backfills it from the
// current documents. It returns the index either way. Creation is journaled
// (before the backfill, under the same lock that orders writes) so recovery
// rebuilds the index and replayed writes see the same unique-key
// enforcement; a backfill failure replays identically, so the logged record
// is deterministic either way. The backfill runs under the write mutex but
// never blocks snapshot readers: collection scans and already-open cursors
// proceed against the published version while the tree builds.
func (c *Collection) EnsureIndex(spec index.Spec, unique bool) (*index.Index, error) {
	c.mu.Lock()
	name := spec.Name()
	if existing := c.indexes.byName(name); existing != nil {
		c.mu.Unlock()
		return existing, nil
	}
	commit, err := c.logEnsureIndexLocked(spec.Doc(), unique)
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	ix := index.New(name, spec, unique)
	c.adoptIndexLocked(ix)
	for i := 0; i < c.length; i++ {
		r := c.writerRecord(i)
		if r == nil || r.deleted {
			continue
		}
		if err := ix.Insert(r.doc, r.doc.ID()); err != nil {
			// The record is logged; publish the advanced watermark and
			// resolve the commit so the change-stream frontier sees its LSN
			// (a replayed backfill fails identically, so recovery stays
			// deterministic).
			c.publishLocked()
			c.mu.Unlock()
			_ = waitCommit(commit, false)
			return nil, fmt.Errorf("storage: building index %s: %w", name, err)
		}
	}
	c.indexes = append(c.indexes, indexEntry{name: name, ix: ix})
	sort.Slice(c.indexes, func(i, j int) bool { return c.indexes[i].name < c.indexes[j].name })
	c.indexesChanged = true
	c.publishLocked()
	c.mu.Unlock()
	return ix, waitCommit(commit, false)
}

// EnsureIndexDoc is EnsureIndex taking the document form of the key
// specification, e.g. {"ss_item_sk": 1}.
func (c *Collection) EnsureIndexDoc(spec *bson.Doc, unique bool) (*index.Index, error) {
	parsed, err := index.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return c.EnsureIndex(parsed, unique)
}

// DropIndex removes the named index and reports whether it existed. The
// removal is journaled so recovery does not resurrect the index.
func (c *Collection) DropIndex(name string) bool {
	c.mu.Lock()
	pos := -1
	for i, e := range c.indexes {
		if e.name == name {
			pos = i
			break
		}
	}
	if pos < 0 {
		c.mu.Unlock()
		return false
	}
	commit, err := c.logDropIndexLocked(name)
	if err != nil {
		c.mu.Unlock()
		return false
	}
	c.retireTreeLocked(c.indexes[pos].ix)
	c.indexes = append(c.indexes[:pos:pos], c.indexes[pos+1:]...)
	c.indexesChanged = true
	c.publishLocked()
	c.mu.Unlock()
	_ = waitCommit(commit, false)
	return true
}

// Index returns the named index, or nil.
func (c *Collection) Index(name string) *index.Index {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.indexes.byName(name)
}

// Indexes returns the collection's secondary indexes sorted by name (the
// live set's own order).
func (c *Collection) Indexes() []*index.Index {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*index.Index, 0, len(c.indexes))
	for _, e := range c.indexes {
		out = append(out, e.ix)
	}
	return out
}

// IndexNames returns the names of the collection's secondary indexes.
func (c *Collection) IndexNames() []string {
	ixs := c.Indexes()
	names := make([]string, len(ixs))
	for i, ix := range ixs {
		names[i] = ix.Name()
	}
	return names
}
