package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"docstore/internal/bson"
)

// Snapshot persistence: a collection is written as a stream of
// length-prefixed binary documents preceded by a small header. This is the
// storage analogue of a data directory; the experiment harness uses it to
// avoid regenerating datasets between runs, and checkpoints stream it
// through Snapshot.WriteData (see snapshot.go) so the disk write happens
// entirely outside the write path's critical section.

var snapshotMagic = [4]byte{'D', 'S', 'C', '1'}

// SnapshotInfo describes what one snapshot captured.
type SnapshotInfo struct {
	// Count is the number of documents written.
	Count int
	// LastLSN is the journal watermark of the snapshot's version: every
	// mutation at or below it is contained in the data, every one above it
	// is not. Checkpoints pair it with the snapshot so recovery replays
	// exactly the log records the snapshot does not already contain.
	LastLSN int64
	// Indexes are the secondary index definitions live at the snapshot's
	// version. The snapshot stream itself carries only documents;
	// checkpoints persist these definitions in their manifest and recovery
	// rebuilds the trees by backfilling.
	Indexes []IndexMeta
}

// IndexMeta is one secondary index definition.
type IndexMeta struct {
	Spec   *bson.Doc
	Unique bool
}

// WriteSnapshot writes every live document of the current committed version
// to w. It pins a snapshot for the duration of the write and releases it.
func (c *Collection) WriteSnapshot(w io.Writer) error {
	s := c.Snapshot()
	defer s.Release()
	return s.WriteData(w)
}

// ReadSnapshot loads documents from r into the collection, appending to its
// current contents.
func (c *Collection) ReadSnapshot(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("storage: reading snapshot header: %w", err)
	}
	if magic != snapshotMagic {
		return fmt.Errorf("storage: bad snapshot magic %q", magic[:])
	}
	countBuf := make([]byte, 8)
	if _, err := io.ReadFull(br, countBuf); err != nil {
		return fmt.Errorf("storage: reading snapshot count: %w", err)
	}
	count := binary.LittleEndian.Uint64(countBuf)
	for i := uint64(0); i < count; i++ {
		doc, err := readLengthPrefixedDoc(br)
		if err != nil {
			return fmt.Errorf("storage: reading snapshot document %d: %w", i, err)
		}
		if _, err := c.Insert(doc); err != nil {
			return err
		}
	}
	// The header count must agree exactly with the stream: trailing data
	// means the snapshot was written with a count/scan mismatch (or was
	// corrupted) and cannot be trusted.
	if _, err := br.ReadByte(); err != io.EOF {
		return fmt.Errorf("storage: snapshot contains data beyond its header count of %d documents", count)
	}
	return nil
}

func readLengthPrefixedDoc(br *bufio.Reader) (*bson.Doc, error) {
	lenBuf := make([]byte, 4)
	if _, err := io.ReadFull(br, lenBuf); err != nil {
		return nil, err
	}
	length := binary.LittleEndian.Uint32(lenBuf)
	if length < 5 || length > bson.MaxDocumentSize+1024 {
		return nil, fmt.Errorf("invalid document length %d", length)
	}
	buf := make([]byte, length)
	copy(buf, lenBuf)
	if _, err := io.ReadFull(br, buf[4:]); err != nil {
		return nil, err
	}
	return bson.Unmarshal(buf)
}

// SaveFile writes the snapshot to a file path.
func (c *Collection) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := c.WriteSnapshot(f); err != nil {
		return err
	}
	return f.Sync()
}

// LoadFile reads a snapshot file into the collection.
func (c *Collection) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.ReadSnapshot(f)
}
