package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"docstore/internal/bson"
)

// Snapshot persistence: a collection is written as a stream of
// length-prefixed binary documents preceded by a small header. This is the
// storage analogue of a data directory; the experiment harness uses it to
// avoid regenerating datasets between runs.

var snapshotMagic = [4]byte{'D', 'S', 'C', '1'}

// WriteSnapshot writes every live document to w.
func (c *Collection) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	countBuf := make([]byte, 8)
	binary.LittleEndian.PutUint64(countBuf, uint64(c.Count()))
	if _, err := bw.Write(countBuf); err != nil {
		return err
	}
	var writeErr error
	c.Scan(func(d *bson.Doc) bool {
		if _, err := bw.Write(bson.Marshal(d)); err != nil {
			writeErr = err
			return false
		}
		return true
	})
	if writeErr != nil {
		return writeErr
	}
	return bw.Flush()
}

// ReadSnapshot loads documents from r into the collection, appending to its
// current contents.
func (c *Collection) ReadSnapshot(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("storage: reading snapshot header: %w", err)
	}
	if magic != snapshotMagic {
		return fmt.Errorf("storage: bad snapshot magic %q", magic[:])
	}
	countBuf := make([]byte, 8)
	if _, err := io.ReadFull(br, countBuf); err != nil {
		return fmt.Errorf("storage: reading snapshot count: %w", err)
	}
	count := binary.LittleEndian.Uint64(countBuf)
	for i := uint64(0); i < count; i++ {
		doc, err := readLengthPrefixedDoc(br)
		if err != nil {
			return fmt.Errorf("storage: reading snapshot document %d: %w", i, err)
		}
		if _, err := c.Insert(doc); err != nil {
			return err
		}
	}
	return nil
}

func readLengthPrefixedDoc(br *bufio.Reader) (*bson.Doc, error) {
	lenBuf := make([]byte, 4)
	if _, err := io.ReadFull(br, lenBuf); err != nil {
		return nil, err
	}
	length := binary.LittleEndian.Uint32(lenBuf)
	if length < 5 || length > bson.MaxDocumentSize+1024 {
		return nil, fmt.Errorf("invalid document length %d", length)
	}
	buf := make([]byte, length)
	copy(buf, lenBuf)
	if _, err := io.ReadFull(br, buf[4:]); err != nil {
		return nil, err
	}
	return bson.Unmarshal(buf)
}

// SaveFile writes the snapshot to a file path.
func (c *Collection) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := c.WriteSnapshot(f); err != nil {
		return err
	}
	return f.Sync()
}

// LoadFile reads a snapshot file into the collection.
func (c *Collection) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.ReadSnapshot(f)
}
