package storage

import (
	"fmt"

	"docstore/internal/bson"
	"docstore/internal/query"
)

// FindOptions modifies a Find call.
type FindOptions struct {
	Sort       query.Sort
	Projection *query.Projection
	Limit      int // 0 means no limit
	Skip       int
	// Hint forces the named index; empty lets the planner choose.
	Hint string
}

// Plan describes how a query was (or would be) executed; it is the
// explain() analogue.
type Plan struct {
	Collection   string
	IndexUsed    string // empty for a collection scan
	DocsExamined int
	DocsReturned int
	SortInMemory bool
}

// String renders the plan compactly.
func (p Plan) String() string {
	src := "COLLSCAN"
	if p.IndexUsed != "" {
		src = "IXSCAN " + p.IndexUsed
	}
	return fmt.Sprintf("%s on %s examined=%d returned=%d", src, p.Collection, p.DocsExamined, p.DocsReturned)
}

// Find returns the documents matching filter, honouring the options.
func (c *Collection) Find(filter *bson.Doc, opts FindOptions) ([]*bson.Doc, error) {
	docs, _, err := c.FindWithPlan(filter, opts)
	return docs, err
}

// FindAll returns every document matching the filter with default options.
func (c *Collection) FindAll(filter *bson.Doc) ([]*bson.Doc, error) {
	return c.Find(filter, FindOptions{})
}

// FindOne returns the first matching document or nil.
func (c *Collection) FindOne(filter *bson.Doc) (*bson.Doc, error) {
	docs, err := c.Find(filter, FindOptions{Limit: 1})
	if err != nil {
		return nil, err
	}
	if len(docs) == 0 {
		return nil, nil
	}
	return docs[0], nil
}

// CountDocs returns the number of documents matching the filter.
func (c *Collection) CountDocs(filter *bson.Doc) (int, error) {
	if filter == nil || filter.Len() == 0 {
		return c.Count(), nil
	}
	docs, err := c.Find(filter, FindOptions{})
	if err != nil {
		return 0, err
	}
	return len(docs), nil
}

// FindWithPlan is Find but also returns the execution plan, which the
// benchmark harness uses to verify index usage and document-examined counts.
func (c *Collection) FindWithPlan(filter *bson.Doc, opts FindOptions) ([]*bson.Doc, Plan, error) {
	plan := Plan{Collection: c.name}
	matcher, err := query.Compile(filter)
	if err != nil {
		return nil, plan, err
	}

	c.mu.RLock()
	candidates, indexUsed := c.planLocked(filter, opts)
	plan.IndexUsed = indexUsed

	var out []*bson.Doc
	// When we can rely on index order for the sort and there is no explicit
	// sort requirement beyond it, results are produced in candidate order.
	examined := 0
	consider := func(d *bson.Doc) bool {
		examined++
		if !matcher.Matches(d) {
			return true
		}
		out = append(out, d)
		// Limit can only be applied during the scan when no sort reorders
		// the results afterwards.
		if opts.Limit > 0 && len(opts.Sort) == 0 && len(out) >= opts.Limit+opts.Skip {
			return false
		}
		return true
	}
	if candidates == nil {
		c.scans.Add(1)
		for i := range c.records {
			if c.records[i].deleted {
				continue
			}
			if !consider(c.records[i].doc) {
				break
			}
		}
	} else {
		c.indexScans.Add(1)
		for _, pos := range candidates {
			r := c.records[pos]
			if r.deleted {
				continue
			}
			if !consider(r.doc) {
				break
			}
		}
	}
	c.mu.RUnlock()

	plan.DocsExamined = examined
	if len(opts.Sort) > 0 {
		plan.SortInMemory = true
		opts.Sort.Apply(out)
	}
	if opts.Skip > 0 {
		if opts.Skip >= len(out) {
			out = nil
		} else {
			out = out[opts.Skip:]
		}
	}
	if opts.Limit > 0 && len(out) > opts.Limit {
		out = out[:opts.Limit]
	}
	if opts.Projection != nil {
		projected := make([]*bson.Doc, len(out))
		for i, d := range out {
			projected[i] = opts.Projection.Apply(d)
		}
		out = projected
	}
	plan.DocsReturned = len(out)
	return out, plan, nil
}

// planLocked chooses an access path for the filter: either nil (collection
// scan) or the ordered record positions produced by the most selective usable
// index. The caller holds at least a read lock.
func (c *Collection) planLocked(filter *bson.Doc, opts FindOptions) ([]int, string) {
	if len(c.indexes) == 0 || filter == nil || filter.Len() == 0 {
		return nil, ""
	}
	constraints := query.FieldConstraints(filter)
	if len(constraints) == 0 && opts.Hint == "" {
		return nil, ""
	}
	var best *indexChoice
	for name, ix := range c.indexes {
		if opts.Hint != "" && name != opts.Hint {
			continue
		}
		prefix := ix.PrefixMatches(constraints)
		if prefix == 0 {
			if opts.Hint == name {
				// Honour the hint even if it cannot narrow the scan.
				return nil, ""
			}
			continue
		}
		leading := constraints[ix.Spec().Fields[0].Name]
		choice := &indexChoice{name: name, prefix: prefix, leading: leading, distinct: ix.DistinctKeys()}
		if best == nil || choice.better(best) {
			best = choice
		}
	}
	if best == nil {
		return nil, ""
	}
	ix := c.indexes[best.name]
	// A non-nil (possibly empty) slice signals that an index narrowed the
	// candidates; nil means a collection scan is required.
	positions := make([]int, 0, 16)
	ok := ix.ScanRange(best.leading, func(id any) bool {
		if pos, exists := c.byID[idKey(id)]; exists {
			positions = append(positions, pos)
		}
		return true
	})
	if !ok {
		return nil, ""
	}
	return positions, best.name
}

type indexChoice struct {
	name     string
	prefix   int
	leading  *query.Constraint
	distinct int
}

// better prefers longer prefixes, then point constraints over ranges, then
// higher-cardinality indexes (a point lookup on a high-cardinality index
// narrows the candidate set more), and finally the name for determinism.
func (a *indexChoice) better(b *indexChoice) bool {
	if a.prefix != b.prefix {
		return a.prefix > b.prefix
	}
	aPoint, bPoint := a.leading.IsPoint(), b.leading.IsPoint()
	if aPoint != bPoint {
		return aPoint
	}
	if a.distinct != b.distinct {
		return a.distinct > b.distinct
	}
	return a.name < b.name
}

// Distinct returns the sorted distinct values of a (possibly dotted) field
// across documents matching the filter.
func (c *Collection) Distinct(field string, filter *bson.Doc) ([]any, error) {
	docs, err := c.FindAll(filter)
	if err != nil {
		return nil, err
	}
	var out []any
	for _, d := range docs {
		for _, v := range d.LookupPathAll(field) {
			found := false
			for _, existing := range out {
				if bson.Compare(existing, v) == 0 {
					found = true
					break
				}
			}
			if !found {
				out = append(out, v)
			}
		}
	}
	sortValues(out)
	return out, nil
}

func sortValues(vals []any) {
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && bson.Compare(vals[j], vals[j-1]) < 0; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
}

// Cursor provides iterator-style access over a result set, mirroring the
// cursor interface the thesis' algorithms are written against
// (cursor.hasNext() / cursor.next() in Figure 4.7).
type Cursor struct {
	docs []*bson.Doc
	pos  int
}

// NewCursor wraps a result slice in a cursor.
func NewCursor(docs []*bson.Doc) *Cursor { return &Cursor{docs: docs} }

// HasNext reports whether another document is available.
func (cur *Cursor) HasNext() bool { return cur.pos < len(cur.docs) }

// Next returns the next document; it panics when exhausted, matching
// iterator misuse being a programming error.
func (cur *Cursor) Next() *bson.Doc {
	if !cur.HasNext() {
		panic("storage: Next called on exhausted cursor")
	}
	d := cur.docs[cur.pos]
	cur.pos++
	return d
}

// Remaining returns the number of documents not yet consumed.
func (cur *Cursor) Remaining() int { return len(cur.docs) - cur.pos }

// FindCursor runs Find and returns a cursor over the results.
func (c *Collection) FindCursor(filter *bson.Doc, opts FindOptions) (*Cursor, error) {
	docs, err := c.Find(filter, opts)
	if err != nil {
		return nil, err
	}
	return NewCursor(docs), nil
}
