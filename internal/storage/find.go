package storage

import (
	"fmt"

	"docstore/internal/bson"
	"docstore/internal/index"
	"docstore/internal/query"
	"docstore/internal/trace"
)

// FindOptions modifies a Find call.
type FindOptions struct {
	Sort       query.Sort
	Projection *query.Projection
	Limit      int // 0 means no limit
	Skip       int
	// Hint forces the named index; empty lets the planner choose. Naming an
	// index that does not exist fails the query with ErrUnknownIndex rather
	// than silently falling back to a collection scan.
	Hint string
	// BatchSize is the number of documents a FindCursor pulls per batch:
	// 0 uses DefaultBatchSize, negative values disable batching so the whole
	// result is produced in one batch (the materializing behaviour Find
	// relies on). Slice-returning APIs ignore it.
	BatchSize int
	// AtVersion pins the query to the named committed collection version
	// instead of the current one — the engine's atClusterTime analogue. A
	// session issues its first query normally, reads Plan.SnapshotVersion
	// (keeping that cursor open anchors the version against retention), and
	// passes it here on follow-up queries: every result then describes one
	// committed state, no matter how many writes land in between. 0 means
	// the current version; naming a version the engine no longer tracks
	// fails with ErrVersionRetired.
	AtVersion int64
	// Trace is the parent span of the request this query belongs to; the
	// engine attaches a storage.plan child recording the snapshot pin and
	// chosen access path under it. Nil disables tracing for the query.
	Trace *trace.Span
}

// ErrUnknownIndex is returned when FindOptions.Hint names an index that does
// not exist on the collection. It surfaces verbatim through mongod, the
// query router and the wire protocol, so a bad hint is a query error at
// every layer instead of a silent collection scan.
type ErrUnknownIndex struct {
	Collection string
	Hint       string
}

func (e *ErrUnknownIndex) Error() string {
	return fmt.Sprintf("storage: hint %q: no index with that name on collection %q", e.Hint, e.Collection)
}

// IsolationSnapshot is the Plan.Isolation value of version-pinned scans: the
// result is a point-in-time view of one committed version. It is the only
// isolation level collection-backed cursors run at.
const IsolationSnapshot = "snapshot"

// Plan describes how a query was (or would be) executed; it is the
// explain() analogue.
type Plan struct {
	Collection   string
	IndexUsed    string // empty for a collection scan
	DocsExamined int
	DocsReturned int
	SortInMemory bool
	// SnapshotVersion is the collection version the scan pinned: all
	// documents the query returned belong to exactly this committed state.
	// 0 for cursors over pre-materialized slices, which have no version.
	SnapshotVersion int64
	// Isolation is the read isolation of the scan: IsolationSnapshot for
	// version-pinned scans, empty for pre-materialized results.
	Isolation string
}

// String renders the plan compactly.
func (p Plan) String() string {
	src := "COLLSCAN"
	if p.IndexUsed != "" {
		src = "IXSCAN " + p.IndexUsed
	}
	s := fmt.Sprintf("%s on %s examined=%d returned=%d", src, p.Collection, p.DocsExamined, p.DocsReturned)
	if p.SnapshotVersion > 0 {
		s += fmt.Sprintf(" snapshot=%d", p.SnapshotVersion)
	}
	return s
}

// Find returns the documents matching filter, honouring the options.
func (c *Collection) Find(filter *bson.Doc, opts FindOptions) ([]*bson.Doc, error) {
	docs, _, err := c.FindWithPlan(filter, opts)
	return docs, err
}

// FindAll returns every document matching the filter with default options.
func (c *Collection) FindAll(filter *bson.Doc) ([]*bson.Doc, error) {
	return c.Find(filter, FindOptions{})
}

// FindOne returns the first matching document or nil.
func (c *Collection) FindOne(filter *bson.Doc) (*bson.Doc, error) {
	docs, err := c.Find(filter, FindOptions{Limit: 1})
	if err != nil {
		return nil, err
	}
	if len(docs) == 0 {
		return nil, nil
	}
	return docs[0], nil
}

// CountDocs returns the number of documents matching the filter.
func (c *Collection) CountDocs(filter *bson.Doc) (int, error) {
	if filter == nil || filter.Len() == 0 {
		return c.Count(), nil
	}
	docs, err := c.Find(filter, FindOptions{})
	if err != nil {
		return 0, err
	}
	return len(docs), nil
}

// FindWithPlan is Find but also returns the execution plan, which the
// benchmark harness uses to verify index usage and document-examined counts.
// It is a thin wrapper over FindCursor with batching disabled, so the whole
// result materializes from one pinned snapshot.
func (c *Collection) FindWithPlan(filter *bson.Doc, opts FindOptions) ([]*bson.Doc, Plan, error) {
	opts.BatchSize = -1
	cur, err := c.FindCursor(filter, opts)
	if err != nil {
		return nil, Plan{Collection: c.name}, err
	}
	docs, err := cur.All()
	return docs, cur.Plan(), err
}

// idIndexName is the pseudo-index name a plan reports when the built-in id
// map served it, mirroring the real server's implicit _id_ index.
const idIndexName = "_id_"

// planEnv is a query-planning environment: an index set plus a resolver
// from document id keys to live record positions. The writer plans against
// its own mutable state (planLocked); readers plan against a pinned
// version's frozen index set and id map, with no locking at all — the trees
// are immutable path-copied structures published with the version, so they
// agree with the pinned records by construction.
type planEnv struct {
	coll    string
	indexes indexSet
	resolve func(key string) int // idKey -> live record position, -1 when absent
}

// planEnv returns the lock-free planning environment of a pinned version.
func (v *version) planEnv(coll string) planEnv {
	return planEnv{coll: coll, indexes: v.indexes, resolve: v.idPos}
}

// planLocked chooses an access path under the write mutex, against the
// writer's current (possibly mid-batch) state; updates use it so their
// index-narrowed candidate set agrees with the records they mutate.
func (c *Collection) planLocked(filter *bson.Doc, opts FindOptions) ([]int, string, error) {
	env := planEnv{coll: c.name, indexes: c.indexes, resolve: func(key string) int {
		if pos, ok := c.byID[key]; ok {
			return pos
		}
		return -1
	}}
	return env.plan(filter, opts)
}

// plan chooses an access path for the filter: either nil (collection scan)
// or the ordered record positions produced by the most selective usable
// index.
func (e planEnv) plan(filter *bson.Doc, opts FindOptions) ([]int, string, error) {
	if opts.Hint != "" {
		if e.indexes.byName(opts.Hint) == nil {
			return nil, "", &ErrUnknownIndex{Collection: e.coll, Hint: opts.Hint}
		}
	}
	if filter == nil || filter.Len() == 0 {
		return nil, "", nil
	}
	// A bare _id equality is served straight from the id map — the access
	// path of a single-document update stream. The position is a candidate
	// like any index result: the caller's matcher re-verifies it, so the
	// fast path can never widen or narrow the result set.
	if opts.Hint == "" && filter.Len() == 1 {
		if idv, ok := filter.Get(bson.IDKey); ok {
			if _, isDoc := idv.(*bson.Doc); !isDoc {
				if pos := e.resolve(idKey(bson.Normalize(idv))); pos >= 0 {
					return []int{pos}, idIndexName, nil
				}
				return []int{}, idIndexName, nil
			}
		}
	}
	if len(e.indexes) == 0 {
		return nil, "", nil
	}
	constraints := query.FieldConstraints(filter)
	if len(constraints) == 0 && opts.Hint == "" {
		return nil, "", nil
	}
	var best *indexChoice
	for _, ent := range e.indexes {
		name, ix := ent.name, ent.ix
		if opts.Hint != "" && name != opts.Hint {
			continue
		}
		prefix := ix.PrefixMatches(constraints)
		if prefix == 0 {
			if opts.Hint == name {
				// The hinted index exists but cannot narrow this filter;
				// honour the hint by scanning the collection.
				return nil, "", nil
			}
			continue
		}
		leading := constraints[ix.Spec().Fields[0].Name]
		choice := &indexChoice{name: name, ix: ix, prefix: prefix, leading: leading, distinct: ix.DistinctKeys()}
		if best == nil || choice.better(best) {
			best = choice
		}
	}
	if best == nil {
		return nil, "", nil
	}
	ix := best.ix
	// A non-nil (possibly empty) slice signals that an index narrowed the
	// candidates; nil means a collection scan is required.
	positions := make([]int, 0, 16)
	ok := ix.ScanRange(best.leading, func(id any) bool {
		if pos := e.resolve(idKey(id)); pos >= 0 {
			positions = append(positions, pos)
		}
		return true
	})
	if !ok {
		return nil, "", nil
	}
	return positions, best.name, nil
}

type indexChoice struct {
	name     string
	ix       *index.Index
	prefix   int
	leading  *query.Constraint
	distinct int
}

// better prefers longer prefixes, then point constraints over ranges, then
// higher-cardinality indexes (a point lookup on a high-cardinality index
// narrows the candidate set more), and finally the name for determinism.
func (a *indexChoice) better(b *indexChoice) bool {
	if a.prefix != b.prefix {
		return a.prefix > b.prefix
	}
	aPoint, bPoint := a.leading.IsPoint(), b.leading.IsPoint()
	if aPoint != bPoint {
		return aPoint
	}
	if a.distinct != b.distinct {
		return a.distinct > b.distinct
	}
	return a.name < b.name
}

// Distinct returns the sorted distinct values of a (possibly dotted) field
// across documents matching the filter.
func (c *Collection) Distinct(field string, filter *bson.Doc) ([]any, error) {
	docs, err := c.FindAll(filter)
	if err != nil {
		return nil, err
	}
	var out []any
	for _, d := range docs {
		for _, v := range d.LookupPathAll(field) {
			found := false
			for _, existing := range out {
				if bson.Compare(existing, v) == 0 {
					found = true
					break
				}
			}
			if !found {
				out = append(out, v)
			}
		}
	}
	sortValues(out)
	return out, nil
}

func sortValues(vals []any) {
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && bson.Compare(vals[j], vals[j-1]) < 0; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
}
