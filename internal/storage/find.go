package storage

import (
	"fmt"

	"docstore/internal/bson"
	"docstore/internal/query"
)

// FindOptions modifies a Find call.
type FindOptions struct {
	Sort       query.Sort
	Projection *query.Projection
	Limit      int // 0 means no limit
	Skip       int
	// Hint forces the named index; empty lets the planner choose.
	Hint string
	// BatchSize is the number of documents a FindCursor pulls per batch:
	// 0 uses DefaultBatchSize, negative values disable batching so the whole
	// result is produced in one batch (the materializing behaviour Find
	// relies on). Slice-returning APIs ignore it.
	BatchSize int
}

// Plan describes how a query was (or would be) executed; it is the
// explain() analogue.
type Plan struct {
	Collection   string
	IndexUsed    string // empty for a collection scan
	DocsExamined int
	DocsReturned int
	SortInMemory bool
}

// String renders the plan compactly.
func (p Plan) String() string {
	src := "COLLSCAN"
	if p.IndexUsed != "" {
		src = "IXSCAN " + p.IndexUsed
	}
	return fmt.Sprintf("%s on %s examined=%d returned=%d", src, p.Collection, p.DocsExamined, p.DocsReturned)
}

// Find returns the documents matching filter, honouring the options.
func (c *Collection) Find(filter *bson.Doc, opts FindOptions) ([]*bson.Doc, error) {
	docs, _, err := c.FindWithPlan(filter, opts)
	return docs, err
}

// FindAll returns every document matching the filter with default options.
func (c *Collection) FindAll(filter *bson.Doc) ([]*bson.Doc, error) {
	return c.Find(filter, FindOptions{})
}

// FindOne returns the first matching document or nil.
func (c *Collection) FindOne(filter *bson.Doc) (*bson.Doc, error) {
	docs, err := c.Find(filter, FindOptions{Limit: 1})
	if err != nil {
		return nil, err
	}
	if len(docs) == 0 {
		return nil, nil
	}
	return docs[0], nil
}

// CountDocs returns the number of documents matching the filter.
func (c *Collection) CountDocs(filter *bson.Doc) (int, error) {
	if filter == nil || filter.Len() == 0 {
		return c.Count(), nil
	}
	docs, err := c.Find(filter, FindOptions{})
	if err != nil {
		return 0, err
	}
	return len(docs), nil
}

// FindWithPlan is Find but also returns the execution plan, which the
// benchmark harness uses to verify index usage and document-examined counts.
// It is a thin wrapper over FindCursor with batching disabled, so the whole
// scan happens under a single read-lock acquisition as it always has.
func (c *Collection) FindWithPlan(filter *bson.Doc, opts FindOptions) ([]*bson.Doc, Plan, error) {
	opts.BatchSize = -1
	cur, err := c.FindCursor(filter, opts)
	if err != nil {
		return nil, Plan{Collection: c.name}, err
	}
	docs, err := cur.All()
	return docs, cur.Plan(), err
}

// planLocked chooses an access path for the filter: either nil (collection
// scan) or the ordered record positions produced by the most selective usable
// index. The caller holds at least a read lock.
func (c *Collection) planLocked(filter *bson.Doc, opts FindOptions) ([]int, string) {
	if len(c.indexes) == 0 || filter == nil || filter.Len() == 0 {
		return nil, ""
	}
	constraints := query.FieldConstraints(filter)
	if len(constraints) == 0 && opts.Hint == "" {
		return nil, ""
	}
	var best *indexChoice
	for name, ix := range c.indexes {
		if opts.Hint != "" && name != opts.Hint {
			continue
		}
		prefix := ix.PrefixMatches(constraints)
		if prefix == 0 {
			if opts.Hint == name {
				// Honour the hint even if it cannot narrow the scan.
				return nil, ""
			}
			continue
		}
		leading := constraints[ix.Spec().Fields[0].Name]
		choice := &indexChoice{name: name, prefix: prefix, leading: leading, distinct: ix.DistinctKeys()}
		if best == nil || choice.better(best) {
			best = choice
		}
	}
	if best == nil {
		return nil, ""
	}
	ix := c.indexes[best.name]
	// A non-nil (possibly empty) slice signals that an index narrowed the
	// candidates; nil means a collection scan is required.
	positions := make([]int, 0, 16)
	ok := ix.ScanRange(best.leading, func(id any) bool {
		if pos, exists := c.byID[idKey(id)]; exists {
			positions = append(positions, pos)
		}
		return true
	})
	if !ok {
		return nil, ""
	}
	return positions, best.name
}

type indexChoice struct {
	name     string
	prefix   int
	leading  *query.Constraint
	distinct int
}

// better prefers longer prefixes, then point constraints over ranges, then
// higher-cardinality indexes (a point lookup on a high-cardinality index
// narrows the candidate set more), and finally the name for determinism.
func (a *indexChoice) better(b *indexChoice) bool {
	if a.prefix != b.prefix {
		return a.prefix > b.prefix
	}
	aPoint, bPoint := a.leading.IsPoint(), b.leading.IsPoint()
	if aPoint != bPoint {
		return aPoint
	}
	if a.distinct != b.distinct {
		return a.distinct > b.distinct
	}
	return a.name < b.name
}

// Distinct returns the sorted distinct values of a (possibly dotted) field
// across documents matching the filter.
func (c *Collection) Distinct(field string, filter *bson.Doc) ([]any, error) {
	docs, err := c.FindAll(filter)
	if err != nil {
		return nil, err
	}
	var out []any
	for _, d := range docs {
		for _, v := range d.LookupPathAll(field) {
			found := false
			for _, existing := range out {
				if bson.Compare(existing, v) == 0 {
					found = true
					break
				}
			}
			if !found {
				out = append(out, v)
			}
		}
	}
	sortValues(out)
	return out, nil
}

func sortValues(vals []any) {
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && bson.Compare(vals[j], vals[j-1]) < 0; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
}
