package storage

import (
	"docstore/internal/bson"
	"docstore/internal/query"
)

// UpdateResult reports what an update touched.
type UpdateResult struct {
	Matched  int
	Modified int
	// UpsertedID is non-nil when an upsert inserted a new document.
	UpsertedID any
}

// Update applies an update specification: the four-parameter form (query,
// update, upsert, multi) used throughout the thesis' algorithms.
func (c *Collection) Update(spec query.UpdateSpec) (UpdateResult, error) {
	matcher, err := query.Compile(spec.Query)
	if err != nil {
		return UpdateResult{}, err
	}
	c.mu.Lock()
	commit, err := c.logLocked([]WriteOp{UpdateWriteOp(spec)}, true)
	if err != nil {
		c.mu.Unlock()
		return UpdateResult{}, err
	}
	res, err := c.updateLocked(spec, matcher)
	c.publishLocked()
	c.mu.Unlock()
	// Resolve the commit even on an apply error: the record was logged and
	// the change-stream frontier needs its LSN notified.
	werr := waitCommit(commit, false)
	if err != nil {
		return res, err
	}
	return res, werr
}

// updateLocked executes a pre-compiled update under the caller's write lock;
// it is the shared implementation behind Update and BulkWrite.
//
// MVCC discipline: a modified document is never mutated in place — the
// update applies to a clone, which is then installed into the (privately
// owned) record slot. Readers pinned to older versions keep observing the
// pre-update document through their own frozen record slice.
func (c *Collection) updateLocked(spec query.UpdateSpec, matcher *query.Matcher) (UpdateResult, error) {
	var res UpdateResult

	// Narrow the candidate set through an index when one matches the query,
	// exactly as Find does; the denormalization algorithm issues one
	// multi-update per dimension key and relies on this. The error is
	// structurally impossible here (updates carry no hint).
	positions, _, _ := c.planLocked(spec.Query, FindOptions{})
	if positions == nil {
		positions = make([]int, 0, len(c.records))
		for i := range c.records {
			positions = append(positions, i)
		}
	}
	for _, i := range positions {
		r := &c.records[i]
		if r.deleted || !matcher.Matches(r.doc) {
			continue
		}
		res.Matched++
		updated := r.doc.Clone()
		changed, err := query.ApplyUpdate(updated, spec.Update)
		if err != nil {
			return res, err
		}
		if changed {
			newSize := bson.EncodedSize(updated)
			if newSize > bson.MaxDocumentSize {
				// Nothing was installed; the stored document is untouched.
				return res, &ErrDocumentTooLarge{Size: newSize}
			}
			// First slot rewrite of the batch copies the shared record
			// array; the copy relocates slots, so re-derive the pointer.
			c.ensureOwnedLocked()
			r = &c.records[i]
			old := r.doc
			r.doc = updated
			c.dataSize += newSize - r.size
			r.size = newSize
			res.Modified++
			id := updated.ID()
			for _, ix := range c.indexes {
				ix.Remove(old, id)
				if err := ix.Insert(updated, id); err != nil {
					return res, err
				}
			}
		}
		if !spec.Multi {
			return res, nil
		}
	}

	if res.Matched == 0 && spec.Upsert {
		doc := buildUpsertDocument(spec)
		id, err := c.insertLocked(doc)
		if err != nil {
			return res, err
		}
		res.UpsertedID = id
	}
	return res, nil
}

// buildUpsertDocument constructs the document inserted by an upsert that
// matched nothing: the equality fields of the query plus the update applied
// to it (for operator updates) or the update document itself (replacement).
func buildUpsertDocument(spec query.UpdateSpec) *bson.Doc {
	base := bson.NewDoc(4)
	if spec.Query != nil {
		for field, cons := range query.FieldConstraints(spec.Query) {
			if cons.IsPoint() && len(cons.Points) == 1 {
				_ = base.SetPath(field, cons.Points[0])
			}
		}
	}
	if !query.IsOperatorUpdate(spec.Update) {
		doc := spec.Update.Clone()
		if id, ok := base.Get(bson.IDKey); ok && !doc.Has(bson.IDKey) {
			doc.Set(bson.IDKey, id)
		}
		return doc
	}
	_, _ = query.ApplyUpdate(base, spec.Update)
	return base
}

// UpdateMany is shorthand for a multi-document operator update.
func (c *Collection) UpdateMany(filter, update *bson.Doc) (UpdateResult, error) {
	return c.Update(query.UpdateSpec{Query: filter, Update: update, Multi: true})
}

// UpdateOne is shorthand for a single-document update.
func (c *Collection) UpdateOne(filter, update *bson.Doc) (UpdateResult, error) {
	return c.Update(query.UpdateSpec{Query: filter, Update: update})
}

// ReplaceContents drops every document and inserts the given ones; it is the
// semantics of the aggregation $out stage writing its result collection. The
// batch runs through the bulk-write engine under one lock acquisition.
func (c *Collection) ReplaceContents(docs []*bson.Doc) error {
	c.Drop()
	res := c.BulkWrite(InsertOps(docs), BulkOptions{Ordered: true})
	return res.FirstError()
}

// Delete removes documents matching the filter. When multi is false only the
// first match is removed. It returns the number of documents removed.
func (c *Collection) Delete(filter *bson.Doc, multi bool) (int, error) {
	matcher, err := query.Compile(filter)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	commit, err := c.logLocked([]WriteOp{DeleteWriteOp(filter, multi)}, true)
	if err != nil {
		c.mu.Unlock()
		return 0, err
	}
	removed := c.deleteLocked(matcher, multi)
	c.maybeCompactLocked()
	c.publishLocked()
	c.mu.Unlock()
	return removed, waitCommit(commit, false)
}

// deleteLocked removes matching documents under the caller's write lock. It
// never compacts; callers decide when to pay for compaction so a bulk of
// deletes triggers at most one rewrite. Tombstoning rewrites record slots,
// so the first removal of a batch takes the copy-on-write path; pinned
// readers keep seeing the documents through their own frozen slices.
func (c *Collection) deleteLocked(matcher *query.Matcher, multi bool) int {
	removed := 0
	for i := 0; i < len(c.records); i++ {
		r := &c.records[i]
		if r.deleted || !matcher.Matches(r.doc) {
			continue
		}
		c.ensureOwnedLocked()
		r = &c.records[i]
		r.deleted = true
		delete(c.byID, r.idKey)
		id := r.doc.ID()
		for _, ix := range c.indexes {
			ix.Remove(r.doc, id)
		}
		c.count--
		c.dataSize -= r.size
		c.tombs++
		removed++
		if !multi {
			break
		}
	}
	return removed
}

// maybeCompactLocked rewrites the record array when tombstones dominate it.
func (c *Collection) maybeCompactLocked() {
	if c.tombs > len(c.records)/2 && c.tombs > 64 {
		c.compactLocked()
	}
}

// DeleteID removes the document with the given _id.
func (c *Collection) DeleteID(id any) (bool, error) {
	n, err := c.Delete(bson.D(bson.IDKey, id), false)
	return n > 0, err
}
