package storage

import (
	"docstore/internal/bson"
	"docstore/internal/query"
)

// UpdateResult reports what an update touched.
type UpdateResult struct {
	Matched  int
	Modified int
	// UpsertedID is non-nil when an upsert inserted a new document.
	UpsertedID any
}

// Update applies an update specification: the four-parameter form (query,
// update, upsert, multi) used throughout the thesis' algorithms. It is a
// thin wrapper over BulkWrite — the engine has exactly one mutation code
// path for journaling, COW page accounting and write-concern threading.
func (c *Collection) Update(spec query.UpdateSpec) (UpdateResult, error) {
	res := c.BulkWrite([]WriteOp{UpdateWriteOp(spec)}, BulkOptions{Ordered: true})
	ur := UpdateResult{Matched: res.Matched, Modified: res.Modified}
	if len(res.UpsertedIDs) > 0 {
		ur.UpsertedID = res.UpsertedIDs[0]
	}
	return ur, res.FirstError()
}

// updateLocked executes a pre-compiled update under the caller's write lock;
// it is the single implementation behind every update entry point (all of
// which funnel through BulkWrite).
//
// MVCC discipline: a modified document is never mutated in place — the
// update applies to a clone, which is then installed into the privately
// owned page slot. Readers pinned to older versions keep observing the
// pre-update document through their own frozen pages. Only the touched
// pages are copied (ownSlotLocked), not the whole record store.
func (c *Collection) updateLocked(spec query.UpdateSpec, matcher *query.Matcher) (UpdateResult, error) {
	var res UpdateResult

	// Narrow the candidate set through an index when one matches the query,
	// exactly as Find does; the denormalization algorithm issues one
	// multi-update per dimension key and relies on this. The error is
	// structurally impossible here (updates carry no hint).
	positions, _, _ := c.planLocked(spec.Query, FindOptions{})
	if positions == nil {
		positions = make([]int, 0, c.length)
		for i := 0; i < c.length; i++ {
			positions = append(positions, i)
		}
	}
	for _, i := range positions {
		r := c.writerRecord(i)
		if r == nil || r.deleted || !matcher.Matches(r.doc) {
			continue
		}
		res.Matched++
		updated := r.doc.Clone()
		changed, err := query.ApplyUpdate(updated, spec.Update)
		if err != nil {
			return res, err
		}
		if changed {
			newSize := bson.EncodedSize(updated)
			if newSize > bson.MaxDocumentSize {
				// Nothing was installed; the stored document is untouched.
				return res, &ErrDocumentTooLarge{Size: newSize}
			}
			// First rewrite of this page in the batch copies it; the copy
			// relocates the slot, so re-derive the pointer.
			r = c.ownSlotLocked(i)
			old := r.doc
			r.doc = updated
			c.dataSize += newSize - r.size
			r.size = newSize
			res.Modified++
			id := updated.ID()
			for _, e := range c.indexes {
				e.ix.Remove(old, id)
				if err := e.ix.Insert(updated, id); err != nil {
					return res, err
				}
			}
		}
		if !spec.Multi {
			return res, nil
		}
	}

	if res.Matched == 0 && spec.Upsert {
		doc := buildUpsertDocument(spec)
		id, err := c.insertLocked(doc)
		if err != nil {
			return res, err
		}
		res.UpsertedID = id
	}
	return res, nil
}

// buildUpsertDocument constructs the document inserted by an upsert that
// matched nothing: the equality fields of the query plus the update applied
// to it (for operator updates) or the update document itself (replacement).
func buildUpsertDocument(spec query.UpdateSpec) *bson.Doc {
	base := bson.NewDoc(4)
	if spec.Query != nil {
		for field, cons := range query.FieldConstraints(spec.Query) {
			if cons.IsPoint() && len(cons.Points) == 1 {
				_ = base.SetPath(field, cons.Points[0])
			}
		}
	}
	if !query.IsOperatorUpdate(spec.Update) {
		doc := spec.Update.Clone()
		if id, ok := base.Get(bson.IDKey); ok && !doc.Has(bson.IDKey) {
			doc.Set(bson.IDKey, id)
		}
		return doc
	}
	_, _ = query.ApplyUpdate(base, spec.Update)
	return base
}

// UpdateMany is shorthand for a multi-document operator update.
func (c *Collection) UpdateMany(filter, update *bson.Doc) (UpdateResult, error) {
	return c.Update(query.UpdateSpec{Query: filter, Update: update, Multi: true})
}

// UpdateOne is shorthand for a single-document update.
func (c *Collection) UpdateOne(filter, update *bson.Doc) (UpdateResult, error) {
	return c.Update(query.UpdateSpec{Query: filter, Update: update})
}

// ReplaceContents drops every document and inserts the given ones; it is the
// semantics of the aggregation $out stage writing its result collection. The
// batch runs through the bulk-write engine under one lock acquisition.
func (c *Collection) ReplaceContents(docs []*bson.Doc) error {
	c.Drop()
	res := c.BulkWrite(InsertOps(docs), BulkOptions{Ordered: true})
	return res.FirstError()
}

// Delete removes documents matching the filter. When multi is false only the
// first match is removed. It returns the number of documents removed. Like
// Update, it is a thin wrapper over BulkWrite.
func (c *Collection) Delete(filter *bson.Doc, multi bool) (int, error) {
	res := c.BulkWrite([]WriteOp{DeleteWriteOp(filter, multi)}, BulkOptions{Ordered: true})
	return res.Deleted, res.FirstError()
}

// deleteLocked removes matching documents under the caller's write lock. It
// never compacts; callers decide when to pay for compaction so a bulk of
// deletes triggers at most one rewrite. Tombstoning rewrites record slots,
// so the first removal in a page takes the copy-on-write path for that page;
// pinned readers keep seeing the documents through their own frozen pages.
// The tombstone drops its document reference — once no pinned version covers
// the page, the document's memory is gone, and a fully tombstoned page is
// nilled out of the spine by the incremental GC.
func (c *Collection) deleteLocked(matcher *query.Matcher, multi bool) int {
	removed := 0
	for i := 0; i < c.length; i++ {
		r := c.writerRecord(i)
		if r == nil || r.deleted || !matcher.Matches(r.doc) {
			continue
		}
		doc := r.doc
		r = c.ownSlotLocked(i)
		delete(c.byID, r.idKey)
		id := doc.ID()
		for _, e := range c.indexes {
			e.ix.Remove(doc, id)
		}
		c.count--
		c.dataSize -= r.size
		c.tombs++
		removed++
		r.deleted = true
		r.doc = nil
		c.pages[i>>pageShift].tombs++
		if !multi {
			break
		}
	}
	return removed
}

// maybeCompactLocked rewrites the record store when tombstones dominate it.
func (c *Collection) maybeCompactLocked() {
	if c.tombs > c.length/2 && c.tombs > 64 {
		c.compactLocked()
	}
}

// DeleteID removes the document with the given _id.
func (c *Collection) DeleteID(id any) (bool, error) {
	n, err := c.Delete(bson.D(bson.IDKey, id), false)
	return n > 0, err
}
