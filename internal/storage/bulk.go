package storage

import (
	"fmt"

	"docstore/internal/bson"
	"docstore/internal/query"
	"docstore/internal/trace"
)

// WriteOpKind discriminates the operation a WriteOp carries.
type WriteOpKind int

// Write operation kinds.
const (
	InsertOp WriteOpKind = iota
	UpdateOp
	DeleteOp
)

// String names the kind for diagnostics.
func (k WriteOpKind) String() string {
	switch k {
	case InsertOp:
		return "insert"
	case UpdateOp:
		return "update"
	case DeleteOp:
		return "delete"
	default:
		return fmt.Sprintf("writeOp(%d)", int(k))
	}
}

// WriteOp is one operation of a bulk write: an insert, an update
// specification, or a delete. Exactly the fields for its Kind are read.
type WriteOp struct {
	Kind WriteOpKind
	// Doc is the document to insert (InsertOp). As with Insert, a missing
	// _id is assigned in place.
	Doc *bson.Doc
	// Update is the update specification (UpdateOp).
	Update query.UpdateSpec
	// Filter selects the documents to delete (DeleteOp); Multi removes every
	// match instead of the first.
	Filter *bson.Doc
	Multi  bool
}

// InsertWriteOp builds an insert op.
func InsertWriteOp(doc *bson.Doc) WriteOp { return WriteOp{Kind: InsertOp, Doc: doc} }

// UpdateWriteOp builds an update op.
func UpdateWriteOp(spec query.UpdateSpec) WriteOp { return WriteOp{Kind: UpdateOp, Update: spec} }

// DeleteWriteOp builds a delete op.
func DeleteWriteOp(filter *bson.Doc, multi bool) WriteOp {
	return WriteOp{Kind: DeleteOp, Filter: filter, Multi: multi}
}

// InsertOps wraps a document batch as insert ops, the shape InsertMany and
// ReplaceContents feed to the bulk engine.
func InsertOps(docs []*bson.Doc) []WriteOp {
	ops := make([]WriteOp, len(docs))
	for i, d := range docs {
		ops[i] = InsertWriteOp(d)
	}
	return ops
}

// BulkOptions tunes a bulk write.
type BulkOptions struct {
	// Ordered stops the batch at the first failing operation, guaranteeing
	// every op before the failure executed and none after it did. Unordered
	// attempts every operation and collects all failures.
	Ordered bool
	// Journaled is the writeConcern {j: true} escalation: when a journal is
	// attached, the batch is acknowledged only once its log record is
	// fsynced, even under sync policies that would otherwise acknowledge
	// earlier. Without a journal it has no effect.
	Journaled bool
	// WriteConcern is the full acknowledgement contract. The storage engine
	// itself honours only its Journal flag (equivalent to Journaled); the
	// replication layers read W/Majority/WTimeout to gate acknowledgement on
	// member quorum and surface it through mongos scatter and the wire
	// protocol.
	WriteConcern WriteConcern
	// Trace is the parent span of the request this batch belongs to. Every
	// layer the options pass through (wire, mongos, replset, mongod,
	// storage) attaches its own child spans under it. Nil (the default)
	// disables tracing for the batch — span methods are no-ops on nil.
	Trace *trace.Span
}

// journalAck reports whether the batch must be fsynced before
// acknowledgement, folding the legacy Journaled flag and the write concern's
// j escalation together.
func (o BulkOptions) journalAck() bool {
	return o.Journaled || o.WriteConcern.Journal
}

// BulkError attributes one failure to the operation that caused it.
type BulkError struct {
	// Index is the position of the failing op in the batch.
	Index int
	Err   error
}

func (e BulkError) Error() string { return fmt.Sprintf("bulk op %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying error for errors.Is/As.
func (e BulkError) Unwrap() error { return e.Err }

// BulkResult reports what a bulk write did, with per-op error attribution.
type BulkResult struct {
	Inserted int
	Matched  int
	Modified int
	Upserted int
	Deleted  int
	// Attempted is how many ops were executed; ordered batches stop early on
	// failure, so it can be less than the batch size.
	Attempted int
	// InsertedIDs is aligned with the op batch: entry i holds the _id
	// produced by op i when it was a successful insert, nil otherwise. It is
	// nil when the batch contains no inserts.
	InsertedIDs []any
	// UpsertedIDs is aligned the same way for updates that upserted. It is
	// nil when no op could upsert.
	UpsertedIDs []any
	// Errors lists per-op failures in ascending Index order.
	Errors []BulkError
	// DurabilityErr is a batch-level acknowledgement failure: the batch could
	// not be logged (nothing was applied), the log record could not be made
	// durable after apply, or — through the replication layers — the write
	// concern's member quorum was not reached (a *WriteConcernError). It is
	// separate from Errors because it is not attributable to one op.
	DurabilityErr error
	// LastLSN is the journal sequence number of the batch's log record, zero
	// when the collection has no journal attached. The replication layers key
	// their quorum waits on it.
	LastLSN int64
}

// FirstError returns the lowest-index failure, a batch-level durability
// failure when no op failed, or nil when the batch fully succeeded.
func (r *BulkResult) FirstError() error {
	if len(r.Errors) == 0 {
		return r.DurabilityErr
	}
	return r.Errors[0].Err
}

// CompactInsertedIDs returns the inserted ids in batch order with the empty
// slots (non-insert ops, failed or unattempted inserts) dropped — the shape
// the InsertMany wrappers return.
func (r *BulkResult) CompactInsertedIDs() []any {
	ids := make([]any, 0, len(r.InsertedIDs))
	for _, id := range r.InsertedIDs {
		if id != nil {
			ids = append(ids, id)
		}
	}
	return ids
}

// Merge folds the counters, aligned id slices and re-indexed errors of a
// sub-batch result into r. indices maps the sub-batch's op positions to
// positions in the original batch of size total. The query router uses it to
// reassemble per-shard results with original-index attribution.
func (r *BulkResult) Merge(sub BulkResult, indices []int, total int) {
	r.Inserted += sub.Inserted
	r.Matched += sub.Matched
	r.Modified += sub.Modified
	r.Upserted += sub.Upserted
	r.Deleted += sub.Deleted
	r.Attempted += sub.Attempted
	for k, id := range sub.InsertedIDs {
		if id == nil {
			continue
		}
		if r.InsertedIDs == nil {
			r.InsertedIDs = make([]any, total)
		}
		r.InsertedIDs[indices[k]] = id
	}
	for k, id := range sub.UpsertedIDs {
		if id == nil {
			continue
		}
		if r.UpsertedIDs == nil {
			r.UpsertedIDs = make([]any, total)
		}
		r.UpsertedIDs[indices[k]] = id
	}
	for _, e := range sub.Errors {
		r.Errors = append(r.Errors, BulkError{Index: indices[e.Index], Err: e.Err})
	}
	if r.DurabilityErr == nil {
		r.DurabilityErr = sub.DurabilityErr
	}
}

// preparedOp is the per-op state computable without the collection lock.
type preparedOp struct {
	matcher *query.Matcher
	err     error
}

// BulkWrite executes a mixed batch of inserts, updates and deletes under a
// single write-lock acquisition with per-op error collection. Maintenance
// work is amortized across the batch: matchers compile before the lock is
// taken, the record array grows once for all inserts, and tombstone
// compaction is considered once at the end instead of per delete. Ordered
// batches stop at the first failure; unordered batches attempt every op.
func (c *Collection) BulkWrite(ops []WriteOp, opts BulkOptions) BulkResult {
	var res BulkResult
	if len(ops) == 0 {
		return res
	}
	span := opts.Trace.Child("storage.bulkWrite")
	span.SetAttr("collection", c.name)
	span.SetAttr("ops", len(ops))
	var cowBefore int64
	if span != nil {
		cowBefore = c.COWBytesCopied()
	}

	// Phase 1 (no lock): validate shapes and compile matchers.
	prep := make([]preparedOp, len(ops))
	inserts, upserts := 0, false
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case InsertOp:
			inserts++
			if op.Doc == nil {
				prep[i].err = fmt.Errorf("storage: bulk insert op has no document")
			}
		case UpdateOp:
			if op.Update.Upsert {
				upserts = true
			}
			prep[i].matcher, prep[i].err = query.Compile(op.Update.Query)
		case DeleteOp:
			prep[i].matcher, prep[i].err = query.Compile(op.Filter)
		default:
			prep[i].err = fmt.Errorf("storage: unknown bulk op kind %d", int(op.Kind))
		}
	}
	if inserts > 0 {
		res.InsertedIDs = make([]any, len(ops))
	}
	if upserts {
		res.UpsertedIDs = make([]any, len(ops))
	}

	// Phase 2 (one lock acquisition): journal the batch, apply the ops, then
	// publish the resulting version in one atomic swap. The record enters
	// the log before any op applies and under the same lock that orders the
	// applies, so log order equals apply order; readers never observe a
	// half-applied batch, because the version publish is the last thing the
	// batch does before releasing the lock; the durability wait happens
	// after the lock is released so concurrent batches can share one
	// group-commit fsync.
	applySpan := span.Child("storage.apply")
	c.mu.Lock()
	commit, err := c.logLocked(ops, opts.Ordered)
	if err != nil {
		c.mu.Unlock()
		applySpan.Finish()
		span.Finish()
		res.DurabilityErr = err
		return res
	}
	c.reserveLocked(inserts)
	for i := range ops {
		res.Attempted++
		if err := c.applyLocked(&ops[i], prep[i], &res, i); err != nil {
			res.Errors = append(res.Errors, BulkError{Index: i, Err: err})
			if opts.Ordered {
				break
			}
		}
	}
	c.maybeCompactLocked()
	c.publishLocked()
	c.mu.Unlock()
	applySpan.Finish()
	if commit != nil {
		res.LastLSN = commit.LSN()
	}
	var walSpan *trace.Span
	if commit != nil {
		walSpan = span.Child("wal.commitWait")
	}
	res.DurabilityErr = waitCommit(commit, opts.journalAck())
	walSpan.Finish()
	if span != nil {
		span.SetAttr("cowBytesCopied", c.COWBytesCopied()-cowBefore)
		span.SetAttr("lsn", res.LastLSN)
	}
	span.Finish()
	return res
}

// applyLocked executes one bulk op under the held write lock, folding its
// outcome into res at position i.
func (c *Collection) applyLocked(op *WriteOp, prep preparedOp, res *BulkResult, i int) error {
	if prep.err != nil {
		return prep.err
	}
	switch op.Kind {
	case InsertOp:
		id, err := c.insertLocked(op.Doc)
		if err != nil {
			return err
		}
		res.InsertedIDs[i] = id
		res.Inserted++
		return nil
	case UpdateOp:
		ur, err := c.updateLocked(op.Update, prep.matcher)
		res.Matched += ur.Matched
		res.Modified += ur.Modified
		if ur.UpsertedID != nil {
			res.Upserted++
			res.UpsertedIDs[i] = ur.UpsertedID
		}
		return err
	default: // DeleteOp
		res.Deleted += c.deleteLocked(prep.matcher, op.Multi)
		return nil
	}
}
