package storage

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"docstore/internal/bson"
)

// WriteConcern is the acknowledgement contract of a write: how many replica
// set members must have applied it (W, or Majority), whether its log record
// must be fsynced first (Journal), and how long the acknowledgement may wait
// for replication before failing with a WriteConcernError (WTimeout; zero
// waits indefinitely). The zero value is the default concern: primary-only
// acknowledgement (w: 1) under the journal's ambient sync policy.
type WriteConcern struct {
	// W is the number of members (primary included) that must have applied
	// the write before it is acknowledged. Zero means unset, which reads as
	// w: 1. Ignored when Majority is set.
	W int
	// Majority acknowledges after floor(members/2)+1 members have applied.
	Majority bool
	// Journal is the {j: true} escalation: the write's log record is fsynced
	// before acknowledgement.
	Journal bool
	// WTimeout bounds the replication wait; on expiry the write (which has
	// already applied on the primary) fails acknowledgement with a
	// WriteConcernError carrying the replicated count.
	WTimeout time.Duration
}

// IsZero reports whether the concern is entirely unset, i.e. the default
// primary-only acknowledgement with no journal escalation.
func (wc WriteConcern) IsZero() bool {
	return wc.W == 0 && !wc.Majority && !wc.Journal && wc.WTimeout == 0
}

// NeedAck resolves the concern to the member count that must acknowledge,
// given the replica set size.
func (wc WriteConcern) NeedAck(members int) int {
	if wc.Majority {
		return members/2 + 1
	}
	if wc.W > 0 {
		return wc.W
	}
	return 1
}

// WString renders the w value the way clients wrote it ("majority" or a
// number), for error messages and the Doc round trip.
func (wc WriteConcern) WString() string {
	if wc.Majority {
		return "majority"
	}
	if wc.W > 0 {
		return fmt.Sprintf("%d", wc.W)
	}
	return "1"
}

// Doc renders the concern as the wire document {w, j, wtimeout} that
// ParseWriteConcern accepts. Unset fields are omitted; a zero concern renders
// as an empty document.
func (wc WriteConcern) Doc() *bson.Doc {
	d := bson.NewDoc(3)
	if wc.Majority {
		d.Set("w", "majority")
	} else if wc.W > 0 {
		d.Set("w", int64(wc.W))
	}
	if wc.Journal {
		d.Set("j", true)
	}
	if wc.WTimeout > 0 {
		d.Set("wtimeout", wc.WTimeout.Milliseconds())
	}
	return d
}

// ErrInvalidWriteConcern rejects a malformed writeConcern document with the
// field and reason, so a garbage concern ({w: 1.5}, {w: {}}, negative
// wtimeout) fails the request instead of silently defaulting to w: 1.
type ErrInvalidWriteConcern struct {
	Field  string
	Reason string
}

func (e *ErrInvalidWriteConcern) Error() string {
	return fmt.Sprintf("invalid writeConcern: %s %s", e.Field, e.Reason)
}

// Parser bounds: a w beyond any deployable member count or a wtimeout beyond
// ~24 days is a client bug, and unbounded values would overflow the int / the
// millisecond-to-Duration conversion.
const (
	maxW          = 1 << 20
	maxWTimeoutMS = int64(2_000_000_000)
)

// ParseWriteConcern decodes a writeConcern document ({w: 1|N|"majority",
// j: bool, wtimeout: ms}). A nil document yields the zero (default) concern.
// Every field is type-checked: w must be "majority" or an integral number
// >= 1, j must be a boolean, wtimeout must be a non-negative integral number
// of milliseconds, and unknown fields are rejected — never ignored — so a
// misspelled concern cannot weaken a write silently.
func ParseWriteConcern(d *bson.Doc) (WriteConcern, error) {
	var wc WriteConcern
	if d == nil {
		return wc, nil
	}
	for _, f := range d.Fields() {
		switch f.Key {
		case "w":
			switch v := f.Value.(type) {
			case string:
				if v != "majority" {
					return WriteConcern{}, &ErrInvalidWriteConcern{Field: "w", Reason: fmt.Sprintf("must be a member count or \"majority\", got %q", v)}
				}
				wc.Majority = true
			case int64:
				if v < 1 || v > maxW {
					return WriteConcern{}, &ErrInvalidWriteConcern{Field: "w", Reason: fmt.Sprintf("must be between 1 and %d, got %d", maxW, v)}
				}
				wc.W = int(v)
			case float64:
				if v != math.Trunc(v) || math.IsNaN(v) || math.IsInf(v, 0) {
					return WriteConcern{}, &ErrInvalidWriteConcern{Field: "w", Reason: fmt.Sprintf("must be an integer, got %v", v)}
				}
				if v < 1 || v > maxW {
					return WriteConcern{}, &ErrInvalidWriteConcern{Field: "w", Reason: fmt.Sprintf("must be between 1 and %d, got %v", maxW, v)}
				}
				wc.W = int(v)
			default:
				return WriteConcern{}, &ErrInvalidWriteConcern{Field: "w", Reason: fmt.Sprintf("must be a number or \"majority\", got %T", f.Value)}
			}
		case "j":
			b, ok := f.Value.(bool)
			if !ok {
				return WriteConcern{}, &ErrInvalidWriteConcern{Field: "j", Reason: fmt.Sprintf("must be a boolean, got %T", f.Value)}
			}
			wc.Journal = b
		case "wtimeout":
			switch v := f.Value.(type) {
			case int64:
				if v < 0 || v > maxWTimeoutMS {
					return WriteConcern{}, &ErrInvalidWriteConcern{Field: "wtimeout", Reason: fmt.Sprintf("must be between 0 and %d milliseconds, got %d", maxWTimeoutMS, v)}
				}
				wc.WTimeout = time.Duration(v) * time.Millisecond
			case float64:
				if v != math.Trunc(v) || math.IsNaN(v) || math.IsInf(v, 0) {
					return WriteConcern{}, &ErrInvalidWriteConcern{Field: "wtimeout", Reason: fmt.Sprintf("must be an integer, got %v", v)}
				}
				if v < 0 || v > float64(maxWTimeoutMS) {
					return WriteConcern{}, &ErrInvalidWriteConcern{Field: "wtimeout", Reason: fmt.Sprintf("must be between 0 and %d milliseconds, got %v", maxWTimeoutMS, v)}
				}
				wc.WTimeout = time.Duration(v) * time.Millisecond
			default:
				return WriteConcern{}, &ErrInvalidWriteConcern{Field: "wtimeout", Reason: fmt.Sprintf("must be a number of milliseconds, got %T", f.Value)}
			}
		default:
			return WriteConcern{}, &ErrInvalidWriteConcern{Field: f.Key, Reason: "is not a writeConcern field"}
		}
	}
	return wc, nil
}

// ParseWriteConcernString decodes the command-line form of a concern:
// "<N>" or "majority", with an optional "+j" journal suffix ("1",
// "majority", "2+j", "majority+j"). It is the flag-value counterpart of
// ParseWriteConcern for docstored and the shell.
func ParseWriteConcernString(s string) (WriteConcern, error) {
	var wc WriteConcern
	base := s
	if strings.HasSuffix(base, "+j") {
		wc.Journal = true
		base = strings.TrimSuffix(base, "+j")
	}
	if base == "majority" {
		wc.Majority = true
		return wc, nil
	}
	n, err := strconv.Atoi(base)
	if err != nil || n < 1 || n > maxW {
		return WriteConcern{}, fmt.Errorf("invalid write concern %q (want a member count or \"majority\", optionally +j)", s)
	}
	wc.W = n
	return wc, nil
}

// WriteConcernError reports a write that applied on the primary but could not
// be acknowledged at its requested write concern: the replication wait timed
// out, quorum became unreachable (too many members down), or the entry was
// rolled back by an election. Replicated is how many members are known to
// have applied the write, primary included — the caller can tell a write that
// is merely slow to spread from one that cannot spread at all.
type WriteConcernError struct {
	// W is the requested concern's w value ("majority" or a count).
	W string
	// Replicated is the number of members that had applied the write when the
	// acknowledgement failed.
	Replicated int
	// Reason distinguishes the failure: "wtimeout", "quorum unreachable",
	// "rolled back", or "replica set closed".
	Reason string
}

func (e *WriteConcernError) Error() string {
	return fmt.Sprintf("write concern {w: %s} not satisfied (%s): replicated to %d member(s)", e.W, e.Reason, e.Replicated)
}
