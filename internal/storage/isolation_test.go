package storage

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"docstore/internal/bson"
	"docstore/internal/query"
)

// isolationSeed builds a collection of n docs {_id, g, v, tag} with an index
// on g.
func isolationSeed(t *testing.T, n int) *Collection {
	t.Helper()
	c := NewCollection("iso")
	ops := make([]WriteOp, n)
	for i := 0; i < n; i++ {
		ops[i] = InsertWriteOp(bson.D(bson.IDKey, i, "g", i%5, "v", i, "tag", "orig"))
	}
	if res := c.BulkWrite(ops, BulkOptions{Ordered: true}); res.FirstError() != nil {
		t.Fatal(res.FirstError())
	}
	if _, err := c.EnsureIndexDoc(bson.D("g", 1), false); err != nil {
		t.Fatal(err)
	}
	return c
}

// cloneAll deep-copies a result set so later comparisons are immune to any
// aliasing with stored state.
func cloneAll(docs []*bson.Doc) []*bson.Doc {
	out := make([]*bson.Doc, len(docs))
	for i, d := range docs {
		out[i] = d.Clone()
	}
	return out
}

// assertDrainedEquals drains cur and requires the result to match want
// exactly — same documents, same order, same contents.
func assertDrainedEquals(t *testing.T, cur *Cursor, want []*bson.Doc, label string) {
	t.Helper()
	got, err := cur.All()
	if err != nil {
		t.Fatalf("%s: drain: %v", label, err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: drained %d docs, want %d", label, len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("%s: doc %d differs:\n got  %s\n want %s", label, i, got[i], want[i])
		}
	}
}

// TestCursorIsolationInterleavedWrites is the equivalence test of the MVCC
// contract: a cursor opened before a storm of inserts, updates, deletes and
// a compaction drains exactly the at-open document set with the at-open
// contents.
func TestCursorIsolationInterleavedWrites(t *testing.T) {
	const n = 300
	c := isolationSeed(t, n)

	want, err := c.Find(nil, FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want = cloneAll(want)

	cur, err := c.FindCursor(nil, FindOptions{BatchSize: 7})
	if err != nil {
		t.Fatal(err)
	}
	// The cursor exposes its pinned snapshot, and the plan reports the same
	// version.
	if cur.Snapshot() == nil || cur.Snapshot().Version() != cur.Plan().SnapshotVersion {
		t.Fatalf("cursor snapshot %v does not match plan %s", cur.Snapshot(), cur.Plan())
	}
	// Consume one batch, then interleave every kind of write between the
	// remaining batches.
	got := append([]*bson.Doc(nil), cloneAll(cur.NextBatch())...)

	// Updates must not change the contents the open cursor observes.
	if _, err := c.UpdateMany(bson.D("g", 2), bson.D("$set", bson.D("tag", "rewritten"), "$inc", bson.D("v", 1000))); err != nil {
		t.Fatal(err)
	}
	// Inserts after open are invisible.
	for i := n; i < n+50; i++ {
		if _, err := c.Insert(bson.D(bson.IDKey, i, "g", i%5, "v", i, "tag", "late")); err != nil {
			t.Fatal(err)
		}
	}
	got = append(got, cloneAll(cur.NextBatch())...)
	// Deletes after open are invisible too — including enough of them to
	// trigger a tombstone compaction that rewrites the record array.
	if _, err := c.Delete(bson.D("g", bson.D("$in", []any{0, 1, 3})), true); err != nil {
		t.Fatal(err)
	}
	// An index build mid-drain must not perturb the scan either.
	if _, err := c.EnsureIndexDoc(bson.D("tag", 1), false); err != nil {
		t.Fatal(err)
	}
	for {
		b := cur.NextBatch()
		if len(b) == 0 {
			break
		}
		got = append(got, cloneAll(b)...)
	}

	if len(got) != len(want) {
		t.Fatalf("cursor drained %d docs, want the %d at-open docs", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("doc %d differs from at-open state:\n got  %s\n want %s", i, got[i], want[i])
		}
	}

	// A fresh scan sees the post-storm state: 300 - 180 deleted + 50 late.
	after, err := c.Find(nil, FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != c.Count() {
		t.Fatalf("fresh scan %d docs, Count %d", len(after), c.Count())
	}
	for _, d := range after {
		g, _ := d.Get("g")
		if bson.Compare(g, 2) == 0 {
			if tag, _ := d.Get("tag"); tag != "rewritten" && tag != "late" {
				t.Fatalf("post-storm doc missed the update: %s", d)
			}
		}
	}
}

// TestIndexScanCursorIsolation pins the same contract for index-backed
// cursors: the position list and the pinned records come from one version,
// so documents updated out of (or deleted from) the matching set after open
// still drain with their at-open contents.
func TestIndexScanCursorIsolation(t *testing.T) {
	c := isolationSeed(t, 200)

	want, err := c.Find(bson.D("g", 3), FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want = cloneAll(want)

	cur, err := c.FindCursor(bson.D("g", 3), FindOptions{BatchSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	if cur.Plan().IndexUsed != "g_1" {
		t.Fatalf("expected an index scan, plan = %s", cur.Plan())
	}

	// Move half the matching docs out of the group, delete others, add new
	// members; none of it may leak into the open cursor.
	if _, err := c.Update(query.UpdateSpec{
		Query:  bson.D("g", 3, "v", bson.D("$lt", 100)),
		Update: bson.D("$set", bson.D("g", 99)),
		Multi:  true,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete(bson.D("g", 3, "v", bson.D("$gte", 150)), true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := c.Insert(bson.D(bson.IDKey, 1000+i, "g", 3, "v", 1000+i, "tag", "late")); err != nil {
			t.Fatal(err)
		}
	}

	assertDrainedEquals(t, cur, want, "index scan")
}

// TestSnapshotHandleIsolation exercises the first-class Snapshot API: a
// pinned snapshot's Count/Docs/Scan/LastLSN stay frozen while the
// collection moves on, and successive snapshots observe monotonically
// increasing versions.
func TestSnapshotHandleIsolation(t *testing.T) {
	c := isolationSeed(t, 50)
	snap := c.Snapshot()
	v1 := snap.Version()
	if snap.Collection() != "iso" {
		t.Fatalf("snapshot collection %q", snap.Collection())
	}
	if snap.Count() != 50 {
		t.Fatalf("snapshot count %d", snap.Count())
	}
	size1 := snap.DataSize()
	if size1 != c.DataSize() || size1 <= 0 {
		t.Fatalf("snapshot data size %d, collection %d", size1, c.DataSize())
	}
	wantDocs := cloneAll(snap.Docs())

	if _, err := c.Delete(nil, true); err != nil {
		t.Fatal(err)
	}
	if c.Count() != 0 {
		t.Fatalf("live count %d after delete-all", c.Count())
	}
	if snap.Count() != 50 || len(snap.Docs()) != 50 || snap.DataSize() != size1 {
		t.Fatalf("pinned snapshot drifted: count=%d docs=%d size=%d", snap.Count(), len(snap.Docs()), snap.DataSize())
	}
	for i, d := range snap.Docs() {
		if !d.Equal(wantDocs[i]) {
			t.Fatalf("snapshot doc %d changed: %s", i, d)
		}
	}
	snap2 := c.Snapshot()
	if snap2.Version() <= v1 {
		t.Fatalf("version did not advance: %d then %d", v1, snap2.Version())
	}
	if snap2.Count() != 0 {
		t.Fatalf("fresh snapshot count %d", snap2.Count())
	}
	if got := len(snap.Indexes()); got != 1 {
		t.Fatalf("pinned snapshot has %d index defs, want 1", got)
	}
}

// TestCursorIsolationAcrossDrop checks the strongest case: the whole
// collection is dropped mid-drain and the cursor still serves its pinned
// version to exhaustion.
func TestCursorIsolationAcrossDrop(t *testing.T) {
	c := isolationSeed(t, 120)
	want, err := c.Find(nil, FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want = cloneAll(want)
	cur, err := c.FindCursor(nil, FindOptions{BatchSize: 11})
	if err != nil {
		t.Fatal(err)
	}
	first := cloneAll(cur.NextBatch())
	c.Drop()
	rest, err := cur.All()
	if err != nil {
		t.Fatal(err)
	}
	got := append(first, cloneAll(rest)...)
	if len(got) != len(want) {
		t.Fatalf("drained %d docs across Drop, want %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("doc %d differs after Drop: %s", i, got[i])
		}
	}
	if c.Count() != 0 {
		t.Fatalf("dropped collection count = %d", c.Count())
	}
}

// TestPlanSnapshotFields checks explain surfaces the MVCC fields: every
// collection-backed scan reports the pinned version and snapshot isolation,
// and versions advance with commits.
func TestPlanSnapshotFields(t *testing.T) {
	c := isolationSeed(t, 10)
	_, plan1, err := c.FindWithPlan(nil, FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plan1.Isolation != IsolationSnapshot {
		t.Fatalf("isolation = %q, want %q", plan1.Isolation, IsolationSnapshot)
	}
	if plan1.SnapshotVersion <= 0 {
		t.Fatalf("snapshot version = %d", plan1.SnapshotVersion)
	}
	if s := plan1.String(); !strings.Contains(s, fmt.Sprintf("snapshot=%d", plan1.SnapshotVersion)) {
		t.Fatalf("plan string %q misses snapshot version", s)
	}
	if _, err := c.Insert(bson.D(bson.IDKey, 1000)); err != nil {
		t.Fatal(err)
	}
	_, plan2, err := c.FindWithPlan(nil, FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plan2.SnapshotVersion <= plan1.SnapshotVersion {
		t.Fatalf("version did not advance: %d then %d", plan1.SnapshotVersion, plan2.SnapshotVersion)
	}
	// Sorted queries materialize but keep the scan's snapshot fields.
	_, plan3, err := c.FindWithPlan(nil, FindOptions{Sort: query.MustParseSort(bson.D("v", 1))})
	if err != nil {
		t.Fatal(err)
	}
	if plan3.SnapshotVersion != plan2.SnapshotVersion || plan3.Isolation != IsolationSnapshot {
		t.Fatalf("sorted plan lost snapshot fields: %+v", plan3)
	}
}

// TestHintUnknownIndex pins the storage-layer contract: a hint naming no
// index fails with ErrUnknownIndex instead of silently scanning, on both
// the slice and cursor paths, with or without a filter; a hint naming a
// real index that cannot narrow the filter still degrades to a collection
// scan, as before.
func TestHintUnknownIndex(t *testing.T) {
	c := isolationSeed(t, 20)

	_, err := c.Find(bson.D("g", 1), FindOptions{Hint: "nope_1"})
	var unknown *ErrUnknownIndex
	if !errors.As(err, &unknown) {
		t.Fatalf("Find with bad hint: %v", err)
	}
	if unknown.Collection != "iso" || unknown.Hint != "nope_1" {
		t.Fatalf("error fields: %+v", unknown)
	}
	if _, err := c.FindCursor(nil, FindOptions{Hint: "nope_1"}); !errors.As(err, &unknown) {
		t.Fatalf("FindCursor with bad hint and nil filter: %v", err)
	}
	if _, _, err := c.FindWithPlan(bson.D("v", 3), FindOptions{Hint: "missing"}); !errors.As(err, &unknown) {
		t.Fatalf("FindWithPlan with bad hint: %v", err)
	}

	// A real hint is honoured.
	docs, plan, err := c.FindWithPlan(bson.D("g", 1), FindOptions{Hint: "g_1"})
	if err != nil || plan.IndexUsed != "g_1" {
		t.Fatalf("good hint: %v, plan %s", err, plan)
	}
	if len(docs) != 4 {
		t.Fatalf("good hint returned %d docs", len(docs))
	}
	// A real hint that cannot narrow the filter degrades to a collection
	// scan rather than failing.
	_, plan, err = c.FindWithPlan(bson.D("v", 3), FindOptions{Hint: "g_1"})
	if err != nil || plan.IndexUsed != "" {
		t.Fatalf("unusable hint: %v, plan %s", err, plan)
	}
}
