// Package storage implements the collection storage engine: document
// storage with a primary _id index, secondary indexes, a query planner that
// chooses between collection scans and index scans, update/delete execution,
// and snapshot persistence.
package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"docstore/internal/bson"
	"docstore/internal/index"
)

// ErrDocumentTooLarge is returned when a document exceeds the 16 MB limit.
type ErrDocumentTooLarge struct {
	Size int
}

func (e *ErrDocumentTooLarge) Error() string {
	return fmt.Sprintf("storage: document of %d bytes exceeds the %d byte limit", e.Size, bson.MaxDocumentSize)
}

// ErrDuplicateID is returned when inserting a document whose _id already
// exists in the collection.
type ErrDuplicateID struct {
	ID any
}

func (e *ErrDuplicateID) Error() string {
	return fmt.Sprintf("storage: duplicate _id %v", e.ID)
}

// record is one stored document slot. Deleted slots remain as tombstones
// until the collection compacts, which keeps scans in insertion order.
type record struct {
	idKey   string
	doc     *bson.Doc
	size    int
	deleted bool
}

// Collection is a single document collection. All methods are safe for
// concurrent use.
type Collection struct {
	name string

	mu       sync.RWMutex
	records  []record
	byID     map[string]int // idKey -> position in records
	indexes  map[string]*index.Index
	count    int
	dataSize int
	tombs    int

	// journal, when attached, receives every mutation before it is applied;
	// lastLSN is the sequence number of the newest journaled mutation (see
	// journal.go).
	journal Journal
	lastLSN int64

	// stats (atomic: bumped under read locks)
	scans        atomic.Int64 // collection scans performed
	indexScans   atomic.Int64 // index scans performed
	docsExamined atomic.Int64 // documents examined by read cursors
}

// NewCollection creates an empty collection.
func NewCollection(name string) *Collection {
	return &Collection{
		name:    name,
		byID:    make(map[string]int),
		indexes: make(map[string]*index.Index),
	}
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// idKey derives the map key for an _id value.
func idKey(id any) string {
	d := bson.NewDoc(1)
	d.Set("k", id)
	return string(bson.Marshal(d))
}

// Insert adds a document to the collection. When the document has no _id an
// ObjectID is assigned (mirroring the behaviour described in §2.1). The
// stored document is the one passed in; callers must not mutate it afterwards
// except through Update.
func (c *Collection) Insert(doc *bson.Doc) (any, error) {
	c.mu.Lock()
	commit, err := c.logLocked([]WriteOp{InsertWriteOp(doc)}, true)
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	id, err := c.insertLocked(doc)
	c.mu.Unlock()
	// The commit is resolved (and its post-commit hook notified) even when
	// the apply failed: the record is in the log either way, and the
	// change-stream frontier needs every logged LSN accounted for.
	werr := waitCommit(commit, false)
	if err != nil {
		return id, err
	}
	return id, werr
}

// ensureID assigns a fresh ObjectID to a document without one, rebuilding
// the document so _id leads it, as the real engine stores it. It returns the
// document's id.
func ensureID(doc *bson.Doc) any {
	id, ok := doc.Get(bson.IDKey)
	if !ok {
		id = bson.NewObjectID()
		withID := bson.NewDoc(doc.Len() + 1)
		withID.Set(bson.IDKey, id)
		for _, f := range doc.Fields() {
			withID.Set(f.Key, f.Value)
		}
		*doc = *withID
	}
	return id
}

func (c *Collection) insertLocked(doc *bson.Doc) (any, error) {
	id := ensureID(doc)
	size := bson.EncodedSize(doc)
	if size > bson.MaxDocumentSize {
		return nil, &ErrDocumentTooLarge{Size: size}
	}
	key := idKey(id)
	if _, exists := c.byID[key]; exists {
		return nil, &ErrDuplicateID{ID: id}
	}
	for _, ix := range c.indexes {
		if err := ix.Insert(doc, id); err != nil {
			// Roll back entries added to earlier indexes.
			for _, other := range c.indexes {
				if other == ix {
					break
				}
				other.Remove(doc, id)
			}
			return nil, err
		}
	}
	c.records = append(c.records, record{idKey: key, doc: doc, size: size})
	c.byID[key] = len(c.records) - 1
	c.count++
	c.dataSize += size
	return id, nil
}

// InsertMany inserts a batch of documents, stopping at the first error.
// It returns the ids of the documents inserted so far, in document order. It
// is a thin wrapper over the bulk-write engine: the whole batch executes
// under one lock acquisition.
func (c *Collection) InsertMany(docs []*bson.Doc) ([]any, error) {
	res := c.BulkWrite(InsertOps(docs), BulkOptions{Ordered: true})
	return res.CompactInsertedIDs(), res.FirstError()
}

// reserveLocked grows the record slice capacity ahead of a batch of n
// inserts so the batch appends without repeated reallocation (each
// reallocation also freezes open cursor snapshots earlier than necessary).
// Growth is at least geometric so repeated batches keep the amortized O(1)
// append cost instead of copying the whole array per batch.
func (c *Collection) reserveLocked(n int) {
	if n <= 0 || cap(c.records)-len(c.records) >= n {
		return
	}
	newCap := len(c.records) + n
	if doubled := 2 * cap(c.records); doubled > newCap {
		newCap = doubled
	}
	grown := make([]record, len(c.records), newCap)
	copy(grown, c.records)
	c.records = grown
}

// FindID returns the document with the given _id, or nil when absent.
func (c *Collection) FindID(id any) *bson.Doc {
	c.mu.RLock()
	defer c.mu.RUnlock()
	pos, ok := c.byID[idKey(bson.Normalize(id))]
	if !ok || c.records[pos].deleted {
		return nil
	}
	return c.records[pos].doc
}

// Count returns the number of live documents.
func (c *Collection) Count() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.count
}

// DataSize returns the total encoded size of live documents in bytes.
func (c *Collection) DataSize() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.dataSize
}

// Scan invokes fn for every live document in insertion order until fn
// returns false.
func (c *Collection) Scan(fn func(*bson.Doc) bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.scans.Add(1)
	for i := range c.records {
		if c.records[i].deleted {
			continue
		}
		if !fn(c.records[i].doc) {
			return
		}
	}
}

// Drop removes every document and secondary index. With a journal attached
// the wipe is logged first so recovery reproduces it; a journal failure here
// is best-effort (Drop predates durability and has no error return), but the
// only caller that can observe one, ReplaceContents, surfaces the wait error
// of the insert batch that follows.
func (c *Collection) Drop() {
	c.mu.Lock()
	commit, _ := c.logClearLocked()
	c.records = nil
	c.byID = make(map[string]int)
	c.indexes = make(map[string]*index.Index)
	c.count = 0
	c.dataSize = 0
	c.tombs = 0
	c.mu.Unlock()
	_ = waitCommit(commit, false)
}

// compactLocked rewrites the record slice without tombstones.
func (c *Collection) compactLocked() {
	if c.tombs == 0 {
		return
	}
	kept := make([]record, 0, c.count)
	byID := make(map[string]int, c.count)
	for _, r := range c.records {
		if r.deleted {
			continue
		}
		byID[r.idKey] = len(kept)
		kept = append(kept, r)
	}
	c.records = kept
	c.byID = byID
	c.tombs = 0
}

// Stats summarizes the collection, mirroring collStats.
type Stats struct {
	Name            string
	Count           int
	DataSizeBytes   int
	AvgObjSizeBytes int
	IndexCount      int
	IndexSizeBytes  int
	CollScans       int64
	IndexScans      int64
	// DocsExamined counts the documents read-path cursors looked at: a
	// deterministic work measure independent of wall-clock noise.
	DocsExamined int64
}

// Stats returns current collection statistics.
func (c *Collection) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s := Stats{
		Name:          c.name,
		Count:         c.count,
		DataSizeBytes: c.dataSize,
		IndexCount:    len(c.indexes),
		CollScans:     c.scans.Load(),
		IndexScans:    c.indexScans.Load(),
		DocsExamined:  c.docsExamined.Load(),
	}
	if c.count > 0 {
		s.AvgObjSizeBytes = c.dataSize / c.count
	}
	for _, ix := range c.indexes {
		s.IndexSizeBytes += ix.SizeBytes()
	}
	return s
}

// WorkingSetBytes approximates the working set contribution of the
// collection: data plus index sizes (§2.1.3.2 of the thesis).
func (c *Collection) WorkingSetBytes() int {
	st := c.Stats()
	return st.DataSizeBytes + st.IndexSizeBytes
}
