// Package storage implements the collection storage engine: document
// storage with a primary _id index, secondary indexes, a query planner that
// chooses between collection scans and index scans, update/delete execution,
// multi-version concurrency control with paged copy-on-write snapshots, and
// snapshot persistence.
package storage

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"docstore/internal/bson"
	"docstore/internal/index"
)

// ErrDocumentTooLarge is returned when a document exceeds the 16 MB limit.
type ErrDocumentTooLarge struct {
	Size int
}

func (e *ErrDocumentTooLarge) Error() string {
	return fmt.Sprintf("storage: document of %d bytes exceeds the %d byte limit", e.Size, bson.MaxDocumentSize)
}

// ErrDuplicateID is returned when inserting a document whose _id already
// exists in the collection.
type ErrDuplicateID struct {
	ID any
}

func (e *ErrDuplicateID) Error() string {
	return fmt.Sprintf("storage: duplicate _id %v", e.ID)
}

// record is one stored document slot. Deleted slots remain as tombstones
// until the collection compacts, which keeps scans in insertion order and —
// more importantly under MVCC — keeps record positions stable, so the _id
// map and index position lists survive deletes without rebuilds. A
// tombstone drops its document reference: pinned versions keep the document
// alive through their own pages, and once they release, the memory goes.
type record struct {
	idKey   string
	doc     *bson.Doc
	size    int
	deleted bool
}

// version is one immutable published state of a collection: the unit of
// multi-version concurrency control. A writer builds the next state under
// the collection's write mutex and publishes it with one atomic pointer
// swap; readers pin a version with one atomic load and then scan it without
// any lock. Once published, a version never changes:
//
//   - every record at positions [0, length) is frozen. Writers that must
//     modify an existing slot (update, delete) copy the page holding it
//     first (Collection.ownSlotLocked) — O(touched pages), not
//     O(collection); writers that only append may share pages and spine,
//     because appends write exclusively at positions >= the published
//     length, which no reader of this version ever accesses.
//   - every *bson.Doc reachable from the pages is frozen. Updates install a
//     modified clone instead of mutating the stored document, so a pinned
//     version observes point-in-time document contents, not just a
//     point-in-time membership set.
//   - counters, the journal watermark and the index definitions are plain
//     fields captured at publish time, so Count/Stats/checkpoint manifests
//     are mutually consistent with the records they describe.
type version struct {
	// seq is the monotonically increasing version number, starting at 1 for
	// a fresh collection; Plan.SnapshotVersion and Snapshot.Version surface
	// it through explain and the profiler.
	seq    int64
	pages  []*page
	length int // record positions in use: [0, length)
	// pins counts the snapshots currently pinning this version; the engine
	// GC recycles retired pages only below the oldest pinned version.
	pins atomic.Int64
	// publishedAt feeds the oldest-pin-age gauge: how long a stuck cursor
	// has been retaining this version.
	publishedAt time.Time
	count       int
	dataSize    int
	tombs       int
	// idMap is the version-owned _id index: idKey -> position, frozen at its
	// last rebuild. Positions appended after the rebuild — [idMapLen,
	// length) — are covered by a bounded tail scan instead, so point lookups
	// never touch the writer mutex (see Snapshot.FindID).
	idMap    map[string]int
	idMapLen int
	// lastLSN is the journal watermark as of this version: the LSN of the
	// newest mutation folded into the records. Checkpoints pair it with the
	// snapshot data so recovery replays exactly the records the snapshot
	// does not already contain.
	lastLSN int64
	// indexMeta holds the secondary index definitions live at this version,
	// sorted by index name (checkpoints rebuild trees by backfilling).
	indexMeta []IndexMeta
	// indexes is the version-owned immutable index set: one frozen handle per
	// secondary index, sharing tree nodes with the writer's trees via
	// path-copying (see index.BTree). Planning and index scans read these
	// with no locking, exactly like the record pages.
	indexes indexSet
	// indexSize is the summed in-memory size estimate of the secondary
	// indexes at publish time, for lock-free Stats.
	indexSize int
}

// indexSet is a name-sorted set of secondary indexes. Both the writer's live
// set and every version's frozen set use it instead of a map: publishing N
// indexes costs one small slice allocation per version (a map costs an order
// of magnitude more, paid on every single-document publish), and planning —
// which touches a handful of entries — scans it linearly.
type indexSet []indexEntry

type indexEntry struct {
	name string
	ix   *index.Index
}

// byName returns the named index, or nil.
func (s indexSet) byName(name string) *index.Index {
	for _, e := range s {
		if e.name == name {
			return e.ix
		}
	}
	return nil
}

// Collection is a single document collection. All methods are safe for
// concurrent use: writers serialize on an internal mutex, readers pin
// immutable versions and never block (see doc.go, "Concurrency & isolation"
// and "MVCC memory management").
type Collection struct {
	name string

	// mu serializes every mutation (and the journal append that precedes
	// it, so log order equals apply order). Readers take it only to consult
	// the shared index trees while planning an index scan; plain collection
	// scans and _id point lookups never acquire it.
	mu sync.Mutex
	// pages/length are the writer's record store: a spine of page pointers
	// over fixed-size record pages (see page.go).
	pages    []*page
	length   int
	byID     map[string]int // idKey -> position; exact, writer-owned
	indexes  indexSet
	count    int
	dataSize int
	tombs    int
	// writeSeq identifies the current write batch: pages whose ownerSeq
	// equals it are private to the batch and mutable in place. publishLocked
	// advances it, disowning every page at once.
	writeSeq int64
	// pubLen is the published version's length: slots at or past it are
	// batch-local and mutable without copying.
	pubLen int
	// spineShared marks the spine's backing array as referenced by the
	// published version: the next in-place spine-slot rewrite copies first.
	spineShared bool
	// idMapStale forces the next publish to rebuild the version id map from
	// byID (set by compaction and drops, which move positions).
	idMapStale bool
	// indexesChanged makes the next publish rebuild the version's index
	// metadata; steady-state writes reuse the previous slice.
	indexesChanged bool

	// current is the published version readers pin. It is never nil.
	current atomic.Pointer[version]

	// pinGate counts readers between loading current and registering their
	// pin; the GC recycles pages only while it is zero, closing the race
	// between pinning and retirement (see Snapshot).
	pinGate atomic.Int64

	// Engine GC state (all guarded by mu): tracked live versions, retired
	// pages/spines awaiting recycling, free lists, the incremental
	// tombstone-GC cursor, and the floor below which recycling is forbidden
	// because a pinned version was dropped from tracking.
	live            []*version
	retired         []retiredPage
	retiredNodes    []retiredNodeSet
	freePages       []*page
	freeSpines      [][]*page
	gcCursor        int
	untrackedPinSeq int64

	// journal, when attached, receives every mutation before it is applied;
	// lastLSN is the sequence number of the newest journaled mutation (see
	// journal.go).
	journal Journal
	lastLSN int64

	// stats (atomic: bumped lock-free by readers and by the writer without
	// extending its critical section)
	scans          atomic.Int64 // collection scans performed
	indexScans     atomic.Int64 // index scans performed
	docsExamined   atomic.Int64 // documents examined by read cursors
	cowBytesCopied atomic.Int64 // record bytes duplicated by COW page copies
	cowBytesShared atomic.Int64 // record bytes shared instead of copied
	reclaimedBytes atomic.Int64 // bytes whose last pinned reference was recycled
	pagesCopied    atomic.Int64
	pagesRecycled  atomic.Int64
	// Persistent index-tree gauges, the node analogues of the page COW set:
	// path copies split each mutating batch's tree bytes into copied vs
	// shared, and retired nodes count as reclaimed once no pin covers them.
	treeNodesCopied    atomic.Int64
	treeBytesCopied    atomic.Int64
	treeBytesShared    atomic.Int64
	treeNodesReclaimed atomic.Int64
	treeBytesReclaimed atomic.Int64
}

// retiredNodeSet accounts for index-tree nodes a write batch superseded
// (path copies) or a drop retired wholesale. seq is the newest published
// version that can still reach the old nodes; once no pinned snapshot's
// version is <= seq, the nodes are unreachable from any reader and their
// bytes count as reclaimed (Go's GC frees the memory; the entry is the
// observability record). Entries coalesce per seq, so the list grows with
// distinct retaining versions, not with individual node copies.
type retiredNodeSet struct {
	seq   int64
	nodes int64
	bytes int64
}

// NewCollection creates an empty collection.
func NewCollection(name string) *Collection {
	c := &Collection{
		name:            name,
		byID:            make(map[string]int),
		writeSeq:        1,
		untrackedPinSeq: math.MaxInt64,
	}
	v := &version{seq: 1, publishedAt: time.Now()}
	c.current.Store(v)
	c.live = append(c.live, v)
	return c
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// publishLocked makes the writer's current state the published version. It
// must be called before the write mutex is released by every path that
// mutated collection state or advanced the journal watermark — including
// apply-error paths, whose logged LSN must still reach checkpoints. The
// atomic store has release semantics, so a reader that pins the new version
// observes every record and document written before this call.
func (c *Collection) publishLocked() {
	prev := c.current.Load()
	v := &version{
		seq:         prev.seq + 1,
		pages:       c.pages,
		length:      c.length,
		publishedAt: time.Now(),
		count:       c.count,
		dataSize:    c.dataSize,
		tombs:       c.tombs,
		lastLSN:     c.lastLSN,
		indexMeta:   prev.indexMeta,
	}
	if c.idMapStale || c.length-prev.idMapLen > idMapRebuildLimit(prev.idMapLen) {
		c.idMapStale = false
		m := make(map[string]int, len(c.byID))
		for k, pos := range c.byID {
			m[k] = pos
		}
		v.idMap = m
		v.idMapLen = c.length
	} else {
		v.idMap = prev.idMap
		v.idMapLen = prev.idMapLen
	}
	if c.indexesChanged {
		c.indexesChanged = false
		if len(c.indexes) == 0 {
			v.indexMeta = nil
		} else {
			v.indexMeta = make([]IndexMeta, 0, len(c.indexes))
			for _, e := range c.indexes {
				v.indexMeta = append(v.indexMeta, IndexMeta{Spec: e.ix.Spec().Doc(), Unique: e.ix.Unique()})
			}
		}
	}
	if len(c.indexes) > 0 {
		// Freeze the version-owned index set: O(1) handles sharing the
		// current tree nodes. Re-stamping below opens a new COW era, so the
		// next batch path-copies any node it touches instead of mutating
		// what these frozen handles reach.
		v.indexes = make(indexSet, len(c.indexes))
		for i, e := range c.indexes {
			v.indexSize += e.ix.SizeBytes()
			v.indexes[i] = indexEntry{name: e.name, ix: e.ix.Freeze()}
		}
	}
	c.current.Store(v)
	c.spineShared = true
	c.pubLen = c.length
	c.writeSeq++
	for _, e := range c.indexes {
		e.ix.SetStamp(c.writeSeq)
	}
	c.live = append(c.live, v)
	c.gcLocked()
}

// noteTreeCopyLocked is the index-tree path-copy observer (index.BTree's
// copy hook), called under the write mutex once per copy event — a node
// shell or an item array a mutating batch duplicates (the tree aliases item
// arrays on pure-descent path copies and duplicates them lazily, so interior
// nodes usually cost one child-pointer array, not their full item slots).
// The superseded memory stays reachable from frozen index handles
// published at or before the current version, so it retires at that seq —
// exactly the page-retirement rule — and the copied/shared gauges mirror
// ownSlotLocked's: the copied bytes are this node, the shared bytes are the
// rest of the tree the batch did not touch.
func (c *Collection) noteTreeCopyLocked(ix *index.Index, bytes int64) {
	c.treeNodesCopied.Add(1)
	c.treeBytesCopied.Add(bytes)
	if shared := int64(ix.SizeBytes()) - bytes; shared > 0 {
		c.treeBytesShared.Add(shared)
	}
	c.retireNodesLocked(1, bytes)
}

// retireNodesLocked records index-tree nodes that left the writer's trees
// but remain reachable from published frozen handles; gcLocked counts them
// reclaimed once no pin covers their retaining version.
func (c *Collection) retireNodesLocked(nodes, bytes int64) {
	seq := c.current.Load().seq
	if n := len(c.retiredNodes); n > 0 && c.retiredNodes[n-1].seq == seq {
		c.retiredNodes[n-1].nodes += nodes
		c.retiredNodes[n-1].bytes += bytes
		return
	}
	c.retiredNodes = append(c.retiredNodes, retiredNodeSet{seq: seq, nodes: nodes, bytes: bytes})
	if len(c.retiredNodes) > maxRetiredNodeSets {
		// Drop the oldest entries to the garbage collector: always safe,
		// merely uncounted, exactly like capRetiredLocked.
		drop := len(c.retiredNodes) - maxRetiredNodeSets
		c.retiredNodes = append(c.retiredNodes[:0], c.retiredNodes[drop:]...)
	}
}

// adoptIndexLocked wires a newly created index into the collection's COW
// protocol: the tree joins the current write batch's era (its backfill may
// mutate in place — no frozen handle references it yet) and reports its
// future path copies to the gauges.
func (c *Collection) adoptIndexLocked(ix *index.Index) {
	ix.SetStamp(c.writeSeq)
	ix.SetCopyHook(func(bytes int64) { c.noteTreeCopyLocked(ix, bytes) })
}

// retireTreeLocked retires an entire index tree (DropIndex, Drop): every
// node leaves the writer's state at once but stays pinned by published
// versions that still hold the frozen handle.
func (c *Collection) retireTreeLocked(ix *index.Index) {
	c.retireNodesLocked(int64(ix.Nodes()), ix.TreeBytes())
}

// idKey derives the map key for an _id value.
func idKey(id any) string {
	d := bson.NewDoc(1)
	d.Set("k", id)
	return string(bson.Marshal(d))
}

// Insert adds a document to the collection. When the document has no _id an
// ObjectID is assigned (mirroring the behaviour described in §2.1). The
// stored document is the one passed in; callers must not mutate it afterwards
// (updates never mutate it either — they install clones).
func (c *Collection) Insert(doc *bson.Doc) (any, error) {
	c.mu.Lock()
	commit, err := c.logLocked([]WriteOp{InsertWriteOp(doc)}, true)
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	id, err := c.insertLocked(doc)
	c.publishLocked()
	c.mu.Unlock()
	// The commit is resolved (and its post-commit hook notified) even when
	// the apply failed: the record is in the log either way, and the
	// change-stream frontier needs every logged LSN accounted for.
	werr := waitCommit(commit, false)
	if err != nil {
		return id, err
	}
	return id, werr
}

// ensureID assigns a fresh ObjectID to a document without one, rebuilding
// the document so _id leads it, as the real engine stores it. It returns the
// document's id.
func ensureID(doc *bson.Doc) any {
	id, ok := doc.Get(bson.IDKey)
	if !ok {
		id = bson.NewObjectID()
		withID := bson.NewDoc(doc.Len() + 1)
		withID.Set(bson.IDKey, id)
		for _, f := range doc.Fields() {
			withID.Set(f.Key, f.Value)
		}
		*doc = *withID
	}
	return id
}

func (c *Collection) insertLocked(doc *bson.Doc) (any, error) {
	id := ensureID(doc)
	size := bson.EncodedSize(doc)
	if size > bson.MaxDocumentSize {
		return nil, &ErrDocumentTooLarge{Size: size}
	}
	key := idKey(id)
	if _, exists := c.byID[key]; exists {
		return nil, &ErrDuplicateID{ID: id}
	}
	for _, e := range c.indexes {
		if err := e.ix.Insert(doc, id); err != nil {
			// Roll back entries added to earlier indexes.
			for _, other := range c.indexes {
				if other.ix == e.ix {
					break
				}
				other.ix.Remove(doc, id)
			}
			return nil, err
		}
	}
	// Appending is safe even into pages shared with the published version:
	// the write lands at a position no pinned reader accesses (see the
	// version invariants).
	pos := c.length
	*c.appendSlotLocked() = record{idKey: key, doc: doc, size: size}
	c.byID[key] = pos
	c.count++
	c.dataSize += size
	return id, nil
}

// InsertMany inserts a batch of documents, stopping at the first error.
// It returns the ids of the documents inserted so far, in document order. It
// is a thin wrapper over the bulk-write engine: the whole batch executes
// under one lock acquisition.
func (c *Collection) InsertMany(docs []*bson.Doc) ([]any, error) {
	res := c.BulkWrite(InsertOps(docs), BulkOptions{Ordered: true})
	return res.CompactInsertedIDs(), res.FirstError()
}

// reserveLocked grows the spine capacity ahead of a batch of n inserts so
// the batch appends pages without repeated spine reallocation. Growth is at
// least geometric so repeated batches keep the amortized O(1) append cost.
func (c *Collection) reserveLocked(n int) {
	if n <= 0 {
		return
	}
	needPages := (c.length + n + pageMask) >> pageShift
	if needPages <= cap(c.pages) {
		return
	}
	if doubled := 2 * cap(c.pages); doubled > needPages {
		needPages = doubled
	}
	grown := make([]*page, len(c.pages), needPages)
	copy(grown, c.pages)
	c.pages = grown
	c.spineShared = false
}

// FindID returns the document with the given _id, or nil when absent. The
// lookup runs against the pinned snapshot's version-owned id map plus a
// bounded tail scan, so it never takes the writer mutex; the returned
// document is immutable (updates replace it).
func (c *Collection) FindID(id any) *bson.Doc {
	s := c.Snapshot()
	defer s.Release()
	return s.FindID(id)
}

// Count returns the number of live documents in the published version.
func (c *Collection) Count() int {
	return c.current.Load().count
}

// DataSize returns the total encoded size of live documents in bytes.
func (c *Collection) DataSize() int {
	return c.current.Load().dataSize
}

// Scan invokes fn for every live document in insertion order until fn
// returns false. The scan runs over a pinned snapshot and never blocks (or
// is blocked by) writers; documents committed after the call starts are not
// seen.
func (c *Collection) Scan(fn func(*bson.Doc) bool) {
	s := c.Snapshot()
	defer s.Release()
	s.Scan(fn)
}

// Drop removes every document and secondary index. With a journal attached
// the wipe is logged first so recovery reproduces it; a journal failure here
// is best-effort (Drop predates durability and has no error return), but the
// only caller that can observe one, ReplaceContents, surfaces the wait error
// of the insert batch that follows.
func (c *Collection) Drop() {
	c.mu.Lock()
	commit, _ := c.logClearLocked()
	c.retireAllPagesLocked()
	for _, e := range c.indexes {
		c.retireTreeLocked(e.ix)
	}
	c.pages = nil
	c.length = 0
	c.byID = make(map[string]int)
	c.indexes = nil
	c.count = 0
	c.dataSize = 0
	c.tombs = 0
	c.spineShared = false
	c.idMapStale = true
	c.indexesChanged = true
	c.publishLocked()
	c.mu.Unlock()
	_ = waitCommit(commit, false)
}

// retireAllPagesLocked parks the writer's whole page set for recycling; the
// published versions that reference it keep it alive until they unpin.
func (c *Collection) retireAllPagesLocked() {
	for pi, p := range c.pages {
		if p == nil {
			continue
		}
		limit := c.length - (pi << pageShift)
		if limit <= 0 {
			break
		}
		c.retirePageLocked(p, pageLiveBytes(p, limit))
	}
}

// compactLocked rewrites the record store without tombstones. The rewrite
// lands in fresh pages, so versions pinned before the compaction keep
// scanning their own frozen records; positions move, so the version id map
// is rebuilt at the next publish.
func (c *Collection) compactLocked() {
	if c.tombs == 0 {
		return
	}
	c.retireAllPagesLocked()
	oldPages, oldLen := c.pages, c.length
	c.pages = make([]*page, 0, (c.count+pageMask)>>pageShift)
	c.length = 0
	c.spineShared = false
	byID := make(map[string]int, c.count)
	for pi, base := 0, 0; base < oldLen; pi, base = pi+1, base+pageSize {
		p := oldPages[pi]
		if p == nil {
			continue
		}
		end := oldLen - base
		if end > pageSize {
			end = pageSize
		}
		for off := 0; off < end; off++ {
			r := &p.recs[off]
			if r.deleted {
				continue
			}
			byID[r.idKey] = c.length
			*c.appendSlotLocked() = record{idKey: r.idKey, doc: r.doc, size: r.size}
		}
	}
	c.byID = byID
	c.tombs = 0
	c.idMapStale = true
	c.gcCursor = 0
}

// Stats summarizes the collection, mirroring collStats.
type Stats struct {
	Name            string
	Count           int
	DataSizeBytes   int
	AvgObjSizeBytes int
	IndexCount      int
	IndexSizeBytes  int
	CollScans       int64
	IndexScans      int64
	// DocsExamined counts the documents read-path cursors looked at: a
	// deterministic work measure independent of wall-clock noise.
	DocsExamined int64
}

// Stats returns current collection statistics. Everything is read from the
// published version and atomic counters, so Stats never contends with
// writers.
func (c *Collection) Stats() Stats {
	v := c.current.Load()
	s := Stats{
		Name:           c.name,
		Count:          v.count,
		DataSizeBytes:  v.dataSize,
		IndexCount:     len(v.indexMeta),
		IndexSizeBytes: v.indexSize,
		CollScans:      c.scans.Load(),
		IndexScans:     c.indexScans.Load(),
		DocsExamined:   c.docsExamined.Load(),
	}
	if v.count > 0 {
		s.AvgObjSizeBytes = v.dataSize / v.count
	}
	return s
}

// WorkingSetBytes approximates the working set contribution of the
// collection: data plus index sizes (§2.1.3.2 of the thesis).
func (c *Collection) WorkingSetBytes() int {
	st := c.Stats()
	return st.DataSizeBytes + st.IndexSizeBytes
}
