// Package storage implements the collection storage engine: document
// storage with a primary _id index, secondary indexes, a query planner that
// chooses between collection scans and index scans, update/delete execution,
// multi-version concurrency control with copy-on-write snapshots, and
// snapshot persistence.
package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"docstore/internal/bson"
	"docstore/internal/index"
)

// ErrDocumentTooLarge is returned when a document exceeds the 16 MB limit.
type ErrDocumentTooLarge struct {
	Size int
}

func (e *ErrDocumentTooLarge) Error() string {
	return fmt.Sprintf("storage: document of %d bytes exceeds the %d byte limit", e.Size, bson.MaxDocumentSize)
}

// ErrDuplicateID is returned when inserting a document whose _id already
// exists in the collection.
type ErrDuplicateID struct {
	ID any
}

func (e *ErrDuplicateID) Error() string {
	return fmt.Sprintf("storage: duplicate _id %v", e.ID)
}

// record is one stored document slot. Deleted slots remain as tombstones
// until the collection compacts, which keeps scans in insertion order and —
// more importantly under MVCC — keeps record positions stable, so the _id
// map and index position lists survive deletes without rebuilds.
type record struct {
	idKey   string
	doc     *bson.Doc
	size    int
	deleted bool
}

// version is one immutable published state of a collection: the unit of
// multi-version concurrency control. A writer builds the next state under
// the collection's write mutex and publishes it with one atomic pointer
// swap; readers pin a version with one atomic load and then scan it without
// any lock. Once published, a version never changes:
//
//   - records[0:len(records)] is frozen. Writers that must modify an
//     existing slot (update, delete) copy the slice first
//     (Collection.ensureOwnedLocked); writers that only append may share
//     the backing array, because appends write exclusively at indexes >=
//     the published length, which no reader of this version ever accesses.
//   - every *bson.Doc reachable from records is frozen. Updates install a
//     modified clone instead of mutating the stored document, so a pinned
//     version observes point-in-time document contents, not just a
//     point-in-time membership set.
//   - counters, the journal watermark and the index definitions are plain
//     fields captured at publish time, so Count/Stats/checkpoint manifests
//     are mutually consistent with the records they describe.
type version struct {
	// seq is the monotonically increasing version number, starting at 1 for
	// a fresh collection; Plan.SnapshotVersion and Snapshot.Version surface
	// it through explain and the profiler.
	seq      int64
	records  []record
	count    int
	dataSize int
	tombs    int
	// lastLSN is the journal watermark as of this version: the LSN of the
	// newest mutation folded into records. Checkpoints pair it with the
	// snapshot data so recovery replays exactly the records the snapshot
	// does not already contain.
	lastLSN int64
	// indexMeta holds the secondary index definitions live at this version,
	// sorted by index name. The trees themselves are shared mutable
	// structures owned by the writer lock; only their definitions are
	// versioned (checkpoints rebuild trees by backfilling).
	indexMeta []IndexMeta
	// indexSize is the summed in-memory size estimate of the secondary
	// indexes at publish time, for lock-free Stats.
	indexSize int
}

// Collection is a single document collection. All methods are safe for
// concurrent use: writers serialize on an internal mutex, readers pin
// immutable versions and never block (see doc.go, "Concurrency & isolation").
type Collection struct {
	name string

	// mu serializes every mutation (and the journal append that precedes
	// it, so log order equals apply order). Readers take it only to consult
	// the shared index trees while planning an index scan, and for point
	// _id lookups; plain collection scans never acquire it.
	mu       sync.Mutex
	records  []record
	byID     map[string]int // idKey -> position in records
	indexes  map[string]*index.Index
	count    int
	dataSize int
	tombs    int
	// shared marks that the backing array of records is referenced by the
	// published version: the next in-place slot mutation must copy first.
	// Appends are exempt (they only touch slots past every published
	// length).
	shared bool
	// indexesChanged makes the next publish rebuild the version's index
	// metadata; steady-state writes reuse the previous slice.
	indexesChanged bool

	// current is the published version readers pin. It is never nil.
	current atomic.Pointer[version]

	// journal, when attached, receives every mutation before it is applied;
	// lastLSN is the sequence number of the newest journaled mutation (see
	// journal.go).
	journal Journal
	lastLSN int64

	// stats (atomic: bumped lock-free by readers)
	scans        atomic.Int64 // collection scans performed
	indexScans   atomic.Int64 // index scans performed
	docsExamined atomic.Int64 // documents examined by read cursors
}

// NewCollection creates an empty collection.
func NewCollection(name string) *Collection {
	c := &Collection{
		name:    name,
		byID:    make(map[string]int),
		indexes: make(map[string]*index.Index),
	}
	c.current.Store(&version{seq: 1})
	return c
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// publishLocked makes the writer's current state the published version. It
// must be called before the write mutex is released by every path that
// mutated collection state or advanced the journal watermark — including
// apply-error paths, whose logged LSN must still reach checkpoints. The
// atomic store has release semantics, so a reader that pins the new version
// observes every record and document written before this call.
func (c *Collection) publishLocked() {
	prev := c.current.Load()
	v := &version{
		seq:       prev.seq + 1,
		records:   c.records,
		count:     c.count,
		dataSize:  c.dataSize,
		tombs:     c.tombs,
		lastLSN:   c.lastLSN,
		indexMeta: prev.indexMeta,
	}
	if c.indexesChanged {
		c.indexesChanged = false
		if len(c.indexes) == 0 {
			v.indexMeta = nil
		} else {
			names := make([]string, 0, len(c.indexes))
			for name := range c.indexes {
				names = append(names, name)
			}
			sort.Strings(names)
			v.indexMeta = make([]IndexMeta, 0, len(names))
			for _, name := range names {
				ix := c.indexes[name]
				v.indexMeta = append(v.indexMeta, IndexMeta{Spec: ix.Spec().Doc(), Unique: ix.Unique()})
			}
		}
	}
	for _, ix := range c.indexes {
		v.indexSize += ix.SizeBytes()
	}
	c.current.Store(v)
	c.shared = true
}

// ensureOwnedLocked makes the writer's record slice safe to mutate in place:
// when its backing array is shared with the published version the slice is
// copied first (copy-on-write). Appending never needs this — only update and
// delete paths that rewrite existing slots do. Callers must re-derive any
// *record pointers taken before the call, since the copy relocates slots.
func (c *Collection) ensureOwnedLocked() {
	if !c.shared {
		return
	}
	cp := make([]record, len(c.records), cap(c.records))
	copy(cp, c.records)
	c.records = cp
	c.shared = false
}

// idKey derives the map key for an _id value.
func idKey(id any) string {
	d := bson.NewDoc(1)
	d.Set("k", id)
	return string(bson.Marshal(d))
}

// Insert adds a document to the collection. When the document has no _id an
// ObjectID is assigned (mirroring the behaviour described in §2.1). The
// stored document is the one passed in; callers must not mutate it afterwards
// (updates never mutate it either — they install clones).
func (c *Collection) Insert(doc *bson.Doc) (any, error) {
	c.mu.Lock()
	commit, err := c.logLocked([]WriteOp{InsertWriteOp(doc)}, true)
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	id, err := c.insertLocked(doc)
	c.publishLocked()
	c.mu.Unlock()
	// The commit is resolved (and its post-commit hook notified) even when
	// the apply failed: the record is in the log either way, and the
	// change-stream frontier needs every logged LSN accounted for.
	werr := waitCommit(commit, false)
	if err != nil {
		return id, err
	}
	return id, werr
}

// ensureID assigns a fresh ObjectID to a document without one, rebuilding
// the document so _id leads it, as the real engine stores it. It returns the
// document's id.
func ensureID(doc *bson.Doc) any {
	id, ok := doc.Get(bson.IDKey)
	if !ok {
		id = bson.NewObjectID()
		withID := bson.NewDoc(doc.Len() + 1)
		withID.Set(bson.IDKey, id)
		for _, f := range doc.Fields() {
			withID.Set(f.Key, f.Value)
		}
		*doc = *withID
	}
	return id
}

func (c *Collection) insertLocked(doc *bson.Doc) (any, error) {
	id := ensureID(doc)
	size := bson.EncodedSize(doc)
	if size > bson.MaxDocumentSize {
		return nil, &ErrDocumentTooLarge{Size: size}
	}
	key := idKey(id)
	if _, exists := c.byID[key]; exists {
		return nil, &ErrDuplicateID{ID: id}
	}
	for _, ix := range c.indexes {
		if err := ix.Insert(doc, id); err != nil {
			// Roll back entries added to earlier indexes.
			for _, other := range c.indexes {
				if other == ix {
					break
				}
				other.Remove(doc, id)
			}
			return nil, err
		}
	}
	// Appending is safe even while the backing array is shared with the
	// published version: the write lands at an index no pinned reader
	// accesses (see the version invariants).
	c.records = append(c.records, record{idKey: key, doc: doc, size: size})
	c.byID[key] = len(c.records) - 1
	c.count++
	c.dataSize += size
	return id, nil
}

// InsertMany inserts a batch of documents, stopping at the first error.
// It returns the ids of the documents inserted so far, in document order. It
// is a thin wrapper over the bulk-write engine: the whole batch executes
// under one lock acquisition.
func (c *Collection) InsertMany(docs []*bson.Doc) ([]any, error) {
	res := c.BulkWrite(InsertOps(docs), BulkOptions{Ordered: true})
	return res.CompactInsertedIDs(), res.FirstError()
}

// reserveLocked grows the record slice capacity ahead of a batch of n
// inserts so the batch appends without repeated reallocation. Growth is at
// least geometric so repeated batches keep the amortized O(1) append cost
// instead of copying the whole array per batch.
func (c *Collection) reserveLocked(n int) {
	if n <= 0 || cap(c.records)-len(c.records) >= n {
		return
	}
	newCap := len(c.records) + n
	if doubled := 2 * cap(c.records); doubled > newCap {
		newCap = doubled
	}
	grown := make([]record, len(c.records), newCap)
	copy(grown, c.records)
	c.records = grown
	c.shared = false
}

// FindID returns the document with the given _id, or nil when absent. The
// point lookup goes through the writer-owned _id map, so it briefly takes
// the write mutex; the returned document is immutable (updates replace it).
func (c *Collection) FindID(id any) *bson.Doc {
	c.mu.Lock()
	defer c.mu.Unlock()
	pos, ok := c.byID[idKey(bson.Normalize(id))]
	if !ok || c.records[pos].deleted {
		return nil
	}
	return c.records[pos].doc
}

// Count returns the number of live documents in the published version.
func (c *Collection) Count() int {
	return c.current.Load().count
}

// DataSize returns the total encoded size of live documents in bytes.
func (c *Collection) DataSize() int {
	return c.current.Load().dataSize
}

// Scan invokes fn for every live document in insertion order until fn
// returns false. The scan runs over a pinned snapshot and never blocks (or
// is blocked by) writers; documents committed after the call starts are not
// seen.
func (c *Collection) Scan(fn func(*bson.Doc) bool) {
	c.Snapshot().Scan(fn)
}

// Drop removes every document and secondary index. With a journal attached
// the wipe is logged first so recovery reproduces it; a journal failure here
// is best-effort (Drop predates durability and has no error return), but the
// only caller that can observe one, ReplaceContents, surfaces the wait error
// of the insert batch that follows.
func (c *Collection) Drop() {
	c.mu.Lock()
	commit, _ := c.logClearLocked()
	c.records = nil
	c.byID = make(map[string]int)
	c.indexes = make(map[string]*index.Index)
	c.count = 0
	c.dataSize = 0
	c.tombs = 0
	c.shared = false
	c.indexesChanged = true
	c.publishLocked()
	c.mu.Unlock()
	_ = waitCommit(commit, false)
}

// compactLocked rewrites the record slice without tombstones. The rewrite
// lands in a fresh array, so versions pinned before the compaction keep
// scanning their own frozen records.
func (c *Collection) compactLocked() {
	if c.tombs == 0 {
		return
	}
	kept := make([]record, 0, c.count)
	byID := make(map[string]int, c.count)
	for _, r := range c.records {
		if r.deleted {
			continue
		}
		byID[r.idKey] = len(kept)
		kept = append(kept, r)
	}
	c.records = kept
	c.byID = byID
	c.tombs = 0
	c.shared = false
}

// Stats summarizes the collection, mirroring collStats.
type Stats struct {
	Name            string
	Count           int
	DataSizeBytes   int
	AvgObjSizeBytes int
	IndexCount      int
	IndexSizeBytes  int
	CollScans       int64
	IndexScans      int64
	// DocsExamined counts the documents read-path cursors looked at: a
	// deterministic work measure independent of wall-clock noise.
	DocsExamined int64
}

// Stats returns current collection statistics. Everything is read from the
// published version and atomic counters, so Stats never contends with
// writers.
func (c *Collection) Stats() Stats {
	v := c.current.Load()
	s := Stats{
		Name:           c.name,
		Count:          v.count,
		DataSizeBytes:  v.dataSize,
		IndexCount:     len(v.indexMeta),
		IndexSizeBytes: v.indexSize,
		CollScans:      c.scans.Load(),
		IndexScans:     c.indexScans.Load(),
		DocsExamined:   c.docsExamined.Load(),
	}
	if v.count > 0 {
		s.AvgObjSizeBytes = v.dataSize / v.count
	}
	return s
}

// WorkingSetBytes approximates the working set contribution of the
// collection: data plus index sizes (§2.1.3.2 of the thesis).
func (c *Collection) WorkingSetBytes() int {
	st := c.Stats()
	return st.DataSizeBytes + st.IndexSizeBytes
}
