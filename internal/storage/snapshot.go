package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync/atomic"

	"docstore/internal/bson"
)

// Snapshot is a pinned, immutable point-in-time view of a collection: the
// read-side handle of the MVCC engine. Pinning costs two atomic adds and an
// atomic load, and no locks; holding a snapshot never blocks writers, and
// concurrent commits, compactions and drops are invisible to it. Everything
// reachable through a snapshot — the record set, the document contents, the
// counters, the journal watermark and the index definitions — describes the
// single committed version that was current when the snapshot was taken.
//
// Snapshots are registered with the engine's pin tracking: while one is
// held, the version it pins (and every page reachable from it) is exempt
// from page recycling, and the engine gauges report the retention (live
// versions, oldest-pin age — see EngineStats). Call Release (or Close) when
// done; Release is idempotent and safe to call concurrently. A snapshot that
// is never released does not corrupt anything and its memory is still
// reclaimed by Go's garbage collector once unreachable — the engine merely
// loses the ability to recycle the pages it covered and the gauges keep
// counting it until its version falls out of tracking.
type Snapshot struct {
	coll     *Collection
	v        *version
	released atomic.Bool
}

// Snapshot pins the collection's current committed version. The pin gate
// makes the pin race-free against page recycling: the GC recycles only while
// no reader sits between loading the current version and registering the
// pin.
func (c *Collection) Snapshot() *Snapshot {
	c.pinGate.Add(1)
	v := c.current.Load()
	v.pins.Add(1)
	c.pinGate.Add(-1)
	return &Snapshot{coll: c, v: v}
}

// ErrVersionRetired is returned by SnapshotAt (and AtVersion queries) when
// the requested version is no longer tracked: either it was pruned once its
// pins dropped, or it never existed. Callers re-anchor by issuing a fresh
// query at the current version.
type ErrVersionRetired struct {
	Collection string
	Version    int64
}

func (e *ErrVersionRetired) Error() string {
	return fmt.Sprintf("storage: version %d of collection %q is not retained (hold a cursor open to anchor a read-at-version session)", e.Version, e.Collection)
}

// SnapshotAt pins the committed version with the given sequence number, the
// read-at-version entry point behind FindOptions.AtVersion. Version 0 pins
// the current version (exactly Snapshot). A superseded version can be pinned
// only while the engine still tracks it — it stays tracked while any
// snapshot pins it, so a session anchors itself by keeping its first
// query's cursor open and pointing follow-up queries at that version.
func (c *Collection) SnapshotAt(seq int64) (*Snapshot, error) {
	if seq == 0 {
		return c.Snapshot(), nil
	}
	// Fast path: the requested version is still current — pin it through
	// the gate exactly like Snapshot, no mutex.
	c.pinGate.Add(1)
	v := c.current.Load()
	if v.seq == seq {
		v.pins.Add(1)
		c.pinGate.Add(-1)
		return &Snapshot{coll: c, v: v}, nil
	}
	c.pinGate.Add(-1)
	// Slow path: search the tracked live list under the mutex. GC runs only
	// under the same mutex, so a version found here cannot be pruned before
	// its pin registers.
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, v := range c.live {
		if v.seq == seq {
			v.pins.Add(1)
			return &Snapshot{coll: c, v: v}, nil
		}
	}
	return nil, &ErrVersionRetired{Collection: c.name, Version: seq}
}

// Release unpins the snapshot, allowing the engine to recycle the pages its
// version retained once no other snapshot covers them. It is idempotent and
// safe for concurrent use; reads through an already-released snapshot remain
// memory-safe (the version is immutable and garbage-collected), but may
// observe recycled pages, so release only after the last read.
func (s *Snapshot) Release() {
	if s.released.Swap(true) {
		return
	}
	s.v.pins.Add(-1)
}

// Close releases the snapshot; it exists so snapshots satisfy io.Closer.
func (s *Snapshot) Close() error {
	s.Release()
	return nil
}

// Collection returns the name of the collection the snapshot was taken from.
func (s *Snapshot) Collection() string { return s.coll.name }

// Version returns the snapshot's version number: a per-collection sequence
// that increments with every committed write batch. Plans and the profiler
// surface it as snapshotVersion.
func (s *Snapshot) Version() int64 { return s.v.seq }

// Count returns the number of live documents in the snapshot.
func (s *Snapshot) Count() int { return s.v.count }

// DataSize returns the total encoded size of the snapshot's live documents.
func (s *Snapshot) DataSize() int { return s.v.dataSize }

// LastLSN returns the journal watermark of the snapshot: the LSN of the
// newest mutation its record set reflects, 0 when the collection was never
// journaled. Checkpoints pair it with the streamed data so recovery replays
// exactly the log records the snapshot does not contain.
func (s *Snapshot) LastLSN() int64 { return s.v.lastLSN }

// Indexes returns the secondary index definitions live at the snapshot,
// sorted by index name.
func (s *Snapshot) Indexes() []IndexMeta {
	return append([]IndexMeta(nil), s.v.indexMeta...)
}

// Info summarizes the snapshot in the legacy SnapshotInfo shape the
// checkpoint manifest is built from.
func (s *Snapshot) Info() SnapshotInfo {
	return SnapshotInfo{Count: s.v.count, LastLSN: s.v.lastLSN, Indexes: s.Indexes()}
}

// idPos returns the record position of the live document with the given id
// key, or -1. The lookup consults the version-owned id map and then scans the
// bounded tail the map does not cover yet ([idMapLen, length)); it takes no
// locks.
func (v *version) idPos(key string) int {
	if pos, ok := v.idMap[key]; ok && pos < v.length {
		if r := v.record(pos); r != nil && !r.deleted && r.idKey == key {
			return pos
		}
	}
	// The map may miss a document inserted (or re-inserted after a delete)
	// since its last rebuild; those all live past the rebuild watermark.
	for pos := v.idMapLen; pos < v.length; pos++ {
		if r := v.record(pos); r != nil && !r.deleted && r.idKey == key {
			return pos
		}
	}
	return -1
}

// FindID returns the document with the given _id in the snapshot, or nil; it
// takes no locks (see version.idPos).
func (s *Snapshot) FindID(id any) *bson.Doc {
	pos := s.v.idPos(idKey(bson.Normalize(id)))
	if pos < 0 {
		return nil
	}
	return s.v.record(pos).doc
}

// Scan invokes fn for every live document in insertion order until fn
// returns false. It is entirely lock-free. Pages the engine GC reclaimed
// (every slot tombstoned) are skipped wholesale.
func (s *Snapshot) Scan(fn func(*bson.Doc) bool) {
	s.coll.scans.Add(1)
	v := s.v
	for pi, base := 0, 0; base < v.length; pi, base = pi+1, base+pageSize {
		p := v.pages[pi]
		if p == nil {
			continue
		}
		end := v.length - base
		if end > pageSize {
			end = pageSize
		}
		for off := 0; off < end; off++ {
			if p.recs[off].deleted {
				continue
			}
			if !fn(p.recs[off].doc) {
				return
			}
		}
	}
}

// Docs returns the snapshot's live documents in insertion order. The
// returned documents are immutable shared state; callers must not modify
// them.
func (s *Snapshot) Docs() []*bson.Doc {
	out := make([]*bson.Doc, 0, s.v.count)
	s.Scan(func(d *bson.Doc) bool {
		out = append(out, d)
		return true
	})
	return out
}

// WriteData streams the snapshot in the persistent collection format (see
// persist.go): magic, document count, then each live document
// length-prefixed. Because the snapshot is immutable the entire stream —
// header count included — is consistent by construction, no matter how long
// the disk write takes or how many writes commit meanwhile; checkpoints use
// exactly this to stream collections without stalling the write path.
func (s *Snapshot) WriteData(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	countBuf := make([]byte, 8)
	binary.LittleEndian.PutUint64(countBuf, uint64(s.v.count))
	if _, err := bw.Write(countBuf); err != nil {
		return err
	}
	var err error
	s.Scan(func(d *bson.Doc) bool {
		_, err = bw.Write(bson.Marshal(d))
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}
