package storage

import (
	"bufio"
	"encoding/binary"
	"io"

	"docstore/internal/bson"
)

// Snapshot is a pinned, immutable point-in-time view of a collection: the
// read-side handle of the MVCC engine. Pinning costs one atomic load and no
// locks; holding a snapshot never blocks writers, and concurrent commits,
// compactions and drops are invisible to it. Everything reachable through a
// snapshot — the record set, the document contents, the counters, the
// journal watermark and the index definitions — describes the single
// committed version that was current when the snapshot was taken.
//
// Snapshots are cheap, need no explicit release (the garbage collector
// reclaims superseded versions once the last snapshot pinning them goes
// away), and are safe for concurrent use by multiple goroutines.
type Snapshot struct {
	coll *Collection
	v    *version
}

// Snapshot pins the collection's current committed version.
func (c *Collection) Snapshot() *Snapshot {
	return &Snapshot{coll: c, v: c.current.Load()}
}

// Collection returns the name of the collection the snapshot was taken from.
func (s *Snapshot) Collection() string { return s.coll.name }

// Version returns the snapshot's version number: a per-collection sequence
// that increments with every committed write batch. Plans and the profiler
// surface it as snapshotVersion.
func (s *Snapshot) Version() int64 { return s.v.seq }

// Count returns the number of live documents in the snapshot.
func (s *Snapshot) Count() int { return s.v.count }

// DataSize returns the total encoded size of the snapshot's live documents.
func (s *Snapshot) DataSize() int { return s.v.dataSize }

// LastLSN returns the journal watermark of the snapshot: the LSN of the
// newest mutation its record set reflects, 0 when the collection was never
// journaled. Checkpoints pair it with the streamed data so recovery replays
// exactly the log records the snapshot does not contain.
func (s *Snapshot) LastLSN() int64 { return s.v.lastLSN }

// Indexes returns the secondary index definitions live at the snapshot,
// sorted by index name.
func (s *Snapshot) Indexes() []IndexMeta {
	return append([]IndexMeta(nil), s.v.indexMeta...)
}

// Info summarizes the snapshot in the legacy SnapshotInfo shape the
// checkpoint manifest is built from.
func (s *Snapshot) Info() SnapshotInfo {
	return SnapshotInfo{Count: s.v.count, LastLSN: s.v.lastLSN, Indexes: s.Indexes()}
}

// Scan invokes fn for every live document in insertion order until fn
// returns false. It is entirely lock-free.
func (s *Snapshot) Scan(fn func(*bson.Doc) bool) {
	s.coll.scans.Add(1)
	recs := s.v.records
	for i := range recs {
		if recs[i].deleted {
			continue
		}
		if !fn(recs[i].doc) {
			return
		}
	}
}

// Docs returns the snapshot's live documents in insertion order. The
// returned documents are immutable shared state; callers must not modify
// them.
func (s *Snapshot) Docs() []*bson.Doc {
	out := make([]*bson.Doc, 0, s.v.count)
	s.Scan(func(d *bson.Doc) bool {
		out = append(out, d)
		return true
	})
	return out
}

// WriteData streams the snapshot in the persistent collection format (see
// persist.go): magic, document count, then each live document
// length-prefixed. Because the snapshot is immutable the entire stream —
// header count included — is consistent by construction, no matter how long
// the disk write takes or how many writes commit meanwhile; checkpoints use
// exactly this to stream collections without stalling the write path.
func (s *Snapshot) WriteData(w io.Writer) error {
	s.coll.scans.Add(1)
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	countBuf := make([]byte, 8)
	binary.LittleEndian.PutUint64(countBuf, uint64(s.v.count))
	if _, err := bw.Write(countBuf); err != nil {
		return err
	}
	recs := s.v.records
	for i := range recs {
		if recs[i].deleted {
			continue
		}
		if _, err := bw.Write(bson.Marshal(recs[i].doc)); err != nil {
			return err
		}
	}
	return bw.Flush()
}
