package storage

import (
	"errors"
	"testing"
	"time"

	"docstore/internal/bson"
)

func TestParseWriteConcern(t *testing.T) {
	cases := []struct {
		name string
		in   *bson.Doc
		want WriteConcern
	}{
		{"nil is default", nil, WriteConcern{}},
		{"empty is default", bson.D(), WriteConcern{}},
		{"w1", bson.D("w", 1), WriteConcern{W: 1}},
		{"w3", bson.D("w", 3), WriteConcern{W: 3}},
		{"majority", bson.D("w", "majority"), WriteConcern{Majority: true}},
		{"integral float w", bson.D("w", 2.0), WriteConcern{W: 2}},
		{"j", bson.D("j", true), WriteConcern{Journal: true}},
		{"j false", bson.D("j", false), WriteConcern{}},
		{"wtimeout", bson.D("w", "majority", "wtimeout", 250), WriteConcern{Majority: true, WTimeout: 250 * time.Millisecond}},
		{"full", bson.D("w", 2, "j", true, "wtimeout", 1000), WriteConcern{W: 2, Journal: true, WTimeout: time.Second}},
	}
	for _, tc := range cases {
		got, err := ParseWriteConcern(tc.in)
		if err != nil {
			t.Fatalf("%s: unexpected error %v", tc.name, err)
		}
		if got != tc.want {
			t.Fatalf("%s: got %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

func TestParseWriteConcernRejectsGarbage(t *testing.T) {
	cases := []struct {
		name  string
		in    *bson.Doc
		field string
	}{
		{"fractional w", bson.D("w", 1.5), "w"},
		{"zero w", bson.D("w", 0), "w"},
		{"negative w", bson.D("w", -1), "w"},
		{"doc w", bson.D("w", bson.D("n", 1)), "w"},
		{"bool w", bson.D("w", true), "w"},
		{"bad string w", bson.D("w", "most"), "w"},
		{"numeric j", bson.D("j", 1), "j"},
		{"string j", bson.D("j", "true"), "j"},
		{"negative wtimeout", bson.D("wtimeout", -100), "wtimeout"},
		{"fractional wtimeout", bson.D("wtimeout", 0.5), "wtimeout"},
		{"string wtimeout", bson.D("wtimeout", "1s"), "wtimeout"},
		{"unknown field", bson.D("fsync", true), "fsync"},
	}
	for _, tc := range cases {
		_, err := ParseWriteConcern(tc.in)
		if err == nil {
			t.Fatalf("%s: %s parsed without error", tc.name, tc.in)
		}
		var inv *ErrInvalidWriteConcern
		if !errors.As(err, &inv) {
			t.Fatalf("%s: error %v is not ErrInvalidWriteConcern", tc.name, err)
		}
		if inv.Field != tc.field {
			t.Fatalf("%s: error names field %q, want %q", tc.name, inv.Field, tc.field)
		}
	}
}

func TestWriteConcernNeedAck(t *testing.T) {
	cases := []struct {
		wc      WriteConcern
		members int
		want    int
	}{
		{WriteConcern{}, 3, 1},
		{WriteConcern{W: 1}, 3, 1},
		{WriteConcern{W: 3}, 3, 3},
		{WriteConcern{Majority: true}, 1, 1},
		{WriteConcern{Majority: true}, 2, 2},
		{WriteConcern{Majority: true}, 3, 2},
		{WriteConcern{Majority: true}, 4, 3},
		{WriteConcern{Majority: true}, 5, 3},
		{WriteConcern{Journal: true}, 3, 1},
	}
	for _, tc := range cases {
		if got := tc.wc.NeedAck(tc.members); got != tc.want {
			t.Fatalf("NeedAck(%+v, %d) = %d, want %d", tc.wc, tc.members, got, tc.want)
		}
	}
}

func TestWriteConcernDocRoundTrip(t *testing.T) {
	for _, wc := range []WriteConcern{
		{},
		{W: 2},
		{Majority: true, Journal: true},
		{W: 1, WTimeout: 500 * time.Millisecond},
	} {
		got, err := ParseWriteConcern(wc.Doc())
		if err != nil {
			t.Fatalf("round trip of %+v: %v", wc, err)
		}
		if got != wc {
			t.Fatalf("round trip of %+v yielded %+v", wc, got)
		}
	}
}

func TestWriteConcernErrorMessage(t *testing.T) {
	err := &WriteConcernError{W: "majority", Replicated: 1, Reason: "wtimeout"}
	want := "write concern {w: majority} not satisfied (wtimeout): replicated to 1 member(s)"
	if err.Error() != want {
		t.Fatalf("Error() = %q, want %q", err.Error(), want)
	}
}

// FuzzWriteConcernDecode feeds arbitrary JSON documents through the
// writeConcern parser: it must never panic, and must either return a valid
// concern or a structured *ErrInvalidWriteConcern — silently defaulting a
// malformed concern would weaken writes without telling the client.
func FuzzWriteConcernDecode(f *testing.F) {
	seeds := []string{
		`{"w": 1}`,
		`{"w": "majority", "j": true, "wtimeout": 100}`,
		`{"w": 1.5}`,
		`{"w": {}}`,
		`{"w": []}`,
		`{"w": null}`,
		`{"w": -3}`,
		`{"w": 1e309}`,
		`{"j": "yes"}`,
		`{"wtimeout": -1}`,
		`{"wtimeout": 2147483648.5}`,
		`{"writeConcern": {"w": 1}}`,
		`{}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		doc, err := bson.FromJSON([]byte(raw))
		if err != nil {
			return // not a document; the wire layer already rejected it
		}
		wc, perr := ParseWriteConcern(doc)
		if perr != nil {
			var inv *ErrInvalidWriteConcern
			if !errors.As(perr, &inv) {
				t.Fatalf("parse error %v is not ErrInvalidWriteConcern", perr)
			}
			return
		}
		if wc.W < 0 || wc.WTimeout < 0 {
			t.Fatalf("accepted concern has negative fields: %+v from %q", wc, raw)
		}
		// An accepted concern must round-trip through its own document form.
		back, rerr := ParseWriteConcern(wc.Doc())
		if rerr != nil || back != wc {
			t.Fatalf("round trip of accepted %+v failed: %+v, %v", wc, back, rerr)
		}
	})
}
