package storage

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"

	"docstore/internal/bson"
	"docstore/internal/query"
)

// TestStressParallelCRUD hammers one collection with concurrent inserts,
// finds, cursor scans, updates and deletes. It asserts nothing about exact
// results — interleavings are unconstrained — only that every operation
// stays internally consistent and that the race detector stays quiet.
func TestStressParallelCRUD(t *testing.T) {
	c := NewCollection("stress")
	if _, err := c.EnsureIndexDoc(bson.D("g", 1), false); err != nil {
		t.Fatal(err)
	}
	// Seed so readers have something to chew on from the start.
	for i := 0; i < 200; i++ {
		if _, err := c.Insert(bson.D(bson.IDKey, fmt.Sprintf("seed-%d", i), "g", i%10, "v", i)); err != nil {
			t.Fatal(err)
		}
	}

	const (
		writers    = 4
		readers    = 4
		opsPerGoro = 300
	)
	var wg sync.WaitGroup
	var failures atomic.Int64
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerGoro; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				switch i % 4 {
				case 0, 1:
					if _, err := c.Insert(bson.D(bson.IDKey, id, "g", i%10, "v", i)); err != nil {
						fail("insert %s: %v", id, err)
						return
					}
				case 2:
					spec := query.UpdateSpec{
						Query:  bson.D("g", i%10),
						Update: bson.D("$inc", bson.D("v", 1)),
						Multi:  true,
					}
					if _, err := c.Update(spec); err != nil {
						fail("update: %v", err)
						return
					}
				case 3:
					if _, err := c.Delete(bson.D("g", i%10), false); err != nil {
						fail("delete: %v", err)
						return
					}
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < opsPerGoro; i++ {
				switch i % 3 {
				case 0:
					// Materializing find through an index scan.
					docs, err := c.Find(bson.D("g", i%10), FindOptions{})
					if err != nil {
						fail("find: %v", err)
						return
					}
					if len(docs) < 0 { // keep docs live
						return
					}
				case 1:
					// Streaming cursor over the whole collection in small
					// batches, interleaving with the writers.
					cur, err := c.FindCursor(nil, FindOptions{BatchSize: 16})
					if err != nil {
						fail("cursor open: %v", err)
						return
					}
					n := 0
					for {
						b := cur.NextBatch()
						if len(b) == 0 {
							break
						}
						n += len(b)
					}
					if p := cur.Plan(); p.DocsReturned != n {
						fail("cursor plan returned %d, counted %d", p.DocsReturned, n)
						return
					}
				case 2:
					_ = c.Count()
					_ = c.Stats()
				}
			}
		}(r)
	}
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d stress operations failed", failures.Load())
	}

	// The collection must still be coherent after the storm.
	docs, err := c.Find(nil, FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != c.Count() {
		t.Fatalf("final Find returned %d docs, Count says %d", len(docs), c.Count())
	}
}

// TestStressReadersDuringBulkWrite asserts the MVCC core guarantee under
// load: a writer rewrites the whole collection's "epoch" field one bulk
// batch at a time while readers drain full cursors — every drain must
// observe exactly one epoch (one committed version), never a torn mix of
// two batches, and always the full document count.
func TestStressReadersDuringBulkWrite(t *testing.T) {
	const (
		docs    = 400
		readers = 4
		epochs  = 120
	)
	c := NewCollection("epochs")
	ops := make([]WriteOp, docs)
	for i := range ops {
		ops[i] = InsertWriteOp(bson.D(bson.IDKey, i, "epoch", 0))
	}
	if res := c.BulkWrite(ops, BulkOptions{Ordered: true}); res.FirstError() != nil {
		t.Fatal(res.FirstError())
	}

	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for k := 1; k <= epochs; k++ {
			res := c.BulkWrite([]WriteOp{UpdateWriteOp(query.UpdateSpec{
				Query:  bson.D(),
				Update: bson.D("$set", bson.D("epoch", k)),
				Multi:  true,
			})}, BulkOptions{})
			if err := res.FirstError(); err != nil {
				t.Errorf("epoch %d: %v", k, err)
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				cur, err := c.FindCursor(nil, FindOptions{BatchSize: 16})
				if err != nil {
					t.Errorf("open: %v", err)
					return
				}
				seen := -1
				n := 0
				for {
					b := cur.NextBatch()
					if len(b) == 0 {
						break
					}
					for _, d := range b {
						n++
						e, _ := d.Get("epoch")
						ei := int(bson.Normalize(e).(int64))
						if seen == -1 {
							seen = ei
						} else if seen != ei {
							t.Errorf("torn read: epochs %d and %d in one drain (snapshot %d)", seen, ei, cur.Plan().SnapshotVersion)
							return
						}
					}
				}
				if n != docs {
					t.Errorf("drained %d docs, want %d", n, docs)
					return
				}
			}
		}()
	}
	// The writer finishing shuts the readers down.
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
}

// TestStressReadersDuringEnsureIndex churns index creation/removal while
// readers run the same filtered query; the document set never changes, so
// every read — whether planned as an index scan or a collection scan —
// must return exactly the same documents.
func TestStressReadersDuringEnsureIndex(t *testing.T) {
	const (
		docs    = 300
		readers = 3
		rounds  = 60
	)
	c := NewCollection("ixchurn")
	wantIDs := make(map[any]bool)
	for i := 0; i < docs; i++ {
		if _, err := c.Insert(bson.D(bson.IDKey, i, "g", i%10, "v", i)); err != nil {
			t.Fatal(err)
		}
		if i%10 == 7 {
			wantIDs[bson.Normalize(i)] = true
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for r := 0; r < rounds; r++ {
			if _, err := c.EnsureIndexDoc(bson.D("g", 1), false); err != nil {
				t.Errorf("ensure: %v", err)
				return
			}
			if !c.DropIndex("g_1") {
				t.Errorf("drop round %d: index missing", r)
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				docs, err := c.Find(bson.D("g", 7), FindOptions{})
				if err != nil {
					t.Errorf("find: %v", err)
					return
				}
				if len(docs) != len(wantIDs) {
					t.Errorf("found %d docs, want %d", len(docs), len(wantIDs))
					return
				}
				for _, d := range docs {
					if !wantIDs[bson.Normalize(d.ID())] {
						t.Errorf("unexpected doc %v", d.ID())
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestStressSnapshotStreamDuringWrites streams snapshot data to a counting
// writer while bulk writes commit, asserting every streamed snapshot is
// self-consistent (header count equals streamed documents) — the
// reads-while-checkpointing path.
func TestStressSnapshotStreamDuringWrites(t *testing.T) {
	c := NewCollection("ckpt")
	for i := 0; i < 200; i++ {
		if _, err := c.Insert(bson.D(bson.IDKey, i, "v", i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for k := 0; k < 200; k++ {
			id := fmt.Sprintf("w-%d", k)
			if _, err := c.Insert(bson.D(bson.IDKey, id)); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			if k%3 == 0 {
				if _, err := c.Delete(bson.D(bson.IDKey, id), false); err != nil {
					t.Errorf("delete: %v", err)
					return
				}
			}
		}
	}()
	for {
		select {
		case <-stop:
			wg.Wait()
			return
		default:
		}
		snap := c.Snapshot()
		restored := NewCollection("restored")
		pr, pw := io.Pipe()
		go func() {
			pw.CloseWithError(snap.WriteData(pw))
		}()
		if err := restored.ReadSnapshot(pr); err != nil {
			t.Fatalf("snapshot stream does not load: %v", err)
		}
		if restored.Count() != snap.Count() {
			t.Fatalf("streamed %d docs, snapshot says %d", restored.Count(), snap.Count())
		}
	}
}

// TestStressCursorsAcrossCompaction interleaves open cursors with enough
// deletes to trigger compaction, checking cursors never double-count or
// panic when the record array is rewritten underneath their snapshot.
func TestStressCursorsAcrossCompaction(t *testing.T) {
	c := NewCollection("compact")
	const n = 500
	for i := 0; i < n; i++ {
		if _, err := c.Insert(bson.D(bson.IDKey, i, "v", i)); err != nil {
			t.Fatal(err)
		}
	}
	cur, err := c.FindCursor(nil, FindOptions{BatchSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	first := append([]*bson.Doc(nil), cur.NextBatch()...)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Delete enough to trip the tombstone-compaction threshold.
		for i := 100; i < 500; i++ {
			_, _ = c.Delete(bson.D(bson.IDKey, i), false)
		}
	}()
	var rest []*bson.Doc
	for {
		b := cur.NextBatch()
		if len(b) == 0 {
			break
		}
		rest = append(rest, b...)
	}
	wg.Wait()

	seen := make(map[any]bool)
	for _, d := range append(first, rest...) {
		id := d.ID()
		if seen[id] {
			t.Fatalf("cursor yielded _id %v twice", id)
		}
		seen[id] = true
	}
	// Everything the deletes could not touch must be present.
	for i := 0; i < 100; i++ {
		if !seen[bson.Normalize(i)] {
			t.Fatalf("cursor missed undeleted _id %d", i)
		}
	}
}
