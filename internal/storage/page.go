package storage

import (
	"math"
	"time"
)

// Paged copy-on-write record store.
//
// The record store is an array of fixed-size pages addressed through a spine
// of page pointers. A record position is split into a page index
// (pos >> pageShift) and a slot offset (pos & pageMask), so positions — and
// with them the _id map and every index position list — stay exactly as
// stable as they were with the flat array. What changes is the unit of
// copy-on-write: where the flat store copied the whole record array on the
// first update or delete of a batch (O(collection)), the paged store copies
// only the pages the batch actually rewrites (O(touched pages)), plus a
// pointer-sized spine copy. A single-document update on a 100k-document
// collection now copies one ~page-sized block instead of megabytes.
//
// Pages retired by a copy (and whole spines retired by a spine copy) are
// recycled through a small free list once pin tracking proves no live
// snapshot can still observe them, making a steady point-write stream nearly
// allocation-free. Fully tombstoned pages are nilled out of the spine by an
// incremental GC that runs a few pages at a time on the write path, so
// tombstone runs release their memory well below the full-compaction
// threshold.
const (
	pageShift = 8
	pageSize  = 1 << pageShift // records per page
	pageMask  = pageSize - 1
)

// page is one fixed-size block of record slots. Published pages are
// immutable except for two writer-side escape hatches that no reader can
// observe: slots at positions >= every published length (batch-local
// appends), and the ownerSeq/tombs bookkeeping fields, which only the writer
// (under the collection mutex) reads or writes.
type page struct {
	recs [pageSize]record
	// ownerSeq marks the write batch that privately owns this page: when it
	// equals the collection's writeSeq the page was created or copied by the
	// current (unpublished) batch and may be mutated freely; otherwise the
	// page is shared with published versions and must be copied first.
	ownerSeq int64
	// tombs counts tombstoned slots in the page. When every slot of a fully
	// published page is a tombstone the GC can nil the page out of the spine.
	tombs int
}

// retiredPage is a page (or spine) dropped from the writer's state but still
// reachable from published versions. seq is the newest published version that
// can reference it: once no pinned snapshot's version is <= seq, the page is
// recycled into the free list (and its bytes counted as reclaimed).
type retiredPage struct {
	p     *page
	spine []*page // non-nil for a retired spine instead of a page
	seq   int64
	bytes int64
}

// Bookkeeping caps. They bound the engine's metadata, not its correctness:
// overflowing entries are dropped to the garbage collector instead of being
// recycled, so a leaked (never-released) snapshot degrades allocation reuse
// and gauge precision, never safety.
const (
	maxTrackedVersions = 256
	maxRetiredPages    = 512
	maxRetiredNodeSets = 512
	maxFreePages       = 64
	maxFreeSpines      = 4
	// gcPagesPerBatch is how many pages the incremental tombstone GC examines
	// per published batch: a few spine slots, amortized across writes.
	gcPagesPerBatch = 32
	// idMapRebuildTail is how far the tail may outgrow the published id map
	// before publish rebuilds it; until then point lookups scan the tail.
	// The effective threshold grows with the map (a quarter of its size, see
	// idMapRebuildLimit) so sustained bulk loads pay O(n) amortized rebuild
	// work instead of recloning the whole map every few batches.
	idMapRebuildTail = 2 * pageSize
	// idMapTailCap bounds the proportional threshold: the uncovered tail is
	// what a lock-free FindID miss scans linearly, so it must stay a bounded
	// cost no matter how large the collection grows.
	idMapTailCap = 64 * pageSize
)

// idMapRebuildLimit is the tail length that triggers an id-map rebuild at
// publish, given how many positions the previous map covers.
func idMapRebuildLimit(covered int) int {
	limit := covered / 4
	if limit < idMapRebuildTail {
		return idMapRebuildTail
	}
	if limit > idMapTailCap {
		return idMapTailCap
	}
	return limit
}

// record returns the record at pos in the version, or nil when the position
// lies in a page the GC reclaimed (every such slot was a tombstone).
func (v *version) record(pos int) *record {
	p := v.pages[pos>>pageShift]
	if p == nil {
		return nil
	}
	return &p.recs[pos&pageMask]
}

// writerRecord returns the record at pos in the writer's (possibly shared)
// state for reading. Mutation must go through ownSlotLocked.
func (c *Collection) writerRecord(pos int) *record {
	p := c.pages[pos>>pageShift]
	if p == nil {
		return nil
	}
	return &p.recs[pos&pageMask]
}

// ensureSpineLocked makes the spine (the page-pointer slice) safe to mutate
// in place, copying it when it is shared with a published version. The copy
// is O(pages): pointer-sized entries, not records.
func (c *Collection) ensureSpineLocked() {
	if !c.spineShared {
		return
	}
	var cp []*page
	if n := len(c.freeSpines); n > 0 && cap(c.freeSpines[n-1]) >= len(c.pages) {
		cp = c.freeSpines[n-1][:len(c.pages)]
		c.freeSpines = c.freeSpines[:n-1]
	} else {
		cp = make([]*page, len(c.pages), cap(c.pages))
	}
	copy(cp, c.pages)
	c.retired = append(c.retired, retiredPage{spine: c.pages[:len(c.pages):len(c.pages)], seq: c.current.Load().seq})
	c.pages = cp
	c.spineShared = false
	c.capRetiredLocked()
}

// newPageLocked returns a zeroed page, reusing the free list when possible.
func (c *Collection) newPageLocked() *page {
	if n := len(c.freePages); n > 0 {
		p := c.freePages[n-1]
		c.freePages = c.freePages[:n-1]
		return p
	}
	return new(page)
}

// retirePageLocked parks a page still reachable from published versions for
// later recycling.
func (c *Collection) retirePageLocked(p *page, bytes int64) {
	c.retired = append(c.retired, retiredPage{p: p, seq: c.current.Load().seq, bytes: bytes})
	c.capRetiredLocked()
}

func (c *Collection) capRetiredLocked() {
	if len(c.retired) > maxRetiredPages {
		// Drop the oldest entries to the garbage collector: always safe,
		// merely unrecycled.
		drop := len(c.retired) - maxRetiredPages
		c.retired = append(c.retired[:0], c.retired[drop:]...)
	}
}

// pageLiveBytes sums the encoded sizes of the live documents in a page up to
// limit slots: the data volume a copy of this page duplicates.
func pageLiveBytes(p *page, limit int) int64 {
	if limit > pageSize {
		limit = pageSize
	}
	var b int64
	for i := 0; i < limit; i++ {
		if !p.recs[i].deleted {
			b += int64(p.recs[i].size)
		}
	}
	return b
}

// ownSlotLocked makes the record slot at pos safe to mutate in place and
// returns it. Slots past the published length are batch-local and mutable as
// they are; slots in pages the current batch already owns are too. Only a
// slot in a shared page below the published watermark pays for a copy — of
// that one page.
func (c *Collection) ownSlotLocked(pos int) *record {
	pi, off := pos>>pageShift, pos&pageMask
	p := c.pages[pi]
	if p.ownerSeq == c.writeSeq || pos >= c.pubLen {
		return &p.recs[off]
	}
	np := c.newPageLocked()
	np.recs = p.recs
	np.tombs = p.tombs
	np.ownerSeq = c.writeSeq
	c.ensureSpineLocked()
	c.pages[pi] = np
	copied := pageLiveBytes(p, c.pubLen-(pi<<pageShift))
	c.retirePageLocked(p, copied)
	c.pagesCopied.Add(1)
	c.cowBytesCopied.Add(copied)
	if shared := int64(c.dataSize) - copied; shared > 0 {
		c.cowBytesShared.Add(shared)
	}
	return &np.recs[off]
}

// appendSlotLocked returns the slot for the next record position, growing the
// spine by a page when the last one is full. Appends never copy: they write
// at positions no published version covers.
func (c *Collection) appendSlotLocked() *record {
	pos := c.length
	pi, off := pos>>pageShift, pos&pageMask
	if pi == len(c.pages) {
		np := c.newPageLocked()
		np.ownerSeq = c.writeSeq
		if len(c.pages) == cap(c.pages) {
			// The append below reallocates the spine, leaving the shared
			// array untouched in the published version's hands.
			c.pages = append(c.pages, np)
			c.spineShared = false
		} else {
			// In-place append past every published spine length: invisible
			// to readers, exactly like record appends past pubLen.
			c.pages = append(c.pages, np)
		}
	}
	c.length++
	return &c.pages[pi].recs[off]
}

// gcLocked is the incremental engine GC, run at the end of every publish:
// it prunes unpinned versions from the live list, recycles retired pages no
// pinned snapshot can observe, and nils fully tombstoned pages out of the
// spine a few at a time.
func (c *Collection) gcLocked() {
	cur := c.current.Load()

	// The pin gate closes the window where a reader has loaded the current
	// pointer but not yet registered its pin: a version that the reader is
	// about to pin still shows zero pins, so while any reader is inside the
	// gate, BOTH the live-list prune and page recycling wait for a later
	// batch. (Pruning alone would already be unsafe: once a version is
	// dropped from tracking, the next GC computes minPinned without it and
	// recycles pages its late-registered pin still reads.) Once the gate is
	// observed closed here — under mu, after the writer published — every
	// in-flight pin is registered and pins.Load() is trustworthy; readers
	// that enter the gate afterwards can only pin cur, which is never pruned
	// and references no retired page.
	if c.pinGate.Load() == 0 {
		// Prune the live-version list and find the oldest pinned version.
		minPinned := int64(math.MaxInt64)
		keep := c.live[:0]
		for _, v := range c.live {
			if v != cur && v.pins.Load() <= 0 {
				continue
			}
			if v != cur && v.seq < minPinned {
				minPinned = v.seq
			}
			keep = append(keep, v)
		}
		for i := len(keep); i < len(c.live); i++ {
			c.live[i] = nil
		}
		c.live = keep
		if len(c.live) > maxTrackedVersions {
			// A long-lived (or leaked) pin backlog: stop tracking the oldest
			// versions. Pages they reference must never be recycled, so
			// remember the oldest untracked seq as a permanent recycling
			// floor.
			drop := len(c.live) - maxTrackedVersions
			for _, v := range c.live[:drop] {
				if v != cur && v.seq < c.untrackedPinSeq {
					c.untrackedPinSeq = v.seq
				}
			}
			c.live = append(c.live[:0], c.live[drop:]...)
		}
		if c.untrackedPinSeq < minPinned {
			minPinned = c.untrackedPinSeq
		}

		// Recycle retired pages below every pin.
		if len(c.retired) > 0 {
			keepR := c.retired[:0]
			for _, e := range c.retired {
				if e.seq >= minPinned {
					keepR = append(keepR, e)
					continue
				}
				c.reclaimedBytes.Add(e.bytes)
				if e.p != nil {
					c.pagesRecycled.Add(1)
					if len(c.freePages) < maxFreePages {
						*e.p = page{} // drop document references before reuse
						c.freePages = append(c.freePages, e.p)
					}
				} else if len(c.freeSpines) < maxFreeSpines {
					clear(e.spine)
					c.freeSpines = append(c.freeSpines, e.spine[:0])
				}
			}
			for i := len(keepR); i < len(c.retired); i++ {
				c.retired[i] = retiredPage{}
			}
			c.retired = keepR
		}

		// Count retired index-tree nodes below every pin as reclaimed: no
		// frozen index handle can reach them anymore, so Go's collector frees
		// them; the gauges record the release.
		if len(c.retiredNodes) > 0 {
			keepN := c.retiredNodes[:0]
			for _, e := range c.retiredNodes {
				if e.seq >= minPinned {
					keepN = append(keepN, e)
					continue
				}
				c.treeNodesReclaimed.Add(e.nodes)
				c.treeBytesReclaimed.Add(e.bytes)
			}
			c.retiredNodes = keepN
		}
	}

	// Incremental tombstone-run GC: walk a few pages per batch and nil out
	// the fully dead ones. Positions stay valid — readers treat a nil page
	// as all-tombstones — so index position lists and the id map survive.
	if c.tombs >= pageSize && len(c.pages) > 0 {
		fullPages := c.pubLen >> pageShift // only pages wholly below the publish watermark
		scanned := 0
		for scanned < gcPagesPerBatch && fullPages > 0 {
			if c.gcCursor >= fullPages {
				c.gcCursor = 0
			}
			pi := c.gcCursor
			c.gcCursor++
			scanned++
			p := c.pages[pi]
			if p == nil || p.tombs < pageSize {
				continue
			}
			c.ensureSpineLocked()
			c.pages[pi] = nil
			// The tombstoned docs were already released at delete time; the
			// page frame itself is what recycling reclaims.
			c.retirePageLocked(p, 0)
		}
	}
}

// EngineStats is the MVCC engine's memory-economics gauge set, surfaced
// through collection stats, mongod serverStatus and the wire protocol so a
// stuck cursor retaining old versions is visible, not silent.
type EngineStats struct {
	// LiveVersions is the number of published versions still tracked: the
	// current one plus every superseded version some snapshot still pins.
	LiveVersions int
	// PinnedSnapshots is the total pin count across superseded versions plus
	// pins on the current version — roughly "open cursors and snapshots".
	PinnedSnapshots int
	// OldestPinAge is how long ago the oldest still-pinned version was
	// published: the retention horizon a stuck cursor imposes.
	OldestPinAge time.Duration
	// RetainedBytes is the data size of the oldest pinned version: an upper
	// bound on what its retention keeps alive beyond the current version.
	RetainedBytes int64
	// Pages and PageSizeRecords describe the store shape.
	Pages           int
	PageSizeRecords int
	// COWBytesCopied / COWBytesShared split every mutating batch's record
	// data into the part page copies duplicated and the part that stayed
	// shared with published versions. Their ratio is the paging win.
	COWBytesCopied int64
	COWBytesShared int64
	// ReclaimedBytes counts data whose last referencing version was
	// retired and recycled; PagesCopied/PagesRecycled count page churn.
	ReclaimedBytes int64
	PagesCopied    int64
	PagesRecycled  int64
	// TreeNodesCopied/TreeBytesCopied/TreeBytesShared are the persistent
	// index-tree analogues of the page COW gauges: each mutating batch
	// path-copies only the O(log n) nodes it touches, sharing the rest with
	// published versions. TreeNodesReclaimed/TreeBytesReclaimed count
	// retired nodes released once no pinned snapshot could reach them.
	TreeNodesCopied    int64
	TreeBytesCopied    int64
	TreeBytesShared    int64
	TreeNodesReclaimed int64
	TreeBytesReclaimed int64
}

// EngineStats returns the collection's engine gauges. The counters are
// atomics; the version walk takes the write mutex briefly, which keeps it off
// the hot paths but exact.
func (c *Collection) EngineStats() EngineStats {
	c.mu.Lock()
	cur := c.current.Load()
	s := EngineStats{
		LiveVersions:    len(c.live),
		Pages:           len(c.pages),
		PageSizeRecords: pageSize,
		COWBytesCopied:  c.cowBytesCopied.Load(),
		COWBytesShared:  c.cowBytesShared.Load(),
		ReclaimedBytes:  c.reclaimedBytes.Load(),
		PagesCopied:     c.pagesCopied.Load(),
		PagesRecycled:   c.pagesRecycled.Load(),

		TreeNodesCopied:    c.treeNodesCopied.Load(),
		TreeBytesCopied:    c.treeBytesCopied.Load(),
		TreeBytesShared:    c.treeBytesShared.Load(),
		TreeNodesReclaimed: c.treeNodesReclaimed.Load(),
		TreeBytesReclaimed: c.treeBytesReclaimed.Load(),
	}
	var oldest *version
	for _, v := range c.live {
		pins := int(v.pins.Load())
		if pins <= 0 {
			continue
		}
		s.PinnedSnapshots += pins
		if v != cur && (oldest == nil || v.seq < oldest.seq) {
			oldest = v
		}
	}
	c.mu.Unlock()
	if oldest != nil {
		s.OldestPinAge = time.Since(oldest.publishedAt)
		s.RetainedBytes = int64(oldest.dataSize)
	}
	return s
}

// Add folds another gauge set into s; the database and server stats use it to
// aggregate across collections.
func (s *EngineStats) Add(o EngineStats) {
	s.LiveVersions += o.LiveVersions
	s.PinnedSnapshots += o.PinnedSnapshots
	if o.OldestPinAge > s.OldestPinAge {
		s.OldestPinAge = o.OldestPinAge
		s.RetainedBytes = o.RetainedBytes
	}
	s.Pages += o.Pages
	s.PageSizeRecords = pageSize
	s.COWBytesCopied += o.COWBytesCopied
	s.COWBytesShared += o.COWBytesShared
	s.ReclaimedBytes += o.ReclaimedBytes
	s.PagesCopied += o.PagesCopied
	s.PagesRecycled += o.PagesRecycled
	s.TreeNodesCopied += o.TreeNodesCopied
	s.TreeBytesCopied += o.TreeBytesCopied
	s.TreeBytesShared += o.TreeBytesShared
	s.TreeNodesReclaimed += o.TreeNodesReclaimed
	s.TreeBytesReclaimed += o.TreeBytesReclaimed
}

// GC runs a full engine GC pass: every fully tombstoned page is examined, not
// just the incremental window. Tests and operational tooling use it to force
// reclamation without waiting for write traffic.
func (c *Collection) GC() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i <= len(c.pages)/gcPagesPerBatch; i++ {
		c.gcLocked()
	}
}

// COWBytesCopied returns the lifetime count of record bytes duplicated by
// page copies. It reads a single atomic, so the profiler can sample it
// around each bulk write to attribute copy cost to the batch without
// touching the collection mutex.
func (c *Collection) COWBytesCopied() int64 { return c.cowBytesCopied.Load() }
