package storage

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"docstore/internal/bson"
	"docstore/internal/query"
)

// TestIndexBackedCursorIsolationAcrossIndexDDL pins the version-owned index
// contract: an open index-backed cursor drains exactly its at-open set even
// when the very index serving it is dropped mid-drain, another index is
// built, and the matching set is rewritten. The cursor's position list and
// records both come from one pinned version whose frozen trees no DDL can
// touch.
func TestIndexBackedCursorIsolationAcrossIndexDDL(t *testing.T) {
	c := isolationSeed(t, 200)

	want, err := c.Find(bson.D("g", 3), FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want = cloneAll(want)

	cur, err := c.FindCursor(bson.D("g", 3), FindOptions{BatchSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	if cur.Plan().IndexUsed != "g_1" {
		t.Fatalf("expected an index scan, plan = %s", cur.Plan())
	}
	pinned := cur.Plan().SnapshotVersion
	got := cloneAll(cur.NextBatch())

	// Drop the index serving the open cursor, build a different one, and
	// rewrite the matching set.
	if !c.DropIndex("g_1") {
		t.Fatal("DropIndex g_1 reported missing")
	}
	if _, err := c.EnsureIndexDoc(bson.D("v", 1), false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.UpdateMany(bson.D("g", 3), bson.D("$set", bson.D("tag", "rewritten"))); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete(bson.D("g", 3, "v", bson.D("$gte", 100)), true); err != nil {
		t.Fatal(err)
	}

	for {
		b := cur.NextBatch()
		if len(b) == 0 {
			break
		}
		got = append(got, cloneAll(b)...)
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d docs across index DDL, want %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("doc %d differs after index DDL:\n got  %s\n want %s", i, got[i], want[i])
		}
	}

	// A fresh hint on the dropped index fails — it is gone from the current
	// version — while the same hint pinned to the pre-drop version still
	// plans against that version's frozen index set.
	var unknown *ErrUnknownIndex
	if _, err := c.Find(bson.D("g", 3), FindOptions{Hint: "g_1"}); !errors.As(err, &unknown) {
		t.Fatalf("hint on dropped index: %v, want ErrUnknownIndex", err)
	}
	docs, plan, err := c.FindWithPlan(bson.D("g", 3), FindOptions{Hint: "g_1", AtVersion: pinned})
	if err != nil {
		t.Fatalf("hint on dropped index at pinned version: %v", err)
	}
	if plan.IndexUsed != "g_1" || plan.SnapshotVersion != pinned {
		t.Fatalf("pinned-version plan = %s, want IXSCAN g_1 at version %d", plan, pinned)
	}
	if len(docs) != len(want) {
		t.Fatalf("pinned-version query returned %d docs, want %d", len(docs), len(want))
	}
}

// TestAtVersionSnapshotSession is the read-at-version (atClusterTime
// analogue) contract: a session anchors a version by holding its first
// query's cursor open, then issues follow-up queries pinned to that version
// while writes land; every result describes the anchored committed state.
// Once the anchor closes and the engine retires the version, the same
// request fails with ErrVersionRetired instead of silently reading newer
// state.
func TestAtVersionSnapshotSession(t *testing.T) {
	c := isolationSeed(t, 100)

	// First query of the session: note the version, keep the cursor open to
	// anchor it.
	anchor, err := c.FindCursor(bson.D("g", 1), FindOptions{BatchSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	v := anchor.Plan().SnapshotVersion
	if v <= 0 {
		t.Fatalf("anchor version = %d", v)
	}
	want, err := c.Find(bson.D("g", 1), FindOptions{AtVersion: v})
	if err != nil {
		t.Fatal(err)
	}
	want = cloneAll(want)

	// Writes land between the session's queries.
	if _, err := c.UpdateMany(bson.D("g", 1), bson.D("$set", bson.D("tag", "moved"), "$inc", bson.D("v", 500))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := c.Insert(bson.D(bson.IDKey, 5000+i, "g", 1, "v", i, "tag", "late")); err != nil {
			t.Fatal(err)
		}
	}

	// Follow-up queries at the anchored version: same result set, index
	// plan from the pinned version's frozen trees, mutually consistent with
	// each other.
	docs, plan, err := c.FindWithPlan(bson.D("g", 1), FindOptions{AtVersion: v})
	if err != nil {
		t.Fatal(err)
	}
	if plan.SnapshotVersion != v || plan.Isolation != IsolationSnapshot {
		t.Fatalf("at-version plan = %+v, want version %d at snapshot isolation", plan, v)
	}
	if plan.IndexUsed != "g_1" {
		t.Fatalf("at-version plan = %s, want IXSCAN g_1", plan)
	}
	if len(docs) != len(want) {
		t.Fatalf("at-version query returned %d docs, want the %d at-anchor docs", len(docs), len(want))
	}
	for i := range docs {
		if !docs[i].Equal(want[i]) {
			t.Fatalf("at-version doc %d drifted:\n got  %s\n want %s", i, docs[i], want[i])
		}
	}
	// A current-version read meanwhile sees the new state.
	now, err := c.Find(bson.D("g", 1), FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(now) != len(want)+30 {
		t.Fatalf("current read returned %d docs, want %d", len(now), len(want)+30)
	}

	// The anchor closes; after the next publishes and a GC the version is
	// retired and the session's pin fails loudly.
	anchor.Close()
	for i := 0; i < 5; i++ {
		if _, err := c.Insert(bson.D(bson.IDKey, 6000+i, "g", 2)); err != nil {
			t.Fatal(err)
		}
	}
	c.GC()
	var retired *ErrVersionRetired
	if _, err := c.Find(bson.D("g", 1), FindOptions{AtVersion: v}); !errors.As(err, &retired) {
		t.Fatalf("retired version read: %v, want ErrVersionRetired", err)
	}
	if retired.Collection != "iso" || retired.Version != v {
		t.Fatalf("ErrVersionRetired fields: %+v", retired)
	}
	// A version that never existed fails the same way.
	if _, err := c.Find(nil, FindOptions{AtVersion: 1 << 40}); !errors.As(err, &retired) {
		t.Fatalf("never-existed version read: %v, want ErrVersionRetired", err)
	}
}

// TestStressTreeSplitLockFreePlanners hammers the persistent index trees
// with writers inserting and deleting pairs of documents around ever-growing
// key ranges — forcing node splits, merges and path copies — while readers
// plan and run index-backed queries with zero locking. Each writer batch
// inserts or deletes exactly two documents sharing one indexed key, so any
// reader observing a half-applied batch — a position list from one version
// against records of another — shows up as an odd count. Run under -race in
// CI.
func TestStressTreeSplitLockFreePlanners(t *testing.T) {
	c := NewCollection("trees")
	// Seed enough distinct keys for a multi-level tree so writer traffic
	// splits and merges interior nodes, not just the root.
	const seedKeys = 1024
	ops := make([]WriteOp, seedKeys)
	for i := 0; i < seedKeys; i++ {
		ops[i] = InsertWriteOp(bson.D(bson.IDKey, fmt.Sprintf("seed-%d", i), "k", i, "pair", -1))
	}
	if res := c.BulkWrite(ops, BulkOptions{Ordered: true}); res.FirstError() != nil {
		t.Fatal(res.FirstError())
	}
	if _, err := c.EnsureIndexDoc(bson.D("k", 1), false); err != nil {
		t.Fatal(err)
	}

	const (
		writers      = 4
		readers      = 4
		opsPerWriter = 150
		reads        = 120
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := 100000 * (w + 1)
			for i := 0; i < opsPerWriter; i++ {
				k := base + i
				pair := []WriteOp{
					InsertWriteOp(bson.D(bson.IDKey, fmt.Sprintf("w%d-%d-a", w, i), "k", k, "pair", i)),
					InsertWriteOp(bson.D(bson.IDKey, fmt.Sprintf("w%d-%d-b", w, i), "k", k, "pair", i)),
				}
				if res := c.BulkWrite(pair, BulkOptions{Ordered: true}); res.FirstError() != nil {
					t.Errorf("writer %d insert pair %d: %v", w, i, res.FirstError())
					return
				}
				if i%3 == 2 {
					// Delete a whole earlier pair in one batch: both docs
					// share k, so the pair leaves atomically too.
					if res := c.BulkWrite([]WriteOp{DeleteWriteOp(bson.D("k", base+i-2), true)}, BulkOptions{Ordered: true}); res.FirstError() != nil {
						t.Errorf("writer %d delete pair: %v", w, res.FirstError())
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				w := (r + i) % writers
				base := 100000 * (w + 1)
				k := base + (i % opsPerWriter)
				docs, plan, err := c.FindWithPlan(bson.D("k", k), FindOptions{})
				if err != nil {
					t.Errorf("reader %d point: %v", r, err)
					return
				}
				if plan.IndexUsed != "k_1" {
					t.Errorf("reader %d point plan = %s, want IXSCAN k_1", r, plan)
					return
				}
				if len(docs)%2 != 0 {
					t.Errorf("reader %d saw a torn pair: %d docs for k=%d", r, len(docs), k)
					return
				}
				// Range scan across the writer's whole band: pairs in, pairs
				// out — any snapshot must hold an even count.
				docs, plan, err = c.FindWithPlan(
					bson.D("k", bson.D("$gte", base, "$lt", base+opsPerWriter)), FindOptions{})
				if err != nil {
					t.Errorf("reader %d range: %v", r, err)
					return
				}
				if plan.IndexUsed != "k_1" {
					t.Errorf("reader %d range plan = %s, want IXSCAN k_1", r, plan)
					return
				}
				if len(docs)%2 != 0 {
					t.Errorf("reader %d range saw odd count %d over writer %d's band", r, len(docs), w)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

// TestIndexTreeRetentionGauges is the stuck-cursor scenario for index
// memory: a pinned snapshot keeps retired tree nodes alive, the tree-COW
// gauges make the copying and the retention visible, and closing the pin
// lets the next GC account the nodes reclaimed.
func TestIndexTreeRetentionGauges(t *testing.T) {
	c := NewCollection("treegauges")
	const docs = 800
	ops := make([]WriteOp, docs)
	for i := 0; i < docs; i++ {
		ops[i] = InsertWriteOp(bson.D(bson.IDKey, fmt.Sprintf("doc-%d", i), "g", i%16, "v", 0))
	}
	if res := c.BulkWrite(ops, BulkOptions{Ordered: true}); res.FirstError() != nil {
		t.Fatal(res.FirstError())
	}
	if _, err := c.EnsureIndexDoc(bson.D("g", 1), false); err != nil {
		t.Fatal(err)
	}

	base := c.EngineStats()

	// The stuck cursor: an index-backed scan, opened and abandoned.
	cur, err := c.FindCursor(bson.D("g", 3), FindOptions{BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cur.Plan().IndexUsed != "g_1" {
		t.Fatalf("plan = %s, want IXSCAN g_1", cur.Plan())
	}
	if !cur.HasNext() {
		t.Fatal("cursor empty")
	}
	cur.Next()

	// An update stream on the indexed field: every batch removes and
	// re-inserts keys, path-copying tree nodes the pinned version still
	// references.
	for i := 1; i <= 400; i++ {
		spec := query.UpdateSpec{
			Query:  bson.D(bson.IDKey, fmt.Sprintf("doc-%d", i%docs)),
			Update: bson.D("$set", bson.D("g", (i*7)%16, "v", i)),
		}
		if _, err := c.Update(spec); err != nil {
			t.Fatal(err)
		}
	}

	st := c.EngineStats()
	copied := st.TreeNodesCopied - base.TreeNodesCopied
	if copied <= 0 || st.TreeBytesCopied <= base.TreeBytesCopied {
		t.Fatalf("TreeNodesCopied = %d, TreeBytesCopied = %d after an indexed update stream, want both rising",
			copied, st.TreeBytesCopied-base.TreeBytesCopied)
	}
	// Path copying shares the untouched subtrees, and the gauge proves it.
	if st.TreeBytesShared <= base.TreeBytesShared {
		t.Fatalf("TreeBytesShared stayed at %d under an indexed update stream, want rising", st.TreeBytesShared)
	}
	// The pin holds the superseded nodes: nothing retired since the open
	// may be reclaimed yet.
	if st.TreeNodesReclaimed != base.TreeNodesReclaimed {
		t.Fatalf("TreeNodesReclaimed moved %d -> %d with the cursor still pinning",
			base.TreeNodesReclaimed, st.TreeNodesReclaimed)
	}

	// The cursor dies; the next GC accounts the retired nodes reclaimed and
	// drains the retired-node ledger.
	cur.Close()
	c.GC()
	st = c.EngineStats()
	if st.TreeNodesReclaimed <= base.TreeNodesReclaimed || st.TreeBytesReclaimed <= base.TreeBytesReclaimed {
		t.Fatalf("TreeNodesReclaimed = %d, TreeBytesReclaimed = %d after close + GC, want both rising",
			st.TreeNodesReclaimed, st.TreeBytesReclaimed)
	}
	c.mu.Lock()
	left := len(c.retiredNodes)
	c.mu.Unlock()
	if left != 0 {
		t.Fatalf("%d retired-node sets left after unpinned GC, want 0", left)
	}

	// The live index still answers correctly.
	docs3, plan, err := c.FindWithPlan(bson.D("g", 3), FindOptions{})
	if err != nil || plan.IndexUsed != "g_1" {
		t.Fatalf("post-GC indexed read: %v, plan %s", err, plan)
	}
	for _, d := range docs3 {
		if g, _ := bson.AsInt(d.GetOr("g", nil)); g != 3 {
			t.Fatalf("post-GC indexed read returned g=%v", g)
		}
	}
}
