package storage

import (
	"errors"
	"testing"

	"docstore/internal/bson"
	"docstore/internal/query"
)

func TestBulkWriteMixedBatch(t *testing.T) {
	c := NewCollection("c")
	for i := 0; i < 5; i++ {
		if _, err := c.Insert(bson.D(bson.IDKey, i, "v", i)); err != nil {
			t.Fatal(err)
		}
	}
	res := c.BulkWrite([]WriteOp{
		InsertWriteOp(bson.D(bson.IDKey, 10, "v", 10)),
		UpdateWriteOp(query.UpdateSpec{Query: bson.D(bson.IDKey, 0), Update: bson.D("$set", bson.D("v", 100))}),
		DeleteWriteOp(bson.D(bson.IDKey, 1), false),
		UpdateWriteOp(query.UpdateSpec{Query: bson.D(bson.IDKey, 99), Update: bson.D("$set", bson.D("v", 1)), Upsert: true}),
	}, BulkOptions{})
	if res.FirstError() != nil {
		t.Fatalf("unexpected errors: %v", res.Errors)
	}
	if res.Inserted != 1 || res.Matched != 1 || res.Modified != 1 || res.Deleted != 1 || res.Upserted != 1 {
		t.Fatalf("result = %+v", res)
	}
	if res.Attempted != 4 {
		t.Fatalf("attempted = %d", res.Attempted)
	}
	if res.InsertedIDs[0] != int64(10) && res.InsertedIDs[0] != 10 {
		t.Fatalf("InsertedIDs[0] = %v", res.InsertedIDs[0])
	}
	if res.UpsertedIDs[3] == nil {
		t.Fatalf("UpsertedIDs[3] = nil, want upserted id")
	}
	if c.Count() != 6 { // 5 - 1 deleted + 1 inserted + 1 upserted
		t.Fatalf("count = %d", c.Count())
	}
	if d := c.FindID(0); d == nil || d.GetOr("v", nil) != int64(100) {
		t.Fatalf("update not applied: %v", d)
	}
	if c.FindID(1) != nil {
		t.Fatalf("delete not applied")
	}
}

func TestBulkWriteEmptyBatch(t *testing.T) {
	c := NewCollection("c")
	for _, ordered := range []bool{true, false} {
		res := c.BulkWrite(nil, BulkOptions{Ordered: ordered})
		if res.Attempted != 0 || len(res.Errors) != 0 || res.InsertedIDs != nil {
			t.Fatalf("ordered=%v: empty batch result = %+v", ordered, res)
		}
	}
	if c.Count() != 0 {
		t.Fatalf("empty batch changed the collection")
	}
}

// TestBulkWriteDuplicateIDOrderedVsUnordered pins the mid-batch failure
// semantics: ordered stops at the eighth op (the duplicate), unordered
// executes everything else and reports the one failure.
func TestBulkWriteDuplicateIDOrderedVsUnordered(t *testing.T) {
	docs := func() []*bson.Doc {
		out := make([]*bson.Doc, 10)
		for i := range out {
			id := i
			if i == 7 {
				id = 0 // duplicate of the first document
			}
			out[i] = bson.D(bson.IDKey, id, "v", i)
		}
		return out
	}

	ordered := NewCollection("ordered")
	res := ordered.BulkWrite(InsertOps(docs()), BulkOptions{Ordered: true})
	if res.Inserted != 7 || res.Attempted != 8 || len(res.Errors) != 1 {
		t.Fatalf("ordered result = %+v", res)
	}
	if res.Errors[0].Index != 7 {
		t.Fatalf("ordered error index = %d", res.Errors[0].Index)
	}
	var dup *ErrDuplicateID
	if !errors.As(res.Errors[0].Err, &dup) {
		t.Fatalf("ordered error = %v, want ErrDuplicateID", res.Errors[0].Err)
	}
	if ordered.Count() != 7 {
		t.Fatalf("ordered count = %d, ops after the failure must not run", ordered.Count())
	}

	unordered := NewCollection("unordered")
	res = unordered.BulkWrite(InsertOps(docs()), BulkOptions{})
	if res.Inserted != 9 || res.Attempted != 10 || len(res.Errors) != 1 || res.Errors[0].Index != 7 {
		t.Fatalf("unordered result = %+v", res)
	}
	if unordered.Count() != 9 {
		t.Fatalf("unordered count = %d, ops after the failure must still run", unordered.Count())
	}
	// The failed slot stays nil; every other id is reported in order.
	for i, id := range res.InsertedIDs {
		if (id == nil) != (i == 7) {
			t.Fatalf("InsertedIDs[%d] = %v", i, id)
		}
	}
}

// TestInsertManyEquivalentToInsertLoop proves the InsertMany wrapper over
// the bulk engine behaves exactly like the per-document insert loop: same
// ids in document order, same stored state, same stop-at-first-error
// prefix semantics.
func TestInsertManyEquivalentToInsertLoop(t *testing.T) {
	docs := func() []*bson.Doc {
		out := make([]*bson.Doc, 50)
		for i := range out {
			out[i] = bson.D(bson.IDKey, i, "v", i*i)
		}
		return out
	}

	loop := NewCollection("loop")
	var loopIDs []any
	for _, d := range docs() {
		id, err := loop.Insert(d)
		if err != nil {
			t.Fatal(err)
		}
		loopIDs = append(loopIDs, id)
	}
	bulk := NewCollection("bulk")
	bulkIDs, err := bulk.InsertMany(docs())
	if err != nil {
		t.Fatal(err)
	}
	if len(bulkIDs) != len(loopIDs) {
		t.Fatalf("InsertMany returned %d ids, loop %d", len(bulkIDs), len(loopIDs))
	}
	for i := range loopIDs {
		if bson.Compare(bulkIDs[i], loopIDs[i]) != 0 {
			t.Fatalf("id %d differs: %v vs %v", i, bulkIDs[i], loopIDs[i])
		}
	}
	loopDocs, _ := loop.FindAll(nil)
	bulkDocs, _ := bulk.FindAll(nil)
	if len(loopDocs) != len(bulkDocs) {
		t.Fatalf("stored %d vs %d docs", len(bulkDocs), len(loopDocs))
	}
	for i := range loopDocs {
		if string(bson.Marshal(loopDocs[i])) != string(bson.Marshal(bulkDocs[i])) {
			t.Fatalf("doc %d differs between loop and bulk insert", i)
		}
	}

	// Error path: stop at the duplicate, return the prior ids, surface the
	// storage error type unwrapped.
	partial := NewCollection("partial")
	ids, err := partial.InsertMany([]*bson.Doc{
		bson.D(bson.IDKey, 1), bson.D(bson.IDKey, 2), bson.D(bson.IDKey, 1), bson.D(bson.IDKey, 3),
	})
	var dup *ErrDuplicateID
	if err == nil || !errors.As(err, &dup) {
		t.Fatalf("err = %v, want ErrDuplicateID", err)
	}
	if len(ids) != 2 || partial.Count() != 2 {
		t.Fatalf("partial insert: ids=%v count=%d", ids, partial.Count())
	}
}

// TestBulkWriteAmortizedMaintenance checks the batch-level maintenance: the
// record array grows once for the batch and a delete-heavy bulk compacts at
// most once, at the end.
func TestBulkWriteAmortizedMaintenance(t *testing.T) {
	c := NewCollection("c")
	docs := make([]*bson.Doc, 500)
	for i := range docs {
		docs[i] = bson.D(bson.IDKey, i)
	}
	res := c.BulkWrite(InsertOps(docs), BulkOptions{})
	if res.Inserted != 500 {
		t.Fatalf("inserted %d", res.Inserted)
	}
	if got := cap(c.pages) * pageSize; got < 500 {
		t.Fatalf("record capacity %d not reserved", got)
	}
	// A follow-up batch grows geometrically (at least doubling), so repeated
	// InsertMany batches do not copy the whole array once per batch.
	more := make([]*bson.Doc, 100)
	for i := range more {
		more[i] = bson.D(bson.IDKey, 500+i)
	}
	if res := c.BulkWrite(InsertOps(more), BulkOptions{}); res.Inserted != 100 {
		t.Fatalf("second batch inserted %d", res.Inserted)
	}
	if got, want := cap(c.pages)*pageSize, 1000; got < want {
		t.Fatalf("record capacity %d after second reserve, want >= %d (geometric growth)", got, want)
	}

	// Delete 400 of 600 in one bulk: tombstones exceed half the records, so
	// the trailing compaction must have rewritten the array.
	ops := make([]WriteOp, 400)
	for i := range ops {
		ops[i] = DeleteWriteOp(bson.D(bson.IDKey, i), false)
	}
	res = c.BulkWrite(ops, BulkOptions{})
	if res.Deleted != 400 {
		t.Fatalf("deleted %d", res.Deleted)
	}
	c.mu.Lock()
	records, tombs := c.length, c.tombs
	c.mu.Unlock()
	if tombs != 0 || records != 200 {
		t.Fatalf("post-bulk compaction: records=%d tombs=%d", records, tombs)
	}
	if c.Count() != 200 {
		t.Fatalf("count = %d", c.Count())
	}
}

// TestBulkWriteUniqueIndexRollback verifies per-op unique-index failures are
// attributed and do not corrupt index state for later ops.
func TestBulkWriteUniqueIndexAttribution(t *testing.T) {
	c := NewCollection("c")
	if _, err := c.EnsureIndexDoc(bson.D("u", 1), true); err != nil {
		t.Fatal(err)
	}
	res := c.BulkWrite([]WriteOp{
		InsertWriteOp(bson.D(bson.IDKey, 1, "u", "a")),
		InsertWriteOp(bson.D(bson.IDKey, 2, "u", "a")), // unique violation
		InsertWriteOp(bson.D(bson.IDKey, 3, "u", "b")),
	}, BulkOptions{})
	if res.Inserted != 2 || len(res.Errors) != 1 || res.Errors[0].Index != 1 {
		t.Fatalf("result = %+v", res)
	}
	if c.Count() != 2 || c.FindID(2) != nil {
		t.Fatalf("failed op left state behind: count=%d", c.Count())
	}
	docs, err := c.Find(bson.D("u", "b"), FindOptions{})
	if err != nil || len(docs) != 1 {
		t.Fatalf("index lookup after failed op: %d, %v", len(docs), err)
	}
}
