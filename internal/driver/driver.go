// Package driver provides the client abstraction the thesis' Java programs
// use: a uniform set of collection operations (find, insert, update,
// aggregate, index management) that works identically against a stand-alone
// server and against a sharded cluster's query router. The data-migration,
// denormalization and query-translation algorithms are all written against
// this interface, so each experiment only swaps the deployment underneath.
package driver

import (
	"docstore/internal/aggregate"
	"docstore/internal/bson"
	"docstore/internal/changestream"
	"docstore/internal/mongod"
	"docstore/internal/mongos"
	"docstore/internal/query"
	"docstore/internal/storage"
)

// Cursor is the streaming result interface the driver exposes: the
// aggregation engine's iterator, implemented by the stand-alone server's
// storage cursors and by the query router's shard-merge cursors alike.
type Cursor = aggregate.Iterator

// Store is the full operation set the algorithms need from a deployment:
// slice and cursor reads, scalar and bulk writes, aggregation, change
// streams, and index/collection management. Both deployment adapters
// implement every method; what may vary at runtime is whether a capability
// is usable (change streams require durability on the underlying servers),
// which Capabilities reports without a single type assertion.
//
// Historical note: this interface used to be a ladder — a minimal Store plus
// CursorStore/BulkStore/WatchStore extensions that callers discovered by
// type-asserting. The ladder collapsed into this one interface; the old
// names remain as deprecated aliases for one release.
type Store interface {
	// Name identifies the deployment ("stand-alone" or "sharded").
	Name() string
	// Find returns documents matching filter.
	Find(coll string, filter *bson.Doc, opts storage.FindOptions) ([]*bson.Doc, error)
	// FindCursor streams documents matching filter; batch size comes from
	// opts.BatchSize (zero = storage.DefaultBatchSize).
	FindCursor(coll string, filter *bson.Doc, opts storage.FindOptions) (Cursor, error)
	// Insert adds one document.
	Insert(coll string, doc *bson.Doc) (any, error)
	// InsertMany adds a batch of documents, returning the inserted ids in
	// document order. Both adapters route it through the bulk-write engine;
	// on a mid-batch failure the stand-alone adapter stops at the failing
	// document (ordered) while the sharded adapter still attempts the
	// remaining per-shard sub-batches in parallel (unordered) — callers that
	// need an exact partial-state guarantee on error should use BulkWrite
	// with an explicit ordered mode.
	InsertMany(coll string, docs []*bson.Doc) ([]any, error)
	// BulkWrite executes a mixed batch of inserts/updates/deletes with
	// per-op error attribution; opts selects ordered or unordered mode and
	// the writeConcern (opts.Journaled is {j: true}: against a durable
	// deployment the batch is acknowledged only once its write-ahead-log
	// record is fsynced — the sharded adapter propagates it to every
	// per-shard sub-batch).
	BulkWrite(coll string, ops []storage.WriteOp, opts storage.BulkOptions) storage.BulkResult
	// Update applies an update specification (query, update, upsert, multi).
	Update(coll string, spec query.UpdateSpec) (storage.UpdateResult, error)
	// Aggregate runs an aggregation pipeline.
	Aggregate(coll string, stages []*bson.Doc) ([]*bson.Doc, error)
	// AggregateCursor streams the results of an aggregation pipeline.
	AggregateCursor(coll string, stages []*bson.Doc) (Cursor, error)
	// Watch opens a change stream over a collection (coll == "" watches
	// the whole database): a live, resumable feed of committed writes.
	// pipeline is an optional list of $match stages evaluated per event;
	// resumeAfter, when non-empty, is a token from a previous stream's
	// ResumeToken — the deployment-matching format (per-server token
	// stand-alone, composite token sharded). Requires durability on the
	// underlying server(s); Capabilities reports whether it is available
	// without opening one.
	Watch(coll string, pipeline []*bson.Doc, resumeAfter string) (changestream.Stream, error)
	// Count returns the number of documents matching filter.
	Count(coll string, filter *bson.Doc) (int, error)
	// EnsureIndex creates an index.
	EnsureIndex(coll string, spec *bson.Doc, unique bool) error
	// DropCollection removes a collection.
	DropCollection(coll string) bool
	// DataSizeBytes returns the total stored size of a collection across the
	// deployment, used for selectivity and working-set reporting.
	DataSizeBytes(coll string) int64
}

// CursorStore is the streaming-reads facet of the old interface ladder.
//
// Deprecated: every Store streams; use Store and driver.Capabilities.
type CursorStore = Store

// BulkStore is the bulk-writes facet of the old interface ladder.
//
// Deprecated: every Store bulk-writes; use Store and driver.Capabilities.
type BulkStore = Store

// WatchStore is the change-streams facet of the old interface ladder.
//
// Deprecated: use Store and check driver.Capabilities(s).Watch.
type WatchStore = Store

var (
	_ Store = (*Standalone)(nil)
	_ Store = (*Sharded)(nil)
)

// CapabilitySet reports which optional behaviours of a Store are usable
// right now against its deployment. Interface satisfaction alone cannot say
// this — every Store has a Watch method, but change streams only work when
// the underlying servers run durable — so capability discovery is a runtime
// question, answered here, instead of a compile-time type-assertion ladder.
type CapabilitySet struct {
	// Cursors: FindCursor/AggregateCursor stream in batches.
	Cursors bool
	// Bulk: BulkWrite executes mixed batches with per-op attribution.
	Bulk bool
	// Watch: change streams can be opened (requires durability on every
	// underlying server of the deployment).
	Watch bool
}

// String renders the set compactly, e.g. "cursors,bulk" or "none".
func (c CapabilitySet) String() string {
	s := ""
	for _, f := range []struct {
		on   bool
		name string
	}{{c.Cursors, "cursors"}, {c.Bulk, "bulk"}, {c.Watch, "watch"}} {
		if !f.on {
			continue
		}
		if s != "" {
			s += ","
		}
		s += f.name
	}
	if s == "" {
		return "none"
	}
	return s
}

// CapabilityReporter is implemented by stores that can report their own
// capability set; both adapters of this package do. Stores without it are
// assumed fully capable (they implement every Store method, after all) —
// the report exists to catch the cases where a method would fail at runtime.
type CapabilityReporter interface {
	Capabilities() CapabilitySet
}

// Capabilities reports what the store supports against its current
// deployment. It replaces the CursorStore/BulkStore/WatchStore
// type-assertion ladder: instead of asking "does this value have the
// method", callers ask "will the method work".
func Capabilities(s Store) CapabilitySet {
	if r, ok := s.(CapabilityReporter); ok {
		return r.Capabilities()
	}
	return CapabilitySet{Cursors: true, Bulk: true, Watch: true}
}

// Standalone adapts a database on a single server to the Store interface.
type Standalone struct {
	DB *mongod.Database
}

// NewStandalone wraps a database of a stand-alone server.
func NewStandalone(db *mongod.Database) *Standalone { return &Standalone{DB: db} }

// Name implements Store.
func (s *Standalone) Name() string { return "stand-alone" }

// Capabilities implements CapabilityReporter: cursors and bulk writes are
// native; change streams require the server to run durable.
func (s *Standalone) Capabilities() CapabilitySet {
	return CapabilitySet{Cursors: true, Bulk: true, Watch: s.DB.Server().DurabilityEnabled()}
}

// Find implements Store.
func (s *Standalone) Find(coll string, filter *bson.Doc, opts storage.FindOptions) ([]*bson.Doc, error) {
	return s.DB.Find(coll, filter, opts)
}

// Insert implements Store.
func (s *Standalone) Insert(coll string, doc *bson.Doc) (any, error) { return s.DB.Insert(coll, doc) }

// InsertMany implements Store.
func (s *Standalone) InsertMany(coll string, docs []*bson.Doc) ([]any, error) {
	return s.DB.InsertMany(coll, docs)
}

// BulkWrite implements Store.
func (s *Standalone) BulkWrite(coll string, ops []storage.WriteOp, opts storage.BulkOptions) storage.BulkResult {
	return s.DB.BulkWrite(coll, ops, opts)
}

// Update implements Store.
func (s *Standalone) Update(coll string, spec query.UpdateSpec) (storage.UpdateResult, error) {
	return s.DB.Update(coll, spec)
}

// Aggregate implements Store.
func (s *Standalone) Aggregate(coll string, stages []*bson.Doc) ([]*bson.Doc, error) {
	return s.DB.Aggregate(coll, stages)
}

// FindCursor implements Store.
func (s *Standalone) FindCursor(coll string, filter *bson.Doc, opts storage.FindOptions) (Cursor, error) {
	cur, err := s.DB.FindCursor(coll, filter, opts)
	if err != nil {
		return nil, err
	}
	return mongod.Iter(cur), nil
}

// AggregateCursor implements Store.
func (s *Standalone) AggregateCursor(coll string, stages []*bson.Doc) (Cursor, error) {
	return s.DB.AggregateCursor(coll, stages)
}

// Watch implements Store.
func (s *Standalone) Watch(coll string, pipeline []*bson.Doc, resumeAfter string) (changestream.Stream, error) {
	return s.DB.Server().Watch(s.DB.Name(), coll, mongod.WatchOptions{Pipeline: pipeline, ResumeAfter: resumeAfter})
}

// Count implements Store.
func (s *Standalone) Count(coll string, filter *bson.Doc) (int, error) {
	return s.DB.Collection(coll).CountDocs(filter)
}

// EnsureIndex implements Store.
func (s *Standalone) EnsureIndex(coll string, spec *bson.Doc, unique bool) error {
	_, err := s.DB.EnsureIndex(coll, spec, unique)
	return err
}

// DropCollection implements Store.
func (s *Standalone) DropCollection(coll string) bool { return s.DB.DropCollection(coll) }

// DataSizeBytes implements Store.
func (s *Standalone) DataSizeBytes(coll string) int64 {
	return int64(s.DB.Collection(coll).DataSize())
}

// Sharded adapts a database reached through a cluster's query router.
type Sharded struct {
	Router *mongos.Router
	DBName string
}

// NewSharded wraps a database behind a query router.
func NewSharded(router *mongos.Router, dbName string) *Sharded {
	return &Sharded{Router: router, DBName: dbName}
}

// Name implements Store.
func (s *Sharded) Name() string { return "sharded" }

// Capabilities implements CapabilityReporter: a cluster-wide change stream
// needs every shard durable (the merge has no token for a shard that cannot
// produce events).
func (s *Sharded) Capabilities() CapabilitySet {
	c := CapabilitySet{Cursors: true, Bulk: true, Watch: true}
	names := s.Router.ShardNames()
	if len(names) == 0 {
		c.Watch = false
		return c
	}
	for _, name := range names {
		if !s.Router.Shard(name).DurabilityEnabled() {
			c.Watch = false
			break
		}
	}
	return c
}

// Find implements Store.
func (s *Sharded) Find(coll string, filter *bson.Doc, opts storage.FindOptions) ([]*bson.Doc, error) {
	return s.Router.Find(s.DBName, coll, filter, opts)
}

// Insert implements Store.
func (s *Sharded) Insert(coll string, doc *bson.Doc) (any, error) {
	return s.Router.Insert(s.DBName, coll, doc)
}

// InsertMany implements Store.
func (s *Sharded) InsertMany(coll string, docs []*bson.Doc) ([]any, error) {
	return s.Router.InsertMany(s.DBName, coll, docs)
}

// BulkWrite implements Store.
func (s *Sharded) BulkWrite(coll string, ops []storage.WriteOp, opts storage.BulkOptions) storage.BulkResult {
	return s.Router.BulkWrite(s.DBName, coll, ops, opts)
}

// Update implements Store.
func (s *Sharded) Update(coll string, spec query.UpdateSpec) (storage.UpdateResult, error) {
	return s.Router.Update(s.DBName, coll, spec)
}

// Aggregate implements Store.
func (s *Sharded) Aggregate(coll string, stages []*bson.Doc) ([]*bson.Doc, error) {
	return s.Router.Aggregate(s.DBName, coll, stages)
}

// FindCursor implements Store.
func (s *Sharded) FindCursor(coll string, filter *bson.Doc, opts storage.FindOptions) (Cursor, error) {
	cur, err := s.Router.FindCursor(s.DBName, coll, filter, opts)
	if err != nil {
		return nil, err
	}
	return cur, nil
}

// AggregateCursor implements Store.
func (s *Sharded) AggregateCursor(coll string, stages []*bson.Doc) (Cursor, error) {
	return s.Router.AggregateCursor(s.DBName, coll, stages)
}

// Watch implements Store.
func (s *Sharded) Watch(coll string, pipeline []*bson.Doc, resumeAfter string) (changestream.Stream, error) {
	return s.Router.Watch(s.DBName, coll, pipeline, resumeAfter)
}

// Count implements Store.
func (s *Sharded) Count(coll string, filter *bson.Doc) (int, error) {
	return s.Router.Count(s.DBName, coll, filter)
}

// EnsureIndex implements Store.
func (s *Sharded) EnsureIndex(coll string, spec *bson.Doc, unique bool) error {
	return s.Router.EnsureIndex(s.DBName, coll, spec, unique)
}

// DropCollection implements Store.
func (s *Sharded) DropCollection(coll string) bool {
	dropped := false
	for _, name := range s.Router.ShardNames() {
		if s.Router.Shard(name).Database(s.DBName).DropCollection(coll) {
			dropped = true
		}
	}
	return dropped
}

// DataSizeBytes implements Store.
func (s *Sharded) DataSizeBytes(coll string) int64 {
	var total int64
	for _, name := range s.Router.ShardNames() {
		total += int64(s.Router.Shard(name).Database(s.DBName).Collection(coll).DataSize())
	}
	return total
}
