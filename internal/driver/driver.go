// Package driver provides the client abstraction the thesis' Java programs
// use: a uniform set of collection operations (find, insert, update,
// aggregate, index management) that works identically against a stand-alone
// server and against a sharded cluster's query router. The data-migration,
// denormalization and query-translation algorithms are all written against
// this interface, so each experiment only swaps the deployment underneath.
package driver

import (
	"docstore/internal/aggregate"
	"docstore/internal/bson"
	"docstore/internal/changestream"
	"docstore/internal/mongod"
	"docstore/internal/mongos"
	"docstore/internal/query"
	"docstore/internal/storage"
)

// Cursor is the streaming result interface the driver exposes: the
// aggregation engine's iterator, implemented by the stand-alone server's
// storage cursors and by the query router's shard-merge cursors alike.
type Cursor = aggregate.Iterator

// CursorStore is implemented by deployments that can stream results in
// cursor batches instead of materializing them. Both deployment adapters of
// this package implement it; algorithms that can stream should type-assert
// from Store to CursorStore and fall back to the slice APIs otherwise.
type CursorStore interface {
	Store
	// FindCursor streams documents matching filter; batch size comes from
	// opts.BatchSize (zero = storage.DefaultBatchSize).
	FindCursor(coll string, filter *bson.Doc, opts storage.FindOptions) (Cursor, error)
	// AggregateCursor streams the results of an aggregation pipeline.
	AggregateCursor(coll string, stages []*bson.Doc) (Cursor, error)
}

// BulkStore is implemented by deployments that can execute a mixed batch of
// writes in one round trip per target server. Both deployment adapters of
// this package implement it; loaders that can batch should type-assert from
// Store to BulkStore and fall back to the scalar APIs otherwise.
type BulkStore interface {
	Store
	// BulkWrite executes a mixed batch of inserts/updates/deletes with
	// per-op error attribution; opts selects ordered or unordered mode and
	// the writeConcern (opts.Journaled is {j: true}: against a durable
	// deployment the batch is acknowledged only once its write-ahead-log
	// record is fsynced — the sharded adapter propagates it to every
	// per-shard sub-batch).
	BulkWrite(coll string, ops []storage.WriteOp, opts storage.BulkOptions) storage.BulkResult
}

// WatchStore is implemented by deployments that can open change streams:
// live, resumable feeds of committed writes. Both deployment adapters
// implement it — the stand-alone adapter over the server's WAL tail, the
// sharded adapter as a cluster-wide merge of per-shard streams with a
// composite resume token. Reactive consumers (cache invalidation, search
// indexing) type-assert from Store to WatchStore and fall back to polling
// otherwise.
type WatchStore interface {
	Store
	// Watch opens a change stream over a collection (coll == "" watches
	// the whole database). pipeline is an optional list of $match stages
	// evaluated per event; resumeAfter, when non-empty, is a token from a
	// previous stream's ResumeToken — the deployment-matching format
	// (per-server token stand-alone, composite token sharded). Requires
	// durability on the underlying server(s).
	Watch(coll string, pipeline []*bson.Doc, resumeAfter string) (changestream.Stream, error)
}

var (
	_ CursorStore = (*Standalone)(nil)
	_ CursorStore = (*Sharded)(nil)
	_ BulkStore   = (*Standalone)(nil)
	_ BulkStore   = (*Sharded)(nil)
	_ WatchStore  = (*Standalone)(nil)
	_ WatchStore  = (*Sharded)(nil)
)

// Store is the operation set the algorithms need from a deployment.
type Store interface {
	// Name identifies the deployment ("stand-alone" or "sharded").
	Name() string
	// Find returns documents matching filter.
	Find(coll string, filter *bson.Doc, opts storage.FindOptions) ([]*bson.Doc, error)
	// Insert adds one document.
	Insert(coll string, doc *bson.Doc) (any, error)
	// InsertMany adds a batch of documents, returning the inserted ids in
	// document order. Both adapters route it through the bulk-write engine;
	// on a mid-batch failure the stand-alone adapter stops at the failing
	// document (ordered) while the sharded adapter still attempts the
	// remaining per-shard sub-batches in parallel (unordered) — callers that
	// need an exact partial-state guarantee on error should use BulkStore
	// with an explicit ordered mode.
	InsertMany(coll string, docs []*bson.Doc) ([]any, error)
	// Update applies an update specification (query, update, upsert, multi).
	Update(coll string, spec query.UpdateSpec) (storage.UpdateResult, error)
	// Aggregate runs an aggregation pipeline.
	Aggregate(coll string, stages []*bson.Doc) ([]*bson.Doc, error)
	// Count returns the number of documents matching filter.
	Count(coll string, filter *bson.Doc) (int, error)
	// EnsureIndex creates an index.
	EnsureIndex(coll string, spec *bson.Doc, unique bool) error
	// DropCollection removes a collection.
	DropCollection(coll string) bool
	// DataSizeBytes returns the total stored size of a collection across the
	// deployment, used for selectivity and working-set reporting.
	DataSizeBytes(coll string) int64
}

// Standalone adapts a database on a single server to the Store interface.
type Standalone struct {
	DB *mongod.Database
}

// NewStandalone wraps a database of a stand-alone server.
func NewStandalone(db *mongod.Database) *Standalone { return &Standalone{DB: db} }

// Name implements Store.
func (s *Standalone) Name() string { return "stand-alone" }

// Find implements Store.
func (s *Standalone) Find(coll string, filter *bson.Doc, opts storage.FindOptions) ([]*bson.Doc, error) {
	return s.DB.Find(coll, filter, opts)
}

// Insert implements Store.
func (s *Standalone) Insert(coll string, doc *bson.Doc) (any, error) { return s.DB.Insert(coll, doc) }

// InsertMany implements Store.
func (s *Standalone) InsertMany(coll string, docs []*bson.Doc) ([]any, error) {
	return s.DB.InsertMany(coll, docs)
}

// BulkWrite implements BulkStore.
func (s *Standalone) BulkWrite(coll string, ops []storage.WriteOp, opts storage.BulkOptions) storage.BulkResult {
	return s.DB.BulkWrite(coll, ops, opts)
}

// Update implements Store.
func (s *Standalone) Update(coll string, spec query.UpdateSpec) (storage.UpdateResult, error) {
	return s.DB.Update(coll, spec)
}

// Aggregate implements Store.
func (s *Standalone) Aggregate(coll string, stages []*bson.Doc) ([]*bson.Doc, error) {
	return s.DB.Aggregate(coll, stages)
}

// FindCursor implements CursorStore.
func (s *Standalone) FindCursor(coll string, filter *bson.Doc, opts storage.FindOptions) (Cursor, error) {
	cur, err := s.DB.FindCursor(coll, filter, opts)
	if err != nil {
		return nil, err
	}
	return mongod.Iter(cur), nil
}

// AggregateCursor implements CursorStore.
func (s *Standalone) AggregateCursor(coll string, stages []*bson.Doc) (Cursor, error) {
	return s.DB.AggregateCursor(coll, stages)
}

// Watch implements WatchStore.
func (s *Standalone) Watch(coll string, pipeline []*bson.Doc, resumeAfter string) (changestream.Stream, error) {
	return s.DB.Server().Watch(s.DB.Name(), coll, mongod.WatchOptions{Pipeline: pipeline, ResumeAfter: resumeAfter})
}

// Count implements Store.
func (s *Standalone) Count(coll string, filter *bson.Doc) (int, error) {
	return s.DB.Collection(coll).CountDocs(filter)
}

// EnsureIndex implements Store.
func (s *Standalone) EnsureIndex(coll string, spec *bson.Doc, unique bool) error {
	_, err := s.DB.EnsureIndex(coll, spec, unique)
	return err
}

// DropCollection implements Store.
func (s *Standalone) DropCollection(coll string) bool { return s.DB.DropCollection(coll) }

// DataSizeBytes implements Store.
func (s *Standalone) DataSizeBytes(coll string) int64 {
	return int64(s.DB.Collection(coll).DataSize())
}

// Sharded adapts a database reached through a cluster's query router.
type Sharded struct {
	Router *mongos.Router
	DBName string
}

// NewSharded wraps a database behind a query router.
func NewSharded(router *mongos.Router, dbName string) *Sharded {
	return &Sharded{Router: router, DBName: dbName}
}

// Name implements Store.
func (s *Sharded) Name() string { return "sharded" }

// Find implements Store.
func (s *Sharded) Find(coll string, filter *bson.Doc, opts storage.FindOptions) ([]*bson.Doc, error) {
	return s.Router.Find(s.DBName, coll, filter, opts)
}

// Insert implements Store.
func (s *Sharded) Insert(coll string, doc *bson.Doc) (any, error) {
	return s.Router.Insert(s.DBName, coll, doc)
}

// InsertMany implements Store.
func (s *Sharded) InsertMany(coll string, docs []*bson.Doc) ([]any, error) {
	return s.Router.InsertMany(s.DBName, coll, docs)
}

// BulkWrite implements BulkStore.
func (s *Sharded) BulkWrite(coll string, ops []storage.WriteOp, opts storage.BulkOptions) storage.BulkResult {
	return s.Router.BulkWrite(s.DBName, coll, ops, opts)
}

// Update implements Store.
func (s *Sharded) Update(coll string, spec query.UpdateSpec) (storage.UpdateResult, error) {
	return s.Router.Update(s.DBName, coll, spec)
}

// Aggregate implements Store.
func (s *Sharded) Aggregate(coll string, stages []*bson.Doc) ([]*bson.Doc, error) {
	return s.Router.Aggregate(s.DBName, coll, stages)
}

// FindCursor implements CursorStore.
func (s *Sharded) FindCursor(coll string, filter *bson.Doc, opts storage.FindOptions) (Cursor, error) {
	cur, err := s.Router.FindCursor(s.DBName, coll, filter, opts)
	if err != nil {
		return nil, err
	}
	return cur, nil
}

// AggregateCursor implements CursorStore.
func (s *Sharded) AggregateCursor(coll string, stages []*bson.Doc) (Cursor, error) {
	return s.Router.AggregateCursor(s.DBName, coll, stages)
}

// Watch implements WatchStore.
func (s *Sharded) Watch(coll string, pipeline []*bson.Doc, resumeAfter string) (changestream.Stream, error) {
	return s.Router.Watch(s.DBName, coll, pipeline, resumeAfter)
}

// Count implements Store.
func (s *Sharded) Count(coll string, filter *bson.Doc) (int, error) {
	return s.Router.Count(s.DBName, coll, filter)
}

// EnsureIndex implements Store.
func (s *Sharded) EnsureIndex(coll string, spec *bson.Doc, unique bool) error {
	return s.Router.EnsureIndex(s.DBName, coll, spec, unique)
}

// DropCollection implements Store.
func (s *Sharded) DropCollection(coll string) bool {
	dropped := false
	for _, name := range s.Router.ShardNames() {
		if s.Router.Shard(name).Database(s.DBName).DropCollection(coll) {
			dropped = true
		}
	}
	return dropped
}

// DataSizeBytes implements Store.
func (s *Sharded) DataSizeBytes(coll string) int64 {
	var total int64
	for _, name := range s.Router.ShardNames() {
		total += int64(s.Router.Shard(name).Database(s.DBName).Collection(coll).DataSize())
	}
	return total
}
