package driver

import (
	"testing"

	"docstore/internal/mongod"
	"docstore/internal/mongos"
	"docstore/internal/sharding"
)

// TestCapabilitiesTrackDurability checks the capability-discovery API that
// replaced the type-assertion ladder: cursor and bulk support are universal,
// watch support follows the deployment's durability at runtime.
func TestCapabilitiesTrackDurability(t *testing.T) {
	server := mongod.NewServer(mongod.Options{})
	store := NewStandalone(server.Database("app"))

	// The deprecated aliases must stay assignable for one release.
	var _ CursorStore = store
	var _ BulkStore = store
	var _ WatchStore = store

	caps := Capabilities(store)
	if !caps.Cursors || !caps.Bulk {
		t.Fatalf("capabilities = %s, want cursors and bulk always on", caps)
	}
	if caps.Watch {
		t.Fatalf("capabilities = %s: watch reported against a non-durable server", caps)
	}
	if got, want := caps.String(), "cursors,bulk"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}

	if _, err := server.EnableDurability(mongod.Durability{Dir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	defer server.CloseDurability()
	if caps := Capabilities(store); !caps.Watch {
		t.Fatalf("capabilities = %s after EnableDurability, want watch", caps)
	}

	// A sharded deployment only watches when every shard is durable.
	router := mongos.NewRouter(sharding.NewConfigServer(), mongos.Options{})
	router.AddShard("Shard1", server)
	router.AddShard("Shard2", mongod.NewServer(mongod.Options{Name: "Shard2"}))
	sharded := NewSharded(router, "app")
	if caps := Capabilities(sharded); caps.Watch {
		t.Fatalf("capabilities = %s with one non-durable shard, want no watch", caps)
	}
}
