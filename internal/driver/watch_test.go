package driver

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"docstore/internal/bson"
	"docstore/internal/mongod"
	"docstore/internal/mongos"
	"docstore/internal/sharding"
)

// TestWatchStoreBothAdapters checks the deployment-independent change-stream
// interface: the same reactive consumer code observes writes issued through
// the Store API on a stand-alone server and on a sharded cluster alike.
func TestWatchStoreBothAdapters(t *testing.T) {
	dir := t.TempDir()

	standalone := mongod.NewServer(mongod.Options{})
	if _, err := standalone.EnableDurability(mongod.Durability{Dir: filepath.Join(dir, "standalone")}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { standalone.CloseDurability() })

	router := mongos.NewRouter(sharding.NewConfigServer(), mongos.Options{Parallel: true})
	for i := 1; i <= 2; i++ {
		name := fmt.Sprintf("Shard%d", i)
		s := mongod.NewServer(mongod.Options{Name: name})
		if _, err := s.EnableDurability(mongod.Durability{Dir: filepath.Join(dir, name)}); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.CloseDurability() })
		router.AddShard(name, s)
	}
	if _, err := router.EnableSharding("app", "rows", bson.D("k", "hashed"), 0); err != nil {
		t.Fatal(err)
	}

	stores := []Store{
		NewStandalone(standalone.Database("app")),
		NewSharded(router, "app"),
	}
	for _, store := range stores {
		t.Run(store.Name(), func(t *testing.T) {
			if caps := Capabilities(store); !caps.Watch {
				t.Fatalf("%s reports no watch capability (%s) despite durable servers", store.Name(), caps)
			}
			stream, err := store.Watch("rows", []*bson.Doc{
				bson.D("$match", bson.D("operationType", "insert")),
			}, "")
			if err != nil {
				t.Fatal(err)
			}
			defer stream.Close()

			const n = 10
			for i := 0; i < n; i++ {
				id := fmt.Sprintf("%s-%d", store.Name(), i)
				if _, err := store.Insert("rows", bson.D(bson.IDKey, id, "k", id)); err != nil {
					t.Fatal(err)
				}
			}
			seen := make(map[string]bool)
			for len(seen) < n {
				ev, err := stream.Next(2 * time.Second)
				if err != nil {
					t.Fatal(err)
				}
				if ev == nil {
					t.Fatalf("stream went quiet after %d of %d events", len(seen), n)
				}
				id, _ := ev.DocumentKey.Get(bson.IDKey)
				key := fmt.Sprint(id)
				if seen[key] {
					t.Fatalf("duplicate event %s", key)
				}
				seen[key] = true
			}
			if stream.ResumeToken() == "" {
				t.Fatal("stream has no resume token")
			}
		})
	}
}
