package driver

import (
	"testing"

	"docstore/internal/bson"
	"docstore/internal/cluster"
	"docstore/internal/mongod"
	"docstore/internal/query"
	"docstore/internal/storage"
)

// stores builds one stand-alone and one sharded deployment for parity tests.
func stores(t *testing.T) []Store {
	t.Helper()
	standalone := NewStandalone(mongod.NewServer(mongod.Options{Name: "solo"}).Database("db"))
	c := cluster.MustBuild(cluster.Config{Shards: 3})
	if _, err := c.ShardCollection("db", "events", bson.D("k", "hashed")); err != nil {
		t.Fatal(err)
	}
	sharded := NewSharded(c.Router(), "db")
	return []Store{standalone, sharded}
}

func TestStoreParity(t *testing.T) {
	for _, s := range stores(t) {
		t.Run(s.Name(), func(t *testing.T) {
			var docs []*bson.Doc
			for i := 0; i < 200; i++ {
				docs = append(docs, bson.D(bson.IDKey, i, "k", i, "cat", i%4, "v", i))
			}
			if _, err := s.InsertMany("events", docs); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Insert("events", bson.D(bson.IDKey, 1000, "k", 1000, "cat", 0, "v", 0)); err != nil {
				t.Fatal(err)
			}
			n, err := s.Count("events", nil)
			if err != nil || n != 201 {
				t.Fatalf("Count = %d, %v", n, err)
			}
			found, err := s.Find("events", bson.D("cat", 2), storage.FindOptions{})
			if err != nil || len(found) != 50 {
				t.Fatalf("Find = %d docs, %v", len(found), err)
			}
			if err := s.EnsureIndex("events", bson.D("cat", 1), false); err != nil {
				t.Fatal(err)
			}
			res, err := s.Update("events", query.UpdateSpec{
				Query:  bson.D("cat", 3),
				Update: bson.D("$set", bson.D("flag", true)),
				Multi:  true,
			})
			if err != nil || res.Modified != 50 {
				t.Fatalf("Update = %+v, %v", res, err)
			}
			agg, err := s.Aggregate("events", []*bson.Doc{
				bson.D("$match", bson.D("cat", bson.D("$in", bson.A(0, 1)))),
				bson.D("$group", bson.D(bson.IDKey, "$cat", "n", bson.D("$sum", 1))),
				bson.D("$sort", bson.D(bson.IDKey, 1)),
			})
			if err != nil || len(agg) != 2 {
				t.Fatalf("Aggregate = %v, %v", agg, err)
			}
			if v, _ := agg[0].Get("n"); v != int64(51) {
				t.Fatalf("group count = %v", v)
			}
			if s.DataSizeBytes("events") <= 0 {
				t.Fatalf("DataSizeBytes should be positive")
			}
			if !s.DropCollection("events") {
				t.Fatalf("DropCollection should report true")
			}
			if n, _ := s.Count("events", nil); n != 0 {
				t.Fatalf("count after drop = %d", n)
			}
			if s.Name() == "" {
				t.Fatalf("Name should not be empty")
			}
		})
	}
}
