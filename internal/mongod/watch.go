package mongod

import (
	"fmt"

	"docstore/internal/bson"
	"docstore/internal/changestream"
	"docstore/internal/query"
)

// WatchOptions configures a change stream opened with Server.Watch.
type WatchOptions struct {
	// Pipeline is an optional list of $match stages evaluated against each
	// event's document rendering ({operationType, ns: {db, coll},
	// documentKey, fullDocument, ...}), reusing the query matcher
	// machinery. Only events every stage matches are delivered — and only
	// they advance the watcher's resume token, so a resumed stream
	// re-filters identically. Stages other than $match are rejected.
	Pipeline []*bson.Doc
	// ResumeAfter, when non-empty, is the token of the last processed
	// event: the stream replays history strictly after it (from the WAL
	// segments on disk) before switching to the live tail. A token whose
	// history a checkpoint has pruned fails with
	// changestream.ErrTokenTooOld.
	ResumeAfter string
	// BufferSize bounds the watcher's event buffer (0 = the server's
	// Durability.ChangeStreamBuffer, else changestream.DefaultBufferSize).
	BufferSize int
}

// Watch opens a change stream over the named collection (coll == "" watches
// the whole database, db == "" the whole server). The stream delivers every
// journaled write of the watched namespace from the moment Watch returns —
// or, when resuming, from the resume token — as ordered events with
// exactly-once semantics. It requires durability: the stream is a tail of
// the write-ahead log.
func (s *Server) Watch(db, coll string, opts WatchOptions) (*changestream.Subscription, error) {
	ds := s.durable.Load()
	if ds == nil {
		return nil, fmt.Errorf("mongod: change streams require durability (EnableDurability)")
	}
	filter, err := compileWatchFilter(db, coll, opts.Pipeline)
	if err != nil {
		return nil, err
	}
	var resume *changestream.Token
	if opts.ResumeAfter != "" {
		tok, err := changestream.ParseToken(opts.ResumeAfter)
		if err != nil {
			return nil, err
		}
		resume = &tok
	}
	buffer := opts.BufferSize
	if buffer <= 0 {
		buffer = ds.opts.ChangeStreamBuffer
	}
	return ds.broker.Subscribe(changestream.SubscribeOptions{
		DB:         db,
		Coll:       coll,
		Resume:     resume,
		Filter:     filter,
		BufferSize: buffer,
	})
}

// compileWatchFilter builds the per-event predicate of a watch: the
// namespace scope plus the compiled $match stages of the pipeline. The
// predicate runs on the broker's publish path, so matchers are compiled once
// here, not per event.
func compileWatchFilter(db, coll string, pipeline []*bson.Doc) (func(*changestream.Event) bool, error) {
	matchers := make([]*query.Matcher, 0, len(pipeline))
	for i, stage := range pipeline {
		if stage == nil || stage.Len() != 1 {
			return nil, fmt.Errorf("mongod: watch pipeline stage %d must have exactly one operator", i)
		}
		arg, ok := stage.Get("$match")
		if !ok {
			return nil, fmt.Errorf("mongod: watch pipeline stage %d: change streams support $match stages only", i)
		}
		md, ok := arg.(*bson.Doc)
		if !ok {
			return nil, fmt.Errorf("mongod: watch pipeline stage %d: $match takes a document", i)
		}
		m, err := query.Compile(md)
		if err != nil {
			return nil, fmt.Errorf("mongod: watch pipeline stage %d: %w", i, err)
		}
		matchers = append(matchers, m)
	}
	return func(ev *changestream.Event) bool {
		if db != "" && ev.DB != db {
			return false
		}
		// A collection-scoped watch still sees its database being
		// dropped (ev.Coll is empty on dropDatabase events).
		if coll != "" && ev.Coll != "" && ev.Coll != coll {
			return false
		}
		for _, m := range matchers {
			if !m.Matches(ev.Doc()) {
				return false
			}
		}
		return true
	}, nil
}
