package mongod

import (
	"docstore/internal/aggregate"
	"docstore/internal/bson"
	"docstore/internal/storage"
)

// Iter adapts a storage cursor to the aggregation engine's Iterator
// interface, letting a pipeline stream straight off a collection or index
// scan. The underlying cursor pins one storage snapshot, so the pipeline's
// whole input is a single committed version no matter how long the
// downstream stages take.
func Iter(cur *storage.Cursor) aggregate.Iterator { return cursorIter{cur} }

type cursorIter struct{ cur *storage.Cursor }

func (i cursorIter) Next() (*bson.Doc, bool) { return i.cur.TryNext() }
func (i cursorIter) Err() error              { return i.cur.Err() }
func (i cursorIter) Close()                  { _ = i.cur.Close() }

// FindCursor runs a query against the named collection and returns a
// streaming cursor over the results. Batch size is controlled by
// opts.BatchSize (zero uses storage.DefaultBatchSize). The cursor pins one
// storage snapshot for its whole lifetime, so every batch it ever returns —
// wire getMore batches included — belongs to the same committed version.
// The profiler records the operation when the cursor is exhausted or
// closed, so a streamed query is timed over its whole drain and the entry
// carries the finished plan (access path, docs examined, snapshot version).
func (db *Database) FindCursor(coll string, filter *bson.Doc, opts storage.FindOptions) (*storage.Cursor, error) {
	db.server.countOp("query")
	start := db.server.clockTime()
	cur, err := db.Collection(coll).FindCursor(filter, opts)
	if err != nil {
		db.record(ProfileEntry{Op: "find", Collection: coll, At: start})
		return nil, err
	}
	cur.OnFinish(func() { db.recordPlan("find", coll, start, cur.Plan(), opts.Trace.SampledTraceID()) })
	return cur, nil
}

// AggregateCursor runs an aggregation pipeline over the named collection and
// returns an iterator over its results. The streamable prefix of the
// pipeline ($match/$project/$addFields/$unwind/$limit/$skip, plus an
// incrementally accumulated $group) pulls documents off the collection scan
// in cursor batches, so peak memory is O(batch) plus any blocking stage's
// state rather than O(collection). Like FindCursor, the profiler records the
// operation when the iterator finishes, not when it is built.
//
// A leading $match is pushed down into the storage engine so it can use the
// collection's indexes, exactly as Aggregate does.
func (db *Database) AggregateCursor(coll string, stages []*bson.Doc) (aggregate.Iterator, error) {
	db.server.countOp("command")
	stop := db.profile("aggregate", coll)
	it, err := db.aggregateIter(coll, stages)
	if err != nil {
		stop()
		return nil, err
	}
	return &finishIter{it: it, stop: stop}, nil
}

// finishIter invokes stop exactly once when the wrapped iterator ends or is
// closed.
type finishIter struct {
	it   aggregate.Iterator
	stop func()
}

func (f *finishIter) Next() (*bson.Doc, bool) {
	d, ok := f.it.Next()
	if !ok {
		f.fire()
	}
	return d, ok
}

func (f *finishIter) Err() error { return f.it.Err() }

func (f *finishIter) Close() {
	f.it.Close()
	f.fire()
}

func (f *finishIter) fire() {
	if f.stop != nil {
		stop := f.stop
		f.stop = nil
		stop()
	}
}

// aggregateIter is the shared streaming implementation behind Aggregate and
// AggregateCursor.
func (db *Database) aggregateIter(coll string, stages []*bson.Doc) (aggregate.Iterator, error) {
	pipeline, err := aggregate.Parse(stages)
	if err != nil {
		return nil, err
	}
	scanFilter := (*bson.Doc)(nil)
	if len(stages) > 0 {
		if matchArg, ok := stages[0].Get("$match"); ok {
			if filter, isDoc := matchArg.(*bson.Doc); isDoc {
				scanFilter = filter
				pipeline = pipeline.Tail(1)
			}
		}
	}
	cur, err := db.Collection(coll).FindCursor(scanFilter, storage.FindOptions{})
	if err != nil {
		return nil, err
	}
	return pipeline.RunIter(Iter(cur), db.Env()), nil
}
