package mongod

import (
	"testing"
	"time"

	"docstore/internal/bson"
	"docstore/internal/query"
	"docstore/internal/storage"
)

func TestServerDatabaseLifecycle(t *testing.T) {
	s := NewServer(Options{Name: "Shard1", RAMBytes: 8 << 30, DiskBytes: 256 << 30})
	if s.Name() != "Shard1" {
		t.Fatalf("Name = %q", s.Name())
	}
	db := s.Database("Dataset_1GB")
	if db.Name() != "Dataset_1GB" {
		t.Fatalf("db name = %q", db.Name())
	}
	if s.Database("Dataset_1GB") != db {
		t.Fatalf("Database should return the same instance")
	}
	s.Database("other")
	names := s.DatabaseNames()
	if len(names) != 2 || names[0] != "Dataset_1GB" {
		t.Fatalf("DatabaseNames = %v", names)
	}
	if !s.DropDatabase("other") || s.DropDatabase("other") {
		t.Fatalf("DropDatabase misbehaves")
	}
	// Defaulted name.
	if NewServer(Options{}).Name() != "mongod" {
		t.Fatalf("default name missing")
	}
	if s.Options().RAMBytes != 8<<30 {
		t.Fatalf("Options not preserved")
	}
}

func TestDatabaseCollectionsAndCRUD(t *testing.T) {
	s := NewServer(Options{})
	db := s.Database("test")
	if db.HasCollection("c") {
		t.Fatalf("collection should not exist yet")
	}
	if _, err := db.Insert("c", bson.D(bson.IDKey, 1, "v", 10)); err != nil {
		t.Fatal(err)
	}
	if !db.HasCollection("c") {
		t.Fatalf("collection should exist after insert")
	}
	if _, err := db.InsertMany("c", []*bson.Doc{bson.D(bson.IDKey, 2, "v", 20), bson.D(bson.IDKey, 3, "v", 30)}); err != nil {
		t.Fatal(err)
	}
	docs, err := db.Find("c", bson.D("v", bson.D("$gte", 20)), storage.FindOptions{})
	if err != nil || len(docs) != 2 {
		t.Fatalf("Find = %d docs, %v", len(docs), err)
	}
	if _, err := db.EnsureIndex("c", bson.D("v", 1), false); err != nil {
		t.Fatal(err)
	}
	_, plan, err := db.FindWithPlan("c", bson.D("v", 20), storage.FindOptions{})
	if err != nil || plan.IndexUsed != "v_1" {
		t.Fatalf("FindWithPlan: plan=%+v err=%v", plan, err)
	}
	res, err := db.Update("c", query.UpdateSpec{Query: bson.D(bson.IDKey, 1), Update: bson.D("$set", bson.D("v", 99))})
	if err != nil || res.Modified != 1 {
		t.Fatalf("Update: %+v %v", res, err)
	}
	n, err := db.Delete("c", bson.D(bson.IDKey, 3), false)
	if err != nil || n != 1 {
		t.Fatalf("Delete: %d %v", n, err)
	}
	if got := db.CollectionNames(); len(got) != 1 || got[0] != "c" {
		t.Fatalf("CollectionNames = %v", got)
	}
	if len(db.Collections()) != 1 {
		t.Fatalf("Collections length wrong")
	}
	if !db.DropCollection("c") || db.DropCollection("c") {
		t.Fatalf("DropCollection misbehaves")
	}
	// Counters reflect the operations issued.
	counters := s.Counters()
	if counters.Insert == 0 || counters.Query == 0 || counters.Update == 0 || counters.Delete == 0 || counters.Command == 0 {
		t.Fatalf("counters = %+v", counters)
	}
}

func TestDatabaseAggregateWithOutAndLookup(t *testing.T) {
	s := NewServer(Options{})
	db := s.Database("Dataset_1GB")
	for i := 0; i < 20; i++ {
		if _, err := db.Insert("store_sales", bson.D(
			bson.IDKey, i,
			"ss_item_sk", i%4,
			"ss_quantity", i,
		)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := db.Insert("item", bson.D(bson.IDKey, i, "i_item_sk", i, "i_item_id", string(rune('A'+i)))); err != nil {
			t.Fatal(err)
		}
	}
	out, err := db.Aggregate("store_sales", []*bson.Doc{
		bson.D("$lookup", bson.D("from", "item", "localField", "ss_item_sk", "foreignField", "i_item_sk", "as", "item")),
		bson.D("$unwind", "$item"),
		bson.D("$group", bson.D(bson.IDKey, "$item.i_item_id", "qty", bson.D("$sum", "$ss_quantity"))),
		bson.D("$sort", bson.D(bson.IDKey, 1)),
		bson.D("$out", "agg_output"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("aggregate groups = %d", len(out))
	}
	// $out created the output collection with the same content.
	if db.Collection("agg_output").Count() != 4 {
		t.Fatalf("output collection count = %d", db.Collection("agg_output").Count())
	}
	// Aggregating a missing collection via $lookup errors.
	if _, err := db.Aggregate("store_sales", []*bson.Doc{
		bson.D("$lookup", bson.D("from", "nope", "localField", "a", "foreignField", "b", "as", "c")),
	}); err == nil {
		t.Fatalf("lookup against missing collection should fail")
	}
	// Invalid pipeline surfaces a parse error.
	if _, err := db.Aggregate("store_sales", []*bson.Doc{bson.D("$bogus", 1)}); err == nil {
		t.Fatalf("invalid pipeline should fail")
	}
}

func TestServerStatusAndWorkingSet(t *testing.T) {
	s := NewServer(Options{Name: "standalone", RAMBytes: 1 << 20})
	db := s.Database("d")
	for i := 0; i < 100; i++ {
		_, _ = db.Insert("c", bson.D(bson.IDKey, i, "payload", "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"))
	}
	_, _ = db.EnsureIndex("c", bson.D("payload", 1), false)
	st := s.Status()
	if st.Collections != 1 || st.Documents != 100 || st.DataSizeBytes <= 0 || st.IndexSizeBytes <= 0 {
		t.Fatalf("status = %+v", st)
	}
	if st.WorkingSetBytes != st.DataSizeBytes+st.IndexSizeBytes {
		t.Fatalf("working set mismatch")
	}
	if st.RAMPressure <= 0 {
		t.Fatalf("RAM pressure should be positive with a tiny RAM setting")
	}
	if s.WorkingSetBytes() != st.WorkingSetBytes {
		t.Fatalf("WorkingSetBytes mismatch")
	}
}

func TestProfilerRecordsSlowOps(t *testing.T) {
	s := NewServer(Options{SlowOpThreshold: 0}) // record everything
	db := s.Database("d")
	_, _ = db.Insert("c", bson.D(bson.IDKey, 1))
	_, _ = db.Find("c", nil, storage.FindOptions{})
	entries := s.Profile()
	if len(entries) < 2 {
		t.Fatalf("profile entries = %d", len(entries))
	}
	ops := map[string]bool{}
	for _, e := range entries {
		ops[e.Op] = true
		if e.Database != "d" || e.Collection != "c" || e.Duration < 0 {
			t.Fatalf("entry = %+v", e)
		}
	}
	if !ops["insert"] || !ops["find"] {
		t.Fatalf("ops recorded = %v", ops)
	}
	s.ResetProfile()
	if len(s.Profile()) != 0 {
		t.Fatalf("ResetProfile did not clear entries")
	}
	// A high threshold suppresses recording.
	s2 := NewServer(Options{SlowOpThreshold: time.Hour})
	_, _ = s2.Database("d").Insert("c", bson.D(bson.IDKey, 1))
	if len(s2.Profile()) != 0 {
		t.Fatalf("fast op should not be profiled")
	}
}
