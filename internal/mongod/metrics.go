package mongod

import (
	"time"

	"docstore/internal/metrics"
)

// Prometheus metric family names the mongod layer exports. The wire layer
// exports the matching docstore_wire_* families; doc.go's Observability
// section is the name map.
const (
	metricOpsTotal   = "docstore_mongod_ops_total"
	metricOpDuration = "docstore_mongod_op_duration_seconds"
	// The labeled families break the same signals down by namespace: every
	// series carries {collection, shard, op}, where collection is the full
	// "db.coll" namespace and shard is the server's name. Cardinality is
	// capped (see metrics.DefaultMaxSeries): past the cap a namespace
	// records into the shared overflow series instead of minting a new one,
	// so a hostile stream of unique namespaces cannot grow the registry.
	metricCollOpsTotal   = "docstore_mongod_collection_ops_total"
	metricCollOpDuration = "docstore_mongod_collection_op_duration_seconds"
	// WAL health families, attached when durability is enabled: fsync
	// latency and the group-commit batch size each fsync covered.
	metricWALFsyncDuration = "docstore_wal_fsync_duration_seconds"
	metricWALBatchSize     = "docstore_wal_group_commit_batch_size"
)

// knownOps are the op kinds the execution layer profiles. They are
// registered eagerly at server construction so a metrics scrape sees every
// family (and every op series) before any traffic arrives; an op outside
// the list records under "other".
var knownOps = []string{"insert", "find", "update", "delete", "aggregate", "bulkWrite", "other"}

// opMetrics holds the per-op counter and latency histogram handles. The
// maps are built once at construction and never mutated, so the hot path
// reads them without locks; the handles themselves are atomic.
type opMetrics struct {
	registry *metrics.Registry
	counts   map[string]*metrics.Counter
	hists    map[string]*metrics.Histogram
	shard    string
	collOps  *metrics.CounterVec
	collDur  *metrics.HistogramVec
}

func newOpMetrics(shard string) opMetrics {
	om := opMetrics{
		registry: metrics.NewRegistry(),
		counts:   make(map[string]*metrics.Counter, len(knownOps)),
		hists:    make(map[string]*metrics.Histogram, len(knownOps)),
		shard:    shard,
	}
	for _, op := range knownOps {
		om.counts[op] = om.registry.Counter(metricOpsTotal, "operations executed by the mongod layer", "op", op)
		om.hists[op] = om.registry.Histogram(metricOpDuration, "mongod operation latency", "op", op)
	}
	om.collOps = om.registry.CounterVec(metricCollOpsTotal,
		"operations executed by the mongod layer, by namespace",
		metrics.DefaultMaxSeries, "collection", "op", "shard")
	om.collDur = om.registry.HistogramVec(metricCollOpDuration,
		"mongod operation latency by namespace",
		metrics.DefaultMaxSeries, "collection", "op", "shard")
	return om
}

// observe records one completed operation. Unlike the profiler, which keeps
// only slow ops, every operation lands in its histogram — the histograms
// are the always-on percentile source the /metrics endpoint exports.
func (om *opMetrics) observe(op string, elapsed time.Duration) {
	c, ok := om.counts[op]
	if !ok {
		op = "other"
		c = om.counts[op]
	}
	c.Inc()
	om.hists[op].Observe(elapsed)
}

// observeNS records one completed operation under both the per-op families
// and the labeled per-namespace families. ns is the full "db.coll"
// namespace; traceID, when non-empty, is a retained trace's ID and becomes
// the latency bucket's exemplar — an empty traceID (the untraced fast path)
// records without touching exemplar storage.
func (om *opMetrics) observeNS(op, ns, traceID string, elapsed time.Duration) {
	om.observe(op, elapsed)
	om.collOps.With(ns, op, om.shard).Inc()
	om.collDur.With(ns, op, om.shard).ObserveExemplar(elapsed, traceID)
}

// Metrics returns the server's metric registry: per-op counters and latency
// histograms, plus the MVCC engine gauges as a polled gauge source.
// docstored merges it with the wire layer's registry on -metrics-addr.
func (s *Server) Metrics() *metrics.Registry { return s.om.registry }

// OpDurations returns a snapshot of the latency histogram for one op kind
// ("insert", "find", "update", "delete", "aggregate", "bulkWrite") — the
// in-process view of the percentiles /metrics exports.
func (s *Server) OpDurations(op string) metrics.HistogramSnapshot {
	h, ok := s.om.hists[op]
	if !ok {
		h = s.om.hists["other"]
	}
	return h.Snapshot()
}

// CollectionOpDurations returns a snapshot of the labeled latency histogram
// for one namespace ("db.coll") and op kind — the per-collection series the
// bench harness records so a regression can be attributed to a namespace.
// A namespace past the cardinality cap resolves to the shared overflow
// series.
func (s *Server) CollectionOpDurations(ns, op string) metrics.HistogramSnapshot {
	return s.om.collDur.With(ns, op, s.om.shard).Snapshot()
}
