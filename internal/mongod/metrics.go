package mongod

import (
	"time"

	"docstore/internal/metrics"
)

// Prometheus metric family names the mongod layer exports. The wire layer
// exports the matching docstore_wire_* families; doc.go's Observability
// section is the name map.
const (
	metricOpsTotal   = "docstore_mongod_ops_total"
	metricOpDuration = "docstore_mongod_op_duration_seconds"
)

// knownOps are the op kinds the execution layer profiles. They are
// registered eagerly at server construction so a metrics scrape sees every
// family (and every op series) before any traffic arrives; an op outside
// the list records under "other".
var knownOps = []string{"insert", "find", "update", "delete", "aggregate", "bulkWrite", "other"}

// opMetrics holds the per-op counter and latency histogram handles. The
// maps are built once at construction and never mutated, so the hot path
// reads them without locks; the handles themselves are atomic.
type opMetrics struct {
	registry *metrics.Registry
	counts   map[string]*metrics.Counter
	hists    map[string]*metrics.Histogram
}

func newOpMetrics() opMetrics {
	om := opMetrics{
		registry: metrics.NewRegistry(),
		counts:   make(map[string]*metrics.Counter, len(knownOps)),
		hists:    make(map[string]*metrics.Histogram, len(knownOps)),
	}
	for _, op := range knownOps {
		om.counts[op] = om.registry.Counter(metricOpsTotal, "operations executed by the mongod layer", "op", op)
		om.hists[op] = om.registry.Histogram(metricOpDuration, "mongod operation latency", "op", op)
	}
	return om
}

// observe records one completed operation. Unlike the profiler, which keeps
// only slow ops, every operation lands in its histogram — the histograms
// are the always-on percentile source the /metrics endpoint exports.
func (om *opMetrics) observe(op string, elapsed time.Duration) {
	c, ok := om.counts[op]
	if !ok {
		op = "other"
		c = om.counts[op]
	}
	c.Inc()
	om.hists[op].Observe(elapsed)
}

// Metrics returns the server's metric registry: per-op counters and latency
// histograms, plus the MVCC engine gauges as a polled gauge source.
// docstored merges it with the wire layer's registry on -metrics-addr.
func (s *Server) Metrics() *metrics.Registry { return s.om.registry }

// OpDurations returns a snapshot of the latency histogram for one op kind
// ("insert", "find", "update", "delete", "aggregate", "bulkWrite") — the
// in-process view of the percentiles /metrics exports.
func (s *Server) OpDurations(op string) metrics.HistogramSnapshot {
	h, ok := s.om.hists[op]
	if !ok {
		h = s.om.hists["other"]
	}
	return h.Snapshot()
}
