package mongod

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"docstore/internal/bson"
	"docstore/internal/changestream"
	"docstore/internal/metrics"
	"docstore/internal/storage"
	"docstore/internal/wal"
)

// Durability configures the server's write-ahead log and checkpointing.
type Durability struct {
	// Dir is the data directory: segment files live in Dir/wal and
	// checkpoint snapshots in Dir/checkpoint-<lsn>.
	Dir string
	// Sync is the WAL sync policy (default wal.SyncGroupCommit).
	Sync wal.SyncPolicy
	// GroupCommitInterval is the optional extra coalescing window of the
	// group commit leader; zero flushes as soon as the previous fsync
	// completes.
	GroupCommitInterval time.Duration
	// SegmentMaxBytes rotates WAL segments past this size (0 = default).
	SegmentMaxBytes int64
	// ChangeStreamBuffer is the default per-watcher event buffer of change
	// streams opened with Server.Watch (0 = changestream.DefaultBufferSize).
	// A watcher that falls this many events behind the write stream is
	// invalidated and must resume from its last token.
	ChangeStreamBuffer int
}

// RecoveryStats reports what EnableDurability restored.
type RecoveryStats struct {
	// CheckpointLSN is the capture LSN of the checkpoint that seeded the
	// state, 0 when starting fresh.
	CheckpointLSN int64
	// CollectionsLoaded is how many collection snapshots were read.
	CollectionsLoaded int
	// RecordsReplayed is how many WAL records were applied on top.
	RecordsReplayed int
}

// CheckpointStats reports what a checkpoint did.
type CheckpointStats struct {
	// LSN is the checkpoint's capture LSN (its directory suffix).
	LSN int64
	// Collections is how many collection snapshots were written.
	Collections int
	// SegmentsPruned is how many WAL segment files became obsolete.
	SegmentsPruned int
	// Skipped reports that the newest checkpoint already covers the whole
	// log (no journaled mutation since), so nothing was written.
	Skipped bool
}

// durableState is the per-server durability runtime, published atomically on
// the Server so the hot write path reads it without locks.
type durableState struct {
	wal    *wal.WAL
	dir    string
	opts   Durability
	broker *changestream.Broker

	checkpointMu chan struct{} // 1-buffered: held while a checkpoint runs
}

const manifestName = "MANIFEST.json"

// checkpointManifest is the JSON document describing one checkpoint.
type checkpointManifest struct {
	// CaptureLSN is the WAL position read before the first snapshot; no
	// record at or below it is missing from the checkpoint.
	CaptureLSN  int64             `json:"capture_lsn"`
	Collections []checkpointEntry `json:"collections"`
}

type checkpointEntry struct {
	DB      string          `json:"db"`
	Coll    string          `json:"coll"`
	File    string          `json:"file"`
	LastLSN int64           `json:"last_lsn"`
	Count   int             `json:"count"`
	Indexes []manifestIndex `json:"indexes,omitempty"`
}

// manifestIndex persists one secondary index definition; the spec document
// travels as its extended-JSON rendering inside the JSON manifest.
type manifestIndex struct {
	Spec   string `json:"spec"`
	Unique bool   `json:"unique,omitempty"`
}

// collJournal adapts the server's WAL to the storage engine's Journal
// interface for one collection, and feeds the change-stream broker: every
// logged record comes back as a notifyingCommit whose post-commit hook
// publishes the record's events.
type collJournal struct {
	w      *wal.WAL
	broker *changestream.Broker
	db     string
	coll   string
}

// notifyingCommit wraps a WAL commit so that storage's post-commit hook
// (storage.CommitNotifier, fired by waitCommit after the apply and the
// durability wait) publishes the record to the change-stream broker. Publish
// sequences records by LSN, so the out-of-order arrival of hooks from
// concurrent collections is fine; what matters is that every logged record
// reaches Publish exactly once.
type notifyingCommit struct {
	*wal.Commit
	broker *changestream.Broker
	rec    *wal.Record
	events []*changestream.Event
}

// Notify implements storage.CommitNotifier.
func (n *notifyingCommit) Notify() {
	if n.rec.Kind == wal.KindBatch {
		// Batch events are pre-built (or deliberately absent) at log time;
		// deriving them here would race in-place updates of the stored
		// documents the record references.
		n.broker.Publish(n.rec.LSN, n.events)
		return
	}
	n.broker.Publish(n.rec.LSN, changestream.EventsFromRecord(n.rec, false))
}

func (j *collJournal) wrap(rec *wal.Record) (storage.CommitWaiter, error) {
	commit, err := j.w.Append(rec)
	if err != nil {
		return nil, err
	}
	nc := &notifyingCommit{Commit: commit, broker: j.broker, rec: rec}
	if rec.Kind == wal.KindBatch && j.broker.WantsEvents(rec.DB, rec.Coll) {
		// Built under the collection lock (LogBatch is called from
		// logLocked), AFTER the append: a subscriber whose join point
		// precedes this record has, by the WAL-mutex ordering, already
		// raised the interest index this check reads, so no watcher can
		// need events this skips — and writes to namespaces nobody
		// watches skip materialization entirely. The clone pins the
		// insert payloads against later in-place updates of the stored
		// documents.
		nc.events = changestream.EventsFromRecord(rec, true)
	}
	return nc, nil
}

func (j *collJournal) LogBatch(ops []storage.WriteOp, ordered bool) (storage.CommitWaiter, error) {
	return j.wrap(&wal.Record{Kind: wal.KindBatch, DB: j.db, Coll: j.coll, Ordered: ordered, Ops: ops})
}

func (j *collJournal) LogClear() (storage.CommitWaiter, error) {
	return j.wrap(&wal.Record{Kind: wal.KindClear, DB: j.db, Coll: j.coll})
}

func (j *collJournal) LogEnsureIndex(spec *bson.Doc, unique bool) (storage.CommitWaiter, error) {
	return j.wrap(&wal.Record{Kind: wal.KindEnsureIndex, DB: j.db, Coll: j.coll, Spec: spec, Unique: unique})
}

func (j *collJournal) LogDropIndex(name string) (storage.CommitWaiter, error) {
	return j.wrap(&wal.Record{Kind: wal.KindDropIndex, DB: j.db, Coll: j.coll, Index: name})
}

// DurabilityEnabled reports whether the server writes a WAL.
func (s *Server) DurabilityEnabled() bool { return s.durable.Load() != nil }

// WALDir returns the WAL segment directory, or "" when durability is off.
func (s *Server) WALDir() string {
	ds := s.durable.Load()
	if ds == nil {
		return ""
	}
	return ds.wal.Dir()
}

// EnableDurability opens the write-ahead log under d.Dir, recovers the
// server's state (newest checkpoint snapshot first, then a replay of the
// records the snapshot does not cover, with any torn tail truncated away),
// and attaches the WAL to every collection so subsequent writes are logged
// before they apply. It must be called before the server starts serving.
//
// Recovery populates the server, so it is meant for servers constructed
// empty; collections that already hold data keep it, but that data is not
// crash-safe until the next Checkpoint.
func (s *Server) EnableDurability(d Durability) (RecoveryStats, error) {
	var stats RecoveryStats
	if s.durable.Load() != nil {
		return stats, fmt.Errorf("mongod: durability already enabled")
	}
	if d.Dir == "" {
		return stats, fmt.Errorf("mongod: Durability.Dir is required")
	}
	if err := os.MkdirAll(d.Dir, 0o755); err != nil {
		return stats, err
	}
	w, err := wal.Open(wal.Options{
		Dir:                 filepath.Join(d.Dir, "wal"),
		Sync:                d.Sync,
		GroupCommitInterval: d.GroupCommitInterval,
		SegmentMaxBytes:     d.SegmentMaxBytes,
	})
	if err != nil {
		return stats, err
	}
	// Phase 1: seed from the newest complete checkpoint, recording each
	// collection's snapshot watermark so the replay below can skip records
	// the snapshot already contains.
	cpLSN, cpDir, err := newestCheckpoint(d.Dir)
	if err != nil {
		w.Close()
		return stats, err
	}
	if cpDir != "" {
		n, err := s.loadCheckpoint(cpDir)
		if err != nil {
			w.Close()
			return stats, fmt.Errorf("mongod: loading checkpoint %s: %w", cpDir, err)
		}
		stats.CheckpointLSN = cpLSN
		stats.CollectionsLoaded = n
	}
	// Phase 2: replay the log on top. Collections have no journal attached
	// yet, so replayed writes are not re-logged.
	err = wal.Replay(w.Dir(), func(rec *wal.Record) error {
		if s.applyRecord(rec) {
			stats.RecordsReplayed++
		}
		return nil
	})
	if err != nil {
		w.Close()
		return stats, fmt.Errorf("mongod: replaying wal: %w", err)
	}
	// Phase 3: go live. The change-stream broker starts at the
	// post-recovery frontier (replayed records are state reconstruction,
	// not new changes). Publishing durableState first makes lazily-created
	// collections pick up journals; then existing collections are wired.
	ds := &durableState{
		wal: w, dir: d.Dir, opts: d,
		broker:       changestream.NewBroker(w),
		checkpointMu: make(chan struct{}, 1),
	}
	s.durable.Store(ds)
	for _, dbName := range s.DatabaseNames() {
		db := s.Database(dbName)
		for _, collName := range db.CollectionNames() {
			db.Collection(collName).SetJournal(&collJournal{w: w, broker: ds.broker, db: dbName, coll: collName})
		}
	}
	// Export the durability-health signals through the server registry: the
	// WAL owns its fsync/batch histograms (the wal package has no registry),
	// so they are attached here; the change-stream buffer depths are polled
	// at scrape time.
	s.om.registry.RegisterHistogramSeries(metricWALFsyncDuration,
		"write-path fsync latency", "seconds", w.FsyncHistogram())
	s.om.registry.RegisterHistogramSeries(metricWALBatchSize,
		"records made durable per write-path fsync (group-commit batch size)", "", w.BatchHistogram())
	s.om.registry.AddGaugeSource("", func() []metrics.Gauge {
		st := ds.broker.Stats()
		return []metrics.Gauge{
			{Name: "docstore_changestream_watchers", Value: int64(st.Watchers)},
			{Name: "docstore_changestream_buffered_events", Value: st.BufferedEvents},
			{Name: "docstore_changestream_max_buffer_depth", Value: int64(st.MaxBufferDepth)},
			{Name: "docstore_changestream_slow_consumers_total", Value: st.SlowConsumers},
		}
	})
	return stats, nil
}

// applyRecord applies one replayed WAL record, reporting whether it did
// anything. Records already reflected in a checkpoint snapshot are skipped
// by comparing against each collection's snapshot watermark.
func (s *Server) applyRecord(rec *wal.Record) bool {
	switch rec.Kind {
	case wal.KindBatch:
		coll := s.Database(rec.DB).Collection(rec.Coll)
		if rec.LSN <= coll.LastLSN() {
			return false
		}
		// Per-op failures replay exactly as they failed before the crash
		// (the log records the attempt, not the outcome), so they are not
		// recovery errors.
		coll.BulkWrite(rec.Ops, storage.BulkOptions{Ordered: rec.Ordered})
		coll.SetReplayLSN(rec.LSN)
		return true
	case wal.KindClear:
		coll := s.Database(rec.DB).Collection(rec.Coll)
		if rec.LSN <= coll.LastLSN() {
			return false
		}
		coll.Drop()
		coll.SetReplayLSN(rec.LSN)
		return true
	case wal.KindEnsureIndex:
		coll := s.Database(rec.DB).Collection(rec.Coll)
		if rec.LSN <= coll.LastLSN() {
			return false
		}
		// A backfill failure (unique violation on the data as of this
		// point in the log) failed identically before the crash; either
		// way the outcome is deterministic.
		_, _ = coll.EnsureIndexDoc(rec.Spec, rec.Unique)
		coll.SetReplayLSN(rec.LSN)
		return true
	case wal.KindDropIndex:
		coll := s.Database(rec.DB).Collection(rec.Coll)
		if rec.LSN <= coll.LastLSN() {
			return false
		}
		coll.DropIndex(rec.Index)
		coll.SetReplayLSN(rec.LSN)
		return true
	case wal.KindDropCollection:
		db := s.Database(rec.DB)
		// A snapshot watermark at or past the drop means the collection in
		// memory is a later incarnation restored from the checkpoint.
		if db.HasCollection(rec.Coll) && db.Collection(rec.Coll).LastLSN() >= rec.LSN {
			return false
		}
		return db.DropCollection(rec.Coll)
	case wal.KindDropDatabase:
		db, ok := s.lookupDatabase(rec.DB)
		if !ok {
			return false
		}
		// The drop kills exactly the collections that existed before it:
		// those whose watermark is below the drop LSN. Collections restored
		// from a checkpoint taken after a same-name database was recreated
		// carry higher watermarks and survive — an all-or-nothing skip here
		// would let pre-drop collections replayed from older records ride
		// along with them and resurrect.
		dropped := false
		for _, coll := range db.Collections() {
			if coll.LastLSN() < rec.LSN {
				db.DropCollection(coll.Name())
				dropped = true
			}
		}
		if len(db.CollectionNames()) == 0 {
			dropped = s.DropDatabase(rec.DB) || dropped
		}
		return dropped
	default:
		return false
	}
}

// logStructuralLocked appends a drop-collection / drop-database record
// while the caller still holds the lock that removed the entry, so the
// record's LSN orders after every write of the dropped incarnation and
// before any write of a same-name successor (which must re-enter that lock
// to be created). The returned commit is waited on — and its change-stream
// notification fired — after the lock is released; an append error means the
// drop never entered the log and the caller must undo the in-memory removal.
// A nil commit means durability is off.
func (s *Server) logStructuralLocked(kind wal.RecordKind, db, coll string) (*notifyingCommit, error) {
	ds := s.durable.Load()
	if ds == nil {
		return nil, nil
	}
	rec := &wal.Record{Kind: kind, DB: db, Coll: coll}
	commit, err := ds.wal.Append(rec)
	if err != nil {
		return nil, err
	}
	return &notifyingCommit{Commit: commit, broker: ds.broker, rec: rec}, nil
}

// newestCheckpoint finds the highest-LSN complete checkpoint directory.
func newestCheckpoint(dir string) (int64, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, "", err
	}
	bestLSN, bestDir := int64(-1), ""
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() || !strings.HasPrefix(name, "checkpoint-") {
			continue
		}
		lsn, err := strconv.ParseInt(strings.TrimPrefix(name, "checkpoint-"), 10, 64)
		if err != nil {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, name, manifestName)); err != nil {
			continue
		}
		if lsn > bestLSN {
			bestLSN, bestDir = lsn, filepath.Join(dir, name)
		}
	}
	if bestDir == "" {
		return 0, "", nil
	}
	return bestLSN, bestDir, nil
}

// loadCheckpoint restores every collection snapshot of one checkpoint.
func (s *Server) loadCheckpoint(cpDir string) (int, error) {
	data, err := os.ReadFile(filepath.Join(cpDir, manifestName))
	if err != nil {
		return 0, err
	}
	var m checkpointManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return 0, fmt.Errorf("parsing manifest: %w", err)
	}
	for _, e := range m.Collections {
		coll := s.Database(e.DB).Collection(e.Coll)
		f, err := os.Open(filepath.Join(cpDir, e.File))
		if err != nil {
			return 0, err
		}
		err = coll.ReadSnapshot(f)
		f.Close()
		if err != nil {
			return 0, fmt.Errorf("snapshot %s (%s.%s): %w", e.File, e.DB, e.Coll, err)
		}
		if got := coll.Count(); got != e.Count {
			return 0, fmt.Errorf("snapshot %s (%s.%s): loaded %d documents, manifest says %d", e.File, e.DB, e.Coll, got, e.Count)
		}
		for _, ix := range e.Indexes {
			spec, err := bson.FromJSONString(ix.Spec)
			if err != nil {
				return 0, fmt.Errorf("snapshot %s (%s.%s): index spec %q: %w", e.File, e.DB, e.Coll, ix.Spec, err)
			}
			if _, err := coll.EnsureIndexDoc(spec, ix.Unique); err != nil {
				return 0, fmt.Errorf("snapshot %s (%s.%s): rebuilding index %s: %w", e.File, e.DB, e.Coll, ix.Spec, err)
			}
		}
		coll.SetReplayLSN(e.LastLSN)
	}
	return len(m.Collections), nil
}

// CheckpointCapture is a pinned capture point: one storage snapshot per
// collection plus the WAL position, all taken while every writer on the
// server was held. Everything the capture references describes one instant —
// no collection is ahead of another, and no record at or below the capture
// LSN is missing from the snapshots. Captures are cheap (a pin per
// collection); the expensive disk streaming happens later, against the
// pinned versions, with writes flowing. Release the capture when done
// (CheckpointFrom releases it for you).
type CheckpointCapture struct {
	lsn      int64
	entries  []captureEntry
	released bool
}

type captureEntry struct {
	db, coll string
	snap     *storage.Snapshot
}

// CaptureLSN returns the WAL position of the capture point: every journaled
// mutation at or below it is reflected in the capture's snapshots.
func (cp *CheckpointCapture) CaptureLSN() int64 { return cp.lsn }

// Collections returns how many collection snapshots the capture pins.
func (cp *CheckpointCapture) Collections() int { return len(cp.entries) }

// Release unpins every snapshot of the capture. Idempotent.
func (cp *CheckpointCapture) Release() {
	if cp.released {
		return
	}
	cp.released = true
	for _, e := range cp.entries {
		e.snap.Release()
	}
}

// HoldAllWrites blocks every mutation on the server — document writes, index
// churn, collection and database creation and drops — until the returned
// release function runs (it is idempotent). Reads are unaffected: they pin
// published versions. The locks are taken in the global order the drop paths
// already establish (server, then each database sorted by name, then each
// collection sorted by name), so a hold cannot deadlock against concurrent
// structural operations. Holds are meant to be brief: pin a capture under
// one (CaptureHeld), then release.
func (s *Server) HoldAllWrites() (release func()) {
	s.mu.Lock()
	dbNames := make([]string, 0, len(s.dbs))
	for n := range s.dbs {
		dbNames = append(dbNames, n)
	}
	sort.Strings(dbNames)
	var dbs []*Database
	var collReleases []func()
	for _, dbName := range dbNames {
		db := s.dbs[dbName]
		db.mu.Lock()
		dbs = append(dbs, db)
		collNames := make([]string, 0, len(db.colls))
		for n := range db.colls {
			collNames = append(collNames, n)
		}
		sort.Strings(collNames)
		for _, collName := range collNames {
			collReleases = append(collReleases, db.colls[collName].HoldWrites())
		}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			for i := len(collReleases) - 1; i >= 0; i-- {
				collReleases[i]()
			}
			for i := len(dbs) - 1; i >= 0; i-- {
				dbs[i].mu.Unlock()
			}
			s.mu.Unlock()
		})
	}
}

// CaptureHeld pins a capture point. The caller must be holding every writer
// via HoldAllWrites: with writers held, the WAL position is a true cut — any
// record it covers was applied and published by its collection before the
// hold could be acquired, and no new record can enter the log until release —
// so the pinned snapshots and the LSN describe one mutually consistent
// instant across every collection. The cluster checkpoint relies on the
// hold/capture split: the router holds every shard simultaneously, captures
// them all, releases, and only then pays for streaming.
func (s *Server) CaptureHeld() *CheckpointCapture {
	cp := &CheckpointCapture{}
	if ds := s.durable.Load(); ds != nil {
		cp.lsn = ds.wal.LastLSN()
	}
	dbNames := make([]string, 0, len(s.dbs))
	for n := range s.dbs {
		dbNames = append(dbNames, n)
	}
	sort.Strings(dbNames)
	for _, dbName := range dbNames {
		db := s.dbs[dbName]
		collNames := make([]string, 0, len(db.colls))
		for n := range db.colls {
			collNames = append(collNames, n)
		}
		sort.Strings(collNames)
		for _, collName := range collNames {
			cp.entries = append(cp.entries, captureEntry{
				db: dbName, coll: collName, snap: db.colls[collName].Snapshot(),
			})
		}
	}
	return cp
}

// CaptureCheckpoint establishes a capture point: it briefly holds every
// writer, pins one snapshot per collection plus the WAL position, and
// releases the holds. The pause is O(collections) pin registrations — no
// disk I/O happens under it.
func (s *Server) CaptureCheckpoint() *CheckpointCapture {
	release := s.HoldAllWrites()
	defer release()
	return s.CaptureHeld()
}

// checkpointStreamHook, when non-nil, runs before each collection snapshot
// streams to disk. Fault-injection tests use it to kill a checkpoint
// mid-stream and prove the atomic-rename publication: a checkpoint directory
// is either wholly at its capture point or cleanly absent.
var checkpointStreamHook func(db, coll string) error

// Checkpoint writes a snapshot of every collection, fsyncs it into a
// checkpoint directory, prunes WAL segments the checkpoint makes obsolete
// and removes older checkpoints. The snapshot set is a single capture point
// (see CaptureCheckpoint): writers pause only for the pin instant, then keep
// flowing while the pinned versions stream to disk, and recovery restores
// every collection to exactly the same cut before replaying the log tail.
func (s *Server) Checkpoint() (CheckpointStats, error) {
	cp := s.CaptureCheckpoint()
	return s.CheckpointFrom(cp)
}

// CheckpointFrom writes the checkpoint a previously pinned capture
// describes, then releases the capture. The capture may be arbitrarily old:
// the snapshots are immutable, so the directory that lands on disk is the
// capture point regardless of what has committed since. The cluster
// checkpoint uses this to capture every shard under one simultaneous hold
// and stream afterwards.
func (s *Server) CheckpointFrom(cp *CheckpointCapture) (CheckpointStats, error) {
	defer cp.Release()
	var stats CheckpointStats
	ds := s.durable.Load()
	if ds == nil {
		return stats, fmt.Errorf("mongod: durability is not enabled")
	}
	select {
	case ds.checkpointMu <- struct{}{}:
		defer func() { <-ds.checkpointMu }()
	default:
		return stats, fmt.Errorf("mongod: checkpoint already in progress")
	}

	captureLSN := cp.lsn
	// Every mutation is journaled, so an unchanged capture LSN means the
	// newest checkpoint still describes the exact current state; periodic
	// checkpointing of an idle server then costs nothing.
	if lsn, dir, err := newestCheckpoint(ds.dir); err == nil && dir != "" && lsn == captureLSN {
		return CheckpointStats{LSN: captureLSN, Skipped: true}, nil
	}
	tmp := filepath.Join(ds.dir, "checkpoint.tmp")
	if err := os.RemoveAll(tmp); err != nil {
		return stats, err
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return stats, err
	}
	manifest := checkpointManifest{CaptureLSN: captureLSN}
	for idx, e := range cp.entries {
		if checkpointStreamHook != nil {
			if err := checkpointStreamHook(e.db, e.coll); err != nil {
				return stats, err
			}
		}
		file := fmt.Sprintf("snap-%06d.bin", idx)
		info := e.snap.Info()
		if err := writeSnapshotFile(filepath.Join(tmp, file), e.snap); err != nil {
			return stats, err
		}
		entry := checkpointEntry{
			DB: e.db, Coll: e.coll, File: file, LastLSN: info.LastLSN, Count: info.Count,
		}
		for _, ix := range info.Indexes {
			entry.Indexes = append(entry.Indexes, manifestIndex{Spec: ix.Spec.ToJSON(), Unique: ix.Unique})
		}
		manifest.Collections = append(manifest.Collections, entry)
	}
	data, err := json.MarshalIndent(&manifest, "", "  ")
	if err != nil {
		return stats, err
	}
	if err := writeFileSync(filepath.Join(tmp, manifestName), data); err != nil {
		return stats, err
	}
	if err := wal.SyncDir(tmp); err != nil {
		return stats, err
	}
	final := filepath.Join(ds.dir, fmt.Sprintf("checkpoint-%016d", captureLSN))
	if err := os.RemoveAll(final); err != nil {
		return stats, err
	}
	if err := os.Rename(tmp, final); err != nil {
		return stats, err
	}
	if err := wal.SyncDir(ds.dir); err != nil {
		return stats, err
	}
	stats.LSN = captureLSN
	stats.Collections = len(manifest.Collections)

	// Prune: because the capture is a true cut, every record at or below the
	// capture LSN is reflected in some captured snapshot (or belongs to a
	// collection dropped before the capture, which the checkpoint rightly
	// omits), so the capture LSN itself is the prune cutoff — no
	// min-over-watermarks conservatism needed.
	pruned, err := ds.wal.Prune(captureLSN)
	stats.SegmentsPruned = pruned
	if err != nil {
		return stats, err
	}
	// Older checkpoints are superseded.
	entries, err := os.ReadDir(ds.dir)
	if err != nil {
		return stats, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() || !strings.HasPrefix(name, "checkpoint-") || filepath.Join(ds.dir, name) == final {
			continue
		}
		if lsn, err := strconv.ParseInt(strings.TrimPrefix(name, "checkpoint-"), 10, 64); err == nil && lsn < captureLSN {
			if err := os.RemoveAll(filepath.Join(ds.dir, name)); err != nil {
				return stats, err
			}
		}
	}
	return stats, nil
}

// CloseDurability invalidates every change-stream watcher, then flushes and
// closes the WAL. The server must not serve writes afterwards; call
// Checkpoint first for a fast next startup.
func (s *Server) CloseDurability() error {
	ds := s.durable.Load()
	if ds == nil {
		return nil
	}
	// Watchers go first: a resume replay racing the log teardown would
	// read a closing file set.
	ds.broker.Close()
	return ds.wal.Close()
}

// ChangeStreams returns the server's change-stream broker, or nil when
// durability is off. Tests and the wire layer's stats use it; streams are
// opened with Server.Watch.
func (s *Server) ChangeStreams() *changestream.Broker {
	ds := s.durable.Load()
	if ds == nil {
		return nil
	}
	return ds.broker
}

// WALHealth snapshots the WAL's durability-health histograms — fsync
// latency and the group-commit batch size each fsync covered — along with
// its append/sync counters. ok is false when durability is off.
func (s *Server) WALHealth() (fsync, batch metrics.HistogramSnapshot, stats wal.Stats, ok bool) {
	ds := s.durable.Load()
	if ds == nil {
		return fsync, batch, stats, false
	}
	return ds.wal.FsyncDurations(), ds.wal.BatchSizes(), ds.wal.Stats(), true
}

// writeSnapshotFile streams an already-pinned immutable snapshot to disk.
// The (arbitrarily slow) disk write happens entirely outside the
// collection's write path, so writes keep flowing at full speed while the
// checkpoint streams, and the manifest entry built from the same snapshot
// (count, watermark, index definitions) is consistent with the streamed data
// by construction.
func writeSnapshotFile(path string, snap *storage.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteData(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeFileSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// sortedCheckpointNames is a test helper listing checkpoint directories.
func sortedCheckpointNames(dir string) []string {
	entries, _ := os.ReadDir(dir)
	var names []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "checkpoint-") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}
