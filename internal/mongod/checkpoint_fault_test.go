package mongod

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"docstore/internal/bson"
	"docstore/internal/wal"
)

// checkpointDirs lists the published checkpoint directories under dir,
// sorted; checkpoint.tmp and WAL files never appear in it.
func checkpointDirs(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "checkpoint-") {
			names = append(names, e.Name())
		}
	}
	return names
}

// TestCheckpointMidStreamFailureLeavesPriorIntact injects a failure into
// the checkpoint stream — the Go-level version of killing a shard while its
// capture streams to disk — and checks the atomic-rename publication
// contract: the failed checkpoint is cleanly absent (never a torn
// directory a restart could half-load), the previous checkpoint survives
// untouched, the WAL is not pruned, and crash recovery still restores
// everything.
func TestCheckpointMidStreamFailureLeavesPriorIntact(t *testing.T) {
	defer func() { checkpointStreamHook = nil }()
	dir := t.TempDir()
	s, _ := durableServer(t, dir, wal.SyncAlways)
	db := s.Database("shop")
	for i := 0; i < 20; i++ {
		if _, err := db.Insert("a", bson.D(bson.IDKey, i, "v", i)); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Insert("b", bson.D(bson.IDKey, i, "v", i)); err != nil {
			t.Fatal(err)
		}
	}
	st1, err := s.Checkpoint()
	if err != nil {
		t.Fatalf("first checkpoint: %v", err)
	}
	if st1.Collections != 2 {
		t.Fatalf("first checkpoint captured %d collections, want 2", st1.Collections)
	}

	// More committed writes, then a checkpoint that dies mid-stream: the
	// hook fails once the stream reaches collection b, so depending on
	// capture order zero or one snapshot file has already landed in the
	// temporary directory — either way nothing may be published.
	for i := 20; i < 35; i++ {
		if _, err := db.Insert("a", bson.D(bson.IDKey, i, "v", i)); err != nil {
			t.Fatal(err)
		}
	}
	checkpointStreamHook = func(db, coll string) error {
		if coll == "b" {
			return fmt.Errorf("injected stream failure")
		}
		return nil
	}
	if _, err := s.Checkpoint(); err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("checkpoint with injected failure: %v, want the injected error", err)
	}
	checkpointStreamHook = nil

	// Cleanly absent: the only published checkpoint is still the first one.
	dirs := checkpointDirs(t, dir)
	want := fmt.Sprintf("checkpoint-%016d", st1.LSN)
	if len(dirs) != 1 || dirs[0] != want {
		t.Fatalf("checkpoint dirs after failed stream = %v, want just %s", dirs, want)
	}

	// The failed attempt must not have pruned the log: crash recovery seeds
	// from the surviving checkpoint and replays the tail.
	s2, rec := durableServer(t, dir, wal.SyncAlways)
	if rec.CheckpointLSN != st1.LSN {
		t.Fatalf("recovered from checkpoint LSN %d, want %d", rec.CheckpointLSN, st1.LSN)
	}
	if rec.RecordsReplayed != 15 {
		t.Fatalf("replayed %d records, want 15", rec.RecordsReplayed)
	}
	if got := s2.Database("shop").Collection("a").Count(); got != 35 {
		t.Fatalf("collection a recovered %d docs, want 35", got)
	}
	if got := s2.Database("shop").Collection("b").Count(); got != 20 {
		t.Fatalf("collection b recovered %d docs, want 20", got)
	}

	// With the fault gone the next checkpoint publishes and supersedes.
	st2, err := s2.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Skipped || st2.LSN <= st1.LSN {
		t.Fatalf("post-fault checkpoint = %+v, want a fresh LSN past %d", st2, st1.LSN)
	}
	dirs = checkpointDirs(t, dir)
	want = fmt.Sprintf("checkpoint-%016d", st2.LSN)
	if len(dirs) != 1 || dirs[0] != want {
		t.Fatalf("checkpoint dirs after recovery = %v, want just %s", dirs, want)
	}
	if err := s2.CloseDurability(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointCapturePointCut proves the checkpoint is a single capture
// point across collections, not a per-collection family of cuts. A writer
// appends document i to collection a and then — only after a's write is
// acknowledged — to collection b, so at any instant b is a prefix of a.
// The checkpoint is taken while the writer runs; the WAL is then destroyed
// so recovery restores the checkpoint content alone. A per-collection
// snapshot family could restore b ahead of a (or either with holes); a true
// cut restores both as prefixes with len(b) <= len(a) <= len(b)+1.
func TestCheckpointCapturePointCut(t *testing.T) {
	dir := t.TempDir()
	s, _ := durableServer(t, dir, wal.SyncNone)
	db := s.Database("shop")

	const total = 400
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			if _, err := db.Insert("a", bson.D(bson.IDKey, i)); err != nil {
				t.Errorf("insert a %d: %v", i, err)
				return
			}
			if _, err := db.Insert("b", bson.D(bson.IDKey, i)); err != nil {
				t.Errorf("insert b %d: %v", i, err)
				return
			}
			if i == 40 {
				close(started)
			}
		}
	}()

	<-started
	st, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if st.Collections != 2 {
		t.Fatalf("checkpoint captured %d collections, want 2", st.Collections)
	}
	<-done

	// Crash and lose the log: recovery may use only the checkpoint, so what
	// it restores is exactly the capture.
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range segs {
		if err := os.Remove(seg); err != nil {
			t.Fatal(err)
		}
	}
	s2, rec := durableServer(t, dir, wal.SyncNone)
	if rec.CheckpointLSN != st.LSN || rec.RecordsReplayed != 0 {
		t.Fatalf("recovery = %+v, want checkpoint %d with nothing replayed", rec, st.LSN)
	}

	countOf := func(coll string) int { return s2.Database("shop").Collection(coll).Count() }
	na, nb := countOf("a"), countOf("b")
	if na < 40 {
		t.Fatalf("capture happened after doc 40 yet a restored only %d docs", na)
	}
	if na < nb || na > nb+1 {
		t.Fatalf("restored a=%d b=%d: not one capture point (want b <= a <= b+1)", na, nb)
	}
	// Prefixes, no holes: ids 0..n-1 each present exactly once.
	for _, c := range []struct {
		name string
		n    int
	}{{"a", na}, {"b", nb}} {
		coll := s2.Database("shop").Collection(c.name)
		for i := 0; i < c.n; i++ {
			if coll.FindID(i) == nil {
				t.Fatalf("collection %s restored %d docs but lacks id %d: not a prefix cut", c.name, c.n, i)
			}
		}
	}
}
