// Package mongod implements the stand-alone document store server: named
// databases holding collections, CRUD and aggregation entry points, index
// management, an operation profiler, and server statistics. It is the
// process-level analogue of the mongod daemon described in §2.1.3.1 of the
// thesis.
package mongod

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"docstore/internal/aggregate"
	"docstore/internal/bson"
	"docstore/internal/index"
	"docstore/internal/metrics"
	"docstore/internal/query"
	"docstore/internal/storage"
	"docstore/internal/wal"
)

// Options configures a server.
type Options struct {
	// Name identifies the server in cluster listings (e.g. "Shard1").
	Name string
	// RAMBytes is the advertised RAM capacity, used by the working-set and
	// shard-count calculations (§2.1.3.2). Zero means unspecified.
	RAMBytes int64
	// DiskBytes is the advertised disk capacity. Zero means unspecified.
	DiskBytes int64
	// SlowOpThreshold controls the profiler: operations at or above the
	// threshold are recorded. Zero records every operation.
	SlowOpThreshold time.Duration
}

// Server is a stand-alone document store instance.
type Server struct {
	opts Options

	mu  sync.RWMutex
	dbs map[string]*Database

	counters OpCounters
	profiler profiler
	// om holds the always-on per-op counters and latency histograms the
	// /metrics endpoint exports (see metrics.go). Built at construction;
	// recording is lock-free.
	om opMetrics

	// clock, when non-nil, replaces the wall clock for profiling. Tests
	// inject one (before the server serves operations) so duration
	// assertions are deterministic.
	clock func() time.Time

	// durable, when non-nil, holds the write-ahead log every collection
	// journals through (see durability.go). It is read lock-free on the
	// write path.
	durable atomic.Pointer[durableState]
}

// OpCounters mirrors serverStatus opcounters.
type OpCounters struct {
	Insert  int64
	Query   int64
	Update  int64
	Delete  int64
	Command int64
}

// NewServer creates an empty server.
func NewServer(opts Options) *Server {
	if opts.Name == "" {
		opts.Name = "mongod"
	}
	s := &Server{opts: opts, dbs: make(map[string]*Database), om: newOpMetrics(opts.Name)}
	// A zero threshold retains every operation, so the profile ring is
	// certain to reach its capacity; paying the full backing array here
	// keeps the append-doubling reallocation out of the serving path.
	if opts.SlowOpThreshold == 0 {
		s.profiler.entries = make([]ProfileEntry, 0, profileCap)
	}
	s.om.registry.AddGaugeSource("docstore", func() []metrics.Gauge {
		return s.EngineGauges().Snapshot()
	})
	return s
}

// Name returns the server name.
func (s *Server) Name() string { return s.opts.Name }

// Options returns the server options.
func (s *Server) Options() Options { return s.opts }

// lookupDatabase returns the named database without creating it, so
// observers (checkpoints, stats) cannot resurrect a concurrently dropped
// database as an empty shell.
func (s *Server) lookupDatabase(name string) (*Database, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	db, ok := s.dbs[name]
	return db, ok
}

// Database returns the named database, creating it when absent.
func (s *Server) Database(name string) *Database {
	s.mu.Lock()
	defer s.mu.Unlock()
	db, ok := s.dbs[name]
	if !ok {
		db = newDatabase(name, s)
		s.dbs[name] = db
	}
	return db
}

// DatabaseNames lists existing databases in sorted order.
func (s *Server) DatabaseNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.dbs))
	for n := range s.dbs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DropDatabase removes the named database and reports whether it existed.
// With durability enabled the drop is journaled under the same lock that
// removes it — so it cannot interleave with writes to a recreated same-name
// database — and the drop is refused (false) if the record cannot enter the
// log, since recovery would otherwise resurrect the data.
func (s *Server) DropDatabase(name string) bool {
	s.mu.Lock()
	db, ok := s.dbs[name]
	if !ok {
		s.mu.Unlock()
		return false
	}
	delete(s.dbs, name)
	// Seal every collection's journal before logging the drop: detaching
	// waits out any writer holding the collection lock, so every record of
	// the dropped incarnation — even from a writer that resolved its
	// *Collection before the drop — has a lower LSN than the drop record.
	for _, coll := range db.Collections() {
		coll.SetJournal(nil)
	}
	commit, err := s.logStructuralLocked(wal.KindDropDatabase, name, "")
	if err != nil {
		s.dbs[name] = db
		s.reattachJournals(db)
		s.mu.Unlock()
		return false
	}
	s.mu.Unlock()
	if commit != nil {
		// A wait failure here means "not durable yet", not "not logged";
		// the record is buffered and syncs with the next flush, the same
		// window every non-journaled write has. The notification publishes
		// the dropDatabase event and advances the change-stream frontier.
		_ = commit.Wait(false)
		commit.Notify()
	}
	return true
}

// reattachJournals re-wires a database's collections to the WAL after a
// failed drop restored it. The caller holds s.mu.
func (s *Server) reattachJournals(db *Database) {
	ds := s.durable.Load()
	if ds == nil {
		return
	}
	for _, name := range db.CollectionNames() {
		db.Collection(name).SetJournal(&collJournal{w: ds.wal, broker: ds.broker, db: db.name, coll: name})
	}
}

// Counters returns a snapshot of the operation counters.
func (s *Server) Counters() OpCounters {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.counters
}

// WorkingSetBytes sums data and index sizes across all databases: the
// working-set measure used to size shards in §2.1.3.2.
func (s *Server) WorkingSetBytes() int64 {
	s.mu.RLock()
	names := make([]*Database, 0, len(s.dbs))
	for _, db := range s.dbs {
		names = append(names, db)
	}
	s.mu.RUnlock()
	var total int64
	for _, db := range names {
		total += db.WorkingSetBytes()
	}
	return total
}

// DocsExamined sums the documents examined by read cursors across every
// collection of the server: a deterministic work measure the experiment
// harness compares across data models without wall-clock noise.
func (s *Server) DocsExamined() int64 {
	s.mu.RLock()
	dbs := make([]*Database, 0, len(s.dbs))
	for _, db := range s.dbs {
		dbs = append(dbs, db)
	}
	s.mu.RUnlock()
	var total int64
	for _, db := range dbs {
		for _, coll := range db.Collections() {
			total += coll.Stats().DocsExamined
		}
	}
	return total
}

// ServerStatus summarizes the server state.
type ServerStatus struct {
	Name            string
	Databases       int
	Collections     int
	Documents       int
	DataSizeBytes   int64
	IndexSizeBytes  int64
	WorkingSetBytes int64
	RAMBytes        int64
	DiskBytes       int64
	OpCounters      OpCounters
	// RAMPressure is working set / RAM; above 1.0 the thesis predicts the
	// working set no longer fits and reads hit "disk".
	RAMPressure float64
	// Engine aggregates the MVCC engine's memory-economics gauges across
	// every collection: live versions, pin retention, copy-on-write traffic
	// and reclamation (see storage.EngineStats).
	Engine storage.EngineStats
}

// Status computes the current server status.
func (s *Server) Status() ServerStatus {
	s.mu.RLock()
	dbs := make([]*Database, 0, len(s.dbs))
	for _, db := range s.dbs {
		dbs = append(dbs, db)
	}
	counters := s.counters
	s.mu.RUnlock()

	st := ServerStatus{
		Name:       s.opts.Name,
		Databases:  len(dbs),
		RAMBytes:   s.opts.RAMBytes,
		DiskBytes:  s.opts.DiskBytes,
		OpCounters: counters,
	}
	for _, db := range dbs {
		for _, coll := range db.Collections() {
			cs := coll.Stats()
			st.Collections++
			st.Documents += cs.Count
			st.DataSizeBytes += int64(cs.DataSizeBytes)
			st.IndexSizeBytes += int64(cs.IndexSizeBytes)
			st.Engine.Add(coll.EngineStats())
		}
	}
	st.WorkingSetBytes = st.DataSizeBytes + st.IndexSizeBytes
	if st.RAMBytes > 0 {
		st.RAMPressure = float64(st.WorkingSetBytes) / float64(st.RAMBytes)
	}
	return st
}

// EngineGauges renders the server's aggregated MVCC engine gauges as a
// metrics gauge set — the form the reporting and shell layers print. The
// gauge names mirror the serverStatus engine subdocument.
func (s *Server) EngineGauges() *metrics.GaugeSet {
	e := s.Status().Engine
	g := metrics.NewGaugeSet()
	g.Set("engine.liveVersions", int64(e.LiveVersions), "")
	g.Set("engine.pinnedSnapshots", int64(e.PinnedSnapshots), "")
	g.Set("engine.oldestPinAge", int64(e.OldestPinAge), "ns")
	g.Set("engine.retainedBytes", e.RetainedBytes, "bytes")
	g.Set("engine.pages", int64(e.Pages), "")
	g.Set("engine.cowBytesCopied", e.COWBytesCopied, "bytes")
	g.Set("engine.cowBytesShared", e.COWBytesShared, "bytes")
	g.Set("engine.reclaimedBytes", e.ReclaimedBytes, "bytes")
	g.Set("engine.pagesCopied", e.PagesCopied, "")
	g.Set("engine.pagesRecycled", e.PagesRecycled, "")
	g.Set("engine.treeNodesCopied", e.TreeNodesCopied, "")
	g.Set("engine.treeBytesCopied", e.TreeBytesCopied, "bytes")
	g.Set("engine.treeBytesShared", e.TreeBytesShared, "bytes")
	g.Set("engine.treeNodesReclaimed", e.TreeNodesReclaimed, "")
	g.Set("engine.treeBytesReclaimed", e.TreeBytesReclaimed, "bytes")
	return g
}

// countOps bumps the write counters once for a whole bulk batch, mirroring
// how real opcounters count per document operation.
func (s *Server) countOps(insert, update, del int64) {
	s.mu.Lock()
	s.counters.Insert += insert
	s.counters.Update += update
	s.counters.Delete += del
	s.mu.Unlock()
}

func (s *Server) countOp(kind string) {
	s.mu.Lock()
	switch kind {
	case "insert":
		s.counters.Insert++
	case "query":
		s.counters.Query++
	case "update":
		s.counters.Update++
	case "delete":
		s.counters.Delete++
	default:
		s.counters.Command++
	}
	s.mu.Unlock()
}

// Database is a named set of collections on a server.
type Database struct {
	name   string
	server *Server

	mu    sync.RWMutex
	colls map[string]*storage.Collection
}

func newDatabase(name string, server *Server) *Database {
	return &Database{name: name, server: server, colls: make(map[string]*storage.Collection)}
}

// Name returns the database name.
func (db *Database) Name() string { return db.name }

// Server returns the server the database belongs to; the driver's
// stand-alone adapter uses it to reach server-scoped entry points (Watch).
func (db *Database) Server() *Server { return db.server }

// Collection returns the named collection, creating it when absent. On a
// durable server a new collection is born with its journal attached, so its
// very first write is already logged.
func (db *Database) Collection(name string) *storage.Collection {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.colls[name]
	if !ok {
		c = storage.NewCollection(name)
		if ds := db.server.durable.Load(); ds != nil {
			c.SetJournal(&collJournal{w: ds.wal, broker: ds.broker, db: db.name, coll: name})
		}
		db.colls[name] = c
	}
	return c
}

// HasCollection reports whether the collection exists without creating it.
func (db *Database) HasCollection(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.colls[name]
	return ok
}

// CollectionNames lists collections in sorted order.
func (db *Database) CollectionNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.colls))
	for n := range db.colls {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Collections returns the collections in name order. Collections dropped
// between the name listing and the lookup are skipped, never returned as
// nil entries.
func (db *Database) Collections() []*storage.Collection {
	names := db.CollectionNames()
	out := make([]*storage.Collection, 0, len(names))
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, n := range names {
		if c, ok := db.colls[n]; ok {
			out = append(out, c)
		}
	}
	return out
}

// DropCollection removes the named collection and reports whether it
// existed. With durability enabled the drop is journaled under the same
// lock that removes it — a recreated same-name collection must re-enter
// this lock, so its writes always log after the drop record — and the drop
// is refused (false) if the record cannot enter the log, since recovery
// would otherwise resurrect the collection.
func (db *Database) DropCollection(name string) bool {
	db.mu.Lock()
	c, ok := db.colls[name]
	if !ok {
		db.mu.Unlock()
		return false
	}
	delete(db.colls, name)
	// Seal the journal before logging the drop: SetJournal takes the
	// collection's write lock, so it waits out any in-flight writer — even
	// one that resolved the *Collection before the drop — guaranteeing
	// every record of this incarnation has a lower LSN than the drop
	// record, and no acknowledged write can be destroyed by its replay.
	c.SetJournal(nil)
	commit, err := db.server.logStructuralLocked(wal.KindDropCollection, db.name, name)
	if err != nil {
		db.colls[name] = c
		if ds := db.server.durable.Load(); ds != nil {
			c.SetJournal(&collJournal{w: ds.wal, broker: ds.broker, db: db.name, coll: name})
		}
		db.mu.Unlock()
		return false
	}
	db.mu.Unlock()
	if commit != nil {
		// See DropDatabase: a wait failure is a durability delay, not a
		// lost record. The notification publishes the drop event.
		_ = commit.Wait(false)
		commit.Notify()
	}
	return true
}

// WorkingSetBytes sums data and index sizes over the database's collections.
func (db *Database) WorkingSetBytes() int64 {
	var total int64
	for _, c := range db.Collections() {
		total += int64(c.WorkingSetBytes())
	}
	return total
}

// ---------------------------------------------------------------------------
// Operation entry points (profiled, counted)

// Insert adds a document to the named collection.
func (db *Database) Insert(coll string, doc *bson.Doc) (any, error) {
	db.server.countOp("insert")
	defer db.profile("insert", coll)()
	return db.Collection(coll).Insert(doc)
}

// InsertMany adds documents to the named collection. It is a thin wrapper
// over the bulk-write engine: one profiled batch, one lock acquisition.
func (db *Database) InsertMany(coll string, docs []*bson.Doc) ([]any, error) {
	res := db.BulkWrite(coll, storage.InsertOps(docs), storage.BulkOptions{Ordered: true})
	return res.CompactInsertedIDs(), res.FirstError()
}

// BulkWrite executes a mixed batch of writes against the named collection.
// The profiler records the batch size and how many of its ops failed; the
// opcounters count each attempted op under its own kind — ops an ordered
// batch never reached are not counted.
func (db *Database) BulkWrite(coll string, ops []storage.WriteOp, opts storage.BulkOptions) storage.BulkResult {
	span := opts.Trace.Child("mongod.bulkWrite")
	span.SetAttr("db", db.name)
	span.SetAttr("collection", coll)
	span.SetAttr("ops", len(ops))
	opts.Trace = span
	stop := db.profileBulk(coll, len(ops), span.SampledTraceID())
	res := db.Collection(coll).BulkWrite(ops, opts)
	stop(len(res.Errors))
	span.Finish()
	var inserts, updates, deletes int64
	for i := range ops[:res.Attempted] {
		switch ops[i].Kind {
		case storage.InsertOp:
			inserts++
		case storage.UpdateOp:
			updates++
		case storage.DeleteOp:
			deletes++
		}
	}
	db.server.countOps(inserts, updates, deletes)
	return res
}

// Find runs a query against the named collection. The profile entry carries
// the execution plan, including the snapshot version the scan pinned.
func (db *Database) Find(coll string, filter *bson.Doc, opts storage.FindOptions) ([]*bson.Doc, error) {
	docs, _, err := db.FindWithPlan(coll, filter, opts)
	return docs, err
}

// FindWithPlan runs a query and returns its execution plan (the explain
// entry point): access path, work counters, and the snapshot version /
// isolation level of the scan.
func (db *Database) FindWithPlan(coll string, filter *bson.Doc, opts storage.FindOptions) ([]*bson.Doc, storage.Plan, error) {
	db.server.countOp("query")
	span := opts.Trace.Child("mongod.find")
	span.SetAttr("db", db.name)
	span.SetAttr("collection", coll)
	opts.Trace = span
	start := db.server.clockTime()
	docs, plan, err := db.Collection(coll).FindWithPlan(filter, opts)
	db.recordPlan("find", coll, start, plan, span.SampledTraceID())
	span.SetAttr("docsExamined", plan.DocsExamined)
	span.Finish()
	return docs, plan, err
}

// Update applies an update specification against the named collection.
func (db *Database) Update(coll string, spec query.UpdateSpec) (storage.UpdateResult, error) {
	db.server.countOp("update")
	defer db.profile("update", coll)()
	return db.Collection(coll).Update(spec)
}

// Delete removes matching documents from the named collection.
func (db *Database) Delete(coll string, filter *bson.Doc, multi bool) (int, error) {
	db.server.countOp("delete")
	defer db.profile("delete", coll)()
	return db.Collection(coll).Delete(filter, multi)
}

// EnsureIndex creates an index on the named collection.
func (db *Database) EnsureIndex(coll string, spec *bson.Doc, unique bool) (*index.Index, error) {
	db.server.countOp("command")
	return db.Collection(coll).EnsureIndexDoc(spec, unique)
}

// Aggregate runs an aggregation pipeline over the named collection. The
// database itself is the pipeline environment, so $out and $lookup target
// sibling collections, exactly as the thesis' JavaScript queries do.
//
// A leading $match stage is pushed down into the storage engine so it can use
// the collection's indexes, matching the real engine's behaviour; the
// remaining stages run over the narrowed document set.
func (db *Database) Aggregate(coll string, stages []*bson.Doc) ([]*bson.Doc, error) {
	db.server.countOp("command")
	defer db.profile("aggregate", coll)()
	it, err := db.aggregateIter(coll, stages)
	if err != nil {
		return nil, err
	}
	return aggregate.Drain(it)
}

// RunPipeline runs a pre-parsed pipeline over the named collection,
// streaming the collection scan into the pipeline in cursor batches.
func (db *Database) RunPipeline(coll string, pipeline *aggregate.Pipeline) ([]*bson.Doc, error) {
	cur, err := db.Collection(coll).FindCursor(nil, storage.FindOptions{})
	if err != nil {
		return nil, err
	}
	return aggregate.Drain(pipeline.RunIter(Iter(cur), db.Env()))
}

// Env returns the aggregation environment backed by this database.
func (db *Database) Env() aggregate.Env { return &dbEnv{db: db} }

// dbEnv adapts a Database to the aggregate.Env interface.
type dbEnv struct{ db *Database }

func (e *dbEnv) ReadCollection(name string) ([]*bson.Doc, error) {
	if !e.db.HasCollection(name) {
		return nil, fmt.Errorf("mongod: collection %q does not exist in database %q", name, e.db.name)
	}
	// $lookup and other pipeline side-reads pin one immutable snapshot per
	// read: lock-free, and never a half-applied bulk batch.
	snap := e.db.Collection(name).Snapshot()
	defer snap.Release()
	return snap.Docs(), nil
}

func (e *dbEnv) WriteCollection(name string, docs []*bson.Doc) error {
	// $out replaces the target collection; documents are cloned so later
	// pipeline stages (or callers) cannot alias stored state.
	cloned := make([]*bson.Doc, len(docs))
	for i, d := range docs {
		cloned[i] = d.Clone()
	}
	return e.db.Collection(name).ReplaceContents(cloned)
}
