package mongod

import (
	"runtime"
	"sync"

	"docstore/internal/aggregate"
	"docstore/internal/bson"
	"docstore/internal/storage"
)

// Parallel aggregation is the thesis' future-work item of §5.2: "individual
// threads can be used to query each collection in parallel and then perform
// aggregation on a single thread that runs after the completion of the other
// threads". AggregateParallel applies the same idea within one collection:
// the per-document prefix of the pipeline (the stages a shard could run
// independently) is executed by several workers over disjoint segments of the
// collection, and the remaining stages run single-threaded over the combined
// output.

// AggregateParallel runs an aggregation pipeline using up to workers
// goroutines for the per-document stage prefix. workers <= 0 uses GOMAXPROCS.
// The result is identical to Aggregate for every pipeline whose trailing
// stages are order-insensitive or contain an explicit $sort (all the
// benchmark queries do).
func (db *Database) AggregateParallel(coll string, stages []*bson.Doc, workers int) ([]*bson.Doc, error) {
	db.server.countOp("command")
	defer db.profile("aggregate-parallel", coll)()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pipeline, err := aggregate.Parse(stages)
	if err != nil {
		return nil, err
	}
	localPart, mergePart := pipeline.Split()
	cut := localPart.Len()

	// Pull the input set. A leading $match is pushed down to the storage
	// engine exactly as in Aggregate, and excluded from the local part the
	// workers re-run.
	var input []*bson.Doc
	localStages := stages[:cut]
	if cut > 0 {
		if matchArg, ok := stages[0].Get("$match"); ok {
			if filter, isDoc := matchArg.(*bson.Doc); isDoc {
				input, err = db.Collection(coll).Find(filter, storage.FindOptions{})
				if err != nil {
					return nil, err
				}
				localStages = stages[1:cut]
			}
		}
	}
	if input == nil {
		db.Collection(coll).Scan(func(d *bson.Doc) bool {
			input = append(input, d)
			return true
		})
	}

	if workers == 1 || len(input) < 2*workers || len(localStages) == 0 {
		// Not worth splitting; degrade to the regular path over the already
		// narrowed input.
		rest, err := aggregate.Parse(append(append([]*bson.Doc(nil), localStages...), stages[cut:]...))
		if err != nil {
			return nil, err
		}
		return rest.Run(input, db.Env())
	}

	localPipeline, err := aggregate.Parse(localStages)
	if err != nil {
		return nil, err
	}
	segment := (len(input) + workers - 1) / workers
	partials := make([][]*bson.Doc, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * segment
		if lo >= len(input) {
			break
		}
		hi := lo + segment
		if hi > len(input) {
			hi = len(input)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			out, err := localPipeline.Run(input[lo:hi], nil)
			partials[w], errs[w] = out, err
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var combined []*bson.Doc
	for _, p := range partials {
		combined = append(combined, p...)
	}
	if mergePart.Len() == 0 {
		return combined, nil
	}
	mergePipeline, err := aggregate.Parse(stages[cut:])
	if err != nil {
		return nil, err
	}
	return mergePipeline.Run(combined, db.Env())
}
