package mongod

import (
	"os"
	"path/filepath"
	"testing"

	"docstore/internal/bson"
	"docstore/internal/query"
	"docstore/internal/storage"
	"docstore/internal/wal"
)

func durableServer(t *testing.T, dir string, sync wal.SyncPolicy) (*Server, RecoveryStats) {
	t.Helper()
	s := NewServer(Options{Name: "durable"})
	stats, err := s.EnableDurability(Durability{Dir: dir, Sync: sync})
	if err != nil {
		t.Fatalf("EnableDurability: %v", err)
	}
	return s, stats
}

func TestDurabilityRecoverAfterCrash(t *testing.T) {
	dir := t.TempDir()
	s, stats := durableServer(t, dir, wal.SyncAlways)
	if stats.CheckpointLSN != 0 || stats.RecordsReplayed != 0 {
		t.Fatalf("fresh dir should recover nothing: %+v", stats)
	}
	db := s.Database("shop")

	// Scalar writes, auto-assigned ids, a bulk batch, an update and a
	// delete: the whole write surface.
	autoID, err := db.Insert("orders", bson.D("sku", "a-1", "qty", 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("orders", bson.D(bson.IDKey, "o-2", "sku", "b-9", "qty", 5)); err != nil {
		t.Fatal(err)
	}
	res := db.BulkWrite("orders", []storage.WriteOp{
		storage.InsertWriteOp(bson.D(bson.IDKey, "o-3", "qty", 1)),
		storage.UpdateWriteOp(query.UpdateSpec{
			Query: bson.D(bson.IDKey, "o-2"), Update: bson.D("$inc", bson.D("qty", 10)),
		}),
		storage.DeleteWriteOp(bson.D("sku", "a-1"), true),
	}, storage.BulkOptions{Ordered: true, Journaled: true})
	if err := res.FirstError(); err != nil {
		t.Fatalf("bulk: %v", err)
	}

	// Crash: abandon the server without closing the WAL.
	s2, stats2 := durableServer(t, dir, wal.SyncAlways)
	if stats2.RecordsReplayed != 3 {
		t.Fatalf("replayed %d records, want 3", stats2.RecordsReplayed)
	}
	coll := s2.Database("shop").Collection("orders")
	if coll.Count() != 2 {
		t.Fatalf("recovered %d documents, want 2", coll.Count())
	}
	if coll.FindID(autoID) != nil {
		t.Fatalf("deleted document resurrected")
	}
	doc := coll.FindID("o-2")
	if doc == nil {
		t.Fatalf("o-2 lost")
	}
	if qty, _ := bson.AsInt(doc.GetOr("qty", 0)); qty != 15 {
		t.Fatalf("o-2 qty = %d, want 15 (update not replayed)", qty)
	}
	if coll.FindID("o-3") == nil {
		t.Fatalf("bulk insert lost")
	}
}

func TestDurabilityAutoIDsSurviveReplay(t *testing.T) {
	dir := t.TempDir()
	s, _ := durableServer(t, dir, wal.SyncAlways)
	db := s.Database("db")
	var ids []any
	for i := 0; i < 5; i++ {
		id, err := db.Insert("c", bson.D("i", i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	s2, _ := durableServer(t, dir, wal.SyncAlways)
	coll := s2.Database("db").Collection("c")
	for i, id := range ids {
		if coll.FindID(id) == nil {
			t.Fatalf("document %d lost its pre-assigned id %v across recovery", i, id)
		}
	}
}

func TestCheckpointPrunesAndSeedsRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _ := durableServer(t, dir, wal.SyncAlways)
	db := s.Database("db")
	for i := 0; i < 20; i++ {
		if _, err := db.Insert("c", bson.D(bson.IDKey, i, "v", i)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := s.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if st.LSN != 20 || st.Collections != 1 {
		t.Fatalf("checkpoint stats = %+v", st)
	}
	// Post-checkpoint writes only exist in the log.
	for i := 20; i < 25; i++ {
		if _, err := db.Insert("c", bson.D(bson.IDKey, i, "v", i)); err != nil {
			t.Fatal(err)
		}
	}

	s2, stats := durableServer(t, dir, wal.SyncAlways)
	if stats.CheckpointLSN != 20 || stats.CollectionsLoaded != 1 {
		t.Fatalf("recovery stats = %+v", stats)
	}
	if stats.RecordsReplayed != 5 {
		t.Fatalf("replayed %d records on top of the checkpoint, want 5", stats.RecordsReplayed)
	}
	if got := s2.Database("db").Collection("c").Count(); got != 25 {
		t.Fatalf("recovered %d documents, want 25", got)
	}

	// A second checkpoint supersedes the first.
	st2, err := s2.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Skipped {
		t.Fatalf("checkpoint with 5 new records skipped")
	}
	if names := sortedCheckpointNames(dir); len(names) != 1 {
		t.Fatalf("stale checkpoints left behind: %v", names)
	}
	// With nothing journaled since, a further checkpoint is a no-op.
	st3, err := s2.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !st3.Skipped || st3.LSN != st2.LSN {
		t.Fatalf("idle checkpoint not skipped: %+v", st3)
	}
}

func TestCheckpointPrunesSegments(t *testing.T) {
	dir := t.TempDir()
	s := NewServer(Options{Name: "durable"})
	if _, err := s.EnableDurability(Durability{Dir: dir, Sync: wal.SyncAlways, SegmentMaxBytes: 256}); err != nil {
		t.Fatal(err)
	}
	db := s.Database("db")
	for i := 0; i < 40; i++ {
		if _, err := db.Insert("c", bson.D(bson.IDKey, i)); err != nil {
			t.Fatal(err)
		}
	}
	before := countSegments(t, filepath.Join(dir, "wal"))
	if before < 3 {
		t.Fatalf("expected several segments, got %d", before)
	}
	st, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if st.SegmentsPruned == 0 {
		t.Fatalf("checkpoint pruned nothing (had %d segments)", before)
	}
	after := countSegments(t, filepath.Join(dir, "wal"))
	if after >= before {
		t.Fatalf("segments %d -> %d, expected a drop", before, after)
	}
	// Recovery from the pruned log still reproduces everything.
	s2, _ := durableServer(t, dir, wal.SyncAlways)
	if got := s2.Database("db").Collection("c").Count(); got != 40 {
		t.Fatalf("recovered %d documents after prune, want 40", got)
	}
}

func TestDurabilityDropsDoNotResurrect(t *testing.T) {
	dir := t.TempDir()
	s, _ := durableServer(t, dir, wal.SyncAlways)
	db := s.Database("db")
	if _, err := db.Insert("keep", bson.D(bson.IDKey, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("gone", bson.D(bson.IDKey, 1)); err != nil {
		t.Fatal(err)
	}
	if !db.DropCollection("gone") {
		t.Fatalf("drop failed")
	}
	other := s.Database("scratch")
	if _, err := other.Insert("t", bson.D(bson.IDKey, 1)); err != nil {
		t.Fatal(err)
	}
	if !s.DropDatabase("scratch") {
		t.Fatalf("drop database failed")
	}
	// ReplaceContents logs a clear plus the new batch.
	if err := db.Collection("keep").ReplaceContents([]*bson.Doc{bson.D(bson.IDKey, "fresh")}); err != nil {
		t.Fatal(err)
	}

	s2, _ := durableServer(t, dir, wal.SyncAlways)
	db2 := s2.Database("db")
	if db2.HasCollection("gone") {
		t.Fatalf("dropped collection resurrected")
	}
	for _, name := range s2.DatabaseNames() {
		if name == "scratch" {
			t.Fatalf("dropped database resurrected")
		}
	}
	keep := db2.Collection("keep")
	if keep.Count() != 1 || keep.FindID("fresh") == nil {
		t.Fatalf("ReplaceContents state not reproduced: count=%d", keep.Count())
	}
}

// TestDurabilityDropDatabaseThenRecreate pins the per-collection drop
// replay rule: a database dropped and then recreated (with a checkpoint
// taken after the recreation) must recover with ONLY the post-drop
// collections — the pre-drop ones replayed from older records must not ride
// along on the recreated database's higher watermarks.
func TestDurabilityDropDatabaseThenRecreate(t *testing.T) {
	dir := t.TempDir()
	s, _ := durableServer(t, dir, wal.SyncAlways)
	if _, err := s.Database("db1").Insert("c1", bson.D(bson.IDKey, 1)); err != nil {
		t.Fatal(err)
	}
	if !s.DropDatabase("db1") {
		t.Fatal("drop failed")
	}
	if _, err := s.Database("db1").Insert("c2", bson.D(bson.IDKey, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s2, _ := durableServer(t, dir, wal.SyncAlways)
	db := s2.Database("db1")
	if db.HasCollection("c1") {
		t.Fatalf("pre-drop collection c1 resurrected: %d docs", db.Collection("c1").Count())
	}
	if !db.HasCollection("c2") || db.Collection("c2").Count() != 1 {
		t.Fatalf("post-drop collection c2 lost")
	}
}

// TestDurabilityIndexesSurviveRecovery pins index durability: secondary
// indexes (and their unique enforcement, which shapes which logged inserts
// actually applied) must be identical after a crash, both via pure log
// replay and via a checkpoint.
func TestDurabilityIndexesSurviveRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _ := durableServer(t, dir, wal.SyncAlways)
	db := s.Database("db")
	if _, err := db.EnsureIndex("c", bson.D("k", 1), true); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("c", bson.D(bson.IDKey, 1, "k", "a")); err != nil {
		t.Fatal(err)
	}
	// Rejected by the unique index — logged before validation, so replay
	// must reject it again, which only works if the index is rebuilt first.
	if _, err := db.Insert("c", bson.D(bson.IDKey, 2, "k", "a")); err == nil {
		t.Fatal("duplicate key accepted")
	}
	// Also create-and-drop an index: the drop must not resurrect.
	if _, err := db.EnsureIndex("c", bson.D("tmp", 1), false); err != nil {
		t.Fatal(err)
	}
	if !db.Collection("c").DropIndex("tmp_1") {
		t.Fatal("drop index failed")
	}

	check := func(s2 *Server, stage string) {
		t.Helper()
		coll := s2.Database("db").Collection("c")
		if coll.Count() != 1 {
			t.Fatalf("%s: recovered %d documents, want 1 (unique rejection not reproduced)", stage, coll.Count())
		}
		if coll.Index("k_1") == nil {
			t.Fatalf("%s: unique index lost in recovery", stage)
		}
		if coll.Index("tmp_1") != nil {
			t.Fatalf("%s: dropped index resurrected", stage)
		}
		if _, err := s2.Database("db").Insert("c", bson.D(bson.IDKey, 3, "k", "a")); err == nil {
			t.Fatalf("%s: unique enforcement off after recovery", stage)
		}
	}
	// Crash + pure log replay.
	s2, _ := durableServer(t, dir, wal.SyncAlways)
	check(s2, "replay")
	// Checkpoint on the recovered server, then recover from the snapshot.
	if _, err := s2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s3, stats := durableServer(t, dir, wal.SyncAlways)
	if stats.CollectionsLoaded == 0 {
		t.Fatalf("checkpoint not used: %+v", stats)
	}
	check(s3, "checkpoint")
}

// TestDurabilityTortureTornServerLog is the server-level half of the crash
// torture: acknowledged (j: true) writes, then a mutilated log tail, then
// recovery. Every acknowledged write must be present; the torn suffix must
// not produce partial state.
func TestDurabilityTortureTornServerLog(t *testing.T) {
	dir := t.TempDir()
	s, _ := durableServer(t, dir, wal.SyncGroupCommit)
	db := s.Database("db")
	const acked = 12
	for i := 0; i < acked; i++ {
		res := db.BulkWrite("c", []storage.WriteOp{
			storage.InsertWriteOp(bson.D(bson.IDKey, i, "v", i)),
		}, storage.BulkOptions{Ordered: true, Journaled: true})
		if err := res.FirstError(); err != nil {
			t.Fatal(err)
		}
	}
	// Mutilate the tail with a torn record, as a crash mid-append would.
	walDir := filepath.Join(dir, "wal")
	segs, err := os.ReadDir(walDir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("wal dir: %v", err)
	}
	tail := filepath.Join(walDir, segs[len(segs)-1].Name())
	f, err := os.OpenFile(tail, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, stats := durableServer(t, dir, wal.SyncGroupCommit)
	if stats.RecordsReplayed != acked {
		t.Fatalf("replayed %d records, want %d", stats.RecordsReplayed, acked)
	}
	coll := s2.Database("db").Collection("c")
	if coll.Count() != acked {
		t.Fatalf("recovered %d documents, want %d", coll.Count(), acked)
	}
	for i := 0; i < acked; i++ {
		if coll.FindID(i) == nil {
			t.Fatalf("acknowledged write %d lost", i)
		}
	}
	// And the recovered server keeps accepting durable writes.
	res := db2Write(s2)
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
}

func db2Write(s *Server) storage.BulkResult {
	return s.Database("db").BulkWrite("c", []storage.WriteOp{
		storage.InsertWriteOp(bson.D(bson.IDKey, "post-recovery")),
	}, storage.BulkOptions{Ordered: true, Journaled: true})
}

func TestEnableDurabilityTwiceFails(t *testing.T) {
	dir := t.TempDir()
	s, _ := durableServer(t, dir, wal.SyncAlways)
	if _, err := s.EnableDurability(Durability{Dir: dir}); err == nil {
		t.Fatalf("second EnableDurability should fail")
	}
	if !s.DurabilityEnabled() {
		t.Fatalf("DurabilityEnabled = false")
	}
	if s.WALDir() == "" {
		t.Fatalf("WALDir empty")
	}
}

func countSegments(t *testing.T, walDir string) int {
	t.Helper()
	entries, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	return len(entries)
}
