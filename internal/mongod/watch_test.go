package mongod

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"docstore/internal/bson"
	"docstore/internal/changestream"
	"docstore/internal/query"
	"docstore/internal/storage"
	"docstore/internal/wal"
)

const watchWait = 2 * time.Second

// nextEvent fails the test if no event arrives within the wait.
func nextEvent(t *testing.T, s changestream.Stream) *changestream.Event {
	t.Helper()
	ev, err := s.Next(watchWait)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if ev == nil {
		t.Fatal("Next: timed out waiting for an event")
	}
	return ev
}

// noEvent asserts the stream is quiet.
func noEvent(t *testing.T, s changestream.Stream) {
	t.Helper()
	ev, err := s.Next(20 * time.Millisecond)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if ev != nil {
		t.Fatalf("unexpected event: %+v doc=%v", ev, ev.Doc())
	}
}

func TestWatchRequiresDurability(t *testing.T) {
	s := NewServer(Options{})
	if _, err := s.Watch("db", "c", WatchOptions{}); err == nil {
		t.Fatal("Watch on a non-durable server should fail")
	}
}

// TestWatchLiveEvents drives the basic live tail: scoped delivery, operation
// types, document keys and full documents, and drop events.
func TestWatchLiveEvents(t *testing.T) {
	s, _ := durableServer(t, t.TempDir(), wal.SyncGroupCommit)
	defer s.CloseDurability()
	db := s.Database("app")

	stream, err := s.Watch("app", "orders", WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()

	if _, err := db.Insert("orders", bson.D(bson.IDKey, 1, "sku", "a")); err != nil {
		t.Fatal(err)
	}
	// A write to another collection must not reach the scoped watcher.
	if _, err := db.Insert("invoices", bson.D(bson.IDKey, 9)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Update("orders", updateSpec(bson.D(bson.IDKey, 1), bson.D("$set", bson.D("sku", "b")))); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Delete("orders", bson.D(bson.IDKey, 1), false); err != nil {
		t.Fatal(err)
	}

	ins := nextEvent(t, stream)
	if ins.OpType != changestream.OpInsert || ins.DB != "app" || ins.Coll != "orders" {
		t.Fatalf("insert event: %+v", ins)
	}
	if sku, _ := ins.FullDocument.Get("sku"); sku != "a" {
		t.Fatalf("insert fullDocument: %v", ins.FullDocument)
	}
	upd := nextEvent(t, stream)
	if upd.OpType != changestream.OpUpdate {
		t.Fatalf("update event: %+v", upd)
	}
	if id, _ := bson.AsInt(upd.DocumentKey.GetOr(bson.IDKey, nil)); id != 1 {
		t.Fatalf("update documentKey: %v", upd.DocumentKey)
	}
	del := nextEvent(t, stream)
	if del.OpType != changestream.OpDelete {
		t.Fatalf("delete event: %+v", del)
	}
	if upd.Token.LSN <= ins.Token.LSN || del.Token.LSN <= upd.Token.LSN {
		t.Fatalf("tokens not increasing: %v %v %v", ins.Token, upd.Token, del.Token)
	}
	noEvent(t, stream)

	// The insert payload must be a snapshot: mutating the stored document
	// after the event was delivered must not reach the watcher's copy.
	if sku, _ := ins.FullDocument.Get("sku"); sku != "a" {
		t.Fatalf("event payload aliased stored document: %v", ins.FullDocument)
	}

	if !db.DropCollection("orders") {
		t.Fatal("drop failed")
	}
	drop := nextEvent(t, stream)
	if drop.OpType != changestream.OpDrop || drop.Coll != "orders" {
		t.Fatalf("drop event: %+v", drop)
	}
}

// TestWatchPipelineFilter checks $match stages gate delivery using the
// matcher machinery over the event document.
func TestWatchPipelineFilter(t *testing.T) {
	s, _ := durableServer(t, t.TempDir(), wal.SyncGroupCommit)
	defer s.CloseDurability()
	db := s.Database("app")

	stream, err := s.Watch("app", "orders", WatchOptions{Pipeline: []*bson.Doc{
		bson.D("$match", bson.D("operationType", "insert")),
		bson.D("$match", bson.D("fullDocument.qty", bson.D("$gte", 10))),
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()

	if _, err := db.Insert("orders", bson.D(bson.IDKey, 1, "qty", 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("orders", bson.D(bson.IDKey, 2, "qty", 25)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Delete("orders", bson.D(bson.IDKey, 2), false); err != nil {
		t.Fatal(err)
	}
	ev := nextEvent(t, stream)
	if id, _ := bson.AsInt(ev.DocumentKey.GetOr(bson.IDKey, nil)); id != 2 || ev.OpType != changestream.OpInsert {
		t.Fatalf("filtered stream delivered %+v", ev)
	}
	noEvent(t, stream)

	// Non-$match stages are rejected up front.
	if _, err := s.Watch("app", "orders", WatchOptions{Pipeline: []*bson.Doc{bson.D("$group", bson.D())}}); err == nil {
		t.Fatal("non-$match stage should be rejected")
	}
}

// TestWatchConcurrentBulkWrites runs concurrent unordered bulk writers
// against a watched collection and checks the watcher observes every
// committed write exactly once, in non-decreasing LSN order.
func TestWatchConcurrentBulkWrites(t *testing.T) {
	s, _ := durableServer(t, t.TempDir(), wal.SyncGroupCommit)
	defer s.CloseDurability()
	db := s.Database("app")

	stream, err := s.Watch("app", "rows", WatchOptions{BufferSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()

	const writers, perWriter = 4, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i += 10 {
				docs := make([]*bson.Doc, 0, 10)
				for k := 0; k < 10; k++ {
					docs = append(docs, bson.D(bson.IDKey, fmt.Sprintf("w%d-%d", w, i+k)))
				}
				res := db.BulkWrite("rows", storage.InsertOps(docs), storage.BulkOptions{})
				if err := res.FirstError(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	seen := make(map[string]bool)
	lastLSN := int64(0)
	for len(seen) < writers*perWriter {
		ev := nextEvent(t, stream)
		if ev.Token.LSN < lastLSN {
			t.Fatalf("LSN went backwards: %d after %d", ev.Token.LSN, lastLSN)
		}
		lastLSN = ev.Token.LSN
		id, _ := ev.DocumentKey.Get(bson.IDKey)
		key := fmt.Sprint(id)
		if seen[key] {
			t.Fatalf("duplicate event for %s", key)
		}
		seen[key] = true
	}
	noEvent(t, stream)
}

// TestWatchResumeAcrossRestart is the crash-resume satellite: write, consume
// part of the stream, abandon the server without a clean close (the acked
// writes are on disk), recover into a fresh server, resume from the token
// and check the tail arrives with no loss and no duplicates — across WAL
// segment rotation.
func TestWatchResumeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := NewServer(Options{})
	if _, err := s1.EnableDurability(Durability{Dir: dir, SegmentMaxBytes: 1 << 10}); err != nil {
		t.Fatal(err)
	}
	db1 := s1.Database("app")
	const before = 30
	for i := 0; i < before; i++ {
		if _, err := db1.Insert("rows", bson.D(bson.IDKey, i, "pad", "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")); err != nil {
			t.Fatal(err)
		}
	}

	start := changestream.Token{}
	startStr := start.String()
	// Resume from LSN 0 replays everything written so far.
	stream, err := s1.Watch("app", "rows", WatchOptions{ResumeAfter: startStr})
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for i := 0; i < before/2; i++ {
		ev := nextEvent(t, stream)
		id, _ := bson.AsInt(ev.DocumentKey.GetOr(bson.IDKey, nil))
		got = append(got, id)
	}
	token := stream.ResumeToken()
	stream.Close()

	// "Crash": abandon s1 without CloseDurability. Every insert above was
	// acknowledged, so its record is fsynced; the new server recovers them.
	s2 := NewServer(Options{})
	if _, err := s2.EnableDurability(Durability{Dir: dir, SegmentMaxBytes: 1 << 10}); err != nil {
		t.Fatal(err)
	}
	defer s2.CloseDurability()
	db2 := s2.Database("app")
	if n := db2.Collection("rows").Count(); n != before {
		t.Fatalf("recovered %d rows, want %d", n, before)
	}

	resumed, err := s2.Watch("app", "rows", WatchOptions{ResumeAfter: token})
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	// New writes after the restart ride the live tail of the same stream.
	const after = 10
	for i := 0; i < after; i++ {
		if _, err := db2.Insert("rows", bson.D(bson.IDKey, before+i)); err != nil {
			t.Fatal(err)
		}
	}
	for len(got) < before+after {
		ev := nextEvent(t, resumed)
		id, _ := bson.AsInt(ev.DocumentKey.GetOr(bson.IDKey, nil))
		got = append(got, id)
	}
	noEvent(t, resumed)
	for i, id := range got {
		if id != int64(i) {
			t.Fatalf("event %d carries _id %d: resume lost or duplicated writes (%v)", i, id, got)
		}
	}
}

// TestWatchResumeBelowCheckpointCutoff checks a checkpoint-pruned token
// fails with a clean ErrTokenTooOld.
func TestWatchResumeBelowCheckpointCutoff(t *testing.T) {
	dir := t.TempDir()
	s := NewServer(Options{})
	if _, err := s.EnableDurability(Durability{Dir: dir, Sync: wal.SyncAlways, SegmentMaxBytes: 256}); err != nil {
		t.Fatal(err)
	}
	defer s.CloseDurability()
	db := s.Database("app")
	for i := 0; i < 40; i++ {
		if _, err := db.Insert("rows", bson.D(bson.IDKey, i, "pad", "xxxxxxxxxxxxxxxx")); err != nil {
			t.Fatal(err)
		}
	}
	cp, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if cp.SegmentsPruned == 0 {
		t.Fatal("checkpoint pruned nothing; the test needs rotated segments")
	}
	old := changestream.Token{LSN: 1, Op: 0}
	if _, err := s.Watch("app", "rows", WatchOptions{ResumeAfter: old.String()}); !errors.Is(err, changestream.ErrTokenTooOld) {
		t.Fatalf("want ErrTokenTooOld, got %v", err)
	}
}

// TestWatchFailedOpsMirrorTheJournal pins the documented attempt-stream
// semantics: the stream tails the journal, so an op that failed to apply
// (duplicate _id) still appears, and a resumed stream sees the identical
// sequence.
func TestWatchFailedOpsMirrorTheJournal(t *testing.T) {
	s, _ := durableServer(t, t.TempDir(), wal.SyncGroupCommit)
	defer s.CloseDurability()
	db := s.Database("app")

	stream, err := s.Watch("app", "rows", WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	if _, err := db.Insert("rows", bson.D(bson.IDKey, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("rows", bson.D(bson.IDKey, 1)); err == nil {
		t.Fatal("duplicate insert should fail")
	}
	first, second := nextEvent(t, stream), nextEvent(t, stream)
	if first.OpType != changestream.OpInsert || second.OpType != changestream.OpInsert {
		t.Fatalf("journal mirror: %+v %+v", first, second)
	}
	tok, err := changestream.ParseToken(first.Token.String())
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := s.Watch("app", "rows", WatchOptions{ResumeAfter: tok.String()})
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	re := nextEvent(t, resumed)
	if re.Token != second.Token {
		t.Fatalf("resume diverged from live: %v vs %v", re.Token, second.Token)
	}
}

func updateSpec(q, u *bson.Doc) query.UpdateSpec { return query.UpdateSpec{Query: q, Update: u} }
