package mongod

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"docstore/internal/bson"
)

// testClock is the repo's injectable-clock pattern: time advances only when
// the test says so.
type testClock struct {
	ns atomic.Int64
}

func (c *testClock) Now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *testClock) Advance(d time.Duration) { c.ns.Add(int64(d)) }

func TestProfilerRingOverwritesOldestInOrder(t *testing.T) {
	clk := &testClock{}
	s := NewServer(Options{Name: "prof"})
	s.clock = clk.Now
	db := s.Database("testdb")

	// Fill well past capacity; each insert profiles one entry (threshold 0
	// records everything).
	const total = profileCap + 500
	for i := 0; i < total; i++ {
		clk.Advance(time.Microsecond)
		if _, err := db.Insert("c", bson.D("_id", i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	entries := s.Profile()
	if len(entries) != profileCap {
		t.Fatalf("ring holds %d entries, want %d", len(entries), profileCap)
	}
	// The ring must hold the most recent profileCap entries in insertion
	// order: starts strictly increasing, ending at the last op's start.
	for i := 1; i < len(entries); i++ {
		if !entries[i].At.After(entries[i-1].At) {
			t.Fatalf("entries out of order at %d: %v !after %v", i, entries[i].At, entries[i-1].At)
		}
	}
	wantLast := time.Unix(0, int64(total)*int64(time.Microsecond))
	if !entries[len(entries)-1].At.Equal(wantLast) {
		t.Fatalf("newest entry at %v, want %v", entries[len(entries)-1].At, wantLast)
	}
}

func TestProfilerResetClearsRingState(t *testing.T) {
	s := NewServer(Options{Name: "prof"})
	db := s.Database("testdb")
	for i := 0; i < profileCap+10; i++ {
		db.Insert("c", bson.D("_id", i))
	}
	s.ResetProfile()
	if got := s.Profile(); len(got) != 0 {
		t.Fatalf("profile after reset has %d entries", len(got))
	}
	// The ring must keep recording correctly after a reset.
	for i := 0; i < 5; i++ {
		db.Insert("c", bson.D("_id", fmt.Sprintf("post-%d", i)))
	}
	if got := s.Profile(); len(got) != 5 {
		t.Fatalf("profile after reset+5 inserts has %d entries", len(got))
	}
}

func TestSlowOpThresholdGatesRingNotHistograms(t *testing.T) {
	clk := &testClock{}
	s := NewServer(Options{Name: "prof", SlowOpThreshold: 10 * time.Millisecond})
	s.clock = clk.Now
	db := s.Database("testdb")

	// A fast op: below threshold, so the ring stays empty — but the
	// always-on histogram still records it.
	db.Insert("c", bson.D("_id", 1))
	if got := s.Profile(); len(got) != 0 {
		t.Fatalf("fast op profiled: %+v", got)
	}
	if snap := s.OpDurations("insert"); snap.Count != 1 {
		t.Fatalf("insert histogram count = %d, want 1", snap.Count)
	}

	// A slow op: the profiler keeps it. The injectable clock makes the op
	// "slow" without sleeping; Insert reads the clock at start and finish,
	// so advancing between requires the op to take a step — use a clock
	// that advances on every read instead.
	s.clock = func() time.Time { clk.Advance(10 * time.Millisecond); return clk.Now() }
	db.Insert("c", bson.D("_id", 2))
	entries := s.Profile()
	if len(entries) != 1 || entries[0].Op != "insert" {
		t.Fatalf("slow op not profiled: %+v", entries)
	}
	if snap := s.OpDurations("insert"); snap.Count != 2 {
		t.Fatalf("insert histogram count = %d, want 2", snap.Count)
	}
}
