package mongod

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"docstore/internal/aggregate"
	"docstore/internal/bson"
	"docstore/internal/storage"
)

func cursorTestDB(t *testing.T) *Database {
	t.Helper()
	db := NewServer(Options{}).Database("db")
	for i := 0; i < 400; i++ {
		doc := bson.D(
			bson.IDKey, i,
			"g", i%9,
			"v", i,
			"name", fmt.Sprintf("row-%04d", i),
		)
		if _, err := db.Insert("rows", doc); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.EnsureIndex("rows", bson.D("g", 1), false); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestDatabaseFindCursorMatchesFind checks the profiled cursor entry point
// streams exactly what Find materializes.
func TestDatabaseFindCursorMatchesFind(t *testing.T) {
	db := cursorTestDB(t)
	filter := bson.D("g", bson.D("$in", bson.A(int64(1), int64(4))))
	want, err := db.Find("rows", filter, storage.FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cur, err := db.FindCursor("rows", filter, storage.FindOptions{BatchSize: 7})
	if err != nil {
		t.Fatal(err)
	}
	got, err := cur.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("cursor %d docs, find %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("doc %d differs", i)
		}
	}
}

// TestAggregateCursorMatchesAggregateAndParallel checks the three execution
// strategies — slice Aggregate, streaming AggregateCursor and
// AggregateParallel — agree on pipelines with and without a pushed-down
// leading $match, including a $out whose side effect must land identically.
func TestAggregateCursorMatchesAggregateAndParallel(t *testing.T) {
	pipelines := map[string][]*bson.Doc{
		"pushdown match": {
			bson.D("$match", bson.D("g", bson.D("$lt", 5))),
			bson.D("$group", bson.D(bson.IDKey, "$g", "n", bson.D("$sum", 1), "total", bson.D("$sum", "$v"))),
			bson.D("$sort", bson.D(bson.IDKey, 1)),
		},
		"no match": {
			bson.D("$project", bson.D("g", 1, "v", 1)),
			bson.D("$group", bson.D(bson.IDKey, "$g", "avg", bson.D("$avg", "$v"))),
			bson.D("$sort", bson.D("avg", -1)),
		},
		"with out": {
			bson.D("$match", bson.D("g", 3)),
			bson.D("$sort", bson.D("v", 1)),
			bson.D("$out", "result"),
		},
	}
	for name, stages := range pipelines {
		t.Run(name, func(t *testing.T) {
			// Fresh databases per strategy so $out side effects are isolated.
			sliceDB := cursorTestDB(t)
			cursorDB := cursorTestDB(t)
			parallelDB := cursorTestDB(t)

			want, err := sliceDB.Aggregate("rows", stages)
			if err != nil {
				t.Fatal(err)
			}
			it, err := cursorDB.AggregateCursor("rows", stages)
			if err != nil {
				t.Fatal(err)
			}
			got, err := aggregate.Drain(it)
			if err != nil {
				t.Fatal(err)
			}
			par, err := parallelDB.AggregateParallel("rows", stages, 4)
			if err != nil {
				t.Fatal(err)
			}

			for label, docs := range map[string][]*bson.Doc{"cursor": got, "parallel": par} {
				if len(docs) != len(want) {
					t.Fatalf("%s produced %d docs, Aggregate produced %d", label, len(docs), len(want))
				}
				for i := range docs {
					if !docs[i].Equal(want[i]) {
						t.Fatalf("%s doc %d differs:\n got  %v\n want %v", label, i, docs[i], want[i])
					}
				}
			}

			// When the pipeline writes $out, both side-effect collections
			// must hold identical contents.
			if name == "with out" {
				a, err := sliceDB.Find("result", nil, storage.FindOptions{})
				if err != nil {
					t.Fatal(err)
				}
				b, err := cursorDB.Find("result", nil, storage.FindOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if len(a) != len(b) {
					t.Fatalf("$out wrote %d docs on slice path, %d on cursor path", len(a), len(b))
				}
				for i := range a {
					if !a[i].Equal(b[i]) {
						t.Fatalf("$out doc %d differs", i)
					}
				}
			}
		})
	}
}

// TestCursorProfilingSpansDrain checks a streamed query is profiled over
// its whole drain, not just cursor construction: the recorded duration must
// include time spent between batches. The server's profiling clock is
// injected and advanced explicitly between open and drain, so the assertion
// is exact on any scheduler — no sleeping.
func TestCursorProfilingSpansDrain(t *testing.T) {
	srv := NewServer(Options{}) // zero threshold records every op
	var mu sync.Mutex
	now := time.Unix(1_000_000, 0)
	srv.clock = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	db := srv.Database("db")
	for i := 0; i < 50; i++ {
		if _, err := db.Insert("rows", bson.D(bson.IDKey, i)); err != nil {
			t.Fatal(err)
		}
	}
	srv.ResetProfile()
	cur, err := db.FindCursor("rows", nil, storage.FindOptions{BatchSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(profileOf(srv, "find")); got != 0 {
		t.Fatalf("find profiled before the cursor was drained (%d entries)", got)
	}
	const pause = 20 * time.Millisecond
	advance(pause)
	if _, err := cur.All(); err != nil {
		t.Fatal(err)
	}
	entries := profileOf(srv, "find")
	if len(entries) != 1 {
		t.Fatalf("expected 1 find profile entry after drain, got %d", len(entries))
	}
	if entries[0].Duration != pause {
		t.Fatalf("profiled duration %v does not span the drain (want exactly %v)", entries[0].Duration, pause)
	}

	// Closing an undrained AggregateCursor must record exactly once too.
	srv.ResetProfile()
	it, err := db.AggregateCursor("rows", []*bson.Doc{bson.D("$match", bson.D(bson.IDKey, bson.D("$lt", 10)))})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.Next(); !ok {
		t.Fatal("expected a first document")
	}
	it.Close()
	it.Close()
	if got := len(profileOf(srv, "aggregate")); got != 1 {
		t.Fatalf("expected 1 aggregate profile entry after close, got %d", got)
	}
}

func profileOf(srv *Server, op string) []ProfileEntry {
	var out []ProfileEntry
	for _, e := range srv.Profile() {
		if e.Op == op {
			out = append(out, e)
		}
	}
	return out
}

// TestAggregateCursorStopsScanOnLimit checks the cursor path's laziness pays
// off end-to-end: a pipeline topped by $limit must not scan the whole
// collection.
func TestAggregateCursorStopsScanOnLimit(t *testing.T) {
	db := cursorTestDB(t)
	before := db.Collection("rows").Stats().CollScans
	it, err := db.AggregateCursor("rows", []*bson.Doc{
		bson.D("$limit", 5),
		bson.D("$project", bson.D("v", 1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	docs, err := aggregate.Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 5 {
		t.Fatalf("got %d docs, want 5", len(docs))
	}
	if after := db.Collection("rows").Stats().CollScans; after != before+1 {
		t.Fatalf("expected exactly one collection scan, got %d", after-before)
	}
}
