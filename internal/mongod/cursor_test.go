package mongod

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"docstore/internal/aggregate"
	"docstore/internal/bson"
	"docstore/internal/query"
	"docstore/internal/storage"
)

func cursorTestDB(t *testing.T) *Database {
	t.Helper()
	db := NewServer(Options{}).Database("db")
	for i := 0; i < 400; i++ {
		doc := bson.D(
			bson.IDKey, i,
			"g", i%9,
			"v", i,
			"name", fmt.Sprintf("row-%04d", i),
		)
		if _, err := db.Insert("rows", doc); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.EnsureIndex("rows", bson.D("g", 1), false); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestDatabaseFindCursorMatchesFind checks the profiled cursor entry point
// streams exactly what Find materializes.
func TestDatabaseFindCursorMatchesFind(t *testing.T) {
	db := cursorTestDB(t)
	filter := bson.D("g", bson.D("$in", bson.A(int64(1), int64(4))))
	want, err := db.Find("rows", filter, storage.FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cur, err := db.FindCursor("rows", filter, storage.FindOptions{BatchSize: 7})
	if err != nil {
		t.Fatal(err)
	}
	got, err := cur.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("cursor %d docs, find %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("doc %d differs", i)
		}
	}
}

// TestAggregateCursorMatchesAggregateAndParallel checks the three execution
// strategies — slice Aggregate, streaming AggregateCursor and
// AggregateParallel — agree on pipelines with and without a pushed-down
// leading $match, including a $out whose side effect must land identically.
func TestAggregateCursorMatchesAggregateAndParallel(t *testing.T) {
	pipelines := map[string][]*bson.Doc{
		"pushdown match": {
			bson.D("$match", bson.D("g", bson.D("$lt", 5))),
			bson.D("$group", bson.D(bson.IDKey, "$g", "n", bson.D("$sum", 1), "total", bson.D("$sum", "$v"))),
			bson.D("$sort", bson.D(bson.IDKey, 1)),
		},
		"no match": {
			bson.D("$project", bson.D("g", 1, "v", 1)),
			bson.D("$group", bson.D(bson.IDKey, "$g", "avg", bson.D("$avg", "$v"))),
			bson.D("$sort", bson.D("avg", -1)),
		},
		"with out": {
			bson.D("$match", bson.D("g", 3)),
			bson.D("$sort", bson.D("v", 1)),
			bson.D("$out", "result"),
		},
	}
	for name, stages := range pipelines {
		t.Run(name, func(t *testing.T) {
			// Fresh databases per strategy so $out side effects are isolated.
			sliceDB := cursorTestDB(t)
			cursorDB := cursorTestDB(t)
			parallelDB := cursorTestDB(t)

			want, err := sliceDB.Aggregate("rows", stages)
			if err != nil {
				t.Fatal(err)
			}
			it, err := cursorDB.AggregateCursor("rows", stages)
			if err != nil {
				t.Fatal(err)
			}
			got, err := aggregate.Drain(it)
			if err != nil {
				t.Fatal(err)
			}
			par, err := parallelDB.AggregateParallel("rows", stages, 4)
			if err != nil {
				t.Fatal(err)
			}

			for label, docs := range map[string][]*bson.Doc{"cursor": got, "parallel": par} {
				if len(docs) != len(want) {
					t.Fatalf("%s produced %d docs, Aggregate produced %d", label, len(docs), len(want))
				}
				for i := range docs {
					if !docs[i].Equal(want[i]) {
						t.Fatalf("%s doc %d differs:\n got  %v\n want %v", label, i, docs[i], want[i])
					}
				}
			}

			// When the pipeline writes $out, both side-effect collections
			// must hold identical contents.
			if name == "with out" {
				a, err := sliceDB.Find("result", nil, storage.FindOptions{})
				if err != nil {
					t.Fatal(err)
				}
				b, err := cursorDB.Find("result", nil, storage.FindOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if len(a) != len(b) {
					t.Fatalf("$out wrote %d docs on slice path, %d on cursor path", len(a), len(b))
				}
				for i := range a {
					if !a[i].Equal(b[i]) {
						t.Fatalf("$out doc %d differs", i)
					}
				}
			}
		})
	}
}

// TestCursorProfilingSpansDrain checks a streamed query is profiled over
// its whole drain, not just cursor construction: the recorded duration must
// include time spent between batches. The server's profiling clock is
// injected and advanced explicitly between open and drain, so the assertion
// is exact on any scheduler — no sleeping.
func TestCursorProfilingSpansDrain(t *testing.T) {
	srv := NewServer(Options{}) // zero threshold records every op
	var mu sync.Mutex
	now := time.Unix(1_000_000, 0)
	srv.clock = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	db := srv.Database("db")
	for i := 0; i < 50; i++ {
		if _, err := db.Insert("rows", bson.D(bson.IDKey, i)); err != nil {
			t.Fatal(err)
		}
	}
	srv.ResetProfile()
	cur, err := db.FindCursor("rows", nil, storage.FindOptions{BatchSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(profileOf(srv, "find")); got != 0 {
		t.Fatalf("find profiled before the cursor was drained (%d entries)", got)
	}
	const pause = 20 * time.Millisecond
	advance(pause)
	if _, err := cur.All(); err != nil {
		t.Fatal(err)
	}
	entries := profileOf(srv, "find")
	if len(entries) != 1 {
		t.Fatalf("expected 1 find profile entry after drain, got %d", len(entries))
	}
	if entries[0].Duration != pause {
		t.Fatalf("profiled duration %v does not span the drain (want exactly %v)", entries[0].Duration, pause)
	}

	// Closing an undrained AggregateCursor must record exactly once too.
	srv.ResetProfile()
	it, err := db.AggregateCursor("rows", []*bson.Doc{bson.D("$match", bson.D(bson.IDKey, bson.D("$lt", 10)))})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.Next(); !ok {
		t.Fatal("expected a first document")
	}
	it.Close()
	it.Close()
	if got := len(profileOf(srv, "aggregate")); got != 1 {
		t.Fatalf("expected 1 aggregate profile entry after close, got %d", got)
	}
}

func profileOf(srv *Server, op string) []ProfileEntry {
	var out []ProfileEntry
	for _, e := range srv.Profile() {
		if e.Op == op {
			out = append(out, e)
		}
	}
	return out
}

// TestAggregateCursorStopsScanOnLimit checks the cursor path's laziness pays
// off end-to-end: a pipeline topped by $limit must not scan the whole
// collection.
func TestAggregateCursorStopsScanOnLimit(t *testing.T) {
	db := cursorTestDB(t)
	before := db.Collection("rows").Stats().CollScans
	it, err := db.AggregateCursor("rows", []*bson.Doc{
		bson.D("$limit", 5),
		bson.D("$project", bson.D("v", 1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	docs, err := aggregate.Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 5 {
		t.Fatalf("got %d docs, want 5", len(docs))
	}
	if after := db.Collection("rows").Stats().CollScans; after != before+1 {
		t.Fatalf("expected exactly one collection scan, got %d", after-before)
	}
}

// TestFindCursorSnapshotAcrossDatabaseWrites pins the mongod-level MVCC
// contract: a cursor opened through the Database layer drains the at-open
// document set even as Database-level writes (insert, update, delete) land
// between its batches.
func TestFindCursorSnapshotAcrossDatabaseWrites(t *testing.T) {
	srv := NewServer(Options{})
	db := srv.Database("db")
	for i := 0; i < 90; i++ {
		if _, err := db.Insert("rows", bson.D(bson.IDKey, i, "v", i)); err != nil {
			t.Fatal(err)
		}
	}
	want, err := db.Find("rows", nil, storage.FindOptions{})
	if err != nil {
		t.Fatal(err)
	}

	cur, err := db.FindCursor("rows", nil, storage.FindOptions{BatchSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	var got []*bson.Doc
	for {
		b := cur.NextBatch()
		if len(b) == 0 {
			break
		}
		for _, d := range b {
			got = append(got, d.Clone())
		}
		if _, err := db.Insert("rows", bson.D(bson.IDKey, 1000+len(got))); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Update("rows", query.UpdateSpec{Query: bson.D(), Update: bson.D("$set", bson.D("v", -1)), Multi: true}); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Delete("rows", bson.D(bson.IDKey, len(got)), false); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("cursor drained %d docs, want %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("doc %d differs from at-open state:\n got  %s\n want %s", i, got[i], want[i])
		}
	}
}

// TestProfilerRecordsPlanFields checks the profiler surfaces the execution
// plan of streamed and materializing queries: access path summary, docs
// examined, and the snapshot version/isolation the scan pinned.
func TestProfilerRecordsPlanFields(t *testing.T) {
	srv := NewServer(Options{}) // zero threshold: every op records
	db := srv.Database("db")
	for i := 0; i < 30; i++ {
		if _, err := db.Insert("rows", bson.D(bson.IDKey, i, "g", i%3)); err != nil {
			t.Fatal(err)
		}
	}
	srv.ResetProfile()

	cur, err := db.FindCursor("rows", bson.D("g", 1), storage.FindOptions{BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Not recorded until the drain finishes.
	for _, e := range srv.Profile() {
		if e.Op == "find" {
			t.Fatalf("find profiled before the cursor finished")
		}
	}
	if _, err := cur.All(); err != nil {
		t.Fatal(err)
	}

	var entry *ProfileEntry
	for _, e := range srv.Profile() {
		if e.Op == "find" {
			entry = &e
			break
		}
	}
	if entry == nil {
		t.Fatalf("no find profile entry after drain")
	}
	if entry.DocsExamined != 30 {
		t.Fatalf("DocsExamined = %d, want 30", entry.DocsExamined)
	}
	if entry.SnapshotVersion <= 0 {
		t.Fatalf("SnapshotVersion = %d", entry.SnapshotVersion)
	}
	if entry.Isolation != storage.IsolationSnapshot {
		t.Fatalf("Isolation = %q", entry.Isolation)
	}
	if !strings.Contains(entry.PlanSummary, "COLLSCAN") {
		t.Fatalf("PlanSummary = %q", entry.PlanSummary)
	}

	// The slice path (FindWithPlan) records the same fields.
	srv.ResetProfile()
	_, plan, err := db.FindWithPlan("rows", bson.D("g", 1), storage.FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range srv.Profile() {
		if e.Op == "find" && e.SnapshotVersion == plan.SnapshotVersion && e.Isolation == storage.IsolationSnapshot {
			found = true
		}
	}
	if !found {
		t.Fatalf("FindWithPlan did not profile its plan; entries=%+v", srv.Profile())
	}
}

// TestDatabaseFindHintUnknownIndex checks the storage engine's unknown-hint
// error surfaces unchanged through the Database entry points.
func TestDatabaseFindHintUnknownIndex(t *testing.T) {
	db := NewServer(Options{}).Database("db")
	if _, err := db.Insert("rows", bson.D(bson.IDKey, 1, "g", 1)); err != nil {
		t.Fatal(err)
	}
	var unknown *storage.ErrUnknownIndex
	if _, err := db.Find("rows", bson.D("g", 1), storage.FindOptions{Hint: "nope_1"}); !errors.As(err, &unknown) {
		t.Fatalf("Find: %v", err)
	}
	if _, err := db.FindCursor("rows", bson.D("g", 1), storage.FindOptions{Hint: "nope_1"}); !errors.As(err, &unknown) {
		t.Fatalf("FindCursor: %v", err)
	}
	if unknown.Hint != "nope_1" || unknown.Collection != "rows" {
		t.Fatalf("error fields: %+v", unknown)
	}
}
