package mongod

import (
	"sync"
	"time"

	"docstore/internal/storage"
)

// ProfileEntry records one profiled operation, mirroring the system.profile
// collection.
type ProfileEntry struct {
	Op         string
	Collection string
	Database   string
	Duration   time.Duration
	At         time.Time
	// BatchOps and BatchErrors describe bulk writes: how many ops the batch
	// carried and how many of them failed. Both are zero for scalar ops.
	BatchOps    int
	BatchErrors int
	// COWBytesCopied is the record data the batch's page copies duplicated:
	// the copy-on-write cost this write paid so concurrent snapshots keep
	// their view. Zero for reads and for writes that only touched pages the
	// batch already owned.
	COWBytesCopied int64
	// PlanSummary, DocsExamined, SnapshotVersion and Isolation describe a
	// profiled query's execution: the access path, the work it did, and the
	// storage version its scan was pinned to (see storage.Plan). They are
	// zero for writes and for queries profiled before their plan is known.
	PlanSummary     string
	DocsExamined    int
	SnapshotVersion int64
	Isolation       string
}

// profiler collects operation timings above the configured threshold.
type profiler struct {
	mu      sync.Mutex
	entries []ProfileEntry
}

// clock returns the server's profiling clock: the wall clock unless a test
// injected one (see Server.clock), so drain-spanning duration assertions can
// advance time explicitly instead of sleeping.
func (s *Server) clockTime() time.Time {
	if s.clock != nil {
		return s.clock()
	}
	return time.Now()
}

// profile starts timing an operation; the returned function stops the timer
// and records the entry if it clears the server's slow-op threshold.
func (db *Database) profile(op, coll string) func() {
	start := db.server.clockTime()
	return func() {
		db.record(ProfileEntry{Op: op, Collection: coll, At: start})
	}
}

// profileBulk starts timing a bulk write of the given batch size; the
// returned function stops the timer and records the entry together with the
// per-op failure count the batch produced.
func (db *Database) profileBulk(coll string, batchOps int) func(batchErrors int) {
	start := db.server.clockTime()
	c := db.Collection(coll)
	cowStart := c.COWBytesCopied()
	return func(batchErrors int) {
		db.record(ProfileEntry{
			Op: "bulkWrite", Collection: coll, At: start,
			BatchOps: batchOps, BatchErrors: batchErrors,
			COWBytesCopied: c.COWBytesCopied() - cowStart,
		})
	}
}

// recordPlan records a profiled query together with its execution plan: the
// access path summary, the examined-document count, and the snapshot
// version/isolation the scan was pinned to. Streamed queries call it when
// their cursor finishes, so the duration spans the whole drain.
func (db *Database) recordPlan(op, coll string, start time.Time, plan storage.Plan) {
	db.record(ProfileEntry{
		Op: op, Collection: coll, At: start,
		PlanSummary:     plan.String(),
		DocsExamined:    plan.DocsExamined,
		SnapshotVersion: plan.SnapshotVersion,
		Isolation:       plan.Isolation,
	})
}

// record stamps the entry's duration and appends it when the elapsed time
// clears the server's slow-op threshold. entry.At must hold the start time.
func (db *Database) record(entry ProfileEntry) {
	elapsed := db.server.clockTime().Sub(entry.At)
	if elapsed < db.server.opts.SlowOpThreshold {
		return
	}
	entry.Database = db.name
	entry.Duration = elapsed
	p := &db.server.profiler
	p.mu.Lock()
	p.entries = append(p.entries, entry)
	// Bound memory: keep the most recent 10k entries.
	if len(p.entries) > 10000 {
		p.entries = p.entries[len(p.entries)-10000:]
	}
	p.mu.Unlock()
}

// Profile returns a copy of the recorded profile entries.
func (s *Server) Profile() []ProfileEntry {
	s.profiler.mu.Lock()
	defer s.profiler.mu.Unlock()
	return append([]ProfileEntry(nil), s.profiler.entries...)
}

// ResetProfile clears the recorded profile entries.
func (s *Server) ResetProfile() {
	s.profiler.mu.Lock()
	s.profiler.entries = nil
	s.profiler.mu.Unlock()
}
