package mongod

import (
	"sync"
	"time"
)

// ProfileEntry records one profiled operation, mirroring the system.profile
// collection.
type ProfileEntry struct {
	Op         string
	Collection string
	Database   string
	Duration   time.Duration
	At         time.Time
	// BatchOps and BatchErrors describe bulk writes: how many ops the batch
	// carried and how many of them failed. Both are zero for scalar ops.
	BatchOps    int
	BatchErrors int
}

// profiler collects operation timings above the configured threshold.
type profiler struct {
	mu      sync.Mutex
	entries []ProfileEntry
}

// clock returns the server's profiling clock: the wall clock unless a test
// injected one (see Server.clock), so drain-spanning duration assertions can
// advance time explicitly instead of sleeping.
func (s *Server) clockTime() time.Time {
	if s.clock != nil {
		return s.clock()
	}
	return time.Now()
}

// profile starts timing an operation; the returned function stops the timer
// and records the entry if it clears the server's slow-op threshold.
func (db *Database) profile(op, coll string) func() {
	start := db.server.clockTime()
	return func() {
		db.record(op, coll, start, 0, 0)
	}
}

// profileBulk starts timing a bulk write of the given batch size; the
// returned function stops the timer and records the entry together with the
// per-op failure count the batch produced.
func (db *Database) profileBulk(coll string, batchOps int) func(batchErrors int) {
	start := db.server.clockTime()
	return func(batchErrors int) {
		db.record("bulkWrite", coll, start, batchOps, batchErrors)
	}
}

// record appends a profile entry when the elapsed time clears the server's
// slow-op threshold.
func (db *Database) record(op, coll string, start time.Time, batchOps, batchErrors int) {
	elapsed := db.server.clockTime().Sub(start)
	if elapsed < db.server.opts.SlowOpThreshold {
		return
	}
	p := &db.server.profiler
	p.mu.Lock()
	p.entries = append(p.entries, ProfileEntry{
		Op:          op,
		Collection:  coll,
		Database:    db.name,
		Duration:    elapsed,
		At:          start,
		BatchOps:    batchOps,
		BatchErrors: batchErrors,
	})
	// Bound memory: keep the most recent 10k entries.
	if len(p.entries) > 10000 {
		p.entries = p.entries[len(p.entries)-10000:]
	}
	p.mu.Unlock()
}

// Profile returns a copy of the recorded profile entries.
func (s *Server) Profile() []ProfileEntry {
	s.profiler.mu.Lock()
	defer s.profiler.mu.Unlock()
	return append([]ProfileEntry(nil), s.profiler.entries...)
}

// ResetProfile clears the recorded profile entries.
func (s *Server) ResetProfile() {
	s.profiler.mu.Lock()
	s.profiler.entries = nil
	s.profiler.mu.Unlock()
}
