package mongod

import (
	"sync"
	"time"

	"docstore/internal/storage"
)

// ProfileEntry records one profiled operation, mirroring the system.profile
// collection.
type ProfileEntry struct {
	Op         string
	Collection string
	Database   string
	Duration   time.Duration
	At         time.Time
	// BatchOps and BatchErrors describe bulk writes: how many ops the batch
	// carried and how many of them failed. Both are zero for scalar ops.
	BatchOps    int
	BatchErrors int
	// COWBytesCopied is the record data the batch's page copies duplicated:
	// the copy-on-write cost this write paid so concurrent snapshots keep
	// their view. Zero for reads and for writes that only touched pages the
	// batch already owned.
	COWBytesCopied int64
	// PlanSummary, DocsExamined, SnapshotVersion and Isolation describe a
	// profiled query's execution: the access path, the work it did, and the
	// storage version its scan was pinned to (see storage.Plan). They are
	// zero for writes and for queries profiled before their plan is known.
	PlanSummary     string
	DocsExamined    int
	SnapshotVersion int64
	Isolation       string
	// TraceID links the entry to a retained trace: it is set only when the
	// operation carried a span whose trace was sampled at start, so every
	// non-empty TraceID resolves through getTraces. It also rides into the
	// labeled latency histogram as the bucket's exemplar.
	TraceID string
}

// profileCap bounds the profiler's memory: the ring keeps the most recent
// profileCap entries.
const profileCap = 10000

// profiler collects operation timings above the configured threshold in a
// fixed-capacity ring: entries append until the ring is full, then each new
// entry overwrites the oldest in place — O(1) per record, where the old
// append-and-reslice scheme paid an O(n) memmove every record once full.
// With a non-zero slow-op threshold the backing array grows with use
// (append until profileCap), so an idle server pays nothing; with a zero
// threshold — every op retained, the ring certain to fill — NewServer
// preallocates the full capacity so no append-doubling reallocation (a
// multi-hundred-KB copy once the ring is large) lands mid-request.
type profiler struct {
	mu      sync.Mutex
	entries []ProfileEntry
	// head indexes the oldest entry once the ring is full (len == cap);
	// before that it stays 0 and entries is already in insertion order.
	head int
}

// record appends one entry, overwriting the oldest when full. The caller
// holds p.mu.
func (p *profiler) record(entry ProfileEntry) {
	if len(p.entries) < profileCap {
		p.entries = append(p.entries, entry)
		return
	}
	p.entries[p.head] = entry
	p.head = (p.head + 1) % profileCap
}

// snapshot copies the ring in insertion order (oldest first). The caller
// holds p.mu.
func (p *profiler) snapshot() []ProfileEntry {
	out := make([]ProfileEntry, 0, len(p.entries))
	out = append(out, p.entries[p.head:]...)
	out = append(out, p.entries[:p.head]...)
	return out
}

// clock returns the server's profiling clock: the wall clock unless a test
// injected one (see Server.clock), so drain-spanning duration assertions can
// advance time explicitly instead of sleeping.
func (s *Server) clockTime() time.Time {
	if s.clock != nil {
		return s.clock()
	}
	return time.Now()
}

// profile starts timing an operation; the returned function stops the timer
// and records the entry if it clears the server's slow-op threshold.
func (db *Database) profile(op, coll string) func() {
	start := db.server.clockTime()
	return func() {
		db.record(ProfileEntry{Op: op, Collection: coll, At: start})
	}
}

// profileBulk starts timing a bulk write of the given batch size; the
// returned function stops the timer and records the entry together with the
// per-op failure count the batch produced.
func (db *Database) profileBulk(coll string, batchOps int, traceID string) func(batchErrors int) {
	start := db.server.clockTime()
	c := db.Collection(coll)
	cowStart := c.COWBytesCopied()
	return func(batchErrors int) {
		db.record(ProfileEntry{
			Op: "bulkWrite", Collection: coll, At: start,
			BatchOps: batchOps, BatchErrors: batchErrors,
			COWBytesCopied: c.COWBytesCopied() - cowStart,
			TraceID:        traceID,
		})
	}
}

// recordPlan records a profiled query together with its execution plan: the
// access path summary, the examined-document count, and the snapshot
// version/isolation the scan was pinned to. Streamed queries call it when
// their cursor finishes, so the duration spans the whole drain.
func (db *Database) recordPlan(op, coll string, start time.Time, plan storage.Plan, traceID string) {
	db.record(ProfileEntry{
		Op: op, Collection: coll, At: start,
		PlanSummary:     plan.String(),
		DocsExamined:    plan.DocsExamined,
		SnapshotVersion: plan.SnapshotVersion,
		Isolation:       plan.Isolation,
		TraceID:         traceID,
	})
}

// record stamps the entry's duration, feeds the always-on per-op latency
// histogram, and keeps the entry in the profile ring when the elapsed time
// clears the server's slow-op threshold. entry.At must hold the start time.
func (db *Database) record(entry ProfileEntry) {
	elapsed := db.server.clockTime().Sub(entry.At)
	// Every op lands in its histogram regardless of the slow-op threshold —
	// the threshold gates only what the bounded profile ring retains. The
	// labeled families key on the full namespace; the entry's trace ID (set
	// only for sampled traces) becomes the latency bucket's exemplar.
	db.server.om.observeNS(entry.Op, db.name+"."+entry.Collection, entry.TraceID, elapsed)
	if elapsed < db.server.opts.SlowOpThreshold {
		return
	}
	entry.Database = db.name
	entry.Duration = elapsed
	p := &db.server.profiler
	p.mu.Lock()
	p.record(entry)
	p.mu.Unlock()
}

// Profile returns a copy of the recorded profile entries, oldest first.
func (s *Server) Profile() []ProfileEntry {
	s.profiler.mu.Lock()
	defer s.profiler.mu.Unlock()
	return s.profiler.snapshot()
}

// ResetProfile clears the recorded profile entries.
func (s *Server) ResetProfile() {
	s.profiler.mu.Lock()
	s.profiler.entries = nil
	s.profiler.head = 0
	s.profiler.mu.Unlock()
}
