package mongod

import (
	"fmt"
	"testing"

	"docstore/internal/bson"
)

func loadParallelFixture(t *testing.T) *Database {
	t.Helper()
	db := NewServer(Options{}).Database("d")
	var docs []*bson.Doc
	for i := 0; i < 5000; i++ {
		docs = append(docs, bson.D(
			bson.IDKey, i,
			"cat", fmt.Sprintf("c%02d", i%20),
			"year", 2000+i%3,
			"qty", i%50,
		))
	}
	if _, err := db.InsertMany("sales", docs); err != nil {
		t.Fatal(err)
	}
	if _, err := db.EnsureIndex("sales", bson.D("year", 1), false); err != nil {
		t.Fatal(err)
	}
	return db
}

func parallelStages() []*bson.Doc {
	return []*bson.Doc{
		bson.D("$match", bson.D("year", 2001)),
		bson.D("$project", bson.D("cat", 1, "qty", 1, "double", bson.D("$multiply", bson.A("$qty", 2)))),
		bson.D("$group", bson.D(bson.IDKey, "$cat", "total", bson.D("$sum", "$qty"), "n", bson.D("$sum", 1))),
		bson.D("$sort", bson.D(bson.IDKey, 1)),
	}
}

func TestAggregateParallelMatchesSequential(t *testing.T) {
	db := loadParallelFixture(t)
	sequential, err := db.Aggregate("sales", parallelStages())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 4, 8} {
		parallel, err := db.AggregateParallel("sales", parallelStages(), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(parallel) != len(sequential) {
			t.Fatalf("workers=%d: %d groups vs %d", workers, len(parallel), len(sequential))
		}
		for i := range sequential {
			if !parallel[i].EqualUnordered(sequential[i]) {
				t.Fatalf("workers=%d: group %d differs: %s vs %s", workers, i, parallel[i], sequential[i])
			}
		}
	}
}

func TestAggregateParallelWithoutLeadingMatch(t *testing.T) {
	db := loadParallelFixture(t)
	stages := []*bson.Doc{
		bson.D("$project", bson.D("qty", 1)),
		bson.D("$group", bson.D(bson.IDKey, nil, "total", bson.D("$sum", "$qty"))),
	}
	seq, err := db.Aggregate("sales", stages)
	if err != nil {
		t.Fatal(err)
	}
	par, err := db.AggregateParallel("sales", stages, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != 1 || !par[0].EqualUnordered(seq[0]) {
		t.Fatalf("parallel total %s vs sequential %s", par[0], seq[0])
	}
}

func TestAggregateParallelPurelyLocalPipeline(t *testing.T) {
	db := loadParallelFixture(t)
	stages := []*bson.Doc{
		bson.D("$match", bson.D("year", 2002)),
		bson.D("$project", bson.D("qty", 1)),
	}
	seq, _ := db.Aggregate("sales", stages)
	par, err := db.AggregateParallel("sales", stages, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(seq) {
		t.Fatalf("parallel %d docs vs sequential %d", len(par), len(seq))
	}
}

func TestAggregateParallelErrors(t *testing.T) {
	db := loadParallelFixture(t)
	if _, err := db.AggregateParallel("sales", []*bson.Doc{bson.D("$bogus", 1)}, 2); err == nil {
		t.Fatalf("invalid pipeline should fail")
	}
	// Expression errors inside a worker propagate.
	bad := []*bson.Doc{
		bson.D("$match", bson.D("year", 2001)),
		bson.D("$project", bson.D("x", bson.D("$divide", bson.A(1, 0)))),
		bson.D("$group", bson.D(bson.IDKey, nil, "n", bson.D("$sum", 1))),
	}
	if _, err := db.AggregateParallel("sales", bad, 4); err == nil {
		t.Fatalf("worker error should propagate")
	}
	// Tiny collections degrade to the sequential path.
	small := NewServer(Options{}).Database("d")
	_, _ = small.Insert("c", bson.D(bson.IDKey, 1, "v", 1))
	out, err := small.AggregateParallel("c", []*bson.Doc{
		bson.D("$match", bson.D("v", 1)),
		bson.D("$group", bson.D(bson.IDKey, nil, "n", bson.D("$sum", 1))),
	}, 8)
	if err != nil || len(out) != 1 {
		t.Fatalf("small collection parallel aggregate: %v %v", out, err)
	}
}
