package mongod

import (
	"testing"

	"docstore/internal/bson"
	"docstore/internal/query"
	"docstore/internal/storage"
)

// TestDatabaseBulkWriteProfilingAndCounters checks the mongod-level bulk
// surface: one profile entry per batch carrying the batch size and failure
// count, and per-kind opcounter accounting.
func TestDatabaseBulkWriteProfilingAndCounters(t *testing.T) {
	s := NewServer(Options{}) // zero threshold: every op is profiled
	db := s.Database("db")

	res := db.BulkWrite("c", []storage.WriteOp{
		storage.InsertWriteOp(bson.D(bson.IDKey, 1)),
		storage.InsertWriteOp(bson.D(bson.IDKey, 1)), // duplicate
		storage.UpdateWriteOp(query.UpdateSpec{Query: bson.D(bson.IDKey, 1), Update: bson.D("$set", bson.D("v", 2))}),
		storage.DeleteWriteOp(bson.D(bson.IDKey, 99), false),
	}, storage.BulkOptions{})
	if res.Inserted != 1 || res.Modified != 1 || res.Deleted != 0 || len(res.Errors) != 1 {
		t.Fatalf("result = %+v", res)
	}

	counters := s.Counters()
	if counters.Insert != 2 || counters.Update != 1 || counters.Delete != 1 {
		t.Fatalf("counters = %+v", counters)
	}

	entries := s.Profile()
	if len(entries) != 1 {
		t.Fatalf("profiled %d entries, want one per batch", len(entries))
	}
	e := entries[0]
	if e.Op != "bulkWrite" || e.Collection != "c" || e.BatchOps != 4 || e.BatchErrors != 1 {
		t.Fatalf("profile entry = %+v", e)
	}
	// The update above touched a record its own batch inserted — a page the
	// batch already owned — so no COW cost is attributed.
	if e.COWBytesCopied != 0 {
		t.Fatalf("profile entry COWBytesCopied = %d for a self-inserted update, want 0", e.COWBytesCopied)
	}

	// A second batch mutating the now-published record pays a page copy,
	// and its profile entry carries the attributed COW cost.
	res = db.BulkWrite("c", []storage.WriteOp{
		storage.UpdateWriteOp(query.UpdateSpec{Query: bson.D(bson.IDKey, 1), Update: bson.D("$set", bson.D("v", 3))}),
	}, storage.BulkOptions{})
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	cowEntries := s.Profile()
	if got := cowEntries[len(cowEntries)-1].COWBytesCopied; got <= 0 {
		t.Fatalf("profile entry COWBytesCopied = %d after updating a published record, want > 0", got)
	}

	// InsertMany rides the same path: one more batch entry, not 10.
	docs := make([]*bson.Doc, 10)
	for i := range docs {
		docs[i] = bson.D(bson.IDKey, 100+i)
	}
	if _, err := db.InsertMany("c", docs); err != nil {
		t.Fatal(err)
	}
	entries = s.Profile()
	if len(entries) != 3 || entries[2].BatchOps != 10 || entries[2].BatchErrors != 0 {
		t.Fatalf("profile after InsertMany = %+v", entries)
	}
	if got := s.Counters().Insert; got != 12 {
		t.Fatalf("insert counter = %d", got)
	}
}
