package translate

import (
	"testing"

	"docstore/internal/bson"
	"docstore/internal/denorm"
	"docstore/internal/driver"
	"docstore/internal/mongod"
	"docstore/internal/storage"
)

// buildMiniRetail loads a tiny normalized retail dataset: 4 items, 3 dates,
// and 24 sales.
func buildMiniRetail(t *testing.T) driver.Store {
	t.Helper()
	store := driver.NewStandalone(mongod.NewServer(mongod.Options{}).Database("mini"))
	for i := 1; i <= 4; i++ {
		if _, err := store.Insert("item", bson.D("i_item_sk", i, "i_item_id", string(rune('A'+i-1)), "i_current_price", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 3; i++ {
		if _, err := store.Insert("date_dim", bson.D("d_date_sk", i, "d_year", 1999+i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 24; i++ {
		if _, err := store.Insert("store_sales", bson.D(
			"ss_item_sk", 1+i%4,
			"ss_sold_date_sk", 1+i%3,
			"ss_quantity", i,
		)); err != nil {
			t.Fatal(err)
		}
	}
	return store
}

func plan() Plan {
	return Plan{
		Name: "mini",
		Fact: "store_sales",
		Filters: []DimFilter{
			{Dimension: "date_dim", FKField: "ss_sold_date_sk", PKField: "d_date_sk", Where: bson.D("d_year", 2001)},
			{Dimension: "item", FKField: "ss_item_sk", PKField: "i_item_sk", Where: bson.D("i_current_price", bson.D("$lte", 2.0))},
		},
		Embed: []denorm.Embedding{
			{Dimension: "item", FKField: "ss_item_sk", PKField: "i_item_sk"},
		},
		Aggregation: []*bson.Doc{
			bson.D("$group", bson.D(bson.IDKey, "$ss_item_sk.i_item_id", "total", bson.D("$sum", "$ss_quantity"))),
			bson.D("$sort", bson.D(bson.IDKey, 1)),
		},
	}
}

func TestRunFollowsFigure48Steps(t *testing.T) {
	store := buildMiniRetail(t)
	res, err := Run(store, plan())
	if err != nil {
		t.Fatal(err)
	}
	// Year 2001 is date_sk 2 (8 sales); price <= 2.0 keeps items 1 and 2
	// (half of those): 4 documents survive the semi-join, two item groups.
	if res.IntermediateDocs != 4 {
		t.Fatalf("intermediate docs = %d, want 4", res.IntermediateDocs)
	}
	if len(res.Docs) != 2 {
		t.Fatalf("result groups = %d, want 2", len(res.Docs))
	}
	if id, _ := res.Docs[0].Get(bson.IDKey); id != "A" {
		t.Fatalf("first group = %s", res.Docs[0])
	}
	if res.Total <= 0 || res.Aggregate <= 0 || res.SemiJoin <= 0 || res.FilterDims <= 0 {
		t.Fatalf("phase durations not recorded: %+v", res)
	}
	// The output collection was materialized via $out.
	n, err := store.Count("mini_output", nil)
	if err != nil || n != 2 {
		t.Fatalf("output collection has %d docs, %v", n, err)
	}
	// The intermediate collection was cleaned up by default.
	if n, _ := store.Count("store_sales_mini_intermediate", nil); n != 0 {
		t.Fatalf("intermediate collection not dropped (%d docs)", n)
	}
	// The source fact collection is untouched (still scalar references).
	sales, _ := store.Find("store_sales", bson.D("ss_item_sk", 1), storage.FindOptions{})
	if len(sales) != 6 {
		t.Fatalf("source fact collection mutated: %d docs for item 1", len(sales))
	}
}

func TestRunKeepIntermediateAndCustomNames(t *testing.T) {
	store := buildMiniRetail(t)
	p := plan()
	p.Intermediate = "scratch"
	p.Output = "final"
	p.KeepIntermediate = true
	res, err := Run(store, p)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := store.Count("scratch", nil); n != res.IntermediateDocs {
		t.Fatalf("intermediate kept %d docs, want %d", n, res.IntermediateDocs)
	}
	if n, _ := store.Count("final", nil); n != len(res.Docs) {
		t.Fatalf("output has %d docs", n)
	}
}

func TestRunWithNilWhereSkipsSemiJoinForThatDimension(t *testing.T) {
	store := buildMiniRetail(t)
	p := plan()
	// Remove the item filter: only the year filter narrows the fact.
	p.Filters[1].Where = nil
	res, err := Run(store, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.IntermediateDocs != 8 {
		t.Fatalf("intermediate docs = %d, want 8", res.IntermediateDocs)
	}
	if len(res.Docs) != 4 {
		t.Fatalf("groups = %d, want 4", len(res.Docs))
	}
}

func TestRunEmptySemiJoin(t *testing.T) {
	store := buildMiniRetail(t)
	p := plan()
	p.Filters[0].Where = bson.D("d_year", 1900) // matches nothing
	res, err := Run(store, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.IntermediateDocs != 0 || len(res.Docs) != 0 {
		t.Fatalf("empty filter should produce nothing: %+v", res)
	}
}

func TestRunErrorsPropagate(t *testing.T) {
	store := buildMiniRetail(t)
	p := plan()
	p.Filters[0].Where = bson.D("$bogus", 1)
	if _, err := Run(store, p); err == nil {
		t.Fatalf("bad dimension filter should fail")
	}
	p = plan()
	p.Aggregation = []*bson.Doc{bson.D("$bogus", 1)}
	if _, err := Run(store, p); err == nil {
		t.Fatalf("bad aggregation should fail")
	}
}
