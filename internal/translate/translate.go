// Package translate implements the thesis' query-translation algorithm for
// the normalized data model (Figure 4.8). A SQL-style analytical query is
// expressed as a Plan and executed in the fixed order the algorithm
// prescribes:
//
//  1. query every dimension collection with a where clause and collect the
//     primary keys of the matching documents,
//  2. semi-join the fact collection against those key lists with $in and
//     store the surviving fact documents in an intermediate collection,
//  3. embed (EmbedDocuments, Figure 4.7) only the dimension collections whose
//     attributes the aggregation needs,
//  4. run the aggregation pipeline over the embedded intermediate collection
//     and store the result in an output collection.
package translate

import (
	"fmt"
	"time"

	"docstore/internal/bson"
	"docstore/internal/denorm"
	"docstore/internal/driver"
	"docstore/internal/storage"
)

// DimFilter is one dimension collection queried by its where clause
// (step 1) and semi-joined into the fact collection (step 2).
type DimFilter struct {
	// Dimension is the dimension collection name.
	Dimension string
	// FKField is the fact collection field referencing the dimension.
	FKField string
	// PKField is the dimension's primary key field.
	PKField string
	// Where is the dimension's filter; nil selects every document (the
	// algorithm still semi-joins, which then only removes fact documents with
	// dangling references).
	Where *bson.Doc
}

// Plan is a translated analytical query against the normalized model.
type Plan struct {
	// Name identifies the query ("query7").
	Name string
	// Fact is the fact collection the query reads.
	Fact string
	// Filters are the semi-joined dimensions.
	Filters []DimFilter
	// Embed lists the dimensions embedded into the intermediate collection
	// because the aggregation uses their attributes.
	Embed []denorm.Embedding
	// Aggregation is the pipeline run over the embedded intermediate
	// collection; it should not contain a $out stage (the runner adds one for
	// Output).
	Aggregation []*bson.Doc
	// Intermediate is the intermediate collection name; defaults to
	// "<fact>_<name>_intermediate".
	Intermediate string
	// Output is the final collection name; defaults to "<name>_output".
	Output string
	// KeepIntermediate leaves the intermediate collection in place (the
	// thesis notes its storage cost); when false the runner drops it.
	KeepIntermediate bool
}

// Result reports the execution of a Plan.
type Result struct {
	Docs []*bson.Doc
	// IntermediateDocs is the size of the semi-joined fact subset.
	IntermediateDocs int
	// Phase durations.
	FilterDims time.Duration
	SemiJoin   time.Duration
	Embedding  time.Duration
	Aggregate  time.Duration
	Total      time.Duration
}

func (p *Plan) intermediateName() string {
	if p.Intermediate != "" {
		return p.Intermediate
	}
	return fmt.Sprintf("%s_%s_intermediate", p.Fact, p.Name)
}

func (p *Plan) outputName() string {
	if p.Output != "" {
		return p.Output
	}
	return p.Name + "_output"
}

// Run executes the plan against a deployment.
func Run(store driver.Store, p Plan) (Result, error) {
	var res Result
	start := time.Now()

	// Step 1: filter each dimension and collect the primary keys (the
	// ArrayList per dimension of Figure 4.8).
	phase := time.Now()
	type keyList struct {
		fk   string
		keys []any
	}
	var lists []keyList
	for _, f := range p.Filters {
		if f.Where == nil {
			continue
		}
		dimDocs, err := store.Find(f.Dimension, f.Where, storage.FindOptions{})
		if err != nil {
			return res, fmt.Errorf("translate: filtering %s: %w", f.Dimension, err)
		}
		keys := make([]any, 0, len(dimDocs))
		for _, d := range dimDocs {
			if pk, ok := d.Get(f.PKField); ok {
				keys = append(keys, pk)
			}
		}
		lists = append(lists, keyList{fk: f.FKField, keys: keys})
	}
	res.FilterDims = time.Since(phase)

	// Step 2: semi-join the fact collection with $in over each key list and
	// store the surviving documents in the intermediate collection.
	phase = time.Now()
	semiJoin := bson.NewDoc(len(lists))
	for _, l := range lists {
		semiJoin.Set(l.fk, bson.D("$in", l.keys))
	}
	factDocs, err := store.Find(p.Fact, semiJoin, storage.FindOptions{})
	if err != nil {
		return res, fmt.Errorf("translate: semi-joining %s: %w", p.Fact, err)
	}
	intermediate := p.intermediateName()
	store.DropCollection(intermediate)
	batch := make([]*bson.Doc, 0, len(factDocs))
	for _, d := range factDocs {
		clone := d.Clone()
		clone.Delete(bson.IDKey)
		batch = append(batch, clone)
	}
	if len(batch) > 0 {
		if _, err := store.InsertMany(intermediate, batch); err != nil {
			return res, fmt.Errorf("translate: writing intermediate collection: %w", err)
		}
	}
	res.IntermediateDocs = len(batch)
	res.SemiJoin = time.Since(phase)

	// Step 3: embed the dimensions whose attributes the aggregation uses.
	phase = time.Now()
	for _, emb := range p.Embed {
		if _, err := denorm.EmbedDocuments(store, intermediate, emb); err != nil {
			return res, err
		}
	}
	res.Embedding = time.Since(phase)

	// Step 4: aggregate the embedded intermediate collection into the output
	// collection.
	phase = time.Now()
	stages := append(append([]*bson.Doc(nil), p.Aggregation...), bson.D("$out", p.outputName()))
	docs, err := store.Aggregate(intermediate, stages)
	if err != nil {
		return res, fmt.Errorf("translate: aggregating %s: %w", intermediate, err)
	}
	res.Aggregate = time.Since(phase)
	res.Docs = docs

	if !p.KeepIntermediate {
		store.DropCollection(intermediate)
	}
	res.Total = time.Since(start)
	return res, nil
}
