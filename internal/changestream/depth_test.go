package changestream

import "testing"

// TestWatcherDepthsAndBufferedStats pins the per-watcher buffer-depth
// surface: depths list every live watcher with its scope and occupancy in
// attach order, Stats aggregates them into BufferedEvents/MaxBufferDepth,
// and consuming or closing a watcher is reflected immediately.
func TestWatcherDepthsAndBufferedStats(t *testing.T) {
	w := testWAL(t, 0)
	b := NewBroker(w)
	sub1, err := b.Subscribe(SubscribeOptions{DB: "db", Coll: "c", BufferSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sub1.Close()
	sub2, err := b.Subscribe(SubscribeOptions{BufferSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()

	for i := 0; i < 3; i++ {
		rec := appendInsert(t, w, i)
		b.Publish(rec.LSN, EventsFromRecord(rec, false))
	}

	depths := b.WatcherDepths()
	if len(depths) != 2 {
		t.Fatalf("watcher depths = %d entries, want 2", len(depths))
	}
	if depths[0].ID >= depths[1].ID {
		t.Fatalf("depths not in attach order: %+v", depths)
	}
	if depths[0].DB != "db" || depths[0].Coll != "c" || depths[0].Buffered != 3 || depths[0].Capacity != 4 {
		t.Fatalf("watcher 1 depth = %+v, want db/c 3/4", depths[0])
	}
	if depths[1].DB != "" || depths[1].Buffered != 3 || depths[1].Capacity != 8 {
		t.Fatalf("watcher 2 depth = %+v, want server-wide 3/8", depths[1])
	}
	st := b.Stats()
	if st.BufferedEvents != 6 || st.MaxBufferDepth != 3 {
		t.Fatalf("stats buffered=%d max=%d, want 6/3", st.BufferedEvents, st.MaxBufferDepth)
	}

	// Consuming drains the depth; closing removes the watcher entirely.
	if _, err := sub1.Next(0); err != nil {
		t.Fatal(err)
	}
	if d := b.WatcherDepths(); d[0].Buffered != 2 {
		t.Fatalf("watcher 1 depth after consume = %d, want 2", d[0].Buffered)
	}
	sub2.Close()
	depths = b.WatcherDepths()
	if len(depths) != 1 || depths[0].Capacity != 4 {
		t.Fatalf("depths after close = %+v, want only watcher 1", depths)
	}
	if st := b.Stats(); st.BufferedEvents != 2 || st.MaxBufferDepth != 2 {
		t.Fatalf("stats after drain/close: %+v", st)
	}
}
