package changestream

import (
	"docstore/internal/bson"

	"docstore/internal/storage"
	"docstore/internal/wal"
)

// Operation types of change events, mirroring the real server's change
// stream operationType values.
const (
	OpInsert       = "insert"
	OpUpdate       = "update"
	OpDelete       = "delete"
	OpDrop         = "drop"
	OpDropDatabase = "dropDatabase"
)

// Event is one delivered change. Events mirror the write-ahead log — the
// stream is a tail of the journal, exactly like tailing the oplog — so an
// event describes a logged operation: an insert carries the full document, an
// update carries its specification (the log records logical operations, not
// per-document post-images), a delete carries its filter. Events are shared
// between watchers and with the replay path; consumers must treat every
// document reachable from an event as read-only.
type Event struct {
	// Token is the event's resume token: hand it back as resumeAfter to
	// continue the stream strictly after this event.
	Token Token
	// OpType is one of the Op* constants.
	OpType string
	// DB and Coll name the namespace the change applies to; Coll is empty
	// for database-wide events (dropDatabase).
	DB   string
	Coll string
	// DocumentKey is {_id: v} when the operation pins a single document by
	// id: always for inserts, and for updates/deletes whose filter is an
	// _id point query.
	DocumentKey *bson.Doc
	// FullDocument is the inserted document (inserts only).
	FullDocument *bson.Doc
	// UpdateDescription carries an update's specification: {query, update,
	// multi?, upsert?}.
	UpdateDescription *bson.Doc
	// Filter is a delete's filter document.
	Filter *bson.Doc
	// Shard names the shard that produced the event in a cluster-wide
	// merged stream; empty on a stand-alone stream.
	Shard string

	doc *bson.Doc // cached rendering, built once per event
}

// Doc returns the event rendered as a document, the form the wire protocol
// delivers and the form $match pipeline filters evaluate against:
//
//	{_id: "<token>", operationType: "insert", ns: {db: "d", coll: "c"},
//	 documentKey: {_id: ...}, fullDocument: {...}}
//
// EventsFromRecord pre-renders every event before it is shared, so Doc is a
// cache read for broker-delivered events; it deliberately never writes the
// cache itself, because the same *Event is handed to every watcher and a
// lazy write would race concurrent consumers. Callers must not mutate the
// rendering.
func (e *Event) Doc() *bson.Doc {
	if e.doc != nil {
		return e.doc
	}
	return e.render()
}

// render builds the document form. It is called once by the single-threaded
// constructor (EventsFromRecord) to fill the cache, and per call on private
// copies whose cache was reset (the cluster merge's shard stamping).
func (e *Event) render() *bson.Doc {
	d := bson.NewDoc(7)
	d.Set("_id", e.Token.String())
	d.Set("operationType", e.OpType)
	ns := bson.NewDoc(2)
	ns.Set("db", e.DB)
	if e.Coll != "" {
		ns.Set("coll", e.Coll)
	}
	d.Set("ns", ns)
	if e.Shard != "" {
		d.Set("shard", e.Shard)
	}
	if e.DocumentKey != nil {
		d.Set("documentKey", e.DocumentKey)
	}
	if e.FullDocument != nil {
		d.Set("fullDocument", e.FullDocument)
	}
	if e.UpdateDescription != nil {
		d.Set("updateDescription", e.UpdateDescription)
	}
	if e.Filter != nil {
		d.Set("filter", e.Filter)
	}
	return d
}

// ResetDocCache clears the cached rendering. The cluster merge stamps a
// shard name onto a copied event and resets the copy's cache so its
// rendering reflects the stamp (the original, shared with other watchers, is
// untouched).
func (e *Event) ResetDocCache() { e.doc = nil }

// EventsFromRecord derives the change events of one WAL record, in operation
// order. Index management records produce no watcher-visible events (their
// LSNs still advance the delivery frontier). The same derivation serves the
// live tail and the resume replay, which is what makes a resumed stream
// byte-equivalent to one that never disconnected.
//
// clone deep-copies document payloads into the events. The live path sets it
// (under the collection lock) because a logged insert document is the stored
// document: later in-place updates would otherwise race watchers reading the
// event. Records decoded from segment files own their documents, so replay
// passes false.
func EventsFromRecord(rec *wal.Record, clone bool) []*Event {
	events := eventsFromRecord(rec, clone)
	// Pre-render here, while the events are still private to one
	// goroutine: once the broker shares them across watcher buffers, a
	// lazy cache fill would race concurrent consumers.
	for _, ev := range events {
		ev.doc = ev.render()
	}
	return events
}

func eventsFromRecord(rec *wal.Record, clone bool) []*Event {
	switch rec.Kind {
	case wal.KindBatch:
		events := make([]*Event, 0, len(rec.Ops))
		for i := range rec.Ops {
			op := &rec.Ops[i]
			ev := &Event{
				Token: Token{LSN: rec.LSN, Op: int32(i)},
				DB:    rec.DB, Coll: rec.Coll,
			}
			switch op.Kind {
			case storage.InsertOp:
				ev.OpType = OpInsert
				doc := op.Doc
				if clone {
					doc = doc.Clone()
				}
				ev.FullDocument = doc
				if id := doc.ID(); id != nil {
					ev.DocumentKey = bson.D(bson.IDKey, id)
				}
			case storage.UpdateOp:
				ev.OpType = OpUpdate
				q, u := op.Update.Query, op.Update.Update
				if clone {
					q, u = q.Clone(), u.Clone()
				}
				desc := bson.NewDoc(4)
				if q != nil {
					desc.Set("query", q)
				}
				if u != nil {
					desc.Set("update", u)
				}
				if op.Update.Multi {
					desc.Set("multi", true)
				}
				if op.Update.Upsert {
					desc.Set("upsert", true)
				}
				ev.UpdateDescription = desc
				ev.DocumentKey = pointIDKey(q)
			case storage.DeleteOp:
				ev.OpType = OpDelete
				f := op.Filter
				if clone {
					f = f.Clone()
				}
				ev.Filter = f
				ev.DocumentKey = pointIDKey(f)
			default:
				continue
			}
			events = append(events, ev)
		}
		return events
	case wal.KindClear, wal.KindDropCollection:
		return []*Event{{
			Token:  Token{LSN: rec.LSN, Op: 0},
			OpType: OpDrop,
			DB:     rec.DB, Coll: rec.Coll,
		}}
	case wal.KindDropDatabase:
		return []*Event{{
			Token:  Token{LSN: rec.LSN, Op: 0},
			OpType: OpDropDatabase,
			DB:     rec.DB,
		}}
	default: // index management: frontier-only
		return nil
	}
}

// pointIDKey extracts {_id: v} from a filter that pins a single document by
// a literal _id, the only case where an update/delete event can name its
// document key without the post-apply state.
func pointIDKey(filter *bson.Doc) *bson.Doc {
	if filter == nil {
		return nil
	}
	v, ok := filter.Get(bson.IDKey)
	if !ok {
		return nil
	}
	switch v.(type) {
	case *bson.Doc, []any:
		return nil // operator or array form: not a point literal
	}
	return bson.D(bson.IDKey, v)
}
