package changestream

import (
	"strings"
	"testing"
)

// FuzzResumeTokenDecode checks the token codecs never panic on arbitrary
// input and that every accepted token round-trips exactly: what a client
// hands back as resumeAfter is either rejected with an error or means
// precisely one log position.
func FuzzResumeTokenDecode(f *testing.F) {
	f.Add(Token{LSN: 1, Op: 0}.String())
	f.Add(Token{LSN: 1 << 60, Op: opEnd}.String())
	f.Add("")
	f.Add("deadbeef")
	f.Add("Shard1=" + Token{LSN: 4, Op: 2}.String() + "/Shard2=" + Token{LSN: 9, Op: opEnd}.String())
	f.Add("a=/b==c")
	f.Add(strings.Repeat("/", 64))
	f.Fuzz(func(t *testing.T, s string) {
		if tok, err := ParseToken(s); err == nil {
			re, err := ParseToken(tok.String())
			if err != nil || re != tok {
				t.Fatalf("token %q: round trip %v -> %v (%v)", s, tok, re, err)
			}
		}
		if comp, err := ParseCompositeToken(s); err == nil {
			re, err := ParseCompositeToken(comp.String())
			if err != nil || len(re) != len(comp) {
				t.Fatalf("composite %q: round trip %v -> %v (%v)", s, comp, re, err)
			}
			for name, tok := range comp {
				if re[name] != tok {
					t.Fatalf("composite %q: shard %s %v -> %v", s, name, tok, re[name])
				}
			}
		}
	})
}
