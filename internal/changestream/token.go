package changestream

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Token is a resume position in one server's change stream: the WAL record
// (LSN) and the index of the last delivered operation inside that record's
// batch. Resuming from a token delivers events strictly after it — the
// remaining operations of record LSN first, then every later record — so a
// consumer that persists the token of each event it processes gets
// exactly-once delivery across disconnects and server restarts.
type Token struct {
	// LSN is the log sequence number of the WAL record the event came from.
	LSN int64
	// Op is the index of the event's operation within the record's batch.
	// opEnd marks a whole record as consumed (the position of a fresh,
	// event-less stream).
	Op int32
}

// opEnd is the Op value meaning "every operation of this record delivered";
// the initial token of a stream that has not delivered anything yet is
// {joinLSN, opEnd}, i.e. resume from the next record.
const opEnd = math.MaxInt32

// tokenLen is the length of an encoded token: 12 bytes hex-encoded.
const tokenLen = 24

// String renders the token in its wire form: 24 hex characters encoding the
// big-endian LSN followed by the big-endian op index.
func (t Token) String() string {
	var raw [12]byte
	binary.BigEndian.PutUint64(raw[0:8], uint64(t.LSN))
	binary.BigEndian.PutUint32(raw[8:12], uint32(t.Op))
	return hex.EncodeToString(raw[:])
}

// next reports the first LSN a resume from this token needs from the log: the
// token's own record when operations of it remain undelivered, otherwise the
// record after it. LSNs start at 1, so the zero Token means "from the very
// beginning of the log".
func (t Token) next() int64 {
	if t.LSN == 0 || t.Op == opEnd {
		return t.LSN + 1
	}
	return t.LSN
}

// ParseToken decodes the wire form of a token. It never panics on malformed
// input (FuzzResumeTokenDecode enforces this) and rejects anything that could
// not have been produced by String.
func ParseToken(s string) (Token, error) {
	if len(s) != tokenLen {
		return Token{}, fmt.Errorf("changestream: resume token %q: want %d hex characters, have %d", s, tokenLen, len(s))
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return Token{}, fmt.Errorf("changestream: resume token %q: %v", s, err)
	}
	lsn := int64(binary.BigEndian.Uint64(raw[0:8]))
	op := int32(binary.BigEndian.Uint32(raw[8:12]))
	if lsn < 0 {
		return Token{}, fmt.Errorf("changestream: resume token %q: negative lsn", s)
	}
	if op < 0 {
		return Token{}, fmt.Errorf("changestream: resume token %q: negative op index", s)
	}
	return Token{LSN: lsn, Op: op}, nil
}

// CompositeToken is the cluster-wide resume token of a merged stream: one
// per-shard token under the shard's name. A mongos watcher resumes by handing
// each shard its own token, so per-shard exactly-once delivery carries over
// to the merged stream.
type CompositeToken map[string]Token

// String renders the composite token as "shard=token/shard=token" with the
// shards in sorted order, so equal positions encode identically.
func (c CompositeToken) String() string {
	if len(c) == 0 {
		return ""
	}
	names := make([]string, 0, len(c))
	for name := range c {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = name + "=" + c[name].String()
	}
	return strings.Join(parts, "/")
}

// ParseCompositeToken decodes the composite form. The empty string is a valid
// empty token (a fresh cluster-wide stream). Like ParseToken it never panics
// on malformed input.
func ParseCompositeToken(s string) (CompositeToken, error) {
	out := CompositeToken{}
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, "/") {
		name, tok, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("changestream: composite token part %q: want shard=token", part)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("changestream: composite token names shard %q twice", name)
		}
		t, err := ParseToken(tok)
		if err != nil {
			return nil, err
		}
		out[name] = t
	}
	return out, nil
}
