package changestream

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"docstore/internal/bson"
	"docstore/internal/query"
	"docstore/internal/storage"
	"docstore/internal/wal"
)

func updSpec(q, u *bson.Doc) query.UpdateSpec { return query.UpdateSpec{Query: q, Update: u} }

func testWAL(t *testing.T, segmentMax int64) *wal.WAL {
	t.Helper()
	w, err := wal.Open(wal.Options{Dir: t.TempDir(), Sync: wal.SyncNone, SegmentMaxBytes: segmentMax})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

// appendInsert logs a one-op insert batch and returns the record with its
// assigned LSN.
func appendInsert(t *testing.T, w *wal.WAL, v int) *wal.Record {
	t.Helper()
	rec := &wal.Record{
		Kind: wal.KindBatch, DB: "db", Coll: "c",
		Ops: []storage.WriteOp{storage.InsertWriteOp(bson.D(bson.IDKey, v, "v", v))},
	}
	if _, err := w.Append(rec); err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestTokenRoundTrip(t *testing.T) {
	cases := []Token{
		{LSN: 0, Op: 0},
		{LSN: 1, Op: 0},
		{LSN: 42, Op: 7},
		{LSN: 1<<62 + 12345, Op: opEnd},
	}
	for _, tok := range cases {
		got, err := ParseToken(tok.String())
		if err != nil {
			t.Fatalf("ParseToken(%s): %v", tok, err)
		}
		if got != tok {
			t.Fatalf("round trip %v -> %v", tok, got)
		}
	}
	for _, bad := range []string{"", "zz", "00000000000000010000000", "g0000000000000010000000f", "ffffffffffffffff00000000"} {
		if _, err := ParseToken(bad); err == nil {
			t.Fatalf("ParseToken(%q) should fail", bad)
		}
	}

	comp := CompositeToken{"Shard2": {LSN: 9, Op: 1}, "Shard1": {LSN: 4, Op: opEnd}}
	got, err := ParseCompositeToken(comp.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got["Shard1"] != comp["Shard1"] || got["Shard2"] != comp["Shard2"] {
		t.Fatalf("composite round trip: %v -> %v", comp, got)
	}
	if empty, err := ParseCompositeToken(""); err != nil || len(empty) != 0 {
		t.Fatalf("empty composite: %v %v", empty, err)
	}
	for _, bad := range []string{"=abc", "a=zz", "a", "a=" + Token{}.String() + "/a=" + Token{}.String()} {
		if _, err := ParseCompositeToken(bad); err == nil {
			t.Fatalf("ParseCompositeToken(%q) should fail", bad)
		}
	}
}

// TestBrokerSequencesOutOfOrderPublishes checks that a watcher observes
// events in LSN order even when the post-commit hooks fire out of order, and
// that frontier-only records (no events) still advance delivery.
func TestBrokerSequencesOutOfOrderPublishes(t *testing.T) {
	w := testWAL(t, 0)
	b := NewBroker(w)
	sub, err := b.Subscribe(SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	recs := make([]*wal.Record, 5)
	for i := range recs {
		recs[i] = appendInsert(t, w, i)
	}
	// Publish in scrambled order; record 2 is frontier-only (nil events),
	// as an index-management record would be.
	order := []int{2, 4, 0, 1, 3}
	for _, i := range order {
		var events []*Event
		if i != 2 {
			events = EventsFromRecord(recs[i], false)
		}
		b.Publish(recs[i].LSN, events)
	}

	var got []int64
	for {
		ev, err := sub.Next(0)
		if err != nil {
			t.Fatal(err)
		}
		if ev == nil {
			break
		}
		got = append(got, ev.Token.LSN)
	}
	want := []int64{recs[0].LSN, recs[1].LSN, recs[3].LSN, recs[4].LSN}
	if len(got) != len(want) {
		t.Fatalf("got %v events, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d: lsn %d, want %d (order not sequenced)", i, got[i], want[i])
		}
	}
	if st := b.Stats(); st.RecordsPublished != 5 || st.EventsDelivered != 4 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestSlowConsumerInvalidation checks a watcher that overflows its bounded
// buffer is cut off with ErrSlowConsumer after draining what was buffered.
func TestSlowConsumerInvalidation(t *testing.T) {
	w := testWAL(t, 0)
	b := NewBroker(w)
	sub, err := b.Subscribe(SubscribeOptions{BufferSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	for i := 0; i < 4; i++ {
		rec := appendInsert(t, w, i)
		b.Publish(rec.LSN, EventsFromRecord(rec, false))
	}
	delivered := 0
	for {
		ev, err := sub.Next(10 * time.Millisecond)
		if err != nil {
			if !errors.Is(err, ErrSlowConsumer) {
				t.Fatalf("want ErrSlowConsumer, got %v", err)
			}
			break
		}
		if ev == nil {
			t.Fatal("stream went quiet instead of reporting invalidation")
		}
		delivered++
	}
	if delivered != 2 {
		t.Fatalf("delivered %d buffered events before invalidation, want 2", delivered)
	}
	if st := b.Stats(); st.Watchers != 0 || st.SlowConsumers != 1 {
		t.Fatalf("stats after invalidation: %+v", st)
	}
}

// TestFilterSelectsEvents checks the per-watcher predicate runs on both the
// live path and the replay path and gates the resume token identically.
func TestFilterSelectsEvents(t *testing.T) {
	w := testWAL(t, 0)
	b := NewBroker(w)
	even := func(ev *Event) bool {
		v, _ := bson.AsInt(ev.FullDocument.GetOr("v", int64(-1)))
		return v%2 == 0
	}
	sub, err := b.Subscribe(SubscribeOptions{Filter: even})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	for i := 0; i < 6; i++ {
		rec := appendInsert(t, w, i)
		b.Publish(rec.LSN, EventsFromRecord(rec, false))
	}
	var lives []int64
	for {
		ev, err := sub.Next(0)
		if err != nil {
			t.Fatal(err)
		}
		if ev == nil {
			break
		}
		v, _ := bson.AsInt(ev.FullDocument.GetOr("v", int64(-1)))
		if v%2 != 0 {
			t.Fatalf("filter leaked v=%d", v)
		}
		lives = append(lives, v)
	}
	if len(lives) != 3 {
		t.Fatalf("live filtered events: %v", lives)
	}

	// Resume from scratch with the same filter: replay must deliver the
	// same filtered sequence.
	start := Token{LSN: 0, Op: opEnd}
	resumed, err := b.Subscribe(SubscribeOptions{Resume: &start, Filter: even})
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	var replayed []int64
	for {
		ev, err := resumed.Next(0)
		if err != nil {
			t.Fatal(err)
		}
		if ev == nil {
			break
		}
		v, _ := bson.AsInt(ev.FullDocument.GetOr("v", int64(-1)))
		replayed = append(replayed, v)
	}
	if fmt.Sprint(replayed) != fmt.Sprint(lives) {
		t.Fatalf("replay %v differs from live %v", replayed, lives)
	}
}

// TestResumeAcrossSegmentRotation writes enough records to rotate segments,
// consumes half the stream, then resumes from the half-way token and checks
// the remainder arrives exactly once, spanning the rotation point.
func TestResumeAcrossSegmentRotation(t *testing.T) {
	w := testWAL(t, 1<<10) // tiny segments: force several rotations
	b := NewBroker(w)

	const total = 50
	var recs []*wal.Record
	for i := 0; i < total; i++ {
		rec := appendInsert(t, w, i)
		recs = append(recs, rec)
		b.Publish(rec.LSN, EventsFromRecord(rec, false))
	}
	if segs, err := wal.SegmentFiles(w.Dir()); err != nil || len(segs) < 3 {
		t.Fatalf("want >= 3 segments to span a rotation, have %d (%v)", len(segs), err)
	}

	// First stream: resume from the beginning, consume half, remember the
	// token, drop the stream mid-flight.
	start := Token{LSN: 0, Op: opEnd}
	first, err := b.Subscribe(SubscribeOptions{Resume: &start})
	if err != nil {
		t.Fatal(err)
	}
	var seen []int64
	for i := 0; i < total/2; i++ {
		ev, err := first.Next(time.Second)
		if err != nil || ev == nil {
			t.Fatalf("event %d: %v %v", i, ev, err)
		}
		seen = append(seen, ev.Token.LSN)
	}
	tokStr := first.ResumeToken()
	first.Close()

	tok, err := ParseToken(tokStr)
	if err != nil {
		t.Fatal(err)
	}
	second, err := b.Subscribe(SubscribeOptions{Resume: &tok})
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	for {
		ev, err := second.Next(0)
		if err != nil {
			t.Fatal(err)
		}
		if ev == nil {
			break
		}
		seen = append(seen, ev.Token.LSN)
	}
	if len(seen) != total {
		t.Fatalf("resume lost or duplicated events: %d total, want %d", len(seen), total)
	}
	for i, lsn := range seen {
		if lsn != recs[i].LSN {
			t.Fatalf("event %d has lsn %d, want %d", i, lsn, recs[i].LSN)
		}
	}
}

// TestResumeBelowPruneCutoffFails prunes early segments (as a checkpoint
// does) and checks a resume below the cutoff reports ErrTokenTooOld instead
// of silently skipping the gap.
func TestResumeBelowPruneCutoffFails(t *testing.T) {
	w := testWAL(t, 1<<10)
	b := NewBroker(w)
	var last *wal.Record
	for i := 0; i < 50; i++ {
		last = appendInsert(t, w, i)
		b.Publish(last.LSN, EventsFromRecord(last, false))
	}
	segs, err := wal.SegmentFiles(w.Dir())
	if err != nil || len(segs) < 3 {
		t.Fatalf("need rotated segments: %d %v", len(segs), err)
	}
	cut := segs[len(segs)-1].FirstLSN - 1
	if _, err := w.Prune(cut); err != nil {
		t.Fatal(err)
	}

	old := Token{LSN: 1, Op: 0}
	if _, err := b.Subscribe(SubscribeOptions{Resume: &old}); !errors.Is(err, ErrTokenTooOld) {
		t.Fatalf("resume below cutoff: want ErrTokenTooOld, got %v", err)
	}
	// A token at the live edge still resumes fine.
	edge := Token{LSN: last.LSN, Op: opEnd}
	sub, err := b.Subscribe(SubscribeOptions{Resume: &edge})
	if err != nil {
		t.Fatalf("edge resume: %v", err)
	}
	sub.Close()
}

// TestEventsFromRecord covers the event derivation rules: per-op tokens,
// document keys, structural records, and index records yielding nothing.
func TestEventsFromRecord(t *testing.T) {
	rec := &wal.Record{
		Kind: wal.KindBatch, DB: "d", Coll: "c", LSN: 7,
		Ops: []storage.WriteOp{
			storage.InsertWriteOp(bson.D(bson.IDKey, 1, "x", "a")),
			storage.UpdateWriteOp(updSpec(bson.D(bson.IDKey, 2), bson.D("$set", bson.D("x", "b")))),
			storage.DeleteWriteOp(bson.D("x", bson.D("$gt", 0)), true),
		},
	}
	evs := EventsFromRecord(rec, false)
	if len(evs) != 3 {
		t.Fatalf("events: %d", len(evs))
	}
	if evs[0].OpType != OpInsert || evs[0].Token != (Token{LSN: 7, Op: 0}) || evs[0].FullDocument == nil {
		t.Fatalf("insert event: %+v", evs[0])
	}
	if id, _ := bson.AsInt(evs[0].DocumentKey.GetOr(bson.IDKey, nil)); id != 1 {
		t.Fatalf("insert documentKey: %v", evs[0].DocumentKey)
	}
	if evs[1].OpType != OpUpdate || evs[1].DocumentKey == nil || evs[1].UpdateDescription == nil {
		t.Fatalf("update event: %+v", evs[1])
	}
	if evs[2].OpType != OpDelete || evs[2].DocumentKey != nil || evs[2].Filter == nil {
		t.Fatalf("delete event: %+v", evs[2])
	}
	doc := evs[0].Doc()
	if op, _ := doc.Get("operationType"); op != OpInsert {
		t.Fatalf("event doc: %v", doc)
	}
	if tok, _ := doc.Get("_id"); tok != evs[0].Token.String() {
		t.Fatalf("event doc _id: %v", tok)
	}

	if evs := EventsFromRecord(&wal.Record{Kind: wal.KindDropCollection, DB: "d", Coll: "c", LSN: 9}, false); len(evs) != 1 || evs[0].OpType != OpDrop {
		t.Fatalf("drop events: %+v", evs)
	}
	if evs := EventsFromRecord(&wal.Record{Kind: wal.KindDropDatabase, DB: "d", LSN: 10}, false); len(evs) != 1 || evs[0].OpType != OpDropDatabase || evs[0].Coll != "" {
		t.Fatalf("dropDatabase events: %+v", evs)
	}
	if evs := EventsFromRecord(&wal.Record{Kind: wal.KindEnsureIndex, DB: "d", Coll: "c", LSN: 11}, false); evs != nil {
		t.Fatalf("index records must be frontier-only, got %+v", evs)
	}
}

// TestInvalidationMidReplayDoesNotJumpToken checks a watcher invalidated
// while its resume replay is still running reports the error WITHOUT
// delivering buffered live events: handing those out would advance the
// resume token past undelivered replay history and create a permanent gap.
func TestInvalidationMidReplayDoesNotJumpToken(t *testing.T) {
	w := testWAL(t, 1<<10)
	b := NewBroker(w)
	const history = 30
	for i := 0; i < history; i++ {
		rec := appendInsert(t, w, i)
		b.Publish(rec.LSN, EventsFromRecord(rec, false))
	}
	start := Token{}
	sub, err := b.Subscribe(SubscribeOptions{Resume: &start, BufferSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	// Deliver one replay event so the token sits inside the history.
	first, err := sub.Next(0)
	if err != nil || first == nil {
		t.Fatalf("first replay event: %v %v", first, err)
	}
	// Live writes overflow the 1-slot buffer and invalidate the watcher
	// while the replay is far from finished.
	for i := 0; i < 3; i++ {
		rec := appendInsert(t, w, history+i)
		b.Publish(rec.LSN, EventsFromRecord(rec, false))
	}
	tokenBefore := sub.ResumeToken()
	ev, err := sub.Next(0)
	if !errors.Is(err, ErrSlowConsumer) {
		t.Fatalf("mid-replay invalidation: ev=%v err=%v", ev, err)
	}
	if sub.ResumeToken() != tokenBefore {
		t.Fatalf("token moved on invalidation: %s -> %s", tokenBefore, sub.ResumeToken())
	}
	// Resuming from that token re-delivers the whole remaining history.
	tok, err := ParseToken(tokenBefore)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := b.Subscribe(SubscribeOptions{Resume: &tok, BufferSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	count := 0
	for {
		ev, err := resumed.Next(0)
		if err != nil {
			t.Fatal(err)
		}
		if ev == nil {
			break
		}
		count++
	}
	if count != history-1+3 {
		t.Fatalf("resume after mid-replay invalidation delivered %d events, want %d", count, history-1+3)
	}
}

// TestWantsEventsScoping checks the namespace-interest index the write path
// consults to skip event materialization: a watcher's scope covers exactly
// its collection, database, or everything, and releases on close.
func TestWantsEventsScoping(t *testing.T) {
	w := testWAL(t, 0)
	b := NewBroker(w)
	if b.WantsEvents("d1", "c1") {
		t.Fatal("fresh broker wants events")
	}
	collSub, err := b.Subscribe(SubscribeOptions{DB: "d1", Coll: "c1"})
	if err != nil {
		t.Fatal(err)
	}
	if !b.WantsEvents("d1", "c1") || b.WantsEvents("d1", "c2") || b.WantsEvents("d2", "c1") {
		t.Fatal("collection scope leaked or missing")
	}
	dbSub, err := b.Subscribe(SubscribeOptions{DB: "d2"})
	if err != nil {
		t.Fatal(err)
	}
	if !b.WantsEvents("d2", "anything") || b.WantsEvents("d3", "x") {
		t.Fatal("database scope wrong")
	}
	allSub, err := b.Subscribe(SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !b.WantsEvents("d3", "x") {
		t.Fatal("server scope missing")
	}
	allSub.Close()
	dbSub.Close()
	if b.WantsEvents("d2", "x") || !b.WantsEvents("d1", "c1") {
		t.Fatal("interest not released on close")
	}
	collSub.Close()
	if b.WantsEvents("d1", "c1") {
		t.Fatal("interest not released on close")
	}
}

// TestResumeBeyondLogEndRejected checks a token from a longer, lost log
// (e.g. a wiped data dir) is rejected instead of silently accepted.
func TestResumeBeyondLogEndRejected(t *testing.T) {
	w := testWAL(t, 0)
	b := NewBroker(w)
	appendInsert(t, w, 1)
	future := Token{LSN: 99, Op: 0}
	if _, err := b.Subscribe(SubscribeOptions{Resume: &future}); err == nil {
		t.Fatal("future token should be rejected")
	}
}
