// Package changestream implements the change-streams subsystem: a
// subscription manager (Broker) that tails committed write-ahead-log records
// and fans ordered change events out to any number of watchers through
// bounded buffers, with resume — replaying WAL segments from a token's
// position before switching to the live tail — and slow-consumer
// invalidation.
//
// # Ordering
//
// The write path publishes each record after it has been applied and its
// collection lock released, so publishes from concurrent collections can
// arrive out of LSN order. The broker sequences them: events are delivered
// to watchers only up to the contiguous LSN frontier, so every watcher
// observes events in strictly increasing (LSN, op) order — the property the
// cluster-wide merge and exactly-once resume are built on. Every appended
// record must therefore be published exactly once, including records that
// produce no watcher-visible events (index management), or the frontier
// would stall.
//
// # Resume
//
// A watcher resumes by presenting the token of the last event it processed.
// The subscription replays WAL segments from disk for the records the token
// precedes, up to the stream's join point, then switches to the live buffer;
// the join point (the log's last LSN at subscribe time, captured after the
// subscriber count is raised) partitions history and live so no event is
// lost or delivered twice. A token below the checkpoint prune cutoff cannot
// be honoured — its segments are gone — and fails with ErrTokenTooOld
// rather than returning a gap.
package changestream

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"docstore/internal/wal"
)

// DefaultBufferSize is the per-watcher bounded buffer when the subscriber
// does not choose one (docstored overrides it with -changestream-buffer).
const DefaultBufferSize = 256

var (
	// ErrSlowConsumer invalidates a watcher whose buffer overflowed: the
	// write path never blocks on a watcher, so one that cannot keep up is
	// cut off and must resume from its last token.
	ErrSlowConsumer = errors.New("changestream: watcher buffer overflowed; resume from the last token")
	// ErrClosed reports the stream (or the whole broker) was closed.
	ErrClosed = errors.New("changestream: stream closed")
	// ErrTokenTooOld reports a resume token below the checkpoint prune
	// cutoff: the WAL segments holding its history have been removed, so
	// the stream cannot resume without a gap.
	ErrTokenTooOld = errors.New("changestream: resume token is older than the retained log (pruned by a checkpoint)")
)

// Stream is the consumer interface of a change stream, implemented by a
// stand-alone Subscription and by the cluster-wide merged stream of mongos.
type Stream interface {
	// Next returns the next event, waiting up to maxWait for one to
	// arrive. (nil, nil) means the wait elapsed with the stream still
	// live — the awaitData contract. A terminal error (ErrClosed,
	// ErrSlowConsumer, ErrTokenTooOld) means the stream is dead.
	Next(maxWait time.Duration) (*Event, error)
	// ResumeToken returns the token of the last delivered event (or the
	// stream's starting position before any delivery): the value to pass
	// as resumeAfter to continue exactly after what was consumed.
	ResumeToken() string
	// Close tears the stream down. Safe to call multiple times.
	Close()
}

// Stats reports broker counters.
type Stats struct {
	// Watchers is the number of live subscriptions.
	Watchers int
	// RecordsPublished counts WAL records sequenced through the broker.
	RecordsPublished int64
	// EventsDelivered counts events enqueued into watcher buffers.
	EventsDelivered int64
	// SlowConsumers counts watchers invalidated by buffer overflow.
	SlowConsumers int64
	// BufferedEvents is the total number of events currently sitting in
	// watcher buffers (delivered but not yet consumed).
	BufferedEvents int64
	// MaxBufferDepth is the deepest single watcher buffer right now: the
	// early-warning signal that some consumer is heading toward
	// slow-consumer invalidation.
	MaxBufferDepth int
}

// Broker is the subscription manager tailing one server's WAL.
type Broker struct {
	w *wal.WAL

	// subCount is raised — together with the namespace-interest index —
	// BEFORE a subscriber reads the WAL's last LSN for its join point.
	// Writers check it after their append returns; the WAL mutex then
	// orders the check after the raise for every record past the join
	// point, which is what lets the write path skip event materialization
	// (and payload cloning) entirely while nobody watches, without a
	// lost-event window.
	subCount atomic.Int64

	// interestMu guards interest: reference counts of watcher scopes,
	// keyed by interestKey. It is separate from mu so the write path's
	// WantsEvents never contends with an in-progress delivery fan-out.
	interestMu sync.RWMutex
	interest   map[string]int

	records   atomic.Int64
	delivered atomic.Int64
	dropped   atomic.Int64

	mu      sync.Mutex
	nextLSN int64              // delivery frontier: next LSN to hand to watchers
	pending map[int64][]*Event // out-of-order publishes parked until the frontier reaches them
	subs    map[int64]*Subscription
	nextID  int64
	closed  bool
}

// NewBroker creates a broker tailing w. It must be created after recovery
// replay, so the frontier starts at the first post-recovery record.
func NewBroker(w *wal.WAL) *Broker {
	return &Broker{
		w:        w,
		nextLSN:  w.LastLSN() + 1,
		pending:  make(map[int64][]*Event),
		subs:     make(map[int64]*Subscription),
		interest: make(map[string]int),
	}
}

// interestKey renders a watcher scope (or a record's namespace) for the
// interest index: "" is server-wide, "db\x00" database-wide, "db\x00coll"
// one collection.
func interestKey(db, coll string) string {
	if db == "" {
		return ""
	}
	return db + "\x00" + coll
}

// WantsEvents reports whether any watcher's scope covers the namespace. The
// write path reads it after appending a record to decide whether to
// materialize (and clone) that record's events; a watcher on one collection
// therefore costs nothing on writes to namespaces nobody watches. The
// after-the-append order is load-bearing: see the subCount comment.
func (b *Broker) WantsEvents(db, coll string) bool {
	if b.subCount.Load() == 0 {
		return false
	}
	b.interestMu.RLock()
	defer b.interestMu.RUnlock()
	return b.interest[""] > 0 || b.interest[interestKey(db, "")] > 0 || b.interest[interestKey(db, coll)] > 0
}

// Stats returns current counters.
func (b *Broker) Stats() Stats {
	b.mu.Lock()
	watchers := len(b.subs)
	var buffered int64
	maxDepth := 0
	for _, sub := range b.subs {
		depth := len(sub.ch)
		buffered += int64(depth)
		if depth > maxDepth {
			maxDepth = depth
		}
	}
	b.mu.Unlock()
	return Stats{
		Watchers:         watchers,
		RecordsPublished: b.records.Load(),
		EventsDelivered:  b.delivered.Load(),
		SlowConsumers:    b.dropped.Load(),
		BufferedEvents:   buffered,
		MaxBufferDepth:   maxDepth,
	}
}

// WatcherDepth describes one live watcher's buffer occupancy.
type WatcherDepth struct {
	// ID is the subscription's broker-assigned identifier.
	ID int64
	// DB and Coll are the watcher's scope ("" = wider scope).
	DB, Coll string
	// Buffered is how many delivered events await consumption; Capacity is
	// the buffer bound that, once hit, invalidates the watcher.
	Buffered, Capacity int
}

// WatcherDepths snapshots every live watcher's buffer depth, ordered by
// subscription ID (attach order). serverStatus surfaces it so an operator
// can see which change-stream consumer is falling behind before the broker
// cuts it off.
func (b *Broker) WatcherDepths() []WatcherDepth {
	b.mu.Lock()
	out := make([]WatcherDepth, 0, len(b.subs))
	for _, sub := range b.subs {
		out = append(out, WatcherDepth{
			ID: sub.id, DB: sub.scopeDB, Coll: sub.scopeColl,
			Buffered: len(sub.ch), Capacity: cap(sub.ch),
		})
	}
	b.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Publish hands the broker one applied record's events. Every consumed LSN
// must be published exactly once, in any order; delivery happens in LSN
// order once the frontier reaches the record. events may be nil (no
// watcher-visible events, or no watcher was attached when the record was
// logged — the ordering argument on subCount guarantees no watcher needed
// them).
func (b *Broker) Publish(lsn int64, events []*Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed || lsn < b.nextLSN {
		return
	}
	b.pending[lsn] = events
	for {
		evs, ok := b.pending[b.nextLSN]
		if !ok {
			return
		}
		delete(b.pending, b.nextLSN)
		b.records.Add(1)
		if len(evs) > 0 {
			b.deliverLocked(evs)
		}
		b.nextLSN++
	}
}

// deliverLocked fans one record's events out to every subscription whose
// join point precedes them, applying per-watcher filters. A full buffer
// invalidates the watcher instead of blocking the write path.
func (b *Broker) deliverLocked(events []*Event) {
	var victims []*Subscription
	for _, sub := range b.subs {
		overflowed := false
		for _, ev := range events {
			if ev.Token.LSN <= sub.gate {
				continue // covered by the subscription's replay source
			}
			if sub.filter != nil && !sub.filter(ev) {
				continue
			}
			select {
			case sub.ch <- ev:
				b.delivered.Add(1)
			default:
				overflowed = true
			}
			if overflowed {
				victims = append(victims, sub)
				break
			}
		}
	}
	for _, sub := range victims {
		b.dropped.Add(1)
		b.removeLocked(sub)
		sub.fail(ErrSlowConsumer)
	}
}

// removeLocked unregisters a subscription and releases its interest
// reference. The caller holds b.mu.
func (b *Broker) removeLocked(sub *Subscription) {
	if _, ok := b.subs[sub.id]; ok {
		delete(b.subs, sub.id)
		b.subCount.Add(-1)
		b.interestMu.Lock()
		key := interestKey(sub.scopeDB, sub.scopeColl)
		if b.interest[key]--; b.interest[key] <= 0 {
			delete(b.interest, key)
		}
		b.interestMu.Unlock()
	}
}

// unsubscribe unregisters a subscription (watcher Close path).
func (b *Broker) unsubscribe(sub *Subscription) {
	b.mu.Lock()
	b.removeLocked(sub)
	b.mu.Unlock()
}

// Close invalidates every subscription and refuses further subscribes. The
// server closes the broker before closing the WAL so no publish or replay
// can race the log teardown.
func (b *Broker) Close() {
	b.mu.Lock()
	subs := make([]*Subscription, 0, len(b.subs))
	for _, sub := range b.subs {
		subs = append(subs, sub)
	}
	b.subs = make(map[int64]*Subscription)
	b.subCount.Store(0)
	b.interestMu.Lock()
	b.interest = make(map[string]int)
	b.interestMu.Unlock()
	b.pending = make(map[int64][]*Event)
	b.closed = true
	b.mu.Unlock()
	for _, sub := range subs {
		sub.fail(ErrClosed)
	}
}

// SubscribeOptions configures one watcher.
type SubscribeOptions struct {
	// DB and Coll scope the watcher's interest for the write path's
	// materialization skip: batch records outside every watcher's scope
	// are not turned into events at all. Empty DB watches the whole
	// server; empty Coll the whole database. The scope must be at least
	// as wide as what Filter accepts.
	DB   string
	Coll string
	// Resume, when non-nil, replays history strictly after the token
	// before switching to the live tail. Nil starts at the live edge.
	Resume *Token
	// Filter, when non-nil, selects the events the watcher receives. It
	// runs on the publish path (under the broker lock) and on the replay
	// path (on the consumer goroutine), so it must be safe for concurrent
	// use and must not block.
	Filter func(*Event) bool
	// BufferSize bounds the live buffer; 0 uses DefaultBufferSize.
	BufferSize int
}

// Subscribe attaches a watcher.
func (b *Broker) Subscribe(opts SubscribeOptions) (*Subscription, error) {
	buffer := opts.BufferSize
	if buffer <= 0 {
		buffer = DefaultBufferSize
	}
	sub := &Subscription{
		b:         b,
		scopeDB:   opts.DB,
		scopeColl: opts.Coll,
		filter:    opts.Filter,
		ch:        make(chan *Event, buffer),
		dead:      make(chan struct{}),
	}
	// Registration, the interest/subscriber-count raise and the join-point
	// read happen under one broker lock acquisition, in that order. Two
	// ordering properties follow, and both are load-bearing:
	//
	//   - A writer whose record's LSN exceeds the join point acquired the
	//     WAL mutex after the LastLSN read below, therefore after the
	//     raises, so its post-append WantsEvents check materializes the
	//     events this watcher needs.
	//   - Any Publish of such a record acquires b.mu after this critical
	//     section, so the watcher is already in b.subs and receives it
	//     live. Records at or before the join point come from disk
	//     instead. Either way no event is lost.
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	b.subCount.Add(1)
	b.interestMu.Lock()
	b.interest[interestKey(opts.DB, opts.Coll)]++
	b.interestMu.Unlock()
	gate := b.w.LastLSN()
	sub.gate = gate
	sub.last = Token{LSN: gate, Op: opEnd}
	b.nextID++
	sub.id = b.nextID
	b.subs[sub.id] = sub
	b.mu.Unlock()

	if opts.Resume != nil {
		tok := *opts.Resume
		if tok.LSN > gate {
			sub.Close()
			return nil, fmt.Errorf("changestream: resume token %s is beyond the end of the log (lsn %d)", tok, gate)
		}
		sub.last = tok
		if tok.next() <= gate {
			replay, err := newReplay(b.w, tok, gate)
			if err != nil {
				sub.Close()
				return nil, err
			}
			sub.replay = replay
		}
	}
	return sub, nil
}

// Subscription is one watcher's stream: an optional disk-replay prefix
// followed by the live tail. It is not safe for concurrent use by multiple
// goroutines (one consumer per subscription).
type Subscription struct {
	b         *Broker
	id        int64
	gate      int64 // join point: live events are strictly after it
	scopeDB   string
	scopeColl string
	filter    func(*Event) bool

	ch   chan *Event
	dead chan struct{}

	failOnce sync.Once
	reason   atomic.Pointer[error]

	replay *replay
	last   Token // resume token of the last delivered event (consumer-owned)
}

var _ Stream = (*Subscription)(nil)

// Alive reports whether the subscription can still deliver events. The wire
// layer uses it to keep live tailable cursors exempt from idle reaping.
func (s *Subscription) Alive() bool {
	select {
	case <-s.dead:
		return false
	default:
		return true
	}
}

// fail marks the subscription dead with a reason, waking any blocked Next.
func (s *Subscription) fail(reason error) {
	s.failOnce.Do(func() {
		s.reason.Store(&reason)
		close(s.dead)
	})
}

func (s *Subscription) failReason() error {
	if p := s.reason.Load(); p != nil {
		return *p
	}
	return ErrClosed
}

// Next implements Stream. The replay prefix (resume) drains first; buffered
// live events are delivered even after invalidation, so nothing already
// enqueued is lost; then the terminal error surfaces.
func (s *Subscription) Next(maxWait time.Duration) (*Event, error) {
	if !s.Alive() {
		// With the replay phase finished, deliver what the publisher
		// enqueued before the failure, then surface the terminal error.
		// Mid-replay the buffered live events must NOT be delivered: they
		// sit beyond the join point while replay history below it is
		// still undelivered, so handing them out would advance the resume
		// token past a gap. Cutting the replay short with the error keeps
		// the token at the last delivered position — resumable without
		// loss.
		if s.replay == nil {
			select {
			case ev := <-s.ch:
				s.last = ev.Token
				return ev, nil
			default:
			}
		}
		return nil, s.failReason()
	}
	if s.replay != nil {
		ev, err := s.replay.next(s.filter)
		if err != nil {
			s.Close()
			return nil, err
		}
		if ev != nil {
			s.last = ev.Token
			return ev, nil
		}
		s.replay = nil // history exhausted: switch to the live tail
	}
	select {
	case ev := <-s.ch:
		s.last = ev.Token
		return ev, nil
	default:
	}
	if maxWait <= 0 {
		if !s.Alive() {
			return nil, s.failReason()
		}
		return nil, nil
	}
	timer := time.NewTimer(maxWait)
	defer timer.Stop()
	select {
	case ev := <-s.ch:
		s.last = ev.Token
		return ev, nil
	case <-s.dead:
		// Drain what the publisher enqueued before the failure.
		select {
		case ev := <-s.ch:
			s.last = ev.Token
			return ev, nil
		default:
		}
		return nil, s.failReason()
	case <-timer.C:
		return nil, nil
	}
}

// ResumeToken implements Stream.
func (s *Subscription) ResumeToken() string { return s.last.String() }

// Close implements Stream: it detaches the watcher and releases its buffer.
// Unlike Next, it may be called from a different goroutine (a merged
// stream's teardown closes shard subscriptions while their pumps are parked
// in Next), so it must not touch consumer-owned state like the replay
// reader.
func (s *Subscription) Close() {
	s.b.unsubscribe(s)
	s.fail(ErrClosed)
}

// replay is the lazily-read disk history of a resumed subscription: the WAL
// segments overlapping (token, gate], read one segment at a time.
type replay struct {
	segs  []wal.SegmentFile
	after Token
	gate  int64
	buf   []*Event
	idx   int
}

// newReplay flushes the log (so every record up to the join point is
// readable from the segment files) and positions a reader after the token,
// verifying the history is still on disk.
func newReplay(w *wal.WAL, after Token, gate int64) (*replay, error) {
	if err := w.Flush(); err != nil {
		return nil, err
	}
	segs, err := wal.SegmentFiles(w.Dir())
	if err != nil {
		return nil, err
	}
	// The resume needs every record from after.next() through gate; if the
	// first retained segment starts beyond that, a checkpoint pruned the
	// token's history away.
	if len(segs) == 0 || segs[0].FirstLSN > after.next() {
		return nil, ErrTokenTooOld
	}
	// Skip segments that end before the resume position: segment i covers
	// [first_i, first_{i+1}-1].
	start := 0
	for start+1 < len(segs) && segs[start+1].FirstLSN <= after.next() {
		start++
	}
	return &replay{segs: segs[start:], after: after, gate: gate}, nil
}

// next returns the next filtered replay event, or (nil, nil) once the replay
// source is exhausted and the subscription should switch to the live tail.
func (r *replay) next(filter func(*Event) bool) (*Event, error) {
	for {
		for r.idx < len(r.buf) {
			ev := r.buf[r.idx]
			r.idx++
			if filter == nil || filter(ev) {
				return ev, nil
			}
		}
		if len(r.segs) == 0 {
			return nil, nil
		}
		seg := r.segs[0]
		r.segs = r.segs[1:]
		if seg.FirstLSN > r.gate {
			r.segs = nil
			return nil, nil
		}
		recs, err := wal.ReadSegmentFile(seg.Path)
		if err != nil {
			if os.IsNotExist(err) {
				// A checkpoint pruned the segment between listing and
				// reading: the history is gone mid-resume.
				return nil, ErrTokenTooOld
			}
			return nil, err
		}
		r.buf, r.idx = r.buf[:0], 0
		for _, rec := range recs {
			if rec.LSN > r.gate {
				break
			}
			if rec.LSN < r.after.LSN {
				continue
			}
			for _, ev := range EventsFromRecord(rec, false) {
				if rec.LSN == r.after.LSN && ev.Token.Op <= r.after.Op {
					continue
				}
				r.buf = append(r.buf, ev)
			}
		}
	}
}
