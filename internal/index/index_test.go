package index

import (
	"errors"
	"testing"

	"docstore/internal/bson"
	"docstore/internal/query"
)

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec(bson.D("ItemPrice", 1, "ItemQuantity", -1))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if s.Kind() != KindCompound || len(s.Fields) != 2 || !s.Fields[1].Desc {
		t.Fatalf("spec = %+v", s)
	}
	if s.Name() != "ItemPrice_1_ItemQuantity_-1" {
		t.Fatalf("Name = %q", s.Name())
	}
	single := MustParseSpec(bson.D("ss_item_sk", 1))
	if single.Kind() != KindSingle {
		t.Fatalf("single kind = %v", single.Kind())
	}
	hashed := MustParseSpec(bson.D("ss_ticket_number", "hashed"))
	if hashed.Kind() != KindHashed || hashed.Name() != "ss_ticket_number_hashed" {
		t.Fatalf("hashed spec = %+v", hashed)
	}
	if got := s.FieldNames(); len(got) != 2 || got[0] != "ItemPrice" {
		t.Fatalf("FieldNames = %v", got)
	}
	// Doc round trip.
	round := MustParseSpec(s.Doc())
	if round.Name() != s.Name() {
		t.Fatalf("Doc round trip: %q vs %q", round.Name(), s.Name())
	}
	// Float directions are accepted (JSON decoding produces them).
	if _, err := ParseSpec(bson.D("x", 1.0)); err != nil {
		t.Fatalf("float direction: %v", err)
	}
	// Errors.
	for _, bad := range []*bson.Doc{
		nil,
		bson.NewDoc(0),
		bson.D("x", 2),
		bson.D("x", 0.5),
		bson.D("x", "2d"),
		bson.D("x", true),
		bson.D("x", "hashed", "y", 1),
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%v) should fail", bad)
		}
	}
}

func TestMustParseSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	MustParseSpec(bson.D("x", 3))
}

func TestIndexInsertLookupRemove(t *testing.T) {
	ix := New("", MustParseSpec(bson.D("ss_item_sk", 1)), false)
	if ix.Name() != "ss_item_sk_1" {
		t.Fatalf("default name = %q", ix.Name())
	}
	docs := []*bson.Doc{
		bson.D(bson.IDKey, 1, "ss_item_sk", 17),
		bson.D(bson.IDKey, 2, "ss_item_sk", 17),
		bson.D(bson.IDKey, 3, "ss_item_sk", 99),
		bson.D(bson.IDKey, 4), // missing field indexes as null
	}
	for _, d := range docs {
		if err := ix.Insert(d, d.ID()); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if ix.Len() != 4 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if got := ix.Lookup(17); len(got) != 2 {
		t.Fatalf("Lookup(17) = %v", got)
	}
	if got := ix.Lookup(nil); len(got) != 1 || got[0] != int64(4) {
		t.Fatalf("Lookup(nil) = %v", got)
	}
	if ix.SizeBytes() <= 0 {
		t.Fatalf("SizeBytes = %d", ix.SizeBytes())
	}
	ix.Remove(docs[0], docs[0].ID())
	if got := ix.Lookup(17); len(got) != 1 {
		t.Fatalf("after remove Lookup(17) = %v", got)
	}
	if ix.DistinctKeys() != 3 {
		t.Fatalf("DistinctKeys = %d", ix.DistinctKeys())
	}
}

func TestUniqueIndexRejectsDuplicates(t *testing.T) {
	ix := New("uniq", MustParseSpec(bson.D("email", 1)), true)
	if err := ix.Insert(bson.D(bson.IDKey, 1, "email", "a@x.com"), 1); err != nil {
		t.Fatalf("first insert: %v", err)
	}
	err := ix.Insert(bson.D(bson.IDKey, 2, "email", "a@x.com"), 2)
	if err == nil {
		t.Fatalf("duplicate insert should fail")
	}
	var dup *ErrDuplicateKey
	if !errors.As(err, &dup) || dup.Index != "uniq" {
		t.Fatalf("error = %v", err)
	}
	if !ix.Unique() {
		t.Fatalf("Unique() should be true")
	}
}

func TestMultikeyIndex(t *testing.T) {
	ix := New("", MustParseSpec(bson.D("tags", 1)), false)
	doc := bson.D(bson.IDKey, 1, "tags", bson.A("red", "green", "blue"))
	if err := ix.Insert(doc, 1); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if !ix.Multikey() {
		t.Fatalf("index should be multikey")
	}
	if ix.Len() != 3 {
		t.Fatalf("Len = %d, want one entry per element", ix.Len())
	}
	if got := ix.Lookup("green"); len(got) != 1 {
		t.Fatalf("Lookup(green) = %v", got)
	}
	ix.Remove(doc, 1)
	if ix.Len() != 0 {
		t.Fatalf("Len after remove = %d", ix.Len())
	}
	// Empty array indexes as null.
	ix2 := New("", MustParseSpec(bson.D("tags", 1)), false)
	_ = ix2.Insert(bson.D(bson.IDKey, 1, "tags", bson.A()), 1)
	if got := ix2.Lookup(nil); len(got) != 1 {
		t.Fatalf("empty array should index as null, got %v", got)
	}
}

func TestHashedIndexLookup(t *testing.T) {
	ix := New("", MustParseSpec(bson.D("k", "hashed")), false)
	for i := 0; i < 100; i++ {
		if err := ix.Insert(bson.D(bson.IDKey, i, "k", i), i); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if got := ix.Lookup(42); len(got) != 1 || got[0] != 42 {
		t.Fatalf("Lookup(42) = %v", got)
	}
	if got := ix.Lookup(1000); len(got) != 0 {
		t.Fatalf("Lookup(1000) = %v", got)
	}
	// HashValue is deterministic and matches index behaviour.
	if HashValue(int64(42)) != HashValue(int64(42)) {
		t.Fatalf("HashValue not deterministic")
	}
	if HashValue(int64(42)) == HashValue(int64(43)) {
		t.Fatalf("suspicious hash collision between adjacent keys")
	}
}

func TestCompoundIndexAndPrefix(t *testing.T) {
	ix := New("", MustParseSpec(bson.D("ItemPrice", 1, "ItemQuantity", 1)), false)
	for i := 0; i < 50; i++ {
		d := bson.D(bson.IDKey, i, "ItemPrice", i%5, "ItemQuantity", i)
		if err := ix.Insert(d, i); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if got := ix.LookupKey(Key{int64(3), int64(3)}); len(got) != 1 {
		t.Fatalf("LookupKey = %v", got)
	}
	// Prefix matching (§2.1.2): a filter on the leading field alone can use
	// the compound index.
	cs := query.FieldConstraints(bson.D("ItemPrice", 3))
	if n := ix.PrefixMatches(cs); n != 1 {
		t.Fatalf("PrefixMatches(leading only) = %d", n)
	}
	cs = query.FieldConstraints(bson.D("ItemPrice", 3, "ItemQuantity", bson.D("$gte", 10)))
	if n := ix.PrefixMatches(cs); n != 2 {
		t.Fatalf("PrefixMatches(both) = %d", n)
	}
	cs = query.FieldConstraints(bson.D("ItemQuantity", 3))
	if n := ix.PrefixMatches(cs); n != 0 {
		t.Fatalf("PrefixMatches(trailing only) = %d", n)
	}
	// Scanning a point constraint on the leading field returns every doc
	// with that price.
	var ids []any
	ok := ix.ScanRange(query.ConstraintFor(bson.D("ItemPrice", 3), "ItemPrice"), func(id any) bool {
		ids = append(ids, id)
		return true
	})
	if !ok || len(ids) != 10 {
		t.Fatalf("ScanRange point on compound prefix: ok=%v ids=%d", ok, len(ids))
	}
}

func TestScanRangeOnSingleFieldIndex(t *testing.T) {
	ix := New("", MustParseSpec(bson.D("price", 1)), false)
	for i := 0; i < 100; i++ {
		_ = ix.Insert(bson.D(bson.IDKey, i, "price", float64(i)/10), i)
	}
	c := query.ConstraintFor(bson.D("price", bson.D("$gte", 0.99, "$lte", 1.49)), "price")
	var ids []any
	if !ix.ScanRange(c, func(id any) bool { ids = append(ids, id); return true }) {
		t.Fatalf("ScanRange returned false")
	}
	// 1.0 .. 1.4 → ids 10..14 plus 0.99..: price values are i/10, so >=0.99
	// means i >= 10 (i=10 → 1.0) and <= 1.49 means i <= 14.
	if len(ids) != 5 {
		t.Fatalf("range scan ids = %v", ids)
	}
	// Exclusive bounds.
	c = query.ConstraintFor(bson.D("price", bson.D("$gt", 1.0, "$lt", 1.4)), "price")
	ids = nil
	ix.ScanRange(c, func(id any) bool { ids = append(ids, id); return true })
	if len(ids) != 3 {
		t.Fatalf("exclusive range scan ids = %v", ids)
	}
	// Early stop.
	c = query.ConstraintFor(bson.D("price", bson.D("$gte", 0.0)), "price")
	n := 0
	ix.ScanRange(c, func(any) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
	// A nil constraint cannot be used.
	if ix.ScanRange(nil, func(any) bool { return true }) {
		t.Fatalf("nil constraint should not be scannable")
	}
	// Point-set constraints ($in) scan each point.
	c = query.ConstraintFor(bson.D("price", bson.D("$in", bson.A(0.5, 2.0))), "price")
	ids = nil
	ix.ScanRange(c, func(id any) bool { ids = append(ids, id); return true })
	if len(ids) != 2 {
		t.Fatalf("$in scan ids = %v", ids)
	}
}

func TestScanRangeHashedIndexLimitations(t *testing.T) {
	ix := New("", MustParseSpec(bson.D("k", "hashed")), false)
	for i := 0; i < 20; i++ {
		_ = ix.Insert(bson.D(bson.IDKey, i, "k", i), i)
	}
	// Point constraints work.
	c := query.ConstraintFor(bson.D("k", 7), "k")
	var ids []any
	if !ix.ScanRange(c, func(id any) bool { ids = append(ids, id); return true }) {
		t.Fatalf("hashed point scan should work")
	}
	if len(ids) != 1 || ids[0] != 7 {
		t.Fatalf("hashed point scan ids = %v", ids)
	}
	// Range constraints cannot use a hashed index.
	c = query.ConstraintFor(bson.D("k", bson.D("$gte", 3)), "k")
	if ix.ScanRange(c, func(any) bool { return true }) {
		t.Fatalf("hashed index should reject range scans")
	}
	// Early stop on hashed point sets.
	c = query.ConstraintFor(bson.D("k", bson.D("$in", bson.A(1, 2, 3))), "k")
	n := 0
	ix.ScanRange(c, func(any) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestCoversSort(t *testing.T) {
	ix := New("", MustParseSpec(bson.D("a", 1, "b", -1)), false)
	if !ix.CoversSort(query.MustParseSort(bson.D("a", 1))) {
		t.Fatalf("prefix sort should be covered")
	}
	if !ix.CoversSort(query.MustParseSort(bson.D("a", 1, "b", -1))) {
		t.Fatalf("full sort should be covered")
	}
	if ix.CoversSort(query.MustParseSort(bson.D("a", -1))) {
		t.Fatalf("reversed direction should not be covered")
	}
	if ix.CoversSort(query.MustParseSort(bson.D("b", -1))) {
		t.Fatalf("non-prefix sort should not be covered")
	}
	if ix.CoversSort(nil) {
		t.Fatalf("empty sort should not claim coverage")
	}
	hashed := New("", MustParseSpec(bson.D("a", "hashed")), false)
	if hashed.CoversSort(query.MustParseSort(bson.D("a", 1))) {
		t.Fatalf("hashed index cannot cover a sort")
	}
}

func TestIndexRemoveMissingIsNoop(t *testing.T) {
	ix := New("", MustParseSpec(bson.D("x", 1)), false)
	d := bson.D(bson.IDKey, 1, "x", 5)
	ix.Remove(d, 1) // nothing inserted yet
	if ix.Len() != 0 || ix.SizeBytes() != 0 {
		t.Fatalf("remove on empty index changed state")
	}
}

func TestIndexDottedPathKeys(t *testing.T) {
	// Indexing an embedded dimension attribute, as the denormalized model does.
	ix := New("", MustParseSpec(bson.D("ss_sold_date_sk.d_year", 1)), false)
	_ = ix.Insert(bson.D(bson.IDKey, 1, "ss_sold_date_sk", bson.D("d_year", 2001)), 1)
	_ = ix.Insert(bson.D(bson.IDKey, 2, "ss_sold_date_sk", bson.D("d_year", 2002)), 2)
	if got := ix.Lookup(2001); len(got) != 1 || got[0] != 1 {
		t.Fatalf("dotted path lookup = %v", got)
	}
}
