package index

import (
	"fmt"
	"hash/fnv"
	"strings"

	"docstore/internal/bson"
	"docstore/internal/query"
)

// Kind distinguishes the index types of §2.1.2.
type Kind int

// Index kinds.
const (
	KindSingle Kind = iota
	KindCompound
	KindHashed
)

// Field is one component of an index key specification.
type Field struct {
	Name   string
	Desc   bool
	Hashed bool
}

// Spec is an index key specification: an ordered list of fields, e.g.
// {ItemPrice: 1, ItemQuantity: 1} from the thesis' compound-index example.
type Spec struct {
	Fields []Field
}

// ParseSpec converts an index specification document into a Spec. Values of
// 1/-1 select ascending/descending order and "hashed" selects a hashed index
// (only valid as the sole field).
func ParseSpec(doc *bson.Doc) (Spec, error) {
	var s Spec
	if doc == nil || doc.Len() == 0 {
		return s, fmt.Errorf("index: empty key specification")
	}
	for _, f := range doc.Fields() {
		switch v := bson.Normalize(f.Value).(type) {
		case int64:
			if v != 1 && v != -1 {
				return s, fmt.Errorf("index: direction for %q must be 1 or -1", f.Key)
			}
			s.Fields = append(s.Fields, Field{Name: f.Key, Desc: v == -1})
		case float64:
			if v != 1 && v != -1 {
				return s, fmt.Errorf("index: direction for %q must be 1 or -1", f.Key)
			}
			s.Fields = append(s.Fields, Field{Name: f.Key, Desc: v == -1})
		case string:
			if v != "hashed" {
				return s, fmt.Errorf("index: unsupported index type %q for %q", v, f.Key)
			}
			s.Fields = append(s.Fields, Field{Name: f.Key, Hashed: true})
		default:
			return s, fmt.Errorf("index: invalid specification value %v for %q", f.Value, f.Key)
		}
	}
	if s.hashed() && len(s.Fields) > 1 {
		return s, fmt.Errorf("index: hashed indexes must have exactly one field")
	}
	return s, nil
}

// MustParseSpec is ParseSpec but panics on error.
func MustParseSpec(doc *bson.Doc) Spec {
	s, err := ParseSpec(doc)
	if err != nil {
		panic(err)
	}
	return s
}

func (s Spec) hashed() bool { return len(s.Fields) > 0 && s.Fields[0].Hashed }

// Kind reports the index kind implied by the specification.
func (s Spec) Kind() Kind {
	switch {
	case s.hashed():
		return KindHashed
	case len(s.Fields) > 1:
		return KindCompound
	default:
		return KindSingle
	}
}

// Name derives the conventional index name ("field_1_other_-1").
func (s Spec) Name() string {
	parts := make([]string, 0, len(s.Fields))
	for _, f := range s.Fields {
		switch {
		case f.Hashed:
			parts = append(parts, f.Name+"_hashed")
		case f.Desc:
			parts = append(parts, f.Name+"_-1")
		default:
			parts = append(parts, f.Name+"_1")
		}
	}
	return strings.Join(parts, "_")
}

// FieldNames returns the indexed field paths in order.
func (s Spec) FieldNames() []string {
	out := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		out[i] = f.Name
	}
	return out
}

// Doc renders the specification back into its document form.
func (s Spec) Doc() *bson.Doc {
	d := bson.NewDoc(len(s.Fields))
	for _, f := range s.Fields {
		switch {
		case f.Hashed:
			d.Set(f.Name, "hashed")
		case f.Desc:
			d.Set(f.Name, int64(-1))
		default:
			d.Set(f.Name, int64(1))
		}
	}
	return d
}

// Index is a secondary index over a collection: a B-tree keyed by the values
// of the specification fields, mapping to document ids.
type Index struct {
	name     string
	spec     Spec
	unique   bool
	tree     *BTree
	multikey bool
	size     int // rough in-memory size in bytes, for working-set accounting
}

// New creates an empty index with the given specification.
func New(name string, spec Spec, unique bool) *Index {
	if name == "" {
		name = spec.Name()
	}
	return &Index{name: name, spec: spec, unique: unique, tree: NewBTree()}
}

// Name returns the index name.
func (ix *Index) Name() string { return ix.name }

// Spec returns the key specification.
func (ix *Index) Spec() Spec { return ix.spec }

// Unique reports whether the index enforces key uniqueness.
func (ix *Index) Unique() bool { return ix.unique }

// Multikey reports whether any indexed document had an array value for an
// indexed field.
func (ix *Index) Multikey() bool { return ix.multikey }

// Len returns the number of entries in the index.
func (ix *Index) Len() int { return ix.tree.Len() }

// DistinctKeys returns the number of distinct keys (the shard-key cardinality
// measure of §2.1.3.3).
func (ix *Index) DistinctKeys() int { return ix.tree.DistinctKeys() }

// SizeBytes returns an estimate of the index's in-memory size, used by the
// working-set calculations of §2.1.3.2.
func (ix *Index) SizeBytes() int { return ix.size }

// Nodes returns the number of B-tree nodes in the index's current tree.
func (ix *Index) Nodes() int { return ix.tree.Nodes() }

// TreeBytes returns the estimated memory footprint of the index's tree nodes
// (O(nodes) walk); retiring the whole index releases this much.
func (ix *Index) TreeBytes() int64 { return ix.tree.EstBytes() }

// SetStamp opens a new copy-on-write era on the backing tree: mutations that
// follow path-copy shared nodes instead of changing them in place, so every
// Freeze handle taken before the stamp advanced stays immutable. See
// BTree.SetStamp.
func (ix *Index) SetStamp(s int64) { ix.tree.SetStamp(s) }

// SetCopyHook registers the observer for tree-node path copies; see
// BTree.SetCopyHook.
func (ix *Index) SetCopyHook(fn func(bytes int64)) { ix.tree.SetCopyHook(fn) }

// Freeze returns an immutable point-in-time handle of the index: an O(1)
// shallow copy whose tree clone shares the current nodes. Provided the owner
// advances the mutation stamp before the next mutating batch (the collection
// does so at publish), readers may Lookup/ScanRange/PrefixMatches the frozen
// handle with no locking while the writer keeps mutating the original. The
// handle and its tree clone land in one allocation — every publish freezes
// every index, so the publish path's allocation count matters.
func (ix *Index) Freeze() *Index {
	f := &struct {
		ix   Index
		tree BTree
	}{ix: *ix}
	ix.tree.CloneInto(&f.tree)
	f.ix.tree = &f.tree
	return &f.ix
}

// hashValue maps an arbitrary value to its hashed index key.
func hashValue(v any) int64 {
	h := fnv.New64a()
	d := bson.NewDoc(1)
	d.Set("v", v)
	h.Write(bson.Marshal(d))
	return int64(h.Sum64())
}

// HashValue exposes the hash used by hashed indexes; the hashed sharding
// partitioner uses the same function so that routing and indexing agree.
func HashValue(v any) int64 { return hashValue(v) }

// keysForDoc extracts the index keys for a document. A single-field index
// over an array value produces one key per element (multikey); compound
// indexes use the first reachable value per field.
func (ix *Index) keysForDoc(d *bson.Doc) []Key {
	if len(ix.spec.Fields) == 1 {
		f := ix.spec.Fields[0]
		vals := d.LookupPathAll(f.Name)
		if len(vals) == 0 {
			vals = []any{nil}
		}
		if len(vals) == 1 {
			if arr, ok := vals[0].([]any); ok {
				if len(arr) == 0 {
					vals = []any{nil}
				} else {
					vals = arr
					ix.multikey = true
				}
			}
		} else {
			ix.multikey = true
		}
		keys := make([]Key, 0, len(vals))
		for _, v := range vals {
			if f.Hashed {
				v = hashValue(v)
			}
			keys = append(keys, Key{v})
		}
		return keys
	}
	key := make(Key, len(ix.spec.Fields))
	for i, f := range ix.spec.Fields {
		vals := d.LookupPathAll(f.Name)
		switch {
		case len(vals) == 0:
			key[i] = nil
		default:
			if len(vals) > 1 {
				ix.multikey = true
			}
			key[i] = vals[0]
		}
	}
	return []Key{key}
}

// ErrDuplicateKey is returned when inserting a document whose key already
// exists in a unique index.
type ErrDuplicateKey struct {
	Index string
	Key   Key
}

func (e *ErrDuplicateKey) Error() string {
	return fmt.Sprintf("index %s: duplicate key %v", e.Index, e.Key)
}

// Insert adds the document (identified by id) to the index.
func (ix *Index) Insert(d *bson.Doc, id any) error {
	keys := ix.keysForDoc(d)
	if ix.unique {
		for _, k := range keys {
			if existing := ix.tree.Get(k); len(existing) > 0 {
				return &ErrDuplicateKey{Index: ix.name, Key: k}
			}
		}
	}
	for _, k := range keys {
		ix.tree.Insert(k, id)
		ix.size += keySize(k) + 16
	}
	return nil
}

// Remove deletes the document's entries from the index.
func (ix *Index) Remove(d *bson.Doc, id any) {
	for _, k := range ix.keysForDoc(d) {
		if ix.tree.Delete(k, id) {
			ix.size -= keySize(k) + 16
			if ix.size < 0 {
				ix.size = 0
			}
		}
	}
}

func keySize(k Key) int {
	size := 0
	for _, v := range k {
		d := bson.NewDoc(1)
		d.Set("v", v)
		size += bson.EncodedSize(d) - 6
	}
	return size
}

// Lookup returns the ids of documents whose indexed value equals v (for
// single-field and hashed indexes) in index order.
func (ix *Index) Lookup(v any) []any {
	if ix.spec.hashed() {
		v = hashValue(v)
	}
	return ix.tree.Get(Key{bson.Normalize(v)})
}

// LookupKey returns the ids for an exact composite key.
func (ix *Index) LookupKey(k Key) []any { return ix.tree.Get(k) }

// ScanRange walks index entries whose leading field falls within the
// constraint bounds, invoking fn for each document id in key order.
// It returns false when the constraint cannot be used with this index (for
// example a range constraint against a hashed index).
func (ix *Index) ScanRange(c *query.Constraint, fn func(id any) bool) bool {
	if c == nil {
		return false
	}
	if ix.spec.hashed() {
		if !c.IsPoint() {
			return false
		}
		for _, p := range c.Points {
			for _, id := range ix.tree.Get(Key{hashValue(p)}) {
				if !fn(id) {
					return true
				}
			}
		}
		return true
	}
	if c.IsPoint() {
		for _, p := range c.Points {
			// [ {p}, {p, MAX} ] covers every compound key whose leading
			// component equals p.
			r := NewRange(Key{p}, true, Key{p, MaxSentinel{}}, true)
			stopped := false
			ix.tree.Scan(r, func(_ Key, id any) bool {
				if !fn(id) {
					stopped = true
					return false
				}
				return true
			})
			if stopped {
				return true
			}
		}
		return true
	}
	if !c.IsRange() {
		return false
	}
	var min, max Key
	minIncl, maxIncl := true, true
	if c.HasMin {
		min = Key{c.Min}
		minIncl = c.MinInclusive
	}
	if c.HasMax {
		max = Key{c.Max, MaxSentinel{}}
		maxIncl = true
		if !c.MaxInclusive {
			max = Key{c.Max}
			maxIncl = false
		}
	}
	ix.tree.Scan(NewRange(min, minIncl, max, maxIncl), func(_ Key, id any) bool { return fn(id) })
	return true
}

// CoversSort reports whether the index natively provides the requested sort
// order (ascending prefix match on the specification).
func (ix *Index) CoversSort(s query.Sort) bool {
	if len(s) == 0 || len(s) > len(ix.spec.Fields) || ix.spec.hashed() {
		return false
	}
	for i, f := range s {
		if ix.spec.Fields[i].Name != f.Field || ix.spec.Fields[i].Desc != f.Desc {
			return false
		}
	}
	return true
}

// PrefixMatches reports how many leading fields of the index are constrained
// by the filter (the "index prefix" rule of §2.1.2).
func (ix *Index) PrefixMatches(constraints map[string]*query.Constraint) int {
	n := 0
	for _, f := range ix.spec.Fields {
		c, ok := constraints[f.Name]
		if !ok || (!c.IsPoint() && !c.IsRange()) {
			break
		}
		n++
	}
	return n
}
