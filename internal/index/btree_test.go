package index

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"docstore/internal/bson"
)

func TestBTreeInsertGet(t *testing.T) {
	tr := NewBTree()
	tr.Insert(Key{int64(5)}, "a")
	tr.Insert(Key{int64(5)}, "b")
	tr.Insert(Key{int64(7)}, "c")
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if tr.DistinctKeys() != 2 {
		t.Fatalf("DistinctKeys = %d, want 2", tr.DistinctKeys())
	}
	ids := tr.Get(Key{int64(5)})
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Fatalf("Get(5) = %v", ids)
	}
	if got := tr.Get(Key{int64(99)}); got != nil {
		t.Fatalf("Get(99) = %v, want nil", got)
	}
}

func TestBTreeDelete(t *testing.T) {
	tr := NewBTree()
	tr.Insert(Key{int64(1)}, "a")
	tr.Insert(Key{int64(1)}, "b")
	tr.Insert(Key{int64(2)}, "c")
	if !tr.Delete(Key{int64(1)}, "a") {
		t.Fatalf("delete existing entry failed")
	}
	if tr.Delete(Key{int64(1)}, "zz") {
		t.Fatalf("delete of missing id should fail")
	}
	if tr.Delete(Key{int64(42)}, "a") {
		t.Fatalf("delete of missing key should fail")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if got := tr.Get(Key{int64(1)}); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Get(1) = %v", got)
	}
	// Deleting the last entry of a key reduces the distinct count, and
	// re-inserting restores it.
	tr.Delete(Key{int64(1)}, "b")
	if tr.DistinctKeys() != 1 {
		t.Fatalf("DistinctKeys = %d, want 1", tr.DistinctKeys())
	}
	tr.Insert(Key{int64(1)}, "x")
	if tr.DistinctKeys() != 2 {
		t.Fatalf("DistinctKeys after reinsert = %d, want 2", tr.DistinctKeys())
	}
}

func TestBTreeAscendOrdered(t *testing.T) {
	tr := NewBTree()
	r := rand.New(rand.NewSource(1))
	perm := r.Perm(5000)
	for _, v := range perm {
		tr.Insert(Key{int64(v)}, v)
	}
	var got []int64
	tr.Ascend(func(k Key, _ any) bool {
		got = append(got, k[0].(int64))
		return true
	})
	if len(got) != 5000 {
		t.Fatalf("visited %d entries", len(got))
	}
	for i := range got {
		if got[i] != int64(i) {
			t.Fatalf("position %d has key %d", i, got[i])
		}
	}
	// Early termination.
	count := 0
	tr.Ascend(func(Key, any) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early termination visited %d", count)
	}
}

func TestBTreeLargeSplitAndDuplicates(t *testing.T) {
	tr := NewBTree()
	const n = 20000
	for i := 0; i < n; i++ {
		tr.Insert(Key{int64(i % 100)}, i)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.DistinctKeys() != 100 {
		t.Fatalf("DistinctKeys = %d", tr.DistinctKeys())
	}
	for k := 0; k < 100; k++ {
		if got := len(tr.Get(Key{int64(k)})); got != n/100 {
			t.Fatalf("key %d has %d entries", k, got)
		}
	}
}

func TestBTreeScanRange(t *testing.T) {
	tr := NewBTree()
	for i := 0; i < 1000; i++ {
		tr.Insert(Key{int64(i)}, i)
	}
	collect := func(r Range) []int64 {
		var out []int64
		tr.Scan(r, func(k Key, _ any) bool {
			out = append(out, k[0].(int64))
			return true
		})
		return out
	}
	got := collect(NewRange(Key{int64(100)}, true, Key{int64(105)}, true))
	want := []int64{100, 101, 102, 103, 104, 105}
	if len(got) != len(want) {
		t.Fatalf("inclusive scan = %v", got)
	}
	got = collect(NewRange(Key{int64(100)}, false, Key{int64(105)}, false))
	if len(got) != 4 || got[0] != 101 || got[3] != 104 {
		t.Fatalf("exclusive scan = %v", got)
	}
	got = collect(NewRange(nil, true, Key{int64(3)}, true))
	if len(got) != 4 {
		t.Fatalf("unbounded min scan = %v", got)
	}
	got = collect(NewRange(Key{int64(996)}, true, nil, true))
	if len(got) != 4 {
		t.Fatalf("unbounded max scan = %v", got)
	}
	got = collect(NewRange(Key{int64(5000)}, true, nil, true))
	if len(got) != 0 {
		t.Fatalf("out-of-range scan = %v", got)
	}
	// Early termination.
	n := 0
	tr.Scan(NewRange(nil, true, nil, true), func(Key, any) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestCompareKeys(t *testing.T) {
	cases := []struct {
		a, b Key
		want int
	}{
		{Key{int64(1)}, Key{int64(2)}, -1},
		{Key{int64(2)}, Key{int64(1)}, 1},
		{Key{int64(1)}, Key{int64(1)}, 0},
		{Key{int64(1)}, Key{int64(1), "x"}, -1},
		{Key{int64(1), "x"}, Key{int64(1)}, 1},
		{Key{int64(1), "a"}, Key{int64(1), "b"}, -1},
		{Key{"a", int64(9)}, Key{"a", int64(3)}, 1},
		{Key{int64(1), MaxSentinel{}}, Key{int64(1), "zzz"}, 1},
		{Key{int64(1), "zzz"}, Key{int64(1), MaxSentinel{}}, -1},
		{Key{MaxSentinel{}}, Key{MaxSentinel{}}, 0},
	}
	for _, c := range cases {
		if got := CompareKeys(c.a, c.b); got != c.want {
			t.Errorf("CompareKeys(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestBTreeKeysDistinctOrdered(t *testing.T) {
	tr := NewBTree()
	vals := []string{"pear", "apple", "mango", "apple", "fig"}
	for i, v := range vals {
		tr.Insert(Key{v}, i)
	}
	keys := tr.Keys()
	if len(keys) != 4 {
		t.Fatalf("Keys() = %v", keys)
	}
	want := []string{"apple", "fig", "mango", "pear"}
	for i, k := range keys {
		if k[0] != want[i] {
			t.Fatalf("Keys()[%d] = %v, want %v", i, k[0], want[i])
		}
	}
}

// TestBTreeEquivalentToSortedSliceProperty drives random inserts/deletes and
// checks the tree agrees with a naive reference implementation.
func TestBTreeEquivalentToSortedSliceProperty(t *testing.T) {
	type entry struct {
		k  int64
		id int
	}
	r := rand.New(rand.NewSource(77))
	tr := NewBTree()
	var ref []entry
	for op := 0; op < 20000; op++ {
		k := int64(r.Intn(200))
		if r.Intn(3) != 0 || len(ref) == 0 {
			id := op
			tr.Insert(Key{k}, id)
			ref = append(ref, entry{k, id})
		} else {
			// Delete a random existing entry.
			i := r.Intn(len(ref))
			e := ref[i]
			if !tr.Delete(Key{e.k}, e.id) {
				t.Fatalf("delete of existing entry (%d,%d) failed", e.k, e.id)
			}
			ref = append(ref[:i], ref[i+1:]...)
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, ref = %d", tr.Len(), len(ref))
	}
	// Tree traversal must produce the reference entries sorted by key.
	sort.SliceStable(ref, func(i, j int) bool { return ref[i].k < ref[j].k })
	var got []int64
	tr.Ascend(func(k Key, _ any) bool {
		got = append(got, k[0].(int64))
		return true
	})
	if len(got) != len(ref) {
		t.Fatalf("traversal length %d, want %d", len(got), len(ref))
	}
	for i := range got {
		if got[i] != ref[i].k {
			t.Fatalf("traversal[%d] = %d, want %d", i, got[i], ref[i].k)
		}
	}
	// Range scans agree with the reference for random ranges.
	for trial := 0; trial < 200; trial++ {
		lo := int64(r.Intn(200))
		hi := lo + int64(r.Intn(50))
		wantCount := 0
		for _, e := range ref {
			if e.k >= lo && e.k <= hi {
				wantCount++
			}
		}
		gotCount := 0
		tr.Scan(NewRange(Key{lo}, true, Key{hi}, true), func(Key, any) bool {
			gotCount++
			return true
		})
		if gotCount != wantCount {
			t.Fatalf("range [%d,%d]: got %d, want %d", lo, hi, gotCount, wantCount)
		}
	}
}

func TestBTreeStringKeysQuick(t *testing.T) {
	// Inserting any set of strings and traversing must yield them sorted.
	f := func(vals []string) bool {
		tr := NewBTree()
		for i, v := range vals {
			tr.Insert(Key{v}, i)
		}
		var got []string
		tr.Ascend(func(k Key, _ any) bool {
			got = append(got, k[0].(string))
			return true
		})
		if len(got) != len(vals) {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeMixedTypeKeysOrdered(t *testing.T) {
	tr := NewBTree()
	vals := []any{int64(3), "str", nil, true, 2.5, bson.NewObjectID()}
	for i, v := range vals {
		tr.Insert(Key{v}, i)
	}
	var types []bson.Type
	tr.Ascend(func(k Key, _ any) bool {
		types = append(types, bson.TypeOf(k[0]))
		return true
	})
	for i := 1; i < len(types); i++ {
		if types[i] < types[i-1] {
			t.Fatalf("cross-type order violated: %v", types)
		}
	}
}
