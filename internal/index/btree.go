// Package index implements the secondary-index engine of the document store:
// an in-memory B-tree keyed by composite document values, and the index
// types described in §2.1.2 of the thesis (default _id, single field,
// compound, multikey, and hashed indexes).
package index

import (
	"docstore/internal/bson"
)

// btreeDegree is the minimum degree of the B-tree: every node except the root
// holds between degree-1 and 2*degree-1 keys.
const btreeDegree = 32

// Key is a composite index key: one entry per indexed field, compared
// lexicographically with the canonical value ordering.
type Key []any

// MaxSentinel is a key component that sorts after every canonical value.
// Range scans append it to an upper bound to cover all trailing components of
// a compound key sharing the bounded prefix.
type MaxSentinel struct{}

// CompareKeys orders two composite keys.
func CompareKeys(a, b Key) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		_, aMax := a[i].(MaxSentinel)
		_, bMax := b[i].(MaxSentinel)
		if aMax || bMax {
			switch {
			case aMax && bMax:
				continue
			case aMax:
				return 1
			default:
				return -1
			}
		}
		if c := bson.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// item is one key slot in a B-tree node: a composite key and the set of
// document ids that share it.
type item struct {
	key Key
	ids []any
}

type node struct {
	items    []item
	children []*node
}

func (n *node) leaf() bool { return len(n.children) == 0 }

// BTree is an in-memory B-tree mapping composite keys to document ids.
// It is not safe for concurrent mutation; the owning collection serializes
// access.
type BTree struct {
	root    *node
	keys    int // number of distinct keys
	entries int // number of (key, id) pairs
}

// NewBTree returns an empty tree.
func NewBTree() *BTree {
	return &BTree{root: &node{}}
}

// Len returns the number of (key, id) entries in the tree.
func (t *BTree) Len() int { return t.entries }

// DistinctKeys returns the number of distinct keys in the tree. The shard-key
// cardinality heuristics use this.
func (t *BTree) DistinctKeys() int { return t.keys }

// findInNode returns the position of key in the node and whether it is
// present.
func findInNode(n *node, key Key) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if CompareKeys(n.items[mid].key, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.items) && CompareKeys(n.items[lo].key, key) == 0 {
		return lo, true
	}
	return lo, false
}

// Insert adds an (key, id) entry. Multiple ids may share a key.
func (t *BTree) Insert(key Key, id any) {
	if len(t.root.items) == 2*btreeDegree-1 {
		old := t.root
		t.root = &node{children: []*node{old}}
		t.splitChild(t.root, 0)
	}
	t.insertNonFull(t.root, key, id)
}

func (t *BTree) splitChild(parent *node, i int) {
	child := parent.children[i]
	mid := btreeDegree - 1
	midItem := child.items[mid]

	right := &node{}
	right.items = append(right.items, child.items[mid+1:]...)
	if !child.leaf() {
		right.children = append(right.children, child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.items = child.items[:mid]

	parent.items = append(parent.items, item{})
	copy(parent.items[i+1:], parent.items[i:])
	parent.items[i] = midItem

	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
}

func (t *BTree) insertNonFull(n *node, key Key, id any) {
	for {
		pos, found := findInNode(n, key)
		if found {
			if len(n.items[pos].ids) == 0 {
				// Re-populating a key slot left empty by a lazy delete.
				t.keys++
			}
			n.items[pos].ids = append(n.items[pos].ids, id)
			t.entries++
			return
		}
		if n.leaf() {
			n.items = append(n.items, item{})
			copy(n.items[pos+1:], n.items[pos:])
			n.items[pos] = item{key: append(Key(nil), key...), ids: []any{id}}
			t.keys++
			t.entries++
			return
		}
		if len(n.children[pos].items) == 2*btreeDegree-1 {
			t.splitChild(n, pos)
			if c := CompareKeys(key, n.items[pos].key); c == 0 {
				if len(n.items[pos].ids) == 0 {
					t.keys++
				}
				n.items[pos].ids = append(n.items[pos].ids, id)
				t.entries++
				return
			} else if c > 0 {
				pos++
			}
		}
		n = n.children[pos]
	}
}

// Delete removes one (key, id) entry and reports whether it was found.
// The tree uses lazy structural deletion: emptied key slots are removed from
// their node but nodes are not rebalanced, which keeps deletion simple while
// preserving search correctness (the workloads of the thesis are read- and
// append-heavy).
func (t *BTree) Delete(key Key, id any) bool {
	n := t.root
	for {
		pos, found := findInNode(n, key)
		if found {
			ids := n.items[pos].ids
			for i, e := range ids {
				if bson.Compare(e, id) == 0 {
					n.items[pos].ids = append(ids[:i], ids[i+1:]...)
					t.entries--
					if len(n.items[pos].ids) == 0 {
						t.keys--
						// Keep the key slot when the node is internal (it
						// separates children); empty leaf slots are removed.
						if n.leaf() {
							n.items = append(n.items[:pos], n.items[pos+1:]...)
						}
					}
					return true
				}
			}
			return false
		}
		if n.leaf() {
			return false
		}
		n = n.children[pos]
	}
}

// Get returns the ids stored under an exact key.
func (t *BTree) Get(key Key) []any {
	n := t.root
	for {
		pos, found := findInNode(n, key)
		if found {
			return append([]any(nil), n.items[pos].ids...)
		}
		if n.leaf() {
			return nil
		}
		n = n.children[pos]
	}
}

// Ascend walks every entry in key order, invoking fn for each (key, id) pair
// until fn returns false.
func (t *BTree) Ascend(fn func(key Key, id any) bool) {
	t.ascend(t.root, fn)
}

func (t *BTree) ascend(n *node, fn func(Key, any) bool) bool {
	for i, it := range n.items {
		if !n.leaf() {
			if !t.ascend(n.children[i], fn) {
				return false
			}
		}
		if len(it.ids) > 0 {
			for _, id := range it.ids {
				if !fn(it.key, id) {
					return false
				}
			}
		}
	}
	if !n.leaf() {
		return t.ascend(n.children[len(n.items)], fn)
	}
	return true
}

// Range describes a key interval for a range scan. A nil Min or Max leaves
// that side unbounded.
type Range struct {
	Min, Max                   Key
	MinInclusive, MaxIncl      bool
	unboundedMin, unboundedMax bool
}

// NewRange builds a range; pass nil for an unbounded side.
func NewRange(min Key, minIncl bool, max Key, maxIncl bool) Range {
	return Range{
		Min: min, Max: max,
		MinInclusive: minIncl, MaxIncl: maxIncl,
		unboundedMin: min == nil, unboundedMax: max == nil,
	}
}

func (r Range) contains(key Key) bool {
	if !r.unboundedMin {
		c := CompareKeys(key, r.Min)
		if c < 0 || (c == 0 && !r.MinInclusive) {
			return false
		}
	}
	if !r.unboundedMax {
		c := CompareKeys(key, r.Max)
		if c > 0 || (c == 0 && !r.MaxIncl) {
			return false
		}
	}
	return true
}

func (r Range) belowMax(key Key) bool {
	if r.unboundedMax {
		return true
	}
	c := CompareKeys(key, r.Max)
	return c < 0 || (c == 0 && r.MaxIncl)
}

// Scan walks entries whose keys fall inside the range, in key order, invoking
// fn until it returns false.
func (t *BTree) Scan(r Range, fn func(key Key, id any) bool) {
	t.scan(t.root, r, fn)
}

func (t *BTree) scan(n *node, r Range, fn func(Key, any) bool) bool {
	for i, it := range n.items {
		// Descend left whenever the subtree may still contain in-range keys.
		if !n.leaf() {
			descend := true
			if !r.unboundedMin {
				c := CompareKeys(it.key, r.Min)
				if c < 0 {
					descend = false
				}
			}
			if descend {
				if !t.scan(n.children[i], r, fn) {
					return false
				}
			}
		}
		if !r.belowMax(it.key) {
			return false
		}
		if r.contains(it.key) && len(it.ids) > 0 {
			for _, id := range it.ids {
				if !fn(it.key, id) {
					return false
				}
			}
		}
	}
	if !n.leaf() {
		return t.scan(n.children[len(n.items)], r, fn)
	}
	return true
}

// Keys returns every distinct key in order. Intended for tests and for
// chunk-split point calculation.
func (t *BTree) Keys() []Key {
	var out []Key
	var last Key
	t.Ascend(func(k Key, _ any) bool {
		if last == nil || CompareKeys(last, k) != 0 {
			out = append(out, k)
			last = k
		}
		return true
	})
	return out
}
