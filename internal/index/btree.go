// Package index implements the secondary-index engine of the document store:
// an in-memory B-tree keyed by composite document values, and the index
// types described in §2.1.2 of the thesis (default _id, single field,
// compound, multikey, and hashed indexes).
package index

import (
	"docstore/internal/bson"
)

// The tree uses asymmetric minimum degrees: every node except the root holds
// between degree-1 and 2*degree-1 keys of its level's degree. Leaves are kept
// narrower than interior nodes because a copy-on-write era duplicates a
// leaf's whole item array on its first mutation — leaf width is the dominant
// per-era copy cost — while interior nodes alias their item arrays on a pure
// descent and duplicate only their child-pointer arrays, so width there buys
// a shallower tree almost for free.
const (
	btreeInternalDegree = 32
	btreeLeafDegree     = 8
)

// maxNodeItems returns the item capacity at which n must split.
func maxNodeItems(n *node) int {
	if n.leaf() {
		return 2*btreeLeafDegree - 1
	}
	return 2*btreeInternalDegree - 1
}

// Key is a composite index key: one entry per indexed field, compared
// lexicographically with the canonical value ordering.
type Key []any

// MaxSentinel is a key component that sorts after every canonical value.
// Range scans append it to an upper bound to cover all trailing components of
// a compound key sharing the bounded prefix.
type MaxSentinel struct{}

// CompareKeys orders two composite keys.
func CompareKeys(a, b Key) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		_, aMax := a[i].(MaxSentinel)
		_, bMax := b[i].(MaxSentinel)
		if aMax || bMax {
			switch {
			case aMax && bMax:
				continue
			case aMax:
				return 1
			default:
				return -1
			}
		}
		if c := bson.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// item is one key slot in a B-tree node: a composite key and the set of
// document ids that share it. idsOwner marks the mutation stamp that last
// replaced the ids slice: when it equals the tree's current stamp the slice
// was allocated by the current (unpublished) batch and may be appended to or
// spliced in place; otherwise it may be shared with a frozen clone and must
// be copied before mutation. Keys are copied at insert and never mutated, so
// they need no ownership tracking.
type item struct {
	key      Key
	ids      []any
	idsOwner int64
}

// node is one B-tree node. owner marks the mutation stamp that created (or
// path-copied) it: when it equals the tree's current stamp the node is
// private to the unpublished batch and may be mutated in place; otherwise it
// may be reachable from a frozen clone and must be copied first. With a zero
// stamp (legacy in-place mode) ownership is never consulted.
//
// The items backing array has its own ownership stamp: a path-copied node
// shell initially aliases the source's array (concurrent reads of a shared
// array are safe — only the child pointers change on a pure descent), and
// ownItems duplicates it lazily before the first in-place item mutation of
// the era. Interior nodes on an insert path therefore copy ~one cache line
// of child pointers instead of their full item array.
type node struct {
	items    []item
	children []*node
	owner    int64
	// itemsOwner marks the stamp that allocated the items backing array; when
	// it trails owner the array is still shared with displaced shells.
	itemsOwner int64
}

func (n *node) leaf() bool { return len(n.children) == 0 }

// shellBytes estimates the footprint of the node struct and its child
// pointer array — the part ownNode duplicates eagerly.
func (n *node) shellBytes() int64 {
	return int64(48 + 8*len(n.children))
}

// itemBytes estimates the footprint of the items backing array — the part
// ownItems duplicates lazily on the first item mutation of an era.
func (n *node) itemBytes() int64 {
	var b int64
	for i := range n.items {
		b += int64(32 + 16*len(n.items[i].key) + 16*len(n.items[i].ids))
	}
	return b
}

// estBytes is a deterministic estimate of the node's full memory footprint,
// used by the copy-on-write gauges. It counts pointer-level structure
// (headers, key and id slots, child pointers), not encoded document bytes,
// so it is cheap enough to compute on every path copy.
func (n *node) estBytes() int64 {
	return n.shellBytes() + n.itemBytes()
}

// BTree is an in-memory B-tree mapping composite keys to document ids.
//
// It is a persistent (path-copying) structure when driven with mutation
// stamps: SetStamp opens a copy-on-write era, and every mutation first copies
// the O(log n) nodes on the root-to-target path that are not already owned by
// the era, leaving nodes reachable from earlier Clone()s untouched. Clone
// returns an immutable point-in-time handle sharing the current nodes, so
// readers scan it without any locking while the writer keeps mutating.
//
// With a zero stamp the tree degrades to the original in-place structure.
// It is not safe for concurrent mutation; the owning collection serializes
// writers, and only frozen clones may be read concurrently with mutation.
type BTree struct {
	root    *node
	keys    int // number of distinct keys
	entries int // number of (key, id) pairs
	nodes   int // nodes reachable from root (live tree size)

	// stamp is the current copy-on-write era; 0 disables path copying.
	stamp int64
	// frozen marks an immutable Clone; mutations panic instead of silently
	// corrupting the versions sharing its nodes.
	frozen bool
	// onCopy, when set, observes every path copy: the estimated bytes of the
	// node that was duplicated (the displaced original is now retired and
	// reclaimable once no frozen clone can reach it).
	onCopy func(bytes int64)
}

// NewBTree returns an empty tree.
func NewBTree() *BTree {
	return &BTree{root: &node{}, nodes: 1}
}

// Len returns the number of (key, id) entries in the tree.
func (t *BTree) Len() int { return t.entries }

// DistinctKeys returns the number of distinct keys in the tree. The shard-key
// cardinality heuristics use this.
func (t *BTree) DistinctKeys() int { return t.keys }

// Nodes returns the number of nodes reachable from the current root.
func (t *BTree) Nodes() int { return t.nodes }

// EstBytes walks the tree and returns the estimated memory footprint of its
// nodes: what retiring the whole tree (DropIndex, collection Drop) releases.
// O(nodes); intended for the rare structural operations, not hot paths.
func (t *BTree) EstBytes() int64 {
	var walk func(n *node) int64
	walk = func(n *node) int64 {
		b := n.estBytes()
		for _, c := range n.children {
			b += walk(c)
		}
		return b
	}
	return walk(t.root)
}

// SetStamp opens a new copy-on-write era: mutations that follow copy any node
// (or ids slice) not created under this stamp before changing it. Stamps must
// strictly increase across eras; the owning collection uses its write
// sequence. A zero stamp restores legacy in-place mutation.
func (t *BTree) SetStamp(s int64) { t.stamp = s }

// SetCopyHook registers the observer invoked with the estimated byte size of
// every copy-on-write duplication: a node shell (struct + child pointers)
// and its item array count as separate events, since the array is aliased on
// the path copy and only duplicated when items actually mutate. The
// displaced memory stays reachable from frozen clones; the hook is where the
// owning collection retires it for pin-tracked reclamation.
func (t *BTree) SetCopyHook(fn func(bytes int64)) { t.onCopy = fn }

// Clone returns an immutable point-in-time handle over the current nodes.
// It is O(1): the clone shares every node with the source, and the source's
// next mutation era (after SetStamp advances) path-copies what it changes
// instead of touching shared nodes. The clone panics on mutation.
func (t *BTree) Clone() *BTree {
	cp := new(BTree)
	t.CloneInto(cp)
	return cp
}

// CloneInto writes the immutable clone into caller-provided storage, letting
// the caller co-allocate the handle with its surroundings (see Index.Freeze).
func (t *BTree) CloneInto(dst *BTree) {
	*dst = BTree{root: t.root, keys: t.keys, entries: t.entries, nodes: t.nodes, frozen: true}
}

// ownNode returns a node safe to mutate under the current stamp, path-copying
// it when it may be shared with a frozen clone. The caller installs the
// result into its (already owned) parent. Only the struct and child pointer
// array are duplicated here; the items array stays aliased (itemsOwner marks
// it shared) until ownItems is asked to mutate it.
func (t *BTree) ownNode(n *node) *node {
	if t.stamp == 0 || n.owner == t.stamp {
		return n
	}
	cp := &node{owner: t.stamp, items: n.items, itemsOwner: n.itemsOwner}
	if len(n.children) > 0 {
		cp.children = append([]*node(nil), n.children...)
	}
	if t.onCopy != nil {
		t.onCopy(cp.shellBytes())
	}
	return cp
}

// ownItems makes an owned node's items backing array private to the current
// era, copying it when displaced shells (reachable from frozen clones) may
// still alias it. extra reserves append room so a following insertion does
// not immediately reallocate the fresh array.
func (t *BTree) ownItems(n *node, extra int) {
	if t.stamp == 0 || n.itemsOwner == t.stamp {
		return
	}
	if t.onCopy != nil {
		t.onCopy(n.itemBytes())
	}
	n.items = append(make([]item, 0, len(n.items)+extra), n.items...)
	n.itemsOwner = t.stamp
}

// ownIDs makes the ids slice of n.items[pos] safe to mutate in place. It
// first privatizes the containing items array (the ids header and idsOwner
// are written through it), then copies the ids backing array when a frozen
// clone may still share it. extra reserves append room. Callers must re-take
// any item pointer after the call: privatizing relocates the array.
func (t *BTree) ownIDs(n *node, pos, extra int) {
	if t.stamp == 0 {
		return
	}
	t.ownItems(n, 0)
	it := &n.items[pos]
	if it.idsOwner == t.stamp {
		return
	}
	it.ids = append(make([]any, 0, len(it.ids)+extra), it.ids...)
	it.idsOwner = t.stamp
}

func (t *BTree) mutable() {
	if t.frozen {
		panic("index: mutating a frozen BTree clone")
	}
}

// findInNode returns the position of key in the node and whether it is
// present.
func findInNode(n *node, key Key) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if CompareKeys(n.items[mid].key, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.items) && CompareKeys(n.items[lo].key, key) == 0 {
		return lo, true
	}
	return lo, false
}

// Insert adds an (key, id) entry. Multiple ids may share a key.
func (t *BTree) Insert(key Key, id any) {
	t.mutable()
	t.root = t.ownNode(t.root)
	if len(t.root.items) == maxNodeItems(t.root) {
		old := t.root
		t.root = &node{children: []*node{old}, owner: t.stamp, itemsOwner: t.stamp}
		t.nodes++
		t.splitChild(t.root, 0)
	}
	t.insertNonFull(t.root, key, id)
}

// splitChild splits the full i-th child of parent. Both parent and the child
// are owned by the split — item arrays included, since both have items
// spliced or truncated in place, which only a private array tolerates.
func (t *BTree) splitChild(parent *node, i int) {
	child := t.ownNode(parent.children[i])
	parent.children[i] = child
	// The child is full at its level's capacity (always odd), so the middle
	// item promotes and both halves keep at least degree-1 items.
	mid := len(child.items) / 2
	midItem := child.items[mid]

	right := &node{owner: t.stamp, itemsOwner: t.stamp}
	t.nodes++
	right.items = append(right.items, child.items[mid+1:]...)
	if !child.leaf() {
		right.children = append(right.children, child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	if t.stamp != 0 && child.itemsOwner != t.stamp {
		// The left half is all the split keeps of a shared array: copy just
		// it (with one slot of growth room) instead of privatizing the full
		// array only to truncate it.
		if t.onCopy != nil {
			t.onCopy(child.itemBytes())
		}
		child.items = append(make([]item, 0, mid+1), child.items[:mid]...)
		child.itemsOwner = t.stamp
	} else {
		// Drop the moved items' references from the owned left node so they
		// are not retained twice.
		for j := mid; j < len(child.items); j++ {
			child.items[j] = item{}
		}
		child.items = child.items[:mid]
	}

	t.ownItems(parent, 1)
	parent.items = append(parent.items, item{})
	copy(parent.items[i+1:], parent.items[i:])
	parent.items[i] = midItem

	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
}

// insertNonFull descends from an owned, non-full node, owning each child on
// the path before stepping into it.
func (t *BTree) insertNonFull(n *node, key Key, id any) {
	for {
		pos, found := findInNode(n, key)
		if found {
			t.ownIDs(n, pos, 1)
			it := &n.items[pos]
			if len(it.ids) == 0 {
				// Re-populating a key slot left empty by a lazy delete.
				t.keys++
			}
			it.ids = append(it.ids, id)
			t.entries++
			return
		}
		if n.leaf() {
			t.ownItems(n, 1)
			n.items = append(n.items, item{})
			copy(n.items[pos+1:], n.items[pos:])
			n.items[pos] = item{key: append(Key(nil), key...), ids: []any{id}, idsOwner: t.stamp}
			t.keys++
			t.entries++
			return
		}
		if len(n.children[pos].items) == maxNodeItems(n.children[pos]) {
			t.splitChild(n, pos)
			if c := CompareKeys(key, n.items[pos].key); c == 0 {
				t.ownIDs(n, pos, 1)
				it := &n.items[pos]
				if len(it.ids) == 0 {
					t.keys++
				}
				it.ids = append(it.ids, id)
				t.entries++
				return
			} else if c > 0 {
				pos++
			}
		}
		child := t.ownNode(n.children[pos])
		n.children[pos] = child
		n = child
	}
}

// Delete removes one (key, id) entry and reports whether it was found.
// The tree uses lazy structural deletion: emptied key slots are removed from
// their node but nodes are not rebalanced, which keeps deletion simple while
// preserving search correctness (the workloads of the thesis are read- and
// append-heavy). Under a copy-on-write stamp the root-to-target path is
// copied like any other mutation.
func (t *BTree) Delete(key Key, id any) bool {
	t.mutable()
	t.root = t.ownNode(t.root)
	n := t.root
	for {
		pos, found := findInNode(n, key)
		if found {
			for i, e := range n.items[pos].ids {
				if bson.Compare(e, id) == 0 {
					t.ownIDs(n, pos, 0)
					it := &n.items[pos]
					it.ids = append(it.ids[:i], it.ids[i+1:]...)
					t.entries--
					if len(it.ids) == 0 {
						t.keys--
						// Keep the key slot when the node is internal (it
						// separates children); empty leaf slots are removed.
						if n.leaf() {
							copy(n.items[pos:], n.items[pos+1:])
							n.items[len(n.items)-1] = item{}
							n.items = n.items[:len(n.items)-1]
						}
					}
					return true
				}
			}
			return false
		}
		if n.leaf() {
			return false
		}
		child := t.ownNode(n.children[pos])
		n.children[pos] = child
		n = child
	}
}

// Get returns the ids stored under an exact key.
func (t *BTree) Get(key Key) []any {
	n := t.root
	for {
		pos, found := findInNode(n, key)
		if found {
			return append([]any(nil), n.items[pos].ids...)
		}
		if n.leaf() {
			return nil
		}
		n = n.children[pos]
	}
}

// Ascend walks every entry in key order, invoking fn for each (key, id) pair
// until fn returns false.
func (t *BTree) Ascend(fn func(key Key, id any) bool) {
	t.ascend(t.root, fn)
}

func (t *BTree) ascend(n *node, fn func(Key, any) bool) bool {
	for i, it := range n.items {
		if !n.leaf() {
			if !t.ascend(n.children[i], fn) {
				return false
			}
		}
		if len(it.ids) > 0 {
			for _, id := range it.ids {
				if !fn(it.key, id) {
					return false
				}
			}
		}
	}
	if !n.leaf() {
		return t.ascend(n.children[len(n.items)], fn)
	}
	return true
}

// Range describes a key interval for a range scan. A nil Min or Max leaves
// that side unbounded.
type Range struct {
	Min, Max                   Key
	MinInclusive, MaxIncl      bool
	unboundedMin, unboundedMax bool
}

// NewRange builds a range; pass nil for an unbounded side.
func NewRange(min Key, minIncl bool, max Key, maxIncl bool) Range {
	return Range{
		Min: min, Max: max,
		MinInclusive: minIncl, MaxIncl: maxIncl,
		unboundedMin: min == nil, unboundedMax: max == nil,
	}
}

func (r Range) contains(key Key) bool {
	if !r.unboundedMin {
		c := CompareKeys(key, r.Min)
		if c < 0 || (c == 0 && !r.MinInclusive) {
			return false
		}
	}
	if !r.unboundedMax {
		c := CompareKeys(key, r.Max)
		if c > 0 || (c == 0 && !r.MaxIncl) {
			return false
		}
	}
	return true
}

func (r Range) belowMax(key Key) bool {
	if r.unboundedMax {
		return true
	}
	c := CompareKeys(key, r.Max)
	return c < 0 || (c == 0 && r.MaxIncl)
}

// Scan walks entries whose keys fall inside the range, in key order, invoking
// fn until it returns false.
func (t *BTree) Scan(r Range, fn func(key Key, id any) bool) {
	t.scan(t.root, r, fn)
}

func (t *BTree) scan(n *node, r Range, fn func(Key, any) bool) bool {
	for i, it := range n.items {
		// Descend left whenever the subtree may still contain in-range keys.
		if !n.leaf() {
			descend := true
			if !r.unboundedMin {
				c := CompareKeys(it.key, r.Min)
				if c < 0 {
					descend = false
				}
			}
			if descend {
				if !t.scan(n.children[i], r, fn) {
					return false
				}
			}
		}
		if !r.belowMax(it.key) {
			return false
		}
		if r.contains(it.key) && len(it.ids) > 0 {
			for _, id := range it.ids {
				if !fn(it.key, id) {
					return false
				}
			}
		}
	}
	if !n.leaf() {
		return t.scan(n.children[len(n.items)], r, fn)
	}
	return true
}

// Keys returns every distinct key in order. Intended for tests and for
// chunk-split point calculation.
func (t *BTree) Keys() []Key {
	var out []Key
	var last Key
	t.Ascend(func(k Key, _ any) bool {
		if last == nil || CompareKeys(last, k) != 0 {
			out = append(out, k)
			last = k
		}
		return true
	})
	return out
}
