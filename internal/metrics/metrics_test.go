package metrics

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestFormatDurationThesisStyle(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{620 * time.Millisecond, "0.62s"},
		{15710 * time.Millisecond, "15.71s"},
		{4*time.Minute + 50*time.Second, "4m50.00s"},
		{47*time.Minute + 20*time.Second + 140*time.Millisecond, "47m20.14s"},
		{time.Hour + 53*time.Minute + 51*time.Second, "1h53m51.00s"},
		{3*time.Hour + 31*time.Minute + 53720*time.Millisecond, "3h31m53.72s"},
		{0, "0.00s"},
		{-5 * time.Second, "0.00s"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{512, "512B"},
		{2 << 10, "2.00KB"},
		{629145, "614.40KB"},
		{3 << 20, "3.00MB"},
		{12 << 30, "12.00GB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.n); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Table X: demo", "Query", "Runtime")
	tab.AddRow("Query 7", "15.71s")
	tab.AddRow("Query 46", "3m18.00s")
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	out := tab.String()
	for _, want := range []string{"Table X: demo", "Query 7", "3m18.00s", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title + header + separator + 2 rows
		t.Errorf("table has %d lines", len(lines))
	}
}

func TestFigureRendering(t *testing.T) {
	f := Figure{Title: "Figure Y", YLabel: "s"}
	f.AddSeries("denormalized", []string{"Query 7", "Query 21"}, []float64{0.62, 0.17})
	f.AddSeries("normalized", []string{"Query 7", "Query 21"}, []float64{7.30, 26.84})
	out := f.String()
	for _, want := range []string{"Figure Y", "denormalized", "normalized", "Query 21", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
	// Empty figure renders without panicking.
	if (&Figure{Title: "empty"}).String() == "" {
		t.Errorf("empty figure should still render its title")
	}
	// A series with more labels than values pads with zeros.
	padded := Figure{}
	padded.AddSeries("s", []string{"a", "b"}, []float64{1})
	if !strings.Contains(padded.String(), "b") {
		t.Errorf("padded series missing label")
	}
}

func TestTimer(t *testing.T) {
	// An injected clock makes the measured durations exact: each Measure
	// call advances the fake clock by a known amount inside fn, so the
	// assertions hold on any scheduler and any timer granularity.
	now := time.Unix(1_000_000, 0)
	var tm Timer
	tm.Clock = func() time.Time { return now }
	if tm.Best() != 0 || tm.Mean() != 0 {
		t.Fatalf("empty timer should report zero")
	}
	for i, d := range []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
		if err := tm.Measure(func() error {
			now = now.Add(d)
			return nil
		}); err != nil {
			t.Fatal(i, err)
		}
	}
	wantErr := errors.New("boom")
	if err := tm.Measure(func() error { return wantErr }); err != wantErr {
		t.Fatalf("Measure should return the function's error")
	}
	runs := tm.Runs()
	if len(runs) != 4 {
		t.Fatalf("runs = %d", len(runs))
	}
	if runs[0] != 30*time.Millisecond || runs[3] != 0 {
		t.Fatalf("runs = %v", runs)
	}
	if tm.Best() != 0 {
		t.Fatalf("best = %v, want the zero-duration error run", tm.Best())
	}
	if tm.Mean() != 15*time.Millisecond {
		t.Fatalf("mean = %v", tm.Mean())
	}
}
