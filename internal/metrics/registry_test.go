package metrics

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryCountersAndLabels(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("docstore_wire_requests_total", "wire requests", "op", "insert")
	b := r.Counter("docstore_wire_requests_total", "wire requests", "op", "find")
	again := r.Counter("docstore_wire_requests_total", "wire requests", "op", "insert")
	if a != again {
		t.Fatalf("same name+labels returned distinct counters")
	}
	if a == b {
		t.Fatalf("distinct labels share a counter")
	}
	a.Inc()
	a.Add(2)
	a.Add(-5) // ignored: monotonic
	b.Inc()

	var buf strings.Builder
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE docstore_wire_requests_total counter",
		`docstore_wire_requests_total{op="insert"} 3`,
		`docstore_wire_requests_total{op="find"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// TYPE line appears once per family, not per series.
	if strings.Count(out, "# TYPE docstore_wire_requests_total") != 1 {
		t.Fatalf("family TYPE line duplicated:\n%s", out)
	}
}

func TestRegistryHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("docstore_wire_request_duration_seconds", "request latency", "op", "find")
	h.Observe(500 * time.Microsecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(2 * time.Millisecond)

	var buf strings.Builder
	r.WritePrometheus(&buf)
	out := buf.String()
	if !strings.Contains(out, "# TYPE docstore_wire_request_duration_seconds histogram") {
		t.Fatalf("missing histogram TYPE:\n%s", out)
	}
	if !strings.Contains(out, `docstore_wire_request_duration_seconds_bucket{op="find",le="+Inf"} 3`) {
		t.Fatalf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, `docstore_wire_request_duration_seconds_count{op="find"} 3`) {
		t.Fatalf("missing _count:\n%s", out)
	}
	// Cumulative bucket counts must be non-decreasing across le bounds.
	var prev int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "docstore_wire_request_duration_seconds_bucket") {
			continue
		}
		var n int64
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("bad bucket line %q", line)
		}
		for _, ch := range fields[1] {
			n = n*10 + int64(ch-'0')
		}
		if n < prev {
			t.Fatalf("cumulative buckets decreased at %q:\n%s", line, out)
		}
		prev = n
	}
	// _sum is in seconds.
	if !strings.Contains(out, "docstore_wire_request_duration_seconds_sum") {
		t.Fatalf("missing _sum:\n%s", out)
	}
}

func TestRegistryGaugeSourceMangling(t *testing.T) {
	r := NewRegistry()
	r.AddGaugeSource("docstore", func() []Gauge {
		return []Gauge{
			{Name: "engine.liveVersions", Value: 7},
			{Name: "engine.retainedBytes", Value: 1024, Unit: "bytes"},
		}
	})
	var buf strings.Builder
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE docstore_engine_live_versions gauge",
		"docstore_engine_live_versions 7",
		"docstore_engine_retained_bytes 1024",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHandlerServesMergedRegistries(t *testing.T) {
	wireReg, mongodReg := NewRegistry(), NewRegistry()
	wireReg.Counter("docstore_wire_requests_total", "", "op", "ping").Inc()
	mongodReg.Counter("docstore_mongod_ops_total", "", "op", "insert").Inc()

	srv := httptest.NewServer(Handler(wireReg, mongodReg, nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	out := string(body)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	if !strings.Contains(out, "docstore_wire_requests_total") || !strings.Contains(out, "docstore_mongod_ops_total") {
		t.Fatalf("merged exposition incomplete:\n%s", out)
	}
}

// TestHandlerContentNegotiation pins the exemplar gating: a plain scrape
// gets the classic text format with no exemplars (classic parsers reject
// the `#` suffix after a sample value), while an Accept header offering
// application/openmetrics-text gets the OpenMetrics exposition — exemplars
// included, counter families stripped of their `_total` suffix on the TYPE
// line, and a terminating `# EOF`.
func TestHandlerContentNegotiation(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("nego_requests_total", "requests", "op", "find").Inc()
	reg.Histogram("nego_latency_seconds", "latency").ObserveExemplar(1500*time.Nanosecond, "00000000deadbeef")

	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	scrape := func(accept string) (string, string) {
		req, err := http.NewRequest("GET", srv.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatalf("scrape: %v", err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	classic, ct := scrape("")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("plain scrape content-type = %q", ct)
	}
	if strings.Contains(classic, "# {trace_id=") {
		t.Fatalf("classic exposition carries an exemplar:\n%s", classic)
	}
	if strings.Contains(classic, "# EOF") {
		t.Fatalf("classic exposition carries the OpenMetrics terminator:\n%s", classic)
	}
	if !strings.Contains(classic, "# TYPE nego_requests_total counter") {
		t.Fatalf("classic TYPE line mangled:\n%s", classic)
	}

	// Prometheus's real Accept header shape.
	om, ct := scrape("application/openmetrics-text;version=1.0.0,text/plain;version=0.0.4;q=0.5")
	if !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("openmetrics scrape content-type = %q", ct)
	}
	if !strings.Contains(om, `# {trace_id="00000000deadbeef"}`) {
		t.Fatalf("openmetrics exposition lost the exemplar:\n%s", om)
	}
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Fatalf("openmetrics exposition not EOF-terminated:\n%s", om)
	}
	if !strings.Contains(om, "# TYPE nego_requests counter") || strings.Contains(om, "# TYPE nego_requests_total counter") {
		t.Fatalf("openmetrics counter family kept its _total suffix:\n%s", om)
	}
	if !strings.Contains(om, `nego_requests_total{op="find"} 1`) {
		t.Fatalf("openmetrics counter sample renamed:\n%s", om)
	}

	// An explicit q=0 opt-out falls back to the classic format.
	if optOut, ct := scrape("application/openmetrics-text;q=0,text/plain"); !strings.HasPrefix(ct, "text/plain") || strings.Contains(optOut, "# EOF") {
		t.Fatalf("q=0 still served openmetrics (ct=%q)", ct)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ops := []string{"insert", "find", "update"}
			for i := 0; i < 500; i++ {
				op := ops[i%len(ops)]
				r.Counter("docstore_mongod_ops_total", "", "op", op).Inc()
				r.Histogram("docstore_mongod_op_duration_seconds", "", "op", op).Observe(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					var buf strings.Builder
					r.WritePrometheus(&buf)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("docstore_mongod_ops_total", "", "op", "insert").Value(); got != 8*167 {
		t.Fatalf("insert counter = %d, want %d", got, 8*167)
	}
}
