package metrics

import (
	"sync"
	"sync/atomic"
)

// DefaultMaxSeries bounds how many distinct label sets a labeled family
// (CounterVec/HistogramVec) will materialize before routing new sets to its
// overflow series. The bound is what keeps a hostile namespace stream —
// a client inserting into millions of generated collection names — from
// exploding the registry: past the cap, every unseen label set shares one
// {...="other"} series and only a drop counter grows.
const DefaultMaxSeries = 128

// maxVecLabels is the most label keys a vec supports. The bounded label
// schema this package exports is {collection, shard, op}; four leaves head
// room without making the lookup key heap-allocated.
const maxVecLabels = 4

// labelKey is the comparable, allocation-free lookup key for one label set.
type labelKey [maxVecLabels]string

// overflowValue is the label value every dimension of the overflow series
// carries once the cardinality cap is hit.
const overflowValue = "other"

// vec is the shared machinery of CounterVec and HistogramVec: a bounded map
// from label values to registered series. Lookups on the hot path take one
// RWMutex read lock and one map read, with no allocation; the first
// observation of a new label set takes the write lock and registers the
// series (or, past the cap, falls through to the overflow series).
type vec[T any] struct {
	name string
	keys []string
	max  int
	make func(values []string) T

	mu       sync.RWMutex
	series   map[labelKey]T
	overflow T
	// droppedKeys tracks which refused label sets were already counted, so
	// droppedSets approximates "distinct label sets dropped" rather than
	// "observations dropped". It is itself bounded by max: once full, an
	// unseen refused set increments the counter every time it appears, so
	// past 2*max distinct sets the gauge becomes an upper bound.
	droppedKeys map[labelKey]struct{}
	droppedSets atomic.Int64
}

func newVec[T any](r *Registry, name string, keys []string, max int, mk func(values []string) T) *vec[T] {
	if len(keys) == 0 || len(keys) > maxVecLabels {
		panic("metrics: labeled families take between 1 and 4 label keys")
	}
	if max <= 0 {
		max = DefaultMaxSeries
	}
	v := &vec[T]{
		name:        name,
		keys:        keys,
		max:         max,
		make:        mk,
		series:      make(map[labelKey]T),
		droppedKeys: make(map[labelKey]struct{}),
	}
	// The overflow series registers eagerly so a scrape sees the family
	// (and its escape hatch) before any traffic, and the cap-hit path never
	// registers anything.
	over := make([]string, len(keys))
	for i := range over {
		over[i] = overflowValue
	}
	v.overflow = mk(over)
	r.AddGaugeSource("", func() []Gauge {
		return []Gauge{{Name: name + "_dropped_label_sets", Value: v.droppedSets.Load()}}
	})
	return v
}

func (v *vec[T]) key(values []string) labelKey {
	var k labelKey
	copy(k[:], values)
	return k
}

// with resolves the series for the label values (which must align with the
// vec's keys), registering it on first use or returning the overflow series
// once the cardinality cap is reached.
func (v *vec[T]) with(values []string) T {
	if len(values) != len(v.keys) {
		return v.overflow
	}
	k := v.key(values)
	v.mu.RLock()
	s, ok := v.series[k]
	v.mu.RUnlock()
	if ok {
		return s
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if s, ok := v.series[k]; ok {
		return s
	}
	if len(v.series) >= v.max {
		if _, seen := v.droppedKeys[k]; !seen {
			v.droppedSets.Add(1)
			if len(v.droppedKeys) < v.max {
				v.droppedKeys[k] = struct{}{}
			}
		}
		return v.overflow
	}
	s = v.make(append([]string(nil), values...))
	v.series[k] = s
	return s
}

// Dropped returns how many distinct label sets were refused by the
// cardinality cap (an upper bound once the tracking set itself fills).
func (v *vec[T]) Dropped() int64 { return v.droppedSets.Load() }

// Len returns how many label sets the vec materialized (overflow excluded).
func (v *vec[T]) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.series)
}

// CounterVec is a counter family keyed by a bounded set of label values.
type CounterVec struct{ *vec[*Counter] }

// CounterVec registers a labeled counter family on the registry. A family
// name dedupes: re-registering it returns the existing vec (so its
// dropped-label-sets gauge registers exactly once) and panics if the label
// keys differ. maxSeries <= 0 uses DefaultMaxSeries.
func (r *Registry) CounterVec(name, help string, maxSeries int, keys ...string) *CounterVec {
	r.vecMu.Lock()
	defer r.vecMu.Unlock()
	if cv, ok := r.counterVecs[name]; ok {
		mustMatchKeys(name, cv.keys, keys)
		return cv
	}
	ks := append([]string(nil), keys...)
	cv := &CounterVec{newVec(r, name, ks, maxSeries, func(values []string) *Counter {
		return r.Counter(name, help, pairs(ks, values)...)
	})}
	r.counterVecs[name] = cv
	return cv
}

// With returns the counter for the label values, in key order.
func (cv *CounterVec) With(values ...string) *Counter { return cv.with(values) }

// HistogramVec is a histogram family keyed by a bounded set of label values.
type HistogramVec struct{ *vec[*Histogram] }

// HistogramVec registers a labeled histogram family on the registry, with
// the same per-name dedup as CounterVec. maxSeries <= 0 uses
// DefaultMaxSeries.
func (r *Registry) HistogramVec(name, help string, maxSeries int, keys ...string) *HistogramVec {
	r.vecMu.Lock()
	defer r.vecMu.Unlock()
	if hv, ok := r.histVecs[name]; ok {
		mustMatchKeys(name, hv.keys, keys)
		return hv
	}
	ks := append([]string(nil), keys...)
	hv := &HistogramVec{newVec(r, name, ks, maxSeries, func(values []string) *Histogram {
		return r.Histogram(name, help, pairs(ks, values)...)
	})}
	r.histVecs[name] = hv
	return hv
}

// mustMatchKeys panics when a vec family is re-registered with a different
// key shape — the series the two shapes would mint under one name could not
// coexist in a single exposition.
func mustMatchKeys(name string, have, want []string) {
	if len(have) != len(want) {
		panic("metrics: vec " + name + " re-registered with different label keys")
	}
	for i := range have {
		if have[i] != want[i] {
			panic("metrics: vec " + name + " re-registered with different label keys")
		}
	}
}

// With returns the histogram for the label values, in key order.
func (hv *HistogramVec) With(values ...string) *Histogram { return hv.with(values) }

// pairs interleaves keys and values into the flat label-pair form the
// registry's registration methods take.
func pairs(keys, values []string) []string {
	out := make([]string, 0, 2*len(keys))
	for i, k := range keys {
		out = append(out, k, values[i])
	}
	return out
}
