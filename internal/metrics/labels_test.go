package metrics

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterVecCardinalityOverflow(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_ops_total", "ops", 3, "collection", "op", "shard")

	for i := 0; i < 3; i++ {
		cv.With(fmt.Sprintf("coll%d", i), "insert", "s0").Inc()
	}
	if got := cv.Len(); got != 3 {
		t.Fatalf("materialized series = %d, want 3", got)
	}

	// Past the cap every unseen label set routes to the overflow series.
	over1 := cv.With("hostile-1", "insert", "s0")
	over2 := cv.With("hostile-2", "insert", "s0")
	if over1 != over2 {
		t.Fatalf("overflow observations landed in different series")
	}
	over1.Inc()
	over2.Inc()
	if got := cv.Len(); got != 3 {
		t.Fatalf("cap breached: %d series materialized", got)
	}
	if got := cv.Dropped(); got != 2 {
		t.Fatalf("dropped label sets = %d, want 2", got)
	}
	// Re-observing an already-counted dropped set must not re-count it.
	cv.With("hostile-1", "insert", "s0").Inc()
	if got := cv.Dropped(); got != 2 {
		t.Fatalf("dropped label sets after repeat = %d, want 2", got)
	}
	// Pre-cap sets keep resolving to their own series.
	if cv.With("coll0", "insert", "s0") == over1 {
		t.Fatalf("in-cap series collapsed into overflow")
	}

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `test_ops_total{collection="other",op="other",shard="other"} 3`) {
		t.Fatalf("overflow series missing or wrong:\n%s", out)
	}
	if !strings.Contains(out, "test_ops_total_dropped_label_sets 2") {
		t.Fatalf("dropped-label-sets gauge missing:\n%s", out)
	}
}

// TestVecDedupByFamilyName pins that re-registering a vec family returns the
// existing vec — and therefore registers its dropped-label-sets gauge source
// exactly once. Without the dedup the exposition would carry the gauge
// sample twice, which Prometheus rejects as a duplicate-sample scrape error.
func TestVecDedupByFamilyName(t *testing.T) {
	r := NewRegistry()
	cv1 := r.CounterVec("dedup_ops_total", "ops", 8, "collection", "op")
	cv2 := r.CounterVec("dedup_ops_total", "ops", 8, "collection", "op")
	if cv1 != cv2 {
		t.Fatalf("same-named counter vecs are distinct")
	}
	cv1.With("a", "insert").Inc()
	if got := cv2.With("a", "insert").Value(); got != 1 {
		t.Fatalf("re-registered vec does not share series: %d", got)
	}

	hv1 := r.HistogramVec("dedup_seconds", "lat", 8, "op")
	hv2 := r.HistogramVec("dedup_seconds", "lat", 8, "op")
	if hv1 != hv2 {
		t.Fatalf("same-named histogram vecs are distinct")
	}

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, gauge := range []string{"dedup_ops_total_dropped_label_sets", "dedup_seconds_dropped_label_sets"} {
		samples := 0
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, gauge+" ") {
				samples++
			}
		}
		if samples != 1 {
			t.Fatalf("%s has %d samples, want exactly 1:\n%s", gauge, samples, out)
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatalf("key-shape mismatch did not panic")
		}
	}()
	r.CounterVec("dedup_ops_total", "ops", 8, "collection", "shard")
}

func TestHistogramVecOverflowSharesOneSeries(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("test_duration_seconds", "latency", 2, "collection", "op")
	hv.With("a", "find").Observe(time.Millisecond)
	hv.With("b", "find").Observe(time.Millisecond)
	o1 := hv.With("c", "find")
	o2 := hv.With("d", "find")
	if o1 != o2 {
		t.Fatalf("overflow histograms differ")
	}
	o1.Observe(time.Second)
	if got := o1.Count(); got != 1 {
		t.Fatalf("overflow count = %d, want 1", got)
	}
	if got := hv.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
}

func TestExemplarEmittedInExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "latency")
	h.ObserveExemplar(1500*time.Nanosecond, "00000000deadbeef")
	var b strings.Builder
	r.WriteOpenMetrics(&b)
	out := b.String()
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "_bucket") && strings.Contains(line, `# {trace_id="00000000deadbeef"} 1.5e-06`) {
			found = true
			// The exemplar must ride the bucket the value landed in: 1500ns
			// is under the 2048ns bound.
			if !strings.Contains(line, `le="2.048e-06"`) {
				t.Fatalf("exemplar on wrong bucket line: %s", line)
			}
		}
	}
	if !found {
		t.Fatalf("no exemplar in exposition:\n%s", out)
	}
	// An untraced observation in a higher bucket leaves no exemplar there.
	h.Observe(time.Minute)
	b.Reset()
	r.WriteOpenMetrics(&b)
	if got := strings.Count(b.String(), "# {trace_id="); got != 1 {
		t.Fatalf("exemplar count = %d, want 1", got)
	}
	// The classic text format must stay exemplar-free: its parsers
	// (Prometheus's included) reject a '#' after the sample value.
	b.Reset()
	r.WritePrometheus(&b)
	if strings.Contains(b.String(), "# {trace_id=") {
		t.Fatalf("classic exposition carries an exemplar:\n%s", b.String())
	}
}

func TestRegistryExemplarsQuery(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("q_duration_seconds", "latency", 8, "collection", "op")
	hv.With("orders", "bulkWrite").ObserveExemplar(3*time.Millisecond, "aaaa")
	hv.With("users", "find").ObserveExemplar(9*time.Millisecond, "bbbb")
	r.Histogram("other_seconds", "x").ObserveExemplar(time.Millisecond, "cccc")

	all := r.Exemplars("q_duration_seconds")
	if len(all) != 2 {
		t.Fatalf("series with exemplars = %d, want 2", len(all))
	}
	for _, s := range all {
		if s.Name != "q_duration_seconds" || len(s.Values) != 1 {
			t.Fatalf("bad series %+v", s)
		}
	}
	if got := len(r.Exemplars("")); got != 3 {
		t.Fatalf("all-family exemplar series = %d, want 3", got)
	}
}

// TestExemplarStress hammers one histogram with traced and untraced
// observations from many goroutines while scrapers read exemplars,
// snapshots and the full exposition. Run under -race (CI repeats it 3x):
// the per-bucket atomic pointers must never yield a torn trace/value pair.
func TestExemplarStress(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("stress_seconds", "latency")
	const writers, perWriter = 8, 2000
	var wg sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Trace IDs encode their value so a reader can verify the
				// pair was stored atomically.
				v := time.Duration(1+(i%1000)) * time.Microsecond
				h.ObserveExemplar(v, "t"+strconv.FormatInt(v.Nanoseconds(), 10))
				h.Observe(v)
			}
		}(wr)
	}
	var rg sync.WaitGroup
	for rd := 0; rd < 4; rd++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for i := 0; i < 200; i++ {
				for _, be := range h.Exemplars() {
					want := "t" + strconv.FormatInt(be.Value, 10)
					if be.TraceID != want {
						t.Errorf("torn exemplar: trace %q for value %d", be.TraceID, be.Value)
						return
					}
				}
				var b strings.Builder
				r.WriteOpenMetrics(&b)
				h.Snapshot()
			}
		}()
	}
	wg.Wait()
	rg.Wait()
	if got := h.Count(); got != writers*perWriter*2 {
		t.Fatalf("count = %d, want %d", got, writers*perWriter*2)
	}
}

// TestLabeledVecStress races registration, lookup and overflow across
// goroutines under -race: the cap must hold exactly and lookups must never
// observe a half-registered series.
func TestLabeledVecStress(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("vec_stress_total", "x", 16, "collection", "op")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				cv.With(fmt.Sprintf("coll%d", i%40), "insert").Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := cv.Len(); got != 16 {
		t.Fatalf("materialized = %d, want exactly the cap 16", got)
	}
	// Every observation landed either in a real series or the overflow;
	// refused label sets all resolve to one shared overflow counter, so
	// dedupe by handle before summing.
	seen := make(map[*Counter]bool)
	var total int64
	for i := 0; i < 40; i++ {
		c := cv.With(fmt.Sprintf("coll%d", i), "insert")
		if !seen[c] {
			seen[c] = true
			total += c.Value()
		}
	}
	if total != 8*500 {
		t.Fatalf("counted %d observations, want %d", total, 8*500)
	}
}

// parseExposition is a minimal spec-following parser for the round-trip
// test: it unescapes HELP text and label values and returns sample lines as
// (name, labels map, value).
type parsedSample struct {
	name   string
	labels map[string]string
	value  float64
}

func parseExposition(t *testing.T, text string) (help map[string]string, samples []parsedSample) {
	t.Helper()
	help = make(map[string]string)
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, h, _ := strings.Cut(rest, " ")
			help[name] = unescape(h, false)
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Strip any exemplar suffix first.
		if i := strings.Index(line, " # "); i >= 0 {
			line = line[:i]
		}
		name := line
		labels := map[string]string{}
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			rest := line[i+1:]
			for {
				eq := strings.IndexByte(rest, '=')
				if eq < 0 {
					t.Fatalf("bad label section in %q", line)
				}
				key := rest[:eq]
				rest = rest[eq+2:] // skip ="
				val, n := scanQuoted(t, rest)
				labels[key] = val
				rest = rest[n:]
				if strings.HasPrefix(rest, ",") {
					rest = rest[1:]
					continue
				}
				if strings.HasPrefix(rest, "} ") {
					line = name + " " + rest[2:]
					break
				}
				t.Fatalf("bad label terminator in %q", rest)
			}
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Fatalf("bad sample line %q", line)
		}
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		samples = append(samples, parsedSample{name: name, labels: labels, value: v})
	}
	return help, samples
}

// scanQuoted reads an escaped label value up to its closing quote and
// returns the unescaped value and how many input bytes it consumed
// (closing quote included).
func scanQuoted(t *testing.T, s string) (string, int) {
	t.Helper()
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case '"', '\\':
				b.WriteByte(s[i])
			default:
				t.Fatalf("unknown escape \\%c", s[i])
			}
		case '"':
			return b.String(), i + 1
		default:
			b.WriteByte(s[i])
		}
	}
	t.Fatalf("unterminated quoted value %q", s)
	return "", 0
}

func unescape(s string, isLabel bool) string {
	s = strings.ReplaceAll(s, `\n`, "\n")
	if isLabel {
		s = strings.ReplaceAll(s, `\"`, `"`)
	}
	return strings.ReplaceAll(s, `\\`, `\`)
}

func TestPrometheusEscapingRoundTrip(t *testing.T) {
	r := NewRegistry()
	nastyValue := "line1\nline2 \"quoted\" back\\slash"
	nastyHelp := "help with \\ and\nnewline"
	r.Counter("rt_total", nastyHelp, "collection", nastyValue).Add(7)
	r.Histogram("rt_seconds", nastyHelp, "op", nastyValue).Observe(time.Millisecond)
	r.AddGaugeSource("", func() []Gauge {
		return []Gauge{{Name: "rt_gauge", Value: 5, Labels: []string{"shard", nastyValue}}}
	})

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	// No raw newline may survive inside any single exposition line.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "line1") && strings.Contains(line, "line2") {
			// Good: both halves on one physical line means the newline was
			// escaped.
			continue
		}
		if strings.HasSuffix(line, "line1") {
			t.Fatalf("unescaped newline split a sample line: %q", line)
		}
	}

	help, samples := parseExposition(t, out)
	if got := help["rt_total"]; got != nastyHelp {
		t.Fatalf("HELP round-trip: got %q want %q", got, nastyHelp)
	}
	foundCounter, foundGauge, foundCount := false, false, false
	for _, s := range samples {
		switch s.name {
		case "rt_total":
			foundCounter = true
			if s.labels["collection"] != nastyValue {
				t.Fatalf("counter label round-trip: got %q", s.labels["collection"])
			}
			if s.value != 7 {
				t.Fatalf("counter value = %v", s.value)
			}
		case "rt_gauge":
			foundGauge = true
			if s.labels["shard"] != nastyValue {
				t.Fatalf("gauge label round-trip: got %q", s.labels["shard"])
			}
		case "rt_seconds_count":
			foundCount = true
			if s.labels["op"] != nastyValue {
				t.Fatalf("histogram label round-trip: got %q", s.labels["op"])
			}
			if s.value != 1 {
				t.Fatalf("histogram count = %v", s.value)
			}
		}
	}
	if !foundCounter || !foundGauge || !foundCount {
		t.Fatalf("missing samples (counter=%v gauge=%v histCount=%v):\n%s",
			foundCounter, foundGauge, foundCount, out)
	}
}

func TestRawHistogramUnscaledExposition(t *testing.T) {
	r := NewRegistry()
	h := r.RawHistogram("batch_size", "records per group commit")
	h.Observe(6) // a batch of 6 records, not 6ns
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `batch_size_bucket{le="8"} 1`) {
		t.Fatalf("raw bucket bounds scaled:\n%s", out)
	}
	if !strings.Contains(out, "batch_size_sum 6\n") {
		t.Fatalf("raw sum scaled:\n%s", out)
	}
}
