package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonic event counter.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta (negative deltas are ignored — counters are monotonic).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.n.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Registry names and exports counters, histograms, and gauge sources in
// Prometheus text exposition format. Each server layer owns one (the wire
// server and the mongod server each register their op families eagerly at
// construction, so a scrape sees every family even before traffic).
//
// Registration takes a lock; the returned Counter/Histogram handles are
// lock-free, so hot paths resolve their series once and hold the handle.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*series[*Counter]
	hists    map[string]*series[*Histogram]
	gauges   []gaugeSource

	// Vec families dedupe by name under their own lock (vec construction
	// registers series and a gauge source under mu, so it cannot run while
	// holding mu). Without the dedup, a second same-named vec would register
	// a second <name>_dropped_label_sets gauge source and the exposition
	// would carry duplicate samples — a scrape error for Prometheus.
	vecMu       sync.Mutex
	counterVecs map[string]*CounterVec
	histVecs    map[string]*HistogramVec
}

type series[T any] struct {
	name   string
	labels string // rendered {k="v",...} or ""
	help   string
	// unit selects histogram value scaling at exposition: "seconds" divides
	// nanosecond observations by 1e9 (the Prometheus duration convention),
	// "" exports raw values (e.g. group-commit batch sizes). Unused for
	// counters.
	unit string
	val  T
}

type gaugeSource struct {
	prefix string
	fn     func() []Gauge
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    make(map[string]*series[*Counter]),
		hists:       make(map[string]*series[*Histogram]),
		counterVecs: make(map[string]*CounterVec),
		histVecs:    make(map[string]*HistogramVec),
	}
}

// escapeLabelValue escapes a label value per the Prometheus text exposition
// spec: backslash, double quote and newline, in that order of precedence —
// exactly those three, not Go quoting, so a parser following the spec
// round-trips every value.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text per the spec: backslash and newline only
// (quotes are legal in help text).
func escapeHelp(h string) string {
	if !strings.ContainsAny(h, "\\\n") {
		return h
	}
	var b strings.Builder
	b.Grow(len(h) + 8)
	for i := 0; i < len(h); i++ {
		switch h[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(h[i])
		}
	}
	return b.String()
}

// renderLabels formats label pairs ("k1", "v1", "k2", "v2", ...) sorted by
// key so the same series is always the same map key. Values are escaped per
// the exposition spec.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns (registering on first use) the counter series for the
// metric family name and label pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	key := name + renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.counters[key]
	if !ok {
		s = &series[*Counter]{name: name, labels: renderLabels(labels), help: help, val: &Counter{}}
		r.counters[key] = s
	}
	return s.val
}

// Histogram returns (registering on first use) the histogram series for the
// metric family name and label pairs. Observations are durations; the
// exposition exports them in seconds per convention.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	return r.registerHistogram(name, help, "seconds", &Histogram{}, labels)
}

// RawHistogram is Histogram for non-duration values (batch sizes, counts):
// the exposition exports bucket bounds and sums unscaled.
func (r *Registry) RawHistogram(name, help string, labels ...string) *Histogram {
	return r.registerHistogram(name, help, "", &Histogram{}, labels)
}

// RegisterHistogramSeries attaches an externally owned histogram (e.g. the
// WAL's fsync-latency histogram, which lives in the wal package so the log
// needs no registry) to the exposition under the given family name, unit
// ("seconds" or "") and label pairs. Re-registering the same series replaces
// the attached histogram — the durability subsystem re-registers on
// re-enable.
func (r *Registry) RegisterHistogramSeries(name, help, unit string, h *Histogram, labels ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := name + renderLabels(labels)
	r.hists[key] = &series[*Histogram]{name: name, labels: renderLabels(labels), help: help, unit: unit, val: h}
}

func (r *Registry) registerHistogram(name, help, unit string, h *Histogram, labels []string) *Histogram {
	key := name + renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.hists[key]
	if !ok {
		s = &series[*Histogram]{name: name, labels: renderLabels(labels), help: help, unit: unit, val: h}
		r.hists[key] = s
	}
	return s.val
}

// AddGaugeSource registers a callback polled at exposition time. Gauge
// names are mangled into Prometheus form: prefix + "_" + name with dots
// replaced by underscores (e.g. engine.liveVersions under prefix
// "docstore" exports as docstore_engine_liveVersions).
func (r *Registry) AddGaugeSource(prefix string, fn func() []Gauge) {
	r.mu.Lock()
	r.gauges = append(r.gauges, gaugeSource{prefix: prefix, fn: fn})
	r.mu.Unlock()
}

// promName mangles a dotted camelCase gauge name ("engine.liveVersions")
// into a snake_case Prometheus metric name ("engine_live_versions").
func promName(prefix, name string) string {
	var b strings.Builder
	b.Grow(len(prefix) + len(name) + 8)
	if prefix != "" {
		b.WriteString(prefix)
		b.WriteByte('_')
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '.' || c == '-':
			b.WriteByte('_')
		case c >= 'A' && c <= 'Z':
			if i > 0 && name[i-1] != '.' && name[i-1] != '-' {
				b.WriteByte('_')
			}
			b.WriteByte(c + ('a' - 'A'))
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// expositionBounds picks the subset of histogram bucket bounds exported as
// `le` labels: one bound per octave keeps the scrape small while the full
// resolution stays available in-process.
var expositionBounds = func() []int64 {
	var bounds []int64
	for v := int64(1); v > 0 && v < int64(time.Hour); v *= 2 {
		bounds = append(bounds, v)
	}
	return bounds
}()

// WritePrometheus renders every registered series in the classic Prometheus
// text exposition format (text/plain; version=0.0.4). Durations export in
// seconds per convention. Exemplars are omitted: the classic format's
// parsers reject the OpenMetrics ` # {...}` suffix after a sample value, so
// exemplars only appear when the scraper negotiates OpenMetrics (see
// WriteOpenMetrics).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.write(w, false)
}

// WriteOpenMetrics renders every registered series in OpenMetrics format:
// counter families drop their `_total` suffix on the HELP/TYPE lines (the
// samples keep it, per spec), and histogram buckets carry their retained
// exemplars. The caller terminates the full exposition with `# EOF` —
// Handler merges several registries into one body, so the terminator is not
// written here.
func (r *Registry) WriteOpenMetrics(w io.Writer) {
	r.write(w, true)
}

// openMetricsFamily returns the MetricFamily name of a counter for the
// OpenMetrics HELP/TYPE lines: the sample name without the mandated
// `_total` suffix.
func openMetricsFamily(name string) string {
	return strings.TrimSuffix(name, "_total")
}

func (r *Registry) write(w io.Writer, openMetrics bool) {
	r.mu.Lock()
	counters := make([]*series[*Counter], 0, len(r.counters))
	for _, s := range r.counters {
		counters = append(counters, s)
	}
	hists := make([]*series[*Histogram], 0, len(r.hists))
	for _, s := range r.hists {
		hists = append(hists, s)
	}
	sources := append([]gaugeSource(nil), r.gauges...)
	r.mu.Unlock()

	sort.Slice(counters, func(i, j int) bool {
		return counters[i].name+counters[i].labels < counters[j].name+counters[j].labels
	})
	sort.Slice(hists, func(i, j int) bool {
		return hists[i].name+hists[i].labels < hists[j].name+hists[j].labels
	})

	lastFamily := ""
	for _, s := range counters {
		if s.name != lastFamily {
			family := s.name
			if openMetrics {
				family = openMetricsFamily(s.name)
			}
			if s.help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", family, escapeHelp(s.help))
			}
			fmt.Fprintf(w, "# TYPE %s counter\n", family)
			lastFamily = s.name
		}
		fmt.Fprintf(w, "%s%s %d\n", s.name, s.labels, s.val.Value())
	}

	lastFamily = ""
	for _, s := range hists {
		if s.name != lastFamily {
			if s.help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", s.name, escapeHelp(s.help))
			}
			fmt.Fprintf(w, "# TYPE %s histogram\n", s.name)
			lastFamily = s.name
		}
		scale := 1.0
		if s.unit == "seconds" {
			scale = 1e9
		}
		snap := s.val.Snapshot()
		labelPrefix := "{"
		if s.labels != "" {
			labelPrefix = s.labels[:len(s.labels)-1] + ","
		}
		var cum int64
		bi := 0
		for _, bound := range expositionBounds {
			// Octave alignment means a bucket starting below a power-of-two
			// bound lies entirely at or below it, so strict < is exact.
			lo := bi
			for bi < numBuckets && bucketLower(bi) < bound {
				cum += snap.Counts[bi]
				bi++
			}
			fmt.Fprintf(w, "%s_bucket%sle=\"%g\"} %d", s.name, labelPrefix, float64(bound)/scale, cum)
			// OpenMetrics exemplar syntax: the bucket's most recent traced
			// observation, appended after the sample so a tail bucket links
			// to the trace that landed in it. Classic-format parsers reject
			// a `#` after the value, so only the OpenMetrics exposition
			// carries exemplars.
			if openMetrics {
				if e := s.val.exemplarIn(lo, bi); e != nil {
					fmt.Fprintf(w, " # {trace_id=\"%s\"} %g", escapeLabelValue(e.TraceID), float64(e.Value)/scale)
				}
			}
			fmt.Fprintf(w, "\n")
		}
		fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"} %d\n", s.name, labelPrefix, snap.Count)
		fmt.Fprintf(w, "%s_sum%s %g\n", s.name, s.labels, float64(snap.Sum)/scale)
		fmt.Fprintf(w, "%s_count%s %d\n", s.name, s.labels, snap.Count)
	}

	lastFamily = ""
	for _, src := range sources {
		gauges := src.fn()
		sort.Slice(gauges, func(i, j int) bool {
			if gauges[i].Name != gauges[j].Name {
				return gauges[i].Name < gauges[j].Name
			}
			return renderLabels(gauges[i].Labels) < renderLabels(gauges[j].Labels)
		})
		for _, g := range gauges {
			name := promName(src.prefix, g.Name)
			// Labeled gauges (per-member replication lag, per-shard
			// in-flight) share a family name; the TYPE line renders once.
			if name != lastFamily {
				fmt.Fprintf(w, "# TYPE %s gauge\n", name)
				lastFamily = name
			}
			fmt.Fprintf(w, "%s%s %d\n", name, renderLabels(g.Labels), g.Value)
		}
	}
}

// SeriesExemplars is one histogram series' retained exemplars, as served by
// the wire getExemplars op: the family name, the rendered label set, and
// per-bucket {trace ID, value} pairs.
type SeriesExemplars struct {
	Name   string
	Labels string
	Unit   string // "seconds" or "" (raw)
	Values []BucketExemplar
}

// Exemplars collects the retained exemplars of every histogram series whose
// family name matches (all families when name is ""), sorted by series.
func (r *Registry) Exemplars(name string) []SeriesExemplars {
	r.mu.Lock()
	hists := make([]*series[*Histogram], 0, len(r.hists))
	for _, s := range r.hists {
		if name == "" || s.name == name {
			hists = append(hists, s)
		}
	}
	r.mu.Unlock()
	sort.Slice(hists, func(i, j int) bool {
		return hists[i].name+hists[i].labels < hists[j].name+hists[j].labels
	})
	out := make([]SeriesExemplars, 0, len(hists))
	for _, s := range hists {
		vals := s.val.Exemplars()
		if len(vals) == 0 {
			continue
		}
		out = append(out, SeriesExemplars{Name: s.name, Labels: s.labels, Unit: s.unit, Values: vals})
	}
	return out
}

// Handler serves the registries' merged exposition as an http.Handler for
// docstored's -metrics-addr listener. The format is negotiated from the
// Accept header: scrapers asking for application/openmetrics-text get the
// OpenMetrics exposition (exemplars included, `# EOF` terminated); everyone
// else gets the classic text format, which carries no exemplars because its
// parsers reject the OpenMetrics suffix syntax.
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if acceptsOpenMetrics(req.Header.Get("Accept")) {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			for _, r := range regs {
				if r != nil {
					r.WriteOpenMetrics(w)
				}
			}
			io.WriteString(w, "# EOF\n")
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, r := range regs {
			if r != nil {
				r.WritePrometheus(w)
			}
		}
	})
}

// acceptsOpenMetrics reports whether an Accept header offers the
// application/openmetrics-text media type with non-zero quality.
func acceptsOpenMetrics(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mediaType, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		if !strings.EqualFold(strings.TrimSpace(mediaType), "application/openmetrics-text") {
			continue
		}
		for _, p := range strings.Split(params, ";") {
			k, v, _ := strings.Cut(strings.TrimSpace(p), "=")
			if strings.EqualFold(strings.TrimSpace(k), "q") && strings.TrimSpace(v) == "0" {
				return false
			}
		}
		return true
	}
	return false
}
