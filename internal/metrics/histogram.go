package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free log-bucketed latency histogram in the HDR style:
// each power-of-two octave of nanoseconds is split into 4 sub-buckets, so
// relative bucket error is bounded at ~12.5% across the full int64 range
// while the whole histogram stays a fixed array of atomic counters. That
// fixed shape is what makes histograms mergeable — merging is element-wise
// addition — and makes concurrent Observe/Snapshot safe without locks.
//
// Values are durations in nanoseconds. Negative observations clamp to 0.
//
// Each bucket can also retain one exemplar: the most recent traced
// observation that landed in it (trace ID + exact value). Exemplars are
// stored through per-bucket atomic pointers, so ObserveExemplar stays
// lock-free and a scrape never sees a torn {traceID, value} pair.
type Histogram struct {
	counts    [numBuckets]atomic.Int64
	count     atomic.Int64
	sum       atomic.Int64
	exemplars [numBuckets]atomic.Pointer[Exemplar]
}

// Exemplar links one histogram bucket to the trace that produced its most
// recent sampled observation, in the OpenMetrics sense: the exposition
// appends it to the bucket line so a p999 spike points at a retained trace.
type Exemplar struct {
	TraceID string
	// Value is the exact observed value in the histogram's native unit
	// (nanoseconds for latency histograms).
	Value int64
}

// numBuckets covers 0ns through the top of the int64 range: values 0..3 get
// exact unit buckets, then 4 sub-buckets per octave for octaves 2..62.
const numBuckets = 4 + 4*61

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(v int64) int {
	if v < 4 {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // position of the highest set bit, >= 2
	// Sub-bucket = the two bits below the highest set bit.
	idx := (exp-1)*4 + int((uint64(v)>>(exp-2))&3)
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

// bucketLower returns the smallest value mapping to bucket idx.
func bucketLower(idx int) int64 {
	if idx < 4 {
		return int64(idx)
	}
	exp := idx/4 + 1
	sub := idx % 4
	return int64(4+sub) << (exp - 2)
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// ObserveExemplar records one duration and, when traceID is non-empty,
// retains it as the bucket's exemplar. Callers pass the trace ID only for
// requests whose trace is actually retained (sampled roots), so every
// exemplar in the exposition resolves through getTraces; an empty traceID
// makes this exactly Observe — the untraced path allocates nothing.
func (h *Histogram) ObserveExemplar(d time.Duration, traceID string) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	idx := bucketIndex(ns)
	h.counts[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	if traceID != "" {
		h.exemplars[idx].Store(&Exemplar{TraceID: traceID, Value: ns})
	}
}

// exemplarIn returns the retained exemplar of the highest bucket in
// [lo, hi) that has one, or nil. The exposition uses it to attach one
// exemplar per rendered `le` bucket (which spans several internal
// sub-buckets).
func (h *Histogram) exemplarIn(lo, hi int) *Exemplar {
	for i := hi - 1; i >= lo; i-- {
		if e := h.exemplars[i].Load(); e != nil {
			return e
		}
	}
	return nil
}

// Exemplars lists the retained exemplars, one per internal bucket that has
// one, ordered by bucket. BucketLower is the bucket's smallest value.
func (h *Histogram) Exemplars() []BucketExemplar {
	var out []BucketExemplar
	for i := 0; i < numBuckets; i++ {
		if e := h.exemplars[i].Load(); e != nil {
			out = append(out, BucketExemplar{BucketLower: bucketLower(i), Exemplar: *e})
		}
	}
	return out
}

// BucketExemplar is one bucket's retained exemplar with its bucket bound.
type BucketExemplar struct {
	BucketLower int64
	Exemplar
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Snapshot captures the histogram for quantile queries, merging, and
// exposition. Concurrent Observe calls may land between counter reads —
// the snapshot is a consistent-enough view for monitoring, never torn in a
// way that breaks cumulative bucket ordering by more than in-flight
// observations.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	return s
}

// HistogramSnapshot is an immutable copy of a Histogram's counters.
type HistogramSnapshot struct {
	Counts [numBuckets]int64
	Count  int64
	Sum    int64
}

// Merge adds another snapshot's counts into this one (histograms from
// different shards or workers aggregate by addition).
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.Count += other.Count
	s.Sum += other.Sum
}

// Quantile returns the latency at quantile q in [0, 1], interpolated to the
// midpoint of the bucket holding that rank. Returns 0 for an empty
// snapshot.
func (s *HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(s.Count-1)) + 1
	var cum int64
	for i := 0; i < numBuckets; i++ {
		cum += s.Counts[i]
		if cum >= rank {
			lo := bucketLower(i)
			hi := lo
			if i+1 < numBuckets {
				hi = bucketLower(i+1) - 1
			}
			return time.Duration(lo + (hi-lo)/2)
		}
	}
	return time.Duration(bucketLower(numBuckets - 1))
}

// P50, P99 and P999 are the export quantiles the bench harness compares.
func (s *HistogramSnapshot) P50() time.Duration  { return s.Quantile(0.50) }
func (s *HistogramSnapshot) P99() time.Duration  { return s.Quantile(0.99) }
func (s *HistogramSnapshot) P999() time.Duration { return s.Quantile(0.999) }

// Mean returns the average observed duration (exact, from the running sum).
func (s *HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}
