package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Gauge is a named point-in-time measurement: unlike a Timer, which records
// how long something took, a gauge records how much of something exists
// right now (live MVCC versions, retained bytes, oldest pin age). The
// storage engine's memory-economics gauges render through GaugeSet in
// serverStatus-style reports and the profiler's engine summaries.
type Gauge struct {
	Name  string
	Value int64
	// Unit selects the rendering: "" (plain count), "bytes"
	// (FormatBytes), or "ns" (a duration in nanoseconds, FormatDuration).
	Unit string
	// Labels are optional label pairs ("member", "rs0-sec1", ...): gauges
	// sharing a Name but differing in Labels render as one Prometheus
	// family with per-label-set samples (replication lag per member,
	// in-flight calls per shard).
	Labels []string
}

// Format renders the gauge value in its unit.
func (g Gauge) Format() string {
	switch g.Unit {
	case "bytes":
		return FormatBytes(g.Value)
	case "ns":
		return FormatDuration(time.Duration(g.Value))
	default:
		return fmt.Sprintf("%d", g.Value)
	}
}

// String renders "name=value".
func (g Gauge) String() string { return g.Name + "=" + g.Format() }

// GaugeSet is a concurrency-safe collection of named gauges. Set replaces a
// gauge's current value; Add accumulates into it. Snapshots render sorted by
// name so reports are deterministic.
type GaugeSet struct {
	mu     sync.Mutex
	gauges map[string]Gauge
}

// NewGaugeSet creates an empty gauge set.
func NewGaugeSet() *GaugeSet {
	return &GaugeSet{gauges: make(map[string]Gauge)}
}

// Set replaces the named gauge's value (creating it with the unit on first
// use).
func (s *GaugeSet) Set(name string, value int64, unit string) {
	s.mu.Lock()
	s.gauges[name] = Gauge{Name: name, Value: value, Unit: unit}
	s.mu.Unlock()
}

// Add accumulates into the named gauge (creating it with the unit on first
// use).
func (s *GaugeSet) Add(name string, delta int64, unit string) {
	s.mu.Lock()
	g, ok := s.gauges[name]
	if !ok {
		g = Gauge{Name: name, Unit: unit}
	}
	g.Value += delta
	s.gauges[name] = g
	s.mu.Unlock()
}

// Get returns the named gauge and whether it exists.
func (s *GaugeSet) Get(name string) (Gauge, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.gauges[name]
	return g, ok
}

// Snapshot returns the gauges sorted by name.
func (s *GaugeSet) Snapshot() []Gauge {
	s.mu.Lock()
	out := make([]Gauge, 0, len(s.gauges))
	for _, g := range s.gauges {
		out = append(out, g)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// String renders the set as "name=value name=value ...".
func (s *GaugeSet) String() string {
	parts := make([]string, 0, 8)
	for _, g := range s.Snapshot() {
		parts = append(parts, g.String())
	}
	return strings.Join(parts, " ")
}
