// Package metrics provides the measurement and reporting helpers used by the
// experiment framework: duration formatting in the thesis' h/m/s style,
// simple plain-text tables, and figure series rendering for the terminal.
package metrics

import (
	"fmt"
	"strings"
	"time"
)

// FormatDuration renders a duration the way the thesis reports runtimes:
// "1h53m51.00s", "4m50.00s", "15.71s", "0.62s".
func FormatDuration(d time.Duration) string {
	if d < 0 {
		d = 0
	}
	total := d.Seconds()
	hours := int(total) / 3600
	minutes := (int(total) % 3600) / 60
	seconds := total - float64(hours*3600) - float64(minutes*60)
	switch {
	case hours > 0:
		return fmt.Sprintf("%dh%dm%05.2fs", hours, minutes, seconds)
	case minutes > 0:
		return fmt.Sprintf("%dm%05.2fs", minutes, seconds)
	default:
		return fmt.Sprintf("%.2fs", seconds)
	}
}

// FormatBytes renders a byte count in the unit the thesis uses for
// selectivity (MB with two decimals) below 1 GB, and GB above.
func FormatBytes(n int64) string {
	const (
		kb = 1 << 10
		mb = 1 << 20
		gb = 1 << 30
	)
	switch {
	case n >= gb:
		return fmt.Sprintf("%.2fGB", float64(n)/float64(gb))
	case n >= mb:
		return fmt.Sprintf("%.2fMB", float64(n)/float64(mb))
	case n >= kb:
		return fmt.Sprintf("%.2fKB", float64(n)/float64(kb))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Table accumulates rows and renders them as an aligned plain-text table.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; values are stringified with %v.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		row[i] = fmt.Sprintf("%v", v)
	}
	t.rows = append(t.rows, row)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named sequence of (label, value) points of a figure.
type Series struct {
	Name   string
	Labels []string
	Values []float64
}

// Figure is a set of series sharing x-axis labels, rendered as aligned
// columns plus a crude bar chart so the relative shape is visible in a
// terminal, mirroring the thesis' bar charts (Figures 4.9–4.11).
type Figure struct {
	Title  string
	YLabel string
	Series []Series
}

// AddSeries appends a series to the figure.
func (f *Figure) AddSeries(name string, labels []string, values []float64) {
	f.Series = append(f.Series, Series{Name: name, Labels: labels, Values: values})
}

// String renders the figure.
func (f *Figure) String() string {
	var b strings.Builder
	if f.Title != "" {
		fmt.Fprintf(&b, "%s\n", f.Title)
	}
	maxVal := 0.0
	for _, s := range f.Series {
		for _, v := range s.Values {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	const barWidth = 40
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%s\n", s.Name)
		for i, label := range s.Labels {
			v := 0.0
			if i < len(s.Values) {
				v = s.Values[i]
			}
			bar := 0
			if maxVal > 0 {
				bar = int(v / maxVal * barWidth)
			}
			fmt.Fprintf(&b, "  %-12s %10.3f %s %s\n", label, v, f.YLabel, strings.Repeat("#", bar))
		}
	}
	return b.String()
}

// Timer measures an operation and its repeats.
type Timer struct {
	runs []time.Duration
	// Clock, when non-nil, replaces the wall clock. Tests inject one so
	// timing assertions do not depend on scheduler latency or clock
	// granularity.
	Clock func() time.Time
}

func (t *Timer) now() time.Time {
	if t.Clock != nil {
		return t.Clock()
	}
	return time.Now()
}

// Measure runs fn once and records its duration, returning fn's error.
func (t *Timer) Measure(fn func() error) error {
	start := t.now()
	err := fn()
	t.runs = append(t.runs, t.now().Sub(start))
	return err
}

// Runs returns the recorded durations.
func (t *Timer) Runs() []time.Duration { return append([]time.Duration(nil), t.runs...) }

// Best returns the fastest recorded duration (the thesis reports the best of
// five warm runs), or zero when nothing was recorded.
func (t *Timer) Best() time.Duration {
	if len(t.runs) == 0 {
		return 0
	}
	best := t.runs[0]
	for _, r := range t.runs[1:] {
		if r < best {
			best = r
		}
	}
	return best
}

// Mean returns the average recorded duration.
func (t *Timer) Mean() time.Duration {
	if len(t.runs) == 0 {
		return 0
	}
	var total time.Duration
	for _, r := range t.runs {
		total += r
	}
	return total / time.Duration(len(t.runs))
}
