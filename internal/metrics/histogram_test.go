package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexRoundTrip(t *testing.T) {
	// Every bucket's lower bound must map back to its own index, and
	// indices must be monotonic in the value.
	for i := 0; i < numBuckets; i++ {
		lo := bucketLower(i)
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucketIndex(bucketLower(%d)=%d) = %d", i, lo, got)
		}
	}
	prev := -1
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 7, 8, 100, 1e3, 1e6, 1e9, 1e12, math.MaxInt64} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d", v, idx, prev)
		}
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, idx)
		}
		if lo := bucketLower(idx); lo > v {
			t.Fatalf("bucketLower(%d) = %d > value %d", idx, lo, v)
		}
		prev = idx
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	// Uniform 1..1000 microseconds: quantiles must land within the ~12.5%
	// relative bucket error.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
		{0.999, 999 * time.Microsecond},
	}
	for _, c := range checks {
		got := s.Quantile(c.q)
		err := math.Abs(float64(got-c.want)) / float64(c.want)
		if err > 0.15 {
			t.Fatalf("q%.3f = %v, want ~%v (err %.1f%%)", c.q, got, c.want, err*100)
		}
	}
	if mean := s.Mean(); mean != 500500*time.Nanosecond {
		t.Fatalf("mean = %v, want exact 500.5us", mean)
	}
}

func TestHistogramEmptyAndSingle(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Quantile(0.99) != 0 || s.Mean() != 0 {
		t.Fatalf("empty snapshot quantile/mean nonzero")
	}
	h.Observe(42 * time.Nanosecond)
	s = h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := s.Quantile(q)
		if got < 40*time.Nanosecond || got > 48*time.Nanosecond {
			t.Fatalf("single-value q%v = %v, want ~42ns", q, got)
		}
	}
	h.Observe(-5) // negative clamps to zero, must not panic
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Observe(time.Millisecond)
		b.Observe(time.Second)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 200 {
		t.Fatalf("merged count = %d", sa.Count)
	}
	if p50 := sa.Quantile(0.49); p50 > 2*time.Millisecond {
		t.Fatalf("merged p49 = %v, want ~1ms", p50)
	}
	if p99 := sa.Quantile(0.99); p99 < 500*time.Millisecond {
		t.Fatalf("merged p99 = %v, want ~1s", p99)
	}
	if sa.Sum != 100*int64(time.Millisecond)+100*int64(time.Second) {
		t.Fatalf("merged sum = %d", sa.Sum)
	}
}

// TestHistogramConcurrentStress records from many goroutines while others
// snapshot and query concurrently, verifying the lock-free counters under
// the race detector. No sleeps.
func TestHistogramConcurrentStress(t *testing.T) {
	var h Histogram
	const (
		writers = 8
		perW    = 5000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Snapshot()
				// Invariant: bucket counts sum to the snapshot count, and
				// quantiles are monotone in q.
				var sum int64
				for _, c := range s.Counts {
					if c < 0 {
						panic("negative bucket")
					}
					sum += c
				}
				if sum != s.Count {
					panic("torn snapshot totals")
				}
				if s.Quantile(0.5) > s.Quantile(0.999) {
					panic("non-monotone quantiles")
				}
			}
		}()
	}
	var wwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	wwg.Wait()
	close(stop)
	wg.Wait()
	if got := h.Count(); got != writers*perW {
		t.Fatalf("count = %d, want %d", got, writers*perW)
	}
	s := h.Snapshot()
	var sum int64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != int64(writers*perW) {
		t.Fatalf("bucket sum = %d, want %d", sum, writers*perW)
	}
}
