// Package denorm implements the thesis' denormalization algorithms:
// CreateDenormalizedCollection (Figure 4.6) joins every dimension collection
// into a fact collection, and EmbedDocuments (Figure 4.7) performs one such
// join by replacing the fact's foreign-key value with the referenced
// dimension document (minus its _id), using a HashMap of primary key →
// dimension document and a multi-document update per key.
package denorm

import (
	"fmt"
	"time"

	"docstore/internal/bson"
	"docstore/internal/driver"
	"docstore/internal/query"
	"docstore/internal/storage"
	"docstore/internal/tpcds"
)

// Embedding names one dimension to embed into a fact collection: the fact's
// foreign-key field (possibly dotted, for nested embeddings) is replaced by
// the dimension document whose primary key matches it.
type Embedding struct {
	Dimension string // dimension collection name
	FKField   string // field in the fact collection holding the reference
	PKField   string // primary key field of the dimension collection
}

// EmbedDocuments is Figure 4.7: build a HashMap of the dimension's primary
// keys to copies of its documents (with _id removed), then for every entry
// update the fact collection, replacing the foreign-key value with the
// document ({query: fk=pk, update: $set fk=doc, upsert:false, multi:true}).
// It returns the number of fact documents modified.
func EmbedDocuments(store driver.Store, fact string, emb Embedding) (int, error) {
	dimDocs, err := store.Find(emb.Dimension, nil, storage.FindOptions{})
	if err != nil {
		return 0, fmt.Errorf("denorm: reading dimension %s: %w", emb.Dimension, err)
	}
	// Step 2-8: HashMap<pk, dimension document without _id>.
	type entry struct {
		pk  any
		doc *bson.Doc
	}
	entries := make([]entry, 0, len(dimDocs))
	for _, d := range dimDocs {
		pk, ok := d.Get(emb.PKField)
		if !ok {
			continue
		}
		doc := d.Clone()
		doc.Delete(bson.IDKey)
		entries = append(entries, entry{pk: pk, doc: doc})
	}
	// Step 9-11: one multi-update per HashMap entry.
	modified := 0
	for _, e := range entries {
		res, err := store.Update(fact, query.UpdateSpec{
			Query:  bson.D(emb.FKField, e.pk),
			Update: bson.D("$set", bson.D(emb.FKField, e.doc)),
			Upsert: false,
			Multi:  true,
		})
		if err != nil {
			return modified, fmt.Errorf("denorm: embedding %s into %s: %w", emb.Dimension, fact, err)
		}
		modified += res.Modified
	}
	return modified, nil
}

// CreateDenormalizedCollection is Figure 4.6: embed every listed dimension
// into the fact collection, in order. It returns the total number of
// modifications and the elapsed time.
func CreateDenormalizedCollection(store driver.Store, fact string, embeddings []Embedding) (int, time.Duration, error) {
	start := time.Now()
	total := 0
	for _, emb := range embeddings {
		n, err := EmbedDocuments(store, fact, emb)
		if err != nil {
			return total, time.Since(start), err
		}
		total += n
	}
	return total, time.Since(start), nil
}

// FactEmbeddings returns the dimension embeddings for one of the three fact
// collections the queries use, derived from the schema's foreign keys
// (excluding the time dimension, which no benchmark query touches).
func FactEmbeddings(schema *tpcds.Schema, fact string) []Embedding {
	t := schema.Table(fact)
	if t == nil {
		return nil
	}
	var out []Embedding
	for _, fk := range t.ForeignKeys {
		if fk.RefTable == "time_dim" || fk.RefTable == "reason" {
			continue
		}
		out = append(out, Embedding{Dimension: fk.RefTable, FKField: fk.Column, PKField: fk.RefColumn})
	}
	return out
}

// DatasetResult reports the work done to denormalize the three fact
// collections of the benchmark.
type DatasetResult struct {
	EmbeddedDocuments int
	Duration          time.Duration
}

// DenormalizeDataset builds the denormalized data model used by Experiments 3
// and 6: the store_sales, store_returns and inventory fact collections with
// their dimension documents embedded, plus the nested embeddings the
// Appendix B pipelines rely on (customer_address inside customer inside
// store_sales for Query 46, and the denormalized store_returns document
// embedded at ss_ticket_number for Query 50).
func DenormalizeDataset(store driver.Store, schema *tpcds.Schema) (DatasetResult, error) {
	start := time.Now()
	var res DatasetResult

	// store_returns first: its embedded form is itself embedded into
	// store_sales below.
	for _, fact := range []string{"store_returns", "inventory"} {
		n, _, err := CreateDenormalizedCollection(store, fact, FactEmbeddings(schema, fact))
		if err != nil {
			return res, err
		}
		res.EmbeddedDocuments += n
	}

	// Query 50 joins store_sales to store_returns on (ticket, item,
	// customer); the denormalized model materializes that join by embedding
	// the matching (already denormalized) return document into the sale.
	n, err := EmbedReturnsIntoSales(store)
	if err != nil {
		return res, err
	}
	res.EmbeddedDocuments += n

	// Now the store_sales dimensions, including the nested
	// customer -> customer_address embedding Query 46 needs.
	n, _, err = CreateDenormalizedCollection(store, "store_sales", FactEmbeddings(schema, "store_sales"))
	if err != nil {
		return res, err
	}
	res.EmbeddedDocuments += n
	n, err = EmbedDocuments(store, "store_sales", Embedding{
		Dimension: "customer_address",
		FKField:   "ss_customer_sk.c_current_addr_sk",
		PKField:   "ca_address_sk",
	})
	if err != nil {
		return res, err
	}
	res.EmbeddedDocuments += n

	res.Duration = time.Since(start)
	return res, nil
}

// ReturnField is the store_sales field under which the matching denormalized
// store_returns document is embedded. The thesis' Appendix B script replaces
// ss_ticket_number itself; this implementation keeps the ticket number intact
// (Query 46 groups by it) and embeds the return under a dedicated field,
// which Query 50's pipeline navigates instead.
const ReturnField = "ss_return"

// EnsureDenormalizedIndexes creates the secondary indexes on the embedded
// document paths the Appendix B pipelines filter on. §2.1.2 notes indexes may
// be declared on any sub-field of a document; the denormalized experiments
// rely on exactly that.
func EnsureDenormalizedIndexes(store driver.Store) error {
	specs := map[string][]*bson.Doc{
		"store_sales": {
			bson.D("ss_cdemo_sk.cd_education_status", 1),
			bson.D("ss_cdemo_sk.cd_gender", 1),
			bson.D("ss_sold_date_sk.d_year", 1),
			bson.D("ss_store_sk.s_city", 1),
			bson.D(ReturnField+".sr_returned_date_sk.d_year", 1),
		},
		"inventory": {
			bson.D("inv_item_sk.i_current_price", 1),
			bson.D("inv_date_sk.d_date", 1),
		},
	}
	for coll, list := range specs {
		for _, spec := range list {
			if err := store.EnsureIndex(coll, spec, false); err != nil {
				return err
			}
		}
	}
	return nil
}

// EmbedReturnsIntoSales embeds each denormalized store_returns document into
// its originating store_sales document under ReturnField. Sales without a
// matching return simply never match the Query 50 predicates.
func EmbedReturnsIntoSales(store driver.Store) (int, error) {
	returns, err := store.Find("store_returns", nil, storage.FindOptions{})
	if err != nil {
		return 0, fmt.Errorf("denorm: reading store_returns: %w", err)
	}
	modified := 0
	for _, r := range returns {
		ticket, ok1 := r.Get("sr_ticket_number")
		// store_returns has already been denormalized, so its item and
		// customer references may themselves be embedded documents; recover
		// the scalar join keys from them.
		item, ok2 := scalarKey(r, "sr_item_sk", "i_item_sk")
		customer, ok3 := scalarKey(r, "sr_customer_sk", "c_customer_sk")
		if !ok1 || !ok2 || !ok3 {
			continue
		}
		doc := r.Clone()
		doc.Delete(bson.IDKey)
		res, err := store.Update("store_sales", query.UpdateSpec{
			Query: bson.D(
				"ss_ticket_number", ticket,
				"ss_item_sk", item,
				"ss_customer_sk", customer,
			),
			Update: bson.D("$set", bson.D(ReturnField, doc)),
			Multi:  true,
		})
		if err != nil {
			return modified, err
		}
		modified += res.Modified
	}
	return modified, nil
}

// scalarKey returns the scalar value of a (possibly already embedded)
// reference field: the raw value when it is still a scalar, or the embedded
// document's primary key when the dimension has been embedded.
func scalarKey(d *bson.Doc, field, pkField string) (any, bool) {
	v, ok := d.Get(field)
	if !ok {
		return nil, false
	}
	if sub, isDoc := v.(*bson.Doc); isDoc {
		return sub.Get(pkField)
	}
	return v, true
}
