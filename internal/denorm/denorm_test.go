package denorm

import (
	"strings"
	"testing"

	"docstore/internal/bson"
	"docstore/internal/driver"
	"docstore/internal/migrate"
	"docstore/internal/mongod"
	"docstore/internal/storage"
	"docstore/internal/tpcds"
)

func newStore() *driver.Standalone {
	return driver.NewStandalone(mongod.NewServer(mongod.Options{}).Database("test"))
}

func TestEmbedDocumentsReplacesForeignKeys(t *testing.T) {
	store := newStore()
	// A miniature publisher/book example in TPC-DS clothing: sales reference
	// items by surrogate key.
	for i := 1; i <= 3; i++ {
		if _, err := store.Insert("item", bson.D("i_item_sk", i, "i_item_id", strings.Repeat("A", i), "i_current_price", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i++ {
		if _, err := store.Insert("store_sales", bson.D("ss_item_sk", 1+i%3, "ss_quantity", i)); err != nil {
			t.Fatal(err)
		}
	}
	modified, err := EmbedDocuments(store, "store_sales", Embedding{
		Dimension: "item", FKField: "ss_item_sk", PKField: "i_item_sk",
	})
	if err != nil {
		t.Fatal(err)
	}
	if modified != 12 {
		t.Fatalf("modified %d docs, want 12", modified)
	}
	docs, err := store.Find("store_sales", nil, storage.FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		item, ok := d.Get("ss_item_sk")
		itemDoc, isDoc := item.(*bson.Doc)
		if !ok || !isDoc {
			t.Fatalf("ss_item_sk not embedded: %s", d)
		}
		if itemDoc.Has(bson.IDKey) {
			t.Fatalf("embedded dimension should not carry its _id: %s", itemDoc)
		}
		if _, ok := itemDoc.Get("i_item_id"); !ok {
			t.Fatalf("embedded dimension missing attributes: %s", itemDoc)
		}
	}
	// The dimension collection itself is untouched.
	items, _ := store.Find("item", nil, storage.FindOptions{})
	for _, it := range items {
		if v, _ := it.Get("i_item_sk"); bson.TypeOf(v) != bson.TypeNumber {
			t.Fatalf("dimension collection mutated: %s", it)
		}
	}
	// Dimension documents without the PK field are skipped gracefully.
	if _, err := store.Insert("item", bson.D("oops", true)); err != nil {
		t.Fatal(err)
	}
	if _, err := EmbedDocuments(store, "store_sales", Embedding{Dimension: "item", FKField: "ss_item_sk", PKField: "i_item_sk"}); err != nil {
		t.Fatal(err)
	}
	// Embedding from a missing (empty) dimension collection is a no-op.
	if n, err := EmbedDocuments(store, "store_sales", Embedding{Dimension: "missing", FKField: "x", PKField: "y"}); err != nil || n != 0 {
		t.Fatalf("missing dimension: n=%d err=%v", n, err)
	}
}

func TestCreateDenormalizedCollection(t *testing.T) {
	store := newStore()
	for i := 1; i <= 2; i++ {
		_, _ = store.Insert("date_dim", bson.D("d_date_sk", i, "d_year", 2000+i))
		_, _ = store.Insert("item", bson.D("i_item_sk", i, "i_item_id", i))
	}
	for i := 0; i < 6; i++ {
		_, _ = store.Insert("inventory", bson.D("inv_date_sk", 1+i%2, "inv_item_sk", 1+i%2, "inv_quantity_on_hand", i))
	}
	total, dur, err := CreateDenormalizedCollection(store, "inventory", []Embedding{
		{Dimension: "date_dim", FKField: "inv_date_sk", PKField: "d_date_sk"},
		{Dimension: "item", FKField: "inv_item_sk", PKField: "i_item_sk"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 12 || dur <= 0 {
		t.Fatalf("total=%d dur=%v", total, dur)
	}
	doc, _ := store.Find("inventory", bson.D("inv_date_sk.d_year", 2001), storage.FindOptions{})
	if len(doc) != 3 {
		t.Fatalf("query on embedded dimension = %d docs", len(doc))
	}
	// Embeddings over empty dimensions contribute nothing.
	if n, _, err := CreateDenormalizedCollection(store, "inventory", []Embedding{
		{Dimension: "missing", FKField: "x", PKField: "y"},
	}); err != nil || n != 0 {
		t.Fatalf("empty dimension: n=%d err=%v", n, err)
	}
}

func TestFactEmbeddingsFromSchema(t *testing.T) {
	schema := tpcds.NewSchema()
	embs := FactEmbeddings(schema, "store_sales")
	if len(embs) != 8 { // 9 FKs minus time_dim
		t.Fatalf("store_sales embeddings = %d: %+v", len(embs), embs)
	}
	for _, e := range embs {
		if e.Dimension == "time_dim" || e.Dimension == "reason" {
			t.Fatalf("time_dim/reason should be excluded")
		}
		if e.FKField == "" || e.PKField == "" {
			t.Fatalf("incomplete embedding %+v", e)
		}
	}
	if got := FactEmbeddings(schema, "store_returns"); len(got) != 7 {
		t.Fatalf("store_returns embeddings = %d", len(got))
	}
	if got := FactEmbeddings(schema, "inventory"); len(got) != 3 {
		t.Fatalf("inventory embeddings = %d", len(got))
	}
	if FactEmbeddings(schema, "nope") != nil {
		t.Fatalf("unknown fact should return nil")
	}
}

func TestDenormalizeDatasetEndToEnd(t *testing.T) {
	store := newStore()
	g := tpcds.NewGenerator(tpcds.ScaleSmall.WithDivisor(5000), 5)
	if _, err := migrate.LoadDataset(store, g); err != nil {
		t.Fatal(err)
	}
	if err := migrate.EnsureQueryIndexes(store, g.Schema()); err != nil {
		t.Fatal(err)
	}
	res, err := DenormalizeDataset(store, g.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if res.EmbeddedDocuments == 0 || res.Duration <= 0 {
		t.Fatalf("result = %+v", res)
	}
	// The document paths the Appendix B pipelines navigate now resolve.
	sales, err := store.Find("store_sales", nil, storage.FindOptions{})
	if err != nil || len(sales) == 0 {
		t.Fatal(err)
	}
	pathHits := map[string]int{}
	for _, d := range sales {
		for _, path := range []string{
			"ss_cdemo_sk.cd_gender",
			"ss_sold_date_sk.d_year",
			"ss_item_sk.i_item_id",
			"ss_store_sk.s_city",
			"ss_customer_sk.c_current_addr_sk.ca_city",
			"ss_addr_sk.ca_city",
		} {
			if _, ok := d.GetPath(path); ok {
				pathHits[path]++
			}
		}
	}
	for path, hits := range pathHits {
		if hits != len(sales) {
			t.Errorf("path %s resolves on %d/%d documents", path, hits, len(sales))
		}
	}
	if len(pathHits) != 6 {
		t.Fatalf("paths resolved: %v", pathHits)
	}
	// Some sales carry an embedded return document with its own embedded date.
	withReturns, err := store.Find("store_sales", bson.D(ReturnField+".sr_returned_date_sk.d_year", bson.D("$exists", true)), storage.FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(withReturns) == 0 {
		t.Fatalf("no sales carry an embedded return; Query 50 would be empty")
	}
	// Inventory is denormalized too.
	inv, err := store.Find("inventory", bson.D("inv_warehouse_sk.w_warehouse_name", bson.D("$exists", true)), storage.FindOptions{})
	if err != nil || len(inv) == 0 {
		t.Fatalf("inventory not denormalized: %d docs, %v", len(inv), err)
	}
}
