package query

import (
	"math/rand"
	"testing"

	"docstore/internal/bson"
)

func mustMatch(t *testing.T, filter, doc *bson.Doc) {
	t.Helper()
	m, err := Compile(filter)
	if err != nil {
		t.Fatalf("Compile(%s): %v", filter, err)
	}
	if !m.Matches(doc) {
		t.Errorf("filter %s should match %s", filter, doc)
	}
}

func mustNotMatch(t *testing.T, filter, doc *bson.Doc) {
	t.Helper()
	m, err := Compile(filter)
	if err != nil {
		t.Fatalf("Compile(%s): %v", filter, err)
	}
	if m.Matches(doc) {
		t.Errorf("filter %s should NOT match %s", filter, doc)
	}
}

func TestMatcherEquality(t *testing.T) {
	doc := bson.D("cd_gender", "M", "cd_dep_count", 2, "price", 1.25)
	mustMatch(t, bson.D("cd_gender", "M"), doc)
	mustNotMatch(t, bson.D("cd_gender", "F"), doc)
	mustMatch(t, bson.D("cd_dep_count", 2), doc)
	mustMatch(t, bson.D("cd_dep_count", 2.0), doc) // int/float equivalence
	mustMatch(t, bson.D("price", 1.25), doc)
	mustNotMatch(t, bson.D("missing", "x"), doc)
	// Explicit $eq.
	mustMatch(t, bson.D("cd_gender", bson.D("$eq", "M")), doc)
	// Empty filter matches everything.
	mustMatch(t, bson.NewDoc(0), doc)
	// Nil-valued equality matches missing fields.
	mustMatch(t, bson.D("missing", nil), doc)
	mustNotMatch(t, bson.D("cd_gender", nil), doc)
}

func TestMatcherComparisons(t *testing.T) {
	doc := bson.D("i_current_price", 1.20, "d_year", 2001)
	mustMatch(t, bson.D("i_current_price", bson.D("$gte", 0.99, "$lte", 1.49)), doc)
	mustNotMatch(t, bson.D("i_current_price", bson.D("$gte", 1.49)), doc)
	mustMatch(t, bson.D("d_year", bson.D("$gt", 2000)), doc)
	mustNotMatch(t, bson.D("d_year", bson.D("$gt", 2001)), doc)
	mustMatch(t, bson.D("d_year", bson.D("$gte", 2001)), doc)
	mustMatch(t, bson.D("d_year", bson.D("$lt", 2002)), doc)
	mustNotMatch(t, bson.D("d_year", bson.D("$lt", 2001)), doc)
	mustMatch(t, bson.D("d_year", bson.D("$lte", 2001)), doc)
	mustMatch(t, bson.D("d_year", bson.D("$ne", 1999)), doc)
	mustNotMatch(t, bson.D("d_year", bson.D("$ne", 2001)), doc)
	// Range comparisons never match across types.
	mustNotMatch(t, bson.D("d_year", bson.D("$gt", "1999")), doc)
	// Missing field never satisfies a range.
	mustNotMatch(t, bson.D("absent", bson.D("$gt", 0)), doc)
}

func TestMatcherInNin(t *testing.T) {
	doc := bson.D("d_dow", 6, "s_city", "Midway")
	mustMatch(t, bson.D("d_dow", bson.D("$in", bson.A(6, 0))), doc)
	mustNotMatch(t, bson.D("d_dow", bson.D("$in", bson.A(1, 2))), doc)
	mustMatch(t, bson.D("s_city", bson.D("$in", bson.A("Midway", "Fairview"))), doc)
	mustMatch(t, bson.D("d_dow", bson.D("$nin", bson.A(1, 2))), doc)
	mustNotMatch(t, bson.D("d_dow", bson.D("$nin", bson.A(6))), doc)
	// $in with null matches documents missing the field.
	mustMatch(t, bson.D("absent", bson.D("$in", bson.A(nil, 5))), doc)
}

func TestMatcherLogicalOperators(t *testing.T) {
	doc := bson.D("p_channel_email", "N", "p_channel_event", "Y", "d_year", 2001)
	mustMatch(t, bson.D("$or", bson.A(
		bson.D("p_channel_email", "N"),
		bson.D("p_channel_event", "N"),
	)), doc)
	mustNotMatch(t, bson.D("$or", bson.A(
		bson.D("p_channel_email", "Y"),
		bson.D("p_channel_event", "N"),
	)), doc)
	mustMatch(t, bson.D("$and", bson.A(
		bson.D("p_channel_email", "N"),
		bson.D("d_year", 2001),
	)), doc)
	mustNotMatch(t, bson.D("$and", bson.A(
		bson.D("p_channel_email", "N"),
		bson.D("d_year", 1999),
	)), doc)
	mustMatch(t, bson.D("$nor", bson.A(
		bson.D("p_channel_email", "Y"),
		bson.D("d_year", 1999),
	)), doc)
	mustNotMatch(t, bson.D("$nor", bson.A(
		bson.D("p_channel_email", "N"),
	)), doc)
	mustMatch(t, bson.D("$not", bson.D("d_year", 1999)), doc)
	mustNotMatch(t, bson.D("$not", bson.D("d_year", 2001)), doc)
	// Implicit AND of multiple fields.
	mustMatch(t, bson.D("p_channel_email", "N", "d_year", 2001), doc)
	mustNotMatch(t, bson.D("p_channel_email", "N", "d_year", 1999), doc)
}

func TestMatcherExistsTypeSize(t *testing.T) {
	doc := bson.D("ss_item_sk", 17, "tags", bson.A("a", "b", "c"), "name", "store")
	mustMatch(t, bson.D("ss_item_sk", bson.D("$exists", true)), doc)
	mustNotMatch(t, bson.D("ss_item_sk", bson.D("$exists", false)), doc)
	mustMatch(t, bson.D("absent", bson.D("$exists", false)), doc)
	mustNotMatch(t, bson.D("absent", bson.D("$exists", true)), doc)
	mustMatch(t, bson.D("ss_item_sk", bson.D("$type", "number")), doc)
	mustMatch(t, bson.D("name", bson.D("$type", "string")), doc)
	mustNotMatch(t, bson.D("name", bson.D("$type", "number")), doc)
	mustMatch(t, bson.D("tags", bson.D("$size", 3)), doc)
	mustNotMatch(t, bson.D("tags", bson.D("$size", 2)), doc)
	mustNotMatch(t, bson.D("name", bson.D("$size", 1)), doc)
}

func TestMatcherModRegexAll(t *testing.T) {
	doc := bson.D("qty", 12, "city", "Fairview", "tags", bson.A("x", "y", "z"))
	mustMatch(t, bson.D("qty", bson.D("$mod", bson.A(4, 0))), doc)
	mustNotMatch(t, bson.D("qty", bson.D("$mod", bson.A(5, 0))), doc)
	mustMatch(t, bson.D("city", bson.D("$regex", "^Fair")), doc)
	mustNotMatch(t, bson.D("city", bson.D("$regex", "^Mid")), doc)
	mustMatch(t, bson.D("tags", bson.D("$all", bson.A("x", "z"))), doc)
	mustNotMatch(t, bson.D("tags", bson.D("$all", bson.A("x", "w"))), doc)
}

func TestMatcherArraySemantics(t *testing.T) {
	doc := bson.D("scores", bson.A(70, 85, 92))
	// Equality against any element.
	mustMatch(t, bson.D("scores", 85), doc)
	mustNotMatch(t, bson.D("scores", 60), doc)
	// Range against any element.
	mustMatch(t, bson.D("scores", bson.D("$gt", 90)), doc)
	mustNotMatch(t, bson.D("scores", bson.D("$gt", 95)), doc)
	// Whole-array equality.
	mustMatch(t, bson.D("scores", bson.A(70, 85, 92)), doc)
}

func TestMatcherNestedDocumentsAndDottedPaths(t *testing.T) {
	doc := bson.D(
		"ss_cdemo_sk", bson.D("cd_gender", "M", "cd_marital_status", "M", "cd_education_status", "4 yr Degree"),
		"ss_promo_sk", bson.D("p_channel_email", "N", "p_channel_event", "N"),
		"ss_sold_date_sk", bson.D("d_year", 2001),
	)
	// This is the shape of the thesis' Query 7 $match stage (Appendix B).
	filter := bson.D("$and", bson.A(
		bson.D("ss_cdemo_sk.cd_gender", "M"),
		bson.D("ss_cdemo_sk.cd_marital_status", "M"),
		bson.D("ss_cdemo_sk.cd_education_status", "4 yr Degree"),
		bson.D("$or", bson.A(
			bson.D("ss_promo_sk.p_channel_email", "N"),
			bson.D("ss_promo_sk.p_channel_event", "N"),
		)),
		bson.D("ss_sold_date_sk.d_year", 2001),
	))
	mustMatch(t, filter, doc)
	doc2 := doc.Clone()
	cd, _ := doc2.Get("ss_cdemo_sk")
	cd.(*bson.Doc).Set("cd_gender", "F")
	mustNotMatch(t, filter, doc2)
}

func TestMatcherDottedPathThroughArray(t *testing.T) {
	doc := bson.D("books", bson.A(
		bson.D("title", "MongoDB", "pages", 216),
		bson.D("title", "Java in a Nutshell", "pages", 418),
	))
	mustMatch(t, bson.D("books.pages", bson.D("$gt", 400)), doc)
	mustNotMatch(t, bson.D("books.pages", bson.D("$gt", 500)), doc)
	mustMatch(t, bson.D("books.title", "MongoDB"), doc)
}

func TestMatcherElemMatch(t *testing.T) {
	doc := bson.D("results", bson.A(
		bson.D("product", "a", "score", 8),
		bson.D("product", "b", "score", 5),
	), "nums", bson.A(1, 5, 9))
	mustMatch(t, bson.D("results", bson.D("$elemMatch", bson.D("product", "a", "score", bson.D("$gte", 8)))), doc)
	mustNotMatch(t, bson.D("results", bson.D("$elemMatch", bson.D("product", "b", "score", bson.D("$gte", 8)))), doc)
	mustMatch(t, bson.D("nums", bson.D("$elemMatch", bson.D("$gte", 5, "$lt", 6))), doc)
	mustNotMatch(t, bson.D("nums", bson.D("$elemMatch", bson.D("$gt", 9))), doc)
}

func TestMatcherFieldNotOperator(t *testing.T) {
	doc := bson.D("price", 10)
	mustMatch(t, bson.D("price", bson.D("$not", bson.D("$gt", 20))), doc)
	mustNotMatch(t, bson.D("price", bson.D("$not", bson.D("$gt", 5))), doc)
}

func TestCompileErrors(t *testing.T) {
	bad := []*bson.Doc{
		bson.D("$or", "not-an-array"),
		bson.D("$and", bson.A()),
		bson.D("$or", bson.A("scalar")),
		bson.D("$not", 5),
		bson.D("$unknownop", 1),
		bson.D("f", bson.D("$in", 5)),
		bson.D("f", bson.D("$nin", 5)),
		bson.D("f", bson.D("$mod", bson.A(1))),
		bson.D("f", bson.D("$mod", bson.A(0, 1))),
		bson.D("f", bson.D("$regex", 5)),
		bson.D("f", bson.D("$regex", "([")),
		bson.D("f", bson.D("$all", 5)),
		bson.D("f", bson.D("$elemMatch", 5)),
		bson.D("f", bson.D("$size", "x")),
		bson.D("f", bson.D("$type", 5)),
		bson.D("f", bson.D("$bogus", 1)),
		bson.D("$expr", bson.D("$gt", bson.A(1, 2))),
	}
	for _, f := range bad {
		if _, err := Compile(f); err == nil {
			t.Errorf("Compile(%s) should fail", f)
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustCompile should panic on a bad filter")
		}
	}()
	MustCompile(bson.D("$bad", 1))
}

func TestNilMatcherMatchesEverything(t *testing.T) {
	var m *Matcher
	if !m.Matches(bson.D("a", 1)) {
		t.Fatalf("nil matcher should match")
	}
	if m.String() != "{}" {
		t.Fatalf("nil matcher String = %q", m.String())
	}
}

// naiveMatchEquality is an independent oracle for simple single-field
// equality filters used in the property test below.
func naiveMatchEquality(doc *bson.Doc, field string, want any) bool {
	v, ok := doc.Get(field)
	if !ok {
		return want == nil
	}
	return bson.Compare(v, want) == 0
}

func TestMatcherEqualityAgainstNaiveOracleProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	fields := []string{"a", "b", "c", "d"}
	values := []any{int64(0), int64(1), int64(2), "x", "y", true, nil, 2.5}
	for i := 0; i < 3000; i++ {
		doc := bson.NewDoc(3)
		for _, f := range fields {
			if r.Intn(2) == 0 {
				doc.Set(f, values[r.Intn(len(values))])
			}
		}
		field := fields[r.Intn(len(fields))]
		want := values[r.Intn(len(values))]
		m := MustCompile(bson.D(field, want))
		got := m.Matches(doc)
		expect := naiveMatchEquality(doc, field, bson.Normalize(want))
		if got != expect {
			t.Fatalf("filter {%s: %v} vs %s: matcher=%v naive=%v", field, want, doc, got, expect)
		}
	}
}

func TestMatcherRangeAgainstNaiveOracleProperty(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for i := 0; i < 3000; i++ {
		val := int64(r.Intn(100))
		lo := int64(r.Intn(100))
		hi := lo + int64(r.Intn(50))
		doc := bson.D("v", val)
		m := MustCompile(bson.D("v", bson.D("$gte", lo, "$lte", hi)))
		want := val >= lo && val <= hi
		if got := m.Matches(doc); got != want {
			t.Fatalf("v=%d in [%d,%d]: matcher=%v want=%v", val, lo, hi, got, want)
		}
	}
}
