package query

import (
	"fmt"
	"strings"

	"docstore/internal/bson"
)

// Projection selects which fields of a matched document are returned.
// It is either an inclusion projection ({"a": 1, "b.c": 1}) or an exclusion
// projection ({"a": 0}); _id is included by default and may be excluded
// explicitly in either mode.
type Projection struct {
	include   bool
	fields    []string // dotted paths, in specification order
	includeID bool
	empty     bool
}

// ParseProjection compiles a projection specification document. A nil or
// empty specification returns a projection that passes documents through
// unchanged.
func ParseProjection(spec *bson.Doc) (*Projection, error) {
	if spec == nil || spec.Len() == 0 {
		return &Projection{empty: true, includeID: true}, nil
	}
	p := &Projection{includeID: true}
	seen := make(map[string]bool, spec.Len())
	mode := 0 // 0 unknown, 1 include, -1 exclude
	for _, f := range spec.Fields() {
		v := bson.Normalize(f.Value)
		n, ok := bson.AsInt(v)
		var included bool
		switch {
		case ok && n == 1:
			included = true
		case ok && n == 0:
			included = false
		case v == true:
			included = true
		case v == false:
			included = false
		default:
			return nil, fmt.Errorf("query: projection value for %q must be 0 or 1, got %v", f.Key, f.Value)
		}
		if f.Key == bson.IDKey {
			p.includeID = included
			continue
		}
		want := -1
		if included {
			want = 1
		}
		if mode == 0 {
			mode = want
		} else if mode != want {
			return nil, fmt.Errorf("query: cannot mix inclusion and exclusion in a projection")
		}
		if !seen[f.Key] {
			seen[f.Key] = true
			p.fields = append(p.fields, f.Key)
		}
	}
	if mode == 0 {
		// Only _id was specified.
		mode = -1
		p.fields = nil
	}
	p.include = mode == 1
	return p, nil
}

// MustParseProjection is ParseProjection but panics on error.
func MustParseProjection(spec *bson.Doc) *Projection {
	p, err := ParseProjection(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// Apply returns a new document containing only the projected fields of d.
func (p *Projection) Apply(d *bson.Doc) *bson.Doc {
	if p == nil || p.empty {
		return d
	}
	if p.include {
		out := bson.NewDoc(len(p.fields) + 1)
		if p.includeID {
			if id, ok := d.Get(bson.IDKey); ok {
				out.Set(bson.IDKey, id)
			}
		}
		for _, path := range p.fields {
			if v, ok := d.GetPath(path); ok {
				setProjected(out, path, v)
			}
		}
		return out
	}
	// Exclusion projection: deep-copy then remove.
	out := d.Clone()
	for _, path := range p.fields {
		out.DeletePath(path)
	}
	if !p.includeID {
		out.Delete(bson.IDKey)
	}
	return out
}

// setProjected writes a possibly dotted path into out, preserving nesting.
func setProjected(out *bson.Doc, path string, v any) {
	if !strings.Contains(path, ".") {
		out.Set(path, v)
		return
	}
	_ = out.SetPath(path, v)
}

// IsInclusion reports whether the projection is an inclusion projection.
func (p *Projection) IsInclusion() bool { return p != nil && !p.empty && p.include }

// Fields returns the dotted paths referenced by the projection, in
// specification order.
func (p *Projection) Fields() []string {
	if p == nil {
		return nil
	}
	return append([]string(nil), p.fields...)
}
