package query

import (
	"testing"

	"docstore/internal/bson"
)

func TestIsOperatorUpdate(t *testing.T) {
	if !IsOperatorUpdate(bson.D("$set", bson.D("a", 1))) {
		t.Fatalf("$set should be an operator update")
	}
	if IsOperatorUpdate(bson.D("a", 1, "b", 2)) {
		t.Fatalf("plain doc should be a replacement")
	}
}

func TestApplyUpdateSetUnset(t *testing.T) {
	d := bson.D(bson.IDKey, 1, "a", 1, "b", 2)
	changed, err := ApplyUpdate(d, bson.D("$set", bson.D("a", 10, "c", 3)))
	if err != nil || !changed {
		t.Fatalf("set: changed=%v err=%v", changed, err)
	}
	if v, _ := d.Get("a"); v != int64(10) {
		t.Fatalf("a = %v", v)
	}
	if v, _ := d.Get("c"); v != int64(3) {
		t.Fatalf("c = %v", v)
	}
	// Setting to the same value reports no change.
	changed, err = ApplyUpdate(d, bson.D("$set", bson.D("a", 10)))
	if err != nil || changed {
		t.Fatalf("idempotent set: changed=%v err=%v", changed, err)
	}
	changed, err = ApplyUpdate(d, bson.D("$unset", bson.D("b", "")))
	if err != nil || !changed {
		t.Fatalf("unset: changed=%v err=%v", changed, err)
	}
	if d.Has("b") {
		t.Fatalf("b still present")
	}
	// Unsetting a missing field reports no change.
	changed, _ = ApplyUpdate(d, bson.D("$unset", bson.D("zzz", "")))
	if changed {
		t.Fatalf("unset of missing field should not change")
	}
}

func TestApplyUpdateSetDottedPathEmbedsDocument(t *testing.T) {
	// This is exactly the shape EmbedDocuments (Figure 4.7) relies on:
	// replacing a foreign-key scalar with the referenced dimension document.
	d := bson.D(bson.IDKey, 1, "ss_sold_date_sk", 2451545)
	dim := bson.D("d_date_sk", 2451545, "d_year", 2001, "d_dow", 6)
	changed, err := ApplyUpdate(d, bson.D("$set", bson.D("ss_sold_date_sk", dim)))
	if err != nil || !changed {
		t.Fatalf("embed set: changed=%v err=%v", changed, err)
	}
	if v, ok := d.GetPath("ss_sold_date_sk.d_year"); !ok || v != int64(2001) {
		t.Fatalf("embedded year = %v, %v", v, ok)
	}
}

func TestApplyUpdateIncMul(t *testing.T) {
	d := bson.D("i", 10, "f", 2.5)
	if _, err := ApplyUpdate(d, bson.D("$inc", bson.D("i", 5))); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Get("i"); v != int64(15) {
		t.Fatalf("i = %v (%T)", v, v)
	}
	if _, err := ApplyUpdate(d, bson.D("$inc", bson.D("f", 1))); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Get("f"); v != 3.5 {
		t.Fatalf("f = %v", v)
	}
	if _, err := ApplyUpdate(d, bson.D("$mul", bson.D("i", 2))); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Get("i"); v != int64(30) {
		t.Fatalf("i after mul = %v", v)
	}
	// $inc on a missing field creates it; $mul creates 0.
	if _, err := ApplyUpdate(d, bson.D("$inc", bson.D("new", 7))); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Get("new"); v != int64(7) {
		t.Fatalf("new = %v", v)
	}
	if _, err := ApplyUpdate(d, bson.D("$mul", bson.D("new2", 7))); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Get("new2"); v != int64(0) {
		t.Fatalf("new2 = %v", v)
	}
	// Errors.
	if _, err := ApplyUpdate(bson.D("s", "x"), bson.D("$inc", bson.D("s", 1))); err == nil {
		t.Fatalf("$inc on string should fail")
	}
	if _, err := ApplyUpdate(bson.D("s", 1), bson.D("$inc", bson.D("s", "x"))); err == nil {
		t.Fatalf("$inc with string operand should fail")
	}
}

func TestApplyUpdateMinMaxRename(t *testing.T) {
	d := bson.D("v", 10, "old", "keepme")
	if _, err := ApplyUpdate(d, bson.D("$min", bson.D("v", 5))); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Get("v"); v != int64(5) {
		t.Fatalf("min v = %v", v)
	}
	changed, _ := ApplyUpdate(d, bson.D("$min", bson.D("v", 50)))
	if changed {
		t.Fatalf("min with larger value should not change")
	}
	if _, err := ApplyUpdate(d, bson.D("$max", bson.D("v", 99))); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Get("v"); v != int64(99) {
		t.Fatalf("max v = %v", v)
	}
	if _, err := ApplyUpdate(d, bson.D("$min", bson.D("created", 3))); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Get("created"); v != int64(3) {
		t.Fatalf("min on missing field should set it: %v", v)
	}
	if _, err := ApplyUpdate(d, bson.D("$rename", bson.D("old", "renamed"))); err != nil {
		t.Fatal(err)
	}
	if d.Has("old") {
		t.Fatalf("old still present")
	}
	if v, _ := d.Get("renamed"); v != "keepme" {
		t.Fatalf("renamed = %v", v)
	}
	changed, _ = ApplyUpdate(d, bson.D("$rename", bson.D("ghost", "spirit")))
	if changed {
		t.Fatalf("rename of missing field should not change")
	}
	if _, err := ApplyUpdate(d, bson.D("$rename", bson.D("renamed", 5))); err == nil {
		t.Fatalf("rename to non-string should fail")
	}
}

func TestApplyUpdateArrayOperators(t *testing.T) {
	d := bson.D("tags", bson.A("a", "b"))
	if _, err := ApplyUpdate(d, bson.D("$push", bson.D("tags", "c"))); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Get("tags"); len(v.([]any)) != 3 {
		t.Fatalf("tags = %v", v)
	}
	if _, err := ApplyUpdate(d, bson.D("$push", bson.D("newarr", 1))); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Get("newarr"); len(v.([]any)) != 1 {
		t.Fatalf("newarr = %v", v)
	}
	changed, _ := ApplyUpdate(d, bson.D("$addToSet", bson.D("tags", "a")))
	if changed {
		t.Fatalf("addToSet of existing element should not change")
	}
	if _, err := ApplyUpdate(d, bson.D("$addToSet", bson.D("tags", "d"))); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Get("tags"); len(v.([]any)) != 4 {
		t.Fatalf("tags after addToSet = %v", v)
	}
	if _, err := ApplyUpdate(d, bson.D("$pull", bson.D("tags", "b"))); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Get("tags"); len(v.([]any)) != 3 {
		t.Fatalf("tags after pull = %v", v)
	}
	changed, _ = ApplyUpdate(d, bson.D("$pull", bson.D("tags", "zz")))
	if changed {
		t.Fatalf("pull of absent element should not change")
	}
	if _, err := ApplyUpdate(d, bson.D("$pop", bson.D("tags", 1))); err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyUpdate(d, bson.D("$pop", bson.D("tags", -1))); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Get("tags"); len(v.([]any)) != 1 {
		t.Fatalf("tags after pops = %v", v)
	}
	if _, err := ApplyUpdate(d, bson.D("$pop", bson.D("tags", 2))); err == nil {
		t.Fatalf("$pop with 2 should fail")
	}
	if _, err := ApplyUpdate(bson.D("s", 1), bson.D("$push", bson.D("s", 1))); err == nil {
		t.Fatalf("$push to scalar should fail")
	}
	if _, err := ApplyUpdate(bson.D("s", 1), bson.D("$addToSet", bson.D("s", 1))); err == nil {
		t.Fatalf("$addToSet to scalar should fail")
	}
	if _, err := ApplyUpdate(bson.D("s", 1), bson.D("$pull", bson.D("s", 1))); err == nil {
		t.Fatalf("$pull from scalar should fail")
	}
	if _, err := ApplyUpdate(bson.D("s", 1), bson.D("$pop", bson.D("s", 1))); err == nil {
		t.Fatalf("$pop from scalar should fail")
	}
}

func TestApplyUpdateReplacement(t *testing.T) {
	d := bson.D(bson.IDKey, 42, "a", 1, "b", 2)
	changed, err := ApplyUpdate(d, bson.D("x", 9))
	if err != nil || !changed {
		t.Fatalf("replacement: %v %v", changed, err)
	}
	if d.Has("a") || d.Has("b") {
		t.Fatalf("old fields should be gone: %s", d)
	}
	if v, _ := d.Get(bson.IDKey); v != int64(42) {
		t.Fatalf("_id must be preserved, got %v", v)
	}
	if v, _ := d.Get("x"); v != int64(9) {
		t.Fatalf("x = %v", v)
	}
	// Replacement with a conflicting _id is rejected.
	if _, err := ApplyUpdate(d, bson.D(bson.IDKey, 43, "y", 1)); err == nil {
		t.Fatalf("replacement changing _id should fail")
	}
	// Replacement with the same _id is fine.
	if _, err := ApplyUpdate(d, bson.D(bson.IDKey, 42, "y", 1)); err != nil {
		t.Fatalf("replacement with same _id: %v", err)
	}
}

func TestApplyUpdateImmutableIDAndErrors(t *testing.T) {
	d := bson.D(bson.IDKey, 1, "a", 1)
	if _, err := ApplyUpdate(d, bson.D("$set", bson.D(bson.IDKey, 2))); err == nil {
		t.Fatalf("modifying _id should fail")
	}
	if _, err := ApplyUpdate(d, bson.D("$set", "not-a-doc")); err == nil {
		t.Fatalf("non-document operator argument should fail")
	}
	if _, err := ApplyUpdate(d, bson.D("$frobnicate", bson.D("a", 1))); err == nil {
		t.Fatalf("unknown operator should fail")
	}
}
