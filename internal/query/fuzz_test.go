package query

import (
	"testing"

	"docstore/internal/bson"
)

// FuzzMatcher feeds arbitrary filter and document JSON through Compile and
// Matches: compilation may reject a filter, but an accepted filter must
// never panic during evaluation and must evaluate deterministically. Seeds
// are drawn from the operator corpus of the unit tests (the predicates of
// benchmark queries 7/21/46/50 among them).
func FuzzMatcher(f *testing.F) {
	filters := []string{
		`{}`,
		`{"cd_gender": "M"}`,
		`{"cd_gender": {"$eq": "M"}}`,
		`{"i_current_price": {"$gte": 0.99, "$lte": 1.49}}`,
		`{"d_year": {"$gt": 2000}}`,
		`{"d_year": {"$ne": 1999}}`,
		`{"d_dow": {"$in": [6, 0]}}`,
		`{"d_dow": {"$nin": [1, 2]}}`,
		`{"$and": [{"a": 1}, {"$or": [{"b": 2}, {"c": {"$exists": true}}]}]}`,
		`{"$or": [{"p_channel_email": "N"}, {"p_channel_event": "N"}]}`,
		`{"a.b.c": {"$lt": 10}}`,
		`{"tags": {"$all": ["x", "y"]}}`,
		`{"v": {"$not": {"$gt": 5}}}`,
		`{"absent": {"$exists": false}}`,
		`{"s": {"$regex": "^ab.*c$"}}`,
	}
	docs := []string{
		`{}`,
		`{"cd_gender": "M", "d_year": 2001, "d_dow": 6}`,
		`{"i_current_price": 1.25, "a": {"b": {"c": 5}}}`,
		`{"tags": ["x", "y", "z"], "v": 3, "s": "abc"}`,
		`{"p_channel_email": "N", "absent": null}`,
		`{"a": [1, {"b": 2}], "nested": {"deep": [[1], [2]]}}`,
	}
	for _, flt := range filters {
		for _, doc := range docs {
			f.Add([]byte(flt), []byte(doc))
		}
	}
	f.Fuzz(func(t *testing.T, filterJSON, docJSON []byte) {
		filter, err := bson.FromJSON(filterJSON)
		if err != nil {
			return
		}
		doc, err := bson.FromJSON(docJSON)
		if err != nil {
			return
		}
		m, err := Compile(filter)
		if err != nil {
			return // rejected filters are fine; panics are not
		}
		first := m.Matches(doc)
		if m.Matches(doc) != first {
			t.Fatalf("Matches is not deterministic for filter %s doc %s", filterJSON, docJSON)
		}
		// A freshly compiled matcher must agree with the first one.
		m2, err := Compile(filter)
		if err != nil {
			t.Fatalf("filter %s compiled once but not twice: %v", filterJSON, err)
		}
		if m2.Matches(doc) != first {
			t.Fatalf("recompiled matcher disagrees for filter %s doc %s", filterJSON, docJSON)
		}
	})
}
