package query

import (
	"fmt"
	"strings"

	"docstore/internal/bson"
)

// Update operators supported by ApplyUpdate. The update document either uses
// operators ({"$set": {...}, "$inc": {...}}) or is a full replacement
// document (no $-prefixed top-level keys), in which case every field except
// _id is replaced.

// IsOperatorUpdate reports whether the update document uses update operators
// rather than being a full-document replacement.
func IsOperatorUpdate(update *bson.Doc) bool {
	for _, f := range update.Fields() {
		if strings.HasPrefix(f.Key, "$") {
			return true
		}
	}
	return false
}

// ApplyUpdate applies an update document to doc in place and reports whether
// the document changed. The _id field is immutable: a replacement keeps the
// existing _id and operator updates may not modify it.
func ApplyUpdate(doc, update *bson.Doc) (bool, error) {
	if !IsOperatorUpdate(update) {
		return applyReplacement(doc, update)
	}
	changed := false
	for _, f := range update.Fields() {
		spec, ok := f.Value.(*bson.Doc)
		if !ok {
			return changed, fmt.Errorf("query: %s requires a document argument", f.Key)
		}
		for _, target := range spec.Fields() {
			if target.Key == bson.IDKey {
				return changed, fmt.Errorf("query: the %s field is immutable", bson.IDKey)
			}
			c, err := applyOperator(doc, f.Key, target.Key, target.Value)
			if err != nil {
				return changed, err
			}
			changed = changed || c
		}
	}
	return changed, nil
}

func applyReplacement(doc, replacement *bson.Doc) (bool, error) {
	id, hadID := doc.Get(bson.IDKey)
	if newID, ok := replacement.Get(bson.IDKey); ok && hadID && bson.Compare(newID, id) != 0 {
		return false, fmt.Errorf("query: the %s field is immutable", bson.IDKey)
	}
	// Remove all fields, then copy the replacement in, restoring _id first so
	// it keeps its leading position.
	for _, k := range doc.Keys() {
		doc.Delete(k)
	}
	if hadID {
		doc.Set(bson.IDKey, id)
	}
	for _, f := range replacement.Fields() {
		if f.Key == bson.IDKey {
			continue
		}
		doc.Set(f.Key, bson.CloneValue(f.Value))
	}
	return true, nil
}

func applyOperator(doc *bson.Doc, op, path string, arg any) (bool, error) {
	arg = bson.Normalize(arg)
	switch op {
	case "$set":
		cur, had := doc.GetPath(path)
		if had && bson.Compare(cur, arg) == 0 {
			return false, nil
		}
		return true, doc.SetPath(path, bson.CloneValue(arg))
	case "$unset":
		return doc.DeletePath(path), nil
	case "$inc", "$mul":
		delta, ok := bson.AsFloat(arg)
		if !ok {
			return false, fmt.Errorf("query: %s requires a numeric argument for %q", op, path)
		}
		cur, had := doc.GetPath(path)
		if !had {
			initial := arg
			if op == "$mul" {
				initial = int64(0)
			}
			return true, doc.SetPath(path, initial)
		}
		curF, ok := bson.AsFloat(cur)
		if !ok {
			return false, fmt.Errorf("query: cannot apply %s to non-numeric field %q", op, path)
		}
		var res float64
		if op == "$inc" {
			res = curF + delta
		} else {
			res = curF * delta
		}
		return true, doc.SetPath(path, numericResult(cur, arg, res))
	case "$min", "$max":
		cur, had := doc.GetPath(path)
		if !had {
			return true, doc.SetPath(path, arg)
		}
		cmp := bson.Compare(arg, cur)
		if (op == "$min" && cmp < 0) || (op == "$max" && cmp > 0) {
			return true, doc.SetPath(path, arg)
		}
		return false, nil
	case "$rename":
		newName, ok := arg.(string)
		if !ok {
			return false, fmt.Errorf("query: $rename requires a string argument for %q", path)
		}
		v, had := doc.GetPath(path)
		if !had {
			return false, nil
		}
		doc.DeletePath(path)
		return true, doc.SetPath(newName, v)
	case "$push":
		cur, had := doc.GetPath(path)
		if !had {
			return true, doc.SetPath(path, []any{arg})
		}
		arr, ok := cur.([]any)
		if !ok {
			return false, fmt.Errorf("query: cannot $push to non-array field %q", path)
		}
		return true, doc.SetPath(path, append(arr, arg))
	case "$addToSet":
		cur, had := doc.GetPath(path)
		if !had {
			return true, doc.SetPath(path, []any{arg})
		}
		arr, ok := cur.([]any)
		if !ok {
			return false, fmt.Errorf("query: cannot $addToSet to non-array field %q", path)
		}
		for _, e := range arr {
			if bson.Compare(e, arg) == 0 {
				return false, nil
			}
		}
		return true, doc.SetPath(path, append(arr, arg))
	case "$pull":
		cur, had := doc.GetPath(path)
		if !had {
			return false, nil
		}
		arr, ok := cur.([]any)
		if !ok {
			return false, fmt.Errorf("query: cannot $pull from non-array field %q", path)
		}
		kept := arr[:0:0]
		removed := false
		for _, e := range arr {
			if bson.Compare(e, arg) == 0 {
				removed = true
				continue
			}
			kept = append(kept, e)
		}
		if !removed {
			return false, nil
		}
		return true, doc.SetPath(path, kept)
	case "$pop":
		n, ok := bson.AsInt(arg)
		if !ok || (n != 1 && n != -1) {
			return false, fmt.Errorf("query: $pop requires 1 or -1 for %q", path)
		}
		cur, had := doc.GetPath(path)
		if !had {
			return false, nil
		}
		arr, ok := cur.([]any)
		if !ok {
			return false, fmt.Errorf("query: cannot $pop from non-array field %q", path)
		}
		if len(arr) == 0 {
			return false, nil
		}
		if n == 1 {
			arr = arr[:len(arr)-1]
		} else {
			arr = arr[1:]
		}
		return true, doc.SetPath(path, arr)
	default:
		return false, fmt.Errorf("query: unknown update operator %s", op)
	}
}

// numericResult keeps integer arithmetic integral: when both the current
// value and the operand are integers the result stays an int64, otherwise it
// becomes a float64.
func numericResult(cur, operand any, res float64) any {
	_, curInt := cur.(int64)
	_, opInt := operand.(int64)
	if curInt && opInt {
		return int64(res)
	}
	return res
}

// UpdateSpec describes a full update request, mirroring the four-parameter
// update call used by the thesis' EmbedDocuments algorithm (Figure 4.7):
// a selection filter, the update document, upsert behaviour and whether all
// matching documents are updated.
type UpdateSpec struct {
	Query  *bson.Doc
	Update *bson.Doc
	Upsert bool
	Multi  bool
}
