package query

import (
	"strings"

	"docstore/internal/bson"
)

// Constraint captures what a filter says about one field under top-level AND
// semantics. It is what the query planner uses to decide whether an index can
// serve a filter, and what the query router uses to decide whether a query
// can be targeted to specific shards (the thesis' targeted-vs-broadcast
// distinction of §4.3).
type Constraint struct {
	Field string
	// Points holds the exact values the field may take when the filter pins
	// it down with $eq or $in. Nil when the field is only range-constrained.
	Points []any
	// Range bounds; meaningful when HasMin/HasMax are set.
	Min, Max                   any
	MinInclusive, MaxInclusive bool
	HasMin, HasMax             bool
}

// IsPoint reports whether the constraint restricts the field to a finite set
// of values.
func (c *Constraint) IsPoint() bool { return len(c.Points) > 0 }

// IsRange reports whether the constraint carries at least one range bound.
func (c *Constraint) IsRange() bool { return c.HasMin || c.HasMax }

// FieldConstraints extracts the per-field constraints implied by a filter.
// Only conjunctive structure is analysed: top-level field conditions and
// $and clauses contribute; $or, $nor and $not clauses are conservatively
// ignored (they never make a plan incorrect, only less selective).
func FieldConstraints(filter *bson.Doc) map[string]*Constraint {
	out := make(map[string]*Constraint)
	collectConstraints(filter, out)
	return out
}

func collectConstraints(filter *bson.Doc, out map[string]*Constraint) {
	if filter == nil {
		return
	}
	for _, f := range filter.Fields() {
		switch f.Key {
		case "$and":
			if arr, ok := f.Value.([]any); ok {
				for _, e := range arr {
					if sub, ok := e.(*bson.Doc); ok {
						collectConstraints(sub, out)
					}
				}
			}
		case "$or", "$nor", "$not":
			// Disjunctive clauses do not constrain a single field for planning.
			continue
		default:
			if strings.HasPrefix(f.Key, "$") {
				continue
			}
			collectFieldConstraint(f.Key, f.Value, out)
		}
	}
}

func collectFieldConstraint(field string, cond any, out map[string]*Constraint) {
	c := out[field]
	if c == nil {
		c = &Constraint{Field: field}
		out[field] = c
	}
	opDoc, ok := cond.(*bson.Doc)
	if !ok || !isOperatorDoc(opDoc) {
		c.addPoint(bson.Normalize(cond))
		return
	}
	for _, op := range opDoc.Fields() {
		v := bson.Normalize(op.Value)
		switch op.Key {
		case "$eq":
			c.addPoint(v)
		case "$in":
			if arr, ok := v.([]any); ok {
				c.addPoints(arr)
			}
		case "$gt":
			c.setMin(v, false)
		case "$gte":
			c.setMin(v, true)
		case "$lt":
			c.setMax(v, false)
		case "$lte":
			c.setMax(v, true)
		}
	}
}

func (c *Constraint) addPoint(v any) { c.intersectPoints([]any{v}) }

func (c *Constraint) addPoints(vs []any) { c.intersectPoints(vs) }

// intersectPoints narrows the point set: the first point condition seeds the
// set, later ones intersect with it (AND semantics).
func (c *Constraint) intersectPoints(vs []any) {
	if c.Points == nil {
		c.Points = append([]any(nil), vs...)
		return
	}
	var kept []any
	for _, existing := range c.Points {
		for _, v := range vs {
			if bson.Compare(existing, v) == 0 {
				kept = append(kept, existing)
				break
			}
		}
	}
	if kept == nil {
		kept = []any{}
	}
	c.Points = kept
}

func (c *Constraint) setMin(v any, inclusive bool) {
	if !c.HasMin || bson.Compare(v, c.Min) > 0 {
		c.Min, c.MinInclusive, c.HasMin = v, inclusive, true
	}
}

func (c *Constraint) setMax(v any, inclusive bool) {
	if !c.HasMax || bson.Compare(v, c.Max) < 0 {
		c.Max, c.MaxInclusive, c.HasMax = v, inclusive, true
	}
}

// ConstraintFor returns the constraint for a single field, or nil.
func ConstraintFor(filter *bson.Doc, field string) *Constraint {
	return FieldConstraints(filter)[field]
}
