package query

import (
	"testing"

	"docstore/internal/bson"
)

func TestFieldConstraintsEquality(t *testing.T) {
	cs := FieldConstraints(bson.D("cd_gender", "M", "d_year", 2001))
	if len(cs) != 2 {
		t.Fatalf("got %d constraints", len(cs))
	}
	g := cs["cd_gender"]
	if !g.IsPoint() || len(g.Points) != 1 || g.Points[0] != "M" {
		t.Fatalf("gender constraint = %+v", g)
	}
	y := cs["d_year"]
	if !y.IsPoint() || y.Points[0] != int64(2001) {
		t.Fatalf("year constraint = %+v", y)
	}
}

func TestFieldConstraintsRange(t *testing.T) {
	cs := FieldConstraints(bson.D("i_current_price", bson.D("$gte", 0.99, "$lte", 1.49)))
	c := cs["i_current_price"]
	if c == nil || !c.IsRange() || c.IsPoint() {
		t.Fatalf("constraint = %+v", c)
	}
	if c.Min != 0.99 || !c.MinInclusive || c.Max != 1.49 || !c.MaxInclusive {
		t.Fatalf("range = %+v", c)
	}
	// Exclusive bounds.
	cs = FieldConstraints(bson.D("v", bson.D("$gt", 1, "$lt", 5)))
	c = cs["v"]
	if c.MinInclusive || c.MaxInclusive {
		t.Fatalf("bounds should be exclusive: %+v", c)
	}
	// Tighter bounds win.
	cs = FieldConstraints(bson.D("$and", bson.A(
		bson.D("v", bson.D("$gte", 1)),
		bson.D("v", bson.D("$gte", 3)),
		bson.D("v", bson.D("$lte", 10)),
		bson.D("v", bson.D("$lte", 7)),
	)))
	c = cs["v"]
	if c.Min != int64(3) || c.Max != int64(7) {
		t.Fatalf("tightened range = %+v", c)
	}
}

func TestFieldConstraintsIn(t *testing.T) {
	cs := FieldConstraints(bson.D("s_city", bson.D("$in", bson.A("Midway", "Fairview"))))
	c := cs["s_city"]
	if !c.IsPoint() || len(c.Points) != 2 {
		t.Fatalf("constraint = %+v", c)
	}
	// Intersection of $in and $eq.
	cs = FieldConstraints(bson.D("$and", bson.A(
		bson.D("k", bson.D("$in", bson.A(1, 2, 3))),
		bson.D("k", 2),
	)))
	c = cs["k"]
	if len(c.Points) != 1 || c.Points[0] != int64(2) {
		t.Fatalf("intersected points = %+v", c.Points)
	}
	// Disjoint conditions give an empty point set.
	cs = FieldConstraints(bson.D("$and", bson.A(bson.D("k", 1), bson.D("k", 2))))
	c = cs["k"]
	if c.Points == nil || len(c.Points) != 0 {
		t.Fatalf("disjoint points = %+v", c.Points)
	}
}

func TestFieldConstraintsIgnoresDisjunctions(t *testing.T) {
	cs := FieldConstraints(bson.D(
		"$or", bson.A(bson.D("a", 1), bson.D("b", 2)),
		"c", 3,
	))
	if _, ok := cs["a"]; ok {
		t.Fatalf("$or branches should not constrain fields")
	}
	if _, ok := cs["c"]; !ok {
		t.Fatalf("top-level field next to $or should still constrain")
	}
	cs = FieldConstraints(bson.D("$nor", bson.A(bson.D("a", 1))))
	if len(cs) != 0 {
		t.Fatalf("$nor should contribute nothing, got %v", cs)
	}
}

func TestFieldConstraintsNestedAnd(t *testing.T) {
	// Shape of the thesis query filters: $and of single-field docs.
	f := bson.D("$and", bson.A(
		bson.D("ss_cdemo_sk.cd_gender", "M"),
		bson.D("ss_sold_date_sk.d_year", 2001),
		bson.D("$and", bson.A(bson.D("deep", 7))),
	))
	cs := FieldConstraints(f)
	if len(cs) != 3 {
		t.Fatalf("got %d constraints: %v", len(cs), cs)
	}
	if cs["deep"].Points[0] != int64(7) {
		t.Fatalf("nested $and constraint missing")
	}
}

func TestConstraintFor(t *testing.T) {
	c := ConstraintFor(bson.D("ss_ticket_number", 1234), "ss_ticket_number")
	if c == nil || !c.IsPoint() {
		t.Fatalf("ConstraintFor = %+v", c)
	}
	if ConstraintFor(bson.D("a", 1), "b") != nil {
		t.Fatalf("missing field should have no constraint")
	}
	if ConstraintFor(nil, "a") != nil {
		t.Fatalf("nil filter should have no constraint")
	}
}
