package query

import (
	"math/rand"
	"sort"
	"testing"

	"docstore/internal/bson"
)

func TestParseSort(t *testing.T) {
	s, err := ParseSort(bson.D("c_last_name", 1, "ss_ticket_number", -1))
	if err != nil {
		t.Fatalf("ParseSort: %v", err)
	}
	if len(s) != 2 || s[0].Field != "c_last_name" || s[0].Desc || s[1].Field != "ss_ticket_number" || !s[1].Desc {
		t.Fatalf("parsed sort = %+v", s)
	}
	if _, err := ParseSort(bson.D("x", 2)); err == nil {
		t.Fatalf("direction 2 should be rejected")
	}
	if _, err := ParseSort(bson.D("x", "asc")); err == nil {
		t.Fatalf("string direction should be rejected")
	}
	empty, err := ParseSort(nil)
	if err != nil || empty != nil {
		t.Fatalf("nil spec should produce nil sort")
	}
	// Round-trip through Spec.
	spec := s.Spec()
	if v, _ := spec.Get("ss_ticket_number"); v != int64(-1) {
		t.Fatalf("Spec() = %s", spec)
	}
	if got := s.Fields(); len(got) != 2 || got[0] != "c_last_name" {
		t.Fatalf("Fields() = %v", got)
	}
}

func TestMustParseSortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	MustParseSort(bson.D("x", 0))
}

func TestSortApply(t *testing.T) {
	docs := []*bson.Doc{
		bson.D("name", "b", "n", 2),
		bson.D("name", "a", "n", 3),
		bson.D("name", "a", "n", 1),
		bson.D("name", "c", "n", 0),
	}
	MustParseSort(bson.D("name", 1, "n", -1)).Apply(docs)
	wantNames := []string{"a", "a", "b", "c"}
	wantNs := []int64{3, 1, 2, 0}
	for i, d := range docs {
		name, _ := d.Get("name")
		n, _ := d.Get("n")
		if name != wantNames[i] || n != wantNs[i] {
			t.Fatalf("pos %d: got (%v,%v), want (%v,%v)", i, name, n, wantNames[i], wantNs[i])
		}
	}
	// Empty sort leaves order alone.
	before := append([]*bson.Doc(nil), docs...)
	Sort(nil).Apply(docs)
	for i := range docs {
		if docs[i] != before[i] {
			t.Fatalf("empty sort reordered the slice")
		}
	}
}

func TestSortMissingFieldsSortFirst(t *testing.T) {
	docs := []*bson.Doc{
		bson.D("v", 5),
		bson.D("other", 1),
		bson.D("v", 1),
	}
	MustParseSort(bson.D("v", 1)).Apply(docs)
	if _, ok := docs[0].Get("v"); ok {
		t.Fatalf("document missing the sort field should sort first ascending")
	}
	MustParseSort(bson.D("v", -1)).Apply(docs)
	if _, ok := docs[len(docs)-1].Get("v"); ok {
		t.Fatalf("document missing the sort field should sort last descending")
	}
}

func TestSortStability(t *testing.T) {
	docs := []*bson.Doc{
		bson.D("k", 1, "seq", 0),
		bson.D("k", 1, "seq", 1),
		bson.D("k", 1, "seq", 2),
		bson.D("k", 0, "seq", 3),
	}
	MustParseSort(bson.D("k", 1)).Apply(docs)
	// Among equal keys the original order must be preserved.
	var seqs []int64
	for _, d := range docs[1:] {
		s, _ := d.Get("seq")
		seqs = append(seqs, s.(int64))
	}
	if seqs[0] != 0 || seqs[1] != 1 || seqs[2] != 2 {
		t.Fatalf("stable order violated: %v", seqs)
	}
}

func TestSortMergeEquivalentToGlobalSort(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	s := MustParseSort(bson.D("a", 1, "b", -1))
	var all []*bson.Doc
	var parts [][]*bson.Doc
	for p := 0; p < 3; p++ {
		var part []*bson.Doc
		for i := 0; i < 50; i++ {
			d := bson.D("a", r.Intn(10), "b", r.Intn(10), "part", p)
			part = append(part, d)
			all = append(all, d)
		}
		s.Apply(part)
		parts = append(parts, part)
	}
	merged := s.Merge(parts...)
	if len(merged) != len(all) {
		t.Fatalf("merged %d docs, want %d", len(merged), len(all))
	}
	if !sort.SliceIsSorted(merged, func(i, j int) bool { return s.Compare(merged[i], merged[j]) < 0 }) {
		t.Fatalf("merged output is not sorted")
	}
}

func TestSortMergeNoOrdering(t *testing.T) {
	a := []*bson.Doc{bson.D("x", 1), bson.D("x", 2)}
	b := []*bson.Doc{bson.D("x", 3)}
	out := Sort(nil).Merge(a, b)
	if len(out) != 3 {
		t.Fatalf("got %d docs", len(out))
	}
}

func TestProjectionInclusion(t *testing.T) {
	d := bson.D(bson.IDKey, 7, "a", 1, "b", 2, "sub", bson.D("x", 10, "y", 20))
	p := MustParseProjection(bson.D("a", 1, "sub.x", 1))
	out := p.Apply(d)
	if !out.Has(bson.IDKey) || !out.Has("a") || out.Has("b") {
		t.Fatalf("projection output = %s", out)
	}
	if v, ok := out.GetPath("sub.x"); !ok || v != int64(10) {
		t.Fatalf("sub.x = %v, %v", v, ok)
	}
	if _, ok := out.GetPath("sub.y"); ok {
		t.Fatalf("sub.y should be excluded")
	}
	if !p.IsInclusion() {
		t.Fatalf("IsInclusion should be true")
	}
	if len(p.Fields()) != 2 {
		t.Fatalf("Fields = %v", p.Fields())
	}
}

func TestProjectionExclusion(t *testing.T) {
	d := bson.D(bson.IDKey, 7, "a", 1, "b", 2)
	p := MustParseProjection(bson.D("b", 0))
	out := p.Apply(d)
	if !out.Has("a") || out.Has("b") || !out.Has(bson.IDKey) {
		t.Fatalf("exclusion output = %s", out)
	}
	if p.IsInclusion() {
		t.Fatalf("IsInclusion should be false")
	}
	// Excluding _id in inclusion mode.
	p2 := MustParseProjection(bson.D(bson.IDKey, 0, "a", 1))
	out2 := p2.Apply(d)
	if out2.Has(bson.IDKey) || !out2.Has("a") {
		t.Fatalf("_id exclusion output = %s", out2)
	}
	// _id-only exclusion.
	p3 := MustParseProjection(bson.D(bson.IDKey, 0))
	out3 := p3.Apply(d)
	if out3.Has(bson.IDKey) || !out3.Has("a") || !out3.Has("b") {
		t.Fatalf("_id-only exclusion output = %s", out3)
	}
	// Exclusion must not mutate the original document.
	if !d.Has("b") {
		t.Fatalf("original document mutated by exclusion projection")
	}
}

func TestProjectionErrorsAndEmpty(t *testing.T) {
	if _, err := ParseProjection(bson.D("a", 1, "b", 0)); err == nil {
		t.Fatalf("mixed projection should fail")
	}
	if _, err := ParseProjection(bson.D("a", "yes")); err == nil {
		t.Fatalf("non-numeric projection value should fail")
	}
	p, err := ParseProjection(nil)
	if err != nil {
		t.Fatalf("nil projection: %v", err)
	}
	d := bson.D("a", 1)
	if p.Apply(d) != d {
		t.Fatalf("empty projection should return the document unchanged")
	}
	// Boolean values are accepted.
	pb := MustParseProjection(bson.D("a", true, "b", true))
	if out := pb.Apply(bson.D("a", 1, "b", 2, "c", 3)); out.Has("c") {
		t.Fatalf("bool projection output = %s", out)
	}
}
