// Package query implements the document query language of the store: filter
// matching, sorts, projections, update operators, and the extraction of index
// bounds used by the query planner.
//
// Filters are ordinary documents in the familiar operator syntax, e.g.
//
//	{"cd_gender": "M",
//	 "i_current_price": {"$gte": 0.99, "$lte": 1.49},
//	 "$or": [{"p_channel_email": "N"}, {"p_channel_event": "N"}]}
//
// A filter is compiled once into a Matcher and evaluated against many
// documents.
package query

import (
	"fmt"
	"regexp"
	"strings"

	"docstore/internal/bson"
)

// Matcher is a compiled filter predicate.
type Matcher struct {
	root matchNode
	src  *bson.Doc
}

// matchNode is a single node of the compiled predicate tree.
type matchNode interface {
	matches(d *bson.Doc) bool
}

// Compile parses a filter document into a Matcher. A nil or empty filter
// matches every document.
func Compile(filter *bson.Doc) (*Matcher, error) {
	node, err := compileFilter(filter)
	if err != nil {
		return nil, err
	}
	return &Matcher{root: node, src: filter}, nil
}

// MustCompile is Compile but panics on error; intended for statically known
// filters such as the benchmark query definitions.
func MustCompile(filter *bson.Doc) *Matcher {
	m, err := Compile(filter)
	if err != nil {
		panic(err)
	}
	return m
}

// Matches reports whether the document satisfies the filter.
func (m *Matcher) Matches(d *bson.Doc) bool {
	if m == nil || m.root == nil {
		return true
	}
	return m.root.matches(d)
}

// Filter returns the source filter document the matcher was compiled from.
func (m *Matcher) Filter() *bson.Doc { return m.src }

// String renders the original filter.
func (m *Matcher) String() string {
	if m == nil || m.src == nil {
		return "{}"
	}
	return m.src.String()
}

// ---------------------------------------------------------------------------
// Compilation

type andNode struct{ children []matchNode }

func (n *andNode) matches(d *bson.Doc) bool {
	for _, c := range n.children {
		if !c.matches(d) {
			return false
		}
	}
	return true
}

type orNode struct{ children []matchNode }

func (n *orNode) matches(d *bson.Doc) bool {
	for _, c := range n.children {
		if c.matches(d) {
			return true
		}
	}
	return false
}

type norNode struct{ children []matchNode }

func (n *norNode) matches(d *bson.Doc) bool {
	for _, c := range n.children {
		if c.matches(d) {
			return false
		}
	}
	return true
}

type notNode struct{ child matchNode }

func (n *notNode) matches(d *bson.Doc) bool { return !n.child.matches(d) }

// fieldNode applies a predicate to the values reachable at a dotted path.
type fieldNode struct {
	path string
	pred fieldPredicate
}

type fieldPredicate interface {
	// match is invoked with all values reachable at the path. exists is false
	// when the path resolves to nothing.
	match(values []any, exists bool) bool
}

func (n *fieldNode) matches(d *bson.Doc) bool {
	values := d.LookupPathAll(n.path)
	return n.pred.match(values, len(values) > 0)
}

func compileFilter(filter *bson.Doc) (matchNode, error) {
	if filter.Len() == 0 {
		return &andNode{}, nil
	}
	var children []matchNode
	for _, f := range filter.Fields() {
		node, err := compileClause(f.Key, f.Value)
		if err != nil {
			return nil, err
		}
		children = append(children, node)
	}
	if len(children) == 1 {
		return children[0], nil
	}
	return &andNode{children: children}, nil
}

func compileClause(key string, value any) (matchNode, error) {
	switch key {
	case "$and", "$or", "$nor":
		arr, ok := value.([]any)
		if !ok || len(arr) == 0 {
			return nil, fmt.Errorf("query: %s requires a non-empty array", key)
		}
		var children []matchNode
		for _, e := range arr {
			sub, ok := e.(*bson.Doc)
			if !ok {
				return nil, fmt.Errorf("query: %s elements must be documents, got %T", key, e)
			}
			node, err := compileFilter(sub)
			if err != nil {
				return nil, err
			}
			children = append(children, node)
		}
		switch key {
		case "$and":
			return &andNode{children: children}, nil
		case "$or":
			return &orNode{children: children}, nil
		default:
			return &norNode{children: children}, nil
		}
	case "$not":
		sub, ok := value.(*bson.Doc)
		if !ok {
			return nil, fmt.Errorf("query: $not requires a document")
		}
		node, err := compileFilter(sub)
		if err != nil {
			return nil, err
		}
		return &notNode{child: node}, nil
	case "$expr", "$comment":
		return nil, fmt.Errorf("query: operator %s is not supported", key)
	}
	if strings.HasPrefix(key, "$") {
		return nil, fmt.Errorf("query: unknown top-level operator %s", key)
	}
	pred, err := compileFieldPredicate(value)
	if err != nil {
		return nil, fmt.Errorf("query: field %q: %w", key, err)
	}
	return &fieldNode{path: key, pred: pred}, nil
}

// compileFieldPredicate builds the predicate for one field condition, which
// is either a literal value (implicit $eq) or an operator document.
func compileFieldPredicate(cond any) (fieldPredicate, error) {
	opDoc, ok := cond.(*bson.Doc)
	if ok && isOperatorDoc(opDoc) {
		preds := make([]fieldPredicate, 0, opDoc.Len())
		for _, f := range opDoc.Fields() {
			p, err := compileOperator(f.Key, f.Value)
			if err != nil {
				return nil, err
			}
			preds = append(preds, p)
		}
		if len(preds) == 1 {
			return preds[0], nil
		}
		return allOfPredicate{preds}, nil
	}
	return eqPredicate{val: bson.Normalize(cond)}, nil
}

func isOperatorDoc(d *bson.Doc) bool {
	if d.Len() == 0 {
		return false
	}
	for _, f := range d.Fields() {
		if !strings.HasPrefix(f.Key, "$") {
			return false
		}
	}
	return true
}

func compileOperator(op string, arg any) (fieldPredicate, error) {
	arg = bson.Normalize(arg)
	switch op {
	case "$eq":
		return eqPredicate{val: arg}, nil
	case "$ne":
		return notPredicate{eqPredicate{val: arg}}, nil
	case "$gt", "$gte", "$lt", "$lte":
		return cmpPredicate{op: op, val: arg}, nil
	case "$in":
		arr, ok := arg.([]any)
		if !ok {
			return nil, fmt.Errorf("$in requires an array, got %T", arg)
		}
		return inPredicate{vals: arr}, nil
	case "$nin":
		arr, ok := arg.([]any)
		if !ok {
			return nil, fmt.Errorf("$nin requires an array, got %T", arg)
		}
		return notPredicate{inPredicate{vals: arr}}, nil
	case "$exists":
		return existsPredicate{want: bson.Truthy(arg)}, nil
	case "$type":
		s, ok := arg.(string)
		if !ok {
			return nil, fmt.Errorf("$type requires a type name string")
		}
		return typePredicate{name: s}, nil
	case "$size":
		n, ok := bson.AsInt(arg)
		if !ok {
			return nil, fmt.Errorf("$size requires a number")
		}
		return sizePredicate{n: int(n)}, nil
	case "$mod":
		arr, ok := arg.([]any)
		if !ok || len(arr) != 2 {
			return nil, fmt.Errorf("$mod requires [divisor, remainder]")
		}
		div, ok1 := bson.AsInt(arr[0])
		rem, ok2 := bson.AsInt(arr[1])
		if !ok1 || !ok2 || div == 0 {
			return nil, fmt.Errorf("$mod requires non-zero numeric divisor and remainder")
		}
		return modPredicate{div: div, rem: rem}, nil
	case "$regex":
		s, ok := arg.(string)
		if !ok {
			return nil, fmt.Errorf("$regex requires a string pattern")
		}
		re, err := regexp.Compile(s)
		if err != nil {
			return nil, fmt.Errorf("$regex: %w", err)
		}
		return regexPredicate{re: re}, nil
	case "$all":
		arr, ok := arg.([]any)
		if !ok {
			return nil, fmt.Errorf("$all requires an array")
		}
		return allPredicate{vals: arr}, nil
	case "$elemMatch":
		sub, ok := arg.(*bson.Doc)
		if !ok {
			return nil, fmt.Errorf("$elemMatch requires a document")
		}
		if isOperatorDoc(sub) {
			pred, err := compileFieldPredicate(sub)
			if err != nil {
				return nil, err
			}
			return elemMatchValuePredicate{pred: pred}, nil
		}
		node, err := compileFilter(sub)
		if err != nil {
			return nil, err
		}
		return elemMatchDocPredicate{node: node}, nil
	case "$not":
		sub, err := compileFieldPredicate(arg)
		if err != nil {
			return nil, err
		}
		return notPredicate{sub}, nil
	default:
		return nil, fmt.Errorf("unknown operator %s", op)
	}
}

// ---------------------------------------------------------------------------
// Predicates

type allOfPredicate struct{ preds []fieldPredicate }

func (p allOfPredicate) match(values []any, exists bool) bool {
	for _, sub := range p.preds {
		if !sub.match(values, exists) {
			return false
		}
	}
	return true
}

type notPredicate struct{ inner fieldPredicate }

func (p notPredicate) match(values []any, exists bool) bool {
	return !p.inner.match(values, exists)
}

// eqPredicate implements $eq with array semantics: a value matches when it
// equals the target, or when it is an array containing an element equal to
// the target (or equal to the target as a whole array).
type eqPredicate struct{ val any }

func (p eqPredicate) match(values []any, exists bool) bool {
	if !exists {
		// {field: null} matches documents where the field is missing.
		return p.val == nil
	}
	for _, v := range values {
		if valueMatchesEq(v, p.val) {
			return true
		}
	}
	return false
}

func valueMatchesEq(v, target any) bool {
	if bson.Compare(v, target) == 0 {
		return true
	}
	if arr, ok := v.([]any); ok {
		for _, e := range arr {
			if bson.Compare(e, target) == 0 {
				return true
			}
		}
	}
	return false
}

type cmpPredicate struct {
	op  string
	val any
}

func (p cmpPredicate) match(values []any, exists bool) bool {
	if !exists {
		return false
	}
	for _, v := range values {
		if valueMatchesCmp(v, p.op, p.val) {
			return true
		}
	}
	return false
}

func valueMatchesCmp(v any, op string, target any) bool {
	candidates := []any{v}
	if arr, ok := v.([]any); ok {
		candidates = append(candidates, arr...)
	}
	for _, c := range candidates {
		// Range comparisons only apply within the same canonical type,
		// mirroring BSON behaviour where e.g. {$gt: 5} never matches strings.
		if bson.TypeOf(c) != bson.TypeOf(target) {
			continue
		}
		cmp := bson.Compare(c, target)
		switch op {
		case "$gt":
			if cmp > 0 {
				return true
			}
		case "$gte":
			if cmp >= 0 {
				return true
			}
		case "$lt":
			if cmp < 0 {
				return true
			}
		case "$lte":
			if cmp <= 0 {
				return true
			}
		}
	}
	return false
}

type inPredicate struct{ vals []any }

func (p inPredicate) match(values []any, exists bool) bool {
	if !exists {
		for _, t := range p.vals {
			if t == nil {
				return true
			}
		}
		return false
	}
	for _, v := range values {
		for _, t := range p.vals {
			if valueMatchesEq(v, t) {
				return true
			}
		}
	}
	return false
}

type existsPredicate struct{ want bool }

func (p existsPredicate) match(_ []any, exists bool) bool { return exists == p.want }

type typePredicate struct{ name string }

func (p typePredicate) match(values []any, exists bool) bool {
	if !exists {
		return false
	}
	for _, v := range values {
		if bson.TypeOf(v).String() == p.name {
			return true
		}
	}
	return false
}

type sizePredicate struct{ n int }

func (p sizePredicate) match(values []any, exists bool) bool {
	if !exists {
		return false
	}
	for _, v := range values {
		if arr, ok := v.([]any); ok && len(arr) == p.n {
			return true
		}
	}
	return false
}

type modPredicate struct{ div, rem int64 }

func (p modPredicate) match(values []any, exists bool) bool {
	if !exists {
		return false
	}
	for _, v := range values {
		candidates := []any{v}
		if arr, ok := v.([]any); ok {
			candidates = arr
		}
		for _, c := range candidates {
			if n, ok := bson.AsInt(c); ok && n%p.div == p.rem {
				return true
			}
		}
	}
	return false
}

type regexPredicate struct{ re *regexp.Regexp }

func (p regexPredicate) match(values []any, exists bool) bool {
	if !exists {
		return false
	}
	for _, v := range values {
		candidates := []any{v}
		if arr, ok := v.([]any); ok {
			candidates = arr
		}
		for _, c := range candidates {
			if s, ok := c.(string); ok && p.re.MatchString(s) {
				return true
			}
		}
	}
	return false
}

// allPredicate implements $all: every listed value must be matched by the
// field (which is usually an array).
type allPredicate struct{ vals []any }

func (p allPredicate) match(values []any, exists bool) bool {
	if !exists {
		return false
	}
	for _, t := range p.vals {
		found := false
		for _, v := range values {
			if valueMatchesEq(v, t) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// elemMatchDocPredicate implements $elemMatch with a sub-filter: at least one
// array element (a document) must satisfy the whole sub-filter.
type elemMatchDocPredicate struct{ node matchNode }

func (p elemMatchDocPredicate) match(values []any, exists bool) bool {
	if !exists {
		return false
	}
	for _, v := range values {
		arr, ok := v.([]any)
		if !ok {
			continue
		}
		for _, e := range arr {
			if doc, ok := e.(*bson.Doc); ok && p.node.matches(doc) {
				return true
			}
		}
	}
	return false
}

// elemMatchValuePredicate implements $elemMatch with operator conditions
// applied to scalar array elements, e.g. {$elemMatch: {$gte: 10, $lt: 20}}.
type elemMatchValuePredicate struct{ pred fieldPredicate }

func (p elemMatchValuePredicate) match(values []any, exists bool) bool {
	if !exists {
		return false
	}
	for _, v := range values {
		arr, ok := v.([]any)
		if !ok {
			continue
		}
		for _, e := range arr {
			if p.pred.match([]any{e}, true) {
				return true
			}
		}
	}
	return false
}
