package query

import (
	"fmt"
	"sort"

	"docstore/internal/bson"
)

// SortField is one component of a sort specification.
type SortField struct {
	Field string
	Desc  bool
}

// Sort is an ordered list of sort fields, e.g. last name ascending then first
// name ascending.
type Sort []SortField

// ParseSort converts a sort specification document such as
// {"c_last_name": 1, "ss_ticket_number": -1} into a Sort.
func ParseSort(spec *bson.Doc) (Sort, error) {
	if spec == nil || spec.Len() == 0 {
		return nil, nil
	}
	s := make(Sort, 0, spec.Len())
	for _, f := range spec.Fields() {
		dir, ok := bson.AsInt(bson.Normalize(f.Value))
		if !ok || (dir != 1 && dir != -1) {
			return nil, fmt.Errorf("query: sort direction for %q must be 1 or -1, got %v", f.Key, f.Value)
		}
		s = append(s, SortField{Field: f.Key, Desc: dir == -1})
	}
	return s, nil
}

// MustParseSort is ParseSort but panics on error.
func MustParseSort(spec *bson.Doc) Sort {
	s, err := ParseSort(spec)
	if err != nil {
		panic(err)
	}
	return s
}

// Spec renders the sort back into its document form.
func (s Sort) Spec() *bson.Doc {
	d := bson.NewDoc(len(s))
	for _, f := range s {
		dir := int64(1)
		if f.Desc {
			dir = -1
		}
		d.Set(f.Field, dir)
	}
	return d
}

// Compare orders two documents under the sort specification. Missing fields
// sort as null (first ascending, last descending).
func (s Sort) Compare(a, b *bson.Doc) int {
	for _, f := range s {
		av, _ := a.GetPath(f.Field)
		bv, _ := b.GetPath(f.Field)
		c := bson.Compare(av, bv)
		if c == 0 {
			continue
		}
		if f.Desc {
			return -c
		}
		return c
	}
	return 0
}

// Less reports whether a sorts before b.
func (s Sort) Less(a, b *bson.Doc) bool { return s.Compare(a, b) < 0 }

// Apply stably sorts docs in place according to the specification. A nil or
// empty sort leaves the slice untouched.
func (s Sort) Apply(docs []*bson.Doc) {
	if len(s) == 0 {
		return
	}
	sort.SliceStable(docs, func(i, j int) bool { return s.Compare(docs[i], docs[j]) < 0 })
}

// Fields returns the field names referenced by the sort, in order.
func (s Sort) Fields() []string {
	out := make([]string, len(s))
	for i, f := range s {
		out[i] = f.Field
	}
	return out
}

// Merge merges k slices that are each already ordered by s into a single
// ordered slice. It is the merge step used by the query router when combining
// sorted results from multiple shards.
func (s Sort) Merge(parts ...[]*bson.Doc) []*bson.Doc {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]*bson.Doc, 0, total)
	idx := make([]int, len(parts))
	for len(out) < total {
		best := -1
		for i, p := range parts {
			if idx[i] >= len(p) {
				continue
			}
			if best == -1 {
				best = i
				continue
			}
			if len(s) == 0 {
				// No ordering: plain concatenation order.
				continue
			}
			if s.Compare(p[idx[i]], parts[best][idx[best]]) < 0 {
				best = i
			}
		}
		out = append(out, parts[best][idx[best]])
		idx[best]++
	}
	return out
}
