package queries

import (
	"fmt"
	"time"

	"docstore/internal/bson"
	"docstore/internal/denorm"
	"docstore/internal/driver"
	"docstore/internal/tpcds"
)

// DenormalizedPipeline returns the aggregation pipeline the query runs
// against its denormalized fact collection — the Appendix B scripts, with
// two corrections noted in DESIGN.md: field-path references carry their "$"
// prefix, and the Query 21 ratio guards against division by zero the way the
// SQL CASE expression does.
func (q *Query) DenormalizedPipeline(p Params) []*bson.Doc {
	switch q.ID {
	case 7:
		return query7DenormPipeline(p, q.OutputCollection)
	case 21:
		return query21Pipeline(p, q.OutputCollection, true)
	case 46:
		return query46Pipeline(p, q.OutputCollection, true)
	case 50:
		return query50DenormPipeline(p, q.OutputCollection)
	default:
		return nil
	}
}

// RunDenormalized executes the query against the denormalized data model
// (Experiments 3 and 6) and returns the result documents.
func RunDenormalized(store driver.Store, q *Query, p Params) ([]*bson.Doc, time.Duration, error) {
	pipeline := q.DenormalizedPipeline(p)
	if len(pipeline) == 0 {
		return nil, 0, fmt.Errorf("queries: query %d has no denormalized pipeline", q.ID)
	}
	start := time.Now()
	docs, err := store.Aggregate(q.Fact, pipeline)
	if err != nil {
		return nil, 0, fmt.Errorf("queries: %s denormalized: %w", q.Name, err)
	}
	return docs, time.Since(start), nil
}

// query7DenormPipeline mirrors the Appendix B Query 7 script.
func query7DenormPipeline(p Params, out string) []*bson.Doc {
	return []*bson.Doc{
		bson.D("$match", bson.D("$and", bson.A(
			bson.D("ss_cdemo_sk.cd_gender", p.Gender),
			bson.D("ss_cdemo_sk.cd_marital_status", p.MaritalStatus),
			bson.D("ss_cdemo_sk.cd_education_status", p.EducationStatus),
			bson.D("$or", bson.A(
				bson.D("ss_promo_sk.p_channel_email", "N"),
				bson.D("ss_promo_sk.p_channel_event", "N"),
			)),
			bson.D("ss_sold_date_sk.d_year", p.SalesYear),
			bson.D("ss_item_sk.i_item_sk", bson.D("$exists", true)),
		))),
		query7GroupStage(),
		bson.D("$sort", bson.D(bson.IDKey, 1)),
		query7ProjectStage(),
		bson.D("$out", out),
	}
}

// query7GroupStage and query7ProjectStage are shared by the denormalized and
// normalized executions: once the dimensions are embedded, both data models
// expose identical document paths.
func query7GroupStage() *bson.Doc {
	return bson.D("$group", bson.D(
		bson.IDKey, "$ss_item_sk.i_item_id",
		"agg1", bson.D("$avg", "$ss_quantity"),
		"agg2", bson.D("$avg", "$ss_list_price"),
		"agg3", bson.D("$avg", "$ss_coupon_amt"),
		"agg4", bson.D("$avg", "$ss_sales_price"),
	))
}

func query7ProjectStage() *bson.Doc {
	return bson.D("$project", bson.D(
		bson.IDKey, 0,
		"i_item_id", "$_id",
		"agg1", 1, "agg2", 1, "agg3", 1, "agg4", 1,
	))
}

// query21Pipeline builds the Query 21 pipeline. When withMatch is false the
// leading $match is omitted (the normalized execution applies those
// predicates through the semi-join instead).
func query21Pipeline(p Params, out string, withMatch bool) []*bson.Doc {
	pivot := p.InventoryDate
	lo, hi := shiftDate(pivot, -30), shiftDate(pivot, +30)
	var stages []*bson.Doc
	if withMatch {
		stages = append(stages, bson.D("$match", bson.D("$and", bson.A(
			bson.D("inv_item_sk.i_current_price", bson.D("$gte", p.PriceMin, "$lte", p.PriceMax)),
			bson.D("inv_warehouse_sk.w_warehouse_sk", bson.D("$exists", true)),
			bson.D("inv_date_sk.d_date", bson.D("$gte", lo, "$lte", hi)),
		))))
	}
	stages = append(stages,
		bson.D("$group", bson.D(
			bson.IDKey, bson.D("w_name", "$inv_warehouse_sk.w_warehouse_name", "i_id", "$inv_item_sk.i_item_id"),
			"inv_before", bson.D("$sum", bson.D("$cond", bson.A(
				bson.D("$lt", bson.A("$inv_date_sk.d_date", pivot)), "$inv_quantity_on_hand", 0))),
			"inv_after", bson.D("$sum", bson.D("$cond", bson.A(
				bson.D("$gte", bson.A("$inv_date_sk.d_date", pivot)), "$inv_quantity_on_hand", 0))),
		)),
		// The SQL CASE yields NULL when inv_before = 0, which the BETWEEN then
		// rejects; $cond reproduces that instead of dividing by zero.
		bson.D("$project", bson.D(
			bson.IDKey, 1,
			"inv_before", 1,
			"inv_after", 1,
			"ratio", bson.D("$cond", bson.A(
				bson.D("$gt", bson.A("$inv_before", 0)),
				bson.D("$divide", bson.A("$inv_after", "$inv_before")),
				nil,
			)),
		)),
		bson.D("$match", bson.D("ratio", bson.D("$gte", 2.0/3.0, "$lte", 3.0/2.0))),
		bson.D("$project", bson.D(
			bson.IDKey, 0,
			"w_warehouse_name", "$_id.w_name",
			"i_item_id", "$_id.i_id",
			"inv_before", 1,
			"inv_after", 1,
		)),
		bson.D("$sort", bson.D("w_warehouse_name", 1, "i_item_id", 1)),
		bson.D("$out", out),
	)
	return stages
}

// query46Pipeline builds the Query 46 pipeline; withMatch controls the
// leading predicate stage (denormalized) versus semi-join filtering
// (normalized).
func query46Pipeline(p Params, out string, withMatch bool) []*bson.Doc {
	var stages []*bson.Doc
	if withMatch {
		cities := make([]any, len(p.Cities))
		for i, c := range p.Cities {
			cities[i] = c
		}
		dows := make([]any, len(p.DOW))
		for i, d := range p.DOW {
			dows[i] = d
		}
		years := make([]any, len(p.Years))
		for i, y := range p.Years {
			years[i] = y
		}
		stages = append(stages, bson.D("$match", bson.D("$and", bson.A(
			bson.D("ss_store_sk.s_city", bson.D("$in", cities)),
			bson.D("ss_sold_date_sk.d_dow", bson.D("$in", dows)),
			bson.D("ss_sold_date_sk.d_year", bson.D("$in", years)),
			bson.D("$or", bson.A(
				bson.D("ss_hdemo_sk.hd_dep_count", p.DepCount),
				bson.D("ss_hdemo_sk.hd_vehicle_count", p.VehicleCount),
			)),
			bson.D("ss_addr_sk.ca_address_sk", bson.D("$exists", true)),
			bson.D("ss_customer_sk.c_customer_sk", bson.D("$exists", true)),
		))))
	}
	stages = append(stages,
		bson.D("$project", bson.D(
			"value", bson.D("$ne", bson.A("$ss_customer_sk.c_current_addr_sk.ca_city", "$ss_addr_sk.ca_city")),
			"c_last_name", "$ss_customer_sk.c_last_name",
			"c_first_name", "$ss_customer_sk.c_first_name",
			"bought_city", "$ss_addr_sk.ca_city",
			"ca_city", "$ss_customer_sk.c_current_addr_sk.ca_city",
			"ss_ticket_number", "$ss_ticket_number",
			"ss_customer_sk", "$ss_customer_sk.c_customer_sk",
			"ss_addr_sk", "$ss_addr_sk.ca_address_sk",
			"amt", "$ss_coupon_amt",
			"profit", "$ss_net_profit",
		)),
		bson.D("$match", bson.D("value", true)),
		bson.D("$group", bson.D(
			bson.IDKey, bson.D(
				"ss_ticket_number", "$ss_ticket_number",
				"ss_customer_sk", "$ss_customer_sk",
				"ss_addr_sk", "$ss_addr_sk",
				"ca_city", "$ca_city",
				"bought_city", "$bought_city",
				"c_last_name", "$c_last_name",
				"c_first_name", "$c_first_name",
			),
			"amt", bson.D("$sum", "$amt"),
			"profit", bson.D("$sum", "$profit"),
		)),
		bson.D("$project", bson.D(
			bson.IDKey, 0,
			"c_last_name", "$_id.c_last_name",
			"c_first_name", "$_id.c_first_name",
			"ca_city", "$_id.ca_city",
			"bought_city", "$_id.bought_city",
			"ss_ticket_number", "$_id.ss_ticket_number",
			"amt", 1,
			"profit", 1,
		)),
		bson.D("$sort", bson.D(
			"c_last_name", 1,
			"c_first_name", 1,
			"ca_city", 1,
			"bought_city", 1,
			"ss_ticket_number", 1,
		)),
		bson.D("$out", out),
	)
	return stages
}

// query50DenormPipeline reads the denormalized store_sales collection where
// the matching denormalized store_returns document is embedded under
// denorm.ReturnField.
func query50DenormPipeline(p Params, out string) []*bson.Doc {
	returnedDateSk := "$" + denorm.ReturnField + ".sr_returned_date_sk.d_date_sk"
	stages := []*bson.Doc{
		bson.D("$match", bson.D("$and", bson.A(
			bson.D(denorm.ReturnField+".sr_returned_date_sk.d_year", p.ReturnYear),
			bson.D(denorm.ReturnField+".sr_returned_date_sk.d_moy", p.ReturnMonth),
			bson.D("ss_store_sk.s_store_sk", bson.D("$exists", true)),
			bson.D("ss_sold_date_sk.d_date_sk", bson.D("$exists", true)),
		))),
		bson.D("$project", bson.D(
			"diff", bson.D("$subtract", bson.A(returnedDateSk, "$ss_sold_date_sk.d_date_sk")),
			"s_store_name", "$ss_store_sk.s_store_name",
			"s_company_id", "$ss_store_sk.s_company_id",
			"s_street_number", "$ss_store_sk.s_street_number",
			"s_street_name", "$ss_store_sk.s_street_name",
			"s_street_type", "$ss_store_sk.s_street_type",
			"s_suite_number", "$ss_store_sk.s_suite_number",
			"s_city", "$ss_store_sk.s_city",
			"s_county", "$ss_store_sk.s_county",
			"s_state", "$ss_store_sk.s_state",
			"s_zip", "$ss_store_sk.s_zip",
		)),
	}
	return append(stages, query50BucketStages(out)...)
}

// query50BucketStages groups day-difference buckets per store; shared by both
// data models once a "diff" field and flat s_* store fields exist.
func query50BucketStages(out string) []*bson.Doc {
	bucket := func(cond *bson.Doc) *bson.Doc {
		return bson.D("$sum", bson.D("$cond", bson.A(cond, 1, 0)))
	}
	return []*bson.Doc{
		bson.D("$group", bson.D(
			bson.IDKey, bson.D(
				"store", "$s_store_name",
				"company", "$s_company_id",
				"str_num", "$s_street_number",
				"str_name", "$s_street_name",
				"str_type", "$s_street_type",
				"suite_num", "$s_suite_number",
				"city", "$s_city",
				"county", "$s_county",
				"state", "$s_state",
				"zip", "$s_zip",
			),
			"30 days", bucket(bson.D("$lte", bson.A("$diff", 30))),
			"31-60 days", bucket(bson.D("$and", bson.A(
				bson.D("$gt", bson.A("$diff", 30)), bson.D("$lte", bson.A("$diff", 60))))),
			"61-90 days", bucket(bson.D("$and", bson.A(
				bson.D("$gt", bson.A("$diff", 60)), bson.D("$lte", bson.A("$diff", 90))))),
			"91-120 days", bucket(bson.D("$and", bson.A(
				bson.D("$gt", bson.A("$diff", 90)), bson.D("$lte", bson.A("$diff", 120))))),
			">120 days", bucket(bson.D("$gt", bson.A("$diff", 120))),
		)),
		bson.D("$project", bson.D(
			bson.IDKey, 0,
			"s_store_name", "$_id.store",
			"s_company_id", "$_id.company",
			"s_street_number", "$_id.str_num",
			"s_street_name", "$_id.str_name",
			"s_street_type", "$_id.str_type",
			"s_suite_number", "$_id.suite_num",
			"s_city", "$_id.city",
			"s_county", "$_id.county",
			"s_state", "$_id.state",
			"s_zip", "$_id.zip",
			"30 days", 1, "31-60 days", 1, "61-90 days", 1, "91-120 days", 1, ">120 days", 1,
		)),
		bson.D("$sort", bson.D(
			"s_store_name", 1, "s_company_id", 1, "s_street_number", 1, "s_street_name", 1,
			"s_street_type", 1, "s_suite_number", 1, "s_city", 1, "s_county", 1, "s_state", 1, "s_zip", 1,
		)),
		bson.D("$out", out),
	}
}

// shiftDate returns an ISO date days away from an ISO pivot date, using the
// generated calendar.
func shiftDate(iso string, days int) string {
	off, err := tpcds.OffsetForDate(iso)
	if err != nil {
		return iso
	}
	return tpcds.DateForOffset(off + days).Format("2006-01-02")
}
