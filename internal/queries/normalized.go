package queries

import (
	"fmt"
	"time"

	"docstore/internal/bson"
	"docstore/internal/denorm"
	"docstore/internal/driver"
	"docstore/internal/storage"
	"docstore/internal/translate"
)

// NormalizedPlan returns the Figure 4.8 translation of the query for the
// normalized data model. Query 50 joins two fact collections and does not fit
// the single-fact plan shape; it is executed by runQuery50Normalized instead,
// and NormalizedPlan reports ok=false for it.
func (q *Query) NormalizedPlan(p Params) (translate.Plan, bool) {
	switch q.ID {
	case 7:
		return query7NormalizedPlan(p), true
	case 21:
		return query21NormalizedPlan(p), true
	case 46:
		return query46NormalizedPlan(p), true
	default:
		return translate.Plan{}, false
	}
}

// RunNormalized executes the query against the normalized data model
// (Experiments 1, 2, 4 and 5).
func RunNormalized(store driver.Store, q *Query, p Params) ([]*bson.Doc, time.Duration, error) {
	start := time.Now()
	if q.ID == 50 {
		docs, err := runQuery50Normalized(store, p)
		if err != nil {
			return nil, 0, fmt.Errorf("queries: %s normalized: %w", q.Name, err)
		}
		return docs, time.Since(start), nil
	}
	plan, ok := q.NormalizedPlan(p)
	if !ok {
		return nil, 0, fmt.Errorf("queries: %s has no normalized plan", q.Name)
	}
	res, err := translate.Run(store, plan)
	if err != nil {
		return nil, 0, fmt.Errorf("queries: %s normalized: %w", q.Name, err)
	}
	return res.Docs, time.Since(start), nil
}

func query7NormalizedPlan(p Params) translate.Plan {
	return translate.Plan{
		Name: "query7",
		Fact: "store_sales",
		Filters: []translate.DimFilter{
			{
				Dimension: "customer_demographics", FKField: "ss_cdemo_sk", PKField: "cd_demo_sk",
				Where: bson.D(
					"cd_gender", p.Gender,
					"cd_marital_status", p.MaritalStatus,
					"cd_education_status", p.EducationStatus,
				),
			},
			{
				Dimension: "date_dim", FKField: "ss_sold_date_sk", PKField: "d_date_sk",
				Where: bson.D("d_year", p.SalesYear),
			},
			{
				Dimension: "promotion", FKField: "ss_promo_sk", PKField: "p_promo_sk",
				Where: bson.D("$or", bson.A(
					bson.D("p_channel_email", "N"),
					bson.D("p_channel_event", "N"),
				)),
			},
		},
		Embed: []denorm.Embedding{
			{Dimension: "item", FKField: "ss_item_sk", PKField: "i_item_sk"},
		},
		Aggregation: []*bson.Doc{
			query7GroupStage(),
			bson.D("$sort", bson.D(bson.IDKey, 1)),
			query7ProjectStage(),
		},
		Output: "query7_norm_output",
	}
}

func query21NormalizedPlan(p Params) translate.Plan {
	lo, hi := shiftDate(p.InventoryDate, -30), shiftDate(p.InventoryDate, +30)
	// The aggregation stages are the shared Query 21 tail (everything after
	// the predicate $match), minus the trailing $out which translate.Run adds.
	tail := query21Pipeline(p, "ignored", false)
	tail = tail[:len(tail)-1]
	return translate.Plan{
		Name: "query21",
		Fact: "inventory",
		Filters: []translate.DimFilter{
			{
				Dimension: "item", FKField: "inv_item_sk", PKField: "i_item_sk",
				Where: bson.D("i_current_price", bson.D("$gte", p.PriceMin, "$lte", p.PriceMax)),
			},
			{
				Dimension: "date_dim", FKField: "inv_date_sk", PKField: "d_date_sk",
				Where: bson.D("d_date", bson.D("$gte", lo, "$lte", hi)),
			},
		},
		Embed: []denorm.Embedding{
			{Dimension: "warehouse", FKField: "inv_warehouse_sk", PKField: "w_warehouse_sk"},
			{Dimension: "item", FKField: "inv_item_sk", PKField: "i_item_sk"},
			{Dimension: "date_dim", FKField: "inv_date_sk", PKField: "d_date_sk"},
		},
		Aggregation: tail,
		Output:      "query21_norm_output",
	}
}

func query46NormalizedPlan(p Params) translate.Plan {
	cities := make([]any, len(p.Cities))
	for i, c := range p.Cities {
		cities[i] = c
	}
	dows := make([]any, len(p.DOW))
	for i, d := range p.DOW {
		dows[i] = d
	}
	years := make([]any, len(p.Years))
	for i, y := range p.Years {
		years[i] = y
	}
	tail := query46Pipeline(p, "ignored", false)
	tail = tail[:len(tail)-1]
	return translate.Plan{
		Name: "query46",
		Fact: "store_sales",
		Filters: []translate.DimFilter{
			{
				Dimension: "store", FKField: "ss_store_sk", PKField: "s_store_sk",
				Where: bson.D("s_city", bson.D("$in", cities)),
			},
			{
				Dimension: "date_dim", FKField: "ss_sold_date_sk", PKField: "d_date_sk",
				Where: bson.D("d_dow", bson.D("$in", dows), "d_year", bson.D("$in", years)),
			},
			{
				Dimension: "household_demographics", FKField: "ss_hdemo_sk", PKField: "hd_demo_sk",
				Where: bson.D("$or", bson.A(
					bson.D("hd_dep_count", p.DepCount),
					bson.D("hd_vehicle_count", p.VehicleCount),
				)),
			},
		},
		Embed: []denorm.Embedding{
			{Dimension: "customer_address", FKField: "ss_addr_sk", PKField: "ca_address_sk"},
			{Dimension: "customer", FKField: "ss_customer_sk", PKField: "c_customer_sk"},
			// The customer's current address is one level deeper: embed the
			// address into the already-embedded customer document.
			{Dimension: "customer_address", FKField: "ss_customer_sk.c_current_addr_sk", PKField: "ca_address_sk"},
		},
		Aggregation: tail,
		Output:      "query46_norm_output",
	}
}

// runQuery50Normalized executes Query 50 against the normalized model. The
// query joins two fact collections (store_sales ⋈ store_returns), which the
// generic Figure 4.8 plan does not cover; the steps below follow the same
// predetermined order, treating the pre-filtered store_returns set as the
// driving side of the join:
//
//  1. filter date_dim on the return year/month and collect d_date_sk keys,
//  2. semi-join store_returns on sr_returned_date_sk with $in,
//  3. fetch the store_sales documents whose ticket numbers appear in those
//     returns and keep the ones matching a return on (ticket, item, customer),
//  4. write the joined documents (sale + sr_returned_date_sk) into an
//     intermediate collection, embed the store dimension, and aggregate the
//     day-difference buckets per store.
func runQuery50Normalized(store driver.Store, p Params) ([]*bson.Doc, error) {
	// Step 1: the d2 dimension filter.
	dates, err := store.Find("date_dim", bson.D("d_year", p.ReturnYear, "d_moy", p.ReturnMonth), storage.FindOptions{})
	if err != nil {
		return nil, err
	}
	dateKeys := make([]any, 0, len(dates))
	for _, d := range dates {
		if sk, ok := d.Get("d_date_sk"); ok {
			dateKeys = append(dateKeys, sk)
		}
	}

	// Step 2: returns in the target month.
	returns, err := store.Find("store_returns", bson.D("sr_returned_date_sk", bson.D("$in", dateKeys)), storage.FindOptions{})
	if err != nil {
		return nil, err
	}
	type joinKey struct{ ticket, item, customer string }
	keyOf := func(t, i, c any) joinKey {
		return joinKey{fmt.Sprintf("%v", t), fmt.Sprintf("%v", i), fmt.Sprintf("%v", c)}
	}
	returnByKey := make(map[joinKey]*bson.Doc, len(returns))
	ticketSet := make(map[string]bool)
	var tickets []any
	for _, r := range returns {
		t, _ := r.Get("sr_ticket_number")
		i, _ := r.Get("sr_item_sk")
		c, _ := r.Get("sr_customer_sk")
		returnByKey[keyOf(t, i, c)] = r
		ts := fmt.Sprintf("%v", t)
		if !ticketSet[ts] {
			ticketSet[ts] = true
			tickets = append(tickets, t)
		}
	}

	// Step 3: candidate sales by ticket number (the shard key of the sharded
	// experiments, which is what lets the router target this query), joined
	// in memory on the full (ticket, item, customer) key.
	sales, err := store.Find("store_sales", bson.D("ss_ticket_number", bson.D("$in", tickets)), storage.FindOptions{})
	if err != nil {
		return nil, err
	}
	intermediate := "store_sales_query50_intermediate"
	store.DropCollection(intermediate)
	var joined []*bson.Doc
	for _, s := range sales {
		t, _ := s.Get("ss_ticket_number")
		i, _ := s.Get("ss_item_sk")
		c, _ := s.Get("ss_customer_sk")
		r, ok := returnByKey[keyOf(t, i, c)]
		if !ok {
			continue
		}
		doc := s.Clone()
		doc.Delete(bson.IDKey)
		returnedSk, _ := r.Get("sr_returned_date_sk")
		doc.Set("sr_returned_date_sk", returnedSk)
		joined = append(joined, doc)
	}
	if len(joined) > 0 {
		if _, err := store.InsertMany(intermediate, joined); err != nil {
			return nil, err
		}
	}

	// Step 4: embed the store dimension and aggregate.
	if _, err := denorm.EmbedDocuments(store, intermediate, denorm.Embedding{
		Dimension: "store", FKField: "ss_store_sk", PKField: "s_store_sk",
	}); err != nil {
		return nil, err
	}
	stages := []*bson.Doc{
		bson.D("$project", bson.D(
			"diff", bson.D("$subtract", bson.A("$sr_returned_date_sk", "$ss_sold_date_sk")),
			"s_store_name", "$ss_store_sk.s_store_name",
			"s_company_id", "$ss_store_sk.s_company_id",
			"s_street_number", "$ss_store_sk.s_street_number",
			"s_street_name", "$ss_store_sk.s_street_name",
			"s_street_type", "$ss_store_sk.s_street_type",
			"s_suite_number", "$ss_store_sk.s_suite_number",
			"s_city", "$ss_store_sk.s_city",
			"s_county", "$ss_store_sk.s_county",
			"s_state", "$ss_store_sk.s_state",
			"s_zip", "$ss_store_sk.s_zip",
		)),
	}
	stages = append(stages, query50BucketStages("query50_norm_output")...)
	docs, err := store.Aggregate(intermediate, stages)
	if err != nil {
		return nil, err
	}
	store.DropCollection(intermediate)
	return docs, nil
}
