// Package queries defines the four TPC-DS data-mining queries the thesis
// benchmarks (Query 7, 21, 46 and 50): their SQL text (Figures 3.5–3.8),
// their feature profile (Table 3.5), the aggregation pipelines executed
// against the denormalized fact collections (Appendix B), and the translated
// plans executed against the normalized data model (Figure 4.8). Both
// execution paths are expressed over the driver.Store interface so the same
// query runs unchanged on the stand-alone server and on the sharded cluster.
package queries

import (
	"fmt"
)

// Features is the query-feature profile of Table 3.5.
type Features struct {
	Tables                int
	AggregationFunctions  int
	GroupOrderByClauses   int
	ConditionalConstructs int
	CorrelatedSubqueries  int
}

// Query is one benchmark query.
type Query struct {
	ID       int
	Name     string
	SQL      string
	Features Features
	// Fact is the denormalized fact collection the Appendix B pipeline reads.
	Fact string
	// OutputCollection names the $out target, following the thesis
	// ("query7_output").
	OutputCollection string
}

// Params carries the query predicate values. The thesis regenerates these per
// scale with dsqgen; the defaults below work for both generated scales of
// this reproduction and can be overridden for sensitivity/ablation runs.
type Params struct {
	// Query 7.
	Gender          string
	MaritalStatus   string
	EducationStatus string
	SalesYear       int
	// Query 21.
	InventoryDate string // pivot date; the query window spans ±30 days around it
	PriceMin      float64
	PriceMax      float64
	// Query 46.
	Cities       []string
	DOW          []int
	Years        []int
	DepCount     int
	VehicleCount int
	// Query 50.
	ReturnYear  int
	ReturnMonth int
}

// DefaultParams returns the predicate values of the thesis' 1 GB query set
// (Figures 3.5–3.8).
func DefaultParams() Params {
	return Params{
		Gender:          "M",
		MaritalStatus:   "M",
		EducationStatus: "4 yr Degree",
		SalesYear:       2001,
		InventoryDate:   "2002-05-29",
		PriceMin:        0.99,
		PriceMax:        1.49,
		Cities:          []string{"Midway", "Fairview"},
		DOW:             []int{6, 0},
		Years:           []int{1998, 1999, 2000},
		DepCount:        2,
		VehicleCount:    3,
		ReturnYear:      1998,
		ReturnMonth:     10,
	}
}

// All returns the four benchmark queries in id order.
func All() []*Query {
	return []*Query{Query7(), Query21(), Query46(), Query50()}
}

// ByID returns the query with the given id, or nil.
func ByID(id int) *Query {
	for _, q := range All() {
		if q.ID == id {
			return q
		}
	}
	return nil
}

// MustByID returns the query with the given id or panics.
func MustByID(id int) *Query {
	q := ByID(id)
	if q == nil {
		panic(fmt.Sprintf("queries: unknown query %d", id))
	}
	return q
}

// Query7 is TPC-DS Query 7 (Figure 3.5): average quantity, list price, coupon
// amount and sales price per item for male, married, degree-holding customers
// exposed to email or event promotions during one year.
func Query7() *Query {
	return &Query{
		ID:   7,
		Name: "query7",
		Fact: "store_sales",
		SQL: `select i_item_id,
       avg(ss_quantity) agg1, avg(ss_list_price) agg2,
       avg(ss_coupon_amt) agg3, avg(ss_sales_price) agg4
from store_sales, customer_demographics, date_dim, item, promotion
where ss_sold_date_sk = d_date_sk and ss_item_sk = i_item_sk
  and ss_cdemo_sk = cd_demo_sk and ss_promo_sk = p_promo_sk
  and cd_gender = 'M' and cd_marital_status = 'M'
  and cd_education_status = '4 yr Degree'
  and (p_channel_email = 'N' or p_channel_event = 'N')
  and d_year = 2001
group by i_item_id
order by i_item_id`,
		Features:         Features{Tables: 5, AggregationFunctions: 4, GroupOrderByClauses: 1},
		OutputCollection: "query7_output",
	}
}

// Query21 is TPC-DS Query 21 (Figure 3.6): warehouse inventory before and
// after a pivot date for items in a price band, keeping warehouses whose
// after/before ratio lies between 2/3 and 3/2.
func Query21() *Query {
	return &Query{
		ID:   21,
		Name: "query21",
		Fact: "inventory",
		SQL: `select * from (
  select w_warehouse_name, i_item_id,
         sum(case when cast(d_date as date) < cast('2002-05-29' as date) then inv_quantity_on_hand else 0 end) as inv_before,
         sum(case when cast(d_date as date) >= cast('2002-05-29' as date) then inv_quantity_on_hand else 0 end) as inv_after
  from inventory, warehouse, item, date_dim
  where i_current_price between 0.99 and 1.49
    and i_item_sk = inv_item_sk and inv_warehouse_sk = w_warehouse_sk and inv_date_sk = d_date_sk
    and d_date between (cast('2002-05-29' as date) - 30 days) and (cast('2002-05-29' as date) + 30 days)
  group by w_warehouse_name, i_item_id) x
where (case when inv_before > 0 then inv_after / inv_before else null end) between 2.0/3.0 and 3.0/2.0
order by w_warehouse_name, i_item_id`,
		Features:         Features{Tables: 4, AggregationFunctions: 2, GroupOrderByClauses: 1, ConditionalConstructs: 3},
		OutputCollection: "query21_output",
	}
}

// Query46 is TPC-DS Query 46 (Figure 3.7): weekend purchases in selected
// store cities by households with a given dependent or vehicle count, where
// the customer's current city differs from the city they bought in.
func Query46() *Query {
	return &Query{
		ID:   46,
		Name: "query46",
		Fact: "store_sales",
		SQL: `select c_last_name, c_first_name, ca_city, bought_city, ss_ticket_number, amt, profit
from (select ss_ticket_number, ss_customer_sk, ca_city bought_city,
             sum(ss_coupon_amt) amt, sum(ss_net_profit) profit
      from store_sales, date_dim, store, household_demographics, customer_address
      where store_sales.ss_sold_date_sk = date_dim.d_date_sk
        and store_sales.ss_store_sk = store.s_store_sk
        and store_sales.ss_hdemo_sk = household_demographics.hd_demo_sk
        and store_sales.ss_addr_sk = customer_address.ca_address_sk
        and (household_demographics.hd_dep_count = 2 or household_demographics.hd_vehicle_count = 3)
        and date_dim.d_dow in (6,0) and date_dim.d_year in (1998,1999,2000)
        and store.s_city in ('Midway','Fairview')
      group by ss_ticket_number, ss_customer_sk, ss_addr_sk, ca_city) dn, customer, customer_address current_addr
where ss_customer_sk = c_customer_sk
  and customer.c_current_addr_sk = current_addr.ca_address_sk
  and current_addr.ca_city <> bought_city
order by c_last_name, c_first_name, ca_city, bought_city, ss_ticket_number`,
		Features:         Features{Tables: 6, AggregationFunctions: 2, GroupOrderByClauses: 1, CorrelatedSubqueries: 1},
		OutputCollection: "query46_output",
	}
}

// Query50 is TPC-DS Query 50 (Figure 3.8): for each store, how many returned
// sales came back within 30/60/90/120/more days, for returns in one month.
func Query50() *Query {
	return &Query{
		ID:   50,
		Name: "query50",
		Fact: "store_sales",
		SQL: `select s_store_name, s_company_id, s_street_number, s_street_name, s_street_type,
       s_suite_number, s_city, s_county, s_state, s_zip,
       sum(case when (sr_returned_date_sk - ss_sold_date_sk <= 30) then 1 else 0 end) as "30 days",
       sum(case when (sr_returned_date_sk - ss_sold_date_sk > 30) and (sr_returned_date_sk - ss_sold_date_sk <= 60) then 1 else 0 end) as "31-60 days",
       sum(case when (sr_returned_date_sk - ss_sold_date_sk > 60) and (sr_returned_date_sk - ss_sold_date_sk <= 90) then 1 else 0 end) as "61-90 days",
       sum(case when (sr_returned_date_sk - ss_sold_date_sk > 90) and (sr_returned_date_sk - ss_sold_date_sk <= 120) then 1 else 0 end) as "91-120 days",
       sum(case when (sr_returned_date_sk - ss_sold_date_sk > 120) then 1 else 0 end) as ">120 days"
from store_sales, store_returns, store, date_dim d1, date_dim d2
where d2.d_year = 1998 and d2.d_moy = 10
  and ss_ticket_number = sr_ticket_number and ss_item_sk = sr_item_sk
  and ss_sold_date_sk = d1.d_date_sk and sr_returned_date_sk = d2.d_date_sk
  and ss_customer_sk = sr_customer_sk and ss_store_sk = s_store_sk
group by s_store_name, s_company_id, s_street_number, s_street_name, s_street_type,
         s_suite_number, s_city, s_county, s_state, s_zip
order by s_store_name, s_company_id, s_street_number, s_street_name, s_street_type,
         s_suite_number, s_city`,
		Features:         Features{Tables: 5, AggregationFunctions: 5, GroupOrderByClauses: 1, ConditionalConstructs: 5},
		OutputCollection: "query50_output",
	}
}
