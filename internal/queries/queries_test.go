package queries

import (
	"strings"
	"testing"

	"docstore/internal/bson"
	"docstore/internal/denorm"
	"docstore/internal/driver"
	"docstore/internal/migrate"
	"docstore/internal/mongod"
	"docstore/internal/tpcds"
)

func TestCatalogAndFeaturesMatchTable35(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("expected 4 queries, got %d", len(all))
	}
	wantIDs := []int{7, 21, 46, 50}
	wantTables := []int{5, 4, 6, 5}
	wantAggs := []int{4, 2, 2, 5}
	wantGroup := []int{1, 1, 1, 1}
	wantCond := []int{0, 3, 0, 5}
	wantSub := []int{0, 0, 1, 0}
	for i, q := range all {
		if q.ID != wantIDs[i] {
			t.Fatalf("query order = %v", q.ID)
		}
		f := q.Features
		if f.Tables != wantTables[i] || f.AggregationFunctions != wantAggs[i] ||
			f.GroupOrderByClauses != wantGroup[i] || f.ConditionalConstructs != wantCond[i] ||
			f.CorrelatedSubqueries != wantSub[i] {
			t.Errorf("query %d features = %+v", q.ID, f)
		}
		if q.SQL == "" || q.Fact == "" || q.OutputCollection == "" || q.Name == "" {
			t.Errorf("query %d metadata incomplete", q.ID)
		}
		// Each query meets at least 3 of the selection criteria of §3.4.
		met := 0
		if f.Tables >= 4 {
			met++
		}
		if f.AggregationFunctions >= 1 {
			met++
		}
		if f.GroupOrderByClauses >= 1 {
			met++
		}
		if f.ConditionalConstructs >= 1 {
			met++
		}
		if f.CorrelatedSubqueries >= 1 {
			met++
		}
		if met < 3 {
			t.Errorf("query %d meets only %d selection criteria", q.ID, met)
		}
	}
	if ByID(7) == nil || ByID(99) != nil {
		t.Fatalf("ByID broken")
	}
	if MustByID(21).ID != 21 {
		t.Fatalf("MustByID broken")
	}
	p := DefaultParams()
	if p.SalesYear != 2001 || p.InventoryDate != "2002-05-29" || len(p.Cities) != 2 || p.ReturnMonth != 10 {
		t.Fatalf("DefaultParams = %+v", p)
	}
}

func TestMustByIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	MustByID(3)
}

func TestDenormalizedPipelinesParseAndTargetOutputs(t *testing.T) {
	p := DefaultParams()
	for _, q := range All() {
		stages := q.DenormalizedPipeline(p)
		if len(stages) < 4 {
			t.Fatalf("query %d pipeline has %d stages", q.ID, len(stages))
		}
		// First stage is a $match (predicates), last is $out to the thesis'
		// output collection name.
		if !stages[0].Has("$match") {
			t.Errorf("query %d pipeline does not start with $match", q.ID)
		}
		outTarget, ok := stages[len(stages)-1].Get("$out")
		if !ok || outTarget != q.OutputCollection {
			t.Errorf("query %d pipeline $out = %v", q.ID, outTarget)
		}
		// Every pipeline carries a $group and a $sort (Table 3.5: one
		// group-by/order-by clause per query).
		names := map[string]bool{}
		for _, s := range stages {
			for _, f := range s.Fields() {
				names[f.Key] = true
			}
		}
		if !names["$group"] || !names["$sort"] {
			t.Errorf("query %d pipeline stages = %v", q.ID, names)
		}
	}
	if (&Query{ID: 99}).DenormalizedPipeline(p) != nil {
		t.Fatalf("unknown query should have no pipeline")
	}
}

func TestNormalizedPlansShape(t *testing.T) {
	p := DefaultParams()
	for _, id := range []int{7, 21, 46} {
		q := MustByID(id)
		plan, ok := q.NormalizedPlan(p)
		if !ok {
			t.Fatalf("query %d should have a normalized plan", id)
		}
		if plan.Fact == "" || len(plan.Filters) == 0 || len(plan.Embed) == 0 || len(plan.Aggregation) == 0 {
			t.Fatalf("query %d plan incomplete: %+v", id, plan)
		}
		if plan.Output == "" || !strings.Contains(plan.Output, "norm") {
			t.Fatalf("query %d plan output = %q", id, plan.Output)
		}
		// The aggregation must not carry its own $out; the runner adds one.
		for _, s := range plan.Aggregation {
			if s.Has("$out") {
				t.Fatalf("query %d aggregation should not contain $out", id)
			}
		}
	}
	if _, ok := MustByID(50).NormalizedPlan(p); ok {
		t.Fatalf("query 50 is handled by the custom runner, not a generic plan")
	}
}

// TestQueriesAgainstHandBuiltDataset runs every query both ways on a tiny
// hand-loaded dataset and checks the two data models agree.
func TestQueriesAgainstHandBuiltDataset(t *testing.T) {
	scale := tpcds.ScaleSmall.WithDivisor(8000)
	gen := tpcds.NewGenerator(scale, 3)
	params := DefaultParams()

	normalized := driver.NewStandalone(mongod.NewServer(mongod.Options{}).Database("norm"))
	if _, err := migrate.LoadDataset(normalized, gen); err != nil {
		t.Fatal(err)
	}
	if err := migrate.EnsureQueryIndexes(normalized, gen.Schema()); err != nil {
		t.Fatal(err)
	}

	denormStore := driver.NewStandalone(mongod.NewServer(mongod.Options{}).Database("denorm"))
	if _, err := migrate.LoadDataset(denormStore, gen); err != nil {
		t.Fatal(err)
	}
	if err := migrate.EnsureQueryIndexes(denormStore, gen.Schema()); err != nil {
		t.Fatal(err)
	}
	if _, err := denorm.DenormalizeDataset(denormStore, gen.Schema()); err != nil {
		t.Fatal(err)
	}
	if err := denorm.EnsureDenormalizedIndexes(denormStore); err != nil {
		t.Fatal(err)
	}

	for _, q := range All() {
		normDocs, normTime, err := RunNormalized(normalized, q, params)
		if err != nil {
			t.Fatalf("query %d normalized: %v", q.ID, err)
		}
		denormDocs, denormTime, err := RunDenormalized(denormStore, q, params)
		if err != nil {
			t.Fatalf("query %d denormalized: %v", q.ID, err)
		}
		if normTime <= 0 || denormTime <= 0 {
			t.Fatalf("query %d durations not measured", q.ID)
		}
		if len(normDocs) != len(denormDocs) {
			t.Fatalf("query %d: normalized %d docs, denormalized %d docs", q.ID, len(normDocs), len(denormDocs))
		}
		for i := range normDocs {
			if !normDocs[i].EqualUnordered(denormDocs[i]) {
				t.Fatalf("query %d row %d differs:\n  normalized:   %s\n  denormalized: %s",
					q.ID, i, normDocs[i], denormDocs[i])
			}
		}
		// The output collections were materialized via $out on both paths.
		if n, _ := denormStore.Count(q.OutputCollection, nil); n != len(denormDocs) {
			t.Errorf("query %d denormalized output collection has %d docs, want %d", q.ID, n, len(denormDocs))
		}
	}

	// Running a query with no normalized plan through RunNormalized errors.
	if _, _, err := RunNormalized(normalized, &Query{ID: 99, Name: "q99"}, params); err == nil {
		t.Fatalf("unknown query should fail")
	}
	// A bad pipeline surfaces an error from RunDenormalized.
	if _, _, err := RunDenormalized(denormStore, &Query{ID: 99, Name: "q99", Fact: "store_sales"}, params); err == nil {
		t.Fatalf("query without a pipeline should fail")
	}
}

func TestShiftDate(t *testing.T) {
	if got := shiftDate("2002-05-29", -30); got != "2002-04-29" {
		t.Fatalf("shiftDate -30 = %s", got)
	}
	if got := shiftDate("2002-05-29", 30); got != "2002-06-28" {
		t.Fatalf("shiftDate +30 = %s", got)
	}
	if got := shiftDate("garbage", 5); got != "garbage" {
		t.Fatalf("bad date should pass through, got %s", got)
	}
}

func TestQuery50BucketStagesCoverAllBuckets(t *testing.T) {
	// Feed synthetic diffs through the shared bucket stages and verify each
	// lands in the right bucket.
	docs := []*bson.Doc{
		bson.D("diff", 10, "s_store_name", "able", "s_company_id", 1, "s_street_number", "1",
			"s_street_name", "Main", "s_street_type", "St", "s_suite_number", "1", "s_city", "Midway",
			"s_county", "W", "s_state", "OH", "s_zip", "45040"),
		bson.D("diff", 45, "s_store_name", "able", "s_company_id", 1, "s_street_number", "1",
			"s_street_name", "Main", "s_street_type", "St", "s_suite_number", "1", "s_city", "Midway",
			"s_county", "W", "s_state", "OH", "s_zip", "45040"),
		bson.D("diff", 75, "s_store_name", "able", "s_company_id", 1, "s_street_number", "1",
			"s_street_name", "Main", "s_street_type", "St", "s_suite_number", "1", "s_city", "Midway",
			"s_county", "W", "s_state", "OH", "s_zip", "45040"),
		bson.D("diff", 100, "s_store_name", "able", "s_company_id", 1, "s_street_number", "1",
			"s_street_name", "Main", "s_street_type", "St", "s_suite_number", "1", "s_city", "Midway",
			"s_county", "W", "s_state", "OH", "s_zip", "45040"),
		bson.D("diff", 500, "s_store_name", "able", "s_company_id", 1, "s_street_number", "1",
			"s_street_name", "Main", "s_street_type", "St", "s_suite_number", "1", "s_city", "Midway",
			"s_county", "W", "s_state", "OH", "s_zip", "45040"),
	}
	store := driver.NewStandalone(mongod.NewServer(mongod.Options{}).Database("t"))
	if _, err := store.InsertMany("joined", docs); err != nil {
		t.Fatal(err)
	}
	out, err := store.Aggregate("joined", query50BucketStages("bucket_out"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("groups = %d", len(out))
	}
	for _, bucket := range []string{"30 days", "31-60 days", "61-90 days", "91-120 days", ">120 days"} {
		if v, _ := out[0].Get(bucket); v != int64(1) {
			t.Errorf("bucket %q = %v, want 1", bucket, v)
		}
	}
}
