package wire

import (
	"strings"
	"testing"
	"time"

	"docstore/internal/bson"
	"docstore/internal/mongod"
	"docstore/internal/mongos"
	"docstore/internal/sharding"
	"docstore/internal/storage"
	"docstore/internal/trace"
	"docstore/internal/wal"
)

// TestFindAtVersionOverTheWire drives the read-at-version session over a
// real socket: a client anchors a committed version, keeps reading it while
// another client's updates land, and gets a loud failure once the version
// is no longer retained.
func TestFindAtVersionOverTheWire(t *testing.T) {
	srv, c := startServer(t)
	for i := 0; i < 10; i++ {
		if err := c.Insert("db", "c", bson.D(bson.IDKey, i, "k", i%2, "state", "before")); err != nil {
			t.Fatal(err)
		}
	}

	// Anchor: hold a cursor open at the current version (the shell does the
	// same with an un-drained batched find).
	coll := srv.backend.Database("db").Collection("c")
	anchor, err := coll.FindCursor(nil, storage.FindOptions{BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer anchor.Close()
	v := anchor.Plan().SnapshotVersion

	if _, err := c.Update("db", "c", bson.D("k", 1), bson.D("$set", bson.D("state", "after")), true, false); err != nil {
		t.Fatal(err)
	}

	pinned, err := c.FindAtVersion("db", "c", bson.D("k", 1), nil, v, 0)
	if err != nil {
		t.Fatalf("FindAtVersion: %v", err)
	}
	if len(pinned) != 5 {
		t.Fatalf("pinned read returned %d docs, want 5", len(pinned))
	}
	for _, d := range pinned {
		if state, _ := d.Get("state"); state != "before" {
			t.Fatalf("pinned read leaked post-anchor state: %s", d)
		}
	}
	current, err := c.Find("db", "c", bson.D("k", 1), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range current {
		if state, _ := d.Get("state"); state != "after" {
			t.Fatalf("current read missed the update: %s", d)
		}
	}

	// A version the engine does not track fails the request instead of
	// silently reading something else.
	if _, err := c.FindAtVersion("db", "c", nil, nil, 1<<40, 0); err == nil || !strings.Contains(err.Error(), "not retained") {
		t.Fatalf("untracked version read: %v, want a not-retained error", err)
	}
}

// TestAtVersionPlanSymmetryOverTheWire is the explain-symmetry contract at
// the wire layer: a find pinned to an old version reports — through the
// storage.plan span the tracer retains — the pinned snapshot version and
// the index it planned against, proving the plan came from that version's
// frozen index set rather than the current one.
func TestAtVersionPlanSymmetryOverTheWire(t *testing.T) {
	srv := NewServer(mongod.NewServer(mongod.Options{Name: "traced"}))
	srv.SetTracer(trace.New(trace.Options{SampleRate: 1}))
	t.Cleanup(func() { srv.Close() })

	for i := 0; i < 8; i++ {
		if resp := srv.Handle(&Request{Op: OpInsert, DB: "db", Collection: "c", Doc: bson.D(bson.IDKey, i, "k", i)}); resp.Error != "" {
			t.Fatalf("seed: %s", resp.Error)
		}
	}
	if resp := srv.Handle(&Request{Op: OpEnsureIndex, DB: "db", Collection: "c", Keys: bson.D("k", 1)}); resp.Error != "" {
		t.Fatalf("ensureIndex: %s", resp.Error)
	}

	coll := srv.backend.Database("db").Collection("c")
	anchor, err := coll.FindCursor(nil, storage.FindOptions{BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer anchor.Close()
	v := anchor.Plan().SnapshotVersion

	// Writes move the current version past the anchor.
	if resp := srv.Handle(&Request{Op: OpInsert, DB: "db", Collection: "c", Doc: bson.D(bson.IDKey, 100, "k", 100)}); resp.Error != "" {
		t.Fatalf("post-anchor insert: %s", resp.Error)
	}

	resp := srv.Handle(&Request{Op: OpFind, DB: "db", Collection: "c", Filter: bson.D("k", 3), AtVersion: v})
	if resp.Error != "" {
		t.Fatalf("at-version find: %s", resp.Error)
	}
	if resp.N != 1 {
		t.Fatalf("at-version find returned %d docs, want 1", resp.N)
	}

	views := srv.Tracer().Traces(1)
	if len(views) != 1 || views[0].Name != "wire.find" {
		t.Fatalf("latest trace = %+v, want wire.find", views)
	}
	plan := views[0].Find("storage.plan")
	if plan == nil {
		t.Fatalf("storage.plan missing from at-version find trace")
	}
	if idx, _ := plan.Attr("index"); idx != "k_1" {
		t.Fatalf("plan index attr = %v, want k_1", idx)
	}
	if sv, _ := plan.Attr("snapshotVersion"); sv != v {
		t.Fatalf("plan snapshotVersion attr = %v, want the pinned version %d", sv, v)
	}
}

// TestCheckpointOpOverTheWire exercises the checkpoint request against a
// stand-alone durable server: the response carries the capture LSN and
// collection count, an immediately repeated checkpoint reports itself
// skipped, and a non-durable server refuses.
func TestCheckpointOpOverTheWire(t *testing.T) {
	backend := mongod.NewServer(mongod.Options{Name: "durable"})
	if _, err := backend.EnableDurability(mongod.Durability{Dir: t.TempDir(), Sync: wal.SyncNone}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { backend.CloseDurability() })
	srv := NewServer(backend)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	if err := c.Insert("db", "a", bson.D(bson.IDKey, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("db", "b", bson.D(bson.IDKey, 1)); err != nil {
		t.Fatal(err)
	}
	res, err := c.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if lsn, _ := bson.AsInt(res.GetOr("lsn", 0)); lsn == 0 {
		t.Fatalf("checkpoint result lsn = %s", res)
	}
	if n, _ := bson.AsInt(res.GetOr("collections", 0)); n != 2 {
		t.Fatalf("checkpoint result collections = %s, want 2", res)
	}
	// Nothing committed since: the next checkpoint is free and says so.
	res, err = c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !bson.Truthy(res.GetOr("skipped", false)) {
		t.Fatalf("idle re-checkpoint result = %s, want skipped", res)
	}

	// A server without durability refuses rather than pretending.
	_, plain := startServer(t)
	if _, err := plain.Checkpoint(); err == nil || !strings.Contains(err.Error(), "durability") {
		t.Fatalf("checkpoint without durability: %v, want a durability error", err)
	}
}

// TestRoutedClusterOverTheWire turns a wire server into the mongos role
// with SetRouter and drives the sharded surface end to end over a socket:
// shardCollection, fanned-out writes and reads, the shard-union collection
// listing, and a cluster-consistent checkpoint reporting every shard.
func TestRoutedClusterOverTheWire(t *testing.T) {
	router := mongos.NewRouter(sharding.NewConfigServer(), mongos.Options{Parallel: true})
	for _, name := range []string{"s0", "s1"} {
		shard := mongod.NewServer(mongod.Options{Name: name})
		if _, err := shard.EnableDurability(mongod.Durability{Dir: t.TempDir(), Sync: wal.SyncNone}); err != nil {
			t.Fatal(err)
		}
		router.AddShard(name, shard)
	}
	srv := NewServer(mongod.NewServer(mongod.Options{Name: "router-front"}))
	srv.SetRouter(router)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	if err := c.ShardCollection("db", "sales", bson.D("k", "hashed")); err != nil {
		t.Fatalf("shardCollection: %v", err)
	}
	docs := make([]*bson.Doc, 40)
	for i := range docs {
		docs[i] = bson.D(bson.IDKey, i, "k", i)
	}
	if n, err := c.InsertMany("db", "sales", docs); err != nil || n != 40 {
		t.Fatalf("InsertMany over router = %d, %v", n, err)
	}
	// Both shards hold a piece: the writes really fanned out.
	for _, name := range router.ShardNames() {
		if got := router.Shard(name).Database("db").Collection("sales").Count(); got == 0 || got == 40 {
			t.Fatalf("shard %s holds %d docs, want a proper split", name, got)
		}
	}
	if n, err := c.Count("db", "sales", bson.D("k", bson.D("$gte", 20))); err != nil || n != 20 {
		t.Fatalf("routed count = %d, %v", n, err)
	}
	got, err := c.Find("db", "sales", nil, bson.D("k", -1), 3)
	if err != nil || len(got) != 3 {
		t.Fatalf("routed sorted find: %v, %v", got, err)
	}
	if k, _ := bson.AsInt(got[0].GetOr("k", 0)); k != 39 {
		t.Fatalf("routed merge-sort returned %s first", got[0])
	}
	colls, err := c.ListCollections("db")
	if err != nil || len(colls) != 1 || colls[0] != "sales" {
		t.Fatalf("routed listCollections = %v, %v", colls, err)
	}

	res, err := c.Checkpoint()
	if err != nil {
		t.Fatalf("cluster checkpoint: %v", err)
	}
	shardsDoc, ok := res.GetOr("shards", nil).(*bson.Doc)
	if !ok {
		t.Fatalf("cluster checkpoint result = %s, want a shards document", res)
	}
	for _, name := range router.ShardNames() {
		entry, ok := shardsDoc.GetOr(name, nil).(*bson.Doc)
		if !ok {
			t.Fatalf("cluster checkpoint missing shard %s: %s", name, res)
		}
		if lsn, _ := bson.AsInt(entry.GetOr("lsn", 0)); lsn == 0 {
			t.Fatalf("shard %s checkpoint lsn = %s", name, entry)
		}
	}

	// shardCollection demands a key document.
	if err := c.ShardCollection("db", "other", nil); err == nil {
		t.Fatalf("shardCollection without keys should fail")
	}
}
