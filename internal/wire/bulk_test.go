package wire

import (
	"testing"
	"time"

	"docstore/internal/bson"
	"docstore/internal/mongod"
)

// TestBulkWriteOverTheWire exercises the bulkWrite op end to end over TCP:
// a mixed batch, the ordered flag, and the write-error array.
func TestBulkWriteOverTheWire(t *testing.T) {
	backend := mongod.NewServer(mongod.Options{})
	srv := NewServer(backend)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	res, err := client.BulkWrite("db", "c", []*bson.Doc{
		BulkInsertOp(bson.D(bson.IDKey, 1, "v", 1)),
		BulkInsertOp(bson.D(bson.IDKey, 2, "v", 2)),
		BulkUpdateOp(bson.D(bson.IDKey, 1), bson.D("$set", bson.D("v", 10)), false, false),
		BulkDeleteOp(bson.D(bson.IDKey, 2), false),
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 2 || res.Matched != 1 || res.Modified != 1 || res.Deleted != 1 || len(res.WriteErrors) != 0 {
		t.Fatalf("result = %+v", res)
	}
	if len(res.InsertedIDs) != 4 || res.InsertedIDs[0] == nil || res.InsertedIDs[2] != nil {
		t.Fatalf("insertedIds = %v", res.InsertedIDs)
	}

	// Unordered: the duplicate is reported in writeErrors, later ops run.
	res, err = client.BulkWrite("db", "c", []*bson.Doc{
		BulkInsertOp(bson.D(bson.IDKey, 1)), // duplicate
		BulkInsertOp(bson.D(bson.IDKey, 3)),
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 1 || len(res.WriteErrors) != 1 || res.WriteErrors[0].Index != 0 || res.WriteErrors[0].Message == "" {
		t.Fatalf("unordered result = %+v", res)
	}

	// Ordered: the batch stops at the duplicate.
	res, err = client.BulkWrite("db", "c", []*bson.Doc{
		BulkInsertOp(bson.D(bson.IDKey, 4)),
		BulkInsertOp(bson.D(bson.IDKey, 1)), // duplicate
		BulkInsertOp(bson.D(bson.IDKey, 5)),
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 1 || res.Attempted != 2 || len(res.WriteErrors) != 1 || res.WriteErrors[0].Index != 1 {
		t.Fatalf("ordered result = %+v", res)
	}
	if n, err := client.Count("db", "c", nil); err != nil || n != 3 { // ids 1, 3, 4
		t.Fatalf("count = %d, %v", n, err)
	}

	// An upsert that matches nothing reports its created _id through the
	// aligned upsertedIds array.
	res, err = client.BulkWrite("db", "c", []*bson.Doc{
		BulkInsertOp(bson.D(bson.IDKey, 6)),
		BulkUpdateOp(bson.D(bson.IDKey, 7), bson.D("$set", bson.D("v", 70)), false, true),
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Upserted != 1 || len(res.UpsertedIDs) != 2 || res.UpsertedIDs[0] != nil || res.UpsertedIDs[1] == nil {
		t.Fatalf("upsert result = %+v", res)
	}

	// A malformed op is a request error, not a write error.
	if _, err := client.BulkWrite("db", "c", []*bson.Doc{bson.D("frobnicate", 1)}, false); err == nil {
		t.Fatalf("malformed op must fail the request")
	}
}
