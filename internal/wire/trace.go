package wire

import (
	"strings"
	"time"

	"docstore/internal/bson"
	"docstore/internal/metrics"
	"docstore/internal/trace"
)

// Prometheus metric family names the wire layer exports; the mongod layer
// exports the matching docstore_mongod_* families.
const (
	metricRequestsTotal   = "docstore_wire_requests_total"
	metricRequestErrors   = "docstore_wire_request_errors_total"
	metricRequestDuration = "docstore_wire_request_duration_seconds"
)

// knownWireOps are the protocol ops, registered eagerly at construction so
// a /metrics scrape sees every family and series before traffic; unknown
// ops record under "other".
var knownWireOps = []string{
	OpPing, OpInsert, OpInsertMany, OpBulkWrite, OpFind, OpCount, OpUpdate,
	OpDelete, OpAggregate, OpWatch, OpGetMore, OpKillCursors, OpEnsureIndex,
	OpDrop, OpListColls, OpStats, OpCurrentOp, OpGetTraces, OpGetExemplars,
	"other",
}

// wireMetrics holds the per-op request counters and latency histograms.
// The maps are built once and never mutated, so the request path reads
// them lock-free.
type wireMetrics struct {
	registry *metrics.Registry
	counts   map[string]*metrics.Counter
	errors   map[string]*metrics.Counter
	hists    map[string]*metrics.Histogram
}

func newWireMetrics() wireMetrics {
	wm := wireMetrics{
		registry: metrics.NewRegistry(),
		counts:   make(map[string]*metrics.Counter, len(knownWireOps)),
		errors:   make(map[string]*metrics.Counter, len(knownWireOps)),
		hists:    make(map[string]*metrics.Histogram, len(knownWireOps)),
	}
	for _, op := range knownWireOps {
		wm.counts[op] = wm.registry.Counter(metricRequestsTotal, "wire requests handled", "op", op)
		wm.errors[op] = wm.registry.Counter(metricRequestErrors, "wire requests that returned an error", "op", op)
		wm.hists[op] = wm.registry.Histogram(metricRequestDuration, "wire request latency", "op", op)
	}
	return wm
}

// observe records one handled request. traceID, when non-empty, is the ID
// of a trace guaranteed to be retained (the request's root span was sampled
// at start); the latency histogram keeps it as the bucket's exemplar so the
// /metrics exposition links latency outliers to queryable traces.
func (wm *wireMetrics) observe(op string, elapsed time.Duration, failed bool, traceID string) {
	if _, ok := wm.counts[op]; !ok {
		op = "other"
	}
	wm.counts[op].Inc()
	if failed {
		wm.errors[op].Inc()
	}
	wm.hists[op].ObserveExemplar(elapsed, traceID)
}

// SetTracer attaches a tracer: every request gets a root span (child spans
// accumulate as it descends the stack), currentOp lists in-flight requests,
// and getTraces serves the completed ring. Call before the server starts
// handling requests; a nil tracer (the default) disables tracing entirely.
func (s *Server) SetTracer(t *trace.Tracer) {
	s.tracer = t
	if t == nil {
		return
	}
	s.wm.registry.AddGaugeSource("docstore_trace", func() []metrics.Gauge {
		st := t.Stats()
		return []metrics.Gauge{
			{Name: "spans-started", Value: st.Started},
			{Name: "spans-sampled", Value: st.Sampled},
			{Name: "spans-slow", Value: st.Slow},
			{Name: "traces-retained", Value: st.Retained},
			{Name: "traces-dropped", Value: st.Dropped},
			{Name: "ops-in-flight", Value: int64(st.InFlight)},
		}
	})
}

// Tracer returns the attached tracer (nil when tracing is off).
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// Metrics returns the wire layer's metric registry: per-op request
// counters, error counters and latency histograms, plus the tracer's
// activity gauges. docstored merges it with the mongod registry on
// -metrics-addr.
func (s *Server) Metrics() *metrics.Registry { return s.wm.registry }

// traced reports whether the op gets a root span. Introspection ops are
// excluded so currentOp never lists itself and the trace ring is not
// churned by the observer.
func traced(op string) bool {
	return op != OpCurrentOp && op != OpGetTraces && op != OpGetExemplars && op != OpPing
}

// filterViews applies the currentOp/getTraces request filters: a root-name
// prefix and a minimum duration (elapsed-so-far for in-flight spans).
func filterViews(views []trace.View, opName string, minDuration time.Duration) []trace.View {
	if opName == "" && minDuration <= 0 {
		return views
	}
	out := views[:0:0]
	for i := range views {
		if opName != "" && !strings.HasPrefix(views[i].Name, opName) {
			continue
		}
		if minDuration > 0 && views[i].Duration < minDuration {
			continue
		}
		out = append(out, views[i])
	}
	return out
}

// exemplarDocs renders histogram-series exemplars as wire documents: one
// document per series, with a "buckets" array of {bucketLower, traceId,
// value} entries. Latency values convert to microseconds for seconds-unit
// histograms and stay raw otherwise.
func exemplarDocs(series []metrics.SeriesExemplars) []*bson.Doc {
	docs := make([]*bson.Doc, 0, len(series))
	for _, s := range series {
		buckets := make([]any, 0, len(s.Values))
		for _, b := range s.Values {
			bd := bson.D("bucketLower", b.BucketLower, "traceId", b.TraceID)
			if s.Unit == "seconds" {
				bd.Set("valueUS", b.Value/int64(time.Microsecond))
			} else {
				bd.Set("value", b.Value)
			}
			buckets = append(buckets, bd)
		}
		docs = append(docs, bson.D("name", s.Name, "labels", s.Labels, "buckets", buckets))
	}
	return docs
}

// viewDoc renders one span view (and its subtree) as a wire document.
func viewDoc(v *trace.View) *bson.Doc {
	d := bson.D(
		"traceId", v.TraceID,
		"spanId", v.SpanID,
		"name", v.Name,
		"startUnixNano", v.Start.UnixNano(),
		"durationUS", v.Duration.Microseconds(),
	)
	if v.InFlight {
		d.Set("inFlight", true)
	}
	if len(v.Attrs) > 0 {
		attrs := bson.NewDoc(len(v.Attrs))
		for _, a := range v.Attrs {
			attrs.Set(a.Key, bson.Normalize(a.Value))
		}
		d.Set("attrs", attrs)
	}
	if len(v.Children) > 0 {
		arr := make([]any, len(v.Children))
		for i := range v.Children {
			arr[i] = viewDoc(&v.Children[i])
		}
		d.Set("children", arr)
	}
	return d
}

func viewDocs(views []trace.View, limit int) []*bson.Doc {
	if limit > 0 && len(views) > limit {
		views = views[:limit]
	}
	docs := make([]*bson.Doc, len(views))
	for i := range views {
		docs[i] = viewDoc(&views[i])
	}
	return docs
}
