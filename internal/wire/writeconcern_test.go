package wire

import (
	"strings"
	"testing"
	"time"

	"docstore/internal/bson"
	"docstore/internal/mongod"
	"docstore/internal/replset"
	"docstore/internal/storage"
)

func TestWriteConcernInvalidRejected(t *testing.T) {
	_, c := startServer(t)
	cases := []*bson.Doc{
		bson.D("w", 1.5),
		bson.D("w", bson.D()),
		bson.D("w", 0),
		bson.D("wtimeout", -1),
		bson.D("j", "true"),
		bson.D("fsync", true),
	}
	for _, wc := range cases {
		err := c.InsertWC("db", "c", bson.D("x", 1), wc)
		if err == nil || !strings.Contains(err.Error(), "invalid writeConcern") {
			t.Fatalf("writeConcern %s: got %v, want structured invalid-writeConcern error", wc, err)
		}
	}
	// Nothing may have been applied by a write whose concern was garbage.
	n, err := c.Count("db", "c", nil)
	if err != nil || n != 0 {
		t.Fatalf("count after rejected writes = %d, %v", n, err)
	}
}

func TestWriteConcernNonDocumentRejected(t *testing.T) {
	// The client API only carries documents, so exercise the decoder the way
	// a hand-rolled client would: writeConcern as a bare scalar.
	req := decodeRequest(bson.D("op", string(OpInsert), "db", "db", "collection", "c",
		"doc", bson.D("x", 1), "writeConcern", "majority"))
	if !req.invalidWC {
		t.Fatal("scalar writeConcern did not mark the request invalid")
	}
	srv := NewServer(mongod.NewServer(mongod.Options{}))
	resp := srv.Handle(req)
	if resp.Error == "" || !strings.Contains(resp.Error, "invalid writeConcern") {
		t.Fatalf("Handle returned %+v, want invalid-writeConcern error", resp)
	}
}

func TestStandaloneRejectsQuorumW(t *testing.T) {
	_, c := startServer(t)
	err := c.InsertWC("db", "c", bson.D("x", 1), bson.D("w", 2))
	if err == nil || !strings.Contains(err.Error(), "standalone") {
		t.Fatalf("w:2 on standalone: got %v, want standalone rejection", err)
	}
	// One member means majority == 1: a majority concern is satisfiable and
	// must not be rejected.
	if err := c.InsertWC("db", "c", bson.D("x", 1), bson.D("w", "majority")); err != nil {
		t.Fatalf("w:majority on standalone: %v", err)
	}
}

// startReplServer fronts a 3-member replica set with a wire server.
func startReplServer(t *testing.T) (*replset.ReplicaSet, *Client) {
	t.Helper()
	members := []*mongod.Server{
		mongod.NewServer(mongod.Options{Name: "A"}),
		mongod.NewServer(mongod.Options{Name: "B"}),
		mongod.NewServer(mongod.Options{Name: "C"}),
	}
	rs, err := replset.New("rs0", members...)
	if err != nil {
		t.Fatal(err)
	}
	rs.StartReplication()
	t.Cleanup(rs.Close)
	srv := NewServer(rs.Primary())
	srv.SetReplicaSet(rs)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return rs, c
}

func TestReplicaSetBackedWrites(t *testing.T) {
	rs, c := startReplServer(t)

	// A majority insert acknowledges only after a quorum applied it.
	if err := c.InsertWC("db", "c", bson.D(bson.IDKey, 1), bson.D("w", "majority")); err != nil {
		t.Fatalf("majority insert: %v", err)
	}
	applied := 0
	for _, m := range rs.Members() {
		if m.Database("db").Collection("c").FindID(int64(1)) != nil {
			applied++
		}
	}
	if applied < 2 {
		t.Fatalf("majority-acked insert visible on %d member(s), want >= 2", applied)
	}

	// w:3 blocks for the full set; afterwards every member has the write.
	res, err := c.BulkWriteWC("db", "c", []*bson.Doc{
		BulkInsertOp(bson.D(bson.IDKey, 2)),
		BulkUpdateOp(bson.D(bson.IDKey, 2), bson.D("$set", bson.D("x", 1)), false, false),
	}, true, bson.D("w", 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteConcernError != "" || res.Inserted != 1 || res.Modified != 1 {
		t.Fatalf("w:3 bulk = %+v", res)
	}
	for _, m := range rs.Members() {
		doc := m.Database("db").Collection("c").FindID(int64(2))
		if doc == nil || doc.GetOr("x", nil) == nil {
			t.Fatalf("w:3 bulk not applied on member %s", m.Name())
		}
	}

	// With two members dead a majority bulk fails acknowledgement with a
	// structured writeConcernError while the primary keeps the write.
	if err := rs.Kill("B"); err != nil {
		t.Fatal(err)
	}
	if err := rs.Kill("C"); err != nil {
		t.Fatal(err)
	}
	res, err = c.BulkWriteWC("db", "c", []*bson.Doc{
		BulkInsertOp(bson.D(bson.IDKey, 3)),
	}, true, bson.D("w", "majority"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.WriteConcernError, "quorum unreachable") {
		t.Fatalf("degraded bulk = %+v, want quorum-unreachable writeConcernError", res)
	}
	if rs.Primary().Database("db").Collection("c").FindID(int64(3)) == nil {
		t.Fatal("write missing from primary after failed acknowledgement")
	}

	// The scalar paths surface the same failure as a request error.
	err = c.InsertWC("db", "c", bson.D(bson.IDKey, 4), bson.D("w", "majority"))
	if err == nil || !strings.Contains(err.Error(), "not satisfied") {
		t.Fatalf("degraded scalar insert: %v, want write-concern failure", err)
	}
}

func TestServerDefaultWriteConcern(t *testing.T) {
	rs, _ := startReplServer(t)
	// The listening server's default is out of reach from here, so drive the
	// default through a second server instance over the same set.
	srv := NewServer(rs.Primary())
	srv.SetReplicaSet(rs)
	srv.SetDefaultWriteConcern(storage.WriteConcern{Majority: true})
	resp := srv.Handle(&Request{Op: OpInsert, DB: "db", Collection: "c", Doc: bson.D(bson.IDKey, 10)})
	if resp.Error != "" {
		t.Fatalf("default-majority insert: %v", resp.Error)
	}
	applied := 0
	for _, m := range rs.Members() {
		if m.Database("db").Collection("c").FindID(int64(10)) != nil {
			applied++
		}
	}
	if applied < 2 {
		t.Fatalf("default-majority insert on %d member(s), want >= 2", applied)
	}
}
