// Package wire implements a minimal client/server wire protocol for the
// document store so it can run as a separate process (cmd/docstored) and be
// queried remotely, the way the thesis' application server talks to mongod
// over the network. The protocol is line-delimited JSON: each request and
// each response is a single JSON object on one line.
//
// Request shape:
//
//	{"op": "find", "db": "Dataset_1GB", "coll": "store_sales",
//	 "filter": {...}, "sort": {...}, "limit": 10}
//
// Response shape:
//
//	{"ok": true, "docs": [...], "n": 3}
//	{"ok": false, "error": "..."}
package wire

import (
	"fmt"

	"docstore/internal/bson"
	"docstore/internal/index"
	"docstore/internal/trace"
)

// HintString normalizes a request's "hint" value to an index name. Strings
// pass through; a key-specification document ({"g": 1}, the form real
// drivers send) maps to its conventional index name. Anything else renders
// to a string that names no index, so the server rejects it with its
// unknown-index error instead of silently ignoring the hint.
func HintString(v any) string {
	switch h := v.(type) {
	case string:
		return h
	case *bson.Doc:
		if spec, err := index.ParseSpec(h); err == nil {
			return spec.Name()
		}
		return h.ToJSON()
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Op names understood by the server.
const (
	OpPing        = "ping"
	OpInsert      = "insert"
	OpInsertMany  = "insertMany"
	OpFind        = "find"
	OpCount       = "count"
	OpUpdate      = "update"
	OpDelete      = "delete"
	OpAggregate   = "aggregate"
	OpEnsureIndex = "ensureIndex"
	OpDrop        = "drop"
	OpListColls   = "listCollections"
	OpStats       = "stats"
	// OpGetMore pulls the next batch from a server-side cursor opened by a
	// find or aggregate request that carried a batchSize.
	OpGetMore = "getMore"
	// OpKillCursors closes a server-side cursor before exhaustion.
	OpKillCursors = "killCursors"
	// OpBulkWrite executes a mixed batch of inserts/updates/deletes in one
	// round trip. Ops travel in "docs" (one document per op, built by
	// BulkInsertOp/BulkUpdateOp/BulkDeleteOp); "ordered" stops the batch at
	// the first failure. The response carries a "result" document with the
	// counters, the aligned insertedIds array, the write-error array and —
	// when the batch could not be journaled or made durable — a
	// writeConcernError string that {j: true} callers must treat as
	// failure.
	OpBulkWrite = "bulkWrite"
	// OpWatch opens a change stream over db/coll (coll empty = whole
	// database): a tailable server-side cursor getMore drains. The request
	// may carry a $match pipeline in "docs", a "resumeAfter" token, and a
	// "batchSize"; the response holds the immediately-available first batch,
	// the cursor id, and the post-batch "resumeToken". getMore on a watch
	// cursor waits up to "maxTimeMS" for the first event (awaitData) and
	// never exhausts the cursor; killCursors tears the stream down.
	OpWatch = "watch"
	// OpCurrentOp lists the requests in flight right now as span-tree
	// documents (oldest first), with elapsed-so-far durations — the
	// currentOp analogue. Requires the server to run with tracing enabled
	// (docstored -trace-sample); without a tracer it returns an empty list.
	// "limit" caps the listing. Introspection requests themselves are not
	// traced, so the listing never contains the currentOp that produced it.
	OpCurrentOp = "currentOp"
	// OpGetTraces returns completed span trees from the tracer's bounded
	// retention ring, most recent first: requests that were sampled at start
	// plus every request slower than the server's slow threshold. "limit"
	// caps the count (0 returns the whole ring).
	//
	// Both currentOp and getTraces accept filters: "opName" keeps only
	// traces whose root span name starts with the prefix ("wire.insert", or
	// just "wire.ins"), "minDurationUS" keeps only traces at least that many
	// microseconds long, and "limit" caps the result after filtering.
	OpGetTraces = "getTraces"
	// OpCheckpoint takes a durable checkpoint. Against a stand-alone server
	// it captures and streams one checkpoint; against a query router (a
	// docstored running with -shards) it takes a cluster-consistent
	// checkpoint: every shard is captured under one simultaneous write hold,
	// so no restored shard is ever ahead of another. The response's "result"
	// document carries the per-target LSNs and collection counts.
	OpCheckpoint = "checkpoint"
	// OpShardCollection declares a collection sharded on a key
	// specification ("keys", like ensureIndex) so the router hash-partitions
	// it. Only meaningful against a router; a stand-alone server rejects it.
	OpShardCollection = "shardCollection"
	// OpGetExemplars lists the labeled latency-histogram exemplars the
	// server currently retains: per histogram series, each bucket's most
	// recent sampled observation with the trace ID that produced it — the
	// queryable form of the `# {trace_id="..."}` annotations on /metrics.
	// "metric" filters to one metric family name; empty returns every
	// family that has exemplars.
	OpGetExemplars = "getExemplars"
)

// Request is one client request. It is encoded as a flat document so that
// both ends can use the bson JSON codec.
type Request struct {
	Op         string
	DB         string
	Collection string
	Doc        *bson.Doc   // insert
	Docs       []*bson.Doc // insertMany, aggregate stages
	Filter     *bson.Doc
	Update     *bson.Doc
	Sort       *bson.Doc
	Projection *bson.Doc
	Keys       *bson.Doc // ensureIndex specification
	// Hint forces the named index on a find. A hint naming no index fails
	// the request with the storage engine's unknown-index error instead of
	// silently falling back to a collection scan.
	Hint  string
	Limit int
	Skip  int
	// AtVersion pins a find to the named committed collection version — the
	// wire form of the atClusterTime read. 0 reads current; a version the
	// engine no longer retains fails the request (anchor it by holding a
	// cursor open at that version). Against a router it pins the same
	// version number on every targeted shard.
	AtVersion int64
	// BatchSize > 0 turns a find/aggregate into a cursor request: the
	// response carries the first batch plus a CursorID to getMore against.
	// It also sets the batch size of a getMore.
	BatchSize int
	// CursorID identifies the server-side cursor for getMore/killCursors.
	CursorID int64
	Multi    bool
	Upsert   bool
	Unique   bool
	// Ordered makes a bulkWrite stop at its first failing op.
	Ordered bool
	// Journaled is the writeConcern {j: true} flag: the write is
	// acknowledged only after its write-ahead-log record is fsynced. It
	// applies to insert, insertMany, update, delete and bulkWrite, and is a
	// no-op against a server running without a WAL (-data-dir unset).
	Journaled bool
	// WriteConcern is the full acknowledgement contract of a write request:
	// {w: 1|N|"majority", j: bool, wtimeout: ms}. It applies to insert,
	// insertMany, update, delete and bulkWrite. The server validates it with
	// storage.ParseWriteConcern — malformed concerns fail the request rather
	// than silently weakening it — and w > 1 is refused by a standalone
	// server (no replica set attached). Nil uses the server's default.
	WriteConcern *bson.Doc
	// invalidWC records that the wire carried a "writeConcern" key that was
	// not a document; Handle rejects the request. decodeRequest cannot
	// return an error, so the rejection is deferred.
	invalidWC bool
	// ResumeAfter is a watch request's resume token: the stream replays
	// history strictly after it before tailing live.
	ResumeAfter string
	// MaxTimeMS bounds how long a getMore on a change-stream cursor waits
	// for the first event before returning an empty batch (awaitData).
	// Zero uses the server's default wait.
	MaxTimeMS int
	// OpName filters currentOp/getTraces to traces whose root span name
	// starts with this prefix ("wire.insert"; "wire.ins" also matches).
	OpName string
	// MinDurationUS filters currentOp/getTraces to traces at least this
	// many microseconds long (elapsed-so-far for in-flight ops).
	MinDurationUS int64
	// Metric filters getExemplars to one metric family name; empty lists
	// every family that has exemplars.
	Metric string
	// span is the request's root trace span, attached server-side by Handle
	// when tracing is on. It never travels on the wire.
	span *trace.Span
}

// encode renders the request as a document.
func (r *Request) encode() *bson.Doc {
	d := bson.NewDoc(8)
	d.Set("op", r.Op)
	if r.DB != "" {
		d.Set("db", r.DB)
	}
	if r.Collection != "" {
		d.Set("coll", r.Collection)
	}
	if r.Doc != nil {
		d.Set("doc", r.Doc)
	}
	if r.Docs != nil {
		arr := make([]any, len(r.Docs))
		for i, doc := range r.Docs {
			arr[i] = doc
		}
		d.Set("docs", arr)
	}
	if r.Filter != nil {
		d.Set("filter", r.Filter)
	}
	if r.Update != nil {
		d.Set("update", r.Update)
	}
	if r.Sort != nil {
		d.Set("sort", r.Sort)
	}
	if r.Projection != nil {
		d.Set("projection", r.Projection)
	}
	if r.Keys != nil {
		d.Set("keys", r.Keys)
	}
	if r.Hint != "" {
		d.Set("hint", r.Hint)
	}
	if r.Limit != 0 {
		d.Set("limit", r.Limit)
	}
	if r.Skip != 0 {
		d.Set("skip", r.Skip)
	}
	if r.AtVersion != 0 {
		d.Set("atVersion", r.AtVersion)
	}
	if r.BatchSize != 0 {
		d.Set("batchSize", r.BatchSize)
	}
	if r.CursorID != 0 {
		d.Set("cursorId", r.CursorID)
	}
	if r.Multi {
		d.Set("multi", true)
	}
	if r.Upsert {
		d.Set("upsert", true)
	}
	if r.Unique {
		d.Set("unique", true)
	}
	if r.Ordered {
		d.Set("ordered", true)
	}
	if r.Journaled {
		d.Set("j", true)
	}
	if r.WriteConcern != nil {
		d.Set("writeConcern", r.WriteConcern)
	}
	if r.ResumeAfter != "" {
		d.Set("resumeAfter", r.ResumeAfter)
	}
	if r.MaxTimeMS != 0 {
		d.Set("maxTimeMS", r.MaxTimeMS)
	}
	if r.OpName != "" {
		d.Set("opName", r.OpName)
	}
	if r.MinDurationUS != 0 {
		d.Set("minDurationUS", r.MinDurationUS)
	}
	if r.Metric != "" {
		d.Set("metric", r.Metric)
	}
	return d
}

// decodeRequest parses a request document.
func decodeRequest(d *bson.Doc) *Request {
	r := &Request{}
	if v, ok := d.Get("op"); ok {
		r.Op, _ = v.(string)
	}
	if v, ok := d.Get("db"); ok {
		r.DB, _ = v.(string)
	}
	if v, ok := d.Get("coll"); ok {
		r.Collection, _ = v.(string)
	}
	if v, ok := d.Get("doc"); ok {
		r.Doc, _ = v.(*bson.Doc)
	}
	if v, ok := d.Get("docs"); ok {
		if arr, isArr := v.([]any); isArr {
			for _, e := range arr {
				if doc, isDoc := e.(*bson.Doc); isDoc {
					r.Docs = append(r.Docs, doc)
				}
			}
		}
	}
	if v, ok := d.Get("filter"); ok {
		r.Filter, _ = v.(*bson.Doc)
	}
	if v, ok := d.Get("update"); ok {
		r.Update, _ = v.(*bson.Doc)
	}
	if v, ok := d.Get("sort"); ok {
		r.Sort, _ = v.(*bson.Doc)
	}
	if v, ok := d.Get("projection"); ok {
		r.Projection, _ = v.(*bson.Doc)
	}
	if v, ok := d.Get("keys"); ok {
		r.Keys, _ = v.(*bson.Doc)
	}
	if v, ok := d.Get("hint"); ok {
		r.Hint = HintString(v)
	}
	if v, ok := d.Get("limit"); ok {
		if n, isNum := bson.AsInt(v); isNum {
			r.Limit = int(n)
		}
	}
	if v, ok := d.Get("skip"); ok {
		if n, isNum := bson.AsInt(v); isNum {
			r.Skip = int(n)
		}
	}
	if v, ok := d.Get("atVersion"); ok {
		if n, isNum := bson.AsInt(v); isNum {
			r.AtVersion = n
		}
	}
	if v, ok := d.Get("batchSize"); ok {
		if n, isNum := bson.AsInt(v); isNum {
			r.BatchSize = int(n)
		}
	}
	if v, ok := d.Get("cursorId"); ok {
		if n, isNum := bson.AsInt(v); isNum {
			r.CursorID = n
		}
	}
	if v, ok := d.Get("resumeAfter"); ok {
		r.ResumeAfter, _ = v.(string)
	}
	if v, ok := d.Get("maxTimeMS"); ok {
		if n, isNum := bson.AsInt(v); isNum {
			r.MaxTimeMS = int(n)
		}
	}
	if v, ok := d.Get("opName"); ok {
		r.OpName, _ = v.(string)
	}
	if v, ok := d.Get("minDurationUS"); ok {
		if n, isNum := bson.AsInt(v); isNum {
			r.MinDurationUS = n
		}
	}
	if v, ok := d.Get("metric"); ok {
		r.Metric, _ = v.(string)
	}
	if v, ok := d.Get("writeConcern"); ok {
		if wcDoc, isDoc := v.(*bson.Doc); isDoc {
			r.WriteConcern = wcDoc
		} else {
			r.invalidWC = true
		}
	}
	r.Multi = bson.Truthy(d.GetOr("multi", false))
	r.Upsert = bson.Truthy(d.GetOr("upsert", false))
	r.Unique = bson.Truthy(d.GetOr("unique", false))
	r.Ordered = bson.Truthy(d.GetOr("ordered", false))
	r.Journaled = bson.Truthy(d.GetOr("j", false))
	return r
}

// Response is the server's reply.
type Response struct {
	OK    bool
	Error string
	Docs  []*bson.Doc
	N     int64
	// CursorID is non-zero when a server-side cursor remains open: pass it
	// to getMore for the next batch. Zero means the result is complete.
	CursorID int64
	// Result carries the bulkWrite outcome document (counters, insertedIds,
	// writeErrors). Per-op write errors are data, not transport errors, so
	// they ride inside an OK response.
	Result *bson.Doc
	// ResumeToken is the post-batch resume token of a change-stream reply:
	// resuming from it continues exactly after the last event of this
	// batch, even when the batch is empty.
	ResumeToken string
}

func (r *Response) encode() *bson.Doc {
	d := bson.NewDoc(5)
	d.Set("ok", r.OK)
	if r.Error != "" {
		d.Set("error", r.Error)
	}
	if r.Docs != nil {
		arr := make([]any, len(r.Docs))
		for i, doc := range r.Docs {
			arr[i] = doc
		}
		d.Set("docs", arr)
	}
	d.Set("n", r.N)
	if r.CursorID != 0 {
		d.Set("cursorId", r.CursorID)
	}
	if r.Result != nil {
		d.Set("result", r.Result)
	}
	if r.ResumeToken != "" {
		d.Set("resumeToken", r.ResumeToken)
	}
	return d
}

func decodeResponse(d *bson.Doc) *Response {
	r := &Response{}
	r.OK = bson.Truthy(d.GetOr("ok", false))
	if v, ok := d.Get("error"); ok {
		r.Error, _ = v.(string)
	}
	if v, ok := d.Get("docs"); ok {
		if arr, isArr := v.([]any); isArr {
			for _, e := range arr {
				if doc, isDoc := e.(*bson.Doc); isDoc {
					r.Docs = append(r.Docs, doc)
				}
			}
		}
	}
	if v, ok := d.Get("n"); ok {
		r.N, _ = bson.AsInt(v)
	}
	if v, ok := d.Get("cursorId"); ok {
		r.CursorID, _ = bson.AsInt(v)
	}
	if v, ok := d.Get("result"); ok {
		r.Result, _ = v.(*bson.Doc)
	}
	if v, ok := d.Get("resumeToken"); ok {
		r.ResumeToken, _ = v.(string)
	}
	return r
}
