package wire

import (
	"fmt"

	"docstore/internal/bson"
	"docstore/internal/query"
	"docstore/internal/storage"
)

// BulkInsertOp builds the op document for a bulk insert.
func BulkInsertOp(doc *bson.Doc) *bson.Doc { return bson.D("insert", doc) }

// BulkUpdateOp builds the op document for a bulk update.
func BulkUpdateOp(q, u *bson.Doc, multi, upsert bool) *bson.Doc {
	return bson.D("update", bson.D("q", q, "u", u, "multi", multi, "upsert", upsert))
}

// BulkDeleteOp builds the op document for a bulk delete.
func BulkDeleteOp(q *bson.Doc, multi bool) *bson.Doc {
	return bson.D("delete", bson.D("q", q, "multi", multi))
}

// decodeWriteOp parses one bulkWrite op document into a storage WriteOp.
func decodeWriteOp(d *bson.Doc) (storage.WriteOp, error) {
	if v, ok := d.Get("insert"); ok {
		doc, isDoc := v.(*bson.Doc)
		if !isDoc {
			return storage.WriteOp{}, fmt.Errorf("insert op requires a document")
		}
		return storage.InsertWriteOp(doc), nil
	}
	if v, ok := d.Get("update"); ok {
		spec, isDoc := v.(*bson.Doc)
		if !isDoc {
			return storage.WriteOp{}, fmt.Errorf("update op requires a {q, u, multi, upsert} document")
		}
		q, _ := spec.GetOr("q", nil).(*bson.Doc)
		u, _ := spec.GetOr("u", nil).(*bson.Doc)
		if u == nil {
			return storage.WriteOp{}, fmt.Errorf("update op requires a u document")
		}
		return storage.UpdateWriteOp(query.UpdateSpec{
			Query:  q,
			Update: u,
			Multi:  bson.Truthy(spec.GetOr("multi", false)),
			Upsert: bson.Truthy(spec.GetOr("upsert", false)),
		}), nil
	}
	if v, ok := d.Get("delete"); ok {
		spec, isDoc := v.(*bson.Doc)
		if !isDoc {
			return storage.WriteOp{}, fmt.Errorf("delete op requires a {q, multi} document")
		}
		q, _ := spec.GetOr("q", nil).(*bson.Doc)
		return storage.DeleteWriteOp(q, bson.Truthy(spec.GetOr("multi", false))), nil
	}
	return storage.WriteOp{}, fmt.Errorf("op document must carry insert, update or delete")
}

// encodeBulkResult renders a bulk outcome as the response's result document.
func encodeBulkResult(res storage.BulkResult) *bson.Doc {
	d := bson.D(
		"nInserted", res.Inserted,
		"nMatched", res.Matched,
		"nModified", res.Modified,
		"nUpserted", res.Upserted,
		"nDeleted", res.Deleted,
		"attempted", res.Attempted,
	)
	if res.InsertedIDs != nil {
		d.Set("insertedIds", append([]any(nil), res.InsertedIDs...))
	}
	if res.UpsertedIDs != nil {
		d.Set("upsertedIds", append([]any(nil), res.UpsertedIDs...))
	}
	if len(res.Errors) > 0 {
		errs := make([]any, len(res.Errors))
		for i, e := range res.Errors {
			errs[i] = bson.D("index", e.Index, "errmsg", e.Err.Error())
		}
		d.Set("writeErrors", errs)
	}
	if res.DurabilityErr != nil {
		// A batch-level journaling failure: either nothing was applied (the
		// log rejected the record) or the applied batch could not be made
		// durable. Either way a {j: true} client must not treat the batch
		// as acknowledged.
		d.Set("writeConcernError", res.DurabilityErr.Error())
	}
	return d
}

// BulkWriteError is one per-op failure reported by a bulkWrite.
type BulkWriteError struct {
	Index   int
	Message string
}

// BulkWriteResult is the decoded outcome of a bulkWrite request.
type BulkWriteResult struct {
	Inserted    int64
	Matched     int64
	Modified    int64
	Upserted    int64
	Deleted     int64
	Attempted   int64
	InsertedIDs []any
	UpsertedIDs []any
	WriteErrors []BulkWriteError
	// WriteConcernError is non-empty when the batch's write-ahead-log
	// record could not be written or made durable: the batch (or the part
	// of it already applied) is not crash-safe and a {j: true} caller must
	// treat the request as failed.
	WriteConcernError string
}

// decodeBulkWriteResult parses the result document of a bulkWrite response.
func decodeBulkWriteResult(d *bson.Doc) *BulkWriteResult {
	res := &BulkWriteResult{}
	if d == nil {
		return res
	}
	res.Inserted, _ = bson.AsInt(d.GetOr("nInserted", 0))
	res.Matched, _ = bson.AsInt(d.GetOr("nMatched", 0))
	res.Modified, _ = bson.AsInt(d.GetOr("nModified", 0))
	res.Upserted, _ = bson.AsInt(d.GetOr("nUpserted", 0))
	res.Deleted, _ = bson.AsInt(d.GetOr("nDeleted", 0))
	res.Attempted, _ = bson.AsInt(d.GetOr("attempted", 0))
	if v, ok := d.Get("insertedIds"); ok {
		res.InsertedIDs, _ = v.([]any)
	}
	if v, ok := d.Get("upsertedIds"); ok {
		res.UpsertedIDs, _ = v.([]any)
	}
	if v, ok := d.Get("writeConcernError"); ok {
		res.WriteConcernError, _ = v.(string)
	}
	if v, ok := d.Get("writeErrors"); ok {
		if arr, isArr := v.([]any); isArr {
			for _, e := range arr {
				ed, isDoc := e.(*bson.Doc)
				if !isDoc {
					continue
				}
				idx, _ := bson.AsInt(ed.GetOr("index", 0))
				msg, _ := ed.GetOr("errmsg", "").(string)
				res.WriteErrors = append(res.WriteErrors, BulkWriteError{Index: int(idx), Message: msg})
			}
		}
	}
	return res
}

// BulkWrite executes a mixed batch of writes in one round trip. Build ops
// with BulkInsertOp/BulkUpdateOp/BulkDeleteOp. Per-op failures come back in
// the result's WriteErrors, not as a transport error.
func (c *Client) BulkWrite(db, coll string, ops []*bson.Doc, ordered bool) (*BulkWriteResult, error) {
	return c.BulkWriteWC(db, coll, ops, ordered, nil)
}

// BulkWriteWC is BulkWrite at an explicit write concern document
// ({w, j, wtimeout}); nil uses the server's default. A quorum failure
// (wtimeout, unreachable members, rollback) surfaces in the result's
// WriteConcernError while the counters report what did apply on the
// primary.
func (c *Client) BulkWriteWC(db, coll string, ops []*bson.Doc, ordered bool, wc *bson.Doc) (*BulkWriteResult, error) {
	resp, err := c.Do(&Request{Op: OpBulkWrite, DB: db, Collection: coll, Docs: ops, Ordered: ordered, WriteConcern: wc})
	if err != nil {
		return nil, err
	}
	return decodeBulkWriteResult(resp.Result), nil
}
