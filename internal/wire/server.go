package wire

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"docstore/internal/aggregate"
	"docstore/internal/bson"
	"docstore/internal/changestream"
	"docstore/internal/mongod"
	"docstore/internal/mongos"
	"docstore/internal/query"
	"docstore/internal/storage"
	"docstore/internal/trace"
)

// DefaultCursorTimeout is how long an idle server-side cursor survives
// before it is reaped, mirroring the real server's cursor timeout. Clients
// that disconnect without exhausting or killing their cursors would
// otherwise pin their collection snapshots for the server's lifetime.
const DefaultCursorTimeout = 10 * time.Minute

// DefaultAwaitDataTimeout is how long a getMore on a change-stream cursor
// waits for the first event when the request carries no maxTimeMS.
const DefaultAwaitDataTimeout = time.Second

// TailableCursorTimeoutMultiple scales the idle timeout for live
// change-stream cursors: a tailable cursor is idle by design between events,
// so it is exempt from the normal window — but a client that stops issuing
// getMores entirely (every getMore refreshes the idle clock, events or not)
// is gone, and without any bound an abandoned watcher would pin its buffer
// and keep the whole server materializing events forever.
const TailableCursorTimeoutMultiple = 6

// ReplicatedBackend is the write path of a replica set: every write becomes
// one logged batch whose acknowledgement honours its write concern.
// *replset.ReplicaSet implements it; the wire package only needs this slice
// of it, which keeps the dependency arrow pointing at storage types.
type ReplicatedBackend interface {
	BulkWrite(db, coll string, ops []storage.WriteOp, opts storage.BulkOptions) storage.BulkResult
}

// replHealthSource is the optional replication-health face of a replicated
// backend: *replset.ReplicaSet implements it, and serverStatus includes a
// per-member lag section when the attached backend does. An interface
// assertion keeps wire from importing replset.
type replHealthSource interface {
	HealthDocs() []*bson.Doc
}

// Server serves the wire protocol for a mongod.Server over TCP.
type Server struct {
	backend *mongod.Server
	// repl, when set, receives every write so acknowledgement can wait on
	// replica quorum; reads keep hitting backend (the primary).
	repl ReplicatedBackend
	// router, when set, turns this wire server into a query-router front
	// end (the mongos role, docstored -shards): data-plane requests fan out
	// across the cluster's shards, shardCollection declares a shard key, and
	// checkpoint becomes a cluster-consistent capture across every shard.
	// Introspection (stats, traces, exemplars, currentOp) and change streams
	// keep reading the local backend.
	router *mongos.Router
	// defaultWC applies to write requests that carry no writeConcern.
	defaultWC storage.WriteConcern
	// tracer, when set, roots a span tree on every traced request; nil keeps
	// tracing off for free (see internal/trace).
	tracer *trace.Tracer
	// wm holds the per-op wire request counters and latency histograms.
	wm wireMetrics

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup

	// now is the cursor-idle clock; injectable so the reaping tests can
	// advance time explicitly instead of sleeping. It must be set before
	// the server starts handling requests.
	now func() time.Time

	// Server-side cursors for the getMore path. Cursors live until they are
	// exhausted, killed, idle past cursorTimeout, or the server closes.
	// Change-stream cursors are tailable: they never exhaust, and they are
	// exempt from idle reaping while their subscription is live.
	cursorMu      sync.Mutex
	cursors       map[int64]*openCursor
	nextCur       int64
	cursorTimeout time.Duration
}

// openCursor is one registered server-side cursor with its idle clock:
// either a result iterator (find/aggregate) or a tailable change-stream
// subscription.
type openCursor struct {
	it  aggregate.Iterator
	sub *changestream.Subscription
	// ns is the cursor's target namespace ("db.collection"): serverStatus
	// reports it so an operator can tell WHICH cursor is pinning a snapshot
	// and retaining superseded MVCC versions.
	ns       string
	lastUsed time.Time
	// inUse marks a change-stream cursor with a getMore in flight (the
	// awaitData wait happens outside cursorMu): concurrent getMores are
	// refused and the reaper leaves it alone.
	inUse bool
}

// close releases whichever stream the cursor holds.
func (oc *openCursor) close() {
	if oc.it != nil {
		oc.it.Close()
	}
	if oc.sub != nil {
		oc.sub.Close()
	}
}

// SetCursorTimeout overrides the idle timeout after which abandoned
// server-side cursors are reaped. Zero or negative durations are ignored.
// It must be called before the server starts handling requests.
func (s *Server) SetCursorTimeout(d time.Duration) {
	if d > 0 {
		s.cursorTimeout = d
	}
}

// SetReplicaSet routes writes through a replicated backend so their
// acknowledgement can wait on member quorum. backend should be the set's
// primary (reads are served from it directly). Call before the server
// starts handling requests.
func (s *Server) SetReplicaSet(r ReplicatedBackend) { s.repl = r }

// SetRouter attaches a query router: the server then serves the mongos role,
// fanning data-plane requests out across the router's shards. Mutually
// exclusive with SetReplicaSet. Call before the server starts handling
// requests.
func (s *Server) SetRouter(r *mongos.Router) { s.router = r }

// SetDefaultWriteConcern sets the concern applied to write requests that do
// not carry one. Call before the server starts handling requests.
func (s *Server) SetDefaultWriteConcern(wc storage.WriteConcern) { s.defaultWC = wc }

// NewServer wraps a document store server.
func NewServer(backend *mongod.Server) *Server {
	return &Server{
		backend:       backend,
		conns:         make(map[net.Conn]bool),
		cursors:       make(map[int64]*openCursor),
		cursorTimeout: DefaultCursorTimeout,
		now:           time.Now,
		wm:            newWireMetrics(),
	}
}

// reapCursorsLocked closes cursors idle past the timeout. The caller holds
// cursorMu. Reaping happens lazily on every cursor operation, so an
// abandoned cursor costs at most one timeout window of memory. A live
// change-stream cursor gets TailableCursorTimeoutMultiple windows instead:
// it is idle by design between events, and any getMore — even one that
// returns an empty batch — refreshes its clock, so a polling client keeps
// it alive indefinitely while a vanished client's watcher still ages out.
// One whose subscription already died (slow consumer, broker shutdown) ages
// out on the normal window.
func (s *Server) reapCursorsLocked() {
	deadline := s.now().Add(-s.cursorTimeout)
	tailableDeadline := s.now().Add(-TailableCursorTimeoutMultiple * s.cursorTimeout)
	for id, oc := range s.cursors {
		if oc.inUse {
			continue // a getMore is waiting on it right now
		}
		cutoff := deadline
		if oc.sub != nil && oc.sub.Alive() {
			cutoff = tailableDeadline
		}
		if oc.lastUsed.Before(cutoff) {
			oc.close()
			delete(s.cursors, id)
		}
	}
}

// ReapIdleCursors triggers one explicit reaping pass and returns the number
// of live cursors left. Reaping is lazy (piggybacked on cursor operations);
// this entry point lets operators and tests force a pass deterministically.
func (s *Server) ReapIdleCursors() int {
	s.cursorMu.Lock()
	defer s.cursorMu.Unlock()
	s.reapCursorsLocked()
	return len(s.cursors)
}

// registerCursor stores an open cursor and returns its id.
func (s *Server) registerCursor(oc *openCursor) int64 {
	s.cursorMu.Lock()
	defer s.cursorMu.Unlock()
	s.reapCursorsLocked()
	s.nextCur++
	id := s.nextCur
	oc.lastUsed = s.now()
	s.cursors[id] = oc
	return id
}

// getMoreCursor claims the cursor with the given id for a getMore. A result
// iterator is removed from the registry (the getMore re-registers it when a
// partial batch leaves it open, the pre-change-stream behaviour). A
// change-stream cursor instead STAYS registered and is marked in-use: its
// awaitData wait happens outside cursorMu, and keeping the entry visible is
// what lets a concurrent killCursors find and tear it down mid-wait — were
// it removed, a kill in the window would miss it and the subscription would
// leak forever.
func (s *Server) getMoreCursor(id int64) (*openCursor, bool) {
	s.cursorMu.Lock()
	defer s.cursorMu.Unlock()
	s.reapCursorsLocked()
	oc, ok := s.cursors[id]
	if !ok || oc.inUse {
		return nil, false // absent, or a concurrent getMore holds it
	}
	if oc.sub != nil {
		oc.inUse = true
		return oc, true
	}
	delete(s.cursors, id)
	return oc, true
}

// OpenCursors returns the number of live server-side cursors.
func (s *Server) OpenCursors() int {
	s.cursorMu.Lock()
	defer s.cursorMu.Unlock()
	return len(s.cursors)
}

// cursorStats renders every open server-side cursor for serverStatus: its
// id, target namespace, idle age and kind. Each open result cursor pins a
// storage snapshot, so this list is the set of suspects when the engine
// gauges show a version being retained.
func (s *Server) cursorStats() []any {
	now := s.now()
	s.cursorMu.Lock()
	ids := make([]int64, 0, len(s.cursors))
	for id := range s.cursors {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]any, 0, len(ids))
	for _, id := range ids {
		oc := s.cursors[id]
		kind := "result"
		if oc.sub != nil {
			kind = "changeStream"
		}
		out = append(out, bson.D(
			"cursorId", id,
			"ns", oc.ns,
			"kind", kind,
			"idleMS", now.Sub(oc.lastUsed).Milliseconds(),
		))
	}
	s.cursorMu.Unlock()
	return out
}

// pullBatch reads up to n documents from the iterator.
func pullBatch(it aggregate.Iterator, n int) ([]*bson.Doc, error) {
	docs := make([]*bson.Doc, 0, n)
	for len(docs) < n {
		d, ok := it.Next()
		if !ok {
			return docs, it.Err()
		}
		docs = append(docs, d)
	}
	return docs, nil
}

// cursorResponse serves the first batch of a cursor request and registers
// the cursor when it may have more to give.
func (s *Server) cursorResponse(ns string, it aggregate.Iterator, batchSize int) *Response {
	docs, err := pullBatch(it, batchSize)
	if err != nil {
		it.Close()
		return &Response{Error: err.Error()}
	}
	resp := &Response{OK: true, Docs: docs, N: int64(len(docs))}
	if len(docs) == batchSize {
		resp.CursorID = s.registerCursor(&openCursor{it: it, ns: ns})
	} else {
		it.Close()
	}
	return resp
}

// drainWatch pulls up to batchSize events off a change-stream subscription,
// blocking up to maxWait for the first one (the awaitData contract) and
// collecting whatever else is already buffered. It renders events in their
// wire document form.
func drainWatch(sub *changestream.Subscription, batchSize int, maxWait time.Duration) ([]*bson.Doc, error) {
	docs := make([]*bson.Doc, 0, batchSize)
	for len(docs) < batchSize {
		ev, err := sub.Next(maxWait)
		if err != nil {
			return docs, err
		}
		if ev == nil {
			break
		}
		docs = append(docs, ev.Doc())
		maxWait = 0 // only the first event blocks
	}
	return docs, nil
}

// Listen starts accepting connections on addr ("127.0.0.1:0" picks a free
// port) and returns the bound address. Serving happens on background
// goroutines until Close is called.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// Close stops the listener, closes active connections and releases any
// server-side cursors.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.cursorMu.Lock()
	for id, oc := range s.cursors {
		oc.close()
		delete(s.cursors, id)
	}
	s.cursorMu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	reader := bufio.NewReader(conn)
	writer := bufio.NewWriter(conn)
	for {
		line, err := reader.ReadBytes('\n')
		if err != nil {
			return
		}
		var resp *Response
		reqDoc, err := bson.FromJSON(line)
		if err != nil {
			resp = &Response{Error: fmt.Sprintf("malformed request: %v", err)}
		} else {
			resp = s.Handle(decodeRequest(reqDoc))
		}
		if _, err := writer.Write(append([]byte(resp.encode().ToJSON()), '\n')); err != nil {
			return
		}
		if err := writer.Flush(); err != nil {
			return
		}
	}
}

// Handle executes one request against the backend. It is exported so tests
// and in-process callers can drive the protocol without a socket.
//
// Handle owns the request's observability: it roots the trace span the
// lower layers hang their children off (carried down via the options
// structs, never on the wire) and records the per-op request counter,
// error counter and latency histogram.
func (s *Server) Handle(req *Request) *Response {
	start := s.now()
	if s.tracer != nil && traced(req.Op) {
		span := s.tracer.StartSpan("wire." + req.Op)
		span.SetAttr("db", req.DB)
		if req.Collection != "" {
			span.SetAttr("collection", req.Collection)
		}
		req.span = span
	}
	resp := s.handle(req)
	if req.span != nil {
		if resp.Error != "" {
			req.span.SetAttr("error", resp.Error)
		} else {
			req.span.SetAttr("n", resp.N)
		}
		req.span.Finish()
	}
	// SampledTraceID is non-empty only for roots sampled at start — traces
	// guaranteed to be retained — so every exemplar the histogram keeps
	// resolves through getTraces.
	s.wm.observe(req.Op, s.now().Sub(start), resp.Error != "", req.span.SampledTraceID())
	return resp
}

func (s *Server) handle(req *Request) *Response {
	switch req.Op {
	case OpCurrentOp:
		// Introspection ops need no db and are never themselves traced, so a
		// currentOp listing shows real work, not the observer.
		views := filterViews(s.tracer.CurrentOps(), req.OpName, time.Duration(req.MinDurationUS)*time.Microsecond)
		return &Response{OK: true, Docs: viewDocs(views, int(req.Limit)), N: int64(len(views))}
	case OpGetTraces:
		// Filters run over the whole ring, then the limit applies — asking
		// for the 5 slowest inserts must not depend on what else happens to
		// sit at the head of the ring.
		limit := int(req.Limit)
		var views []trace.View
		if req.OpName == "" && req.MinDurationUS == 0 {
			views = s.tracer.Traces(limit)
		} else {
			// Only a filtered query pays for the whole-ring snapshot.
			views = filterViews(s.tracer.Traces(0), req.OpName, time.Duration(req.MinDurationUS)*time.Microsecond)
		}
		docs := viewDocs(views, limit)
		return &Response{OK: true, Docs: docs, N: int64(len(docs))}
	case OpGetExemplars:
		series := s.backend.Metrics().Exemplars(req.Metric)
		series = append(series, s.wm.registry.Exemplars(req.Metric)...)
		docs := exemplarDocs(series)
		return &Response{OK: true, Docs: docs, N: int64(len(docs))}
	}
	if req.DB == "" && req.Op != OpPing && req.Op != OpCheckpoint {
		return &Response{Error: "db is required"}
	}
	if s.router != nil {
		if resp, handled := s.handleRouted(req); handled {
			return resp
		}
	}
	db := s.backend.Database(req.DB)
	switch req.Op {
	case OpPing:
		return &Response{OK: true}
	case OpInsert:
		if req.Doc == nil {
			return &Response{Error: "doc is required"}
		}
		wc, errResp := s.writeConcernFor(req)
		if errResp != nil {
			return errResp
		}
		if s.repl == nil && wc.IsZero() && !req.Journaled {
			if _, err := db.Insert(req.Collection, req.Doc); err != nil {
				return &Response{Error: err.Error()}
			}
			return &Response{OK: true, N: 1}
		}
		res := s.execBatch(req, []storage.WriteOp{storage.InsertWriteOp(req.Doc)}, true, wc)
		if err := res.FirstError(); err != nil {
			return &Response{Error: err.Error()}
		}
		return &Response{OK: true, N: 1}
	case OpInsertMany:
		wc, errResp := s.writeConcernFor(req)
		if errResp != nil {
			return errResp
		}
		if s.repl == nil && wc.IsZero() && !req.Journaled {
			ids, err := db.InsertMany(req.Collection, req.Docs)
			if err != nil {
				return &Response{Error: err.Error(), N: int64(len(ids))}
			}
			return &Response{OK: true, N: int64(len(ids))}
		}
		res := s.execBatch(req, storage.InsertOps(req.Docs), true, wc)
		if err := res.FirstError(); err != nil {
			return &Response{Error: err.Error(), N: int64(res.Inserted)}
		}
		return &Response{OK: true, N: int64(res.Inserted)}
	case OpBulkWrite:
		wc, errResp := s.writeConcernFor(req)
		if errResp != nil {
			return errResp
		}
		ops := make([]storage.WriteOp, len(req.Docs))
		for i, opDoc := range req.Docs {
			op, err := decodeWriteOp(opDoc)
			if err != nil {
				return &Response{Error: fmt.Sprintf("bulkWrite op %d: %v", i, err)}
			}
			ops[i] = op
		}
		res := s.execBatch(req, ops, req.Ordered, wc)
		if res.DurabilityErr != nil && res.Attempted == 0 {
			// The batch could not even be journaled, so nothing was applied:
			// that is a failed request, not a result. A post-apply
			// durability failure instead rides in the result document as
			// writeConcernError, alongside the counters of what did apply.
			return &Response{Error: res.DurabilityErr.Error(), Result: encodeBulkResult(res)}
		}
		return &Response{
			OK:     true,
			N:      int64(res.Inserted + res.Modified + res.Upserted + res.Deleted),
			Result: encodeBulkResult(res),
		}
	case OpFind:
		opts, errResp := s.findOptions(req)
		if errResp != nil {
			return errResp
		}
		if req.BatchSize > 0 {
			opts.BatchSize = req.BatchSize
			cur, err := db.FindCursor(req.Collection, req.Filter, opts)
			if err != nil {
				return &Response{Error: err.Error()}
			}
			return s.cursorResponse(req.DB+"."+req.Collection, mongod.Iter(cur), req.BatchSize)
		}
		docs, err := db.Find(req.Collection, req.Filter, opts)
		if err != nil {
			return &Response{Error: err.Error()}
		}
		return &Response{OK: true, Docs: docs, N: int64(len(docs))}
	case OpCount:
		n, err := db.Collection(req.Collection).CountDocs(req.Filter)
		if err != nil {
			return &Response{Error: err.Error()}
		}
		return &Response{OK: true, N: int64(n)}
	case OpUpdate:
		spec := query.UpdateSpec{
			Query: req.Filter, Update: req.Update, Upsert: req.Upsert, Multi: req.Multi,
		}
		wc, errResp := s.writeConcernFor(req)
		if errResp != nil {
			return errResp
		}
		if s.repl == nil && wc.IsZero() && !req.Journaled {
			res, err := db.Update(req.Collection, spec)
			if err != nil {
				return &Response{Error: err.Error()}
			}
			return &Response{OK: true, N: int64(res.Modified)}
		}
		res := s.execBatch(req, []storage.WriteOp{storage.UpdateWriteOp(spec)}, true, wc)
		if err := res.FirstError(); err != nil {
			return &Response{Error: err.Error()}
		}
		return &Response{OK: true, N: int64(res.Modified)}
	case OpDelete:
		wc, errResp := s.writeConcernFor(req)
		if errResp != nil {
			return errResp
		}
		if s.repl == nil && wc.IsZero() && !req.Journaled {
			n, err := db.Delete(req.Collection, req.Filter, req.Multi)
			if err != nil {
				return &Response{Error: err.Error()}
			}
			return &Response{OK: true, N: int64(n)}
		}
		res := s.execBatch(req, []storage.WriteOp{storage.DeleteWriteOp(req.Filter, req.Multi)}, true, wc)
		if err := res.FirstError(); err != nil {
			return &Response{Error: err.Error()}
		}
		return &Response{OK: true, N: int64(res.Deleted)}
	case OpAggregate:
		if req.BatchSize > 0 {
			it, err := db.AggregateCursor(req.Collection, req.Docs)
			if err != nil {
				return &Response{Error: err.Error()}
			}
			return s.cursorResponse(req.DB+"."+req.Collection, it, req.BatchSize)
		}
		docs, err := db.Aggregate(req.Collection, req.Docs)
		if err != nil {
			return &Response{Error: err.Error()}
		}
		return &Response{OK: true, Docs: docs, N: int64(len(docs))}
	case OpWatch:
		sub, err := s.backend.Watch(req.DB, req.Collection, mongod.WatchOptions{
			Pipeline:    req.Docs,
			ResumeAfter: req.ResumeAfter,
		})
		if err != nil {
			return &Response{Error: err.Error()}
		}
		batchSize := req.BatchSize
		if batchSize <= 0 {
			batchSize = storage.DefaultBatchSize
		}
		// The first reply carries whatever is immediately available (the
		// resume replay, typically) without blocking; the client polls the
		// live tail with getMore.
		docs, err := drainWatch(sub, batchSize, 0)
		if err != nil {
			sub.Close()
			return &Response{Error: err.Error()}
		}
		id := s.registerCursor(&openCursor{sub: sub, ns: req.DB + "." + req.Collection})
		return &Response{OK: true, Docs: docs, N: int64(len(docs)), CursorID: id, ResumeToken: sub.ResumeToken()}
	case OpGetMore:
		oc, ok := s.getMoreCursor(req.CursorID)
		if !ok {
			return &Response{Error: fmt.Sprintf("cursor %d not found", req.CursorID)}
		}
		batchSize := req.BatchSize
		if batchSize <= 0 {
			batchSize = storage.DefaultBatchSize
		}
		if oc.sub != nil {
			return s.watchGetMore(req, oc, batchSize)
		}
		docs, err := pullBatch(oc.it, batchSize)
		if err != nil {
			oc.it.Close()
			return &Response{Error: err.Error()}
		}
		resp := &Response{OK: true, Docs: docs, N: int64(len(docs))}
		if len(docs) == batchSize {
			s.cursorMu.Lock()
			oc.lastUsed = s.now()
			s.cursors[req.CursorID] = oc
			s.cursorMu.Unlock()
			resp.CursorID = req.CursorID
		} else {
			oc.it.Close()
		}
		return resp
	case OpKillCursors:
		// Unlike takeCursor, a kill also claims a change-stream cursor
		// with a getMore in flight: closing the subscription unblocks the
		// parked awaitData wait, which then observes the removal.
		s.cursorMu.Lock()
		oc, ok := s.cursors[req.CursorID]
		if ok {
			delete(s.cursors, req.CursorID)
		}
		s.cursorMu.Unlock()
		if ok {
			// For a change-stream cursor this tears the subscription down:
			// the watcher detaches from the broker and its buffer is
			// released, so nothing keeps accumulating server-side.
			oc.close()
		}
		return &Response{OK: true, N: boolToN(ok)}
	case OpEnsureIndex:
		if _, err := db.EnsureIndex(req.Collection, req.Keys, req.Unique); err != nil {
			return &Response{Error: err.Error()}
		}
		return &Response{OK: true}
	case OpCheckpoint:
		st, err := s.backend.Checkpoint()
		if err != nil {
			return &Response{Error: err.Error()}
		}
		return &Response{OK: true, N: 1, Result: bson.D(
			"lsn", st.LSN,
			"collections", st.Collections,
			"segmentsPruned", st.SegmentsPruned,
			"skipped", st.Skipped,
		)}
	case OpShardCollection:
		return &Response{Error: "shardCollection requires a query router (docstored -shards)"}
	case OpDrop:
		dropped := db.DropCollection(req.Collection)
		return &Response{OK: true, N: boolToN(dropped)}
	case OpListColls:
		names := db.CollectionNames()
		docs := make([]*bson.Doc, len(names))
		for i, n := range names {
			docs[i] = bson.D("name", n)
		}
		return &Response{OK: true, Docs: docs, N: int64(len(names))}
	case OpStats:
		st := s.backend.Status()
		doc := bson.D(
			"name", st.Name,
			"databases", st.Databases,
			"collections", st.Collections,
			"documents", st.Documents,
			"dataSizeBytes", st.DataSizeBytes,
			"indexSizeBytes", st.IndexSizeBytes,
		)
		if broker := s.backend.ChangeStreams(); broker != nil {
			cs := broker.Stats()
			csDoc := bson.D(
				"watchers", cs.Watchers,
				"recordsPublished", cs.RecordsPublished,
				"eventsDelivered", cs.EventsDelivered,
				"slowConsumers", cs.SlowConsumers,
				"bufferedEvents", cs.BufferedEvents,
				"maxBufferDepth", cs.MaxBufferDepth,
			)
			// Per-watcher buffer depths: which consumer is heading toward
			// slow-consumer invalidation, and how close it is.
			if depths := broker.WatcherDepths(); len(depths) > 0 {
				arr := make([]any, len(depths))
				for i, d := range depths {
					arr[i] = bson.D(
						"id", d.ID, "db", d.DB, "coll", d.Coll,
						"buffered", d.Buffered, "capacity", d.Capacity,
					)
				}
				csDoc.Set("watcherDepths", arr)
			}
			doc.Set("changeStreams", csDoc)
		}
		// Durability health: write-path fsync latency and the group-commit
		// batch size distribution, present only when a WAL is attached.
		if fsync, batch, walStats, ok := s.backend.WALHealth(); ok {
			doc.Set("wal", bson.D(
				"appends", walStats.Appends,
				"syncs", walStats.Syncs,
				"fsyncP50US", fsync.P50().Microseconds(),
				"fsyncP99US", fsync.P99().Microseconds(),
				"fsyncCount", fsync.Count,
				"groupCommitMeanBatch", int64(batch.Mean()),
				"groupCommitBatches", batch.Count,
			))
		}
		// Replication health: per-member lag and apply recency, reached
		// through an interface so wire does not import replset.
		if hs, ok := s.repl.(replHealthSource); ok {
			if members := hs.HealthDocs(); len(members) > 0 {
				arr := make([]any, len(members))
				for i, m := range members {
					arr[i] = m
				}
				doc.Set("repl", bson.D("members", arr))
			}
		}
		// The MVCC engine's memory-economics gauges, plus every open
		// server-side cursor with its namespace and idle age: together they
		// answer "which cursor is retaining memory" — a cursor on the
		// namespace whose gauges show old pins and retained bytes is the
		// one holding superseded versions alive.
		doc.Set("engine", bson.D(
			"liveVersions", st.Engine.LiveVersions,
			"pinnedSnapshots", st.Engine.PinnedSnapshots,
			"oldestPinAgeMS", st.Engine.OldestPinAge.Milliseconds(),
			"retainedBytes", st.Engine.RetainedBytes,
			"pages", st.Engine.Pages,
			"pageSizeRecords", st.Engine.PageSizeRecords,
			"cowBytesCopied", st.Engine.COWBytesCopied,
			"cowBytesShared", st.Engine.COWBytesShared,
			"reclaimedBytes", st.Engine.ReclaimedBytes,
			"pagesCopied", st.Engine.PagesCopied,
			"pagesRecycled", st.Engine.PagesRecycled,
			"treeNodesCopied", st.Engine.TreeNodesCopied,
			"treeBytesCopied", st.Engine.TreeBytesCopied,
			"treeBytesShared", st.Engine.TreeBytesShared,
			"treeNodesReclaimed", st.Engine.TreeNodesReclaimed,
			"treeBytesReclaimed", st.Engine.TreeBytesReclaimed,
		))
		doc.Set("openCursors", s.cursorStats())
		return &Response{OK: true, Docs: []*bson.Doc{doc}, N: 1}
	default:
		return &Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// watchGetMore serves a getMore against a tailable change-stream cursor:
// wait up to the request's maxTimeMS for the first event (awaitData), return
// whatever accumulated, and keep the cursor open — the stream never
// exhausts. The caller's getMoreCursor left the cursor registered and marked
// in-use, so the reaper skips it and a concurrent killCursors can still
// find it and tear it down, which unblocks the wait here.
func (s *Server) watchGetMore(req *Request, oc *openCursor, batchSize int) *Response {
	maxWait := DefaultAwaitDataTimeout
	if req.MaxTimeMS > 0 {
		maxWait = time.Duration(req.MaxTimeMS) * time.Millisecond
	}
	docs, err := drainWatch(oc.sub, batchSize, maxWait)

	s.cursorMu.Lock()
	// The token must be read BEFORE inUse clears: this handler is the
	// subscription's sole consumer only while it holds the in-use claim,
	// and the instant the claim drops another getMore may start writing
	// the subscription's token.
	token := oc.sub.ResumeToken()
	_, live := s.cursors[req.CursorID]
	if live {
		if err != nil {
			delete(s.cursors, req.CursorID)
		} else {
			oc.inUse = false
			oc.lastUsed = s.now()
		}
	}
	s.cursorMu.Unlock()
	if err != nil {
		// Terminal (slow consumer, stream closed): the cursor is gone; the
		// client resumes from the token of its last successful batch, so
		// events buffered past that token are not lost, just re-fetched.
		oc.sub.Close()
		return &Response{Error: err.Error()}
	}
	if !live {
		// Killed while the wait was parked: report the kill, not a batch.
		return &Response{Error: fmt.Sprintf("cursor %d not found", req.CursorID)}
	}
	return &Response{OK: true, Docs: docs, N: int64(len(docs)), CursorID: req.CursorID, ResumeToken: token}
}

// findOptions builds the storage options of a find request. A non-nil
// second return is the error response of a malformed sort or projection.
func (s *Server) findOptions(req *Request) (storage.FindOptions, *Response) {
	opts := storage.FindOptions{
		Limit: req.Limit, Skip: req.Skip, Hint: req.Hint,
		AtVersion: req.AtVersion, Trace: req.span,
	}
	if req.Sort != nil {
		sortSpec, err := query.ParseSort(req.Sort)
		if err != nil {
			return opts, &Response{Error: err.Error()}
		}
		opts.Sort = sortSpec
	}
	if req.Projection != nil {
		proj, err := query.ParseProjection(req.Projection)
		if err != nil {
			return opts, &Response{Error: err.Error()}
		}
		opts.Projection = proj
	}
	return opts, nil
}

// handleRouted serves the data-plane ops of a router-attached server by
// fanning them out through the query router. The second return reports
// whether the op was one of them; anything else (introspection, change
// streams, cursor bookkeeping) falls through to the local backend.
func (s *Server) handleRouted(req *Request) (*Response, bool) {
	r := s.router
	switch req.Op {
	case OpInsert:
		if req.Doc == nil {
			return &Response{Error: "doc is required"}, true
		}
		wc, errResp := s.writeConcernFor(req)
		if errResp != nil {
			return errResp, true
		}
		if wc.IsZero() && !req.Journaled {
			if _, err := r.Insert(req.DB, req.Collection, req.Doc); err != nil {
				return &Response{Error: err.Error()}, true
			}
			return &Response{OK: true, N: 1}, true
		}
		res := r.BulkWrite(req.DB, req.Collection, []storage.WriteOp{storage.InsertWriteOp(req.Doc)},
			storage.BulkOptions{Ordered: true, Journaled: req.Journaled, WriteConcern: wc, Trace: req.span})
		if err := res.FirstError(); err != nil {
			return &Response{Error: err.Error()}, true
		}
		return &Response{OK: true, N: 1}, true
	case OpInsertMany:
		wc, errResp := s.writeConcernFor(req)
		if errResp != nil {
			return errResp, true
		}
		if wc.IsZero() && !req.Journaled {
			ids, err := r.InsertMany(req.DB, req.Collection, req.Docs)
			if err != nil {
				return &Response{Error: err.Error(), N: int64(len(ids))}, true
			}
			return &Response{OK: true, N: int64(len(ids))}, true
		}
		res := r.BulkWrite(req.DB, req.Collection, storage.InsertOps(req.Docs),
			storage.BulkOptions{Ordered: true, Journaled: req.Journaled, WriteConcern: wc, Trace: req.span})
		if err := res.FirstError(); err != nil {
			return &Response{Error: err.Error(), N: int64(res.Inserted)}, true
		}
		return &Response{OK: true, N: int64(res.Inserted)}, true
	case OpBulkWrite:
		wc, errResp := s.writeConcernFor(req)
		if errResp != nil {
			return errResp, true
		}
		ops := make([]storage.WriteOp, len(req.Docs))
		for i, opDoc := range req.Docs {
			op, err := decodeWriteOp(opDoc)
			if err != nil {
				return &Response{Error: fmt.Sprintf("bulkWrite op %d: %v", i, err)}, true
			}
			ops[i] = op
		}
		res := r.BulkWrite(req.DB, req.Collection, ops,
			storage.BulkOptions{Ordered: req.Ordered, Journaled: req.Journaled, WriteConcern: wc, Trace: req.span})
		if res.DurabilityErr != nil && res.Attempted == 0 {
			return &Response{Error: res.DurabilityErr.Error(), Result: encodeBulkResult(res)}, true
		}
		return &Response{
			OK:     true,
			N:      int64(res.Inserted + res.Modified + res.Upserted + res.Deleted),
			Result: encodeBulkResult(res),
		}, true
	case OpFind:
		opts, errResp := s.findOptions(req)
		if errResp != nil {
			return errResp, true
		}
		if req.BatchSize > 0 {
			opts.BatchSize = req.BatchSize
			cur, err := r.FindCursor(req.DB, req.Collection, req.Filter, opts)
			if err != nil {
				return &Response{Error: err.Error()}, true
			}
			return s.cursorResponse(req.DB+"."+req.Collection, cur, req.BatchSize), true
		}
		docs, err := r.Find(req.DB, req.Collection, req.Filter, opts)
		if err != nil {
			return &Response{Error: err.Error()}, true
		}
		return &Response{OK: true, Docs: docs, N: int64(len(docs))}, true
	case OpCount:
		n, err := r.Count(req.DB, req.Collection, req.Filter)
		if err != nil {
			return &Response{Error: err.Error()}, true
		}
		return &Response{OK: true, N: int64(n)}, true
	case OpUpdate:
		spec := query.UpdateSpec{Query: req.Filter, Update: req.Update, Upsert: req.Upsert, Multi: req.Multi}
		wc, errResp := s.writeConcernFor(req)
		if errResp != nil {
			return errResp, true
		}
		var res storage.UpdateResult
		var err error
		if wc.IsZero() && !req.Journaled {
			res, err = r.Update(req.DB, req.Collection, spec)
		} else {
			res, err = r.UpdateWithOptions(req.DB, req.Collection, spec,
				storage.BulkOptions{Ordered: true, Journaled: req.Journaled, WriteConcern: wc, Trace: req.span})
		}
		if err != nil {
			return &Response{Error: err.Error()}, true
		}
		return &Response{OK: true, N: int64(res.Modified)}, true
	case OpDelete:
		wc, errResp := s.writeConcernFor(req)
		if errResp != nil {
			return errResp, true
		}
		var n int
		var err error
		if wc.IsZero() && !req.Journaled {
			n, err = r.Delete(req.DB, req.Collection, req.Filter, req.Multi)
		} else {
			n, err = r.DeleteWithOptions(req.DB, req.Collection, req.Filter, req.Multi,
				storage.BulkOptions{Ordered: true, Journaled: req.Journaled, WriteConcern: wc, Trace: req.span})
		}
		if err != nil {
			return &Response{Error: err.Error()}, true
		}
		return &Response{OK: true, N: int64(n)}, true
	case OpAggregate:
		if req.BatchSize > 0 {
			it, err := r.AggregateCursor(req.DB, req.Collection, req.Docs)
			if err != nil {
				return &Response{Error: err.Error()}, true
			}
			return s.cursorResponse(req.DB+"."+req.Collection, it, req.BatchSize), true
		}
		docs, err := r.Aggregate(req.DB, req.Collection, req.Docs)
		if err != nil {
			return &Response{Error: err.Error()}, true
		}
		return &Response{OK: true, Docs: docs, N: int64(len(docs))}, true
	case OpEnsureIndex:
		if err := r.EnsureIndex(req.DB, req.Collection, req.Keys, req.Unique); err != nil {
			return &Response{Error: err.Error()}, true
		}
		return &Response{OK: true}, true
	case OpDrop:
		dropped := false
		for _, name := range r.ShardNames() {
			if r.Shard(name).Database(req.DB).DropCollection(req.Collection) {
				dropped = true
			}
		}
		return &Response{OK: true, N: boolToN(dropped)}, true
	case OpListColls:
		seen := make(map[string]bool)
		var names []string
		for _, shard := range r.ShardNames() {
			for _, n := range r.Shard(shard).Database(req.DB).CollectionNames() {
				if !seen[n] {
					seen[n] = true
					names = append(names, n)
				}
			}
		}
		sort.Strings(names)
		docs := make([]*bson.Doc, len(names))
		for i, n := range names {
			docs[i] = bson.D("name", n)
		}
		return &Response{OK: true, Docs: docs, N: int64(len(names))}, true
	case OpShardCollection:
		if req.Keys == nil {
			return &Response{Error: "keys is required"}, true
		}
		if _, err := r.EnableSharding(req.DB, req.Collection, req.Keys, 0); err != nil {
			return &Response{Error: err.Error()}, true
		}
		return &Response{OK: true}, true
	case OpCheckpoint:
		st, err := r.Checkpoint()
		if err != nil {
			return &Response{Error: err.Error()}, true
		}
		shardNames := make([]string, 0, len(st.Shards))
		for name := range st.Shards {
			shardNames = append(shardNames, name)
		}
		sort.Strings(shardNames)
		result := bson.NewDoc(len(shardNames))
		for _, name := range shardNames {
			sst := st.Shards[name]
			result.Set(name, bson.D(
				"lsn", sst.LSN,
				"collections", sst.Collections,
				"segmentsPruned", sst.SegmentsPruned,
				"skipped", sst.Skipped,
			))
		}
		return &Response{OK: true, N: int64(len(st.Shards)), Result: bson.D("shards", result)}, true
	}
	return nil, false
}

func boolToN(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// writeConcernFor validates and resolves a write request's concern: parse
// failures (garbage types, unknown fields, a non-document writeConcern)
// reject the request, an absent concern falls back to the server default,
// and w > 1 is refused outright on a standalone server — there is no second
// member that could ever acknowledge, so accepting it would hang or lie.
// {w: "majority"} is one member on a standalone and passes.
func (s *Server) writeConcernFor(req *Request) (storage.WriteConcern, *Response) {
	if req.invalidWC {
		return storage.WriteConcern{}, &Response{Error: "invalid writeConcern: must be a document"}
	}
	wc, err := storage.ParseWriteConcern(req.WriteConcern)
	if err != nil {
		return storage.WriteConcern{}, &Response{Error: err.Error()}
	}
	if wc.IsZero() {
		wc = s.defaultWC
	}
	if s.repl == nil && wc.W > 1 {
		return storage.WriteConcern{}, &Response{Error: fmt.Sprintf("writeConcern {w: %d} requires a replica set; this server is standalone", wc.W)}
	}
	return wc, nil
}

// execBatch is the single write path behind every insert/insertMany/update/
// delete/bulkWrite request that carries an acknowledgement contract: one
// logged batch, routed through the replica set when one is attached so the
// response can wait on quorum, so the five ops cannot drift in how they
// acknowledge.
func (s *Server) execBatch(req *Request, ops []storage.WriteOp, ordered bool, wc storage.WriteConcern) storage.BulkResult {
	opts := storage.BulkOptions{Ordered: ordered, Journaled: req.Journaled, WriteConcern: wc, Trace: req.span}
	if s.repl != nil {
		return s.repl.BulkWrite(req.DB, req.Collection, ops, opts)
	}
	return s.backend.Database(req.DB).BulkWrite(req.Collection, ops, opts)
}
