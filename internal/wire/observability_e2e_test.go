package wire

import (
	"encoding/json"
	"regexp"
	"strings"
	"testing"
	"time"

	"docstore/internal/bson"
	"docstore/internal/mongod"
	"docstore/internal/mongos"
	"docstore/internal/replset"
	"docstore/internal/sharding"
	"docstore/internal/trace"
	"docstore/internal/wal"
)

// startObservedCluster is startTracedCluster plus the export pipeline: the
// tracer drains retained traces into an in-memory OTLP sink, and the primary
// member is returned so tests can scrape its metric registry directly.
func startObservedCluster(t *testing.T) (*Server, *mongod.Server, *trace.MemorySink) {
	t.Helper()
	members := []*mongod.Server{
		mongod.NewServer(mongod.Options{Name: "A"}),
		mongod.NewServer(mongod.Options{Name: "B"}),
		mongod.NewServer(mongod.Options{Name: "C"}),
	}
	if _, err := members[0].EnableDurability(mongod.Durability{Dir: t.TempDir(), Sync: wal.SyncGroupCommit}); err != nil {
		t.Fatalf("enabling durability: %v", err)
	}
	t.Cleanup(func() { members[0].CloseDurability() })
	rs, err := replset.New("rs0", members...)
	if err != nil {
		t.Fatal(err)
	}
	rs.StartReplication()
	t.Cleanup(rs.Close)

	router := mongos.NewRouter(sharding.NewConfigServer(), mongos.Options{})
	router.AddReplicaShard("shard0", rs)
	if _, err := router.EnableSharding("db", "c", bson.D("k", 1), 1<<20); err != nil {
		t.Fatal(err)
	}

	srv := NewServer(rs.Primary())
	srv.SetReplicaSet(router)
	tr := trace.New(trace.Options{SampleRate: 1})
	sink := &trace.MemorySink{}
	exp := trace.NewExporter(sink, "docstored-test", 0)
	tr.SetExporter(exp)
	srv.SetTracer(tr)
	t.Cleanup(func() { exp.Close() })
	t.Cleanup(func() { srv.Close() })
	return srv, members[0], sink
}

// TestObservabilityEndToEnd is the acceptance path for the labeled-telemetry
// pipeline: one traced w:2 write against a named collection must yield
//
//   - a {collection, shard, op} labeled duration histogram in the Prometheus
//     exposition, carrying an exemplar,
//   - a span tree exported through the OTLP-shaped sink whose trace ID
//     matches that exemplar (and resolves via getTraces),
//   - replication-lag, WAL-fsync and change-stream watcher-depth health in
//     serverStatus.
func TestObservabilityEndToEnd(t *testing.T) {
	srv, primary, sink := startObservedCluster(t)

	// A live watcher, so serverStatus has a buffer depth to report.
	if resp := srv.Handle(&Request{Op: OpWatch, DB: "db", Collection: "c"}); resp.Error != "" {
		t.Fatalf("watch: %s", resp.Error)
	}

	resp := srv.Handle(&Request{
		Op: OpInsert, DB: "db", Collection: "c",
		Doc:          bson.D(bson.IDKey, 1, "k", 1),
		WriteConcern: bson.D("w", 2),
	})
	if resp.Error != "" {
		t.Fatalf("insert: %s", resp.Error)
	}

	// The labeled family: the insert executed on shard primary A as a
	// bulkWrite against db.c, so exactly that series must hold the sample —
	// with an exemplar, because the trace was sampled at start. Exemplars
	// ride only the OpenMetrics exposition; the classic format (checked
	// below) must stay parseable by version=0.0.4 scrapers.
	var b strings.Builder
	primary.Metrics().WriteOpenMetrics(&b)
	exposition := b.String()
	series := `docstore_mongod_collection_op_duration_seconds_count{collection="db.c",op="bulkWrite",shard="A"} 1`
	if !strings.Contains(exposition, series) {
		t.Fatalf("labeled histogram series missing, want %q in:\n%s", series, exposition)
	}
	exemplarRE := regexp.MustCompile(
		`docstore_mongod_collection_op_duration_seconds_bucket\{collection="db\.c",op="bulkWrite",shard="A",le="[^"]+"\} \d+ # \{trace_id="([0-9a-f]+)"\}`)
	m := exemplarRE.FindStringSubmatch(exposition)
	if m == nil {
		t.Fatalf("no exemplar on the labeled series:\n%s", exposition)
	}
	exemplarID := m[1]

	// The same registry rendered classically must carry the series but no
	// exemplar suffix — classic-format parsers reject `#` after the value.
	b.Reset()
	primary.Metrics().WritePrometheus(&b)
	if classic := b.String(); !strings.Contains(classic, series) {
		t.Fatalf("labeled series missing from classic exposition:\n%s", classic)
	} else if strings.Contains(classic, "# {trace_id=") {
		t.Fatalf("classic exposition carries an exemplar:\n%s", classic)
	}

	// The exemplar's trace resolves through getTraces as the insert's tree.
	views := srv.Tracer().Traces(0)
	var root *trace.View
	for i := range views {
		if views[i].TraceID == exemplarID {
			root = &views[i]
		}
	}
	if root == nil || root.Name != "wire.insert" {
		t.Fatalf("exemplar trace %s not retained as wire.insert (views: %+v)", exemplarID, views)
	}

	// The same trace went through the OTLP export path: one NDJSON-able
	// payload whose 32-hex trace id ends in our 16-hex id, shaped as
	// resourceSpans -> scopeSpans -> spans.
	srv.Tracer().Exporter().Flush()
	var payload []byte
	for _, p := range sink.Exports() {
		if strings.Contains(string(p), `"wire.insert"`) {
			payload = p
		}
	}
	if payload == nil {
		t.Fatalf("insert trace never reached the OTLP sink (%d payloads)", len(sink.Exports()))
	}
	var otlp struct {
		ResourceSpans []struct {
			ScopeSpans []struct {
				Spans []struct {
					TraceID string `json:"traceId"`
					Name    string `json:"name"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(payload, &otlp); err != nil {
		t.Fatalf("payload is not OTLP-shaped JSON: %v\n%s", err, payload)
	}
	spans := otlp.ResourceSpans[0].ScopeSpans[0].Spans
	if len(spans) < 2 {
		t.Fatalf("exported %d spans, want the whole tree", len(spans))
	}
	for _, sp := range spans {
		if len(sp.TraceID) != 32 || !strings.HasSuffix(sp.TraceID, exemplarID) {
			t.Fatalf("exported span %q trace id %q does not match exemplar %s", sp.Name, sp.TraceID, exemplarID)
		}
	}

	// The exemplar is also queryable through the wire op.
	eRes := srv.Handle(&Request{Op: OpGetExemplars, Metric: "docstore_mongod_collection_op_duration_seconds"})
	if eRes.Error != "" || len(eRes.Docs) == 0 {
		t.Fatalf("getExemplars: %q, %d docs", eRes.Error, len(eRes.Docs))
	}
	if labels, _ := eRes.Docs[0].Get("labels"); !strings.Contains(labels.(string), `collection="db.c"`) {
		t.Fatalf("exemplar doc labels = %v", labels)
	}
	if !strings.Contains(eRes.Docs[0].ToJSON(), exemplarID) {
		t.Fatalf("exemplar doc lost the trace id: %s", eRes.Docs[0].ToJSON())
	}

	// serverStatus: cluster health gauges.
	st := srv.Handle(&Request{Op: OpStats, DB: "db"})
	if st.Error != "" {
		t.Fatalf("serverStatus: %s", st.Error)
	}
	status := st.Docs[0]

	replAny, ok := status.Get("repl")
	if !ok {
		t.Fatalf("serverStatus has no repl section: %s", status.ToJSON())
	}
	memberDocs, _ := replAny.(*bson.Doc).Get("members")
	members := memberDocs.([]any)
	if len(members) != 3 {
		t.Fatalf("repl members = %d, want 3", len(members))
	}
	for _, m := range members {
		md := m.(*bson.Doc)
		if _, ok := md.Get("lag"); !ok {
			t.Fatalf("member doc missing lag: %s", md.ToJSON())
		}
		if _, ok := md.Get("applyAgeUS"); !ok {
			t.Fatalf("member doc missing applyAgeUS: %s", md.ToJSON())
		}
	}
	// The w:2 write was acknowledged by a second member, so at least two
	// members sit at the tip.
	caughtUp := 0
	for _, m := range members {
		if lag, _ := m.(*bson.Doc).Get("lag"); lag == int64(0) {
			caughtUp++
		}
	}
	if caughtUp < 2 {
		t.Fatalf("w:2 acknowledged but only %d members at the tip: %s", caughtUp, status.ToJSON())
	}

	walAny, ok := status.Get("wal")
	if !ok {
		t.Fatalf("serverStatus has no wal section: %s", status.ToJSON())
	}
	walDoc := walAny.(*bson.Doc)
	if n, _ := walDoc.Get("fsyncCount"); n == int64(0) {
		t.Fatalf("journaled write left fsyncCount at 0: %s", walDoc.ToJSON())
	}
	if _, ok := walDoc.Get("groupCommitMeanBatch"); !ok {
		t.Fatalf("wal section missing groupCommitMeanBatch: %s", walDoc.ToJSON())
	}

	csAny, ok := status.Get("changeStreams")
	if !ok {
		t.Fatalf("serverStatus has no changeStreams section: %s", status.ToJSON())
	}
	depthsAny, ok := csAny.(*bson.Doc).Get("watcherDepths")
	if !ok {
		t.Fatalf("changeStreams missing watcherDepths: %s", csAny.(*bson.Doc).ToJSON())
	}
	depths := depthsAny.([]any)
	if len(depths) != 1 {
		t.Fatalf("watcherDepths = %d entries, want the one live watcher", len(depths))
	}
	depth := depths[0].(*bson.Doc)
	if db, _ := depth.Get("db"); db != "db" {
		t.Fatalf("watcher depth doc = %s", depth.ToJSON())
	}
	if capacity, _ := depth.Get("capacity"); capacity == int64(0) {
		t.Fatalf("watcher capacity = 0: %s", depth.ToJSON())
	}
}

// TestTraceFiltersAndExemplarsOverTheWire drives the filtered introspection
// ops through a real socket: opName narrows getTraces to one root, an
// unsatisfiable duration floor empties it, idle currentOp stays empty under
// any filter, and getExemplars returns the wire layer's own series.
func TestTraceFiltersAndExemplarsOverTheWire(t *testing.T) {
	srv, _, _ := startObservedCluster(t)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Insert("db", "c", bson.D(bson.IDKey, 1, "k", 1)); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if _, err := c.Find("db", "c", bson.D("k", 1), nil, 0); err != nil {
		t.Fatalf("find: %v", err)
	}

	all, err := c.TracesFiltered(TraceFilter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("unfiltered traces = %d, want 2", len(all))
	}
	inserts, err := c.TracesFiltered(TraceFilter{OpName: "wire.insert"})
	if err != nil {
		t.Fatal(err)
	}
	if len(inserts) != 1 {
		t.Fatalf("opName-filtered traces = %d, want 1", len(inserts))
	}
	if name, _ := inserts[0].Get("name"); name != "wire.insert" {
		t.Fatalf("filtered root = %v", name)
	}
	// The filter runs before the limit: asking for one trace at least an
	// hour long returns nothing rather than the newest trace.
	none, err := c.TracesFiltered(TraceFilter{MinDuration: time.Hour, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("hour-floor returned %d traces", len(none))
	}
	ops, err := c.CurrentOpFiltered(TraceFilter{OpName: "wire."})
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 0 {
		t.Fatalf("idle filtered currentOp = %d ops", len(ops))
	}

	// Both handled ops were traced, so the wire latency family has exemplars.
	ex, err := c.Exemplars(metricRequestDuration)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex) == 0 {
		t.Fatalf("no exemplars for %s", metricRequestDuration)
	}
	for _, doc := range ex {
		if name, _ := doc.Get("name"); name != metricRequestDuration {
			t.Fatalf("metric filter leaked series %v", name)
		}
	}
}
