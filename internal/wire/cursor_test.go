package wire

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"docstore/internal/bson"
	"docstore/internal/mongod"
)

func cursorTestServer(t *testing.T, docs int) (*Server, *Client) {
	srv, client, _ := cursorTestServerClock(t, docs)
	return srv, client
}

// cursorTestServerClock additionally injects a fake idle clock (installed
// before the server starts handling requests, so no goroutine observes the
// swap). Time stands still unless the test advances it, which makes
// idle-reaping behaviour fully deterministic.
func cursorTestServerClock(t *testing.T, docs int) (*Server, *Client, *fakeClock) {
	t.Helper()
	backend := mongod.NewServer(mongod.Options{})
	db := backend.Database("db")
	for i := 0; i < docs; i++ {
		if _, err := db.Insert("rows", bson.D(bson.IDKey, i, "g", i%5, "v", i)); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer(backend)
	clock := newFakeClock()
	srv.now = clock.Now
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	client, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return srv, client, clock
}

// TestWireFindCursorGetMore drives the getMore path over a real TCP
// connection: the first reply carries one batch and a cursor id, getMore
// pages through the rest, and the result matches a plain find.
func TestWireFindCursorGetMore(t *testing.T) {
	srv, client := cursorTestServer(t, 250)

	want, err := client.Find("db", "rows", nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 250 {
		t.Fatalf("plain find returned %d docs", len(want))
	}

	cur, err := client.FindCursor("db", "rows", nil, nil, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cur.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("cursor returned %d docs, find returned %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("doc %d differs:\n got  %v\n want %v", i, got[i], want[i])
		}
	}
	if n := srv.OpenCursors(); n != 0 {
		t.Fatalf("%d cursors still open after drain", n)
	}
}

// TestWireAggregateCursor pages an aggregation result through getMore.
func TestWireAggregateCursor(t *testing.T) {
	srv, client := cursorTestServer(t, 100)
	stages := []*bson.Doc{
		bson.D("$match", bson.D("g", bson.D("$lt", 3))),
		bson.D("$sort", bson.D("v", -1)),
	}
	want, err := client.Aggregate("db", "rows", stages)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := client.AggregateCursor("db", "rows", stages, 7)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cur.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("cursor returned %d docs, aggregate returned %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("doc %d differs", i)
		}
	}
	if n := srv.OpenCursors(); n != 0 {
		t.Fatalf("%d cursors still open after drain", n)
	}
}

// TestWireKillCursors closes a half-consumed cursor and checks the server
// releases it and rejects further getMores.
func TestWireKillCursors(t *testing.T) {
	srv, client := cursorTestServer(t, 200)
	cur, err := client.FindCursor("db", "rows", nil, nil, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cur.Next(); !ok {
		t.Fatal("expected a first document")
	}
	if srv.OpenCursors() != 1 {
		t.Fatalf("expected 1 open cursor, have %d", srv.OpenCursors())
	}
	id := cur.id
	cur.Close()
	if srv.OpenCursors() != 0 {
		t.Fatalf("kill left %d cursors open", srv.OpenCursors())
	}
	if _, err := client.Do(&Request{Op: OpGetMore, DB: "db", CursorID: id}); err == nil {
		t.Fatal("getMore on a killed cursor should fail")
	}
}

// TestWireCursorExactMultiple checks the edge where the result size is an
// exact multiple of the batch size: the server keeps the cursor open after
// the last full batch and the final getMore returns an empty batch with
// cursor id 0.
func TestWireCursorExactMultiple(t *testing.T) {
	_, client := cursorTestServer(t, 80)
	resp, err := client.Do(&Request{Op: OpFind, DB: "db", Collection: "rows", BatchSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Docs) != 40 || resp.CursorID == 0 {
		t.Fatalf("first batch: %d docs, cursor %d", len(resp.Docs), resp.CursorID)
	}
	resp2, err := client.Do(&Request{Op: OpGetMore, DB: "db", CursorID: resp.CursorID, BatchSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp2.Docs) != 40 || resp2.CursorID == 0 {
		t.Fatalf("second batch: %d docs, cursor %d", len(resp2.Docs), resp2.CursorID)
	}
	resp3, err := client.Do(&Request{Op: OpGetMore, DB: "db", CursorID: resp2.CursorID, BatchSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp3.Docs) != 0 || resp3.CursorID != 0 {
		t.Fatalf("final batch: %d docs, cursor %d", len(resp3.Docs), resp3.CursorID)
	}
}

// TestWireCursorIdleReaping checks abandoned cursors are reaped after the
// idle timeout instead of pinning their snapshots forever. The idle clock is
// injected and advanced explicitly — no sleeping, so a slow scheduler can
// neither hide the stale cursor nor age the fresh one into the reaper.
func TestWireCursorIdleReaping(t *testing.T) {
	srv, client, clock := cursorTestServerClock(t, 100)
	resp, err := client.Do(&Request{Op: OpFind, DB: "db", Collection: "rows", BatchSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if resp.CursorID == 0 {
		t.Fatal("expected an open cursor")
	}
	if srv.OpenCursors() != 1 {
		t.Fatalf("expected 1 open cursor, have %d", srv.OpenCursors())
	}
	clock.Advance(DefaultCursorTimeout + time.Minute)
	// Any cursor operation triggers lazy reaping; a fresh cursor must not be
	// swept with the stale one.
	resp2, err := client.Do(&Request{Op: OpFind, DB: "db", Collection: "rows", BatchSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if srv.OpenCursors() != 1 {
		t.Fatalf("stale cursor not reaped: %d open", srv.OpenCursors())
	}
	if _, err := client.Do(&Request{Op: OpGetMore, DB: "db", CursorID: resp.CursorID}); err == nil {
		t.Fatal("getMore on a reaped cursor should fail")
	}
	if _, err := client.Do(&Request{Op: OpGetMore, DB: "db", CursorID: resp2.CursorID, BatchSize: 10}); err != nil {
		t.Fatalf("fresh cursor was reaped too: %v", err)
	}
	// The explicit trigger reaps without any cursor traffic.
	if _, err := client.Do(&Request{Op: OpFind, DB: "db", Collection: "rows", BatchSize: 10}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(DefaultCursorTimeout + time.Minute)
	if n := srv.ReapIdleCursors(); n != 0 {
		t.Fatalf("explicit reap left %d cursors", n)
	}
}

// TestWireConcurrentCursors interleaves several cursors over separate
// connections under -race.
func TestWireConcurrentCursors(t *testing.T) {
	srv, client := cursorTestServer(t, 300)
	addr := srv.listener.Addr().String()
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			c, err := Dial(addr, time.Second)
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			cur, err := c.FindCursor("db", "rows", bson.D("g", w), nil, 0, 9)
			if err != nil {
				done <- err
				return
			}
			docs, err := cur.All()
			if err != nil {
				done <- err
				return
			}
			if len(docs) != 60 {
				done <- fmt.Errorf("worker %d got %d docs, want 60", w, len(docs))
				return
			}
			done <- nil
		}(w)
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	_ = client
}

// TestWireGetMoreSnapshotDuringBulkLoad is the wire-level MVCC isolation
// test: a cursor is opened, then bulkWrite batches (inserts, a whole-set
// update, deletes) land between its getMores. Every batch the wire returns
// must come from the cursor's pinned snapshot, so the reassembled result is
// exactly the at-open document set with the at-open contents. No sleeps:
// the interleaving is driven request-by-request over one connection.
func TestWireGetMoreSnapshotDuringBulkLoad(t *testing.T) {
	_, client := cursorTestServer(t, 200)

	want, err := client.Find("db", "rows", nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 200 {
		t.Fatalf("plain find returned %d docs", len(want))
	}

	cur, err := client.FindCursor("db", "rows", nil, nil, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]*bson.Doc, 0, 200)
	batches := 0
	for {
		d, ok := cur.Next()
		if !ok {
			break
		}
		got = append(got, d)
		// After each full client batch, mutate the collection through the
		// same wire connection before the next getMore is issued.
		if len(got)%30 == 0 {
			batches++
			ops := []*bson.Doc{
				BulkInsertOp(bson.D(bson.IDKey, 10000+batches, "g", 1, "v", -1)),
				BulkUpdateOp(bson.D(), bson.D("$set", bson.D("v", 777777)), true, false),
				BulkDeleteOp(bson.D(bson.IDKey, batches), false),
			}
			if _, err := client.BulkWrite("db", "rows", ops, false); err != nil {
				t.Fatalf("bulk between getMores: %v", err)
			}
		}
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("cursor returned %d docs across bulk loads, want the %d at-open docs", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("doc %d differs from at-open state:\n got  %s\n want %s", i, got[i], want[i])
		}
	}
	// A fresh find observes the mutations instead.
	after, err := client.Find("db", "rows", bson.D("v", 777777), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) == 0 {
		t.Fatalf("post-load find saw no updated docs")
	}
}

// TestWireFindHint drives the "hint" field end to end: an unknown hint is a
// request error carrying the storage engine's message, a real hint still
// answers the query.
func TestWireFindHint(t *testing.T) {
	srv, client := cursorTestServer(t, 10)

	if _, err := client.FindWithHint("db", "rows", bson.D("g", 1), nil, "nope_1", 0); err == nil {
		t.Fatalf("unknown hint must fail the find")
	} else if !strings.Contains(err.Error(), "no index with that name") {
		t.Fatalf("unknown hint error = %v", err)
	}

	if err := client.EnsureIndex("db", "rows", bson.D("g", 1), false); err != nil {
		t.Fatal(err)
	}
	docs, err := client.FindWithHint("db", "rows", bson.D("g", 1), nil, "g_1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 { // 10 docs, g = i%5: i = 1, 6
		t.Fatalf("hinted find returned %d docs, want 2", len(docs))
	}

	// Driver-style key-specification hints normalize to the index name; a
	// hint of a nonsense type is rejected, never silently dropped.
	req := decodeRequest(bson.D("op", OpFind, "db", "db", "coll", "rows",
		"filter", bson.D("g", 1), "hint", bson.D("g", 1)))
	if resp := srv.Handle(req); !resp.OK || len(resp.Docs) != 2 {
		t.Fatalf("doc-form hint: ok=%v err=%q n=%d", resp.OK, resp.Error, len(resp.Docs))
	}
	req = decodeRequest(bson.D("op", OpFind, "db", "db", "coll", "rows",
		"filter", bson.D("g", 1), "hint", 42))
	if resp := srv.Handle(req); resp.OK || !strings.Contains(resp.Error, "no index with that name") {
		t.Fatalf("numeric hint must be rejected, got ok=%v err=%q", resp.OK, resp.Error)
	}
}
