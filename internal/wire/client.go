package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"docstore/internal/bson"
)

// Client is a wire-protocol client for a docstored server.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	reader *bufio.Reader
	writer *bufio.Writer
}

// Dial connects to a docstored server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dialing %s: %w", addr, err)
	}
	return &Client{conn: conn, reader: bufio.NewReader(conn), writer: bufio.NewWriter(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends one request and waits for its response. Requests are serialized
// over the single connection.
func (c *Client) Do(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.writer.Write(append([]byte(req.encode().ToJSON()), '\n')); err != nil {
		return nil, err
	}
	if err := c.writer.Flush(); err != nil {
		return nil, err
	}
	line, err := c.reader.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	doc, err := bson.FromJSON(line)
	if err != nil {
		return nil, fmt.Errorf("wire: malformed response: %w", err)
	}
	resp := decodeResponse(doc)
	if !resp.OK {
		return resp, fmt.Errorf("wire: server error: %s", resp.Error)
	}
	return resp, nil
}

// Ping checks connectivity.
func (c *Client) Ping() error {
	_, err := c.Do(&Request{Op: OpPing})
	return err
}

// Insert inserts one document.
func (c *Client) Insert(db, coll string, doc *bson.Doc) error {
	_, err := c.Do(&Request{Op: OpInsert, DB: db, Collection: coll, Doc: doc})
	return err
}

// InsertWC is Insert at an explicit write concern, e.g.
// bson.D("w", "majority", "wtimeout", 1000). The server fails the request
// when the concern is malformed or cannot be satisfied in time.
func (c *Client) InsertWC(db, coll string, doc *bson.Doc, wc *bson.Doc) error {
	_, err := c.Do(&Request{Op: OpInsert, DB: db, Collection: coll, Doc: doc, WriteConcern: wc})
	return err
}

// InsertMany inserts a batch of documents.
func (c *Client) InsertMany(db, coll string, docs []*bson.Doc) (int64, error) {
	resp, err := c.Do(&Request{Op: OpInsertMany, DB: db, Collection: coll, Docs: docs})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// Find runs a query.
func (c *Client) Find(db, coll string, filter, sort *bson.Doc, limit int) ([]*bson.Doc, error) {
	resp, err := c.Do(&Request{Op: OpFind, DB: db, Collection: coll, Filter: filter, Sort: sort, Limit: limit})
	if err != nil {
		return nil, err
	}
	return resp.Docs, nil
}

// FindWithHint is Find forcing the named index through the wire protocol's
// "hint" field. A hint naming no index on the collection fails the request
// with the server's unknown-index error rather than silently degrading to a
// collection scan.
func (c *Client) FindWithHint(db, coll string, filter, sort *bson.Doc, hint string, limit int) ([]*bson.Doc, error) {
	resp, err := c.Do(&Request{Op: OpFind, DB: db, Collection: coll, Filter: filter, Sort: sort, Hint: hint, Limit: limit})
	if err != nil {
		return nil, err
	}
	return resp.Docs, nil
}

// FindAtVersion is Find pinned to a committed collection version — the
// client face of the engine's read-at-version (atClusterTime analogue). A
// session reads the version of its first query from the server's explain
// output (or serverStatus) and passes it to follow-up queries so every
// result describes one committed state; the server fails the request when
// the version is no longer retained.
func (c *Client) FindAtVersion(db, coll string, filter, sort *bson.Doc, atVersion int64, limit int) ([]*bson.Doc, error) {
	resp, err := c.Do(&Request{Op: OpFind, DB: db, Collection: coll, Filter: filter, Sort: sort, AtVersion: atVersion, Limit: limit})
	if err != nil {
		return nil, err
	}
	return resp.Docs, nil
}

// Checkpoint asks the server to take a durable checkpoint now. Against a
// stand-alone server it captures and streams one checkpoint; against a
// router-fronted cluster it takes a cluster-consistent checkpoint across
// every shard. The returned document carries the capture LSNs.
func (c *Client) Checkpoint() (*bson.Doc, error) {
	resp, err := c.Do(&Request{Op: OpCheckpoint})
	if err != nil {
		return nil, err
	}
	return resp.Result, nil
}

// ShardCollection declares a collection sharded on the key specification,
// so a router-fronted deployment hash-partitions it across shards. A
// stand-alone server rejects it.
func (c *Client) ShardCollection(db, coll string, keys *bson.Doc) error {
	_, err := c.Do(&Request{Op: OpShardCollection, DB: db, Collection: coll, Keys: keys})
	return err
}

// Count counts matching documents.
func (c *Client) Count(db, coll string, filter *bson.Doc) (int64, error) {
	resp, err := c.Do(&Request{Op: OpCount, DB: db, Collection: coll, Filter: filter})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// Update applies an update and returns the modified count.
func (c *Client) Update(db, coll string, filter, update *bson.Doc, multi, upsert bool) (int64, error) {
	resp, err := c.Do(&Request{Op: OpUpdate, DB: db, Collection: coll, Filter: filter, Update: update, Multi: multi, Upsert: upsert})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// Delete removes matching documents and returns the removed count.
func (c *Client) Delete(db, coll string, filter *bson.Doc, multi bool) (int64, error) {
	resp, err := c.Do(&Request{Op: OpDelete, DB: db, Collection: coll, Filter: filter, Multi: multi})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// Aggregate runs an aggregation pipeline.
func (c *Client) Aggregate(db, coll string, stages []*bson.Doc) ([]*bson.Doc, error) {
	resp, err := c.Do(&Request{Op: OpAggregate, DB: db, Collection: coll, Docs: stages})
	if err != nil {
		return nil, err
	}
	return resp.Docs, nil
}

// Cursor is a client-side cursor over a server-side result stream: it holds
// the current batch and issues getMore requests as the caller consumes it,
// so the client never materializes more than one batch.
type Cursor struct {
	c         *Client
	db        string
	id        int64 // 0 once the server reports exhaustion
	batchSize int
	batch     []*bson.Doc
	pos       int
	err       error
	closed    bool
}

// FindCursor opens a cursor over a find. batchSize <= 0 uses the server's
// default batch size for the initial reply.
func (c *Client) FindCursor(db, coll string, filter, sort *bson.Doc, limit, batchSize int) (*Cursor, error) {
	if batchSize <= 0 {
		batchSize = 101
	}
	resp, err := c.Do(&Request{Op: OpFind, DB: db, Collection: coll, Filter: filter, Sort: sort, Limit: limit, BatchSize: batchSize})
	if err != nil {
		return nil, err
	}
	return &Cursor{c: c, db: db, id: resp.CursorID, batchSize: batchSize, batch: resp.Docs}, nil
}

// AggregateCursor opens a cursor over an aggregation pipeline.
func (c *Client) AggregateCursor(db, coll string, stages []*bson.Doc, batchSize int) (*Cursor, error) {
	if batchSize <= 0 {
		batchSize = 101
	}
	resp, err := c.Do(&Request{Op: OpAggregate, DB: db, Collection: coll, Docs: stages, BatchSize: batchSize})
	if err != nil {
		return nil, err
	}
	return &Cursor{c: c, db: db, id: resp.CursorID, batchSize: batchSize, batch: resp.Docs}, nil
}

// Next returns the next document, issuing getMore requests as needed.
func (cur *Cursor) Next() (*bson.Doc, bool) {
	for cur.pos >= len(cur.batch) {
		if cur.closed || cur.id == 0 {
			return nil, false
		}
		resp, err := cur.c.Do(&Request{Op: OpGetMore, DB: cur.db, CursorID: cur.id, BatchSize: cur.batchSize})
		if err != nil {
			cur.err = err
			cur.id = 0
			cur.closed = true
			return nil, false
		}
		cur.batch, cur.pos = resp.Docs, 0
		cur.id = resp.CursorID
	}
	d := cur.batch[cur.pos]
	cur.pos++
	return d, true
}

// Err returns the error that terminated iteration, if any.
func (cur *Cursor) Err() error { return cur.err }

// Close releases the server-side cursor when one is still open.
func (cur *Cursor) Close() {
	if cur.closed {
		return
	}
	cur.closed = true
	if cur.id != 0 {
		_, _ = cur.c.Do(&Request{Op: OpKillCursors, DB: cur.db, CursorID: cur.id})
		cur.id = 0
	}
	cur.batch = nil
}

// All drains the remaining documents and closes the cursor.
func (cur *Cursor) All() ([]*bson.Doc, error) {
	var out []*bson.Doc
	for {
		d, ok := cur.Next()
		if !ok {
			break
		}
		out = append(out, d)
	}
	err := cur.Err()
	cur.Close()
	return out, err
}

// WatchCursor is a client-side tailable cursor over a server-side change
// stream: Next polls the server with awaitData getMores and hands back one
// event document at a time, tracking the post-batch resume token so the
// caller can resume after a disconnect with no loss or duplication.
type WatchCursor struct {
	c         *Client
	db        string
	id        int64
	batchSize int
	batch     []*bson.Doc
	pos       int
	token     string
	err       error
	closed    bool
}

// Watch opens a change stream over db/coll (coll == "" watches the whole
// database). pipeline is an optional list of $match stages; resumeAfter, when
// non-empty, resumes strictly after a previous stream's token.
func (c *Client) Watch(db, coll string, pipeline []*bson.Doc, resumeAfter string, batchSize int) (*WatchCursor, error) {
	if batchSize <= 0 {
		batchSize = 101
	}
	resp, err := c.Do(&Request{Op: OpWatch, DB: db, Collection: coll, Docs: pipeline, ResumeAfter: resumeAfter, BatchSize: batchSize})
	if err != nil {
		return nil, err
	}
	w := &WatchCursor{c: c, db: db, id: resp.CursorID, batchSize: batchSize, batch: resp.Docs, token: resumeAfter}
	if len(resp.Docs) == 0 {
		// Seed from the post-batch token only when there is no batch to
		// consume: with events in hand, the cursor's token must track
		// what the caller actually consumed (each event's _id), or a
		// resume taken before draining the batch would skip it.
		w.token = resp.ResumeToken
	}
	return w, nil
}

// Next returns the next event document, issuing a getMore that waits up to
// maxWait server-side when nothing is buffered. (nil, nil) means the wait
// elapsed with the stream still live.
func (w *WatchCursor) Next(maxWait time.Duration) (*bson.Doc, error) {
	if w.pos >= len(w.batch) {
		if w.closed {
			return nil, w.err
		}
		req := &Request{Op: OpGetMore, DB: w.db, CursorID: w.id, BatchSize: w.batchSize}
		// The protocol's maxTimeMS: 0 means "server default" (a 1-second
		// awaitData wait), so a poll (maxWait <= 0) or a sub-millisecond
		// wait is sent as the minimum expressible bound instead — never
		// the default, which would block up to 2000x longer than asked.
		ms := int(maxWait / time.Millisecond)
		if ms <= 0 {
			ms = 1
		}
		req.MaxTimeMS = ms
		resp, err := w.c.Do(req)
		if err != nil {
			w.err = err
			w.closed = true
			return nil, err
		}
		if len(resp.Docs) == 0 && resp.ResumeToken != "" {
			w.token = resp.ResumeToken
		}
		w.batch, w.pos = resp.Docs, 0
		if len(w.batch) == 0 {
			return nil, nil
		}
	}
	d := w.batch[w.pos]
	w.pos++
	// Track the token per consumed event (each event's _id is its token):
	// a close mid-batch then resumes after what was actually consumed, not
	// after the batch's undelivered tail.
	if tok, ok := d.Get("_id"); ok {
		if s, isStr := tok.(string); isStr {
			w.token = s
		}
	}
	return d, nil
}

// ResumeToken returns the stream's post-batch resume token: pass it as
// resumeAfter to a new Watch to continue after everything this cursor's
// batches contained.
func (w *WatchCursor) ResumeToken() string { return w.token }

// ErrWatchCursorClosed is what Next returns once the cursor was closed
// locally: a terminal error, so consumer poll loops exit instead of spinning
// on the (nil, nil) "stream quiet" signal forever.
var ErrWatchCursorClosed = errors.New("wire: watch cursor closed")

// Close kills the server-side cursor, tearing down its subscription.
func (w *WatchCursor) Close() {
	if w.closed {
		return
	}
	w.closed = true
	if w.err == nil {
		w.err = ErrWatchCursorClosed
	}
	_, _ = w.c.Do(&Request{Op: OpKillCursors, DB: w.db, CursorID: w.id})
	w.batch = nil
}

// EnsureIndex creates an index.
func (c *Client) EnsureIndex(db, coll string, keys *bson.Doc, unique bool) error {
	_, err := c.Do(&Request{Op: OpEnsureIndex, DB: db, Collection: coll, Keys: keys, Unique: unique})
	return err
}

// ListCollections lists collection names.
func (c *Client) ListCollections(db string) ([]string, error) {
	resp, err := c.Do(&Request{Op: OpListColls, DB: db})
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(resp.Docs))
	for _, d := range resp.Docs {
		if v, ok := d.Get("name"); ok {
			if s, isStr := v.(string); isStr {
				names = append(names, s)
			}
		}
	}
	return names, nil
}

// Drop removes a collection.
func (c *Client) Drop(db, coll string) error {
	_, err := c.Do(&Request{Op: OpDrop, DB: db, Collection: coll})
	return err
}

// CurrentOp lists the server's in-flight operations as span-tree documents,
// oldest first (empty when the server has no tracer). limit <= 0 returns all.
func (c *Client) CurrentOp(limit int) ([]*bson.Doc, error) {
	resp, err := c.Do(&Request{Op: OpCurrentOp, Limit: limit})
	if err != nil {
		return nil, err
	}
	return resp.Docs, nil
}

// Traces returns up to limit completed trace trees, most recent first
// (limit <= 0 drains the server's whole retention ring).
func (c *Client) Traces(limit int) ([]*bson.Doc, error) {
	resp, err := c.Do(&Request{Op: OpGetTraces, Limit: limit})
	if err != nil {
		return nil, err
	}
	return resp.Docs, nil
}

// TraceFilter narrows a currentOp/getTraces listing. The zero value keeps
// everything.
type TraceFilter struct {
	// OpName keeps only traces whose root span name starts with the prefix
	// ("wire.insert"; "wire.ins" also matches).
	OpName string
	// MinDuration keeps only traces at least this long (elapsed-so-far for
	// in-flight ops). Sub-microsecond precision is lost on the wire.
	MinDuration time.Duration
	// Limit caps the result after filtering; <= 0 returns everything that
	// matched.
	Limit int
}

// CurrentOpFiltered lists in-flight operations matching the filter.
func (c *Client) CurrentOpFiltered(f TraceFilter) ([]*bson.Doc, error) {
	resp, err := c.Do(&Request{
		Op: OpCurrentOp, Limit: f.Limit,
		OpName: f.OpName, MinDurationUS: f.MinDuration.Microseconds(),
	})
	if err != nil {
		return nil, err
	}
	return resp.Docs, nil
}

// TracesFiltered returns completed trace trees matching the filter, most
// recent first.
func (c *Client) TracesFiltered(f TraceFilter) ([]*bson.Doc, error) {
	resp, err := c.Do(&Request{
		Op: OpGetTraces, Limit: f.Limit,
		OpName: f.OpName, MinDurationUS: f.MinDuration.Microseconds(),
	})
	if err != nil {
		return nil, err
	}
	return resp.Docs, nil
}

// Exemplars lists the server's retained latency-histogram exemplars: one
// document per histogram series with a buckets array of {bucketLower,
// traceId, value} entries. metric filters to one family name; "" returns
// every family that has exemplars.
func (c *Client) Exemplars(metric string) ([]*bson.Doc, error) {
	resp, err := c.Do(&Request{Op: OpGetExemplars, Metric: metric})
	if err != nil {
		return nil, err
	}
	return resp.Docs, nil
}

// Stats returns the server status summary document.
func (c *Client) Stats(db string) (*bson.Doc, error) {
	resp, err := c.Do(&Request{Op: OpStats, DB: db})
	if err != nil {
		return nil, err
	}
	if len(resp.Docs) == 0 {
		return nil, fmt.Errorf("wire: empty stats response")
	}
	return resp.Docs[0], nil
}
