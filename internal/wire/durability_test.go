package wire

import (
	"fmt"
	"testing"
	"time"

	"docstore/internal/bson"
	"docstore/internal/mongod"
	"docstore/internal/storage"
	"docstore/internal/wal"
)

func startDurableServer(t *testing.T, dir string) (*Server, *Client) {
	t.Helper()
	backend := mongod.NewServer(mongod.Options{Name: "docstored"})
	if _, err := backend.EnableDurability(mongod.Durability{Dir: dir, Sync: wal.SyncNone}); err != nil {
		t.Fatalf("EnableDurability: %v", err)
	}
	srv := NewServer(backend)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	client, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { client.Close() })
	return srv, client
}

// TestWriteConcernJournaled drives every write op with {j: true} against a
// durable backend running SyncNone — the laziest policy — so only the
// writeConcern escalation can have forced the records to disk. A recovery
// on a second server then proves the acknowledged writes were durable.
func TestWriteConcernJournaled(t *testing.T) {
	dir := t.TempDir()
	_, c := startDurableServer(t, dir)

	do := func(req *Request) *Response {
		t.Helper()
		resp, err := c.Do(req)
		if err != nil {
			t.Fatalf("%s: %v", req.Op, err)
		}
		if !resp.OK {
			t.Fatalf("%s: %s", req.Op, resp.Error)
		}
		return resp
	}
	do(&Request{Op: OpInsert, DB: "db", Collection: "c",
		Doc: bson.D(bson.IDKey, 1, "v", 1), Journaled: true})
	do(&Request{Op: OpInsertMany, DB: "db", Collection: "c",
		Docs: []*bson.Doc{bson.D(bson.IDKey, 2, "v", 2), bson.D(bson.IDKey, 3, "v", 3)}, Journaled: true})
	do(&Request{Op: OpUpdate, DB: "db", Collection: "c",
		Filter: bson.D(bson.IDKey, 2), Update: bson.D("$set", bson.D("v", 20)), Journaled: true})
	do(&Request{Op: OpDelete, DB: "db", Collection: "c",
		Filter: bson.D(bson.IDKey, 3), Journaled: true})
	do(&Request{Op: OpBulkWrite, DB: "db", Collection: "c",
		Docs: []*bson.Doc{BulkInsertOp(bson.D(bson.IDKey, 4, "v", 4))}, Ordered: true, Journaled: true})

	// Simulated crash: nothing was closed, so only j: true-forced syncs can
	// have reached the segment file.
	backend2 := mongod.NewServer(mongod.Options{Name: "recovered"})
	stats, err := backend2.EnableDurability(mongod.Durability{Dir: dir, Sync: wal.SyncNone})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if stats.RecordsReplayed != 5 {
		t.Fatalf("replayed %d records, want 5", stats.RecordsReplayed)
	}
	coll := backend2.Database("db").Collection("c")
	if coll.Count() != 3 {
		t.Fatalf("recovered %d documents, want 3", coll.Count())
	}
	doc := coll.FindID(2)
	if doc == nil {
		t.Fatalf("journaled insert lost")
	}
	if v, _ := bson.AsInt(doc.GetOr("v", 0)); v != 20 {
		t.Fatalf("journaled update lost: v = %d", v)
	}
	if coll.FindID(3) != nil {
		t.Fatalf("journaled delete lost")
	}
	if coll.FindID(4) == nil {
		t.Fatalf("journaled bulkWrite lost")
	}
}

// TestBulkResultCarriesWriteConcernError checks a batch-level durability
// failure survives the result codec: a {j: true} client must be able to see
// that its batch was not made durable even though per-op results exist.
func TestBulkResultCarriesWriteConcernError(t *testing.T) {
	res := storage.BulkResult{Inserted: 2, Attempted: 2, DurabilityErr: errFakeDisk}
	decoded := decodeBulkWriteResult(encodeBulkResult(res))
	if decoded.WriteConcernError == "" {
		t.Fatalf("durability error lost in the result codec")
	}
	if decoded.Inserted != 2 {
		t.Fatalf("counters lost alongside the writeConcernError")
	}
	clean := decodeBulkWriteResult(encodeBulkResult(storage.BulkResult{Inserted: 1}))
	if clean.WriteConcernError != "" {
		t.Fatalf("writeConcernError appeared from nowhere")
	}
}

var errFakeDisk = fmt.Errorf("fsync: no space left on device")

// TestJournaledFlagRoundTrip checks the wire codec carries "j".
func TestJournaledFlagRoundTrip(t *testing.T) {
	req := &Request{Op: OpInsert, DB: "db", Collection: "c", Doc: bson.D(bson.IDKey, 1), Journaled: true}
	decoded := decodeRequest(req.encode())
	if !decoded.Journaled {
		t.Fatalf("j flag lost in the codec")
	}
	decoded = decodeRequest((&Request{Op: OpInsert, DB: "db"}).encode())
	if decoded.Journaled {
		t.Fatalf("j flag appeared from nowhere")
	}
}
