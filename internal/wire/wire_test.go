package wire

import (
	"testing"
	"time"

	"docstore/internal/bson"
	"docstore/internal/mongod"
)

func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv := NewServer(mongod.NewServer(mongod.Options{Name: "docstored"}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	client, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { client.Close() })
	return srv, client
}

func TestClientServerRoundTrip(t *testing.T) {
	_, c := startServer(t)
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if err := c.Insert("db", "people", bson.D(bson.IDKey, 1, "name", "Earl", "age", 36)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	n, err := c.InsertMany("db", "people", []*bson.Doc{
		bson.D(bson.IDKey, 2, "name", "Mary", "age", 29),
		bson.D(bson.IDKey, 3, "name", "Linda", "age", 41),
	})
	if err != nil || n != 2 {
		t.Fatalf("InsertMany: %d, %v", n, err)
	}
	docs, err := c.Find("db", "people", bson.D("age", bson.D("$gte", 30)), bson.D("age", -1), 0)
	if err != nil {
		t.Fatalf("Find: %v", err)
	}
	if len(docs) != 2 {
		t.Fatalf("Find returned %d docs", len(docs))
	}
	if name, _ := docs[0].Get("name"); name != "Linda" {
		t.Fatalf("sort not applied: %s", docs[0])
	}
	count, err := c.Count("db", "people", nil)
	if err != nil || count != 3 {
		t.Fatalf("Count = %d, %v", count, err)
	}
	mod, err := c.Update("db", "people", bson.D("name", "Earl"), bson.D("$set", bson.D("age", 37)), false, false)
	if err != nil || mod != 1 {
		t.Fatalf("Update = %d, %v", mod, err)
	}
	if err := c.EnsureIndex("db", "people", bson.D("age", 1), false); err != nil {
		t.Fatalf("EnsureIndex: %v", err)
	}
	agg, err := c.Aggregate("db", "people", []*bson.Doc{
		bson.D("$group", bson.D(bson.IDKey, nil, "avgAge", bson.D("$avg", "$age"))),
	})
	if err != nil || len(agg) != 1 {
		t.Fatalf("Aggregate: %v, %v", agg, err)
	}
	colls, err := c.ListCollections("db")
	if err != nil || len(colls) != 1 || colls[0] != "people" {
		t.Fatalf("ListCollections = %v, %v", colls, err)
	}
	stats, err := c.Stats("db")
	if err != nil || !stats.Has("documents") {
		t.Fatalf("Stats = %v, %v", stats, err)
	}
	removed, err := c.Delete("db", "people", bson.D("name", "Mary"), false)
	if err != nil || removed != 1 {
		t.Fatalf("Delete = %d, %v", removed, err)
	}
	if err := c.Drop("db", "people"); err != nil {
		t.Fatalf("Drop: %v", err)
	}
	if count, _ := c.Count("db", "people", nil); count != 0 {
		t.Fatalf("count after drop = %d", count)
	}
}

func TestServerErrorsAndHandle(t *testing.T) {
	srv, c := startServer(t)
	// Server-side errors surface as client errors.
	if _, err := c.Do(&Request{Op: "bogus", DB: "db"}); err == nil {
		t.Fatalf("unknown op should error")
	}
	if _, err := c.Do(&Request{Op: OpFind}); err == nil {
		t.Fatalf("missing db should error")
	}
	if _, err := c.Do(&Request{Op: OpInsert, DB: "db", Collection: "c"}); err == nil {
		t.Fatalf("insert without doc should error")
	}
	if _, err := c.Do(&Request{Op: OpFind, DB: "db", Collection: "c", Filter: bson.D("$bogus", 1)}); err == nil {
		t.Fatalf("bad filter should error")
	}
	if _, err := c.Do(&Request{Op: OpFind, DB: "db", Collection: "c", Sort: bson.D("a", 7)}); err == nil {
		t.Fatalf("bad sort should error")
	}
	if _, err := c.Do(&Request{Op: OpAggregate, DB: "db", Collection: "c", Docs: []*bson.Doc{bson.D("$bogus", 1)}}); err == nil {
		t.Fatalf("bad pipeline should error")
	}
	if _, err := c.Do(&Request{Op: OpEnsureIndex, DB: "db", Collection: "c", Keys: bson.D("a", 9)}); err == nil {
		t.Fatalf("bad index keys should error")
	}
	// Direct Handle calls work without a socket.
	resp := srv.Handle(&Request{Op: OpPing})
	if !resp.OK {
		t.Fatalf("Handle ping = %+v", resp)
	}
	// Duplicate _id insert reports an error response.
	_ = c.Insert("db", "c", bson.D(bson.IDKey, 1))
	if err := c.Insert("db", "c", bson.D(bson.IDKey, 1)); err == nil {
		t.Fatalf("duplicate insert should error")
	}
}

func TestConcurrentClients(t *testing.T) {
	srv := NewServer(mongod.NewServer(mongod.Options{}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			client, err := Dial(addr, time.Second)
			if err != nil {
				done <- err
				return
			}
			defer client.Close()
			for i := 0; i < 25; i++ {
				if err := client.Insert("db", "load", bson.D(bson.IDKey, w*1000+i, "w", w)); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	client, _ := Dial(addr, time.Second)
	defer client.Close()
	n, err := client.Count("db", "load", nil)
	if err != nil || n != 100 {
		t.Fatalf("Count = %d, %v", n, err)
	}
}

func TestRequestEncodeDecodeRoundTrip(t *testing.T) {
	req := &Request{
		Op: OpUpdate, DB: "db", Collection: "c",
		Filter: bson.D("a", 1), Update: bson.D("$set", bson.D("b", 2)),
		Sort: bson.D("a", 1), Projection: bson.D("a", 1), Keys: bson.D("a", 1),
		Doc: bson.D("x", 1), Docs: []*bson.Doc{bson.D("y", 2)},
		Limit: 5, Skip: 2, Multi: true, Upsert: true, Unique: true,
	}
	decoded := decodeRequest(req.encode())
	if decoded.Op != req.Op || decoded.DB != req.DB || decoded.Collection != req.Collection ||
		decoded.Limit != 5 || decoded.Skip != 2 || !decoded.Multi || !decoded.Upsert || !decoded.Unique {
		t.Fatalf("decoded = %+v", decoded)
	}
	if decoded.Filter == nil || decoded.Update == nil || decoded.Doc == nil || len(decoded.Docs) != 1 {
		t.Fatalf("documents lost in round trip: %+v", decoded)
	}
	resp := &Response{OK: true, Docs: []*bson.Doc{bson.D("a", 1)}, N: 1}
	back := decodeResponse(resp.encode())
	if !back.OK || back.N != 1 || len(back.Docs) != 1 {
		t.Fatalf("response round trip = %+v", back)
	}
}
