package wire

import (
	"testing"
	"time"

	"docstore/internal/bson"
	"docstore/internal/mongod"
	"docstore/internal/mongos"
	"docstore/internal/replset"
	"docstore/internal/sharding"
	"docstore/internal/trace"
	"docstore/internal/wal"
)

// startTracedCluster fronts a sharded, replicated, durable deployment with a
// traced wire server: one shard backed by a 3-member replica set whose
// primary journals to a real WAL, behind a mongos router, behind the wire
// server, with every request's trace retained (sample rate 1).
func startTracedCluster(t *testing.T) *Server {
	t.Helper()
	members := []*mongod.Server{
		mongod.NewServer(mongod.Options{Name: "A"}),
		mongod.NewServer(mongod.Options{Name: "B"}),
		mongod.NewServer(mongod.Options{Name: "C"}),
	}
	if _, err := members[0].EnableDurability(mongod.Durability{Dir: t.TempDir(), Sync: wal.SyncGroupCommit}); err != nil {
		t.Fatalf("enabling durability: %v", err)
	}
	t.Cleanup(func() { members[0].CloseDurability() })
	rs, err := replset.New("rs0", members...)
	if err != nil {
		t.Fatal(err)
	}
	rs.StartReplication()
	t.Cleanup(rs.Close)

	router := mongos.NewRouter(sharding.NewConfigServer(), mongos.Options{})
	router.AddReplicaShard("shard0", rs)
	if _, err := router.EnableSharding("db", "c", bson.D("k", 1), 1<<20); err != nil {
		t.Fatal(err)
	}

	srv := NewServer(rs.Primary())
	srv.SetReplicaSet(router)
	srv.SetTracer(trace.New(trace.Options{SampleRate: 1}))
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestTracedWriteSpansEveryLayer is the end-to-end observability contract:
// one acknowledged write produces a single span tree that crosses the wire
// handler, the mongos shard fan-out, the shard's mongod execution, the
// storage apply + WAL group-commit wait, and — under w:2 — the replica
// quorum wait, all correctly nested and all finished.
func TestTracedWriteSpansEveryLayer(t *testing.T) {
	srv := startTracedCluster(t)

	resp := srv.Handle(&Request{
		Op: OpInsert, DB: "db", Collection: "c",
		Doc:          bson.D(bson.IDKey, 1, "k", 1),
		WriteConcern: bson.D("w", 2),
	})
	if resp.Error != "" {
		t.Fatalf("insert: %s", resp.Error)
	}

	views := srv.Tracer().Traces(0)
	if len(views) != 1 {
		t.Fatalf("retained %d traces, want 1", len(views))
	}
	root := views[0]
	if root.Name != "wire.insert" {
		t.Fatalf("root span %q, want wire.insert", root.Name)
	}
	if db, _ := root.Attr("db"); db != "db" {
		t.Fatalf("root db attr = %v", db)
	}

	// Every layer's span must be present somewhere under the root.
	for _, name := range []string{
		"mongos.shard",
		"mongod.bulkWrite",
		"storage.bulkWrite",
		"storage.apply",
		"wal.commitWait",
		"replset.oplogCommitWait",
		"replset.quorumWait",
	} {
		if root.Find(name) == nil {
			t.Errorf("span %q missing from trace:\n%s", name, dumpView(&root, 0))
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// Nesting must mirror the call stack: the storage commit happened inside
	// the shard's mongod execution, inside the mongos fan-out.
	shard := root.Find("mongos.shard")
	if got, _ := shard.Attr("shard"); got != "shard0" {
		t.Fatalf("shard attr = %v", got)
	}
	mongodSpan := shard.Find("mongod.bulkWrite")
	if mongodSpan == nil {
		t.Fatalf("mongod.bulkWrite not nested under mongos.shard:\n%s", dumpView(&root, 0))
	}
	storageSpan := mongodSpan.Find("storage.bulkWrite")
	if storageSpan == nil {
		t.Fatalf("storage.bulkWrite not nested under mongod.bulkWrite:\n%s", dumpView(&root, 0))
	}
	if storageSpan.Find("wal.commitWait") == nil {
		t.Fatalf("wal.commitWait not nested under storage.bulkWrite:\n%s", dumpView(&root, 0))
	}
	if lsn, ok := storageSpan.Attr("lsn"); !ok || lsn.(int64) == 0 {
		t.Fatalf("storage.bulkWrite lsn attr = %v", lsn)
	}
	if need, _ := root.Find("replset.quorumWait").Attr("need"); need != 2 {
		t.Fatalf("quorumWait need attr = %v", need)
	}

	// One trace, consistently stamped: every span shares the root's trace id
	// and none is still marked in flight.
	assertFinished(t, &root, root.TraceID)
}

// TestTracedFindRecordsQueryPlan pins the read path's tree: a wire find
// descends into mongod execution and the storage planner span that records
// which index (or scan) served it and the snapshot version pinned.
func TestTracedFindRecordsQueryPlan(t *testing.T) {
	srv := startTracedCluster(t)
	if resp := srv.Handle(&Request{Op: OpInsert, DB: "db", Collection: "c", Doc: bson.D(bson.IDKey, 7, "k", 7)}); resp.Error != "" {
		t.Fatalf("seed insert: %s", resp.Error)
	}

	resp := srv.Handle(&Request{Op: OpFind, DB: "db", Collection: "c", Filter: bson.D("k", 7)})
	if resp.Error != "" {
		t.Fatalf("find: %s", resp.Error)
	}
	views := srv.Tracer().Traces(1)
	if len(views) != 1 || views[0].Name != "wire.find" {
		t.Fatalf("latest trace = %+v, want wire.find", views)
	}
	root := views[0]
	plan := root.Find("storage.plan")
	if plan == nil {
		t.Fatalf("storage.plan missing from find trace:\n%s", dumpView(&root, 0))
	}
	if idx, ok := plan.Attr("index"); !ok {
		t.Fatalf("plan index attr missing, attrs = %v", plan.Attrs)
	} else if idx == "" {
		t.Fatalf("plan index attr empty")
	}
	assertFinished(t, &root, root.TraceID)
}

// TestCurrentOpAndGetTracesOverTheWire drives the introspection ops through
// a real socket: getTraces returns the retained write's tree, currentOp is
// empty when nothing is executing, and neither op appears in the ring.
func TestCurrentOpAndGetTracesOverTheWire(t *testing.T) {
	srv := startTracedCluster(t)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Insert("db", "c", bson.D(bson.IDKey, 1, "k", 1)); err != nil {
		t.Fatalf("insert: %v", err)
	}
	traces, err := c.Traces(0)
	if err != nil {
		t.Fatalf("getTraces: %v", err)
	}
	if len(traces) != 1 {
		t.Fatalf("getTraces returned %d docs, want 1 (introspection must not self-trace)", len(traces))
	}
	if name, _ := traces[0].Get("name"); name != "wire.insert" {
		t.Fatalf("trace root name = %v", name)
	}
	if _, ok := traces[0].Get("children"); !ok {
		t.Fatalf("trace doc has no children: %s", traces[0].ToJSON())
	}
	ops, err := c.CurrentOp(0)
	if err != nil {
		t.Fatalf("currentOp: %v", err)
	}
	if len(ops) != 0 {
		t.Fatalf("currentOp lists %d ops while idle: %v", len(ops), ops)
	}
	// The introspection requests above must not have entered the ring.
	traces, err = c.Traces(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 {
		t.Fatalf("ring grew to %d after introspection ops", len(traces))
	}
}

// assertFinished walks the tree checking every span finished and carries the
// root's trace id.
func assertFinished(t *testing.T, v *trace.View, traceID string) {
	t.Helper()
	if v.InFlight {
		t.Fatalf("span %q still in flight", v.Name)
	}
	if v.TraceID != traceID {
		t.Fatalf("span %q trace id %s, want %s", v.Name, v.TraceID, traceID)
	}
	for i := range v.Children {
		assertFinished(t, &v.Children[i], traceID)
	}
}

// dumpView renders a span tree for failure messages.
func dumpView(v *trace.View, depth int) string {
	out := ""
	for i := 0; i < depth; i++ {
		out += "  "
	}
	out += v.Name + "\n"
	for i := range v.Children {
		out += dumpView(&v.Children[i], depth+1)
	}
	return out
}
