package wire

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"docstore/internal/bson"
	"docstore/internal/mongod"
)

// fakeClock is the injectable cursor-idle clock of the wire server: tests
// advance it explicitly instead of sleeping, so idle-reaping behaviour is
// deterministic under any scheduler load.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// watchTestServer builds a durable backend behind a wire server and a
// connected client, with a fake idle clock installed before the server
// starts (so tests can advance it without racing the connection goroutines).
func watchTestServer(t *testing.T) (*mongod.Server, *Server, *Client, *fakeClock) {
	t.Helper()
	backend := mongod.NewServer(mongod.Options{})
	if _, err := backend.EnableDurability(mongod.Durability{Dir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { backend.CloseDurability() })
	srv := NewServer(backend)
	clock := newFakeClock()
	srv.now = clock.Now
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	client, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return backend, srv, client, clock
}

// TestWireWatchLiveTail opens a change stream over TCP, writes through the
// same client, and pages events with awaitData getMores.
func TestWireWatchLiveTail(t *testing.T) {
	_, _, client, _ := watchTestServer(t)
	cur, err := client.Watch("app", "rows", nil, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()

	for i := 0; i < 3; i++ {
		if err := client.Insert("app", "rows", bson.D(bson.IDKey, i, "v", i*10)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		ev, err := cur.Next(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if ev == nil {
			t.Fatalf("event %d: awaitData timed out", i)
		}
		if op, _ := ev.Get("operationType"); op != "insert" {
			t.Fatalf("event %d: %v", i, ev)
		}
		id, _ := bson.AsInt(ev.GetOr("documentKey", bson.D()).(*bson.Doc).GetOr(bson.IDKey, nil))
		if id != int64(i) {
			t.Fatalf("event %d carries documentKey %d", i, id)
		}
	}
	// Quiet stream: an awaitData getMore returns an empty batch, not an
	// error, and the cursor stays open.
	ev, err := cur.Next(50 * time.Millisecond)
	if err != nil || ev != nil {
		t.Fatalf("quiet stream: %v %v", ev, err)
	}
	if cur.ResumeToken() == "" {
		t.Fatal("no resume token after events")
	}
}

// TestWireWatchResumeByToken consumes part of a stream, kills it, and
// resumes from the token over a fresh watch: no loss, no duplicates.
func TestWireWatchResumeByToken(t *testing.T) {
	_, _, client, _ := watchTestServer(t)
	cur, err := client.Watch("app", "rows", nil, "", 2)
	if err != nil {
		t.Fatal(err)
	}
	const total = 6
	for i := 0; i < total; i++ {
		if err := client.Insert("app", "rows", bson.D(bson.IDKey, i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []int64
	for len(got) < total/2 {
		ev, err := cur.Next(2 * time.Second)
		if err != nil || ev == nil {
			t.Fatalf("first stream: %v %v", ev, err)
		}
		id, _ := bson.AsInt(ev.GetOr("documentKey", bson.D()).(*bson.Doc).GetOr(bson.IDKey, nil))
		got = append(got, id)
	}
	token := cur.ResumeToken()
	cur.Close()

	resumed, err := client.Watch("app", "rows", nil, token, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	for len(got) < total {
		ev, err := resumed.Next(2 * time.Second)
		if err != nil || ev == nil {
			t.Fatalf("resumed stream: %v %v", ev, err)
		}
		id, _ := bson.AsInt(ev.GetOr("documentKey", bson.D()).(*bson.Doc).GetOr(bson.IDKey, nil))
		got = append(got, id)
	}
	for i, id := range got {
		if id != int64(i) {
			t.Fatalf("resume lost or duplicated events: %v", got)
		}
	}
}

// TestWireKillCursorsTearsDownSubscription is the teardown satellite: a
// killCursors on a tailable change-stream cursor must release the broker
// subscription and leak neither a watcher goroutine nor its buffer.
func TestWireKillCursorsTearsDownSubscription(t *testing.T) {
	backend, srv, client, _ := watchTestServer(t)
	before := runtime.NumGoroutine()

	cur, err := client.Watch("app", "rows", nil, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := backend.ChangeStreams().Stats(); st.Watchers != 1 {
		t.Fatalf("watchers before kill: %d", st.Watchers)
	}
	if srv.OpenCursors() != 1 {
		t.Fatalf("open cursors before kill: %d", srv.OpenCursors())
	}
	cur.Close() // issues killCursors
	if st := backend.ChangeStreams().Stats(); st.Watchers != 0 {
		t.Fatalf("killCursors leaked the subscription: %d watchers", st.Watchers)
	}
	if srv.OpenCursors() != 0 {
		t.Fatalf("killCursors leaked the cursor: %d open", srv.OpenCursors())
	}
	// Writes after the kill must not accumulate anywhere for the dead
	// watcher (its buffer is detached from the broker).
	for i := 0; i < 50; i++ {
		if err := client.Insert("app", "rows", bson.D(bson.IDKey, i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := backend.ChangeStreams().Stats(); st.EventsDelivered != 0 {
		t.Fatalf("events delivered to a dead watcher: %+v", st)
	}
	// No watcher goroutine may outlive the stream. Allow the runtime a
	// moment to retire transient goroutines before judging.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked: %d before watch, %d after kill", before, n)
	}
}

// TestWireWatchExemptFromReaper checks a live change-stream cursor survives
// idle reaping indefinitely (tailable cursors are idle by design) while a
// plain abandoned cursor ages out — driven by the injectable clock, no
// sleeping.
func TestWireWatchExemptFromReaper(t *testing.T) {
	_, srv, client, clock := watchTestServer(t)

	wcur, err := client.Watch("app", "rows", nil, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer wcur.Close()
	for i := 0; i < 30; i++ {
		if err := client.Insert("app", "rows", bson.D(bson.IDKey, i)); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := client.Do(&Request{Op: OpFind, DB: "app", Collection: "rows", BatchSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if resp.CursorID == 0 {
		t.Fatal("expected an open find cursor")
	}
	if n := srv.OpenCursors(); n != 2 {
		t.Fatalf("open cursors: %d", n)
	}

	clock.Advance(DefaultCursorTimeout + time.Minute)
	if n := srv.ReapIdleCursors(); n != 1 {
		t.Fatalf("after reap: %d cursors (want only the live change stream)", n)
	}
	if _, err := client.Do(&Request{Op: OpGetMore, DB: "app", CursorID: resp.CursorID}); err == nil {
		t.Fatal("reaped find cursor should be gone")
	}
	// The exempt watch cursor still serves events (the getMore also
	// refreshes its idle clock).
	ev, err := wcur.Next(2 * time.Second)
	if err != nil || ev == nil {
		t.Fatalf("watch cursor after reap: %v %v", ev, err)
	}

	// A watcher whose client stops polling entirely is NOT exempt forever:
	// past the tailable multiple it is reaped, releasing the subscription.
	clock.Advance(TailableCursorTimeoutMultiple*DefaultCursorTimeout + time.Minute)
	if n := srv.ReapIdleCursors(); n != 0 {
		t.Fatalf("abandoned tailable cursor survived the extended window: %d cursors", n)
	}
}

// TestWireKillCursorsDuringParkedGetMore kills a change-stream cursor while
// a getMore is parked in its awaitData wait: the kill must find the cursor
// (it stays registered while in use), unblock the wait, and leave no
// subscription behind.
func TestWireKillCursorsDuringParkedGetMore(t *testing.T) {
	backend, srv, client, _ := watchTestServer(t)
	cur, err := client.Watch("app", "rows", nil, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Park a getMore on a second connection (the first is busy with it).
	addr := srv.listener.Addr().String()
	second, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	parked := make(chan error, 1)
	go func() {
		_, err := second.Do(&Request{Op: OpGetMore, DB: "app", CursorID: cur.id, MaxTimeMS: 5000})
		parked <- err
	}()
	// Wait for the getMore to actually park (cursor marked in-use).
	deadline := time.Now().Add(2 * time.Second)
	for {
		srv.cursorMu.Lock()
		oc, ok := srv.cursors[cur.id]
		inUse := ok && oc.inUse
		srv.cursorMu.Unlock()
		if inUse {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("getMore never parked")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cur.Close() // killCursors from the first connection
	if err := <-parked; err == nil {
		t.Fatal("parked getMore should observe the kill")
	}
	if st := backend.ChangeStreams().Stats(); st.Watchers != 0 {
		t.Fatalf("kill during parked getMore leaked the subscription: %d watchers", st.Watchers)
	}
	if srv.OpenCursors() != 0 {
		t.Fatalf("kill during parked getMore leaked the cursor: %d", srv.OpenCursors())
	}
}

// TestWatchCursorCloseTerminatesNext checks a closed client cursor reports
// a terminal error from Next (not the "quiet stream" nil/nil, which would
// spin a poll loop forever), and that a resume token captured mid-batch
// resumes after exactly the consumed events.
func TestWatchCursorCloseTerminatesNext(t *testing.T) {
	_, _, client, _ := watchTestServer(t)
	cur, err := client.Watch("app", "rows", nil, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	cur.Close()
	if _, err := cur.Next(10 * time.Millisecond); err == nil {
		t.Fatal("Next after Close should report a terminal error")
	}

	// A resumed watch whose first reply carries a replay batch must not
	// advance ResumeToken past the unconsumed batch.
	for i := 0; i < 4; i++ {
		if err := client.Insert("app", "rows", bson.D(bson.IDKey, i)); err != nil {
			t.Fatal(err)
		}
	}
	start := "000000000000000000000000" // the zero token: from the beginning
	resumed, err := client.Watch("app", "rows", nil, start, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if got := resumed.ResumeToken(); got != start {
		t.Fatalf("token advanced past an unconsumed first batch: %s", got)
	}
	ev, err := resumed.Next(time.Second)
	if err != nil || ev == nil {
		t.Fatalf("first replay event: %v %v", ev, err)
	}
	if id, _ := ev.Get("_id"); resumed.ResumeToken() != id {
		t.Fatalf("token %s does not track the consumed event %v", resumed.ResumeToken(), id)
	}
}

// TestWireWatchPipelineAndErrors drives the $match passthrough and the
// error paths: watch without durability and a bad resume token.
func TestWireWatchPipelineAndErrors(t *testing.T) {
	_, _, client, _ := watchTestServer(t)
	cur, err := client.Watch("app", "rows", []*bson.Doc{
		bson.D("$match", bson.D("fullDocument.keep", true)),
	}, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if err := client.Insert("app", "rows", bson.D(bson.IDKey, 1, "keep", false)); err != nil {
		t.Fatal(err)
	}
	if err := client.Insert("app", "rows", bson.D(bson.IDKey, 2, "keep", true)); err != nil {
		t.Fatal(err)
	}
	ev, err := cur.Next(2 * time.Second)
	if err != nil || ev == nil {
		t.Fatalf("filtered stream: %v %v", ev, err)
	}
	id, _ := bson.AsInt(ev.GetOr("documentKey", bson.D()).(*bson.Doc).GetOr(bson.IDKey, nil))
	if id != 2 {
		t.Fatalf("filter leaked: %v", ev)
	}

	if _, err := client.Watch("app", "rows", nil, "not-a-token", 0); err == nil {
		t.Fatal("bad resume token should be rejected")
	}

	plain := mongod.NewServer(mongod.Options{})
	psrv := NewServer(plain)
	if resp := psrv.Handle(&Request{Op: OpWatch, DB: "app", Collection: "rows"}); resp.Error == "" {
		t.Fatal("watch without durability should fail")
	}
}
