package wire

import (
	"testing"

	"docstore/internal/bson"
)

// TestWireStatsReportsEngineAndCursorRetention drives the stuck-cursor
// diagnosis loop an operator runs from docstore-shell: open a cursor, let a
// write stream publish versions past it, and ask serverStatus which cursor
// is retaining memory. The stats document must carry the MVCC engine gauges
// and list the open cursor with its namespace.
func TestWireStatsReportsEngineAndCursorRetention(t *testing.T) {
	_, client := cursorTestServer(t, 300)

	// The stuck cursor: first batch pulled, never drained or killed.
	cur, err := client.FindCursor("db", "rows", nil, nil, 0, 20)
	if err != nil {
		t.Fatal(err)
	}

	// A single-doc update stream the pinned snapshot cannot observe.
	for i := 0; i < 200; i++ {
		if _, err := client.Update("db", "rows", bson.D(bson.IDKey, 7),
			bson.D("$set", bson.D("v", 1000+i)), false, false); err != nil {
			t.Fatal(err)
		}
	}

	stats, err := client.Stats("db")
	if err != nil {
		t.Fatal(err)
	}
	engineVal, ok := stats.Get("engine")
	if !ok {
		t.Fatalf("stats document has no engine gauges: %v", stats)
	}
	engine := engineVal.(*bson.Doc)
	intGauge := func(name string) int64 {
		v, ok := engine.Get(name)
		if !ok {
			t.Fatalf("engine gauges missing %q: %v", name, engine)
		}
		n, ok := v.(int64)
		if !ok {
			t.Fatalf("engine gauge %q = %T(%v), want int64", name, v, v)
		}
		return n
	}
	if n := intGauge("liveVersions"); n < 2 {
		t.Fatalf("engine.liveVersions = %d with a stuck cursor, want >= 2", n)
	}
	if n := intGauge("pinnedSnapshots"); n < 1 {
		t.Fatalf("engine.pinnedSnapshots = %d with a stuck cursor, want >= 1", n)
	}
	if n := intGauge("retainedBytes"); n <= 0 {
		t.Fatalf("engine.retainedBytes = %d, want > 0", n)
	}
	if n := intGauge("cowBytesCopied"); n <= 0 {
		t.Fatalf("engine.cowBytesCopied = %d after 200 updates, want > 0", n)
	}
	if n := intGauge("pageSizeRecords"); n <= 0 {
		t.Fatalf("engine.pageSizeRecords = %d, want > 0", n)
	}

	// The cursor list names the suspect: one open result cursor on db.rows.
	cursorsVal, ok := stats.Get("openCursors")
	if !ok {
		t.Fatalf("stats document has no openCursors list: %v", stats)
	}
	cursors := cursorsVal.([]any)
	if len(cursors) != 1 {
		t.Fatalf("openCursors lists %d cursors, want 1", len(cursors))
	}
	entry := cursors[0].(*bson.Doc)
	if ns, _ := entry.Get("ns"); ns != "db.rows" {
		t.Fatalf("openCursors[0].ns = %v, want db.rows", ns)
	}
	if kind, _ := entry.Get("kind"); kind != "result" {
		t.Fatalf("openCursors[0].kind = %v, want result", kind)
	}
	if _, ok := entry.Get("cursorId"); !ok {
		t.Fatalf("openCursors[0] has no cursorId: %v", entry)
	}

	// Killing the cursor clears the list: the retention suspect is gone.
	cur.Close()
	stats, err = client.Stats("db")
	if err != nil {
		t.Fatal(err)
	}
	cursorsVal, _ = stats.Get("openCursors")
	if cursors, _ := cursorsVal.([]any); len(cursors) != 0 {
		t.Fatalf("openCursors lists %d cursors after kill, want 0", len(cursors))
	}
}
