package sharding

import (
	"fmt"
	"sort"
	"sync"
)

// ConfigServer stores the cluster metadata: the registered shards and, for
// every sharded collection, its shard key and chunk-to-shard mapping
// (§2.1.3.1, "Config servers").
type ConfigServer struct {
	mu          sync.RWMutex
	shards      []string
	collections map[string]*CollectionMetadata // namespace -> metadata
}

// NewConfigServer creates an empty config server.
func NewConfigServer() *ConfigServer {
	return &ConfigServer{collections: make(map[string]*CollectionMetadata)}
}

// AddShard registers a shard by name. Adding an existing shard is a no-op.
func (cs *ConfigServer) AddShard(name string) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for _, s := range cs.shards {
		if s == name {
			return
		}
	}
	cs.shards = append(cs.shards, name)
	sort.Strings(cs.shards)
}

// Shards returns the registered shard names.
func (cs *ConfigServer) Shards() []string {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	return append([]string(nil), cs.shards...)
}

// ShardCollection registers a collection as sharded with the given key.
// It fails when the collection is already sharded (the shard key is
// immutable, as §4.4 notes) or when no shards are registered.
func (cs *ConfigServer) ShardCollection(namespace string, key ShardKey, chunkSizeBytes int) (*CollectionMetadata, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if len(cs.shards) == 0 {
		return nil, fmt.Errorf("sharding: no shards registered")
	}
	if _, exists := cs.collections[namespace]; exists {
		return nil, fmt.Errorf("sharding: collection %q is already sharded; the shard key is immutable", namespace)
	}
	meta := NewCollectionMetadata(namespace, key, cs.shards, chunkSizeBytes)
	cs.collections[namespace] = meta
	return meta, nil
}

// Metadata returns the sharding metadata for a namespace, or nil when the
// collection is not sharded.
func (cs *ConfigServer) Metadata(namespace string) *CollectionMetadata {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	return cs.collections[namespace]
}

// IsSharded reports whether the namespace is sharded.
func (cs *ConfigServer) IsSharded(namespace string) bool {
	return cs.Metadata(namespace) != nil
}

// ShardedNamespaces lists sharded collections in sorted order.
func (cs *ConfigServer) ShardedNamespaces() []string {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	out := make([]string, 0, len(cs.collections))
	for ns := range cs.collections {
		out = append(out, ns)
	}
	sort.Strings(out)
	return out
}
