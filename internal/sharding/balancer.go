package sharding

import (
	"sort"
)

// Migration describes one chunk move proposed by the balancer.
type Migration struct {
	Namespace string
	ChunkID   int
	From, To  string
}

// Balancer redistributes chunks so that the number of chunks per shard is as
// even as possible. The real system migrates chunk data between shards; here
// the proposed migrations are returned so the cluster layer can move the
// documents and then commit the ownership change via ApplyMigration.
type Balancer struct {
	config *ConfigServer
}

// NewBalancer creates a balancer over the given config server.
func NewBalancer(config *ConfigServer) *Balancer { return &Balancer{config: config} }

// Plan computes the chunk migrations that would even out chunk counts for a
// namespace. It never proposes moving a jumbo chunk.
func (b *Balancer) Plan(namespace string) []Migration {
	meta := b.config.Metadata(namespace)
	if meta == nil {
		return nil
	}
	shards := b.config.Shards()
	if len(shards) < 2 {
		return nil
	}
	counts := make(map[string]int, len(shards))
	for _, s := range shards {
		counts[s] = 0
	}
	chunksByShard := make(map[string][]*Chunk)
	for _, c := range meta.Chunks() {
		counts[c.Shard]++
		chunksByShard[c.Shard] = append(chunksByShard[c.Shard], c)
	}

	var migrations []Migration
	for {
		overloaded, underloaded := "", ""
		maxCount, minCount := -1, int(^uint(0)>>1)
		// Deterministic iteration order.
		names := make([]string, 0, len(counts))
		for s := range counts {
			names = append(names, s)
		}
		sort.Strings(names)
		for _, s := range names {
			if counts[s] > maxCount {
				maxCount, overloaded = counts[s], s
			}
			if counts[s] < minCount {
				minCount, underloaded = counts[s], s
			}
		}
		if maxCount-minCount <= 1 {
			break
		}
		// Move one non-jumbo chunk from the most to the least loaded shard.
		var candidate *Chunk
		for _, c := range chunksByShard[overloaded] {
			if !c.Jumbo {
				candidate = c
				break
			}
		}
		if candidate == nil {
			break
		}
		migrations = append(migrations, Migration{
			Namespace: namespace,
			ChunkID:   candidate.ID,
			From:      overloaded,
			To:        underloaded,
		})
		counts[overloaded]--
		counts[underloaded]++
		// Remove the candidate from the overloaded shard's list and append it
		// to the underloaded one so later iterations see the new ownership.
		rest := chunksByShard[overloaded][:0]
		for _, c := range chunksByShard[overloaded] {
			if c != candidate {
				rest = append(rest, c)
			}
		}
		chunksByShard[overloaded] = rest
		chunksByShard[underloaded] = append(chunksByShard[underloaded], candidate)
	}
	return migrations
}

// ApplyMigration commits a chunk ownership change in the metadata. The data
// movement itself is the caller's responsibility (the cluster layer moves
// the affected documents between shard servers before committing).
func (b *Balancer) ApplyMigration(mig Migration) bool {
	meta := b.config.Metadata(mig.Namespace)
	if meta == nil {
		return false
	}
	meta.mu.Lock()
	defer meta.mu.Unlock()
	for _, c := range meta.chunks {
		if c.ID == mig.ChunkID && c.Shard == mig.From {
			c.Shard = mig.To
			return true
		}
	}
	return false
}

// Imbalance returns the difference between the largest and smallest per-shard
// chunk counts for a namespace.
func (b *Balancer) Imbalance(namespace string) int {
	meta := b.config.Metadata(namespace)
	if meta == nil {
		return 0
	}
	counts := meta.ChunkCountByShard()
	// Include shards that own no chunks.
	for _, s := range b.config.Shards() {
		if _, ok := counts[s]; !ok {
			counts[s] = 0
		}
	}
	minC, maxC := int(^uint(0)>>1), 0
	for _, n := range counts {
		if n < minC {
			minC = n
		}
		if n > maxC {
			maxC = n
		}
	}
	if len(counts) == 0 {
		return 0
	}
	return maxC - minC
}
