package sharding

import (
	"math/rand"
	"testing"

	"docstore/internal/bson"
)

func TestParseShardKey(t *testing.T) {
	k := MustParseShardKey(bson.D("ss_item_sk", 1))
	if len(k.Fields) != 1 || k.Hashed || k.String() != "ss_item_sk" {
		t.Fatalf("key = %+v", k)
	}
	k = MustParseShardKey(bson.D("ss_ticket_number", "hashed"))
	if !k.Hashed || k.String() != "ss_ticket_number:hashed" {
		t.Fatalf("hashed key = %+v", k)
	}
	k = MustParseShardKey(bson.D("a", 1, "b", 1))
	if len(k.Fields) != 2 {
		t.Fatalf("compound key = %+v", k)
	}
	// Round trip through Spec.
	k2 := MustParseShardKey(k.Spec())
	if k2.String() != k.String() {
		t.Fatalf("spec round trip: %s vs %s", k2, k)
	}
	spec := MustParseShardKey(bson.D("x", "hashed")).IndexSpec()
	if len(spec.Fields) != 1 || !spec.Fields[0].Hashed {
		t.Fatalf("IndexSpec = %+v", spec)
	}
	for _, bad := range []*bson.Doc{nil, bson.NewDoc(0), bson.D("x", "2d"), bson.D("x", true), bson.D("a", "hashed", "b", 1)} {
		if _, err := ParseShardKey(bad); err == nil {
			t.Errorf("ParseShardKey(%v) should fail", bad)
		}
	}
}

func TestMustParseShardKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	MustParseShardKey(bson.D("x", true))
}

func TestShardKeyValueOfAndRouting(t *testing.T) {
	doc := bson.D("ss_item_sk", 42, "ss_ticket_number", 1234, "other", "x")
	k := MustParseShardKey(bson.D("ss_item_sk", 1))
	if v := k.ValueOf(doc); v != int64(42) {
		t.Fatalf("ValueOf = %v", v)
	}
	if v := k.RoutingValue(42); v != int64(42) {
		t.Fatalf("RoutingValue = %v", v)
	}
	hk := MustParseShardKey(bson.D("ss_ticket_number", "hashed"))
	if hk.ValueOf(doc) != hk.RoutingValue(1234) {
		t.Fatalf("hashed routing value mismatch")
	}
	ck := MustParseShardKey(bson.D("a", 1, "b", 1))
	cv := ck.ValueOf(bson.D("a", 1, "b", 2)).([]any)
	if len(cv) != 2 || cv[0] != int64(1) || cv[1] != int64(2) {
		t.Fatalf("compound ValueOf = %v", cv)
	}
}

func TestSingleChunkRoutingAndSplit(t *testing.T) {
	key := MustParseShardKey(bson.D("k", 1))
	m := NewCollectionMetadata("db.c", key, []string{"Shard1", "Shard2", "Shard3"}, 4096)
	if err := m.Validate(); err != nil {
		t.Fatalf("initial metadata invalid: %v", err)
	}
	if len(m.Chunks()) != 1 {
		t.Fatalf("range-sharded collection should start with one chunk")
	}
	if m.ChunkSizeBytes() != 4096 {
		t.Fatalf("chunk size = %d", m.ChunkSizeBytes())
	}
	// Insert documents with increasing keys until splits happen.
	for i := 0; i < 2000; i++ {
		m.RecordInsert(int64(i), 64)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("metadata invalid after splits: %v", err)
	}
	if len(m.Chunks()) < 4 {
		t.Fatalf("expected multiple chunks after 128KB of inserts, got %d", len(m.Chunks()))
	}
	if len(m.JumboChunks()) != 0 {
		t.Fatalf("no jumbo chunks expected for distinct keys")
	}
	// Every key routes to exactly the chunk containing it.
	for i := 0; i < 2000; i += 37 {
		shard, chunk := m.ShardForValue(int64(i))
		if !chunk.Contains(int64(i)) {
			t.Fatalf("value %d routed to chunk %s that does not contain it", i, chunk)
		}
		if shard == "" {
			t.Fatalf("empty shard for value %d", i)
		}
	}
	// Doc counts are preserved across splits.
	total := 0
	for _, c := range m.Chunks() {
		total += c.DocCount
	}
	if total != 2000 {
		t.Fatalf("doc count after splits = %d", total)
	}
}

func TestJumboChunkDetection(t *testing.T) {
	key := MustParseShardKey(bson.D("k", 1))
	m := NewCollectionMetadata("db.c", key, []string{"Shard1"}, 1024)
	// All documents share one shard-key value: the chunk cannot split
	// (Figure 2.7's uneven distribution example).
	for i := 0; i < 100; i++ {
		m.RecordInsert(int64(36), 64)
	}
	jumbo := m.JumboChunks()
	if len(jumbo) != 1 {
		t.Fatalf("expected one jumbo chunk, got %d", len(jumbo))
	}
	if jumbo[0].DocCount != 100 {
		t.Fatalf("jumbo chunk doc count = %d", jumbo[0].DocCount)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("metadata invalid: %v", err)
	}
	if jumbo[0].String() == "" {
		t.Fatalf("chunk String should render")
	}
}

func TestHashedPreSplitDistributesAcrossShards(t *testing.T) {
	key := MustParseShardKey(bson.D("k", "hashed"))
	shards := []string{"Shard1", "Shard2", "Shard3"}
	m := NewCollectionMetadata("db.c", key, shards, 0)
	if len(m.Chunks()) != 3 {
		t.Fatalf("hashed collection should pre-split into one chunk per shard, got %d", len(m.Chunks()))
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("pre-split metadata invalid: %v", err)
	}
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		shard := m.RecordInsert(key.RoutingValue(int64(i)), 32)
		counts[shard]++
	}
	if len(counts) != 3 {
		t.Fatalf("hashed inserts touched %d shards, want 3", len(counts))
	}
	for s, n := range counts {
		if n < 500 {
			t.Fatalf("shard %s received only %d of 3000 documents; distribution too skewed", s, n)
		}
	}
	if got := m.AllShards(); len(got) != 3 {
		t.Fatalf("AllShards = %v", got)
	}
	byShard := m.DocCountByShard()
	sum := 0
	for _, n := range byShard {
		sum += n
	}
	if sum != 3000 {
		t.Fatalf("DocCountByShard sum = %d", sum)
	}
}

func TestShardsForRange(t *testing.T) {
	key := MustParseShardKey(bson.D("k", 1))
	m := NewCollectionMetadata("db.c", key, []string{"Shard1"}, 2048)
	for i := 0; i < 1000; i++ {
		m.RecordInsert(int64(i), 64)
	}
	// Reassign chunks round-robin across three shards to exercise range
	// routing over multiple shards.
	for i, c := range m.Chunks() {
		c.Shard = []string{"Shard1", "Shard2", "Shard3"}[i%3]
	}
	all := m.ShardsForRange(nil, false, nil, false)
	if len(all) != 3 {
		t.Fatalf("unbounded range should hit all shards, got %v", all)
	}
	chunks := m.Chunks()
	first := chunks[0]
	if !first.HasMax {
		t.Fatalf("expected the first chunk to be bounded after splits")
	}
	// A range fully inside the first chunk targets only its shard. Range
	// bounds are treated inclusively, so stay strictly below the chunk's Max.
	got := m.ShardsForRange(int64(0), true, first.Max.(int64)-1, true)
	if len(got) != 1 || got[0] != first.Shard {
		t.Fatalf("narrow range shards = %v, want [%s]", got, first.Shard)
	}
	// A half-open range from a high value excludes early chunks.
	last := chunks[len(chunks)-1]
	got = m.ShardsForRange(last.Min, true, nil, false)
	if len(got) == 3 && len(chunks) > 3 {
		t.Fatalf("high range should not need every shard")
	}
}

func TestConfigServerShardCollection(t *testing.T) {
	cs := NewConfigServer()
	if _, err := cs.ShardCollection("db.c", MustParseShardKey(bson.D("k", 1)), 0); err == nil {
		t.Fatalf("sharding with no shards should fail")
	}
	cs.AddShard("Shard1")
	cs.AddShard("Shard2")
	cs.AddShard("Shard1") // duplicate is a no-op
	if got := cs.Shards(); len(got) != 2 {
		t.Fatalf("Shards = %v", got)
	}
	meta, err := cs.ShardCollection("db.c", MustParseShardKey(bson.D("k", 1)), 0)
	if err != nil || meta == nil {
		t.Fatalf("ShardCollection: %v", err)
	}
	if !cs.IsSharded("db.c") || cs.IsSharded("db.other") {
		t.Fatalf("IsSharded misbehaves")
	}
	if cs.Metadata("db.c") != meta {
		t.Fatalf("Metadata lookup mismatch")
	}
	// Shard key is immutable: re-sharding fails.
	if _, err := cs.ShardCollection("db.c", MustParseShardKey(bson.D("other", 1)), 0); err == nil {
		t.Fatalf("re-sharding should fail")
	}
	if got := cs.ShardedNamespaces(); len(got) != 1 || got[0] != "db.c" {
		t.Fatalf("ShardedNamespaces = %v", got)
	}
}

func TestBalancerEvensChunkCounts(t *testing.T) {
	cs := NewConfigServer()
	for _, s := range []string{"Shard1", "Shard2", "Shard3"} {
		cs.AddShard(s)
	}
	meta, err := cs.ShardCollection("db.c", MustParseShardKey(bson.D("k", 1)), 1024)
	if err != nil {
		t.Fatal(err)
	}
	// Range sharding starts with every chunk on Shard1: splits keep them there.
	for i := 0; i < 3000; i++ {
		meta.RecordInsert(int64(i), 64)
	}
	b := NewBalancer(cs)
	if b.Imbalance("db.c") < 2 {
		t.Fatalf("expected significant imbalance before balancing, got %d", b.Imbalance("db.c"))
	}
	plan := b.Plan("db.c")
	if len(plan) == 0 {
		t.Fatalf("balancer proposed no migrations")
	}
	for _, mig := range plan {
		if !b.ApplyMigration(mig) {
			t.Fatalf("migration %+v could not be applied", mig)
		}
	}
	if got := b.Imbalance("db.c"); got > 1 {
		t.Fatalf("imbalance after balancing = %d", got)
	}
	if err := meta.Validate(); err != nil {
		t.Fatalf("metadata invalid after balancing: %v", err)
	}
	// A second plan proposes nothing further.
	if len(b.Plan("db.c")) != 0 {
		t.Fatalf("balanced collection should need no migrations")
	}
	// Unknown namespace.
	if b.Plan("db.missing") != nil || b.Imbalance("db.missing") != 0 {
		t.Fatalf("unknown namespace should be a no-op")
	}
	if b.ApplyMigration(Migration{Namespace: "db.missing"}) {
		t.Fatalf("migration for unknown namespace should fail")
	}
	if b.ApplyMigration(Migration{Namespace: "db.c", ChunkID: 99999, From: "Shard1", To: "Shard2"}) {
		t.Fatalf("migration of unknown chunk should fail")
	}
}

// TestChunkInvariantsUnderRandomInsertsProperty drives random inserts through
// metadata with a small chunk size and checks coverage/non-overlap plus
// routing consistency after every batch.
func TestChunkInvariantsUnderRandomInsertsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	key := MustParseShardKey(bson.D("k", 1))
	m := NewCollectionMetadata("db.c", key, []string{"S1", "S2"}, 512)
	for batch := 0; batch < 50; batch++ {
		for i := 0; i < 200; i++ {
			m.RecordInsert(int64(r.Intn(5000)), 8+r.Intn(64))
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		// Any value must route to exactly one chunk that contains it.
		for trial := 0; trial < 20; trial++ {
			v := int64(r.Intn(6000))
			_, chunk := m.ShardForValue(v)
			if !chunk.Contains(v) {
				t.Fatalf("value %d routed to non-containing chunk %s", v, chunk)
			}
			containing := 0
			for _, c := range m.Chunks() {
				if c.Contains(v) {
					containing++
				}
			}
			if containing != 1 {
				t.Fatalf("value %d contained in %d chunks", v, containing)
			}
		}
	}
}
