// Package sharding implements the data-distribution substrate of the sharded
// cluster: shard keys, chunks, range- and hash-based partitioning, chunk
// splitting with jumbo detection, the balancer, and the config metadata that
// maps chunks to shards (§2.1.3 of the thesis).
package sharding

import (
	"fmt"
	"strings"

	"docstore/internal/bson"
	"docstore/internal/index"
)

// DefaultChunkSizeBytes is the default maximum chunk size (64 MB), after
// which a chunk is split (§2.1.3.3).
const DefaultChunkSizeBytes = 64 * 1024 * 1024

// ShardKey identifies how documents of a collection are distributed: an
// indexed field (or compound fields) present in every document, partitioned
// either by range or by hash.
type ShardKey struct {
	Fields []string
	Hashed bool
}

// ParseShardKey converts a shard-key specification document, e.g.
// {"ss_item_sk": 1} or {"ss_ticket_number": "hashed"}.
func ParseShardKey(spec *bson.Doc) (ShardKey, error) {
	var k ShardKey
	if spec == nil || spec.Len() == 0 {
		return k, fmt.Errorf("sharding: empty shard key")
	}
	for _, f := range spec.Fields() {
		switch v := bson.Normalize(f.Value).(type) {
		case int64, float64:
			k.Fields = append(k.Fields, f.Key)
		case string:
			if v != "hashed" {
				return k, fmt.Errorf("sharding: unsupported shard key type %q for %q", v, f.Key)
			}
			k.Fields = append(k.Fields, f.Key)
			k.Hashed = true
		default:
			return k, fmt.Errorf("sharding: invalid shard key value for %q", f.Key)
		}
	}
	if k.Hashed && len(k.Fields) > 1 {
		return k, fmt.Errorf("sharding: hashed shard keys must have exactly one field")
	}
	return k, nil
}

// MustParseShardKey is ParseShardKey but panics on error.
func MustParseShardKey(spec *bson.Doc) ShardKey {
	k, err := ParseShardKey(spec)
	if err != nil {
		panic(err)
	}
	return k
}

// Spec renders the shard key back into document form.
func (k ShardKey) Spec() *bson.Doc {
	d := bson.NewDoc(len(k.Fields))
	for _, f := range k.Fields {
		if k.Hashed {
			d.Set(f, "hashed")
		} else {
			d.Set(f, int64(1))
		}
	}
	return d
}

// String renders the shard key compactly ("ss_item_sk" or
// "ss_ticket_number:hashed").
func (k ShardKey) String() string {
	s := strings.Join(k.Fields, ",")
	if k.Hashed {
		s += ":hashed"
	}
	return s
}

// IndexSpec returns the index specification backing the shard key (the shard
// key must be indexed).
func (k ShardKey) IndexSpec() index.Spec {
	spec := index.Spec{}
	for _, f := range k.Fields {
		spec.Fields = append(spec.Fields, index.Field{Name: f, Hashed: k.Hashed})
	}
	return spec
}

// ValueOf extracts the routing value of a document under the shard key:
// the raw field value for range partitioning, its hash for hash partitioning.
// Compound keys produce a composite array value.
func (k ShardKey) ValueOf(doc *bson.Doc) any {
	if len(k.Fields) == 1 {
		v, _ := doc.GetPath(k.Fields[0])
		if k.Hashed {
			return index.HashValue(v)
		}
		return v
	}
	parts := make([]any, len(k.Fields))
	for i, f := range k.Fields {
		parts[i], _ = doc.GetPath(f)
	}
	return parts
}

// RoutingValue converts a literal shard-key field value (e.g. from a query
// constraint) into the routing space: identical to the raw value for range
// partitioning, hashed for hash partitioning.
func (k ShardKey) RoutingValue(v any) any {
	if k.Hashed {
		return index.HashValue(bson.Normalize(v))
	}
	return bson.Normalize(v)
}
