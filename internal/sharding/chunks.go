package sharding

import (
	"fmt"
	"sort"
	"sync"

	"docstore/internal/bson"
)

// Chunk is a contiguous, non-overlapping range of shard-key routing values
// [Min, Max) assigned to one shard. The special unbounded ends are
// represented by HasMin/HasMax being false.
type Chunk struct {
	ID    int
	Shard string
	// [Min, Max) in routing-value space.
	Min, Max       any
	HasMin, HasMax bool
	// Accounting used for splitting decisions.
	DocCount  int
	SizeBytes int
	// Jumbo marks a chunk that exceeded the size limit but cannot be split
	// because all its documents share one shard-key value (§2.1.3.3).
	Jumbo bool
	// values tracks the routing values present in the chunk so that split
	// points can be chosen; bounded sample to limit memory.
	values []any
}

// Contains reports whether a routing value falls inside the chunk.
func (c *Chunk) Contains(v any) bool {
	if c.HasMin && bson.Compare(v, c.Min) < 0 {
		return false
	}
	if c.HasMax && bson.Compare(v, c.Max) >= 0 {
		return false
	}
	return true
}

// String renders the chunk range for diagnostics.
func (c *Chunk) String() string {
	min, max := "-inf", "+inf"
	if c.HasMin {
		min = fmt.Sprintf("%v", c.Min)
	}
	if c.HasMax {
		max = fmt.Sprintf("%v", c.Max)
	}
	return fmt.Sprintf("chunk %d [%s, %s) on %s (%d docs, %d bytes)", c.ID, min, max, c.Shard, c.DocCount, c.SizeBytes)
}

// CollectionMetadata is the config-server record for one sharded collection:
// its shard key and the chunk → shard mapping.
type CollectionMetadata struct {
	Namespace string // "db.collection"
	Key       ShardKey

	mu             sync.RWMutex
	chunks         []*Chunk // ordered by Min
	nextChunkID    int
	chunkSizeBytes int
	sampleLimit    int
}

// NewCollectionMetadata creates metadata for a newly sharded collection with
// a single chunk covering the whole key space, distributed across the given
// shards by pre-splitting into one chunk per shard when hash partitioning is
// used (matching the even pre-split behaviour of hashed sharding).
func NewCollectionMetadata(namespace string, key ShardKey, shards []string, chunkSizeBytes int) *CollectionMetadata {
	if chunkSizeBytes <= 0 {
		chunkSizeBytes = DefaultChunkSizeBytes
	}
	m := &CollectionMetadata{
		Namespace:      namespace,
		Key:            key,
		chunkSizeBytes: chunkSizeBytes,
		sampleLimit:    4096,
	}
	if key.Hashed && len(shards) > 1 {
		m.preSplitHashed(shards)
		return m
	}
	m.chunks = []*Chunk{{ID: m.nextChunkID, Shard: shards[0]}}
	m.nextChunkID++
	return m
}

// preSplitHashed divides the signed 64-bit hash space evenly across shards.
func (m *CollectionMetadata) preSplitHashed(shards []string) {
	n := len(shards)
	// Boundaries at -2^63 + i * (2^64 / n), computed in float space which is
	// precise enough for boundary placement.
	bounds := make([]int64, 0, n-1)
	for i := 1; i < n; i++ {
		f := float64(i) / float64(n)
		bounds = append(bounds, int64(f*float64(1<<63)*2-float64(1<<63)))
	}
	prevSet := false
	var prev int64
	for i := 0; i < n; i++ {
		c := &Chunk{ID: m.nextChunkID, Shard: shards[i]}
		m.nextChunkID++
		if prevSet {
			c.Min, c.HasMin = prev, true
		}
		if i < n-1 {
			c.Max, c.HasMax = bounds[i], true
			prev, prevSet = bounds[i], true
		}
		m.chunks = append(m.chunks, c)
	}
}

// ChunkSizeBytes returns the configured maximum chunk size.
func (m *CollectionMetadata) ChunkSizeBytes() int { return m.chunkSizeBytes }

// Chunks returns a snapshot of the chunk list in key order.
func (m *CollectionMetadata) Chunks() []*Chunk {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Chunk, len(m.chunks))
	copy(out, m.chunks)
	return out
}

// ChunkCountByShard returns how many chunks each shard owns.
func (m *CollectionMetadata) ChunkCountByShard() map[string]int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]int)
	for _, c := range m.chunks {
		out[c.Shard]++
	}
	return out
}

// DocCountByShard returns how many documents each shard owns according to
// chunk accounting.
func (m *CollectionMetadata) DocCountByShard() map[string]int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]int)
	for _, c := range m.chunks {
		out[c.Shard] += c.DocCount
	}
	return out
}

// ShardForValue returns the shard owning the chunk that contains the routing
// value.
func (m *CollectionMetadata) ShardForValue(v any) (string, *Chunk) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	c := m.chunkForLocked(v)
	return c.Shard, c
}

func (m *CollectionMetadata) chunkForLocked(v any) *Chunk {
	// Binary search over ordered chunks: find the first chunk whose Max is
	// greater than v (or unbounded).
	lo, hi := 0, len(m.chunks)-1
	for lo < hi {
		mid := (lo + hi) / 2
		c := m.chunks[mid]
		if c.HasMax && bson.Compare(v, c.Max) >= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return m.chunks[lo]
}

// ShardsForRange returns the distinct shards whose chunks intersect the
// routing-value range [min, max]. Unbounded sides are expressed by hasMin /
// hasMax being false.
func (m *CollectionMetadata) ShardsForRange(min any, hasMin bool, max any, hasMax bool) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	seen := make(map[string]bool)
	var out []string
	for _, c := range m.chunks {
		if hasMax && c.HasMin && bson.Compare(c.Min, max) > 0 {
			break
		}
		if hasMin && c.HasMax && bson.Compare(c.Max, min) <= 0 {
			continue
		}
		if !seen[c.Shard] {
			seen[c.Shard] = true
			out = append(out, c.Shard)
		}
	}
	sort.Strings(out)
	return out
}

// AllShards returns every shard that owns at least one chunk.
func (m *CollectionMetadata) AllShards() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	seen := make(map[string]bool)
	var out []string
	for _, c := range m.chunks {
		if !seen[c.Shard] {
			seen[c.Shard] = true
			out = append(out, c.Shard)
		}
	}
	sort.Strings(out)
	return out
}

// RecordInsert accounts for a document with the given routing value and
// encoded size landing in its chunk, splitting the chunk when it exceeds the
// configured size. It returns the shard the document belongs to.
func (m *CollectionMetadata) RecordInsert(v any, sizeBytes int) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.chunkForLocked(v)
	c.DocCount++
	c.SizeBytes += sizeBytes
	if len(c.values) < m.sampleLimit {
		c.values = append(c.values, v)
	}
	shard := c.Shard
	if c.SizeBytes > m.chunkSizeBytes && !c.Jumbo {
		m.splitChunkLocked(c)
	}
	return shard
}

// splitChunkLocked splits a chunk at the median of its sampled values. When
// every sampled value is identical the chunk is marked jumbo instead
// (§2.1.3.3, Figure 2.7).
func (m *CollectionMetadata) splitChunkLocked(c *Chunk) {
	if len(c.values) < 2 {
		c.Jumbo = true
		return
	}
	vals := append([]any(nil), c.values...)
	sort.Slice(vals, func(i, j int) bool { return bson.Compare(vals[i], vals[j]) < 0 })
	median := vals[len(vals)/2]
	// The split point must strictly separate values; if the median equals the
	// minimum sampled value, advance to the first greater value.
	if bson.Compare(median, vals[0]) == 0 {
		idx := sort.Search(len(vals), func(i int) bool { return bson.Compare(vals[i], median) > 0 })
		if idx == len(vals) {
			// All values identical: cannot split.
			c.Jumbo = true
			return
		}
		median = vals[idx]
	}
	// Left keeps [Min, median), right gets [median, Max).
	right := &Chunk{
		ID:     m.nextChunkID,
		Shard:  c.Shard,
		Min:    median,
		HasMin: true,
		Max:    c.Max,
		HasMax: c.HasMax,
	}
	m.nextChunkID++
	c.Max, c.HasMax = median, true

	// Re-apportion accounting and samples between the halves.
	var leftVals, rightVals []any
	for _, v := range vals {
		if bson.Compare(v, median) < 0 {
			leftVals = append(leftVals, v)
		} else {
			rightVals = append(rightVals, v)
		}
	}
	total := len(leftVals) + len(rightVals)
	if total > 0 {
		leftFrac := float64(len(leftVals)) / float64(total)
		right.DocCount = c.DocCount - int(float64(c.DocCount)*leftFrac)
		right.SizeBytes = c.SizeBytes - int(float64(c.SizeBytes)*leftFrac)
		c.DocCount -= right.DocCount
		c.SizeBytes -= right.SizeBytes
	}
	c.values = leftVals
	right.values = rightVals

	// Insert the right chunk immediately after the left one.
	pos := 0
	for i, existing := range m.chunks {
		if existing == c {
			pos = i
			break
		}
	}
	m.chunks = append(m.chunks, nil)
	copy(m.chunks[pos+2:], m.chunks[pos+1:])
	m.chunks[pos+1] = right
}

// JumboChunks returns the chunks marked jumbo.
func (m *CollectionMetadata) JumboChunks() []*Chunk {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []*Chunk
	for _, c := range m.chunks {
		if c.Jumbo {
			out = append(out, c)
		}
	}
	return out
}

// Validate checks the chunk invariants: full coverage of the key space,
// ordering, and non-overlap. It is used by property tests and the balancer.
func (m *CollectionMetadata) Validate() error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(m.chunks) == 0 {
		return fmt.Errorf("sharding: no chunks")
	}
	if m.chunks[0].HasMin {
		return fmt.Errorf("sharding: first chunk has a lower bound")
	}
	if m.chunks[len(m.chunks)-1].HasMax {
		return fmt.Errorf("sharding: last chunk has an upper bound")
	}
	for i := 0; i < len(m.chunks)-1; i++ {
		cur, next := m.chunks[i], m.chunks[i+1]
		if !cur.HasMax || !next.HasMin {
			return fmt.Errorf("sharding: interior chunk boundary missing between %d and %d", cur.ID, next.ID)
		}
		if bson.Compare(cur.Max, next.Min) != 0 {
			return fmt.Errorf("sharding: gap or overlap between chunk %d max %v and chunk %d min %v", cur.ID, cur.Max, next.ID, next.Min)
		}
	}
	return nil
}
