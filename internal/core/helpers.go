package core

import (
	"docstore/internal/cluster"
	"docstore/internal/driver"
	"docstore/internal/migrate"
	"docstore/internal/mongod"
)

// Small construction helpers shared by Setup and the ablation runners.

func buildCluster(cfg Config) (*cluster.Cluster, error) {
	shards := cfg.Shards
	if shards <= 0 {
		shards = 3
	}
	return cluster.Build(cluster.Config{
		Shards:          shards,
		ShardRAMBytes:   8 << 30,
		NetworkLatency:  cfg.NetworkLatency,
		ParallelScatter: cfg.ParallelScatter,
		ChunkSizeBytes:  cfg.ChunkSizeBytes,
	})
}

func newShardedStore(c *cluster.Cluster, dbName string) driver.Store {
	return driver.NewSharded(c.Router(), dbName)
}

func newStandaloneServer() *mongod.Server {
	return mongod.NewServer(mongod.Options{Name: "standalone-m4.4xlarge", RAMBytes: 64 << 30})
}

func newStandaloneStore(s *mongod.Server, dbName string) driver.Store {
	return driver.NewStandalone(s.Database(dbName))
}

// loadOnly migrates the dataset into the deployment without building indexes.
func loadOnly(d *Deployment) (*migrate.DatasetLoadResult, error) {
	return migrate.LoadDataset(d.Store, d.generator)
}

// loadAndIndex migrates the dataset and builds the benchmark indexes.
func loadAndIndex(d *Deployment) (*migrate.DatasetLoadResult, error) {
	load, err := migrate.LoadDataset(d.Store, d.generator)
	if err != nil {
		return nil, err
	}
	if err := migrate.EnsureQueryIndexes(d.Store, d.generator.Schema()); err != nil {
		return nil, err
	}
	return load, nil
}
