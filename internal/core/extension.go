package core

import (
	"fmt"
	"strings"

	"docstore/internal/metrics"
	"docstore/internal/queries"
	"docstore/internal/tpcds"
)

// The thesis' future work (§5.2) proposes deploying the denormalized data
// model on the sharded cluster and studying its performance, and using
// multiple threads for aggregation. This file implements the first as two
// additional experiments (7 and 8) that extend Table 4.1, and the comparison
// report that goes with them; the multithreading item is implemented by
// mongod.AggregateParallel and exercised by its own benchmark.

// ExtensionExperiments returns the two future-work setups: the denormalized
// data model deployed on the sharded cluster at both scales.
func ExtensionExperiments(small, large tpcds.Scale) []ExperimentSpec {
	return []ExperimentSpec{
		{Number: 7, Scale: small, Model: Denormalized, Env: Sharded},
		{Number: 8, Scale: large, Model: Denormalized, Env: Sharded},
	}
}

// RunExtendedSuite runs the six paper experiments plus the two future-work
// experiments.
func RunExtendedSuite(small, large tpcds.Scale, cfg Config) (*SuiteResult, error) {
	suite, err := RunSuite(small, large, cfg)
	if err != nil {
		return suite, err
	}
	for _, spec := range ExtensionExperiments(small, large) {
		res, err := RunExperiment(spec, cfg)
		if err != nil {
			return suite, err
		}
		suite.Experiments = append(suite.Experiments, res)
	}
	return suite, nil
}

// ExtensionReport compares the denormalized model on the sharded cluster
// (Experiments 7/8) against its stand-alone counterpart (Experiments 3/6),
// answering the question §5.2 poses.
func ExtensionReport(suite *SuiteResult, smallName, largeName string) string {
	var b strings.Builder
	t := metrics.NewTable("Extension: denormalized data model, stand-alone vs sharded (thesis §5.2 future work)",
		"Dataset", "Query", "Denormalized stand-alone", "Denormalized sharded", "Sharded/stand-alone")
	for _, scaleName := range []string{smallName, largeName} {
		standalone := suite.experimentFor(scaleName, Denormalized, StandAlone)
		sharded := suite.experimentFor(scaleName, Denormalized, Sharded)
		if standalone == nil || sharded == nil {
			continue
		}
		for _, q := range queries.All() {
			sa, sh := standalone.QueryRun(q.ID), sharded.QueryRun(q.ID)
			if sa == nil || sh == nil {
				continue
			}
			ratio := "-"
			if sa.Best > 0 {
				ratio = fmt.Sprintf("%.2fx", float64(sh.Best)/float64(sa.Best))
			}
			t.AddRow(scaleName, fmt.Sprintf("Query %d", q.ID),
				metrics.FormatDuration(sa.Best), metrics.FormatDuration(sh.Best), ratio)
		}
	}
	if t.Len() == 0 {
		return ""
	}
	b.WriteString(t.String())
	return b.String()
}
